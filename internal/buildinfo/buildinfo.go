// Package buildinfo prints build identification for the CLIs' -version
// flags, sourced from the Go build info embedded in the binary.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Fprint writes a short multi-line version report for the named command:
// module version (or "(devel)"), Go toolchain, platform, and VCS
// revision/time/dirty state when the binary was built from a checkout.
func Fprint(w io.Writer, command string) {
	version, extras := "unknown", []string(nil)
	if bi, ok := debug.ReadBuildInfo(); ok {
		version = bi.Main.Version
		if version == "" {
			version = "(devel)"
		}
		var rev, at string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.time":
				at = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "+dirty"
			}
			extras = append(extras, fmt.Sprintf("vcs: %s (%s)", rev, at))
		}
	}
	fmt.Fprintf(w, "%s %s\n", command, version)
	fmt.Fprintf(w, "go: %s %s/%s\n", runtime.Version(), runtime.GOOS, runtime.GOARCH)
	for _, line := range extras {
		fmt.Fprintln(w, line)
	}
}
