package stats

import "math"

// quantileIndex returns the 1-based order-statistic index of the inverted-CDF
// F-quantile for sample size n: the smallest i with i/n ≥ F, clamped to
// [1, n]. It is the single source of truth shared by QuantileSorted and
// QuantileSelect.
func quantileIndex(f float64, n int) int {
	i := int(math.Ceil(f * float64(n)))
	if i < 1 {
		i = 1
	}
	if i > n {
		i = n
	}
	return i
}

// QuantileSelect returns the inverted-CDF F-quantile of xs without sorting,
// using in-place quickselect: O(n) expected instead of O(n log n). The slice
// is partially reordered. The returned value is the exact order statistic —
// bit-identical to QuantileSorted on a sorted copy — so callers that own a
// scratch buffer (the bootstrap resampling kernel) use this on the hot path.
// It panics on an empty slice, mirroring QuantileSorted.
func QuantileSelect(xs []float64, f float64) float64 {
	return selectKth(xs, quantileIndex(f, len(xs))-1)
}

// selectKth places the k-th smallest element (0-based) of xs at index k and
// returns it. Median-of-three quickselect with an insertion-sort tail for
// small partitions; fully deterministic (no randomized pivots), so repeated
// calls on equal input reorder identically.
func selectKth(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for hi-lo > 12 {
		// Median-of-three pivot, leaving xs[lo] ≤ xs[mid] ≤ xs[hi].
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		// Hoare partition around the pivot value.
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k]
		}
	}
	// Insertion sort of the residual window.
	for i := lo + 1; i <= hi; i++ {
		v := xs[i]
		j := i - 1
		for j >= lo && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
	return xs[k]
}
