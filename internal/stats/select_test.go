package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/randx"
)

// TestQuantileSelectMatchesQuantileSorted is the quickselect property test:
// for random samples (continuous, tie-heavy, constant, reversed) and a grid
// of quantile levels, QuantileSelect must return the exact order statistic
// the sort-based path returns — same bits, not approximately.
func TestQuantileSelectMatchesQuantileSorted(t *testing.T) {
	r := randx.New(77)
	gen := map[string]func(n int) []float64{
		"continuous": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = r.Normal(0, 1)
			}
			return xs
		},
		"ties": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(r.Intn(5))
			}
			return xs
		},
		"constant": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 3.25
			}
			return xs
		},
		"reversed": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(n - i)
			}
			return xs
		},
	}
	fs := []float64{0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.999}
	for name, g := range gen {
		for _, n := range []int{1, 2, 3, 12, 13, 100, 1000} {
			xs := g(n)
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			for _, f := range fs {
				want := QuantileSorted(sorted, f)
				scratch := append([]float64(nil), xs...)
				got := QuantileSelect(scratch, f)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s n=%d f=%g: QuantileSelect=%v, QuantileSorted=%v", name, n, f, got, want)
				}
			}
		}
	}
}

// TestQuantileAgreesWithSortedPath pins the public Quantile on the same
// order statistic as QuantileSorted (satellite: the internal read path is
// shared, so the two can never drift).
func TestQuantileAgreesWithSortedPath(t *testing.T) {
	r := randx.New(78)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = r.Normal(10, 3)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, f := range []float64{0.05, 0.5, 0.9} {
		want := QuantileSorted(sorted, f)
		got, err := Quantile(xs, f)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("f=%g: Quantile=%v, QuantileSorted=%v", f, got, want)
		}
	}
}
