package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1: mean=5, ss=32, var=32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %g, want %g", got, want)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(want)) > 1e-12 {
		t.Errorf("StdDev = %g", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	if got := CoefficientOfVariation(xs); got != 0 {
		t.Errorf("CoV of constant = %g, want 0", got)
	}
	if !math.IsNaN(CoefficientOfVariation([]float64{-1, 1})) {
		t.Error("CoV with zero mean should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %g, want 4", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, 0, 2})) {
		t.Error("GeoMean with zero should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(nil) should be NaN")
	}
}

func TestGeoMeanWithFloor(t *testing.T) {
	got := GeoMeanWithFloor([]float64{0, 0.1}, 0.001)
	want := math.Sqrt(0.001 * 0.1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("GeoMeanWithFloor = %g, want %g", got, want)
	}
}

func TestQuantileInvertedCDF(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4} // sorted: 1 2 3 4 5
	cases := []struct {
		f    float64
		want float64
	}{
		{0.2, 1}, {0.21, 2}, {0.5, 3}, {0.8, 4}, {0.81, 5}, {1.0, 5}, {0.0001, 1},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.f)
		if err != nil {
			t.Fatalf("Quantile(%g): %v", c.f, err)
		}
		if got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.f, got, c.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty sample should error")
	}
	for _, f := range []float64{0, -0.1, 1.1, math.NaN()} {
		if _, err := Quantile([]float64{1}, f); err == nil {
			t.Errorf("Quantile(f=%g) should error", f)
		}
	}
}

// The F-quantile v must satisfy #{x ≤ v}/n ≥ F, and be the smallest sample
// value doing so.
func TestQuantileDefinitionProperty(t *testing.T) {
	f := func(seed uint64, nr uint8, fr uint16) bool {
		n := int(nr%100) + 1
		fq := (float64(fr%999) + 1) / 1000.0
		r := randx.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		v, err := Quantile(xs, fq)
		if err != nil {
			return false
		}
		atOrBelow := 0
		for _, x := range xs {
			if x <= v {
				atOrBelow++
			}
		}
		if float64(atOrBelow)/float64(n) < fq {
			return false
		}
		// No smaller sample value satisfies the proportion.
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, x := range sorted {
			if x >= v {
				break
			}
			cnt := 0
			for _, y := range xs {
				if y <= x {
					cnt++
				}
			}
			if float64(cnt)/float64(n) >= fq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	m, err := Median([]float64{9, 1, 5})
	if err != nil || m != 5 {
		t.Errorf("Median = %g, %v", m, err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %g,%g,%v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil) should error")
	}
}

func TestRound(t *testing.T) {
	got := Round([]float64{1.23456, 2.71828}, 3)
	if got[0] != 1.235 || got[1] != 2.718 {
		t.Errorf("Round = %v", got)
	}
	// Rounding creates duplicates from near-equal values.
	dup := Round([]float64{1.0001, 1.0002}, 3)
	if dup[0] != dup[1] {
		t.Error("rounding should merge near-equal values")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4}
	h, err := NewHistogram(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram lost samples: %d != %d", total, len(xs))
	}
	if h.Counts[3] == 0 {
		t.Error("max value should land in last bin")
	}
	if c := h.BinCenter(0); c != 0.5 {
		t.Errorf("BinCenter(0) = %g, want 0.5", c)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 4); err == nil {
		t.Error("empty histogram should error")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("zero bins should error")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{2, 2, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("constant-sample histogram lost values: %d", total)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram([]float64{1, 1, 1, 2}, 2)
	rows := h.Render(10)
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	if len(rows[0]) != 10 {
		t.Errorf("peak bin should render full width, got %q", rows[0])
	}
	if len(rows[1]) >= len(rows[0]) {
		t.Error("smaller bin should render shorter bar")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{7, 1, 3, 5, 9, 11, 13, 15}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Min != 1 || s.Max != 15 {
		t.Errorf("extremes wrong: %+v", s)
	}
	if s.Q1 != 3 || s.Median != 7 || s.Q3 != 11 {
		t.Errorf("quartiles wrong: %+v", s)
	}
	if s.IQR() != 8 {
		t.Errorf("IQR = %g", s.IQR())
	}
	if math.Abs(s.Mean-8) > 1e-12 {
		t.Errorf("mean = %g", s.Mean)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample should error")
	}
}

func TestSortFloats(t *testing.T) {
	xs := []float64{3, 1, 2}
	SortFloats(xs)
	if xs[0] != 1 || xs[2] != 3 {
		t.Errorf("SortFloats wrong: %v", xs)
	}
}
