package stats

import "math"

// Interval is a closed confidence interval [Lo, Hi] for a population value.
// It is shared by every CI construction method in the repository (SPA,
// bootstrapping, rank testing, Z-score) so the experiment harness can
// compare them uniformly.
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies inside the closed interval. This is the
// coverage check of the paper's Sec. 5.4: a CI construction is "accurate on
// a trial" when its interval covers the population ground-truth value.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// NormalizedWidth returns Width divided by a reference value (the paper
// normalizes mean CI widths by the ground truth to compare across metrics).
// It returns NaN for a zero reference.
func (iv Interval) NormalizedWidth(ref float64) float64 {
	if ref == 0 {
		return math.NaN()
	}
	return iv.Width() / math.Abs(ref)
}

// IsValid reports Lo ≤ Hi with both endpoints finite.
func (iv Interval) IsValid() bool {
	return !math.IsNaN(iv.Lo) && !math.IsNaN(iv.Hi) &&
		!math.IsInf(iv.Lo, 0) && !math.IsInf(iv.Hi, 0) && iv.Lo <= iv.Hi
}
