// Package stats provides the descriptive statistics used throughout the
// repository: moments, quantiles, geometric means, coefficients of variation
// and simple histograms. The quantile estimator matches the "inverted CDF"
// definition (type 1 in the Hyndman–Fan taxonomy), which is the natural
// counterpart of the paper's proportion semantics: the F-quantile is the
// smallest sample value v such that at least an F fraction of samples are
// ≤ v, which is exactly the ground-truth definition of Sec. 5.3.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty reports an operation on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance, or NaN when fewer
// than two samples are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the square root of Variance.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoefficientOfVariation returns StdDev/Mean, the dispersion measure the
// paper reports in Sec. 6 (ranging 0.022–0.117 across ferret metrics).
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return StdDev(xs) / m
}

// GeoMean returns the geometric mean of positive values; any non-positive
// value makes the result NaN. The paper reports geomean error probabilities.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// GeoMeanWithFloor is GeoMean with non-positive entries clamped to floor,
// the conventional dodge when averaging error probabilities that can be
// exactly zero (as the Z-score method's are in Fig. 6).
func GeoMeanWithFloor(xs []float64, floor float64) float64 {
	clamped := make([]float64, len(xs))
	for i, x := range xs {
		if x < floor {
			x = floor
		}
		clamped[i] = x
	}
	return GeoMean(clamped)
}

// Quantile returns the F-quantile of xs under the inverted-CDF definition:
// the smallest sample value v with (#{x ≤ v}/n) ≥ F. F must be in (0, 1];
// F = 1 returns the maximum. The input need not be sorted.
func Quantile(xs []float64, f float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	if f <= 0 || f > 1 || math.IsNaN(f) {
		return math.NaN(), errors.New("stats: quantile proportion out of (0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, f), nil
}

// QuantileSorted is Quantile for an already ascending-sorted slice, with no
// validation; it panics on an empty slice.
func QuantileSorted(sorted []float64, f float64) float64 {
	// Smallest index i (1-based) with i/n ≥ F  ⟹  i = ceil(F·n).
	return sorted[quantileIndex(f, len(sorted))-1]
}

// SortFloats sorts the slice ascending in place (a naming convenience over
// sort.Float64s for callers already importing this package).
func SortFloats(xs []float64) { sort.Float64s(xs) }

// Median returns the 0.5 inverted-CDF quantile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN(), ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Round rounds every value to the given number of decimal places, returning
// a new slice. The paper's Fig. 15 rounds simulator output to 3 decimals to
// study bootstrap failures under duplicate data.
func Round(xs []float64, places int) []float64 {
	scale := math.Pow(10, float64(places))
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Round(x*scale) / scale
	}
	return out
}

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	Lo, Hi float64 // full range covered
	Counts []int   // one per bin
	Width  float64 // bin width
	N      int     // total samples
}

// NewHistogram bins xs into the given number of equal-width bins spanning
// [min, max]. The maximum value lands in the last bin.
func NewHistogram(xs []float64, bins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if bins <= 0 {
		return nil, errors.New("stats: non-positive bin count")
	}
	lo, hi, _ := MinMax(xs)
	width := (hi - lo) / float64(bins)
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), Width: width, N: len(xs)}
	for _, x := range xs {
		var b int
		if width > 0 {
			b = int((x - lo) / width)
		}
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h, nil
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// Render draws the histogram as rows of '#' runes, one row per bin, scaled
// to the given maximum bar width. It is used by the experiment harness to
// print Figs. 1 and 2.
func (h *Histogram) Render(maxBar int) []string {
	peak := 0
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	rows := make([]string, len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if peak > 0 {
			bar = c * maxBar / peak
		}
		rows[i] = repeat('#', bar)
	}
	return rows
}

func repeat(r rune, n int) string {
	b := make([]rune, n)
	for i := range b {
		b[i] = r
	}
	return string(b)
}

// Summary is the five-number box-plot summary plus moments. The paper's
// Sec. 2.3 contrasts box plots (sample variability) with confidence
// intervals (population uncertainty); this type exists so both views can
// be reported side by side.
type Summary struct {
	N                 int
	Min, Q1, Median   float64
	Q3, Max           float64
	Mean, StdDev, CoV float64
}

// Summarize computes a Summary, or an error for an empty sample. The sample
// is sorted once and every quantile read routes through QuantileSorted; the
// moments come from a single mean + deviation pass (the arithmetic matches
// Mean/StdDev/CoefficientOfVariation exactly) instead of recomputing the
// mean for each derived statistic.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		N:      len(xs),
		Min:    sorted[0],
		Q1:     QuantileSorted(sorted, 0.25),
		Median: QuantileSorted(sorted, 0.5),
		Q3:     QuantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(xs),
	}
	s.StdDev = math.NaN()
	s.CoV = math.NaN()
	if len(xs) >= 2 {
		sum := 0.0
		for _, x := range xs {
			d := x - s.Mean
			sum += d * d
		}
		s.StdDev = math.Sqrt(sum / float64(len(xs)-1))
		if s.Mean != 0 {
			s.CoV = s.StdDev / s.Mean
		}
	}
	return s, nil
}

// IQR returns the interquartile range Q3 − Q1.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }
