// Package obs is the observability layer for SPA campaigns: a lightweight
// span/event tracer emitting JSONL, a concurrent metrics registry with
// Prometheus-text, JSON and expvar exposition, a campaign progress/ETA
// reporter, and a pprof server helper.
//
// Design constraints, in priority order:
//
//   - Zero dependencies: standard library only, and no imports of other
//     repro packages, so every layer of the pipeline may depend on obs.
//   - Nil safety: every method on *Tracer, *Span, *Registry, *Counter,
//     *Gauge, *Histogram, *Progress and *Observer is a no-op on a nil
//     receiver. Instrumented code never guards call sites; disabling
//     telemetry is leaving the pointer nil.
//   - Allocation-light when disabled: a nil tracer/registry adds only a
//     nil check to the hot RunFunc path (guarded by a benchmark in
//     internal/core), and telemetry never touches simulation RNG streams,
//     so enabling it cannot perturb determinism.
package obs
