package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span or event. Values must be
// JSON-encodable; the helpers below cover the common cases.
type Attr struct {
	Key   string
	Value any
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// F64 builds a float attribute.
func F64(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// U64 builds an unsigned attribute (seeds, cycle counts).
func U64(k string, v uint64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// record is the JSONL wire form: one line per completed span or event.
type record struct {
	Kind  string         `json:"kind"`            // "span" or "event"
	Name  string         `json:"name"`            // e.g. "sim.run", "spa.ci"
	Start time.Time      `json:"start"`           // wall-clock start (RFC 3339)
	DurUS int64          `json:"dur_us"`          // duration in microseconds (0 for events)
	Attrs map[string]any `json:"attrs,omitempty"` // flattened annotations
}

// Tracer emits spans and events as JSON lines to a sink. A nil *Tracer is
// a valid disabled tracer: StartSpan returns nil and every derived call is
// a no-op, so instrumentation sites need no guards.
type Tracer struct {
	mu  sync.Mutex
	enc *json.Encoder
	now func() time.Time // test seam; time.Now when nil is impossible (set in NewTracer)
}

// NewTracer builds a tracer writing one JSON object per line to w.
// A nil writer yields a nil (disabled) tracer.
func NewTracer(w io.Writer) *Tracer {
	if w == nil {
		return nil
	}
	return &Tracer{enc: json.NewEncoder(w), now: time.Now}
}

// Span is one timed operation. It is created by StartSpan and completed by
// End; attributes may be attached at either point.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
	attrs []Attr
}

// StartSpan opens a span. The span is emitted when End is called.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: t.now(), attrs: attrs}
}

// Annotate attaches attributes to an open span.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End completes the span and writes its JSONL record, appending any final
// attributes first.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
	s.t.emit("span", s.name, s.start, s.t.now().Sub(s.start), s.attrs)
}

// Event writes an instantaneous (zero-duration) record.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.emit("event", name, t.now(), 0, attrs)
}

// Emit writes a span record for an operation whose timing was measured by
// the caller — the shape run hooks need, where start and duration are known
// only at completion.
func (t *Tracer) Emit(name string, start time.Time, dur time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.emit("span", name, start, dur, attrs)
}

func (t *Tracer) emit(kind, name string, start time.Time, dur time.Duration, attrs []Attr) {
	rec := record{Kind: kind, Name: name, Start: start.UTC(), DurUS: dur.Microseconds()}
	if len(attrs) > 0 {
		rec.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Encoding errors (e.g. a closed sink) are deliberately swallowed:
	// telemetry must never fail the pipeline it observes.
	_ = t.enc.Encode(rec)
}
