package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress reports campaign completion (done/total, rate, ETA) to a
// writer. Totals may grow as a campaign discovers work (resume skips
// entries), so AddTotal is incremental; ETA is computed against the total
// known so far. A nil *Progress silences everything.
type Progress struct {
	mu      sync.Mutex
	w       io.Writer
	label   string
	total   int64
	done    int64
	started time.Time
	last    time.Time
	// every throttles run-completion lines; Logf lines always print.
	every time.Duration
	now   func() time.Time // test seam
}

// NewProgress builds a reporter writing to w. A nil writer yields a nil
// (silent) reporter. Run-completion lines are throttled to one per
// interval (default 1s when zero); milestone lines via Logf always print.
func NewProgress(w io.Writer, label string, every time.Duration) *Progress {
	if w == nil {
		return nil
	}
	if every <= 0 {
		every = time.Second
	}
	now := time.Now
	return &Progress{w: w, label: label, every: every, started: now(), now: now}
}

// AddTotal announces n more units of expected work.
func (p *Progress) AddTotal(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total += int64(n)
	p.mu.Unlock()
}

// Done records n completed units and prints a throttled progress line.
func (p *Progress) Done(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done += int64(n)
	now := p.now()
	if now.Sub(p.last) < p.every && p.done < p.total {
		return
	}
	p.last = now
	p.report(now)
}

// report prints one progress line; the caller holds the lock.
func (p *Progress) report(now time.Time) {
	elapsed := now.Sub(p.started).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(p.done) / elapsed
	}
	line := fmt.Sprintf("%s: %d", p.label, p.done)
	if p.total > 0 {
		line = fmt.Sprintf("%s: %d/%d (%.1f%%)", p.label, p.done, p.total,
			100*float64(p.done)/float64(p.total))
	}
	if rate > 0 {
		line += fmt.Sprintf(" %.1f/s", rate)
		if remaining := p.total - p.done; remaining > 0 {
			eta := time.Duration(float64(remaining)/rate*float64(time.Second)).
				Round(100 * time.Millisecond)
			line += fmt.Sprintf(" ETA %s", eta)
		}
	}
	fmt.Fprintln(p.w, line)
}

// Logf prints a milestone line (never throttled), e.g. "simulating X".
func (p *Progress) Logf(format string, args ...any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, format+"\n", args...)
}

// Finish prints a final summary line with the overall rate.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	elapsed := now.Sub(p.started).Round(time.Millisecond)
	rate := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(p.done) / secs
	}
	fmt.Fprintf(p.w, "%s: finished %d in %s (%.1f/s)\n", p.label, p.done, elapsed, rate)
}

// Counts returns (done, total) for tests and wrappers.
func (p *Progress) Counts() (done, total int64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done, p.total
}
