package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSeriesKeyCanonical(t *testing.T) {
	cases := []struct {
		name   string
		labels Labels
		want   string
	}{
		{"m", nil, "m"},
		{"m", Labels{}, "m"},
		{"m", Labels{"b": "2", "a": "1"}, `m{a="1",b="2"}`},
		{"m", Labels{"a": "1", "b": "2"}, `m{a="1",b="2"}`},
		{"m", Labels{"w": `va"l\ue` + "\n"}, `m{w="va\"l\\ue\n"}`},
	}
	for _, c := range cases {
		if got := SeriesKey(c.name, c.labels); got != c.want {
			t.Errorf("SeriesKey(%q, %v) = %q, want %q", c.name, c.labels, got, c.want)
		}
	}
}

func TestLabeledSeriesIdentity(t *testing.T) {
	reg := NewRegistry()
	// Key order must not matter: both spellings hit the same series.
	reg.CounterL("runs_total", Labels{"worker": "w1", "benchmark": "ferret"}).Add(2)
	reg.CounterL("runs_total", Labels{"benchmark": "ferret", "worker": "w1"}).Inc()
	if got := reg.CounterL("runs_total", Labels{"worker": "w1", "benchmark": "ferret"}).Value(); got != 3 {
		t.Errorf("canonicalized series value %d, want 3", got)
	}
	// A different label value is a different series.
	reg.CounterL("runs_total", Labels{"worker": "w2", "benchmark": "ferret"}).Inc()
	if got := reg.CounterL("runs_total", Labels{"worker": "w2", "benchmark": "ferret"}).Value(); got != 1 {
		t.Errorf("second series value %d, want 1", got)
	}
	// Empty labels collapse to the unlabeled fast path.
	reg.CounterL("runs_total", nil).Add(5)
	if got := reg.Counter("runs_total").Value(); got != 5 {
		t.Errorf("unlabeled value %d, want 5", got)
	}
	reg.GaugeL("g", Labels{"k": "v"}).Set(1.5)
	if got := reg.GaugeL("g", Labels{"k": "v"}).Value(); got != 1.5 {
		t.Errorf("labeled gauge %g", got)
	}
	reg.HistogramL("h", Labels{"k": "v"}).Observe(2)
	if got := reg.HistogramL("h", Labels{"k": "v"}).Count(); got != 1 {
		t.Errorf("labeled histogram count %d", got)
	}
}

func TestLabeledNilSafety(t *testing.T) {
	var reg *Registry
	reg.CounterL("c", Labels{"a": "1"}).Inc()
	reg.GaugeL("g", Labels{"a": "1"}).Set(1)
	reg.GaugeL("g", Labels{"a": "1"}).Add(1)
	reg.GaugeL("g", Labels{"a": "1"}).Sub(1)
	reg.HistogramL("h", Labels{"a": "1"}).Observe(1)
	if v := reg.CounterL("c", Labels{"a": "1"}).Value(); v != 0 {
		t.Errorf("nil labeled counter value %d", v)
	}
	var o *Observer
	o.ConvergenceRound("e", "m", "SPA", 10, 0.5, 0.1)
	o.SetStatus(func() any { return nil })
	if o.StatusFn() != nil {
		t.Error("nil observer must have no status fn")
	}
}

func TestGaugeAddSub(t *testing.T) {
	g := &Gauge{}
	g.Add(2.5)
	g.Add(1.5)
	g.Sub(1)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge value %g, want 3", got)
	}
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(1)
				g.Sub(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 3 {
		t.Errorf("gauge value after balanced concurrent add/sub %g, want 3", got)
	}
}

func TestInflightGauge(t *testing.T) {
	o := &Observer{Metrics: NewRegistry()}
	o.RunStarted()
	o.RunStarted()
	if got := o.Metrics.Gauge(MetricRunsInflight).Value(); got != 2 {
		t.Errorf("inflight after two starts %g, want 2", got)
	}
	o.RunDone("ferret", 1, 10, nil, time.Time{}, 0)
	if got := o.Metrics.Gauge(MetricRunsInflight).Value(); got != 1 {
		t.Errorf("inflight after one done %g, want 1", got)
	}
	if got := o.Metrics.CounterL(MetricBenchmarkRuns, Labels{"benchmark": "ferret"}).Value(); got != 1 {
		t.Errorf("per-benchmark runs %d, want 1", got)
	}
}

func TestLabeledPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("spa_x_total").Add(4)
	reg.CounterL("spa_x_total", Labels{"worker": "w1"}).Add(3)
	reg.CounterL("spa_x_total", Labels{"worker": "w2"}).Add(1)
	reg.GaugeL(MetricDistWorkerThroughput, Labels{"worker": "w1"}).Set(12.5)
	reg.HistogramL("spa_dur_seconds", Labels{"worker": "w1"}).Observe(0.002)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"# TYPE spa_x_total counter",
		"spa_x_total 4",
		`spa_x_total{worker="w1"} 3`,
		`spa_x_total{worker="w2"} 1`,
		`spa_dist_worker_throughput_runs_per_s{worker="w1"} 12.5`,
		`spa_dur_seconds_bucket{worker="w1",le="4e-06"} 0`,
		`spa_dur_seconds_bucket{worker="w1",le="0.004"} 1`,
		`spa_dur_seconds_bucket{worker="w1",le="+Inf"} 1`,
		`spa_dur_seconds_sum{worker="w1"} 0.002`,
		`spa_dur_seconds_count{worker="w1"} 1`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("labeled exposition missing %q:\n%s", frag, out)
		}
	}
	// One TYPE line per family even with mixed labeled/unlabeled series.
	if n := strings.Count(out, "# TYPE spa_x_total counter"); n != 1 {
		t.Errorf("family spa_x_total declared %d times, want 1:\n%s", n, out)
	}
}

// TestHistogramBucketSetStable is the regression test for the scrape-vs-
// scrape bucket drift: an empty histogram region must still emit every
// bucket, so histogram_quantile sees an identical bucket layout no matter
// when counts arrive.
func TestHistogramBucketSetStable(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("h").Observe(2) // lands mid-layout
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	first := countBucketLines(buf.String(), "h_bucket")
	if want := numHistBuckets + 1; first != want {
		t.Fatalf("one observation exposed %d buckets, want all %d", first, want)
	}
	reg.Histogram("h").Observe(0.5e-6) // earlier bucket fills in later
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if second := countBucketLines(buf.String(), "h_bucket"); second != first {
		t.Errorf("bucket set changed between scrapes: %d then %d", first, second)
	}
}

func countBucketLines(out, prefix string) int {
	n := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix+"{") {
			n++
		}
	}
	return n
}
