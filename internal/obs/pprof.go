package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartPprof serves the net/http/pprof handlers (and /debug/vars) on addr
// (e.g. "localhost:6060" or ":0" for an ephemeral port) in a background
// goroutine. It returns the bound address and a stop function. The server
// uses its own mux, so importing obs never pollutes http.DefaultServeMux.
func StartPprof(addr string) (boundAddr string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof listen on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// ErrServerClosed is the normal shutdown path; anything else is a
		// telemetry failure that must not take the campaign down.
		_ = srv.Serve(ln)
	}()
	stop = func() {
		_ = srv.Close()
		<-done
	}
	return ln.Addr().String(), stop, nil
}
