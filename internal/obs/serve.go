package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// ServeTelemetry serves the observer's live telemetry over HTTP on addr
// (e.g. "localhost:9780" or ":0" for an ephemeral port) in a background
// goroutine:
//
//	/metrics  Prometheus text 0.0.4 (labeled and unlabeled families)
//	/statusz  JSON from the installed status source (see SetStatus)
//	/healthz  "ok" liveness probe
//
// It returns the bound address and a stop function. The mux is private,
// so importing obs never pollutes http.DefaultServeMux; telemetry
// failures never take the campaign down.
func ServeTelemetry(addr string, o *Observer) (boundAddr string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: telemetry listen on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewTelemetryMux(o), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln) // ErrServerClosed is the normal shutdown path
	}()
	stop = func() {
		_ = srv.Close()
		<-done
	}
	return ln.Addr().String(), stop, nil
}

// NewTelemetryMux builds the /metrics, /statusz and /healthz handlers on
// a fresh mux. ServeTelemetry uses it for the standalone endpoint;
// servers with their own HTTP surface (spad) mount the same handlers
// next to their API routes so one port serves both.
func NewTelemetryMux(o *Observer) *http.ServeMux {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.M().WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var body any
		if fn := o.StatusFn(); fn != nil {
			body = fn()
		} else {
			// No richer source installed yet: liveness plus uptime, so
			// /statusz is useful from process start.
			body = map[string]any{"status": "ok", "uptime_s": time.Since(start).Seconds()}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(body); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}
