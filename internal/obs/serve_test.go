package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, addr, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServeTelemetryEndpoints(t *testing.T) {
	o := &Observer{Metrics: NewRegistry()}
	o.Metrics.Counter(MetricRunsCompleted).Add(9)
	o.Metrics.GaugeL(MetricDistWorkerInflight, Labels{"worker": "w1"}).Set(4)

	addr, stop, err := ServeTelemetry("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	code, body, hdr := get(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, frag := range []string{
		"spa_runs_completed_total 9",
		`spa_dist_worker_inflight{worker="w1"} 4`,
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("/metrics missing %q:\n%s", frag, body)
		}
	}

	// Default /statusz before a source is installed: liveness + uptime.
	code, body, _ = get(t, addr, "/statusz")
	if code != http.StatusOK || !strings.Contains(body, `"status"`) {
		t.Errorf("/statusz default: %d %s", code, body)
	}

	// An installed source takes over, and installs are visible live.
	o.SetStatus(func() any {
		return map[string]any{"campaign": "nightly", "chunks_in_flight": 3}
	})
	code, body, _ = get(t, addr, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var st struct {
		Campaign string `json:"campaign"`
		InFlight int    `json:"chunks_in_flight"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if st.Campaign != "nightly" || st.InFlight != 3 {
		t.Errorf("/statusz content wrong: %s", body)
	}

	code, body, _ = get(t, addr, "/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz: %d %q", code, body)
	}
}

func TestFlagsStartTelemetryServer(t *testing.T) {
	f := Flags{TelemetryAddr: "127.0.0.1:0"}
	if !f.Enabled() {
		t.Fatal("-telemetry-addr alone must enable telemetry")
	}
	o, closeFn, err := f.Start("runs", nil)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Metrics == nil {
		t.Fatal("telemetry-only flags must still build a registry")
	}
	// The bound address is not surfaced by Start (it logs to stderr), so
	// exercise shutdown only: closing must stop the server without error.
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
}
