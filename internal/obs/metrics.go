package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Standard metric names used across the pipeline, so exposition is uniform
// no matter which layer incremented them.
const (
	MetricRunsStarted   = "spa_runs_started_total"
	MetricRunsCompleted = "spa_runs_completed_total"
	MetricRunsFailed    = "spa_runs_failed_total"
	MetricRunDuration   = "spa_run_duration_seconds"
	MetricSMCTests      = "spa_smc_tests_total"
	MetricCIBuilt       = "spa_ci_built_total"
	MetricCIFailed      = "spa_ci_failed_total"
	MetricCIWidth       = "spa_ci_width"
	MetricAdaptiveRound = "spa_adaptive_rounds_total"
	MetricTrials        = "spa_trials_total"
	MetricEntriesReused = "spa_entries_reused_total"

	// Distributed execution (internal/dist). Coordinator side unless
	// noted: chunks dispatched/completed, re-dispatches after a worker
	// failure, connection retries, workers declared dead, chunks that
	// degraded to in-process execution, and chunks served (worker side).
	MetricDistChunksDispatched = "spa_dist_chunks_dispatched_total"
	MetricDistChunksCompleted  = "spa_dist_chunks_completed_total"
	MetricDistRedispatches     = "spa_dist_redispatches_total"
	MetricDistRetries          = "spa_dist_conn_retries_total"
	MetricDistWorkersDead      = "spa_dist_workers_dead_total"
	MetricDistLocalChunks      = "spa_dist_local_fallback_chunks_total"
	MetricDistChunksServed     = "spa_dist_chunks_served_total"
	MetricDistWorkerRuns       = "spa_dist_worker_runs_total"

	// Chaos fault injection (internal/faultx): connections wrapped with
	// a fault schedule, faults actually fired, and connection attempts
	// refused outright.
	MetricChaosConns    = "spa_chaos_conns_total"
	MetricChaosFaults   = "spa_chaos_faults_total"
	MetricChaosRefusals = "spa_chaos_refusals_total"

	// In-flight simulation runs (gauge): RunStarted adds, RunDone
	// subtracts, so /metrics shows live concurrency rather than only
	// cumulative counters.
	MetricRunsInflight = "spa_runs_inflight"

	// Labeled families. Per-benchmark run attribution (campaigns mix
	// benchmarks in one process), per-worker fleet gauges folded by the
	// coordinator from wire telemetry (the signals adaptive scheduling
	// consumes), per-chaos-scenario fault attribution, and the adaptive
	// CI convergence trace (one gauge update per refinement round).
	MetricBenchmarkRuns            = "spa_benchmark_runs_total"              // {benchmark}
	MetricDistWorkerThroughput     = "spa_dist_worker_throughput_runs_per_s" // {worker}
	MetricDistWorkerInflight       = "spa_dist_worker_inflight"              // {worker}
	MetricDistWorkerRunsServed     = "spa_dist_worker_runs_served"           // {worker}
	MetricDistWorkerMeanRunSeconds = "spa_dist_worker_run_seconds_mean"      // {worker}
	MetricDistWorkerChunks         = "spa_dist_worker_chunks_total"          // {worker}
	MetricChaosFaultsByKind        = "spa_chaos_fault_total"                 // {kind}
	MetricCIConvergence            = "spa_ci_convergence"                    // {entry,metric,method} current width
	MetricCIConvergenceRuns        = "spa_ci_convergence_runs"               // {entry,metric,method}
	MetricCIConvergenceTarget      = "spa_ci_convergence_target"             // {entry,metric,method}

	// Campaign service (internal/campaignd), all labeled by tenant:
	// campaigns accepted, admission rejections (reason=queue_full|
	// inflight_full|server_full), live queue depth and running gauges,
	// terminal transitions (state=done|failed|cancelled), campaigns
	// resumed from the journal after a restart, and per-entry progress.
	MetricCampaignSubmitted   = "spa_campaignd_submitted_total"     // {tenant}
	MetricCampaignRejected    = "spa_campaignd_rejected_total"      // {tenant,reason}
	MetricCampaignQueueDepth  = "spa_campaignd_queue_depth"         // {tenant}
	MetricCampaignRunning     = "spa_campaignd_running"             // {tenant}
	MetricCampaignDone        = "spa_campaignd_campaigns_total"     // {tenant,state}
	MetricCampaignResumed     = "spa_campaignd_resumed_total"       // {tenant}
	MetricCampaignEntriesDone = "spa_campaignd_entries_done_total"  // {tenant}
	MetricCampaignSchedPasses = "spa_campaignd_scheduler_passes_total"
)

// Counter is a monotonically increasing integer metric. Nil counters
// (from a nil registry) absorb all operations.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Add increases the gauge by d (CAS on the float bits, lock-free and
// safe from any number of goroutines). Nil gauges absorb the call.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sub decreases the gauge by d.
func (g *Gauge) Sub(d float64) { g.Add(-d) }

// numHistBuckets is the number of finite histogram buckets.
const numHistBuckets = 18

// histBuckets are the shared exponential bucket upper bounds (factor 4
// from 1µ to 16k, in the metric's own units — seconds for durations,
// metric units for CI widths). A fixed layout keeps Observe lock-free.
var histBuckets = [numHistBuckets]float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6,
	1e-3, 4e-3, 16e-3, 64e-3, 256e-3,
	1, 4, 16, 64, 256, 1024, 4096, 16384,
}

// Histogram is a fixed-bucket distribution metric. Observe is lock-free.
type Histogram struct {
	counts  [numHistBuckets + 1]atomic.Int64 // last bucket is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(histBuckets) && v > histBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the observation mean (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Registry is a concurrent get-or-create store of named metrics. A nil
// *Registry hands out nil collectors, so a disabled pipeline pays only
// pointer checks.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Labels is one metric label set. Key order never matters: the registry
// canonicalizes to sorted `k="v"` form, so L{"a":"1","b":"2"} and
// L{"b":"2","a":"1"} name the same series.
type Labels map[string]string

// labelEscaper quotes label values per the Prometheus text format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// SeriesKey canonicalizes a labeled series name: the family name followed
// by a sorted `{k="v",...}` block (or the bare name for empty labels).
// This is the registry's storage key and, verbatim, the Prometheus series
// identity, which keeps exposition a string copy.
func SeriesKey(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// CounterL returns the counter for one (name, label set) series, creating
// it on first use. The unlabeled fast path (Counter) is untouched: a
// labeled lookup pays one canonicalization, after which callers should
// hold the returned *Counter for hot paths.
func (r *Registry) CounterL(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.Counter(SeriesKey(name, labels))
}

// GaugeL returns the gauge for one (name, label set) series.
func (r *Registry) GaugeL(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.Gauge(SeriesKey(name, labels))
}

// HistogramL returns the histogram for one (name, label set) series.
func (r *Registry) HistogramL(name string, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	return r.Histogram(SeriesKey(name, labels))
}
