package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// promSeries is one parsed sample line.
type promSeries struct {
	family string
	labels string // canonical block incl. braces, "" when unlabeled
	le     string // value of the le label for _bucket series, "" otherwise
	value  float64
	isInt  bool
}

// promDoc is a strictly parsed exposition document.
type promDoc struct {
	types  map[string]string       // family -> counter|gauge|histogram
	series map[string][]promSeries // family (or family_bucket/_sum/_count base) -> samples
}

// parsePrometheus is a strict line parser for the text format 0.0.4
// subset WritePrometheus emits. It fails on: series without a TYPE,
// series of one family split across TYPE blocks, duplicate TYPE lines,
// malformed label blocks, and non-numeric values.
func parsePrometheus(t *testing.T, out string) *promDoc {
	t.Helper()
	doc := &promDoc{types: map[string]string{}, series: map[string][]promSeries{}}
	current := ""
	for ln, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		fail := func(format string, args ...any) {
			t.Fatalf("line %d %q: %s", ln+1, line, fmt.Sprintf(format, args...))
		}
		if line == "" {
			fail("empty line")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				fail("malformed TYPE line")
			}
			fam, typ := parts[2], parts[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				fail("unknown type %q", typ)
			}
			if _, dup := doc.types[fam]; dup {
				fail("family %s declared twice (series split across TYPE blocks)", fam)
			}
			doc.types[fam] = typ
			current = fam
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comments other than TYPE are legal
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			fail("no value")
		}
		key, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			fail("value: %v", err)
		}
		s := promSeries{value: v}
		_, err = strconv.ParseInt(valStr, 10, 64)
		s.isInt = err == nil
		s.family, s.labels = familyOf(key)
		if s.labels != "" {
			if !strings.HasSuffix(s.labels, "}") {
				fail("unterminated label block")
			}
			for _, pair := range strings.Split(s.labels[1:len(s.labels)-1], `",`) {
				name, val, ok := strings.Cut(pair, `="`)
				if !ok {
					fail("malformed label pair %q", pair)
				}
				if name == "le" {
					s.le = strings.TrimSuffix(val, `"`)
				}
			}
		}
		// The owning family: strip histogram suffixes for membership.
		owner := s.family
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.family, suf)
			if base != s.family && doc.types[base] == "histogram" {
				owner = base
				break
			}
		}
		if doc.types[owner] == "" {
			fail("series %s has no TYPE declaration", key)
		}
		if owner != current {
			fail("series %s outside its family's TYPE block (current %s)", key, current)
		}
		doc.series[s.family] = append(doc.series[s.family], s)
	}
	return doc
}

// verifyHistogram checks one histogram family's invariants: the full
// fixed bucket set per series, monotone non-decreasing cumulative
// counts, le="+Inf" equal to _count, and _sum/_count present per series.
func verifyHistogram(t *testing.T, doc *promDoc, fam string) {
	t.Helper()
	byBlock := map[string][]promSeries{}
	for _, s := range doc.series[fam+"_bucket"] {
		// Strip the trailing le pair to group buckets per series.
		block := s.labels
		i := strings.LastIndex(block, "le=")
		if i < 0 {
			t.Fatalf("%s bucket without le: %+v", fam, s)
		}
		block = strings.TrimSuffix(strings.TrimSuffix(block[:i], ","), "{")
		byBlock[block] = append(byBlock[block], s)
	}
	counts := map[string]float64{}
	for _, s := range doc.series[fam+"_count"] {
		counts[strings.Trim(s.labels, "{}")] = s.value
	}
	sums := map[string]bool{}
	for _, s := range doc.series[fam+"_sum"] {
		sums[strings.Trim(s.labels, "{}")] = true
	}
	if len(byBlock) == 0 {
		t.Fatalf("%s: no bucket series", fam)
	}
	for block, buckets := range byBlock {
		key := strings.Trim(block, "{}")
		if want := numHistBuckets + 1; len(buckets) != want {
			t.Errorf("%s{%s}: %d buckets, want the full fixed set of %d", fam, block, len(buckets), want)
		}
		prev := -1.0
		var inf float64
		for _, b := range buckets {
			if b.value < prev {
				t.Errorf("%s{%s}: cumulative bucket counts decrease at le=%s (%g after %g)", fam, block, b.le, b.value, prev)
			}
			prev = b.value
			if b.le == "+Inf" {
				inf = b.value
			}
		}
		cnt, ok := counts[key]
		if !ok {
			t.Errorf("%s{%s}: missing _count", fam, block)
		}
		if inf != cnt {
			t.Errorf("%s{%s}: le=+Inf bucket %g != _count %g", fam, block, inf, cnt)
		}
		if !sums[key] {
			t.Errorf("%s{%s}: missing _sum", fam, block)
		}
	}
}

// TestPrometheusRoundTripCompliance builds a registry exercising every
// collector shape — counters, gauges, labeled series, histograms both
// bare and labeled — and round-trips WritePrometheus through the strict
// parser above.
func TestPrometheusRoundTripCompliance(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricRunsCompleted).Add(41)
	reg.CounterL(MetricBenchmarkRuns, Labels{"benchmark": "ferret"}).Add(40)
	reg.CounterL(MetricBenchmarkRuns, Labels{"benchmark": "x264"}).Inc()
	reg.Gauge(MetricRunsInflight).Add(3)
	reg.GaugeL(MetricDistWorkerThroughput, Labels{"worker": "127.0.0.1:9777"}).Set(123.5)
	reg.GaugeL(MetricDistWorkerThroughput, Labels{"worker": "127.0.0.1:9778"}).Set(99.25)
	for _, v := range []float64{0.5e-6, 3e-3, 3e-3, 2, 1e9} {
		reg.Histogram(MetricRunDuration).Observe(v)
	}
	reg.HistogramL(MetricRunDuration+"_by_worker", Labels{"worker": "w1"}).Observe(0.25)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	doc := parsePrometheus(t, buf.String())

	if doc.types[MetricRunsCompleted] != "counter" {
		t.Errorf("runs counter type %q", doc.types[MetricRunsCompleted])
	}
	for _, s := range doc.series[MetricRunsCompleted] {
		if !s.isInt {
			t.Errorf("counter sample not integer: %+v", s)
		}
	}
	if got := len(doc.series[MetricBenchmarkRuns]); got != 2 {
		t.Errorf("%d benchmark-labeled counter series, want 2", got)
	}
	if doc.types[MetricDistWorkerThroughput] != "gauge" {
		t.Errorf("throughput type %q", doc.types[MetricDistWorkerThroughput])
	}
	if got := len(doc.series[MetricDistWorkerThroughput]); got != 2 {
		t.Errorf("%d worker throughput series, want 2", got)
	}
	verifyHistogram(t, doc, MetricRunDuration)
	verifyHistogram(t, doc, MetricRunDuration+"_by_worker")

	// The document is stable: a second write parses identically.
	var buf2 bytes.Buffer
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("WritePrometheus is not deterministic for an unchanged registry")
	}
}
