package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
)

// snapshot is a point-in-time copy of the registry, used by every
// exposition format so they agree on what they saw.
type snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]histogramStats `json:"histograms,omitempty"`
}

type histogramStats struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Mean    float64          `json:"mean"`
	Buckets []histogramBound `json:"buckets,omitempty"`
}

type histogramBound struct {
	LE         string `json:"le"` // formatted upper bound; "+Inf" for the last bucket
	Cumulative int64  `json:"cumulative"`
}

func (r *Registry) snapshot() snapshot {
	var s snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]histogramStats, len(r.histograms))
		for n, h := range r.histograms {
			hs := histogramStats{Count: h.Count(), Sum: h.Sum(), Mean: h.Mean()}
			var cum int64
			for i := range h.counts {
				cum += h.counts[i].Load()
				if cum == 0 {
					continue // leading empty buckets add no information
				}
				le := "+Inf"
				if i < len(histBuckets) {
					le = fmt.Sprintf("%g", histBuckets[i])
				}
				hs.Buckets = append(hs.Buckets, histogramBound{LE: le, Cumulative: cum})
			}
			s.Histograms[n] = hs
		}
	}
	return s
}

// WriteJSON writes the registry as one indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.snapshot())
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): counters as `counter`, gauges as `gauge`,
// histograms as `histogram` with cumulative `_bucket{le=...}` series.
// Families are sorted by name so output is diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.snapshot()
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		pf("# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pf("# TYPE %s gauge\n%s %g\n", name, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pf("# TYPE %s histogram\n", name)
		for _, b := range h.Buckets {
			pf("%s_bucket{le=%q} %d\n", name, b.LE, b.Cumulative)
		}
		pf("%s_sum %g\n%s_count %d\n", name, h.Sum, name, h.Count)
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// expvarPublished guards against double-publishing, which expvar treats
// as a fatal error; republishing an existing name is a no-op here.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exposes the registry under the given expvar name (shown
// at /debug/vars when an HTTP server — e.g. the -pprof one — is up). The
// value re-snapshots on every read.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || name == "" {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.snapshot() }))
}
