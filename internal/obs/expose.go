package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// snapshot is a point-in-time copy of the registry, used by every
// exposition format so they agree on what they saw.
type snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]histogramStats `json:"histograms,omitempty"`
}

type histogramStats struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Mean    float64          `json:"mean"`
	Buckets []histogramBound `json:"buckets,omitempty"`
}

type histogramBound struct {
	LE         string `json:"le"` // formatted upper bound; "+Inf" for the last bucket
	Cumulative int64  `json:"cumulative"`
}

func (r *Registry) snapshot() snapshot {
	var s snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]histogramStats, len(r.histograms))
		for n, h := range r.histograms {
			hs := histogramStats{Count: h.Count(), Sum: h.Sum(), Mean: h.Mean()}
			// Every bucket is emitted, including empty ones and +Inf: a
			// bucket set that grows as counts arrive would change between
			// scrapes, which breaks histogram_quantile over the series.
			hs.Buckets = make([]histogramBound, 0, len(h.counts))
			var cum int64
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := "+Inf"
				if i < len(histBuckets) {
					le = fmt.Sprintf("%g", histBuckets[i])
				}
				hs.Buckets = append(hs.Buckets, histogramBound{LE: le, Cumulative: cum})
			}
			s.Histograms[n] = hs
		}
	}
	return s
}

// WriteJSON writes the registry as one indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.snapshot())
}

// familyOf splits a series key (possibly carrying a canonical label
// block, see SeriesKey) into the metric family name and the label block
// (with braces; empty for unlabeled series).
func familyOf(key string) (family, block string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}

// familyGroups orders series keys for exposition: families sorted by
// name, and within one family the unlabeled series first, then labeled
// series in canonical-block order — so every series of a family sits
// under a single # TYPE line, as the text format requires.
func familyGroups[V any](m map[string]V) (families []string, series map[string][]string) {
	series = make(map[string][]string, len(m))
	for key := range m {
		fam, _ := familyOf(key)
		if _, ok := series[fam]; !ok {
			families = append(families, fam)
		}
		series[fam] = append(series[fam], key)
	}
	sort.Strings(families)
	for _, keys := range series {
		sort.Strings(keys) // "fam" < "fam{...}", blocks canonical-sorted
	}
	return families, series
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): counters as `counter`, gauges as `gauge`,
// histograms as `histogram` with cumulative `_bucket{le=...}` series.
// Labeled series (CounterL et al.) are grouped under their family's one
// # TYPE line. Families are sorted by name so output is diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.snapshot()
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	fams, series := familyGroups(s.Counters)
	for _, fam := range fams {
		pf("# TYPE %s counter\n", fam)
		for _, key := range series[fam] {
			pf("%s %d\n", key, s.Counters[key])
		}
	}
	fams, series = familyGroups(s.Gauges)
	for _, fam := range fams {
		pf("# TYPE %s gauge\n", fam)
		for _, key := range series[fam] {
			pf("%s %g\n", key, s.Gauges[key])
		}
	}
	fams, series = familyGroups(s.Histograms)
	for _, fam := range fams {
		pf("# TYPE %s histogram\n", fam)
		for _, key := range series[fam] {
			h := s.Histograms[key]
			_, block := familyOf(key)
			for _, b := range h.Buckets {
				pf("%s_bucket%s %d\n", fam, mergeLE(block, b.LE), b.Cumulative)
			}
			pf("%s_sum%s %g\n%s_count%s %d\n", fam, block, h.Sum, fam, block, h.Count)
		}
	}
	return err
}

// mergeLE splices the le label into a series' canonical label block:
// “ + 1 → `{le="1"}`, `{worker="w"}` + 1 → `{worker="w",le="1"}`.
func mergeLE(block, le string) string {
	if block == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("%s,le=%q}", block[:len(block)-1], le)
}

// expvarPublished guards against double-publishing, which expvar treats
// as a fatal error; republishing an existing name is a no-op here.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exposes the registry under the given expvar name (shown
// at /debug/vars when an HTTP server — e.g. the -pprof one — is up). The
// value re-snapshots on every read.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || name == "" {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.snapshot() }))
}
