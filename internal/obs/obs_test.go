package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	// Deterministic clock: each call advances 1ms.
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tick := 0
	tr.now = func() time.Time { tick++; return base.Add(time.Duration(tick) * time.Millisecond) }

	s := tr.StartSpan("sim.run", Str("benchmark", "ferret"), U64("seed", 42))
	s.Annotate(U64("cycles", 1000))
	s.End(F64("runtime_s", 0.5))
	tr.Event("campaign.reused", Str("entry", "x"))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var rec record
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Kind != "span" || rec.Name != "sim.run" || rec.DurUS != 1000 {
		t.Errorf("span record wrong: %+v", rec)
	}
	for _, k := range []string{"benchmark", "seed", "cycles", "runtime_s"} {
		if _, ok := rec.Attrs[k]; !ok {
			t.Errorf("span missing attr %q: %v", k, rec.Attrs)
		}
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Kind != "event" || rec.Name != "campaign.reused" || rec.DurUS != 0 {
		t.Errorf("event record wrong: %+v", rec)
	}
}

func TestNilSafety(t *testing.T) {
	// Every call below must be a no-op rather than a panic.
	var tr *Tracer
	sp := tr.StartSpan("x", Str("a", "b"))
	sp.Annotate(Int("i", 1))
	sp.End()
	tr.Event("x")
	tr.Emit("x", time.Now(), time.Second)

	var reg *Registry
	reg.Counter("c").Inc()
	reg.Counter("c").Add(3)
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(2)
	if v := reg.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value %d", v)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Errorf("nil registry prom: %v", err)
	}
	if err := reg.WriteJSON(&buf); err != nil {
		t.Errorf("nil registry json: %v", err)
	}
	reg.PublishExpvar("nil_reg")

	var p *Progress
	p.AddTotal(5)
	p.Done(1)
	p.Logf("x %d", 1)
	p.Finish()

	var o *Observer
	o.Logf("x")
	o.RunStarted()
	o.RunDone("b", 1, 2, nil, time.Time{}, time.Millisecond)
	o.CIBuilt("SPA", 0.5, nil)
	if NewTracer(nil) != nil || NewProgress(nil, "x", 0) != nil {
		t.Error("nil sinks must yield nil components")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 16, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				reg.Counter("runs").Inc()
				reg.Gauge("last").Set(float64(i))
				reg.Histogram("dur").Observe(float64(i%7) * 0.001)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("runs").Value(); got != workers*per {
		t.Errorf("counter %d, want %d", got, workers*per)
	}
	if got := reg.Histogram("dur").Count(); got != workers*per {
		t.Errorf("histogram count %d, want %d", got, workers*per)
	}
}

func TestHistogramBucketsAndMean(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{0.5e-6, 2, 3, 1e9} { // first, mid, mid, +Inf buckets
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count %d", h.Count())
	}
	wantSum := 0.5e-6 + 2 + 3 + 1e9
	if h.Sum() != wantSum {
		t.Errorf("sum %g want %g", h.Sum(), wantSum)
	}
	if h.Mean() != wantSum/4 {
		t.Errorf("mean %g", h.Mean())
	}
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("first bucket %d, want 1", got)
	}
	if got := h.counts[len(histBuckets)].Load(); got != 1 {
		t.Errorf("+Inf bucket %d, want 1", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricRunsCompleted).Add(7)
	reg.Gauge("spa_scale").Set(0.5)
	reg.Histogram(MetricRunDuration).Observe(0.002)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"# TYPE spa_runs_completed_total counter",
		"spa_runs_completed_total 7",
		"# TYPE spa_scale gauge",
		"spa_scale 0.5",
		"# TYPE spa_run_duration_seconds histogram",
		`spa_run_duration_seconds_bucket{le="+Inf"} 1`,
		"spa_run_duration_seconds_count 1",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("prometheus output missing %q:\n%s", frag, out)
		}
	}
}

func TestJSONExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Inc()
	reg.Histogram("h").Observe(3)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			Mean  float64 `json:"mean"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["a_total"] != 1 || snap.Histograms["h"].Count != 1 || snap.Histograms["h"].Mean != 3 {
		t.Errorf("json snapshot wrong: %+v", snap)
	}
}

func TestProgressRateAndETA(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "runs", time.Nanosecond)
	base := time.Unix(1000, 0)
	step := 0
	p.now = func() time.Time { step++; return base.Add(time.Duration(step) * time.Second) }
	p.started = base
	p.AddTotal(10)
	p.Done(5) // at t=1s: 5/10, 5/s, ETA 1s
	out := buf.String()
	for _, frag := range []string{"runs: 5/10 (50.0%)", "5.0/s", "ETA 1s"} {
		if !strings.Contains(out, frag) {
			t.Errorf("progress line missing %q: %s", frag, out)
		}
	}
	buf.Reset()
	p.Done(5)
	if !strings.Contains(buf.String(), "runs: 10/10 (100.0%)") {
		t.Errorf("completion line wrong: %s", buf.String())
	}
	buf.Reset()
	p.Finish()
	if !strings.Contains(buf.String(), "finished 10 in") {
		t.Errorf("finish line wrong: %s", buf.String())
	}
}

func TestProgressThrottles(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "runs", time.Hour)
	p.AddTotal(1000)
	for i := 0; i < 100; i++ {
		p.Done(1)
	}
	// Only the first Done (elapsed ≥ last=zero-time + interval) may print.
	if n := strings.Count(buf.String(), "\n"); n > 1 {
		t.Errorf("throttle failed: %d lines", n)
	}
	done, total := p.Counts()
	if done != 100 || total != 1000 {
		t.Errorf("counts %d/%d", done, total)
	}
}

func TestObserverRunLifecycle(t *testing.T) {
	var trace, prog bytes.Buffer
	o := &Observer{
		Tracer:   NewTracer(&trace),
		Metrics:  NewRegistry(),
		Progress: NewProgress(&prog, "runs", time.Nanosecond),
	}
	o.Progress.AddTotal(2)
	o.RunStarted()
	o.RunStarted()
	o.RunDone("ferret", 1, 12345, nil, time.Time{}, 2*time.Millisecond)
	o.RunDone("ferret", 2, 0, errors.New("boom"), time.Time{}, time.Millisecond)
	if got := o.Metrics.Counter(MetricRunsStarted).Value(); got != 2 {
		t.Errorf("started %d", got)
	}
	if got := o.Metrics.Counter(MetricRunsCompleted).Value(); got != 1 {
		t.Errorf("completed %d", got)
	}
	if got := o.Metrics.Counter(MetricRunsFailed).Value(); got != 1 {
		t.Errorf("failed %d", got)
	}
	if got := o.Metrics.Histogram(MetricRunDuration).Count(); got != 2 {
		t.Errorf("duration observations %d", got)
	}
	if n := strings.Count(trace.String(), `"sim.run"`); n != 2 {
		t.Errorf("trace has %d sim.run spans:\n%s", n, trace.String())
	}
	if !strings.Contains(trace.String(), `"error":"boom"`) {
		t.Errorf("failed run span missing error attr:\n%s", trace.String())
	}
	o.CIBuilt("SPA", 0.25, nil)
	o.CIBuilt("Bootstrap", 0, errors.New("degenerate"))
	if o.Metrics.Counter(MetricCIBuilt).Value() != 1 || o.Metrics.Counter(MetricCIFailed).Value() != 1 {
		t.Error("CI counters wrong")
	}
}

func TestStartPprofServes(t *testing.T) {
	addr, stop, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", resp.StatusCode)
	}
	vars, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer vars.Body.Close()
	if vars.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars status %d", vars.StatusCode)
	}
}

func TestFlagsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.prom")

	var f Flags
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{
		"-trace", tracePath, "-metrics", metricsPath, "-progress",
	}); err != nil {
		t.Fatal(err)
	}
	var prog bytes.Buffer
	o, closeFn, err := f.Start("runs", &prog)
	if err != nil {
		t.Fatal(err)
	}
	o.Progress.AddTotal(1)
	o.RunStarted()
	o.RunDone("swaptions", 9, 100, nil, time.Time{}, time.Millisecond)
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}

	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(traceData), `"sim.run"`) {
		t.Errorf("trace file missing span:\n%s", traceData)
	}
	metricsData, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metricsData), "spa_runs_completed_total 1") {
		t.Errorf("metrics dump missing counter:\n%s", metricsData)
	}
	if !strings.Contains(prog.String(), "finished 1") {
		t.Errorf("progress missing finish line: %s", prog.String())
	}
}

func TestFlagsDisabled(t *testing.T) {
	var f Flags
	o, closeFn, err := f.Start("runs", nil)
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Error("disabled flags must yield a nil observer")
	}
	if err := closeFn(); err != nil {
		t.Errorf("no-op close: %v", err)
	}
}
