package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// Flags is the shared CLI surface for telemetry, registered identically on
// every command (spa, simrun, campaign, experiments, spaworker).
type Flags struct {
	Trace         string
	Metrics       string
	Pprof         string
	Progress      bool
	TelemetryAddr string
	TelemetryHold time.Duration
}

// Register installs the telemetry flags on a FlagSet.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Trace, "trace", "", "write a JSONL span/event trace to this file (- for stderr)")
	fs.StringVar(&f.Metrics, "metrics", "", "dump metrics at exit to this file (- for stderr; .json selects JSON, otherwise Prometheus text)")
	fs.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof and /debug/vars on this address (e.g. localhost:6060)")
	fs.BoolVar(&f.Progress, "progress", false, "report campaign progress (done/total, rate, ETA)")
	fs.StringVar(&f.TelemetryAddr, "telemetry-addr", "", "serve /metrics (Prometheus), /statusz (JSON) and /healthz on this address (e.g. localhost:9780)")
	fs.DurationVar(&f.TelemetryHold, "telemetry-hold", 0, "keep the -telemetry-addr server up this long after the command finishes, so a final scrape can observe end state")
}

// Enabled reports whether any telemetry backend was requested.
func (f *Flags) Enabled() bool {
	return f.Trace != "" || f.Metrics != "" || f.Pprof != "" || f.Progress || f.TelemetryAddr != ""
}

// Start builds the Observer the flags describe and returns a close
// function that flushes everything (metrics dump, trace file, pprof
// server, final progress line). label names the progress stream;
// progressW receives progress lines (falling back to stderr when nil).
// A fully disabled flag set yields a nil Observer and a no-op close.
func (f *Flags) Start(label string, progressW io.Writer) (*Observer, func() error, error) {
	if !f.Enabled() {
		return nil, func() error { return nil }, nil
	}
	o := &Observer{}
	var closers []func() error

	if f.Trace != "" {
		w, c, err := openSink(f.Trace)
		if err != nil {
			return nil, nil, err
		}
		o.Tracer = NewTracer(w)
		closers = append(closers, c)
	}
	// Any telemetry mode gets a registry: pprof exposes it via
	// /debug/vars, traces and progress cost nothing to count alongside.
	o.Metrics = NewRegistry()
	o.Metrics.PublishExpvar("spa_metrics")
	if f.Metrics != "" {
		w, c, err := openSink(f.Metrics)
		if err != nil {
			closeAll(closers)
			return nil, nil, err
		}
		reg := o.Metrics
		dumpJSON := strings.HasSuffix(f.Metrics, ".json")
		closers = append(closers, func() error {
			if dumpJSON {
				if err := reg.WriteJSON(w); err != nil {
					return err
				}
			} else if err := reg.WritePrometheus(w); err != nil {
				return err
			}
			return c()
		})
	}
	if f.Pprof != "" {
		addr, stop, err := StartPprof(f.Pprof)
		if err != nil {
			closeAll(closers)
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", addr)
		closers = append(closers, func() error { stop(); return nil })
	}
	if f.TelemetryAddr != "" {
		addr, stop, err := ServeTelemetry(f.TelemetryAddr, o)
		if err != nil {
			closeAll(closers)
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "telemetry listening on http://%s/metrics\n", addr)
		hold := f.TelemetryHold
		closers = append(closers, func() error {
			// Hold the endpoints up briefly after completion so a last
			// scrape (CI assertions, a Prometheus poll mid-interval) can
			// observe the final chunk/worker/convergence state.
			if hold > 0 {
				time.Sleep(hold)
			}
			stop()
			return nil
		})
	}
	if f.Progress {
		if progressW == nil {
			progressW = os.Stderr
		}
		o.Progress = NewProgress(progressW, label, 0)
	}

	closeFn := func() error {
		o.Progress.Finish()
		return closeAll(closers)
	}
	return o, closeFn, nil
}

// openSink resolves a flag path: "-" means stderr (never closed).
func openSink(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stderr, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func closeAll(closers []func() error) error {
	var first error
	for i := len(closers) - 1; i >= 0; i-- {
		if err := closers[i](); err != nil && first == nil {
			first = err
		}
	}
	return first
}
