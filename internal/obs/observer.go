package obs

import (
	"time"
)

// Observer bundles the three telemetry backends threaded through the
// pipeline. Any field may be nil; a nil *Observer disables everything.
// Layers accept an *Observer instead of three parameters so wiring a new
// stage is one field.
type Observer struct {
	Tracer   *Tracer
	Metrics  *Registry
	Progress *Progress
}

// nop-safe accessors: a nil Observer yields nil components, which are
// themselves nil-safe.

// T returns the tracer (nil when disabled).
func (o *Observer) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// M returns the metrics registry (nil when disabled).
func (o *Observer) M() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// P returns the progress reporter (nil when disabled).
func (o *Observer) P() *Progress {
	if o == nil {
		return nil
	}
	return o.Progress
}

// Logf forwards a milestone line to the progress reporter.
func (o *Observer) Logf(format string, args ...any) {
	o.P().Logf(format, args...)
}

// RunStarted records one simulation run entering flight.
func (o *Observer) RunStarted() {
	if o == nil {
		return
	}
	o.M().Counter(MetricRunsStarted).Inc()
}

// RunDone records one completed simulation run: counters, the duration
// histogram, a progress tick, and a "sim.run" span with the run's
// identity (benchmark, seed, cycles) and wall time. start is when the run
// began; pass the zero time to let the span back-date from elapsed.
func (o *Observer) RunDone(benchmark string, seed, cycles uint64, err error, start time.Time, elapsed time.Duration) {
	if o == nil {
		return
	}
	if err != nil {
		o.M().Counter(MetricRunsFailed).Inc()
	} else {
		o.M().Counter(MetricRunsCompleted).Inc()
	}
	o.M().Histogram(MetricRunDuration).Observe(elapsed.Seconds())
	o.P().Done(1)
	if t := o.T(); t != nil {
		attrs := []Attr{Str("benchmark", benchmark), U64("seed", seed), U64("cycles", cycles)}
		if err != nil {
			attrs = append(attrs, Str("error", err.Error()))
		}
		if start.IsZero() {
			start = time.Now().Add(-elapsed)
		}
		t.Emit("sim.run", start, elapsed, attrs...)
	}
}

// CIBuilt records one confidence-interval construction (any method) with
// its width; err marks a failed/abstained construction.
func (o *Observer) CIBuilt(method string, width float64, err error) {
	if o == nil {
		return
	}
	if err != nil {
		o.M().Counter(MetricCIFailed).Inc()
		return
	}
	o.M().Counter(MetricCIBuilt).Inc()
	o.M().Histogram(MetricCIWidth).Observe(width)
}
