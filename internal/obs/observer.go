package obs

import (
	"sync/atomic"
	"time"
)

// Observer bundles the three telemetry backends threaded through the
// pipeline. Any field may be nil; a nil *Observer disables everything.
// Layers accept an *Observer instead of three parameters so wiring a new
// stage is one field.
type Observer struct {
	Tracer   *Tracer
	Metrics  *Registry
	Progress *Progress
	// status is the /statusz source (see SetStatus); holds a func() any.
	status atomic.Value
}

// SetStatus installs the /statusz source: a function returning any
// JSON-marshalable value describing the component's live state (campaign
// progress, chunk tables, worker fleets). The last caller wins; layers
// that own the richest state (the campaign runner, the worker CLI)
// install theirs at startup. Nil-safe.
func (o *Observer) SetStatus(fn func() any) {
	if o == nil || fn == nil {
		return
	}
	o.status.Store(fn)
}

// StatusFn returns the installed /statusz source (nil when absent).
func (o *Observer) StatusFn() func() any {
	if o == nil {
		return nil
	}
	if fn, ok := o.status.Load().(func() any); ok {
		return fn
	}
	return nil
}

// nop-safe accessors: a nil Observer yields nil components, which are
// themselves nil-safe.

// T returns the tracer (nil when disabled).
func (o *Observer) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// M returns the metrics registry (nil when disabled).
func (o *Observer) M() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// P returns the progress reporter (nil when disabled).
func (o *Observer) P() *Progress {
	if o == nil {
		return nil
	}
	return o.Progress
}

// Logf forwards a milestone line to the progress reporter.
func (o *Observer) Logf(format string, args ...any) {
	o.P().Logf(format, args...)
}

// RunStarted records one simulation run entering flight.
func (o *Observer) RunStarted() {
	if o == nil {
		return
	}
	o.M().Counter(MetricRunsStarted).Inc()
	o.M().Gauge(MetricRunsInflight).Add(1)
}

// RunDone records one completed simulation run: counters, the duration
// histogram, a progress tick, and a "sim.run" span with the run's
// identity (benchmark, seed, cycles) and wall time. start is when the run
// began; pass the zero time to let the span back-date from elapsed.
func (o *Observer) RunDone(benchmark string, seed, cycles uint64, err error, start time.Time, elapsed time.Duration) {
	if o == nil {
		return
	}
	if err != nil {
		o.M().Counter(MetricRunsFailed).Inc()
	} else {
		o.M().Counter(MetricRunsCompleted).Inc()
		o.M().CounterL(MetricBenchmarkRuns, Labels{"benchmark": benchmark}).Inc()
	}
	o.M().Gauge(MetricRunsInflight).Sub(1)
	o.M().Histogram(MetricRunDuration).Observe(elapsed.Seconds())
	o.P().Done(1)
	if t := o.T(); t != nil {
		attrs := []Attr{Str("benchmark", benchmark), U64("seed", seed), U64("cycles", cycles)}
		if err != nil {
			attrs = append(attrs, Str("error", err.Error()))
		}
		if start.IsZero() {
			start = time.Now().Add(-elapsed)
		}
		t.Emit("sim.run", start, elapsed, attrs...)
	}
}

// CIBuilt records one confidence-interval construction (any method) with
// its width; err marks a failed/abstained construction.
func (o *Observer) CIBuilt(method string, width float64, err error) {
	if o == nil {
		return
	}
	if err != nil {
		o.M().Counter(MetricCIFailed).Inc()
		return
	}
	o.M().Counter(MetricCIBuilt).Inc()
	o.M().Histogram(MetricCIWidth).Observe(width)
}

// ConvergenceRound records one adaptive refinement round of the
// AnalyzeToWidth loop: a "ci.round" trace event plus the labeled
// spa_ci_convergence gauges (current width, runs so far, target width),
// so the stopping rule's trajectory is visible at /metrics instead of
// being a black box.
func (o *Observer) ConvergenceRound(entry, metric, method string, runs int, width, target float64) {
	if o == nil {
		return
	}
	o.M().Counter(MetricAdaptiveRound).Inc()
	l := Labels{"entry": entry, "metric": metric, "method": method}
	o.M().GaugeL(MetricCIConvergence, l).Set(width)
	o.M().GaugeL(MetricCIConvergenceRuns, l).Set(float64(runs))
	o.M().GaugeL(MetricCIConvergenceTarget, l).Set(target)
	o.T().Event("ci.round", Str("entry", entry), Str("metric", metric),
		Str("method", method), Int("runs", runs), F64("width", width), F64("target", target))
}
