package sim

import (
	"fmt"
	"testing"
)

func TestThermalProbe(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		res, err := Run("ferret", DefaultConfig(), 1.0, seed)
		if err != nil {
			t.Fatal(err)
		}
		se, _ := res.Trace.Signal("sprint_enter")
		al, _ := res.Trace.Signal("thermal_alert")
		tmp, _ := res.Trace.Signal("temp")
		ne, na := 0, 0
		for i := range se {
			ne += int(se[i])
			na += int(al[i])
		}
		fmt.Printf("seed %d: entries=%d alerts=%d tempStart=%.0f tempEnd=%.0f cycles=%d\n",
			seed, ne, na, tmp[0], tmp[len(tmp)-1], res.Cycles)
	}
}
