package sim

import "repro/internal/stl"

// tracer samples machine state every SampleInterval cycles into the trace
// signals temporal properties are evaluated on:
//
//	ipc            aggregate instructions per cycle over the interval
//	l1d_mpki       interval L1D misses per 1k interval instructions
//	l2_mpki        interval L2 misses per 1k interval instructions
//	tlb_miss       TLB misses in the interval
//	mispredict     fraction of interval cycles lost to branch mispredicts
//	temp           thermal model temperature
//	sprint         1 while the chip is in the sprint state
//	sprint_enter   1 in intervals where a sprint began
//	thermal_alert  1 in intervals where a thermal alert fired
type tracer struct {
	interval uint64
	m        *machine
	nextAt   uint64

	// Counter snapshots at the previous sample boundary.
	lastInstr    uint64
	lastL1DMiss  uint64
	lastL2Miss   uint64
	lastTLBMiss  uint64
	lastMispCost uint64
	lastBusyCy   uint64

	signals map[string][]float64
}

var traceSignalNames = []string{
	"ipc", "l1d_mpki", "l2_mpki", "tlb_miss", "mispredict",
	"temp", "sprint", "sprint_enter", "thermal_alert",
}

func newTracer(interval uint64, m *machine) *tracer {
	tr := &tracer{}
	tr.init(interval, m)
	return tr
}

// init resets the tracer for a new run, keeping the signal buffers of a
// reused tracer (truncated to zero length) so sampling stops allocating
// after the first run. Result traces are safe: stl.Trace.Add copies the
// values out of these buffers.
func (t *tracer) init(interval uint64, m *machine) {
	sig := t.signals
	if sig == nil {
		sig = make(map[string][]float64, len(traceSignalNames))
	}
	for _, n := range traceSignalNames {
		sig[n] = sig[n][:0]
	}
	*t = tracer{interval: interval, m: m, nextAt: interval, signals: sig}
}

func (t *tracer) l1dMisses() uint64 {
	var total uint64
	for _, c := range t.m.l1d {
		total += c.Stats().Misses
	}
	return total
}

func (t *tracer) tlbMisses() uint64 {
	var total uint64
	for _, c := range t.m.tlb {
		total += c.Stats().Misses
	}
	return total
}

// advance emits samples for every interval boundary crossed up to now.
func (t *tracer) advance(now uint64) {
	for t.nextAt <= now {
		t.sample()
		t.nextAt += t.interval
	}
}

// finish emits a final sample for a partial trailing interval so short
// runs still produce a non-empty trace.
func (t *tracer) finish(now uint64) {
	if len(t.signals["ipc"]) == 0 || now+t.interval/2 > t.nextAt {
		t.sample()
	}
}

func (t *tracer) sample() {
	m := t.m
	instr := m.instructions - t.lastInstr
	l1dm := t.l1dMisses() - t.lastL1DMiss
	l2m := m.l2.Stats().Misses - t.lastL2Miss
	tlbm := t.tlbMisses() - t.lastTLBMiss
	misp := m.mispredictCost - t.lastMispCost
	busy := m.busyCycles - t.lastBusyCy

	t.lastInstr = m.instructions
	t.lastL1DMiss += l1dm
	t.lastL2Miss += l2m
	t.lastTLBMiss += tlbm
	t.lastMispCost = m.mispredictCost
	t.lastBusyCy = m.busyCycles

	cycles := float64(t.interval)
	activity := float64(busy) / (cycles * float64(m.cfg.Cores))
	m.thermal.update(activity)

	push := func(name string, v float64) { t.signals[name] = append(t.signals[name], v) }
	push("ipc", float64(instr)/cycles)
	if instr > 0 {
		push("l1d_mpki", float64(l1dm)/float64(instr)*1000)
		push("l2_mpki", float64(l2m)/float64(instr)*1000)
	} else {
		push("l1d_mpki", 0)
		push("l2_mpki", 0)
	}
	push("tlb_miss", float64(tlbm))
	push("mispredict", float64(misp)/(cycles*float64(m.cfg.Cores)))
	push("temp", m.thermal.temp)
	push("sprint", boolSignal(m.thermal.sprinting))
	push("sprint_enter", boolSignal(m.thermal.enteredSprint))
	push("thermal_alert", boolSignal(m.thermal.alertFired))
}

func boolSignal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// trace assembles the collected samples into an stl.Trace.
func (t *tracer) trace() (*stl.Trace, error) {
	tr, err := stl.NewTrace(float64(t.interval))
	if err != nil {
		return nil, err
	}
	for _, name := range traceSignalNames {
		if err := tr.Add(name, t.signals[name]); err != nil {
			return nil, err
		}
	}
	return tr, nil
}
