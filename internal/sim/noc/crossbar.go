// Package noc models the on-chip interconnect of Table 2: a crossbar with
// 16-byte links (one flit per link-cycle), connecting the per-core L1s to
// the shared L2 banks. The model is occupancy-based: each input and output
// port serializes its flits, so a transfer's latency is the base hop latency
// plus queueing delay behind earlier transfers on the same ports.
package noc

import "fmt"

// Crossbar is an N-input, M-output crossbar with per-port occupancy.
type Crossbar struct {
	inBusy   []uint64 // cycle until which each input port is busy
	outBusy  []uint64
	hopLat   uint64 // base traversal latency in cycles
	linkSize int    // bytes per flit
	stats    Stats
}

// Stats counts traffic.
type Stats struct {
	Transfers   uint64
	Flits       uint64
	StallCycles uint64 // total cycles transfers waited on busy ports
}

// New builds a crossbar with the given port counts, base hop latency, and
// link (flit) width in bytes.
func New(inPorts, outPorts int, hopLatency uint64, linkBytes int) (*Crossbar, error) {
	if inPorts <= 0 || outPorts <= 0 {
		return nil, fmt.Errorf("noc: non-positive port count %d/%d", inPorts, outPorts)
	}
	if linkBytes <= 0 {
		return nil, fmt.Errorf("noc: non-positive link width %d", linkBytes)
	}
	return &Crossbar{
		inBusy:   make([]uint64, inPorts),
		outBusy:  make([]uint64, outPorts),
		hopLat:   hopLatency,
		linkSize: linkBytes,
	}, nil
}

// Reset clears all port occupancies and counters, returning the crossbar to
// its post-New state so a pooled runner can reuse it.
func (x *Crossbar) Reset() {
	clear(x.inBusy)
	clear(x.outBusy)
	x.stats = Stats{}
}

// Transfer schedules a message of size bytes from input port in to output
// port out starting no earlier than now, and returns the cycle at which the
// message has fully traversed the crossbar. Port occupancies are advanced,
// so later transfers on the same ports queue behind this one.
func (x *Crossbar) Transfer(in, out int, now uint64, bytes int) uint64 {
	if in < 0 || in >= len(x.inBusy) || out < 0 || out >= len(x.outBusy) {
		panic(fmt.Sprintf("noc: port %d→%d out of range", in, out))
	}
	flits := uint64((bytes + x.linkSize - 1) / x.linkSize)
	if flits == 0 {
		flits = 1
	}
	start := now
	if x.inBusy[in] > start {
		start = x.inBusy[in]
	}
	if x.outBusy[out] > start {
		start = x.outBusy[out]
	}
	x.stats.StallCycles += start - now
	done := start + x.hopLat + flits
	x.inBusy[in] = start + flits // input port frees after injection
	x.outBusy[out] = done
	x.stats.Transfers++
	x.stats.Flits += flits
	return done
}

// Stats returns a copy of the traffic counters.
func (x *Crossbar) Stats() Stats { return x.stats }

// InPorts and OutPorts expose geometry.
func (x *Crossbar) InPorts() int { return len(x.inBusy) }

// OutPorts returns the number of output ports.
func (x *Crossbar) OutPorts() int { return len(x.outBusy) }
