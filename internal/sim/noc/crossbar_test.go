package noc

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 1, 16); err == nil {
		t.Error("0 input ports should error")
	}
	if _, err := New(1, 0, 1, 16); err == nil {
		t.Error("0 output ports should error")
	}
	if _, err := New(1, 1, 1, 0); err == nil {
		t.Error("0 link width should error")
	}
	x, err := New(4, 2, 3, 16)
	if err != nil || x.InPorts() != 4 || x.OutPorts() != 2 {
		t.Errorf("geometry wrong: %v", err)
	}
}

func TestUncontendedTransferLatency(t *testing.T) {
	x, _ := New(4, 4, 3, 16)
	// 64-byte block = 4 flits; done = now + hop(3) + 4.
	done := x.Transfer(0, 1, 100, 64)
	if done != 107 {
		t.Errorf("done = %d, want 107", done)
	}
	st := x.Stats()
	if st.Transfers != 1 || st.Flits != 4 || st.StallCycles != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestSmallMessageRoundsUpToOneFlit(t *testing.T) {
	x, _ := New(2, 2, 1, 16)
	if done := x.Transfer(0, 0, 0, 8); done != 2 {
		t.Errorf("8-byte message: done = %d, want hop(1)+1flit = 2", done)
	}
	if done := x.Transfer(1, 1, 0, 0); done != 2 {
		t.Errorf("0-byte message still occupies one flit, done = %d", done)
	}
}

func TestOutputPortContention(t *testing.T) {
	x, _ := New(4, 4, 0, 16)
	// Two transfers to the same output at the same time serialize.
	d1 := x.Transfer(0, 2, 0, 64) // occupies out 2 until 4
	d2 := x.Transfer(1, 2, 0, 64) // must wait
	if d1 != 4 {
		t.Errorf("first done = %d, want 4", d1)
	}
	if d2 != 8 {
		t.Errorf("second done = %d, want 8 (queued)", d2)
	}
	if x.Stats().StallCycles != 4 {
		t.Errorf("stall cycles = %d, want 4", x.Stats().StallCycles)
	}
}

func TestInputPortContention(t *testing.T) {
	x, _ := New(2, 4, 0, 16)
	x.Transfer(0, 1, 0, 64)         // in 0 busy until 4
	done := x.Transfer(0, 2, 0, 64) // same input, different output
	if done != 8 {
		t.Errorf("done = %d, want 8 (input serialization)", done)
	}
}

func TestDistinctPortsNoContention(t *testing.T) {
	x, _ := New(4, 4, 2, 16)
	d1 := x.Transfer(0, 0, 10, 64)
	d2 := x.Transfer(1, 1, 10, 64)
	if d1 != d2 {
		t.Errorf("independent transfers should finish together: %d vs %d", d1, d2)
	}
}

func TestTransferPanicsOnBadPort(t *testing.T) {
	x, _ := New(2, 2, 1, 16)
	defer func() {
		if recover() == nil {
			t.Error("bad port should panic")
		}
	}()
	x.Transfer(5, 0, 0, 64)
}

// Flit accounting: total flits equal the ceil-division sum of all message
// sizes, regardless of contention.
func TestFlitAccountingProperty(t *testing.T) {
	x, _ := New(4, 4, 1, 16)
	sizes := []int{1, 15, 16, 17, 63, 64, 65, 128}
	var want uint64
	for i, s := range sizes {
		x.Transfer(i%4, (i+1)%4, uint64(i), s)
		f := uint64((s + 15) / 16)
		if f == 0 {
			f = 1
		}
		want += f
	}
	if got := x.Stats().Flits; got != want {
		t.Errorf("flits = %d, want %d", got, want)
	}
	if x.Stats().Transfers != uint64(len(sizes)) {
		t.Error("transfer count wrong")
	}
}

// Time monotonicity: a transfer never completes before now + hop latency.
func TestTransferNeverCompletesEarly(t *testing.T) {
	x, _ := New(2, 2, 5, 16)
	for i := uint64(0); i < 100; i++ {
		done := x.Transfer(int(i)%2, int(i+1)%2, i*3, 64)
		if done < i*3+5+4 {
			t.Fatalf("transfer at %d completed at %d, before minimum latency", i*3, done)
		}
	}
}
