package sim

import (
	"math"
	"testing"

	"repro/internal/sim/cache"
	"repro/internal/sim/cpu"
)

// traceMachine builds a minimal machine for exercising the tracer directly:
// real caches and TLBs (so miss counters behave), a disabled thermal model,
// and counters the test sets by hand.
func traceMachine(t *testing.T, cores int) *machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cores = cores
	cfg.Thermal.Enabled = false
	m := &machine{cfg: cfg}
	for i := 0; i < cores; i++ {
		l1, err := cache.New(cache.Config{Name: "l1d", SizeBytes: 4096, Ways: 4, BlockSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		m.l1d = append(m.l1d, l1)
		tlb, err := cpu.NewTLB(16, 4096)
		if err != nil {
			t.Fatal(err)
		}
		m.tlb = append(m.tlb, tlb)
	}
	l2, err := cache.New(cache.Config{Name: "l2", SizeBytes: 64 * 1024, Ways: 8, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	m.l2 = l2
	m.thermal = newThermalModel(cfg.Thermal, cfg.Thermal.Ambient)
	return m
}

// TestTracerIntervalDeltas pins the core contract: each sample reports the
// delta since the previous boundary, computed from counter snapshots, not
// cumulative totals.
func TestTracerIntervalDeltas(t *testing.T) {
	m := traceMachine(t, 2)
	tr := newTracer(1000, m)

	// Interval 1: 500 instructions, 10 cold L1D misses, 4 L2 misses,
	// 3 TLB misses, 60 cycles of mispredict cost, both cores half busy.
	m.instructions = 500
	for i := 0; i < 10; i++ {
		m.l1d[0].Access(uint64(i)*64, false) // cold lines: all miss
	}
	for i := 0; i < 4; i++ {
		m.l2.Access(uint64(i)*64, false)
	}
	for i := 0; i < 3; i++ {
		m.tlb[0].Lookup(uint64(i) * 4096)
	}
	m.mispredictCost = 60
	m.busyCycles = 1000
	tr.advance(1000)

	// Interval 2: 250 more instructions, 5 more L1D misses (fresh lines),
	// no new L2/TLB misses, 40 more mispredict cycles.
	m.instructions = 750
	for i := 100; i < 105; i++ {
		m.l1d[1].Access(uint64(i)*64, false)
	}
	m.mispredictCost = 100
	m.busyCycles = 1500
	tr.advance(2000)

	ipc := tr.signals["ipc"]
	if len(ipc) != 2 {
		t.Fatalf("got %d samples, want 2", len(ipc))
	}
	approx := func(name string, i int, want float64) {
		t.Helper()
		got := tr.signals[name][i]
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s[%d] = %g, want %g", name, i, got, want)
		}
	}
	// ipc = interval instructions / interval cycles.
	approx("ipc", 0, 500.0/1000)
	approx("ipc", 1, 250.0/1000)
	// mpki = interval misses per 1000 interval instructions.
	approx("l1d_mpki", 0, 10.0/500*1000)
	approx("l1d_mpki", 1, 5.0/250*1000)
	approx("l2_mpki", 0, 4.0/500*1000)
	approx("l2_mpki", 1, 0)
	approx("tlb_miss", 0, 3)
	approx("tlb_miss", 1, 0)
	// mispredict = interval mispredict cycles / (interval × cores).
	approx("mispredict", 0, 60.0/(1000*2))
	approx("mispredict", 1, 40.0/(1000*2))
}

// TestTracerZeroInstructionInterval: mpki is defined as 0 when no
// instructions retired in the interval (no division by zero).
func TestTracerZeroInstructionInterval(t *testing.T) {
	m := traceMachine(t, 1)
	tr := newTracer(100, m)
	m.l1d[0].Access(0, false) // a miss with zero instructions
	tr.advance(100)
	for _, name := range []string{"ipc", "l1d_mpki", "l2_mpki"} {
		if got := tr.signals[name][0]; got != 0 {
			t.Errorf("%s = %g with zero instructions, want 0", name, got)
		}
	}
}

// TestTracerBoundaries: advance emits one sample per SampleInterval multiple
// crossed, and a whole-multiple advance lands exactly on the boundary.
func TestTracerBoundaries(t *testing.T) {
	m := traceMachine(t, 1)
	tr := newTracer(1000, m)

	tr.advance(999) // before the first boundary: nothing
	if n := len(tr.signals["ipc"]); n != 0 {
		t.Fatalf("sampled %d times before first boundary", n)
	}
	tr.advance(1000) // exactly on the boundary: one sample
	if n := len(tr.signals["ipc"]); n != 1 {
		t.Fatalf("got %d samples at cycle 1000, want 1", n)
	}
	tr.advance(3500) // crosses 2000 and 3000: two more samples
	if n := len(tr.signals["ipc"]); n != 3 {
		t.Fatalf("got %d samples at cycle 3500, want 3", n)
	}
	if tr.nextAt != 4000 {
		t.Errorf("nextAt = %d, want 4000", tr.nextAt)
	}

	// finish keeps a trailing partial strictly longer than interval/2
	// and drops tails at or below it.
	tr.finish(3501) // 501 cycles past 3000: kept
	if n := len(tr.signals["ipc"]); n != 4 {
		t.Errorf("finish dropped a long tail: %d samples, want 4", n)
	}

	m2 := traceMachine(t, 1)
	tr2 := newTracer(1000, m2)
	tr2.advance(2000)
	tr2.finish(2500) // 500-cycle tail, exactly interval/2: dropped
	if n := len(tr2.signals["ipc"]); n != 2 {
		t.Errorf("half-interval tail not dropped: %d samples, want 2", n)
	}

	m3 := traceMachine(t, 1)
	tr3 := newTracer(1000, m3)
	tr3.finish(300) // run shorter than any interval still yields one sample
	if n := len(tr3.signals["ipc"]); n != 1 {
		t.Errorf("empty trace after finish: %d samples, want 1", n)
	}
}

// TestTracerAllSignalsPopulated runs a real simulation and checks every
// signal in traceSignalNames is present with full length, and that the
// trace step matches SampleInterval.
func TestTracerAllSignalsPopulated(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run("swaptions", cfg, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	trc := res.Trace
	if trc.Len() == 0 {
		t.Fatal("empty trace")
	}
	if got := trc.Step(); got != float64(cfg.SampleInterval) {
		t.Errorf("trace step %g, want %d", got, cfg.SampleInterval)
	}
	// Sample count matches the boundaries crossed, plus at most one
	// trailing partial interval (tails < interval/2 are dropped).
	full := int(res.Cycles / cfg.SampleInterval)
	if n := trc.Len(); n != full && n != full+1 {
		t.Errorf("trace has %d samples for %d cycles (interval %d), want %d or %d",
			n, res.Cycles, cfg.SampleInterval, full, full+1)
	}
	for _, name := range traceSignalNames {
		if !trc.Has(name) {
			t.Errorf("trace missing signal %q", name)
			continue
		}
		vs, err := trc.Signal(name)
		if err != nil {
			t.Errorf("signal %q: %v", name, err)
			continue
		}
		if len(vs) != trc.Len() {
			t.Errorf("signal %q has %d samples, trace has %d", name, len(vs), trc.Len())
		}
	}
	if len(trc.Names()) != len(traceSignalNames) {
		t.Errorf("trace has %d signals, want %d", len(trc.Names()), len(traceSignalNames))
	}
}
