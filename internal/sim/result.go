package sim

import (
	"repro/internal/sim/cache"
	"repro/internal/sim/coherence"
	"repro/internal/sim/cpu"
	"repro/internal/sim/mem"
	"repro/internal/sim/noc"
	"repro/internal/stl"
)

// Metric name constants — the keys of Result.Metrics. These are the
// metrics the paper's evaluation sweeps (Figs. 6–15).
const (
	MetricRuntime       = "runtime_s"        // region-of-interest runtime in seconds
	MetricCycles        = "cycles"           // total cycles
	MetricInstructions  = "instructions"     // total instructions
	MetricIPC           = "ipc"              // aggregate instructions per cycle
	MetricL1DMPKI       = "l1d_mpki"         // L1D misses per 1k instructions
	MetricL1IMPKI       = "l1i_mpki"         // L1I misses per 1k instructions
	MetricL2MPKI        = "l2_mpki"          // L2 misses per 1k instructions
	MetricL2MissRate    = "l2_miss_rate"     // L2 misses / L2 accesses
	MetricBranchMPKI    = "branch_mpki"      // mispredicts per 1k instructions
	MetricTLBMPKI       = "tlb_mpki"         // TLB misses per 1k instructions
	MetricMaxLoadLat    = "max_load_latency" // worst load latency (integer cycles)
	MetricAvgLoadLat    = "avg_load_latency" // mean load latency in cycles
	MetricSyncWaitFrac  = "sync_wait_frac"   // fraction of core-cycles blocked on sync
	MetricMemAccesses   = "mem_accesses"     // DRAM accesses
	MetricCtxSwitches   = "ctx_switches"     // scheduler context switches
	MetricSprintEntries = "sprint_entries"   // sprint-state entries
	MetricPrefetches    = "prefetches"       // next-line prefetches issued
	MetricThermalAlerts = "thermal_alerts"   // thermal alerts fired
)

// Detail carries per-component event counters for one execution — the
// breakdown a simulator user reads when a headline metric looks off.
type Detail struct {
	L1D        cache.Stats // summed over cores
	L1I        cache.Stats
	L2         cache.Stats
	Directory  coherence.Stats
	Crossbar   noc.Stats
	DRAM       mem.Stats
	Branch     cpu.BranchStats // summed over cores
	TLB        cpu.TLBStats
	CtxSwitch  uint64
	Migrations uint64
	Preempts   uint64
	OSNoise    uint64
}

// Result is one execution's outcome: scalar end-of-run metrics plus the
// sampled trace for temporal properties and the per-component detail.
type Result struct {
	Benchmark    string
	Cycles       uint64
	Instructions uint64
	Metrics      map[string]float64
	Trace        *stl.Trace
	Detail       Detail
}

// Metric returns a metric value, with ok=false for unknown names.
func (r *Result) Metric(name string) (float64, bool) {
	v, ok := r.Metrics[name]
	return v, ok
}

// result assembles the machine's counters into a Result.
func (m *machine) result() *Result {
	cycles := m.now
	if cycles == 0 {
		cycles = 1
	}
	instr := m.instructions
	kInstr := float64(instr) / 1000
	if kInstr == 0 {
		kInstr = 1
	}

	var l1dMiss, l1iMiss, tlbMiss uint64
	for c := 0; c < m.cfg.Cores; c++ {
		l1dMiss += m.l1d[c].Stats().Misses
		l1iMiss += m.l1i[c].Stats().Misses
		tlbMiss += m.tlb[c].Stats().Misses
	}
	var brMisp uint64
	for _, bp := range m.bp {
		brMisp += bp.Stats().Mispredicts
	}
	l2 := m.l2.Stats()
	l2Acc := l2.Hits + l2.Misses
	if l2Acc == 0 {
		l2Acc = 1
	}
	avgLoad := 0.0
	if m.loads > 0 {
		avgLoad = float64(m.loadLatencySum) / float64(m.loads)
	}

	metrics := map[string]float64{
		MetricRuntime:       float64(cycles) / (m.cfg.FreqGHz * 1e9),
		MetricCycles:        float64(cycles),
		MetricInstructions:  float64(instr),
		MetricIPC:           float64(instr) / float64(cycles),
		MetricL1DMPKI:       float64(l1dMiss) / kInstr,
		MetricL1IMPKI:       float64(l1iMiss) / kInstr,
		MetricL2MPKI:        float64(l2.Misses) / kInstr,
		MetricL2MissRate:    float64(l2.Misses) / float64(l2Acc),
		MetricBranchMPKI:    float64(brMisp) / kInstr,
		MetricTLBMPKI:       float64(tlbMiss) / kInstr,
		MetricMaxLoadLat:    float64(m.loadLatencyMax), // integer-valued by construction
		MetricAvgLoadLat:    avgLoad,
		MetricSyncWaitFrac:  float64(m.syncWaitCycles) / (float64(cycles) * float64(m.cfg.Cores)),
		MetricMemAccesses:   float64(m.dram.Stats().Accesses),
		MetricCtxSwitches:   float64(m.ctxSwitches),
		MetricSprintEntries: float64(m.thermal.sprintEntries),
		MetricPrefetches:    float64(m.prefetches),
		MetricThermalAlerts: float64(m.thermal.alerts),
	}

	tr, err := m.tracer.trace()
	if err != nil {
		// The tracer only fails on internal length mismatches, which would
		// be a bug; surface it as an empty trace rather than panicking.
		tr = nil
	}
	detail := Detail{
		L2:         l2,
		Directory:  m.dir.Stats(),
		Crossbar:   m.xbar.Stats(),
		DRAM:       m.dram.Stats(),
		CtxSwitch:  m.ctxSwitches,
		Migrations: m.migrations,
		Preempts:   m.preemptions,
		OSNoise:    m.osNoiseEvents,
	}
	for c := 0; c < m.cfg.Cores; c++ {
		detail.L1D = addCacheStats(detail.L1D, m.l1d[c].Stats())
		detail.L1I = addCacheStats(detail.L1I, m.l1i[c].Stats())
		bs := m.bp[c].Stats()
		detail.Branch.Predictions += bs.Predictions
		detail.Branch.Mispredicts += bs.Mispredicts
		ts := m.tlb[c].Stats()
		detail.TLB.Lookups += ts.Lookups
		detail.TLB.Misses += ts.Misses
	}

	return &Result{
		Benchmark:    m.prog.Name,
		Cycles:       cycles,
		Instructions: instr,
		Metrics:      metrics,
		Trace:        tr,
		Detail:       detail,
	}
}

func addCacheStats(a, b cache.Stats) cache.Stats {
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Evictions += b.Evictions
	a.Writebacks += b.Writebacks
	return a
}
