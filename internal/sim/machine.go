package sim

import (
	"fmt"

	"repro/internal/randx"
	"repro/internal/sim/cache"
	"repro/internal/sim/coherence"
	"repro/internal/sim/cpu"
	"repro/internal/sim/mem"
	"repro/internal/sim/noc"
	"repro/internal/workload"
)

// threadState is a thread's scheduling state.
type threadState int

const (
	tsReady threadState = iota
	tsRunning
	tsBlocked
	tsDone
)

type threadCtx struct {
	id        int
	gen       workload.ThreadGen
	state     threadState
	lastCore  int
	fetchPC   uint64
	blockedAt uint64
	lockWait  uint64 // accumulated cycles blocked on synchronization
}

type coreCtx struct {
	id         int
	thread     int // -1 when idle
	quantumEnd uint64
	lastThread int
	// outstanding holds the completion times of in-flight memory accesses
	// (the OoO core's MSHR window).
	outstanding []uint64
}

type lockSt struct {
	owner   int // -1 when free
	waiters []int
}

type barrierSt struct {
	participants int
	waiting      []int
}

type queueSt struct {
	capacity  int
	occupancy int
	fullWait  []int // producers blocked on a full queue
	emptyWait []int // consumers blocked on an empty queue
}

// event is a scheduled core activation.
type event struct {
	at   uint64
	core int
}

// eventHeap is a binary min-heap of events ordered by (at, core), inlined
// rather than going through container/heap: the event loop pushes and pops
// once per core activation, and the interface-based heap boxes every event
// into an `any` (one allocation per push) besides the indirect calls.
// Ordering is a strict total order on distinct events, so the pop sequence —
// and therefore every simulated outcome — is identical to the old
// implementation's.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].core < h[j].core // deterministic tie-break
}

func (h *eventHeap) push(e event) {
	s := append(*h, e)
	*h = s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && s.less(r, l) {
			c = r
		}
		if !s.less(c, i) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// machine wires the full system for one run.
type machine struct {
	cfg  Config
	prog *workload.Program

	l1i  []*cache.Cache
	l1d  []*cache.Cache
	l2   *cache.Cache
	dir  *coherence.Directory
	xbar *noc.Crossbar
	dram *mem.DRAM
	bp   []cpu.Predictor
	tlb  []*cpu.TLB

	cores    []coreCtx
	threads  []threadCtx
	ready    []int
	events   eventHeap
	locks    map[int]*lockSt
	barriers map[int]*barrierSt
	queues   map[int]*queueSt

	noiseRng *randx.Rand

	// Colocation state, fixed per run.
	colocActive bool
	colocSlow   float64

	// kernelPtr streams through a synthetic kernel region on context
	// switches, polluting the L2 (full-system effect).
	kernelPtr uint64

	// aslr holds each mapping's per-run page-aligned base offset
	// (index 0 = shared mapping, 1+k = thread k's private mapping).
	aslr []uint64

	thermal *thermalModel
	tracer  *tracer

	// Aggregate statistics.
	now            uint64
	finished       int
	instructions   uint64
	computeCycles  uint64
	busyCycles     uint64 // total core-busy cycles (drives the thermal model)
	mispredictCost uint64
	loads          uint64
	loadLatencySum uint64
	loadLatencyMax uint64
	ctxSwitches    uint64
	migrations     uint64
	preemptions    uint64
	osNoiseEvents  uint64
	syncWaitCycles uint64
	prefetches     uint64
}

// defaultProgSeed fixes the program's structural randomness: as in the
// paper (Sec. 5.2), the benchmark is the same program on every execution.
const defaultProgSeed = 0x0BEEF

// Run builds the named workload profile at the given scale and executes it
// on the configured system, returning the execution's metrics and trace.
//
// As in the paper (Sec. 5.2), the benchmark is the same program on every
// execution: the program's structural randomness comes from a fixed seed,
// and the run seed only drives the injected variability (DRAM jitter, OS
// noise, the colocation draw) and everything it perturbs.
//
// Run executes on a pooled Runner arena, so repeated calls with the same
// Config reuse machine state instead of reallocating it.
func Run(profile string, cfg Config, scale float64, seed uint64) (*Result, error) {
	return pooledRun(func(r *Runner) (*Result, error) {
		return r.Run(profile, cfg, scale, seed)
	})
}

// RunVariant is Run with an explicit program-structure seed, for studies
// that also want distinct program instances (e.g. different inputs).
func RunVariant(profile string, cfg Config, scale float64, progSeed, seed uint64) (*Result, error) {
	return pooledRun(func(r *Runner) (*Result, error) {
		return r.RunVariant(profile, cfg, scale, progSeed, seed)
	})
}

// RunProgram executes an instantiated program. The rng must be dedicated
// to this run; all component substreams are split from it.
func RunProgram(prog *workload.Program, cfg Config, rng *randx.Rand) (*Result, error) {
	return pooledRun(func(r *Runner) (*Result, error) {
		return r.RunProgram(prog, cfg, rng)
	})
}

func newMachine(prog *workload.Program, cfg Config, rng *randx.Rand) (*machine, error) {
	m := &machine{}
	if err := m.build(cfg); err != nil {
		return nil, err
	}
	if err := m.initRun(prog, rng); err != nil {
		return nil, err
	}
	return m, nil
}

// build allocates every structure that depends only on the configuration:
// caches, directory, interconnect, DRAM, predictors, TLBs, core contexts.
// It is the expensive half of machine construction; a pooled Runner calls
// it once per configuration and replays only initRun for subsequent runs.
func (m *machine) build(cfg Config) error {
	*m = machine{
		cfg:      cfg,
		locks:    make(map[int]*lockSt),
		barriers: make(map[int]*barrierSt),
		queues:   make(map[int]*queueSt),
	}
	policy := cache.LRU
	switch cfg.ReplacementPolicy {
	case "fifo":
		policy = cache.FIFO
	case "random":
		policy = cache.Random
	}
	var err error
	for c := 0; c < cfg.Cores; c++ {
		l1i, err := cache.New(cache.Config{Name: fmt.Sprintf("l1i%d", c),
			SizeBytes: cfg.L1ISize, Ways: cfg.L1IWays, BlockSize: cfg.BlockSize, Policy: policy})
		if err != nil {
			return err
		}
		l1d, err := cache.New(cache.Config{Name: fmt.Sprintf("l1d%d", c),
			SizeBytes: cfg.L1DSize, Ways: cfg.L1DWays, BlockSize: cfg.BlockSize, Policy: policy})
		if err != nil {
			return err
		}
		m.l1i = append(m.l1i, l1i)
		m.l1d = append(m.l1d, l1d)
		if cfg.BPKind == "gshare" {
			m.bp = append(m.bp, cpu.NewGshare(cfg.BPEntries, cfg.BPHistoryBits))
		} else {
			m.bp = append(m.bp, cpu.NewBranchPredictor(cfg.BPEntries))
		}
		tlb, err := cpu.NewTLB(cfg.TLBEntries, cfg.PageSize)
		if err != nil {
			return err
		}
		m.tlb = append(m.tlb, tlb)
	}
	m.cores = make([]coreCtx, cfg.Cores)
	m.l2, err = cache.New(cache.Config{Name: "l2",
		SizeBytes: cfg.L2Size, Ways: cfg.L2Ways, BlockSize: cfg.BlockSize, Policy: policy})
	if err != nil {
		return err
	}
	proto := coherence.MESI
	if cfg.CoherenceProtocol == "msi" {
		proto = coherence.MSI
	}
	m.dir, err = coherence.NewWithProtocol(cfg.Cores, proto)
	if err != nil {
		return err
	}
	m.xbar, err = noc.New(cfg.Cores, cfg.L2Banks, cfg.NocHopLatency, cfg.LinkBytes)
	if err != nil {
		return err
	}
	// The per-run jitter stream is installed by initRun's dram.Reset; the
	// placeholder here never draws.
	m.dram, err = mem.New(mem.Config{
		BaseLatency: cfg.MemLatency,
		Jitter:      jitterKind(cfg.JitterMax),
		JitterMax:   maxInt(cfg.JitterMax, 0),
	}, randx.New(0))
	return err
}

// initRun resets the machine to the exact state newMachine used to leave it
// in for (prog, rng): components back to post-New state, per-run RNG streams
// re-split in the original order, per-run state rebuilt. It is the single
// code path for both freshly built and reused machines, so reuse cannot
// diverge from a cold construction.
func (m *machine) initRun(prog *workload.Program, rng *randx.Rand) error {
	cfg := &m.cfg
	m.prog = prog
	m.noiseRng = rng.Split(11)

	for c := 0; c < cfg.Cores; c++ {
		m.l1i[c].Reset()
		m.l1d[c].Reset()
		m.bp[c].Reset()
		m.tlb[c].Reset()
		core := &m.cores[c]
		core.id = c
		core.thread = -1
		core.quantumEnd = 0
		core.lastThread = -1
		core.outstanding = core.outstanding[:0]
	}
	m.l2.Reset()
	m.dir.Reset()
	m.xbar.Reset()
	m.dram.Reset(rng.Split(12))

	if cap(m.threads) < len(prog.Threads) {
		m.threads = make([]threadCtx, len(prog.Threads))
	}
	m.threads = m.threads[:len(prog.Threads)]
	for id, g := range prog.Threads {
		m.threads[id] = threadCtx{
			id: id, gen: g, state: tsReady, lastCore: -1,
			fetchPC: 0x100000 + uint64(id)*0x4000,
		}
	}
	clear(m.locks)
	clear(m.barriers)
	clear(m.queues)
	for _, q := range prog.Queues {
		if q.Capacity < 1 {
			return fmt.Errorf("sim: queue %d capacity %d", q.ID, q.Capacity)
		}
		m.queues[q.ID] = &queueSt{capacity: q.Capacity}
	}
	for _, b := range prog.Barriers {
		if b.Participants < 1 || b.Participants > len(prog.Threads) {
			return fmt.Errorf("sim: barrier %d participants %d", b.ID, b.Participants)
		}
		m.barriers[b.ID] = &barrierSt{participants: b.Participants}
	}

	// Per-run colocation decision (hardware-like configs only).
	m.colocActive, m.colocSlow = false, 0
	if cfg.ColocationProb > 0 && m.noiseRng.Bernoulli(cfg.ColocationProb) {
		m.colocActive = true
		m.colocSlow = cfg.ColocationFactor
	}

	m.kernelPtr = 0

	// Per-run address-space layout: each mapping (the shared region and
	// every thread-private region) lands at its own random page-aligned
	// offset, as under ASLR. All threads share one layout, so shared data
	// stays shared.
	aslrRng := rng.Split(13)
	if cap(m.aslr) < 1+len(prog.Threads) {
		m.aslr = make([]uint64, 1+len(prog.Threads))
	}
	m.aslr = m.aslr[:1+len(prog.Threads)]
	if cfg.ASLRPages > 0 {
		for i := range m.aslr {
			m.aslr[i] = uint64(aslrRng.Intn(cfg.ASLRPages)) * uint64(cfg.PageSize)
		}
	} else {
		clear(m.aslr)
	}

	initTemp := cfg.Thermal.Ambient
	if cfg.Thermal.Enabled && cfg.Thermal.InitSpread > 0 {
		initTemp += rng.Split(14).Uniform(0, cfg.Thermal.InitSpread)
	}
	if m.thermal == nil {
		m.thermal = &thermalModel{}
	}
	m.thermal.init(cfg.Thermal, initTemp)
	if m.tracer == nil {
		m.tracer = &tracer{}
	}
	m.tracer.init(cfg.SampleInterval, m)

	m.ready = m.ready[:0]
	m.events = m.events[:0]
	m.now = 0
	m.finished = 0
	m.instructions = 0
	m.computeCycles = 0
	m.busyCycles = 0
	m.mispredictCost = 0
	m.loads = 0
	m.loadLatencySum = 0
	m.loadLatencyMax = 0
	m.ctxSwitches = 0
	m.migrations = 0
	m.preemptions = 0
	m.osNoiseEvents = 0
	m.syncWaitCycles = 0
	m.prefetches = 0
	return nil
}

func jitterKind(jitterMax int) mem.JitterKind {
	if jitterMax < 0 {
		return mem.JitterNone
	}
	return mem.JitterUniform
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// run drives the event loop to completion.
func (m *machine) run() error {
	// Initial placement: threads fill cores in id order; the rest queue.
	for i := range m.threads {
		m.ready = append(m.ready, m.threads[i].id)
	}
	for i := range m.cores {
		if len(m.ready) == 0 {
			break
		}
		m.dispatch(&m.cores[i], 0)
	}

	for len(m.events) > 0 {
		e := m.events.pop()
		if e.at > m.cfg.MaxCycles {
			return fmt.Errorf("sim: %q exceeded cycle budget %d", m.prog.Name, m.cfg.MaxCycles)
		}
		if e.at > m.now {
			m.now = e.at
			m.tracer.advance(m.now)
		}
		m.step(&m.cores[e.core], e.at)
	}
	if m.finished != len(m.threads) {
		return fmt.Errorf("sim: deadlock in %q: %d/%d threads finished at cycle %d",
			m.prog.Name, m.finished, len(m.threads), m.now)
	}
	m.tracer.finish(m.now)
	return nil
}

// step lets the thread on core execute its next operation at time now.
func (m *machine) step(core *coreCtx, now uint64) {
	if core.thread < 0 {
		// Idle activation: grab ready work if any appeared.
		if len(m.ready) > 0 {
			m.dispatch(core, now)
		}
		return
	}
	t := &m.threads[core.thread]

	// Preempt at quantum expiry when someone is waiting.
	if now >= core.quantumEnd && len(m.ready) > 0 {
		now = m.fence(core, now)
		m.preemptions++
		t.state = tsReady
		t.lastCore = core.id
		m.ready = append(m.ready, t.id)
		core.thread = -1
		m.dispatch(core, now)
		return
	}

	op, ok := t.gen.Next()
	if !ok {
		now = m.fence(core, now)
		t.state = tsDone
		m.finished++
		core.thread = -1
		if len(m.ready) > 0 {
			m.dispatch(core, now)
		}
		return
	}

	switch op.Kind {
	case workload.OpCompute:
		d := m.scaledCompute(core.id, op.Cycles)
		if m.cfg.OSNoiseRate > 0 && m.noiseRng.Bernoulli(m.cfg.OSNoiseRate) {
			d += uint64(m.noiseRng.Exponential(1.0/float64(m.cfg.OSNoiseCycles))) + 1
			m.osNoiseEvents++
		}
		d = m.dilate(core.id, d)
		m.instructions += op.Instrs
		m.computeCycles += d
		m.busyFor(core, now, d)

	case workload.OpBranch:
		m.instructions++
		d := uint64(1) + m.ifetch(core.id, op.PC, now)
		if m.bp[core.id].Predict(op.PC, op.Taken) {
			d += m.cfg.MispredictPenalty
			m.mispredictCost += m.cfg.MispredictPenalty
		}
		m.busyFor(core, now, m.dilate(core.id, d))

	case workload.OpLoad, workload.OpStore:
		m.instructions++
		write := op.Kind == workload.OpStore
		d := m.ifetch(core.id, t.fetchPC, now)
		// Walk the thread's code footprint (16 KB, fits the L1I after
		// warmup) rather than an unbounded stream.
		t.fetchPC = (t.fetchPC &^ 0x3FFF) | ((t.fetchPC + 64) & 0x3FFF)
		// Issue under the MSHR window: a full window stalls until the
		// earliest in-flight access returns.
		stallUntil := m.issueMem(core, now+d, 0)
		lat := m.dataAccess(core.id, op.Addr+m.aslr[workload.RegionIndex(op.Addr)], write, stallUntil)
		core.outstanding[len(core.outstanding)-1] = stallUntil + lat
		if !write {
			m.loads++
			m.loadLatencySum += lat
			if lat > m.loadLatencyMax {
				m.loadLatencyMax = lat
			}
		}
		// The core itself is only busy for the issue overhead; the access
		// completes in the background (value dependencies not modeled).
		issueCost := (stallUntil - now) + m.cfg.L1Latency
		m.busyFor(core, now, m.dilate(core.id, issueCost))

	case workload.OpLock:
		m.instructions++
		now = m.fence(core, now)
		l := m.lock(op.ID)
		if l.owner < 0 {
			l.owner = t.id
			m.busyFor(core, now, m.cfg.LockLatency)
			return
		}
		l.waiters = append(l.waiters, t.id)
		m.block(core, t, now)

	case workload.OpUnlock:
		m.instructions++
		now = m.fence(core, now)
		l := m.lock(op.ID)
		if len(l.waiters) > 0 {
			next := l.waiters[0]
			l.waiters = l.waiters[1:]
			l.owner = next
			m.wake(next, now+m.cfg.LockLatency)
		} else {
			l.owner = -1
		}
		m.busyFor(core, now, m.cfg.UnlockLatency)

	case workload.OpBarrier:
		m.instructions++
		now = m.fence(core, now)
		b, ok := m.barriers[op.ID]
		if !ok {
			// Undeclared barrier: treat as all-threads.
			b = &barrierSt{participants: len(m.threads)}
			m.barriers[op.ID] = b
		}
		if len(b.waiting)+1 >= b.participants {
			for _, w := range b.waiting {
				m.wake(w, now+m.cfg.BarrierLatency)
			}
			b.waiting = b.waiting[:0]
			m.busyFor(core, now, m.cfg.BarrierLatency)
			return
		}
		b.waiting = append(b.waiting, t.id)
		m.block(core, t, now)

	case workload.OpProduce:
		m.instructions++
		now = m.fence(core, now)
		q := m.queue(op.ID)
		// A consumer blocked on empty takes the item directly.
		if len(q.emptyWait) > 0 {
			c := q.emptyWait[0]
			q.emptyWait = q.emptyWait[1:]
			m.wake(c, now+m.cfg.QueueOpLatency)
			m.busyFor(core, now, m.cfg.QueueOpLatency)
			return
		}
		if q.occupancy < q.capacity {
			q.occupancy++
			m.busyFor(core, now, m.cfg.QueueOpLatency)
			return
		}
		q.fullWait = append(q.fullWait, t.id)
		m.block(core, t, now)

	case workload.OpConsume:
		m.instructions++
		now = m.fence(core, now)
		q := m.queue(op.ID)
		if q.occupancy > 0 {
			q.occupancy--
			// A producer blocked on full can now deposit its item.
			if len(q.fullWait) > 0 {
				p := q.fullWait[0]
				q.fullWait = q.fullWait[1:]
				q.occupancy++
				m.wake(p, now+m.cfg.QueueOpLatency)
			}
			m.busyFor(core, now, m.cfg.QueueOpLatency)
			return
		}
		q.emptyWait = append(q.emptyWait, t.id)
		m.block(core, t, now)

	default:
		// Unknown op kinds are a programming error in the workload.
		panic(fmt.Sprintf("sim: unknown op kind %d", op.Kind))
	}
}

func (m *machine) lock(id int) *lockSt {
	l, ok := m.locks[id]
	if !ok {
		l = &lockSt{owner: -1}
		m.locks[id] = l
	}
	return l
}

func (m *machine) queue(id int) *queueSt {
	q, ok := m.queues[id]
	if !ok {
		q = &queueSt{capacity: 1}
		m.queues[id] = q
	}
	return q
}

// continueAt schedules the core's next activation.
func (m *machine) continueAt(core *coreCtx, at uint64) {
	m.events.push(event{at: at, core: core.id})
}

// busyFor accounts d busy cycles on the core and schedules its next
// activation at now+d. Busy time drives the thermal model's activity.
func (m *machine) busyFor(core *coreCtx, now, d uint64) {
	m.busyCycles += d
	m.continueAt(core, now+d)
}

// fence waits for every outstanding memory access on the core to complete
// (memory-fence semantics at synchronization points and scheduling events)
// and returns the fenced time.
func (m *machine) fence(core *coreCtx, now uint64) uint64 {
	for _, done := range core.outstanding {
		if done > now {
			now = done
		}
	}
	core.outstanding = core.outstanding[:0]
	return now
}

// issueMem issues one memory access under the MSHR window: if the window
// is full the core first waits for the earliest in-flight access. It
// returns the issue time and records the access's completion.
func (m *machine) issueMem(core *coreCtx, now uint64, lat uint64) (issuedAt uint64) {
	if len(core.outstanding) >= m.cfg.MSHRs {
		earliestIdx := 0
		for i, done := range core.outstanding {
			if done < core.outstanding[earliestIdx] {
				earliestIdx = i
			}
		}
		if e := core.outstanding[earliestIdx]; e > now {
			now = e
		}
		core.outstanding = append(core.outstanding[:earliestIdx], core.outstanding[earliestIdx+1:]...)
	}
	core.outstanding = append(core.outstanding, now+lat)
	return now
}

// block parks the running thread and reassigns its core.
func (m *machine) block(core *coreCtx, t *threadCtx, now uint64) {
	t.state = tsBlocked
	t.blockedAt = now
	t.lastCore = core.id
	core.thread = -1
	if len(m.ready) > 0 {
		m.dispatch(core, now)
	}
}

// wake marks a blocked thread runnable at time at, dispatching it onto an
// idle core (preferring its previous core for affinity) or queueing it.
func (m *machine) wake(tid int, at uint64) {
	t := &m.threads[tid]
	t.lockWait += at - t.blockedAt
	m.syncWaitCycles += at - t.blockedAt
	t.state = tsReady
	// Prefer the thread's previous core when idle.
	if t.lastCore >= 0 && m.cores[t.lastCore].thread < 0 {
		m.ready = append(m.ready, tid)
		m.dispatch(&m.cores[t.lastCore], at)
		return
	}
	for i := range m.cores {
		if m.cores[i].thread < 0 {
			m.ready = append(m.ready, tid)
			m.dispatch(&m.cores[i], at)
			return
		}
	}
	m.ready = append(m.ready, tid)
}

// dispatch pulls the next ready thread onto the core at time now, charging
// context-switch and migration costs.
func (m *machine) dispatch(core *coreCtx, now uint64) {
	if len(m.ready) == 0 {
		return
	}
	tid := m.ready[0]
	m.ready = m.ready[1:]
	t := &m.threads[tid]
	t.state = tsRunning
	core.thread = tid

	cost := uint64(0)
	if core.lastThread != tid {
		cost += m.cfg.CtxSwitchCost
		m.ctxSwitches++
		m.tlb[core.id].Flush()
		if t.lastCore >= 0 && t.lastCore != core.id {
			m.migrations++
			m.l1d[core.id].FlushRatio(m.cfg.MigrationFlush)
		}
		// Kernel scheduler code and data stream through the shared L2
		// (full-system effect: Table 2 simulates Ubuntu). This is what
		// couples scheduling decisions to the L2 miss metrics.
		const kernelBase = 0x8000_0000
		for i := 0; i < m.cfg.CtxSwitchKernelBlocks; i++ {
			blk := kernelBase + (m.kernelPtr % (512 << 10))
			if !m.l2Access(blk, i%4 == 0) {
				m.dram.Access(blk, now)
			}
			m.kernelPtr += 64
		}
	}
	core.lastThread = tid
	t.lastCore = core.id
	core.quantumEnd = now + cost + m.cfg.SchedQuantum
	m.continueAt(core, now+cost)
}

// scaledCompute applies the thermal speed factor to a compute burst.
func (m *machine) scaledCompute(coreID int, cycles uint64) uint64 {
	speed := m.thermal.speed()
	if speed <= 0 {
		speed = 0.01
	}
	d := uint64(float64(cycles) / speed)
	if d < 1 {
		d = 1
	}
	_ = coreID
	return d
}

// dilate stretches an op's duration on cores time-shared with a colocated
// process: the co-runner steals a fixed fraction of the core, so every
// cycle of our work takes 1/factor wall cycles.
func (m *machine) dilate(coreID int, d uint64) uint64 {
	if m.colocActive && coreID < m.cfg.ColocCores {
		d = uint64(float64(d)/m.colocSlow) + 1
	}
	return d
}

// l2Access runs an L2 lookup/insert, keeping the directory and the private
// L1s consistent with the L2's inclusion property: a displaced block is
// dropped from the directory and back-invalidated everywhere.
func (m *machine) l2Access(block uint64, write bool) (hit bool) {
	res := m.l2.Access(block, write)
	if res.Evicted {
		holders, _ := m.dir.DropBlock(res.EvictedAddr)
		for _, h := range holders {
			m.l1d[h].Invalidate(res.EvictedAddr)
		}
	}
	return res.Hit
}

// ifetch charges the instruction-fetch path: L1I hit is free (overlapped),
// an L1I miss costs an L2 round trip.
func (m *machine) ifetch(coreID int, pc uint64, now uint64) uint64 {
	if m.l1i[coreID].Access(pc, false).Hit {
		return 0
	}
	// Instruction blocks are read-only: skip the directory, charge the
	// crossbar and L2 (or memory on a cold miss).
	bank := int((pc >> 6) % uint64(m.cfg.L2Banks))
	done := m.xbar.Transfer(coreID, bank, now, 16)
	d := done - now
	if m.l2Access(m.l2.BlockAddr(pc), false) {
		return d + m.cfg.L2Latency
	}
	memDone := m.dram.Access(m.l2.BlockAddr(pc), now+d+m.cfg.L2Latency)
	return memDone - now
}

// dataAccess walks addr through the TLB, L1D, the MESI directory, the
// crossbar, L2 and DRAM, charging coherence actions, and returns the
// access latency.
func (m *machine) dataAccess(coreID int, addr uint64, write bool, now uint64) uint64 {
	cfg := &m.cfg
	l1 := m.l1d[coreID]
	block := l1.BlockAddr(addr)
	d := cfg.L1Latency

	// Address translation precedes the cache lookup; a TLB miss costs a
	// page-table walk.
	if m.tlb[coreID].Lookup(addr) {
		d += cfg.TLBWalkLatency
	}

	res := l1.Access(addr, write)

	// Keep the directory in sync with L1 displacement.
	if res.Evicted {
		if m.dir.Evict(coreID, res.EvictedAddr) {
			// Dirty displacement writes back into the L2.
			m.l2Access(res.EvictedAddr, true)
		}
	}

	// Consult the directory. Even on an L1 hit a write may need to
	// invalidate remote sharers (S→M upgrade).
	var act coherence.Action
	if write {
		act = m.dir.Write(coreID, block)
	} else {
		act = m.dir.Read(coreID, block)
	}
	for _, victim := range act.InvalidatedCores {
		m.l1d[victim].Invalidate(block)
	}
	if act.OwnerWriteback {
		m.l1d[act.OwnerCore].Invalidate(block)
		m.l2Access(block, true) // owner's dirty data lands in the L2
		d += cfg.OwnerForwardFee
	}
	if act.Invalidated > 0 || act.Upgrade {
		// Upgrade transactions round-trip the directory even without
		// remote copies to invalidate (the MSI tax; in MESI only genuinely
		// Shared lines pay it).
		d += cfg.InvalidateCost
	}

	if res.Hit && !act.WasMiss {
		return d // pure L1 hit (possibly with upgrade costs above)
	}

	// Miss path: request over the crossbar to the home L2 bank.
	bank := int((block >> 6) % uint64(cfg.L2Banks))
	reqDone := m.xbar.Transfer(coreID, bank, now+d, 16)
	d = reqDone - now

	l2hit := m.l2Access(block, write)
	d += cfg.L2Latency
	if !l2hit {
		memDone := m.dram.Access(block, now+d)
		d = memDone - now
	}

	// Next-line prefetch into the L2, off the critical path: the demand
	// miss's latency is unchanged, but the following block becomes an L2
	// hit for a future access.
	if cfg.PrefetchNextLine {
		next := block + uint64(cfg.BlockSize)
		if !m.l2Access(next, false) {
			m.dram.Access(next, now+d)
		}
		m.prefetches++
	}

	// Data response: 64-byte block back over the crossbar (modeled as an
	// extra serialization of the block's flits from the bank).
	d += uint64(cfg.BlockSize/cfg.LinkBytes) + cfg.NocHopLatency
	return d
}
