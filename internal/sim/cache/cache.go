// Package cache implements the set-associative caches of the simulated
// memory hierarchy (Table 2 of the paper): per-core L1 instruction and data
// caches and a shared inclusive L2, all with 64-byte blocks. Replacement is
// true-LRU by default, with FIFO and (deterministic) random policies
// available for the replacement ablation.
package cache

import (
	"errors"
	"fmt"
)

// Policy selects a replacement policy.
type Policy int

const (
	// LRU evicts the least recently used way (the default).
	LRU Policy = iota
	// FIFO evicts the oldest-filled way regardless of use.
	FIFO
	// Random evicts a pseudo-random way, deterministically derived from
	// the access sequence so simulations stay replicable.
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	default:
		return "lru"
	}
}

// Line is one cache line's tag state.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set logical clock: larger means more recently used.
	lru uint64
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// Cache is a set-associative, write-back cache.
type Cache struct {
	name      string
	sets      int
	ways      int
	blockBits uint
	// setShift/setMask enable the shift-and-mask index fast path when the
	// set count is a power of two (every Table 2 cache except the 3 MB L2);
	// setMask == 0 selects the general modulo path.
	setShift uint
	setMask  uint64
	policy   Policy
	lines    []line // sets × ways, row-major
	clock    uint64
	rngState uint64 // xorshift state for the Random policy
	stats    Stats
}

// initialRNGState seeds the deterministic xorshift stream of the Random
// replacement policy; Reset restores it so a reused cache replays the same
// victim sequence as a freshly built one.
const initialRNGState = 0x9E3779B97F4A7C15

// Config sizes a cache.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	BlockSize int
	// Policy selects the replacement policy (default LRU).
	Policy Policy
}

// New builds a cache. Size, associativity, and block size must be positive
// powers of two with Size = sets × ways × block.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.BlockSize <= 0 {
		return nil, errors.New("cache: non-positive geometry")
	}
	if cfg.BlockSize&(cfg.BlockSize-1) != 0 {
		return nil, fmt.Errorf("cache: block size %d not a power of two", cfg.BlockSize)
	}
	blockBits := uint(0)
	for 1<<blockBits < cfg.BlockSize {
		blockBits++
	}
	rows := cfg.SizeBytes / cfg.BlockSize
	if rows%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache: %d blocks not divisible by %d ways", rows, cfg.Ways)
	}
	sets := rows / cfg.Ways
	if sets == 0 {
		return nil, fmt.Errorf("cache: zero sets (size %d too small for %d ways)", cfg.SizeBytes, cfg.Ways)
	}
	// Sets need not be a power of two (Table 2's 3MB/16-way L2 has 3072);
	// indexing uses modulo, as Ruby does for such geometries.
	if cfg.Policy < LRU || cfg.Policy > Random {
		return nil, fmt.Errorf("cache: unknown replacement policy %d", cfg.Policy)
	}
	c := &Cache{
		name:      cfg.Name,
		sets:      sets,
		ways:      cfg.Ways,
		blockBits: blockBits,
		policy:    cfg.Policy,
		lines:     make([]line, sets*cfg.Ways),
		rngState:  initialRNGState,
	}
	if sets&(sets-1) == 0 {
		c.setMask = uint64(sets - 1)
		for 1<<c.setShift < sets {
			c.setShift++
		}
	}
	return c, nil
}

// Reset returns the cache to its post-New state — every line invalid, the
// LRU clock and the Random-policy stream at their initial values, all
// counters zero — without reallocating the line array. It exists so a
// pooled simulation runner can reuse the multi-megabyte line arrays across
// runs while staying bit-identical to a freshly constructed cache.
func (c *Cache) Reset() {
	clear(c.lines)
	c.clock = 0
	c.rngState = initialRNGState
	c.stats = Stats{}
}

// BlockAddr returns the block-aligned address (tag+set) for addr.
func (c *Cache) BlockAddr(addr uint64) uint64 { return addr >> c.blockBits << c.blockBits }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	blk := addr >> c.blockBits
	if c.setMask != 0 {
		// Power-of-two set count: identical (set, tag) to the modulo path,
		// computed with a mask and a shift.
		return int(blk & c.setMask), blk >> c.setShift
	}
	return int(blk % uint64(c.sets)), blk / uint64(c.sets)
}

// AccessResult describes the outcome of a cache access.
type AccessResult struct {
	Hit bool
	// Evicted is set when a valid line was displaced to make room.
	Evicted bool
	// EvictedAddr is the block address of the displaced line.
	EvictedAddr uint64
	// Writeback is set when the displaced line was dirty.
	Writeback bool
}

// Access looks up addr, allocating on miss (displacing the LRU way), and
// marks the line dirty on writes. It returns what happened so the caller
// can model latency, inclusion, and coherence.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	set, tag := c.index(addr)
	base := set * c.ways
	lines := c.lines[base : base+c.ways : base+c.ways]
	c.clock++

	// One pass over the set serves both hit detection and victim
	// pre-selection (first invalid way, else the smallest stamp for LRU and
	// FIFO — FIFO never refreshes stamps on hits), so the miss path does
	// not rescan. Victim choice is identical to the former two-loop form.
	victim := -1
	minIdx := -1
	var oldest uint64 = ^uint64(0)
	for w := range lines {
		ln := &lines[w]
		if ln.valid {
			if ln.tag == tag {
				if c.policy == LRU {
					ln.lru = c.clock
				}
				if write {
					ln.dirty = true
				}
				c.stats.Hits++
				return AccessResult{Hit: true}
			}
			if ln.lru < oldest {
				oldest = ln.lru
				minIdx = w
			}
		} else if victim == -1 {
			victim = w
		}
	}
	if victim == -1 {
		if c.policy == Random {
			// xorshift64*: deterministic, independent of map ordering.
			c.rngState ^= c.rngState << 13
			c.rngState ^= c.rngState >> 7
			c.rngState ^= c.rngState << 17
			victim = int(c.rngState % uint64(c.ways))
		} else {
			victim = minIdx
		}
	}
	ln := &lines[victim]
	res := AccessResult{}
	if ln.valid {
		res.Evicted = true
		res.EvictedAddr = c.reconstruct(set, ln.tag)
		if ln.dirty {
			res.Writeback = true
			c.stats.Writebacks++
		}
		c.stats.Evictions++
	}
	ln.valid = true
	ln.tag = tag
	ln.dirty = write
	ln.lru = c.clock
	c.stats.Misses++
	return res
}

// reconstruct rebuilds a block address from set and tag.
func (c *Cache) reconstruct(set int, tag uint64) uint64 {
	return (tag*uint64(c.sets) + uint64(set)) << c.blockBits
}

// Contains reports whether addr's block is resident, without touching LRU
// state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops addr's block if resident, returning whether it was dirty
// (the caller models the writeback). Used for coherence invalidations and
// L2-inclusion back-invalidations.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			ln.valid = false
			return true, ln.dirty
		}
	}
	return false, false
}

// FlushRatio invalidates roughly the given fraction of resident lines
// (deterministically: every k-th valid line), modeling the cold-cache effect
// of a context switch or migration. It returns the number of lines dropped.
func (c *Cache) FlushRatio(ratio float64) int {
	if ratio <= 0 {
		return 0
	}
	if ratio >= 1 {
		ratio = 1
	}
	stride := int(1 / ratio)
	if stride < 1 {
		stride = 1
	}
	dropped, seen := 0, 0
	for i := range c.lines {
		if !c.lines[i].valid {
			continue
		}
		if seen%stride == 0 {
			c.lines[i].valid = false
			dropped++
		}
		seen++
	}
	return dropped
}

// Blocks returns the block addresses of all resident lines, in no
// particular order. It exists for invariant checks (e.g. verifying L2
// inclusion) and does not touch LRU state or statistics.
func (c *Cache) Blocks() []uint64 {
	var out []uint64
	for i := range c.lines {
		if c.lines[i].valid {
			out = append(out, c.reconstruct(i/c.ways, c.lines[i].tag))
		}
	}
	return out
}

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Sets and Ways expose geometry for tests.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }
