package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func mustNew(t *testing.T, size, ways, block int) *Cache {
	t.Helper()
	c, err := New(Config{Name: "test", SizeBytes: size, Ways: ways, BlockSize: block})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 2, BlockSize: 64},
		{SizeBytes: 1024, Ways: 0, BlockSize: 64},
		{SizeBytes: 1024, Ways: 2, BlockSize: 0},
		{SizeBytes: 1024, Ways: 2, BlockSize: 48},   // not power of two
		{SizeBytes: 64 * 3, Ways: 2, BlockSize: 64}, // blocks not divisible by ways
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	c := mustNew(t, 32*1024, 8, 64)
	if c.Sets() != 64 || c.Ways() != 8 {
		t.Errorf("32KB/8-way/64B should have 64 sets, got %d/%d", c.Sets(), c.Ways())
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	if res := c.Access(0x1000, false); res.Hit {
		t.Error("first access should miss")
	}
	if res := c.Access(0x1000, false); !res.Hit {
		t.Error("second access should hit")
	}
	// Same block, different offset: still a hit.
	if res := c.Access(0x103F, false); !res.Hit {
		t.Error("same-block access should hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats %+v, want 2 hits 1 miss", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way cache with 8 sets of 64B blocks: addresses 64*8 apart collide.
	c := mustNew(t, 1024, 2, 64)
	setStride := uint64(64 * 8)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	res := c.Access(d, false)
	if !res.Evicted || res.EvictedAddr != b {
		t.Errorf("expected eviction of %#x, got %+v", b, res)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Error("LRU victim selection wrong")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	setStride := uint64(64 * 8)
	c.Access(0, true) // dirty
	c.Access(setStride, false)
	res := c.Access(2*setStride, false) // evicts the dirty line
	if !res.Writeback {
		t.Errorf("dirty eviction should report writeback: %+v", res)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writeback count %d, want 1", c.Stats().Writebacks)
	}
}

func TestInvalidate(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	c.Access(0x40, true)
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Errorf("invalidate of dirty resident line = (%v,%v)", present, dirty)
	}
	if c.Contains(0x40) {
		t.Error("line still resident after invalidate")
	}
	present, _ = c.Invalidate(0x40)
	if present {
		t.Error("double invalidate should report absent")
	}
}

func TestContainsDoesNotTouchLRU(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	setStride := uint64(64 * 8)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	// Probing a must NOT refresh it; the next conflict then evicts a.
	if !c.Contains(a) {
		t.Fatal("a should be resident")
	}
	res := c.Access(d, false)
	if res.EvictedAddr != a {
		t.Errorf("Contains must not refresh LRU; evicted %#x, want %#x", res.EvictedAddr, a)
	}
}

func TestFlushRatio(t *testing.T) {
	c := mustNew(t, 4096, 4, 64)
	for i := uint64(0); i < 64; i++ {
		c.Access(i*64, false)
	}
	dropped := c.FlushRatio(0.5)
	if dropped < 28 || dropped > 36 {
		t.Errorf("FlushRatio(0.5) dropped %d of 64, want ≈32", dropped)
	}
	if c.FlushRatio(0) != 0 {
		t.Error("FlushRatio(0) should be a no-op")
	}
	total := 0
	for i := uint64(0); i < 64; i++ {
		if c.Contains(i * 64) {
			total++
		}
	}
	if total != 64-dropped {
		t.Errorf("resident %d after dropping %d of 64", total, dropped)
	}
	if c.FlushRatio(2) == 0 { // ratio ≥ 1 flushes everything remaining
		t.Error("FlushRatio(≥1) should flush remaining lines")
	}
}

// Working set within capacity: after a warmup pass, everything hits.
func TestWorkingSetFitsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c, err := New(Config{SizeBytes: 8192, Ways: 4, BlockSize: 64})
		if err != nil {
			return false
		}
		r := randx.New(seed)
		// 32 distinct blocks spread over distinct sets: 8192/64 = 128 blocks,
		// 32 sets. Use one block per set to avoid conflict evictions.
		blocks := make([]uint64, 32)
		for i := range blocks {
			blocks[i] = uint64(i) * 64
		}
		for _, b := range blocks {
			c.Access(b, false)
		}
		for i := 0; i < 200; i++ {
			b := blocks[r.Intn(len(blocks))]
			if !c.Access(b, false).Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Invariant: hits + misses equals accesses; evictions never exceed misses.
func TestStatsInvariantProperty(t *testing.T) {
	f := func(seed uint64, nr uint16) bool {
		c, err := New(Config{SizeBytes: 2048, Ways: 2, BlockSize: 64})
		if err != nil {
			return false
		}
		r := randx.New(seed)
		n := int(nr%2000) + 1
		for i := 0; i < n; i++ {
			c.Access(uint64(r.Intn(1<<14))&^63, r.Bernoulli(0.3))
		}
		st := c.Stats()
		return st.Hits+st.Misses == uint64(n) &&
			st.Evictions <= st.Misses &&
			st.Writebacks <= st.Evictions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBlockAddr(t *testing.T) {
	c := mustNew(t, 1024, 2, 64)
	if got := c.BlockAddr(0x12345); got != 0x12340 {
		t.Errorf("BlockAddr = %#x, want 0x12340", got)
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	c, err := New(Config{SizeBytes: 1024, Ways: 2, BlockSize: 64, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	setStride := uint64(64 * 8)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // recency refresh must NOT save a under FIFO
	res := c.Access(d, false)
	if res.EvictedAddr != a {
		t.Errorf("FIFO should evict the oldest fill (a=%#x), evicted %#x", a, res.EvictedAddr)
	}
}

func TestRandomPolicyDeterministic(t *testing.T) {
	mk := func() *Cache {
		c, err := New(Config{SizeBytes: 2048, Ways: 4, BlockSize: 64, Policy: Random})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	run := func(c *Cache) Stats {
		r := randx.New(5)
		for i := 0; i < 5000; i++ {
			c.Access(uint64(r.Intn(1<<13))&^63, r.Bernoulli(0.3))
		}
		return c.Stats()
	}
	a, b := run(mk()), run(mk())
	if a != b {
		t.Errorf("random policy not replicable: %+v vs %+v", a, b)
	}
	// Sanity: misses+hits still account for every access.
	if a.Hits+a.Misses != 5000 {
		t.Errorf("stats do not sum: %+v", a)
	}
}

func TestPolicyDifferencesShowUnderThrash(t *testing.T) {
	// A cyclic working set one block larger than a set's ways is LRU's
	// pathological case (0% hit) where FIFO behaves identically but
	// Random gets some hits.
	missRate := func(p Policy) float64 {
		c, err := New(Config{SizeBytes: 512, Ways: 8, BlockSize: 64, Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		// 1 set of 8 ways; cycle over 9 blocks.
		for i := 0; i < 4500; i++ {
			c.Access(uint64(i%9)*64, false)
		}
		st := c.Stats()
		return float64(st.Misses) / float64(st.Hits+st.Misses)
	}
	lru := missRate(LRU)
	rnd := missRate(Random)
	if lru < 0.99 {
		t.Errorf("LRU on a cyclic overset should thrash, miss rate %.3f", lru)
	}
	if rnd >= lru {
		t.Errorf("random (%.3f) should beat LRU (%.3f) on the cyclic overset", rnd, lru)
	}
}

func TestBadPolicyRejected(t *testing.T) {
	if _, err := New(Config{SizeBytes: 1024, Ways: 2, BlockSize: 64, Policy: Policy(7)}); err == nil {
		t.Error("unknown policy should error")
	}
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Random.String() != "random" {
		t.Error("policy names wrong")
	}
}
