package sim

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/workload"
)

// -update regenerates testdata/golden.json from the current simulator.
// The committed file was produced by the pre-optimization implementation,
// so a passing run proves the optimized fast paths are byte-identical.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json")

// goldenRecord pins one execution: the cycle count and every scalar metric,
// formatted with strconv.FormatFloat(-1) so the comparison is exact (two
// float64 values render identically iff their bits agree).
type goldenRecord struct {
	Benchmark string            `json:"benchmark"`
	Scale     float64           `json:"scale"`
	Seed      uint64            `json:"seed"`
	Cycles    uint64            `json:"cycles"`
	Metrics   map[string]string `json:"metrics"`
}

var goldenScales = []float64{0.05, 0.2}

const goldenSeed = 1

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "golden.json")
}

func formatMetrics(res *Result) map[string]string {
	out := make(map[string]string, len(res.Metrics))
	for name, v := range res.Metrics {
		out[name] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return out
}

func runGolden(t *testing.T) []goldenRecord {
	t.Helper()
	var recs []goldenRecord
	for _, bench := range workload.Names() {
		for _, scale := range goldenScales {
			res, err := Run(bench, DefaultConfig(), scale, goldenSeed)
			if err != nil {
				t.Fatalf("Run(%s, %g): %v", bench, scale, err)
			}
			recs = append(recs, goldenRecord{
				Benchmark: bench,
				Scale:     scale,
				Seed:      goldenSeed,
				Cycles:    res.Cycles,
				Metrics:   formatMetrics(res),
			})
		}
	}
	return recs
}

// TestGoldenProfilesByteIdentical pins Result.Cycles and every metric for all nine
// benchmark profiles at two scales against testdata/golden.json. It is the
// contract every performance optimization must preserve: the pooled runner,
// the inlined event heap, and the cache/coherence fast paths may change how
// a run executes, never what it computes.
func TestGoldenProfilesByteIdentical(t *testing.T) {
	got := runGolden(t)
	path := goldenPath(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d records to %s", len(got), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d records, current run produced %d (regenerate with -update)", len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		label := fmt.Sprintf("%s scale=%g seed=%d", w.Benchmark, w.Scale, w.Seed)
		if g.Benchmark != w.Benchmark || g.Scale != w.Scale || g.Seed != w.Seed {
			t.Fatalf("record %d is %s/%g/%d, want %s", i, g.Benchmark, g.Scale, g.Seed, label)
		}
		if g.Cycles != w.Cycles {
			t.Errorf("%s: cycles = %d, want %d", label, g.Cycles, w.Cycles)
		}
		if len(g.Metrics) != len(w.Metrics) {
			t.Errorf("%s: %d metrics, want %d", label, len(g.Metrics), len(w.Metrics))
		}
		for name, wv := range w.Metrics {
			if gv, ok := g.Metrics[name]; !ok {
				t.Errorf("%s: metric %s missing", label, name)
			} else if gv != wv {
				t.Errorf("%s: metric %s = %s, want %s", label, name, gv, wv)
			}
		}
	}
}

// TestGoldenRepeatedRuns executes the same (benchmark, config, scale, seed)
// tuple repeatedly from one goroutine and asserts identical results. With
// the pooled runner this exercises the arena-reuse path directly: the
// second and third iterations run on recycled machine state.
func TestGoldenRepeatedRuns(t *testing.T) {
	cfg := DefaultConfig()
	for _, bench := range []string{"ferret", "canneal", "dedup"} {
		first, err := Run(bench, cfg, 0.05, 7)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			res, err := Run(bench, cfg, 0.05, 7)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != first.Cycles {
				t.Fatalf("%s repeat %d: cycles %d != %d", bench, rep, res.Cycles, first.Cycles)
			}
			for name, v := range first.Metrics {
				if res.Metrics[name] != v {
					t.Fatalf("%s repeat %d: metric %s %v != %v", bench, rep, name, res.Metrics[name], v)
				}
			}
			if res.Trace.Len() != first.Trace.Len() {
				t.Fatalf("%s repeat %d: trace length %d != %d", bench, rep, res.Trace.Len(), first.Trace.Len())
			}
		}
	}
}
