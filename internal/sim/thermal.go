package sim

// thermalModel is the computational-sprinting state machine referenced by
// Table 1 template 8 ("if we enter sprinting state, probability of staying
// there until thermal alert"): a chip-level temperature integrator driven
// by compute activity, a sprint mode entered when cool that boosts
// frequency, and a thermal alert that ends the sprint and throttles until
// the chip cools back down.
//
// The model is updated at trace-sample granularity by the tracer, which
// also exports its state as the trace signals "temp", "sprint",
// "sprint_enter" and "thermal_alert".
type thermalModel struct {
	cfg ThermalConfig

	temp      float64
	sprinting bool
	throttled bool

	// Per-interval event flags, consumed by the tracer.
	enteredSprint bool
	alertFired    bool

	sprintEntries uint64
	alerts        uint64
}

func newThermalModel(cfg ThermalConfig, initTemp float64) *thermalModel {
	t := &thermalModel{}
	t.init(cfg, initTemp)
	return t
}

// init resets the model for a new run, as in a freshly built one.
func (t *thermalModel) init(cfg ThermalConfig, initTemp float64) {
	if initTemp < cfg.Ambient {
		initTemp = cfg.Ambient
	}
	*t = thermalModel{cfg: cfg, temp: initTemp}
}

// speed returns the current frequency multiplier applied to compute bursts.
func (t *thermalModel) speed() float64 {
	switch {
	case !t.cfg.Enabled:
		return 1
	case t.sprinting:
		return t.cfg.SprintBoost
	case t.throttled:
		return t.cfg.ThrottleDip
	default:
		return 1
	}
}

// update advances one sample interval with the given activity in [0, 1]
// (fraction of core-cycles spent computing).
func (t *thermalModel) update(activity float64) {
	if !t.cfg.Enabled {
		return
	}
	if activity < 0 {
		activity = 0
	}
	if activity > 1 {
		activity = 1
	}
	// Power scales superlinearly with frequency (DVFS: P ∝ V²f), so heat
	// follows the square of the current speed multiplier.
	speed := t.speed()
	heat := t.cfg.HeatRate * activity * speed * speed
	t.temp += heat
	t.temp -= t.cfg.CoolRate * (t.temp - t.cfg.Ambient)

	t.enteredSprint = false
	t.alertFired = false
	resume := (t.cfg.SprintEnter + t.cfg.AlertTemp) / 2
	switch {
	case t.temp >= t.cfg.AlertTemp && !t.throttled:
		// Thermal alert: whatever the chip was doing, it throttles; a
		// sprint in progress ends here.
		t.sprinting = false
		t.throttled = true
		t.alertFired = true
		t.alerts++
	case t.throttled && t.temp < resume:
		// Cooled off enough to resume nominal frequency.
		t.throttled = false
	case !t.sprinting && !t.throttled && t.temp < t.cfg.SprintEnter:
		t.sprinting = true
		t.enteredSprint = true
		t.sprintEntries++
	}
}
