// Package sim is the multicore processor simulator substrate: the
// replacement for the paper's gem5 v22.1 + Ruby setup (see DESIGN.md for
// the substitution argument). It executes the synthetic multithreaded
// programs of internal/workload on a timing model of the Table 2 system —
// four out-of-order-class x86 cores with private L1s, a shared inclusive
// L2 with a MESI directory, a crossbar interconnect with 16-byte links,
// and 90-cycle DRAM — with the paper's variability injection (uniform 0–4
// cycle jitter on memory accesses) plus optional OS-noise and colocation
// effects for "real machine" populations (Fig. 1).
//
// Each run is deterministic for its seed: workload structure, DRAM jitter,
// scheduling noise and thermal behaviour all derive from split substreams
// of the run seed, which is the property SPA's replicable campaigns
// require (Sec. 5.2).
package sim

import "fmt"

// Config describes the simulated system. DefaultConfig reproduces Table 2.
type Config struct {
	// Cores is the number of x86-class cores (Table 2: 4).
	Cores int
	// FreqGHz converts cycles to seconds for the runtime metric.
	FreqGHz float64

	// L1I/L1D/L2 geometry (Table 2: I 32KB/2-way, D 32KB/8-way,
	// shared inclusive L2 3MB/16-way, 64B blocks).
	L1ISize, L1IWays int
	L1DSize, L1DWays int
	L2Size, L2Ways   int
	BlockSize        int

	// Latencies in cycles (Table 2: L1 2-cycle, L2 16-cycle, memory
	// 90-cycle).
	L1Latency  uint64
	L2Latency  uint64
	MemLatency uint64

	// ReplacementPolicy selects the cache replacement policy for every
	// cache level: "lru" (default, Table 2's model), "fifo" or "random".
	ReplacementPolicy string

	// CoherenceProtocol selects "mesi" (default, Table 2) or "msi"
	// (the protocol ablation: no Exclusive state, so private
	// read-then-write pays an upgrade transaction).
	CoherenceProtocol string

	// PrefetchNextLine enables a simple next-line prefetcher: every L1
	// demand miss also pulls the following block into the shared L2, off
	// the critical path. Off by default (the Table 2 system model and the
	// recorded experiment campaign run without it); the prefetcher
	// ablation turns it on.
	PrefetchNextLine bool

	// MSHRs is the per-core bound on outstanding memory accesses — the
	// out-of-order core approximation: loads and stores issue without
	// blocking until the window fills, and synchronization operations
	// fence (drain) the window. 1 reverts to a blocking in-order memory
	// model. Value dependencies inside the window are not modeled.
	MSHRs int

	// JitterMax is the inclusive bound of the uniform random latency added
	// to each memory access — the paper's variability injection (0–4).
	// Negative disables injection (the ablation's deterministic mode).
	JitterMax int

	// L2Banks is the number of L2 banks (crossbar output ports).
	L2Banks int
	// NocHopLatency is the crossbar base traversal latency.
	NocHopLatency uint64
	// LinkBytes is the crossbar flit size (Table 2: 16B links).
	LinkBytes int

	// Front-end structures. BPKind selects the branch predictor:
	// "bimodal" (default) or "gshare".
	BPKind            string
	BPEntries         int
	BPHistoryBits     uint
	MispredictPenalty uint64
	TLBEntries        int
	PageSize          int
	TLBWalkLatency    uint64

	// Scheduling.
	SchedQuantum    uint64
	CtxSwitchCost   uint64
	MigrationFlush  float64 // fraction of L1D lost when a thread migrates
	LockLatency     uint64  // uncontended acquire/transfer cost
	UnlockLatency   uint64
	QueueOpLatency  uint64
	BarrierLatency  uint64
	InvalidateCost  uint64 // extra cycles when a write invalidates sharers
	OwnerForwardFee uint64 // extra cycles when a Modified copy is forwarded

	// OS noise and colocation model "real machine" variability (Fig. 1).
	// OSNoiseRate is the per-compute-op probability of a kernel
	// preemption; OSNoiseCycles its mean cost. ColocationProb is the
	// per-run probability that a co-located process slows ColocCores
	// cores by ColocationFactor for the whole run.
	OSNoiseRate      float64
	OSNoiseCycles    uint64
	ColocationProb   float64
	ColocationFactor float64
	ColocCores       int

	// Thermal/sprinting model (Table 1 template 8's example).
	Thermal ThermalConfig

	// CtxSwitchKernelBlocks is the number of kernel cache blocks streamed
	// through the L2 on each context switch (full-system pollution).
	CtxSwitchKernelBlocks int

	// ASLRPages is the span (in pages) of the per-run, per-thread random
	// base-address offset, modeling address-space layout randomization —
	// one of the variability origins the paper cites (program layout /
	// linking order [31]). Zero disables it. Offsets shift cache-set
	// mappings, so conflict-miss counts vary at run granularity.
	ASLRPages int

	// SampleInterval is the trace sampling period in cycles.
	SampleInterval uint64
	// MaxCycles aborts runaway simulations.
	MaxCycles uint64
}

// ThermalConfig parameterizes the sprint/thermal state machine.
type ThermalConfig struct {
	Enabled     bool
	Ambient     float64 // idle-equilibrium temperature (°C)
	HeatRate    float64 // °C per sample at full activity
	CoolRate    float64 // fractional return toward ambient per sample
	SprintEnter float64 // sprint allowed below this temperature
	AlertTemp   float64 // thermal alert above this temperature
	SprintBoost float64 // speed multiplier while sprinting
	ThrottleDip float64 // speed multiplier after an alert, until cooled
	// InitSpread is the span of the per-run random initial temperature
	// above Ambient — the thermal analogue of the paper's "hardware state
	// when the program begins" variability origin (Sec. 2.1). It shifts
	// how soon the first alert fires, quantizing runs into sprint/alert
	// count modes on both sides of the typical run.
	InitSpread float64
}

// DefaultConfig returns the Table 2 system with the paper's variability
// injection enabled.
func DefaultConfig() Config {
	return Config{
		Cores:   4,
		FreqGHz: 2.0,

		L1ISize: 32 * 1024, L1IWays: 2,
		L1DSize: 32 * 1024, L1DWays: 8,
		L2Size: 3 * 1024 * 1024, L2Ways: 16,
		BlockSize: 64,

		ReplacementPolicy: "lru",
		CoherenceProtocol: "mesi",

		L1Latency:  2,
		L2Latency:  16,
		MemLatency: 90,
		MSHRs:      4,
		JitterMax:  4,

		L2Banks:       4,
		NocHopLatency: 2,
		LinkBytes:     16,

		BPKind:            "bimodal",
		BPEntries:         1024,
		BPHistoryBits:     8,
		MispredictPenalty: 12,
		TLBEntries:        64,
		PageSize:          4096,
		TLBWalkLatency:    40,

		SchedQuantum:    50_000,
		CtxSwitchCost:   1_500,
		MigrationFlush:  0.6,
		LockLatency:     24,
		UnlockLatency:   8,
		QueueOpLatency:  30,
		BarrierLatency:  40,
		InvalidateCost:  12,
		OwnerForwardFee: 20,

		CtxSwitchKernelBlocks: 24,
		ASLRPages:             512,

		Thermal: ThermalConfig{
			Enabled:     true,
			Ambient:     45,
			HeatRate:    5,
			CoolRate:    0.1,
			SprintEnter: 55,
			AlertTemp:   78,
			SprintBoost: 1.25,
			ThrottleDip: 0.65,
			InitSpread:  26,
		},

		SampleInterval: 20_000,
		MaxCycles:      2_000_000_000,
	}
}

// HardwareLikeConfig layers the OS-noise and colocation effects on top of
// the default system, producing "real machine" populations like Fig. 1's
// bimodal ferret runtimes: most runs are clean, but a colocated process
// occasionally steals capacity for a whole run.
func HardwareLikeConfig() Config {
	cfg := DefaultConfig()
	cfg.OSNoiseRate = 0.002
	cfg.OSNoiseCycles = 8_000
	cfg.ColocationProb = 0.2
	cfg.ColocationFactor = 0.38
	cfg.ColocCores = 2
	return cfg
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0 || c.Cores > 64:
		return fmt.Errorf("sim: cores %d outside 1..64", c.Cores)
	case c.FreqGHz <= 0:
		return fmt.Errorf("sim: non-positive frequency")
	case c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0:
		return fmt.Errorf("sim: block size %d not a power of two", c.BlockSize)
	case c.L2Banks <= 0:
		return fmt.Errorf("sim: non-positive L2 bank count")
	case c.SampleInterval == 0:
		return fmt.Errorf("sim: zero sample interval")
	case c.MaxCycles == 0:
		return fmt.Errorf("sim: zero cycle budget")
	case c.ColocationProb < 0 || c.ColocationProb > 1:
		return fmt.Errorf("sim: colocation probability %g outside [0,1]", c.ColocationProb)
	case c.BPKind != "" && c.BPKind != "bimodal" && c.BPKind != "gshare":
		return fmt.Errorf("sim: unknown branch predictor %q", c.BPKind)
	case c.MSHRs < 1:
		return fmt.Errorf("sim: MSHRs %d must be at least 1", c.MSHRs)
	case c.CoherenceProtocol != "" && c.CoherenceProtocol != "mesi" && c.CoherenceProtocol != "msi":
		return fmt.Errorf("sim: unknown coherence protocol %q", c.CoherenceProtocol)
	case c.ReplacementPolicy != "" && c.ReplacementPolicy != "lru" &&
		c.ReplacementPolicy != "fifo" && c.ReplacementPolicy != "random":
		return fmt.Errorf("sim: unknown replacement policy %q", c.ReplacementPolicy)
	}
	return nil
}
