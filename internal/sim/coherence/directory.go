// Package coherence implements the MESI directory protocol of the simulated
// system (Table 2: "MESI directory"). The directory lives beside the shared
// L2 and tracks, per block, which cores hold the line and in which state.
// The model is timing-oriented: it reports which protocol actions an access
// triggers (invalidations, owner writebacks, upgrades) so the machine model
// can charge crossbar and memory latency; data movement itself is not
// simulated.
package coherence

import "fmt"

// State is a block's directory-visible state.
type State int

// MESI states as seen by the directory. Exclusive and Modified both imply a
// single owner; the directory conservatively tracks Exclusive separately so
// silent E→M upgrades cost nothing, as in real MESI.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return "I"
	}
}

type entry struct {
	state   State
	sharers uint64 // bitmask of cores holding the line
	owner   int    // valid when state is Exclusive or Modified
}

// Protocol selects the coherence protocol variant.
type Protocol int

const (
	// MESI grants Exclusive on a sole read, making the subsequent write a
	// silent E→M upgrade (Table 2's protocol).
	MESI Protocol = iota
	// MSI has no Exclusive state: a sole reader holds Shared, so every
	// first write pays an upgrade transaction. Kept for the protocol
	// ablation.
	MSI
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	if p == MSI {
		return "MSI"
	}
	return "MESI"
}

// Directory tracks coherence state for every block resident anywhere on
// chip.
//
// Entries live in a flat slab indexed through the map rather than as
// individually heap-allocated values: directory churn (canneal touches
// hundreds of thousands of blocks per run) would otherwise dominate the
// simulator's allocation profile. A block that loses its last holder keeps
// its slab slot, marked Invalid, instead of being deleted from the map:
// eviction-heavy workloads re-touch the same blocks constantly, and a state
// write plus a later map hit is far cheaper than a delete/re-insert pair.
// The live counter maintains TrackedBlocks under this scheme.
type Directory struct {
	cores    int
	protocol Protocol
	entries  map[uint64]int32 // block → index into slab (possibly Invalid)
	slab     []entry
	live     int // entries not in state Invalid
	// invScratch and holderScratch back the slices returned via
	// Action.InvalidatedCores and DropBlock; see the aliasing note on Action.
	invScratch    []int
	holderScratch []int
	stats         Stats
}

// Stats counts protocol actions.
type Stats struct {
	ReadMisses    uint64
	WriteMisses   uint64
	Invalidations uint64 // sharer copies invalidated by upgrades/writes
	OwnerForwards uint64 // dirty data forwarded/written back from an owner
	Upgrades      uint64 // S→M upgrades that only needed invalidations
}

// New builds a MESI directory for the given core count (≤ 64).
func New(cores int) (*Directory, error) {
	return NewWithProtocol(cores, MESI)
}

// NewWithProtocol builds a directory running the given protocol variant.
func NewWithProtocol(cores int, p Protocol) (*Directory, error) {
	if cores <= 0 || cores > 64 {
		return nil, fmt.Errorf("coherence: core count %d outside 1..64", cores)
	}
	if p != MESI && p != MSI {
		return nil, fmt.Errorf("coherence: unknown protocol %d", p)
	}
	return &Directory{cores: cores, protocol: p, entries: make(map[uint64]int32)}, nil
}

// Reset drops all tracked blocks and zeroes the counters while keeping the
// map buckets and slab capacity for reuse by a pooled runner.
func (d *Directory) Reset() {
	clear(d.entries)
	d.slab = d.slab[:0]
	d.live = 0
	d.stats = Stats{}
}

// Action describes the coherence work an access caused; the machine model
// converts these to latency.
//
// InvalidatedCores aliases a scratch buffer owned by the Directory and is
// only valid until the next Read/Write call; callers must consume it
// immediately (the machine model does) or copy it.
type Action struct {
	// Invalidated is the number of remote copies invalidated.
	Invalidated int
	// InvalidatedCores lists the cores whose copies were invalidated so
	// their private caches can be kept in sync.
	InvalidatedCores []int
	// OwnerWriteback is set when a Modified remote copy had to be written
	// back / forwarded.
	OwnerWriteback bool
	// OwnerCore is the core that held the Modified copy.
	OwnerCore int
	// WasMiss is set when the block was not in the requesting core's state
	// at all (directory read/write miss, as opposed to an upgrade).
	WasMiss bool
	// Upgrade is set when a Shared holder's write required a directory
	// upgrade transaction (always in MSI; in MESI only when the line was
	// genuinely Shared rather than Exclusive).
	Upgrade bool
}

func (d *Directory) get(block uint64) *entry {
	if idx, ok := d.entries[block]; ok {
		return &d.slab[idx]
	}
	d.slab = append(d.slab, entry{state: Invalid, owner: -1})
	idx := int32(len(d.slab) - 1)
	d.entries[block] = idx
	return &d.slab[idx]
}

// invalidate marks an entry untracked in place, keeping its slab slot and
// map key for cheap re-acquisition.
func (d *Directory) invalidate(e *entry) {
	e.state = Invalid
	e.sharers = 0
	e.owner = -1
	d.live--
}

func (d *Directory) checkCore(core int) {
	if core < 0 || core >= d.cores {
		panic(fmt.Sprintf("coherence: core %d out of range", core))
	}
}

// Read records core's read of block and returns the triggered actions.
func (d *Directory) Read(core int, block uint64) Action {
	d.checkCore(core)
	e := d.get(block)
	bit := uint64(1) << uint(core)
	var act Action
	switch e.state {
	case Invalid:
		if d.protocol == MSI {
			e.state = Shared
			e.owner = -1
		} else {
			e.state = Exclusive
			e.owner = core
		}
		e.sharers = bit
		d.live++
		act.WasMiss = true
		d.stats.ReadMisses++
	case Shared:
		if e.sharers&bit == 0 {
			e.sharers |= bit
			act.WasMiss = true
			d.stats.ReadMisses++
		}
	case Exclusive, Modified:
		if e.owner == core {
			break // silent hit
		}
		if e.state == Modified {
			act.OwnerWriteback = true
			act.OwnerCore = e.owner
			d.stats.OwnerForwards++
		}
		// Owner downgrades to Shared; reader joins.
		e.state = Shared
		e.sharers |= bit
		e.owner = -1
		act.WasMiss = true
		d.stats.ReadMisses++
	}
	return act
}

// Write records core's write of block and returns the triggered actions.
func (d *Directory) Write(core int, block uint64) Action {
	d.checkCore(core)
	e := d.get(block)
	bit := uint64(1) << uint(core)
	var act Action
	switch e.state {
	case Invalid:
		d.live++
		act.WasMiss = true
		d.stats.WriteMisses++
	case Shared:
		// Invalidate all other sharers; upgrade if we were one of them.
		d.invScratch = d.invScratch[:0]
		for c := 0; c < d.cores; c++ {
			cb := uint64(1) << uint(c)
			if c != core && e.sharers&cb != 0 {
				act.Invalidated++
				d.invScratch = append(d.invScratch, c)
				d.stats.Invalidations++
			}
		}
		act.InvalidatedCores = d.invScratch
		if e.sharers&bit != 0 {
			act.Upgrade = true
			d.stats.Upgrades++
		} else {
			act.WasMiss = true
			d.stats.WriteMisses++
		}
	case Exclusive, Modified:
		if e.owner == core {
			break // silent E→M or M hit
		}
		if e.state == Modified {
			act.OwnerWriteback = true
			act.OwnerCore = e.owner
			d.stats.OwnerForwards++
		}
		act.Invalidated++
		d.invScratch = append(d.invScratch[:0], e.owner)
		act.InvalidatedCores = d.invScratch
		d.stats.Invalidations++
		act.WasMiss = true
		d.stats.WriteMisses++
	}
	e.state = Modified
	e.owner = core
	e.sharers = bit
	return act
}

// Evict removes core's copy of block from the directory (L1 eviction or
// back-invalidation). It returns whether the evicted copy was Modified.
func (d *Directory) Evict(core int, block uint64) (wasModified bool) {
	d.checkCore(core)
	idx, ok := d.entries[block]
	if !ok {
		return false
	}
	e := &d.slab[idx]
	bit := uint64(1) << uint(core)
	switch e.state {
	case Shared:
		e.sharers &^= bit
		if e.sharers == 0 {
			d.invalidate(e)
		}
	case Exclusive, Modified:
		if e.owner == core {
			wasModified = e.state == Modified
			d.invalidate(e)
		}
	}
	return wasModified
}

// DropBlock removes every core's copy (L2 eviction with inclusion). It
// returns the cores that held the line so the machine can back-invalidate
// their L1s, and whether a modified copy existed. The returned slice aliases
// a scratch buffer valid until the next DropBlock call.
func (d *Directory) DropBlock(block uint64) (holders []int, hadModified bool) {
	idx, ok := d.entries[block]
	if !ok || d.slab[idx].state == Invalid {
		return nil, false
	}
	e := &d.slab[idx]
	d.holderScratch = d.holderScratch[:0]
	for c := 0; c < d.cores; c++ {
		if e.sharers&(uint64(1)<<uint(c)) != 0 {
			d.holderScratch = append(d.holderScratch, c)
		}
	}
	hadModified = e.state == Modified
	d.invalidate(e)
	return d.holderScratch, hadModified
}

// StateOf returns the directory state of a block and its holders, for tests
// and invariant checks.
func (d *Directory) StateOf(block uint64) (State, []int) {
	idx, ok := d.entries[block]
	if !ok || d.slab[idx].state == Invalid {
		return Invalid, nil
	}
	e := &d.slab[idx]
	var holders []int
	for c := 0; c < d.cores; c++ {
		if e.sharers&(uint64(1)<<uint(c)) != 0 {
			holders = append(holders, c)
		}
	}
	return e.state, holders
}

// CheckInvariants verifies the MESI safety properties over every tracked
// block: Modified/Exclusive imply exactly one holder which is the owner,
// and Shared implies at least one holder. It returns the first violation.
func (d *Directory) CheckInvariants() error {
	for block, idx := range d.entries {
		e := &d.slab[idx]
		holders := 0
		for c := 0; c < d.cores; c++ {
			if e.sharers&(uint64(1)<<uint(c)) != 0 {
				holders++
			}
		}
		switch e.state {
		case Modified, Exclusive:
			if holders != 1 {
				return fmt.Errorf("coherence: block %#x in %v with %d holders", block, e.state, holders)
			}
			if e.owner < 0 || e.sharers != uint64(1)<<uint(e.owner) {
				return fmt.Errorf("coherence: block %#x owner/sharers mismatch", block)
			}
		case Shared:
			if holders == 0 {
				return fmt.Errorf("coherence: block %#x Shared with no holders", block)
			}
		case Invalid:
			// Untracked slot retained for reuse: must hold no sharers.
			if holders != 0 {
				return fmt.Errorf("coherence: block %#x Invalid with %d holders", block, holders)
			}
		}
	}
	return nil
}

// Stats returns a copy of the action counters.
func (d *Directory) Stats() Stats { return d.stats }

// TrackedBlocks returns the number of blocks with directory state (slots
// retained in state Invalid for reuse are not counted).
func (d *Directory) TrackedBlocks() int { return d.live }
