package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func mustNew(t *testing.T, cores int) *Directory {
	t.Helper()
	d, err := New(cores)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("0 cores should error")
	}
	if _, err := New(65); err == nil {
		t.Error("65 cores should error")
	}
	if _, err := New(4); err != nil {
		t.Errorf("4 cores should be fine: %v", err)
	}
}

func TestReadExclusiveThenShared(t *testing.T) {
	d := mustNew(t, 4)
	act := d.Read(0, 0x100)
	if !act.WasMiss {
		t.Error("first read should miss")
	}
	if st, holders := d.StateOf(0x100); st != Exclusive || len(holders) != 1 || holders[0] != 0 {
		t.Errorf("after first read: %v %v", st, holders)
	}
	// Second core reads: downgrade to Shared, no writeback (was clean E).
	act = d.Read(1, 0x100)
	if !act.WasMiss || act.OwnerWriteback {
		t.Errorf("E→S on remote read: %+v", act)
	}
	if st, holders := d.StateOf(0x100); st != Shared || len(holders) != 2 {
		t.Errorf("after second read: %v %v", st, holders)
	}
	// Re-read by a sharer is silent.
	act = d.Read(0, 0x100)
	if act.WasMiss {
		t.Error("sharer re-read should be silent")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := mustNew(t, 4)
	d.Read(0, 0x200)
	d.Read(1, 0x200)
	d.Read(2, 0x200)
	act := d.Write(1, 0x200)
	if act.Invalidated != 2 {
		t.Errorf("upgrade should invalidate 2 sharers, got %d", act.Invalidated)
	}
	if act.WasMiss {
		t.Error("upgrade by a sharer is not a directory miss")
	}
	if st, holders := d.StateOf(0x200); st != Modified || len(holders) != 1 || holders[0] != 1 {
		t.Errorf("after upgrade: %v %v", st, holders)
	}
	if d.Stats().Upgrades != 1 {
		t.Errorf("upgrade count %d", d.Stats().Upgrades)
	}
}

func TestWriteAfterRemoteModified(t *testing.T) {
	d := mustNew(t, 4)
	d.Write(0, 0x300)
	act := d.Write(1, 0x300)
	if !act.OwnerWriteback || act.OwnerCore != 0 {
		t.Errorf("M→M migration should write back the owner: %+v", act)
	}
	if act.Invalidated != 1 {
		t.Errorf("old owner should be invalidated: %+v", act)
	}
	if st, holders := d.StateOf(0x300); st != Modified || holders[0] != 1 {
		t.Errorf("after migration: %v %v", st, holders)
	}
}

func TestReadAfterRemoteModified(t *testing.T) {
	d := mustNew(t, 2)
	d.Write(0, 0x400)
	act := d.Read(1, 0x400)
	if !act.OwnerWriteback || act.OwnerCore != 0 {
		t.Errorf("M→S should write back: %+v", act)
	}
	if st, holders := d.StateOf(0x400); st != Shared || len(holders) != 2 {
		t.Errorf("after M→S: %v %v", st, holders)
	}
}

func TestSilentUpgradesAndHits(t *testing.T) {
	d := mustNew(t, 2)
	d.Read(0, 0x500) // E
	act := d.Write(0, 0x500)
	if act.WasMiss || act.Invalidated != 0 || act.OwnerWriteback {
		t.Errorf("silent E→M should cost nothing: %+v", act)
	}
	act = d.Write(0, 0x500)
	if act.WasMiss {
		t.Error("M hit should be silent")
	}
	act = d.Read(0, 0x500)
	if act.WasMiss {
		t.Error("owner read hit should be silent")
	}
}

func TestEvict(t *testing.T) {
	d := mustNew(t, 2)
	d.Write(0, 0x600)
	if !d.Evict(0, 0x600) {
		t.Error("evicting a Modified copy should report modified")
	}
	if st, _ := d.StateOf(0x600); st != Invalid {
		t.Errorf("block should be untracked after owner eviction, got %v", st)
	}
	// Sharer eviction leaves the other sharer.
	d.Read(0, 0x700)
	d.Read(1, 0x700)
	if d.Evict(0, 0x700) {
		t.Error("evicting a Shared copy is not modified")
	}
	if st, holders := d.StateOf(0x700); st != Shared || len(holders) != 1 || holders[0] != 1 {
		t.Errorf("after sharer eviction: %v %v", st, holders)
	}
	if d.Evict(3-2, 0x700); d.TrackedBlocks() != 0 {
		t.Error("last sharer eviction should untrack the block")
	}
	if d.Evict(0, 0xDEAD) {
		t.Error("evicting an untracked block is a no-op")
	}
}

func TestDropBlock(t *testing.T) {
	d := mustNew(t, 4)
	d.Read(0, 0x800)
	d.Read(2, 0x800)
	holders, hadMod := d.DropBlock(0x800)
	if len(holders) != 2 || hadMod {
		t.Errorf("DropBlock = %v, %v", holders, hadMod)
	}
	if d.TrackedBlocks() != 0 {
		t.Error("block should be gone")
	}
	d.Write(1, 0x900)
	holders, hadMod = d.DropBlock(0x900)
	if len(holders) != 1 || holders[0] != 1 || !hadMod {
		t.Errorf("DropBlock of modified = %v, %v", holders, hadMod)
	}
	if h, m := d.DropBlock(0xAAA); h != nil || m {
		t.Error("dropping untracked block should be empty")
	}
}

// MESI safety invariants hold under arbitrary interleaved traffic — the
// model-checking-style property test.
func TestInvariantsUnderRandomTrafficProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d, err := New(4)
		if err != nil {
			return false
		}
		r := randx.New(seed)
		for i := 0; i < 3000; i++ {
			core := r.Intn(4)
			block := uint64(r.Intn(32)) * 64 // small block pool to force sharing
			switch r.Intn(4) {
			case 0:
				d.Read(core, block)
			case 1:
				d.Write(core, block)
			case 2:
				d.Evict(core, block)
			case 3:
				d.DropBlock(block)
			}
			if d.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCheckCorePanics(t *testing.T) {
	d := mustNew(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range core should panic")
		}
	}()
	d.Read(5, 0x100)
}

func TestMSIProtocolNoExclusive(t *testing.T) {
	d, err := NewWithProtocol(2, MSI)
	if err != nil {
		t.Fatal(err)
	}
	d.Read(0, 0x100)
	if st, holders := d.StateOf(0x100); st != Shared || len(holders) != 1 {
		t.Errorf("MSI sole read should be Shared: %v %v", st, holders)
	}
	// A write by the sole sharer pays an upgrade in MSI.
	act := d.Write(0, 0x100)
	if !act.Upgrade || act.WasMiss || act.Invalidated != 0 {
		t.Errorf("MSI sole-sharer write should be a pure upgrade: %+v", act)
	}
	if d.Stats().Upgrades != 1 {
		t.Errorf("upgrade count %d", d.Stats().Upgrades)
	}
	// The same sequence in MESI is silent.
	m, _ := New(2)
	m.Read(0, 0x100)
	actMESI := m.Write(0, 0x100)
	if actMESI.Upgrade || actMESI.WasMiss {
		t.Errorf("MESI E→M should be silent: %+v", actMESI)
	}
	if _, err := NewWithProtocol(2, Protocol(9)); err == nil {
		t.Error("unknown protocol should error")
	}
	if MSI.String() != "MSI" || MESI.String() != "MESI" {
		t.Error("protocol names wrong")
	}
}

func TestMSIInvariantsUnderTraffic(t *testing.T) {
	d, err := NewWithProtocol(4, MSI)
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(77)
	for i := 0; i < 2000; i++ {
		core := r.Intn(4)
		block := uint64(r.Intn(24)) * 64
		switch r.Intn(3) {
		case 0:
			d.Read(core, block)
		case 1:
			d.Write(core, block)
		case 2:
			d.Evict(core, block)
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
