// Package cpu models the per-core front-end structures whose behaviour
// feeds the evaluation's metrics: a 2-bit saturating-counter branch
// predictor (branch MPKI, %time handling mispredictions) and a data TLB
// (TLB MPKI, avg cycles between TLB misses — Table 1 template 4's example).
package cpu

import "fmt"

// BranchPredictor is a table of 2-bit saturating counters indexed by a PC
// hash — the classic bimodal predictor.
type BranchPredictor struct {
	counters []uint8
	mask     uint64
	stats    BranchStats
}

// BranchStats counts predictor outcomes.
type BranchStats struct {
	Predictions uint64
	Mispredicts uint64
}

// NewBranchPredictor builds a predictor with the given number of counters
// (rounded up to a power of two, minimum 16). Counters start weakly taken.
func NewBranchPredictor(entries int) *BranchPredictor {
	n := 16
	for n < entries {
		n <<= 1
	}
	c := make([]uint8, n)
	for i := range c {
		c[i] = 2 // weakly taken
	}
	return &BranchPredictor{counters: c, mask: uint64(n - 1)}
}

// Predict consumes the actual outcome of the branch at pc and reports
// whether the predictor mispredicted it, updating the counter.
func (b *BranchPredictor) Predict(pc uint64, taken bool) (mispredict bool) {
	idx := (pc >> 2) & b.mask
	ctr := b.counters[idx]
	predictTaken := ctr >= 2
	mispredict = predictTaken != taken
	if taken && ctr < 3 {
		b.counters[idx] = ctr + 1
	}
	if !taken && ctr > 0 {
		b.counters[idx] = ctr - 1
	}
	b.stats.Predictions++
	if mispredict {
		b.stats.Mispredicts++
	}
	return mispredict
}

// Stats returns a copy of the counters.
func (b *BranchPredictor) Stats() BranchStats { return b.stats }

// Reset restores every counter to weakly taken and zeroes the statistics, as
// in a freshly built predictor.
func (b *BranchPredictor) Reset() {
	for i := range b.counters {
		b.counters[i] = 2
	}
	b.stats = BranchStats{}
}

// TLB is a fully associative, true-LRU translation lookaside buffer over
// fixed-size pages. The recency order is an intrusive doubly-linked list
// over preallocated nodes, so both hits and evictions are O(1) — the TLB
// sits on every memory access of the simulator, so this matters.
type TLB struct {
	entries  int
	pageBits uint
	slots    map[uint64]int // page → node index
	nodes    []tlbNode
	head     int // most recently used, -1 when empty
	tail     int // least recently used, -1 when empty
	free     []int
	stats    TLBStats
}

type tlbNode struct {
	page       uint64
	prev, next int
}

// TLBStats counts translation outcomes.
type TLBStats struct {
	Lookups uint64
	Misses  uint64
}

// NewTLB builds a TLB with the given entry count and page size (a power of
// two).
func NewTLB(entries int, pageSize int) (*TLB, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("cpu: non-positive TLB entries %d", entries)
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("cpu: page size %d not a power of two", pageSize)
	}
	bits := uint(0)
	for 1<<bits < pageSize {
		bits++
	}
	t := &TLB{
		entries:  entries,
		pageBits: bits,
		slots:    make(map[uint64]int, entries),
		nodes:    make([]tlbNode, entries),
		head:     -1,
		tail:     -1,
	}
	t.free = make([]int, entries)
	for i := range t.free {
		t.free[i] = i
	}
	return t, nil
}

// unlink removes node i from the recency list.
func (t *TLB) unlink(i int) {
	n := &t.nodes[i]
	if n.prev >= 0 {
		t.nodes[n.prev].next = n.next
	} else {
		t.head = n.next
	}
	if n.next >= 0 {
		t.nodes[n.next].prev = n.prev
	} else {
		t.tail = n.prev
	}
}

// pushFront makes node i the most recently used.
func (t *TLB) pushFront(i int) {
	n := &t.nodes[i]
	n.prev = -1
	n.next = t.head
	if t.head >= 0 {
		t.nodes[t.head].prev = i
	}
	t.head = i
	if t.tail < 0 {
		t.tail = i
	}
}

// Lookup translates addr, returning whether it missed. On a miss the page
// is filled, evicting the LRU entry when full.
func (t *TLB) Lookup(addr uint64) (miss bool) {
	page := addr >> t.pageBits
	t.stats.Lookups++
	if i, ok := t.slots[page]; ok {
		if t.head != i {
			t.unlink(i)
			t.pushFront(i)
		}
		return false
	}
	t.stats.Misses++
	var i int
	if len(t.free) > 0 {
		i = t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
	} else {
		i = t.tail
		t.unlink(i)
		delete(t.slots, t.nodes[i].page)
	}
	t.nodes[i].page = page
	t.slots[page] = i
	t.pushFront(i)
	return true
}

// Flush empties the TLB (context switch).
func (t *TLB) Flush() {
	clear(t.slots)
	t.head, t.tail = -1, -1
	t.free = t.free[:0]
	for i := 0; i < t.entries; i++ {
		t.free = append(t.free, i)
	}
}

// Stats returns a copy of the counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// Reset flushes all translations and zeroes the statistics (Flush keeps
// them), matching a freshly built TLB.
func (t *TLB) Reset() {
	t.Flush()
	t.stats = TLBStats{}
}

// Resident returns the number of valid entries.
func (t *TLB) Resident() int { return len(t.slots) }

// Gshare is a global-history branch predictor: the PC hash is XORed with a
// shift register of recent outcomes before indexing the counter table,
// letting it capture correlated branches the bimodal table cannot.
type Gshare struct {
	counters []uint8
	mask     uint64
	history  uint64
	histBits uint
	stats    BranchStats
}

// NewGshare builds a gshare predictor with the given table size (rounded
// up to a power of two, minimum 16) and history length in bits (clamped to
// the index width).
func NewGshare(entries int, historyBits uint) *Gshare {
	n := 16
	for n < entries {
		n <<= 1
	}
	idxBits := uint(0)
	for 1<<idxBits < n {
		idxBits++
	}
	if historyBits > idxBits {
		historyBits = idxBits
	}
	c := make([]uint8, n)
	for i := range c {
		c[i] = 2 // weakly taken
	}
	return &Gshare{counters: c, mask: uint64(n - 1), histBits: historyBits}
}

// Predict consumes the branch outcome, updating the counters and the
// global history, and reports whether the prediction was wrong.
func (g *Gshare) Predict(pc uint64, taken bool) (mispredict bool) {
	idx := ((pc >> 2) ^ g.history) & g.mask
	ctr := g.counters[idx]
	predictTaken := ctr >= 2
	mispredict = predictTaken != taken
	if taken && ctr < 3 {
		g.counters[idx] = ctr + 1
	}
	if !taken && ctr > 0 {
		g.counters[idx] = ctr - 1
	}
	g.history = (g.history << 1) & ((1 << g.histBits) - 1)
	if taken {
		g.history |= 1
	}
	g.stats.Predictions++
	if mispredict {
		g.stats.Mispredicts++
	}
	return mispredict
}

// Stats returns a copy of the counters.
func (g *Gshare) Stats() BranchStats { return g.stats }

// Reset restores the counters to weakly taken and clears the global history
// and statistics, as in a freshly built predictor.
func (g *Gshare) Reset() {
	for i := range g.counters {
		g.counters[i] = 2
	}
	g.history = 0
	g.stats = BranchStats{}
}

// Predictor is the interface both branch predictors satisfy, letting the
// machine select one by configuration.
type Predictor interface {
	Predict(pc uint64, taken bool) bool
	Stats() BranchStats
	// Reset restores the predictor to its freshly built state.
	Reset()
}

// Interface checks.
var (
	_ Predictor = (*BranchPredictor)(nil)
	_ Predictor = (*Gshare)(nil)
)
