package cpu

import (
	"testing"

	"repro/internal/randx"
)

func TestBranchPredictorLearnsBias(t *testing.T) {
	bp := NewBranchPredictor(1024)
	// A branch always taken: after warmup, no mispredictions.
	for i := 0; i < 10; i++ {
		bp.Predict(0x400, true)
	}
	before := bp.Stats().Mispredicts
	for i := 0; i < 100; i++ {
		if bp.Predict(0x400, true) {
			t.Fatal("saturated predictor mispredicted a biased branch")
		}
	}
	if bp.Stats().Mispredicts != before {
		t.Error("misprediction count changed on biased branch")
	}
}

func TestBranchPredictorAlternatingIsHard(t *testing.T) {
	bp := NewBranchPredictor(64)
	mis := 0
	for i := 0; i < 1000; i++ {
		if bp.Predict(0x80, i%2 == 0) {
			mis++
		}
	}
	// A 2-bit counter on an alternating branch mispredicts ~half the time.
	if mis < 300 {
		t.Errorf("alternating branch mispredicts = %d, expected ≈500", mis)
	}
}

func TestBranchPredictorTableRounding(t *testing.T) {
	bp := NewBranchPredictor(1000) // rounds up to 1024
	if len(bp.counters) != 1024 {
		t.Errorf("table size %d, want 1024", len(bp.counters))
	}
	bp2 := NewBranchPredictor(0)
	if len(bp2.counters) != 16 {
		t.Errorf("minimum table size %d, want 16", len(bp2.counters))
	}
}

func TestTLBValidation(t *testing.T) {
	if _, err := NewTLB(0, 4096); err == nil {
		t.Error("0 entries should error")
	}
	if _, err := NewTLB(64, 3000); err == nil {
		t.Error("non-power-of-two page should error")
	}
}

func TestTLBHitAfterFill(t *testing.T) {
	tlb, err := NewTLB(4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !tlb.Lookup(0x1000) {
		t.Error("first lookup should miss")
	}
	if tlb.Lookup(0x1FFF) {
		t.Error("same-page lookup should hit")
	}
	st := tlb.Stats()
	if st.Lookups != 2 || st.Misses != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb, _ := NewTLB(2, 4096)
	tlb.Lookup(0x0000) // page 0
	tlb.Lookup(0x1000) // page 1
	tlb.Lookup(0x0000) // page 0 now MRU
	tlb.Lookup(0x2000) // page 2 evicts page 1
	if tlb.Lookup(0x0000) {
		t.Error("page 0 should still be resident")
	}
	if !tlb.Lookup(0x1000) {
		t.Error("page 1 should have been evicted")
	}
	if tlb.Resident() != 2 {
		t.Errorf("resident = %d, want 2", tlb.Resident())
	}
}

func TestTLBFlush(t *testing.T) {
	tlb, _ := NewTLB(8, 4096)
	tlb.Lookup(0x1000)
	tlb.Flush()
	if tlb.Resident() != 0 {
		t.Error("flush should empty the TLB")
	}
	if !tlb.Lookup(0x1000) {
		t.Error("post-flush lookup should miss")
	}
}

func TestTLBMissRateSmallWorkingSet(t *testing.T) {
	tlb, _ := NewTLB(64, 4096)
	r := randx.New(5)
	// 32 pages fit comfortably: after warmup the miss rate is ~0.
	for i := 0; i < 5000; i++ {
		tlb.Lookup(uint64(r.Intn(32)) * 4096)
	}
	st := tlb.Stats()
	if st.Misses > 40 {
		t.Errorf("fitting working set missed %d times", st.Misses)
	}
}

// Reference model: the O(1) linked-list TLB must behave identically to a
// naive clock-scan LRU over arbitrary access strings.
type refTLB struct {
	entries int
	slots   map[uint64]uint64
	clock   uint64
}

func (t *refTLB) lookup(page uint64) bool {
	t.clock++
	if _, ok := t.slots[page]; ok {
		t.slots[page] = t.clock
		return false
	}
	if len(t.slots) >= t.entries {
		var lruP, lruC uint64 = 0, ^uint64(0)
		for p, c := range t.slots {
			if c < lruC {
				lruC, lruP = c, p
			}
		}
		delete(t.slots, lruP)
	}
	t.slots[page] = t.clock
	return true
}

func TestTLBMatchesReferenceModel(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		tlb, err := NewTLB(8, 4096)
		if err != nil {
			t.Fatal(err)
		}
		ref := &refTLB{entries: 8, slots: map[uint64]uint64{}}
		r := randx.New(seed)
		for i := 0; i < 3000; i++ {
			if r.Bernoulli(0.01) {
				tlb.Flush()
				ref.slots = map[uint64]uint64{}
				continue
			}
			addr := uint64(r.Intn(20)) * 4096
			got := tlb.Lookup(addr)
			want := ref.lookup(addr >> 12)
			if got != want {
				t.Fatalf("seed %d access %d: miss=%v, reference says %v", seed, i, got, want)
			}
		}
		if tlb.Resident() != len(ref.slots) {
			t.Fatalf("occupancy diverged: %d vs %d", tlb.Resident(), len(ref.slots))
		}
	}
}

func TestTLBFlushRefillCycles(t *testing.T) {
	tlb, _ := NewTLB(4, 4096)
	for cycle := 0; cycle < 10; cycle++ {
		for p := uint64(0); p < 4; p++ {
			tlb.Lookup(p * 4096)
		}
		if tlb.Resident() != 4 {
			t.Fatalf("cycle %d: resident %d", cycle, tlb.Resident())
		}
		tlb.Flush()
		if tlb.Resident() != 0 {
			t.Fatal("flush left entries")
		}
	}
	// All those first-touches were misses.
	if tlb.Stats().Misses != 40 {
		t.Errorf("misses = %d, want 40", tlb.Stats().Misses)
	}
}

func TestGshareLearnsCorrelatedPattern(t *testing.T) {
	// A strictly periodic pattern (T T N) defeats a bimodal counter but is
	// perfectly predictable with 2+ bits of history.
	pattern := []bool{true, true, false}
	g := NewGshare(256, 8)
	b := NewBranchPredictor(256)
	var gMis, bMis int
	for i := 0; i < 3000; i++ {
		taken := pattern[i%3]
		if g.Predict(0x40, taken) {
			gMis++
		}
		if b.Predict(0x40, taken) {
			bMis++
		}
	}
	if gMis >= bMis {
		t.Errorf("gshare (%d misses) should beat bimodal (%d) on a periodic pattern", gMis, bMis)
	}
	if g.Stats().Predictions != 3000 {
		t.Error("prediction count wrong")
	}
	// After warmup, gshare should be nearly perfect on this pattern.
	warm := NewGshare(256, 8)
	for i := 0; i < 300; i++ {
		warm.Predict(0x40, pattern[i%3])
	}
	late := 0
	for i := 300; i < 600; i++ {
		if warm.Predict(0x40, pattern[i%3]) {
			late++
		}
	}
	if late > 10 {
		t.Errorf("warmed gshare still mispredicts %d/300 on a periodic pattern", late)
	}
}

func TestGshareHistoryClamp(t *testing.T) {
	g := NewGshare(16, 60) // history clamped to index width (4 bits)
	if g.histBits != 4 {
		t.Errorf("history bits = %d, want clamped 4", g.histBits)
	}
	for i := 0; i < 100; i++ {
		g.Predict(uint64(i)*4, i%2 == 0)
	}
	if g.history >= 1<<4 {
		t.Errorf("history %b escaped its clamp", g.history)
	}
}
