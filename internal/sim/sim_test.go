package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/workload"
)

// testScale keeps unit-test simulations fast; the distributions at this
// scale are not meaningful, only the mechanics.
const testScale = 0.08

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Cores = 100 },
		func(c *Config) { c.FreqGHz = 0 },
		func(c *Config) { c.BlockSize = 48 },
		func(c *Config) { c.L2Banks = 0 },
		func(c *Config) { c.SampleInterval = 0 },
		func(c *Config) { c.MaxCycles = 0 },
		func(c *Config) { c.ColocationProb = 1.5 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate the config", i)
		}
	}
}

func TestAllProfilesRun(t *testing.T) {
	cfg := DefaultConfig()
	for _, name := range workload.Names() {
		res, err := Run(name, cfg, testScale, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Benchmark != name {
			t.Errorf("%s: result labeled %q", name, res.Benchmark)
		}
		if res.Cycles == 0 || res.Instructions == 0 {
			t.Errorf("%s: empty execution", name)
		}
		for _, metric := range []string{
			MetricRuntime, MetricIPC, MetricL1DMPKI, MetricL2MPKI,
			MetricMaxLoadLat, MetricAvgLoadLat, MetricBranchMPKI, MetricTLBMPKI,
		} {
			v, ok := res.Metric(metric)
			if !ok {
				t.Errorf("%s: missing metric %s", name, metric)
				continue
			}
			if math.IsNaN(v) || v < 0 {
				t.Errorf("%s: metric %s = %v", name, metric, v)
			}
		}
		if res.Metrics[MetricRuntime] <= 0 || res.Metrics[MetricIPC] <= 0 {
			t.Errorf("%s: degenerate runtime/ipc", name)
		}
	}
}

func TestRunUnknownProfile(t *testing.T) {
	if _, err := Run("nope", DefaultConfig(), 1, 1); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Run("ferret", cfg, testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("ferret", cfg, testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", a.Cycles, a.Instructions, b.Cycles, b.Instructions)
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %s differs: %v vs %v", k, v, b.Metrics[k])
		}
	}
}

func TestVariabilityInjectionCreatesSpread(t *testing.T) {
	cfg := DefaultConfig()
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		res, err := Run("ferret", cfg, testScale, seed)
		if err != nil {
			t.Fatal(err)
		}
		seen[res.Cycles] = true
	}
	if len(seen) < 2 {
		t.Error("injected jitter should perturb runtimes across seeds")
	}
}

func TestNoInjectionIsDeterministicAcrossSeeds(t *testing.T) {
	// The ablation's degenerate case (Sec. 2.2): without injected
	// variability a deterministic simulator produces identical executions
	// regardless of the seed.
	cfg := DefaultConfig()
	cfg.JitterMax = -1 // no DRAM jitter
	cfg.ASLRPages = 0  // no layout randomization
	var first uint64
	for seed := uint64(0); seed < 5; seed++ {
		res, err := Run("ferret", cfg, testScale, seed)
		if err != nil {
			t.Fatal(err)
		}
		if seed == 0 {
			first = res.Cycles
		} else if res.Cycles != first {
			t.Fatalf("seed %d gave %d cycles, seed 0 gave %d — should be identical without injection",
				seed, res.Cycles, first)
		}
	}
}

func TestColocationCreatesSlowMode(t *testing.T) {
	cfg := HardwareLikeConfig()
	cfg.OSNoiseRate = 0 // isolate the colocation effect
	var clean, slow []float64
	for seed := uint64(0); seed < 30; seed++ {
		res, err := Run("ferret", cfg, testScale, seed)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct the per-run colocation draw the machine made.
		r := randx.New(seed)
		if r.Split(11).Bernoulli(cfg.ColocationProb) {
			slow = append(slow, float64(res.Cycles))
		} else {
			clean = append(clean, float64(res.Cycles))
		}
	}
	if len(slow) == 0 || len(clean) == 0 {
		t.Skip("colocation draw did not produce both modes in 30 seeds")
	}
	if stats.Mean(slow) < stats.Mean(clean)*1.05 {
		t.Errorf("colocated runs (mean %.0f) should be clearly slower than clean runs (mean %.0f)",
			stats.Mean(slow), stats.Mean(clean))
	}
}

func TestTraceSignalsComplete(t *testing.T) {
	res, err := Run("streamcluster", DefaultConfig(), testScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("missing trace")
	}
	for _, sig := range []string{
		"ipc", "l1d_mpki", "l2_mpki", "tlb_miss", "mispredict",
		"temp", "sprint", "sprint_enter", "thermal_alert",
	} {
		if !res.Trace.Has(sig) {
			t.Errorf("trace missing signal %q", sig)
			continue
		}
		vals, err := res.Trace.Signal(sig)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			if math.IsNaN(v) || v < 0 {
				t.Errorf("signal %s[%d] = %v", sig, i, v)
				break
			}
		}
	}
	// Boolean signals stay in {0,1}.
	for _, sig := range []string{"sprint", "sprint_enter", "thermal_alert"} {
		vals, _ := res.Trace.Signal(sig)
		for i, v := range vals {
			if v != 0 && v != 1 {
				t.Errorf("boolean signal %s[%d] = %v", sig, i, v)
				break
			}
		}
	}
}

// After a full run the MESI directory must satisfy its safety invariants,
// every L1-resident data block must be directory-tracked for that core,
// and every directory-tracked block must be L2-resident (inclusion).
func TestEndOfRunCoherenceInvariants(t *testing.T) {
	for _, name := range []string{"ferret", "canneal", "streamcluster"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog := p.Build(testScale, randx.New(0x0BEEF))
		m, err := newMachine(prog, DefaultConfig(), randx.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.dir.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		for c := 0; c < m.cfg.Cores; c++ {
			for _, blk := range m.l1d[c].Blocks() {
				state, holders := m.dir.StateOf(blk)
				if state.String() == "I" {
					t.Errorf("%s: core %d holds untracked block %#x", name, c, blk)
					continue
				}
				found := false
				for _, h := range holders {
					if h == c {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: core %d holds block %#x not listed in directory", name, c, blk)
				}
				if !m.l2.Contains(blk) {
					t.Errorf("%s: inclusion violated for block %#x", name, blk)
				}
			}
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A thread that consumes from a queue nobody fills must deadlock.
	prog := &workload.Program{
		Name:    "deadlock",
		Threads: []workload.ThreadGen{opList{{Kind: workload.OpConsume, ID: 0}}.gen()},
		Queues:  []workload.QueueSpec{{ID: 0, Capacity: 1}},
	}
	_, err := RunProgram(prog, DefaultConfig(), randx.New(1))
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected deadlock error, got %v", err)
	}
}

func TestCycleBudgetEnforced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 100
	_, err := Run("ferret", cfg, testScale, 1)
	if err == nil || !strings.Contains(err.Error(), "cycle budget") {
		t.Errorf("expected budget error, got %v", err)
	}
}

func TestEmptyProgramRejected(t *testing.T) {
	if _, err := RunProgram(&workload.Program{Name: "empty"}, DefaultConfig(), randx.New(1)); err == nil {
		t.Error("empty program should error")
	}
}

func TestBadQueueAndBarrierSpecs(t *testing.T) {
	prog := &workload.Program{
		Name:    "bad",
		Threads: []workload.ThreadGen{opList{{Kind: workload.OpCompute, Cycles: 1, Instrs: 1}}.gen()},
		Queues:  []workload.QueueSpec{{ID: 0, Capacity: 0}},
	}
	if _, err := RunProgram(prog, DefaultConfig(), randx.New(1)); err == nil {
		t.Error("zero-capacity queue should error")
	}
	prog2 := &workload.Program{
		Name:     "bad2",
		Threads:  []workload.ThreadGen{opList{{Kind: workload.OpCompute, Cycles: 1, Instrs: 1}}.gen()},
		Barriers: []workload.BarrierSpec{{ID: 0, Participants: 5}},
	}
	if _, err := RunProgram(prog2, DefaultConfig(), randx.New(1)); err == nil {
		t.Error("barrier with more participants than threads should error")
	}
}

func TestLockMutualExclusionTiming(t *testing.T) {
	// Two threads each hold lock 0 around a long compute; the total
	// runtime must be at least the sum of both critical sections (they
	// cannot overlap).
	cs := uint64(10_000)
	mk := func() workload.ThreadGen {
		return opList{
			{Kind: workload.OpLock, ID: 0},
			{Kind: workload.OpCompute, Cycles: cs, Instrs: cs},
			{Kind: workload.OpUnlock, ID: 0},
		}.gen()
	}
	prog := &workload.Program{Name: "mutex", Threads: []workload.ThreadGen{mk(), mk()}}
	cfg := DefaultConfig()
	cfg.Thermal.Enabled = false // keep compute durations exact
	res, err := RunProgram(prog, cfg, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 2*cs {
		t.Errorf("runtime %d < 2×critical section %d: mutual exclusion violated", res.Cycles, 2*cs)
	}
}

func TestBarrierSynchronizesThreads(t *testing.T) {
	// One fast and one slow thread meet at a barrier, then both compute.
	// Total runtime ≥ slow prefix + post-barrier work.
	mk := func(prefix uint64) workload.ThreadGen {
		return opList{
			{Kind: workload.OpCompute, Cycles: prefix, Instrs: prefix},
			{Kind: workload.OpBarrier, ID: 0},
			{Kind: workload.OpCompute, Cycles: 5_000, Instrs: 5_000},
		}.gen()
	}
	prog := &workload.Program{
		Name:     "barrier",
		Threads:  []workload.ThreadGen{mk(1_000), mk(50_000)},
		Barriers: []workload.BarrierSpec{{ID: 0, Participants: 2}},
	}
	cfg := DefaultConfig()
	cfg.Thermal.Enabled = false
	res, err := RunProgram(prog, cfg, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 55_000 {
		t.Errorf("runtime %d < 55000: barrier did not hold the fast thread", res.Cycles)
	}
}

func TestMoreThreadsThanCoresCompletes(t *testing.T) {
	// ferret runs 9 threads on 4 cores; context switches must occur.
	res, err := Run("ferret", DefaultConfig(), testScale, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics[MetricCtxSwitches] == 0 {
		t.Error("oversubscribed run should context switch")
	}
}

func TestRunVariantChangesProgram(t *testing.T) {
	cfg := DefaultConfig()
	a, err := RunVariant("swaptions", cfg, testScale, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunVariant("swaptions", cfg, testScale, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Instructions == b.Instructions && a.Cycles == b.Cycles {
		t.Error("different program seeds should produce different executions")
	}
}

// opList is a tiny fixed-op ThreadGen for targeted machine tests.
type opList []workload.Op

func (l opList) gen() workload.ThreadGen { ops := append(opList(nil), l...); return &ops }

func (l *opList) Next() (workload.Op, bool) {
	if len(*l) == 0 {
		return workload.Op{}, false
	}
	op := (*l)[0]
	*l = (*l)[1:]
	return op, true
}

func TestThermalSprintCycle(t *testing.T) {
	tm := newThermalModel(DefaultConfig().Thermal, DefaultConfig().Thermal.Ambient)
	if tm.speed() != 1 {
		t.Error("initial speed should be 1")
	}
	// Cool chip enters sprint.
	tm.update(0)
	if !tm.sprinting || tm.speed() <= 1 {
		t.Error("cool chip should sprint")
	}
	// Sustained full activity must eventually trigger the alert.
	alerted := false
	for i := 0; i < 200 && !alerted; i++ {
		tm.update(1)
		alerted = tm.alertFired
	}
	if !alerted {
		t.Error("sustained activity never fired a thermal alert")
	}
	if tm.speed() >= 1 {
		t.Error("post-alert chip should be throttled")
	}
	// Idling cools the chip back into sprint eventually.
	reentered := false
	for i := 0; i < 500 && !reentered; i++ {
		tm.update(0)
		reentered = tm.enteredSprint
	}
	if !reentered {
		t.Error("idle chip never re-entered sprint")
	}
	if tm.sprintEntries < 2 || tm.alerts < 1 {
		t.Errorf("counters: %d entries, %d alerts", tm.sprintEntries, tm.alerts)
	}
}

func TestThermalDisabled(t *testing.T) {
	tm := newThermalModel(ThermalConfig{Enabled: false}, 0)
	for i := 0; i < 100; i++ {
		tm.update(1)
	}
	if tm.speed() != 1 || tm.alerts != 0 {
		t.Error("disabled thermal model should be inert")
	}
}

func TestResultMetricLookup(t *testing.T) {
	res, err := Run("blackscholes", DefaultConfig(), testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Metric(MetricIPC); !ok {
		t.Error("known metric missing")
	}
	if _, ok := res.Metric("bogus"); ok {
		t.Error("unknown metric should report !ok")
	}
	// Cross-metric consistency.
	if got := res.Metrics[MetricRuntime]; math.Abs(got-float64(res.Cycles)/2e9) > 1e-12 {
		t.Errorf("runtime %v inconsistent with cycles %d at 2GHz", got, res.Cycles)
	}
	wantIPC := float64(res.Instructions) / float64(res.Cycles)
	if math.Abs(res.Metrics[MetricIPC]-wantIPC) > 1e-12 {
		t.Error("ipc inconsistent with instruction/cycle counts")
	}
}

func TestMaxLoadLatencyIsInteger(t *testing.T) {
	// The paper's Sec. 6.4 leans on max load latency being integer-valued
	// (it provokes BCa failures); our model reports whole cycles.
	res, err := Run("canneal", DefaultConfig(), testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Metrics[MetricMaxLoadLat]
	if v != math.Trunc(v) || v <= 0 {
		t.Errorf("max load latency %v should be a positive integer", v)
	}
}

func ExampleRun() {
	res, err := Run("ferret", DefaultConfig(), 0.05, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Benchmark, res.Cycles > 0)
	// Output: ferret true
}

func TestDetailConsistentWithMetrics(t *testing.T) {
	res, err := Run("ferret", DefaultConfig(), testScale, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Detail
	if d.L1D.Hits+d.L1D.Misses == 0 {
		t.Error("no L1D activity recorded")
	}
	kInstr := float64(res.Instructions) / 1000
	if got := float64(d.L1D.Misses) / kInstr; math.Abs(got-res.Metrics[MetricL1DMPKI]) > 1e-9 {
		t.Errorf("detail L1D misses inconsistent with MPKI metric: %g vs %g", got, res.Metrics[MetricL1DMPKI])
	}
	if got := float64(d.L2.Misses) / kInstr; math.Abs(got-res.Metrics[MetricL2MPKI]) > 1e-9 {
		t.Errorf("detail L2 misses inconsistent with MPKI metric")
	}
	if float64(d.DRAM.Accesses) != res.Metrics[MetricMemAccesses] {
		t.Error("detail DRAM accesses inconsistent with metric")
	}
	if float64(d.CtxSwitch) != res.Metrics[MetricCtxSwitches] {
		t.Error("detail context switches inconsistent with metric")
	}
	if d.Directory.ReadMisses == 0 && d.Directory.WriteMisses == 0 {
		t.Error("directory recorded no traffic")
	}
	if d.Crossbar.Transfers == 0 {
		t.Error("crossbar recorded no transfers")
	}
	if d.Branch.Predictions == 0 || d.TLB.Lookups == 0 {
		t.Error("front-end structures recorded no activity")
	}
}

func TestStrayUnlockTolerated(t *testing.T) {
	// Unlocking a lock nobody holds is a workload bug the machine should
	// survive (real kernels tolerate it too).
	prog := &workload.Program{
		Name: "stray-unlock",
		Threads: []workload.ThreadGen{opList{
			{Kind: workload.OpUnlock, ID: 9},
			{Kind: workload.OpCompute, Cycles: 100, Instrs: 100},
		}.gen()},
	}
	res, err := RunProgram(prog, DefaultConfig(), randx.New(1))
	if err != nil {
		t.Fatalf("stray unlock should not fail the run: %v", err)
	}
	if res.Instructions == 0 {
		t.Error("run did not execute")
	}
}

func TestUndeclaredBarrierDefaultsToAllThreads(t *testing.T) {
	mk := func() workload.ThreadGen {
		return opList{
			{Kind: workload.OpBarrier, ID: 42}, // never declared in Program.Barriers
			{Kind: workload.OpCompute, Cycles: 10, Instrs: 10},
		}.gen()
	}
	prog := &workload.Program{Name: "implicit-barrier", Threads: []workload.ThreadGen{mk(), mk()}}
	if _, err := RunProgram(prog, DefaultConfig(), randx.New(1)); err != nil {
		t.Fatalf("undeclared barrier should default to all threads: %v", err)
	}
}

func TestUndeclaredQueueGetsUnitCapacity(t *testing.T) {
	producer := opList{{Kind: workload.OpProduce, ID: 7}}.gen()
	consumer := opList{{Kind: workload.OpConsume, ID: 7}}.gen()
	prog := &workload.Program{Name: "implicit-queue", Threads: []workload.ThreadGen{producer, consumer}}
	if _, err := RunProgram(prog, DefaultConfig(), randx.New(1)); err != nil {
		t.Fatalf("undeclared queue should default to capacity 1: %v", err)
	}
}

func TestSingleThreadOnManyCores(t *testing.T) {
	prog := &workload.Program{
		Name: "solo",
		Threads: []workload.ThreadGen{opList{
			{Kind: workload.OpCompute, Cycles: 5000, Instrs: 5000},
			{Kind: workload.OpLoad, Addr: 0x4000_0000},
			{Kind: workload.OpBranch, PC: 0x100, Taken: true},
		}.gen()},
	}
	cfg := DefaultConfig()
	cfg.Thermal.Enabled = false
	res, err := RunProgram(prog, cfg, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 5000 {
		t.Errorf("runtime %d below the compute burst", res.Cycles)
	}
	if res.Metrics[MetricCtxSwitches] != 1 { // only the initial dispatch
		t.Errorf("solo thread context switches = %v", res.Metrics[MetricCtxSwitches])
	}
}

func TestEmptyThreadStreamFinishesImmediately(t *testing.T) {
	prog := &workload.Program{
		Name:    "empty-thread",
		Threads: []workload.ThreadGen{opList{}.gen(), opList{{Kind: workload.OpCompute, Cycles: 10, Instrs: 1}}.gen()},
	}
	if _, err := RunProgram(prog, DefaultConfig(), randx.New(3)); err != nil {
		t.Fatalf("empty op stream should be fine: %v", err)
	}
}

func TestProducerConsumerThroughputBound(t *testing.T) {
	// A producer that makes items every 1000 cycles and a consumer that
	// eats them in 10: total runtime is bound by the producer, and the
	// queue never deadlocks despite capacity 1.
	const items = 20
	var prodOps, consOps opList
	for i := 0; i < items; i++ {
		prodOps = append(prodOps,
			workload.Op{Kind: workload.OpCompute, Cycles: 1000, Instrs: 1000},
			workload.Op{Kind: workload.OpProduce, ID: 0})
		consOps = append(consOps,
			workload.Op{Kind: workload.OpConsume, ID: 0},
			workload.Op{Kind: workload.OpCompute, Cycles: 10, Instrs: 10})
	}
	prog := &workload.Program{
		Name:    "pipeline-bound",
		Threads: []workload.ThreadGen{prodOps.gen(), consOps.gen()},
		Queues:  []workload.QueueSpec{{ID: 0, Capacity: 1}},
	}
	cfg := DefaultConfig()
	cfg.Thermal.Enabled = false
	res, err := RunProgram(prog, cfg, randx.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < items*1000 {
		t.Errorf("runtime %d below the producer bound %d", res.Cycles, items*1000)
	}
}

func TestTraceCoversRuntime(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run("bodytrack", cfg, testScale, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Trace duration must be within one sample interval of the runtime
	// (the tracer emits per full interval plus one trailing partial).
	want := float64(res.Cycles)
	got := res.Trace.Duration()
	if got < want-2*float64(cfg.SampleInterval) || got > want+2*float64(cfg.SampleInterval) {
		t.Errorf("trace duration %g vs runtime %g cycles", got, want)
	}
	if res.Trace.Step() != float64(cfg.SampleInterval) {
		t.Errorf("trace step %g, want %d", res.Trace.Step(), cfg.SampleInterval)
	}
}

func TestHardwareConfigValid(t *testing.T) {
	if err := HardwareLikeConfig().Validate(); err != nil {
		t.Fatalf("hardware config invalid: %v", err)
	}
}

func TestGshareConfigSelectsPredictor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BPKind = "gshare"
	res, err := Run("freqmine", cfg, testScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := DefaultConfig() // bimodal
	res2, err := Run("freqmine", cfg2, testScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detail.Branch.Predictions == 0 {
		t.Fatal("gshare recorded no predictions")
	}
	if res.Metrics[MetricBranchMPKI] == res2.Metrics[MetricBranchMPKI] {
		t.Error("different predictors should yield different mispredict rates")
	}
	bad := DefaultConfig()
	bad.BPKind = "oracle"
	if err := bad.Validate(); err == nil {
		t.Error("unknown predictor kind should be rejected")
	}
}

func TestASLRMattersOnlyUnderL2Pressure(t *testing.T) {
	// Page-aligned ASLR offsets cannot move L1 set indices (one page spans
	// the whole 64-set L1D) and only shift L2 conflict patterns, so they
	// perturb timing exactly when the L2 experiences conflicts. ferret's
	// footprint fits the default 3MB L2 (no effect); a 512kB L2 thrashes
	// (effect).
	distinct := func(l2 int) int {
		cfg := DefaultConfig()
		cfg.JitterMax = -1
		cfg.Thermal.InitSpread = 0
		cfg.L2Size = l2
		seen := map[uint64]bool{}
		for seed := uint64(0); seed < 4; seed++ {
			res, err := Run("ferret", cfg, 0.3, seed)
			if err != nil {
				t.Fatal(err)
			}
			seen[res.Cycles] = true
		}
		return len(seen)
	}
	if n := distinct(3 << 20); n != 1 {
		t.Errorf("ASLR under an unpressured L2 should be invisible, got %d distinct runtimes", n)
	}
	if n := distinct(512 << 10); n < 2 {
		t.Errorf("ASLR under a thrashing L2 should perturb runtimes, got %d distinct", n)
	}
}

func TestMSHRWindowSpeedsUpMemoryBoundCode(t *testing.T) {
	run := func(mshrs int) uint64 {
		cfg := DefaultConfig()
		cfg.MSHRs = mshrs
		res, err := Run("ferret", cfg, testScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	blocking := run(1)
	ooo := run(4)
	wide := run(8)
	if ooo >= blocking {
		t.Errorf("4 MSHRs (%d cycles) should beat blocking (%d)", ooo, blocking)
	}
	if wide > ooo {
		t.Errorf("8 MSHRs (%d cycles) should not lose to 4 (%d)", wide, ooo)
	}
}

func TestMSISlowerOnPrivateReadWrite(t *testing.T) {
	// swaptions is private-data dominated with a read/write mix: MSI's
	// upgrade tax on first writes must cost cycles relative to MESI.
	run := func(proto string) uint64 {
		cfg := DefaultConfig()
		cfg.CoherenceProtocol = proto
		res, err := Run("swaptions", cfg, testScale, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	mesi := run("mesi")
	msi := run("msi")
	if msi <= mesi {
		t.Errorf("MSI (%d cycles) should be slower than MESI (%d)", msi, mesi)
	}
	bad := DefaultConfig()
	bad.CoherenceProtocol = "moesi"
	if err := bad.Validate(); err == nil {
		t.Error("unknown protocol should be rejected")
	}
}

func TestReplacementPolicyConfig(t *testing.T) {
	results := map[string]uint64{}
	for _, pol := range []string{"lru", "fifo", "random"} {
		cfg := DefaultConfig()
		cfg.ReplacementPolicy = pol
		res, err := Run("canneal", cfg, testScale, 2)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		results[pol] = res.Cycles
	}
	if results["lru"] == results["fifo"] && results["lru"] == results["random"] {
		t.Error("replacement policies should produce different timings on a thrashing workload")
	}
	bad := DefaultConfig()
	bad.ReplacementPolicy = "plru"
	if err := bad.Validate(); err == nil {
		t.Error("unknown policy should be rejected")
	}
}

// Golden determinism tripwire: these exact cycle/instruction counts anchor
// the recorded EXPERIMENTS.md campaign. Any timing-model change — however
// small — must consciously update them (and regenerate experiments_full.txt
// with `go run ./cmd/experiments -all`), never drift silently.
func TestGoldenDeterminism(t *testing.T) {
	golden := []struct {
		bench        string
		seed         uint64
		cycles       uint64
		instructions uint64
	}{
		{"ferret", 1, 221397, 22402},
		{"ferret", 2, 221499, 22402},
		{"canneal", 1, 453128, 49746},
		{"canneal", 2, 459211, 49746},
		{"swaptions", 1, 70300, 149879},
		{"swaptions", 2, 69764, 149879},
		{"dedup", 1, 121147, 9652},
		{"dedup", 2, 121496, 9652},
	}
	for _, g := range golden {
		res, err := Run(g.bench, DefaultConfig(), 0.15, g.seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != g.cycles || res.Instructions != g.instructions {
			t.Errorf("%s seed %d: got %d cycles/%d instr, golden %d/%d — timing model changed; "+
				"update goldens and regenerate experiments_full.txt",
				g.bench, g.seed, res.Cycles, res.Instructions, g.cycles, g.instructions)
		}
	}
}

// Latency validation: with a blocking memory model (MSHRs=1), N loads to
// distinct cold blocks must cost roughly N × (DRAM latency + hierarchy
// overheads), and repeated loads to one block must cost L1-hit latency.
// This pins the timing model to its configured latencies.
func TestMemoryLatencyValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 1
	cfg.Thermal.Enabled = false
	cfg.JitterMax = -1
	cfg.ASLRPages = 0
	cfg.CtxSwitchKernelBlocks = 0

	// The thread's instruction fetch walks a 16 KB footprint (256 blocks),
	// so the first few hundred ops pay cold I-misses. Measuring the
	// *marginal* cost between a long and a short run isolates the data
	// path with a warm I-cache.
	const base, extra = 1024, 512
	mkOps := func(count int, stride uint64) opList {
		ops := opList{}
		for i := 0; i < count; i++ {
			ops = append(ops, workload.Op{Kind: workload.OpLoad, Addr: 0x4000_0000 + uint64(i)*stride})
		}
		return ops
	}

	run := func(ops opList) uint64 {
		prog := &workload.Program{Name: "latprobe", Threads: []workload.ThreadGen{ops.gen()}}
		res, err := RunProgram(prog, cfg, randx.New(1))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}

	marginal := func(stride uint64) float64 {
		long := run(mkOps(base+extra, stride))
		short := run(mkOps(base, stride))
		return float64(long-short) / extra
	}

	// Cold misses to distinct pages (every load also TLB-misses).
	// Expected per load: DRAM 90 + L2 16 + L1 2 + TLB walk 40 + crossbar
	// hops ≈ 150–180.
	cold := marginal(4096)
	if cold < 120 || cold > 220 {
		t.Errorf("cold-miss marginal latency %.1f cycles/load outside the plausible band", cold)
	}
	// Hot loop on one block: pure L1 hits at issue cost (~2-5 cycles).
	hot := marginal(0)
	if hot > 10 {
		t.Errorf("L1-hit marginal latency %.1f cycles/load too high", hot)
	}
	if cold < 10*hot {
		t.Errorf("cold (%.1f) vs hot (%.1f) latency ratio implausibly small", cold, hot)
	}
}

func TestPrefetcherCutsDemandL2Misses(t *testing.T) {
	// A single thread streaming sequentially through cold blocks: the
	// next-line prefetcher should convert roughly half the demand L2
	// misses into hits.
	mk := func() opList {
		ops := opList{}
		for i := 0; i < 600; i++ {
			ops = append(ops, workload.Op{Kind: workload.OpLoad, Addr: 0x4000_0000 + uint64(i)*64})
		}
		return ops
	}
	run := func(prefetch bool) *Result {
		cfg := DefaultConfig()
		cfg.PrefetchNextLine = prefetch
		cfg.JitterMax = -1
		cfg.Thermal.Enabled = false
		cfg.CtxSwitchKernelBlocks = 0
		prog := &workload.Program{Name: "stream", Threads: []workload.ThreadGen{mk().gen()}}
		res, err := RunProgram(prog, cfg, randx.New(1))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(false)
	on := run(true)
	if on.Metrics[MetricPrefetches] == 0 {
		t.Fatal("prefetcher issued nothing")
	}
	if off.Metrics[MetricPrefetches] != 0 {
		t.Fatal("prefetch metric nonzero with prefetcher off")
	}
	if on.Cycles >= off.Cycles {
		t.Errorf("prefetching a sequential stream should be faster: %d vs %d cycles", on.Cycles, off.Cycles)
	}
	// Goldens guard the default config: prefetch off must not perturb it.
	base, err := Run("ferret", DefaultConfig(), 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != 221397 {
		t.Errorf("default-config timing drifted: %d", base.Cycles)
	}
}
