package sim

import (
	"fmt"
	"sync"

	"repro/internal/randx"
	"repro/internal/workload"
)

// Runner is a reusable simulation arena: the machine built for the first
// run — caches, directory, interconnect, predictors, core contexts, event
// queue — is reset in place and reused for subsequent runs with the same
// Config, instead of being reallocated per run. A Runner is stateful and
// must not be used from multiple goroutines concurrently; callers that
// simulate in parallel hold one Runner per worker (population.Generate) or
// rely on the pool behind the package-level Run, which hands each goroutine
// its own arena.
//
// Reuse is byte-identical to cold construction: fresh and reused machines
// share the single initRun code path, so every run sees the same initial
// state and the same RNG substreams regardless of what ran before.
type Runner struct {
	m     machine
	built bool
}

// NewRunner returns an empty arena; the first Run populates it.
func NewRunner() *Runner { return &Runner{} }

// Run is sim.Run on this arena.
func (r *Runner) Run(profile string, cfg Config, scale float64, seed uint64) (*Result, error) {
	return r.RunVariant(profile, cfg, scale, defaultProgSeed, seed)
}

// RunVariant is sim.RunVariant on this arena.
func (r *Runner) RunVariant(profile string, cfg Config, scale float64, progSeed, seed uint64) (*Result, error) {
	p, err := workload.ByName(profile)
	if err != nil {
		return nil, err
	}
	prog := p.Build(scale, randx.New(progSeed))
	return r.RunProgram(prog, cfg, randx.New(seed))
}

// RunProgram is sim.RunProgram on this arena. A config change rebuilds the
// machine; otherwise the existing structures are reset and reused.
func (r *Runner) RunProgram(prog *workload.Program, cfg Config, rng *randx.Rand) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(prog.Threads) == 0 {
		return nil, fmt.Errorf("sim: program %q has no threads", prog.Name)
	}
	if !r.built || r.m.cfg != cfg {
		r.built = false
		if err := r.m.build(cfg); err != nil {
			return nil, err
		}
		r.built = true
	}
	if err := r.m.initRun(prog, rng); err != nil {
		return nil, err
	}
	if err := r.m.run(); err != nil {
		return nil, err
	}
	return r.m.result(), nil
}

// runnerPool recycles arenas across package-level Run/RunProgram calls, so
// every existing caller — core.Collect's samplers, dist.Worker's chunk
// goroutines, the Engine's evaluation pool — benefits from machine reuse
// without holding a Runner explicitly.
var runnerPool = sync.Pool{New: func() any { return NewRunner() }}

func pooledRun(f func(r *Runner) (*Result, error)) (*Result, error) {
	r := runnerPool.Get().(*Runner)
	res, err := f(r)
	runnerPool.Put(r)
	return res, err
}
