package mem

import (
	"testing"

	"repro/internal/randx"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{BaseLatency: 0}, randx.New(1)); err == nil {
		t.Error("zero latency should error")
	}
	if _, err := New(Config{BaseLatency: 90, JitterMax: -1}, randx.New(1)); err == nil {
		t.Error("negative jitter should error")
	}
	if _, err := New(Config{BaseLatency: 90}, nil); err == nil {
		t.Error("nil rng should error")
	}
}

func TestNoJitterDeterministicLatency(t *testing.T) {
	d, err := New(Config{BaseLatency: 90, Jitter: JitterNone}, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if done := d.Access(0x1000, 100); done != 190 {
		t.Errorf("done = %d, want 190", done)
	}
	if d.Stats().JitterCycles != 0 {
		t.Error("JitterNone should inject nothing")
	}
}

func TestUniformJitterWithinBounds(t *testing.T) {
	d, err := New(Config{BaseLatency: 90, Jitter: JitterUniform, JitterMax: 4, Channels: 64}, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		// Spread addresses across channels to avoid queueing.
		addr := uint64(i) * 64
		now := uint64(i) * 1000
		lat := d.Access(addr, now) - now
		if lat < 90 || lat > 94 {
			t.Fatalf("latency %d outside [90, 94]", lat)
		}
		seen[lat] = true
	}
	for want := uint64(90); want <= 94; want++ {
		if !seen[want] {
			t.Errorf("latency %d never observed in 2000 accesses", want)
		}
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []uint64 {
		d, _ := New(Config{BaseLatency: 90, Jitter: JitterUniform, JitterMax: 4}, randx.New(seed))
		out := make([]uint64, 50)
		for i := range out {
			out[i] = d.Access(uint64(i)*64, uint64(i)*1000)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at access %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different jitter sequences")
	}
}

func TestChannelContention(t *testing.T) {
	d, _ := New(Config{BaseLatency: 90, Jitter: JitterNone, Channels: 1, BurstCycles: 10}, randx.New(1))
	d1 := d.Access(0, 0)
	d2 := d.Access(64, 0) // same channel, must queue behind the burst
	if d1 != 90 {
		t.Errorf("first access done = %d", d1)
	}
	if d2 != 100 {
		t.Errorf("queued access done = %d, want 100", d2)
	}
	if d.Stats().StallCycles != 10 {
		t.Errorf("stall cycles = %d, want 10", d.Stats().StallCycles)
	}
}

func TestMaxAccessTimeTracked(t *testing.T) {
	d, _ := New(Config{BaseLatency: 90, Jitter: JitterUniform, JitterMax: 4, Channels: 1, BurstCycles: 50}, randx.New(3))
	d.Access(0, 0)
	d.Access(64, 0) // queues: end-to-end ≥ 140
	if d.Stats().MaxAccessTime < 140 {
		t.Errorf("MaxAccessTime = %d, want ≥ 140", d.Stats().MaxAccessTime)
	}
	if d.Stats().Accesses != 2 {
		t.Errorf("accesses = %d", d.Stats().Accesses)
	}
}

func TestChannelMappingByAddress(t *testing.T) {
	d, _ := New(Config{BaseLatency: 90, Jitter: JitterNone, Channels: 2, BurstCycles: 50}, randx.New(1))
	// Blocks 0 and 2 map to channel 0; block 1 maps to channel 1: the
	// middle access must not queue behind the first.
	d0 := d.Access(0*64, 0)
	d1 := d.Access(1*64, 0)
	d2 := d.Access(2*64, 0)
	if d0 != 90 || d1 != 90 {
		t.Errorf("independent channels should not queue: %d, %d", d0, d1)
	}
	if d2 != 140 {
		t.Errorf("same-channel access should queue: %d, want 140", d2)
	}
}

func TestDefaultsApplied(t *testing.T) {
	d, err := New(Config{BaseLatency: 90}, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.chanBusy) != 2 || d.cfg.BurstCycles != 4 {
		t.Errorf("defaults not applied: %d channels, burst %d", len(d.chanBusy), d.cfg.BurstCycles)
	}
}
