// Package mem models main memory (Table 2: 3 GB, 90-cycle access) and hosts
// the paper's variability injection point. Following Alameldeen & Wood [3]
// and the paper's Sec. 5.2, each access can receive a small uniform random
// extra latency (0–4 cycles by default), drawn from a seeded per-run stream:
// enough to perturb thread interleavings while keeping each run
// deterministic for its seed. Alternative injection sources (none, and
// Gaussian scheduler noise applied elsewhere) support the ablation study.
package mem

import (
	"fmt"

	"repro/internal/randx"
)

// JitterKind selects the variability injection mode for DRAM accesses.
type JitterKind int

const (
	// JitterUniform adds Uniform[0, Max] cycles per access — the paper's
	// configuration (0–4 cycles on each L2 miss).
	JitterUniform JitterKind = iota
	// JitterNone disables injection; a deterministic simulator then yields
	// identical runs for every seed (the ablation's degenerate case).
	JitterNone
)

// Config sizes the memory model.
type Config struct {
	// BaseLatency is the unloaded access latency in cycles (Table 2: 90).
	BaseLatency uint64
	// Jitter selects the injection mode.
	Jitter JitterKind
	// JitterMax is the inclusive upper bound of the uniform extra latency.
	JitterMax int
	// Channels is the number of independent channels; accesses serialize
	// per channel, modeling bandwidth contention. Zero selects 2.
	Channels int
	// BurstCycles is each access's occupancy of its channel. Zero selects 4.
	BurstCycles uint64
}

func (c Config) withDefaults() Config {
	if c.Channels <= 0 {
		c.Channels = 2
	}
	if c.BurstCycles == 0 {
		c.BurstCycles = 4
	}
	return c
}

// DRAM is the main-memory timing model.
type DRAM struct {
	cfg      Config
	rng      *randx.Rand
	chanBusy []uint64
	stats    Stats
}

// Stats counts memory traffic.
type Stats struct {
	Accesses      uint64
	StallCycles   uint64 // cycles spent queueing on busy channels
	JitterCycles  uint64 // total injected variability
	MaxAccessTime uint64 // worst end-to-end access latency observed
}

// New builds a DRAM model. The rng must be a dedicated stream for this
// component (split from the run seed) so injection is reproducible.
func New(cfg Config, rng *randx.Rand) (*DRAM, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseLatency == 0 {
		return nil, fmt.Errorf("mem: zero base latency")
	}
	if cfg.Jitter == JitterUniform && cfg.JitterMax < 0 {
		return nil, fmt.Errorf("mem: negative jitter bound %d", cfg.JitterMax)
	}
	if rng == nil {
		return nil, fmt.Errorf("mem: nil rng")
	}
	return &DRAM{cfg: cfg, rng: rng, chanBusy: make([]uint64, cfg.Channels)}, nil
}

// Reset clears channel occupancies and counters and installs a fresh rng
// stream, returning the model to its post-New state for the next run. The
// configuration is retained.
func (d *DRAM) Reset(rng *randx.Rand) {
	clear(d.chanBusy)
	d.rng = rng
	d.stats = Stats{}
}

// Access schedules a memory access to addr issued at cycle now and returns
// the completion cycle: queueing on the addr-mapped channel, the base
// latency, and the injected jitter.
func (d *DRAM) Access(addr uint64, now uint64) uint64 {
	ch := int((addr >> 6) % uint64(len(d.chanBusy)))
	start := now
	if d.chanBusy[ch] > start {
		start = d.chanBusy[ch]
	}
	d.stats.StallCycles += start - now
	lat := d.cfg.BaseLatency
	if d.cfg.Jitter == JitterUniform && d.cfg.JitterMax > 0 {
		j := uint64(d.rng.UniformInt(0, d.cfg.JitterMax))
		lat += j
		d.stats.JitterCycles += j
	}
	d.chanBusy[ch] = start + d.cfg.BurstCycles
	done := start + lat
	d.stats.Accesses++
	if total := done - now; total > d.stats.MaxAccessTime {
		d.stats.MaxAccessTime = total
	}
	return done
}

// Stats returns a copy of the counters.
func (d *DRAM) Stats() Stats { return d.stats }
