package manifest

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/popcache"
)

// popFiles are the campaign's population artifacts (the report is compared
// structurally instead: the cached run legitimately differs in Reused).
func popFiles() []string {
	return []string{"tiny-swaptions-default.json", "tiny-swaptions-l2half.json"}
}

func comparePopFiles(t *testing.T, label, got, want string) {
	t.Helper()
	for _, name := range popFiles() {
		g, err := os.ReadFile(filepath.Join(got, name))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		w, err := os.ReadFile(filepath.Join(want, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(g, w) {
			t.Errorf("%s: %s differs", label, name)
		}
	}
}

// TestRunnerPopCacheHitByteIdentical pins the cache's campaign-level
// contract: a campaign served entirely from the population cache writes
// population files byte-identical to one that simulated from scratch, and
// its analyses produce identical intervals.
func TestRunnerPopCacheHitByteIdentical(t *testing.T) {
	plainDir := t.TempDir()
	plain := &Runner{OutDir: plainDir}
	plainRep, err := plain.Run(tinyManifest())
	if err != nil {
		t.Fatal(err)
	}

	cache := popcache.New(t.TempDir(), 0)
	missDir := t.TempDir()
	miss := &Runner{OutDir: missDir, PopCache: cache}
	missRep, err := miss.Run(tinyManifest())
	if err != nil {
		t.Fatal(err)
	}
	comparePopFiles(t, "cache miss", missDir, plainDir)
	if len(missRep.Reused) != 0 {
		t.Fatalf("cold cache reported reuse: %v", missRep.Reused)
	}
	if s := cache.Stats(); s.Puts != 2 {
		t.Fatalf("cache stats after cold campaign: %+v", s)
	}

	// A second process over the same cache directory: no shared memory, no
	// simulation — every entry must come from disk, byte-identical.
	hitDir := t.TempDir()
	hit := &Runner{OutDir: hitDir, PopCache: popcache.New(cache.Dir(), 0)}
	hitRep, err := hit.Run(tinyManifest())
	if err != nil {
		t.Fatal(err)
	}
	comparePopFiles(t, "cache hit", hitDir, plainDir)
	if len(hitRep.Reused) != 2 {
		t.Fatalf("warm cache reused %v", hitRep.Reused)
	}
	if s := hit.PopCache.Stats(); s.DiskHits != 2 || s.Misses != 0 {
		t.Fatalf("cache stats after warm campaign: %+v", s)
	}
	if len(hitRep.Results) != len(plainRep.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(hitRep.Results), len(plainRep.Results))
	}
	for i, got := range hitRep.Results {
		if !reflect.DeepEqual(got, plainRep.Results[i]) {
			t.Errorf("analysis %d differs: cached %+v, plain %+v", i, got, plainRep.Results[i])
		}
	}
}

// TestRunnerPopCacheThroughDistWorkers drives the miss path through two
// real workers: the distributed campaign fills the cache, and a later local
// campaign served from it is byte-identical to a plain local campaign —
// the cache composes with distribution without perturbing determinism.
func TestRunnerPopCacheThroughDistWorkers(t *testing.T) {
	plainDir := runCampaignDir(t, nil)

	cache := popcache.New(t.TempDir(), 0)
	distDir := t.TempDir()
	distRunner := &Runner{OutDir: distDir, Workers: startDistWorkers(t, 2), PopCache: cache}
	if _, err := distRunner.Run(tinyManifest()); err != nil {
		t.Fatal(err)
	}
	comparePopFiles(t, "distributed miss", distDir, plainDir)

	hitDir := t.TempDir()
	// No Workers here: a hit needs no simulation capacity at all.
	hitRunner := &Runner{OutDir: hitDir, PopCache: popcache.New(cache.Dir(), 0)}
	rep, err := hitRunner.Run(tinyManifest())
	if err != nil {
		t.Fatal(err)
	}
	comparePopFiles(t, "hit after distributed fill", hitDir, plainDir)
	if len(rep.Reused) != 2 {
		t.Fatalf("expected both entries served from cache, got %v", rep.Reused)
	}
}
