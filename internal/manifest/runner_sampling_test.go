package manifest

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/popcache"
	"repro/internal/sim"
)

// samplingManifest is one adaptive analysis under the given design, on a
// fast benchmark at small scale.
func samplingManifest(design string) *Manifest {
	return &Manifest{
		Name:  "vr",
		Seed:  21,
		Scale: 0.05,
		Runs:  8,
		Entries: []Entry{
			{Benchmark: "swaptions"},
		},
		Analyses: []Analysis{
			{Metric: sim.MetricRuntime, F: 0.5, C: 0.9, TargetWidth: 0.02,
				MaxSamples: 1024, Sampling: design},
		},
	}
}

func TestRunnerSamplingDesigns(t *testing.T) {
	for _, design := range []string{"stratified", "rss"} {
		r := &Runner{OutDir: t.TempDir()}
		rep, err := r.Run(samplingManifest(design))
		if err != nil {
			t.Fatalf("%s: %v", design, err)
		}
		res := rep.Results[0]
		if res.Err != "" {
			t.Fatalf("%s: analysis failed: %s", design, res.Err)
		}
		if res.Sampling != design {
			t.Errorf("%s: result records sampling %q", design, res.Sampling)
		}
		if !res.Converged || res.Interval.Width() > 0.02 {
			t.Errorf("%s: did not converge to target: %+v", design, res)
		}
		if res.PilotRuns == 0 {
			t.Errorf("%s: no pilot runs recorded", design)
		}
		if res.Samples == 0 || len(res.Rounds) == 0 {
			t.Errorf("%s: missing samples/rounds: %+v", design, res)
		}
	}
}

// TestRunnerSamplingDefault: the runner-level design applies when the
// analysis doesn't choose, and the analysis-level choice wins when both
// are set.
func TestRunnerSamplingDefault(t *testing.T) {
	m := samplingManifest("")
	r := &Runner{OutDir: t.TempDir(), Sampling: "rss"}
	rep, err := r.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Results[0].Sampling; got != "rss" {
		t.Errorf("runner default not applied: sampling %q", got)
	}

	m = samplingManifest("stratified")
	r = &Runner{OutDir: t.TempDir(), Sampling: "rss"}
	rep, err = r.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Results[0].Sampling; got != "stratified" {
		t.Errorf("analysis-level design must win: sampling %q", got)
	}
}

func TestRunnerSamplingInvalidDefault(t *testing.T) {
	r := &Runner{OutDir: t.TempDir(), Sampling: "bogus"}
	rep, err := r.Run(samplingManifest(""))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Err == "" {
		t.Fatal("invalid runner-level design must surface as an analysis error")
	}
}

// TestRunnerSamplingDistMatchesLocal pins backend-independence of the
// design path: the same manifest collected through real workers yields
// the identical interval, sample count and per-round trajectory as the
// local path — seed selection depends on pilot values, never on where
// runs execute.
func TestRunnerSamplingDistMatchesLocal(t *testing.T) {
	for _, design := range []string{"stratified", "rss"} {
		local := &Runner{OutDir: t.TempDir()}
		lrep, err := local.Run(samplingManifest(design))
		if err != nil {
			t.Fatalf("%s local: %v", design, err)
		}
		remote := &Runner{OutDir: t.TempDir(), Workers: startDistWorkers(t, 2)}
		rrep, err := remote.Run(samplingManifest(design))
		if err != nil {
			t.Fatalf("%s dist: %v", design, err)
		}
		lres, rres := lrep.Results[0], rrep.Results[0]
		if lres.Interval != rres.Interval || lres.Samples != rres.Samples {
			t.Errorf("%s: dist result differs: local %+v, dist %+v", design, lres, rres)
		}
		if len(lres.Rounds) != len(rres.Rounds) {
			t.Fatalf("%s: round count differs: %d vs %d", design, len(lres.Rounds), len(rres.Rounds))
		}
		for i := range lres.Rounds {
			if lres.Rounds[i] != rres.Rounds[i] {
				t.Errorf("%s: round %d differs: %+v vs %+v", design, i, lres.Rounds[i], rres.Rounds[i])
			}
		}
	}
}

// TestRunnerSamplingPopCacheReuse: a second identical campaign with a
// shared population cache re-runs nothing — the cumulative measured
// population is served from the cache.
func TestRunnerSamplingPopCacheReuse(t *testing.T) {
	cache := popcache.New("", 0)
	reg := obs.NewRegistry()
	first := &Runner{OutDir: t.TempDir(), PopCache: cache, Obs: &obs.Observer{Metrics: reg}}
	frep, err := first.Run(samplingManifest("stratified"))
	if err != nil {
		t.Fatal(err)
	}
	warm := cache.Stats()
	if warm.Puts == 0 {
		t.Fatal("first campaign fed nothing to the cache")
	}

	second := &Runner{OutDir: t.TempDir(), PopCache: cache}
	srep, err := second.Run(samplingManifest("stratified"))
	if err != nil {
		t.Fatal(err)
	}
	if frep.Results[0].Interval != srep.Results[0].Interval {
		t.Errorf("cached campaign interval differs: %+v vs %+v",
			frep.Results[0].Interval, srep.Results[0].Interval)
	}
	if srep.Results[0].PilotRuns != 0 {
		t.Errorf("cached campaign ran %d pilot runs, want 0", srep.Results[0].PilotRuns)
	}
	after := cache.Stats()
	if after.MemHits <= warm.MemHits {
		t.Errorf("second campaign hit the cache %d times, first %d", after.MemHits, warm.MemHits)
	}
}
