package manifest

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dist"
)

// startDistWorkers boots n real workers on loopback ports for the
// duration of the test and returns their addresses.
func startDistWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		w := &dist.Worker{Parallelism: 2}
		if err := w.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	return addrs
}

// campaignFiles are every artifact a tiny campaign writes.
func campaignFiles() []string {
	return []string{"tiny-swaptions-default.json", "tiny-swaptions-l2half.json", "tiny-report.json"}
}

func runCampaignDir(t *testing.T, workers []string) string {
	t.Helper()
	dir := t.TempDir()
	r := &Runner{OutDir: dir, Workers: workers}
	if _, err := r.Run(tinyManifest()); err != nil {
		t.Fatal(err)
	}
	return dir
}

func compareCampaignDirs(t *testing.T, label, got, want string) {
	t.Helper()
	for _, name := range campaignFiles() {
		g, err := os.ReadFile(filepath.Join(got, name))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		w, err := os.ReadFile(filepath.Join(want, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(g, w) {
			t.Errorf("%s: %s differs from the local campaign", label, name)
		}
	}
}

// TestRunnerDistributedByteIdentical pins the subsystem's acceptance
// criterion: a campaign distributed across 1, 2, or 4 workers writes
// populations and a report byte-identical to the local run with the same
// manifest seed.
func TestRunnerDistributedByteIdentical(t *testing.T) {
	localDir := runCampaignDir(t, nil)
	for _, nw := range []int{1, 2, 4} {
		distDir := runCampaignDir(t, startDistWorkers(t, nw))
		compareCampaignDirs(t, map[int]string{1: "1 worker", 2: "2 workers", 4: "4 workers"}[nw], distDir, localDir)
	}
}

// TestRunnerDistributedWorkerKilledMidCampaign kills one of two workers
// shortly after the campaign starts; the survivor (with the coordinator's
// re-dispatch) must still produce byte-identical output.
func TestRunnerDistributedWorkerKilledMidCampaign(t *testing.T) {
	localDir := runCampaignDir(t, nil)

	victim := &dist.Worker{Parallelism: 1}
	if err := victim.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go victim.Serve()
	t.Cleanup(func() { victim.Close() })
	survivor := startDistWorkers(t, 1)

	go func() {
		time.Sleep(15 * time.Millisecond)
		victim.Close()
	}()
	dir := t.TempDir()
	r := &Runner{OutDir: dir, Workers: append([]string{victim.Addr()}, survivor...)}
	if _, err := r.Run(tinyManifest()); err != nil {
		t.Fatal(err)
	}
	compareCampaignDirs(t, "killed worker", dir, localDir)
}
