// Package manifest provides declarative experiment campaigns: a JSON
// manifest names the benchmark/variant populations to simulate and the SPA
// analyses to run on them, and the runner executes it with resume support
// (populations already on disk are loaded, not re-simulated). This is the
// reproducible-workflow layer the paper points to in Sec. 7 (gem5art) as
// the natural companion of SPA.
package manifest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Analysis is one SPA question asked of every population in the campaign.
type Analysis struct {
	// Metric is the simulator metric name (e.g. "runtime_s").
	Metric string `json:"metric"`
	// F is the population proportion; C the confidence.
	F float64 `json:"f"`
	C float64 `json:"c"`
	// Direction is "atmost" (default) or "atleast".
	Direction string `json:"direction,omitempty"`
	// TargetWidth, when positive, switches this analysis to adaptive
	// mode: instead of analyzing the entry's fixed population, the runner
	// re-collects samples (same seed range, so the campaign stays
	// replicable) round by round via core.AnalyzeToWidth until the SPA
	// interval is at most this wide, emitting one convergence-trace round
	// per refinement step.
	TargetWidth float64 `json:"target_width,omitempty"`
	// MaxSamples bounds an adaptive analysis's total executions
	// (0 = core's default budget of 4096).
	MaxSamples int `json:"max_samples,omitempty"`
	// GrowBatch is how many executions each refinement round adds
	// (0 = the (F, C) minimum again).
	GrowBatch int `json:"grow_batch,omitempty"`
	// Sampling selects a variance-reduction collection design for an
	// adaptive analysis: "plain" (the default), "stratified" or "rss".
	// Empty defers to the runner-level default. Designs spend a cheap
	// pilot pass to pick which seeds get full-scale runs, reaching the
	// target width in fewer executions (see internal/sampling).
	Sampling string `json:"sampling,omitempty"`
	// SamplingStrata is the stratum count (stratified) or set size
	// (rss); 0 = sampling.DefaultStrata.
	SamplingStrata int `json:"sampling_strata,omitempty"`
	// SamplingAllocation is the stratified allocation rule:
	// "proportional" (default) or "neyman".
	SamplingAllocation string `json:"sampling_allocation,omitempty"`
	// PilotScale is the workload scale of the pilot pass (0 = half the
	// campaign scale; smaller pilots are cheaper but rank worse, which
	// lowers the estimated fidelity and with it the design's savings).
	PilotScale float64 `json:"pilot_scale,omitempty"`
	// PilotRuns is the pilot block size fetched per pilot call
	// (0 = the sampling package default).
	PilotRuns int `json:"pilot_runs,omitempty"`
	// Fidelity fixes the estimator's ranking fidelity λ
	// (0 = estimated from the measured data each round).
	Fidelity float64 `json:"fidelity,omitempty"`
}

// Adaptive reports whether the analysis runs the width-refinement loop.
func (a Analysis) Adaptive() bool { return a.TargetWidth > 0 }

// validateSampling checks the variance-reduction knobs. A design only
// makes sense on an adaptive analysis — fixed analyses read an existing
// plain population, which no design produced.
func (a Analysis) validateSampling() error {
	d, err := sampling.ParseDesign(a.Sampling)
	if err != nil {
		return err
	}
	if _, err := sampling.ParseAllocation(a.SamplingAllocation); err != nil {
		return err
	}
	if a.PilotScale < 0 || a.PilotScale > 1 {
		return fmt.Errorf("manifest: pilot_scale %v outside [0, 1]", a.PilotScale)
	}
	if a.SamplingStrata < 0 || a.PilotRuns < 0 {
		return errors.New("manifest: negative sampling knob")
	}
	hasKnobs := a.SamplingStrata != 0 || a.SamplingAllocation != "" ||
		a.PilotScale != 0 || a.PilotRuns != 0 || a.Fidelity != 0
	if (d != sampling.Plain || hasKnobs) && !a.Adaptive() {
		return errors.New("manifest: sampling design requires an adaptive analysis (set target_width)")
	}
	if d == sampling.Plain && a.Sampling != "" && hasKnobs {
		return errors.New("manifest: sampling knobs set with the plain design")
	}
	if d != sampling.Plain {
		opts := sampling.Options{Design: d, Strata: a.SamplingStrata,
			PilotBlock: a.PilotRuns, Fidelity: a.Fidelity}
		opts.Allocation, _ = sampling.ParseAllocation(a.SamplingAllocation)
		if err := opts.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Params converts the analysis to SPA parameters.
func (a Analysis) Params() (core.Params, error) {
	p := core.Params{F: a.F, C: a.C}
	switch a.Direction {
	case "", "atmost":
		p.Direction = core.AtMost
	case "atleast":
		p.Direction = core.AtLeast
	default:
		return core.Params{}, fmt.Errorf("manifest: unknown direction %q", a.Direction)
	}
	return p, nil
}

// Entry is one population to simulate.
type Entry struct {
	Benchmark string `json:"benchmark"`
	// Variant is "default", "hardware", "l2half" or "l2double".
	Variant string `json:"variant,omitempty"`
	// Runs overrides the manifest-level run count when positive.
	Runs int `json:"runs,omitempty"`
}

// Config resolves the entry's simulator configuration.
func (e Entry) Config() (sim.Config, error) {
	switch e.Variant {
	case "", "default":
		return sim.DefaultConfig(), nil
	case "hardware":
		return sim.HardwareLikeConfig(), nil
	case "l2half":
		cfg := sim.DefaultConfig()
		cfg.L2Size = 512 * 1024
		return cfg, nil
	case "l2double":
		cfg := sim.DefaultConfig()
		cfg.L2Size = 1024 * 1024
		return cfg, nil
	default:
		return sim.Config{}, fmt.Errorf("manifest: unknown variant %q", e.Variant)
	}
}

// Key identifies the entry — "<benchmark>-<variant>" — naming its
// population file and its row in campaign-service progress reports.
func (e Entry) Key() string { return e.key() }

// key identifies the entry's population file.
func (e Entry) key() string {
	v := e.Variant
	if v == "" {
		v = "default"
	}
	return fmt.Sprintf("%s-%s", e.Benchmark, v)
}

// Manifest is a declarative campaign.
type Manifest struct {
	Name string `json:"name"`
	// Seed roots every population campaign (per-entry offsets applied).
	Seed uint64 `json:"seed"`
	// Scale is the workload scale (0 means 1.0).
	Scale float64 `json:"scale,omitempty"`
	// Runs is the default population size (0 means 100).
	Runs     int        `json:"runs,omitempty"`
	Entries  []Entry    `json:"entries"`
	Analyses []Analysis `json:"analyses"`
}

// Load parses a manifest and validates it.
func Load(r io.Reader) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("manifest: decoding: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Save writes the manifest as indented JSON.
func (m *Manifest) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Validate checks the manifest for structural problems before any
// simulation starts, so a typo fails fast rather than hours in.
func (m *Manifest) Validate() error {
	if m.Name == "" {
		return errors.New("manifest: empty name")
	}
	if len(m.Entries) == 0 {
		return errors.New("manifest: no entries")
	}
	if len(m.Analyses) == 0 {
		return errors.New("manifest: no analyses")
	}
	if m.Scale < 0 {
		return errors.New("manifest: negative scale")
	}
	if m.Runs < 0 {
		return errors.New("manifest: negative runs")
	}
	seen := map[string]bool{}
	for i, e := range m.Entries {
		if _, err := workload.ByName(e.Benchmark); err != nil {
			return fmt.Errorf("manifest: entry %d: %w", i, err)
		}
		if _, err := e.Config(); err != nil {
			return fmt.Errorf("manifest: entry %d: %w", i, err)
		}
		if e.Runs < 0 {
			return fmt.Errorf("manifest: entry %d: negative runs", i)
		}
		if seen[e.key()] {
			return fmt.Errorf("manifest: duplicate entry %s", e.key())
		}
		seen[e.key()] = true
	}
	for i, a := range m.Analyses {
		p, err := a.Params()
		if err != nil {
			return fmt.Errorf("manifest: analysis %d: %w", i, err)
		}
		if _, err := core.CIMinSamples(p); err != nil {
			return fmt.Errorf("manifest: analysis %d: %w", i, err)
		}
		if a.Metric == "" {
			return fmt.Errorf("manifest: analysis %d: empty metric", i)
		}
		if a.TargetWidth < 0 {
			return fmt.Errorf("manifest: analysis %d: negative target width", i)
		}
		if a.MaxSamples < 0 || a.GrowBatch < 0 {
			return fmt.Errorf("manifest: analysis %d: negative sample bound", i)
		}
		if a.Adaptive() && a.MaxSamples > 0 {
			if minN, err := core.CIMinSamples(p); err == nil && a.MaxSamples < minN {
				return fmt.Errorf("manifest: analysis %d: max_samples %d below the (F,C) minimum %d", i, a.MaxSamples, minN)
			}
		}
		if err := a.validateSampling(); err != nil {
			return fmt.Errorf("manifest: analysis %d: %w", i, err)
		}
	}
	return nil
}

// Template returns a ready-to-edit example manifest.
func Template() *Manifest {
	return &Manifest{
		Name:  "example",
		Seed:  1,
		Scale: 0.5,
		Runs:  100,
		Entries: []Entry{
			{Benchmark: "ferret"},
			{Benchmark: "ferret", Variant: "l2double"},
			{Benchmark: "canneal"},
		},
		Analyses: []Analysis{
			{Metric: sim.MetricRuntime, F: 0.5, C: 0.9},
			{Metric: sim.MetricRuntime, F: 0.9, C: 0.9},
			{Metric: sim.MetricL1DMPKI, F: 0.9, C: 0.95},
		},
	}
}
