package manifest

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

// tinyManifest is fast enough for unit tests.
func tinyManifest() *Manifest {
	return &Manifest{
		Name:  "tiny",
		Seed:  7,
		Scale: 0.05,
		Runs:  32,
		Entries: []Entry{
			{Benchmark: "swaptions"},
			{Benchmark: "swaptions", Variant: "l2half", Runs: 30},
		},
		Analyses: []Analysis{
			{Metric: sim.MetricRuntime, F: 0.5, C: 0.9},
			{Metric: sim.MetricIPC, F: 0.9, C: 0.9, Direction: "atleast"},
			{Metric: "no_such_metric", F: 0.5, C: 0.9},
		},
	}
}

func TestRunnerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var log bytes.Buffer
	r := &Runner{OutDir: dir, Log: &log}
	rep, err := r.Run(tinyManifest())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 6 { // 2 entries × 3 analyses
		t.Fatalf("got %d results", len(rep.Results))
	}
	okCount, errCount := 0, 0
	for _, res := range rep.Results {
		if res.Err != "" {
			errCount++
			continue
		}
		okCount++
		if !res.Interval.IsValid() {
			t.Errorf("invalid interval in %+v", res)
		}
		if res.Samples == 0 {
			t.Error("missing sample count")
		}
	}
	if okCount != 4 || errCount != 2 {
		t.Errorf("ok=%d err=%d, want 4/2 (the bogus metric fails per entry)", okCount, errCount)
	}
	// Population files and the report exist.
	for _, name := range []string{"tiny-swaptions-default.json", "tiny-swaptions-l2half.json", "tiny-report.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing output %s: %v", name, err)
		}
	}
	// The report file parses back.
	f, err := os.Open(filepath.Join(dir, "tiny-report.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var back Report
	if err := json.NewDecoder(f).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "tiny" || len(back.Results) != 6 {
		t.Errorf("report round trip wrong: %+v", back)
	}
}

func TestRunnerResume(t *testing.T) {
	dir := t.TempDir()
	r := &Runner{OutDir: dir}
	m := tinyManifest()
	if _, err := r.Run(m); err != nil {
		t.Fatal(err)
	}
	// Second run must reuse both populations.
	rep, err := r.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reused) != 2 {
		t.Errorf("resume reused %d populations, want 2", len(rep.Reused))
	}
}

func TestRunnerResumeCorruptFile(t *testing.T) {
	dir := t.TempDir()
	m := tinyManifest()
	m.Entries = m.Entries[:1]
	bad := filepath.Join(dir, "tiny-swaptions-default.json")
	if err := os.WriteFile(bad, []byte("{corrupt"), 0o600); err != nil {
		t.Fatal(err)
	}
	r := &Runner{OutDir: dir}
	if _, err := r.Run(m); err == nil {
		t.Error("corrupt population file should fail loudly, not silently regenerate")
	}
}

func TestRunnerValidationAndSetupErrors(t *testing.T) {
	r := &Runner{OutDir: t.TempDir()}
	bad := tinyManifest()
	bad.Name = ""
	if _, err := r.Run(bad); err == nil {
		t.Error("invalid manifest should error")
	}
	r2 := &Runner{}
	if _, err := r2.Run(tinyManifest()); err == nil {
		t.Error("missing out dir should error")
	}
}

func TestReportRender(t *testing.T) {
	rep := &Report{
		Name: "demo",
		Results: []AnalysisResult{
			{Entry: "a-default", Metric: "m", F: 0.5, C: 0.9, Direction: "atmost", Samples: 10},
			{Entry: "a-default", Metric: "x", F: 0.5, C: 0.9, Direction: "atmost", Err: "boom"},
		},
		Reused: []string{"a-default"},
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, frag := range []string{"campaign demo", "1 populations reused", "error: boom"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}
