package manifest

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// tinyManifest is fast enough for unit tests.
func tinyManifest() *Manifest {
	return &Manifest{
		Name:  "tiny",
		Seed:  7,
		Scale: 0.05,
		Runs:  32,
		Entries: []Entry{
			{Benchmark: "swaptions"},
			{Benchmark: "swaptions", Variant: "l2half", Runs: 30},
		},
		Analyses: []Analysis{
			{Metric: sim.MetricRuntime, F: 0.5, C: 0.9},
			{Metric: sim.MetricIPC, F: 0.9, C: 0.9, Direction: "atleast"},
			{Metric: "no_such_metric", F: 0.5, C: 0.9},
		},
	}
}

func TestRunnerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var log bytes.Buffer
	r := &Runner{OutDir: dir, Obs: &obs.Observer{Progress: obs.NewProgress(&log, "runs", 0)}}
	rep, err := r.Run(tinyManifest())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 6 { // 2 entries × 3 analyses
		t.Fatalf("got %d results", len(rep.Results))
	}
	okCount, errCount := 0, 0
	for _, res := range rep.Results {
		if res.Err != "" {
			errCount++
			continue
		}
		okCount++
		if !res.Interval.IsValid() {
			t.Errorf("invalid interval in %+v", res)
		}
		if res.Samples == 0 {
			t.Error("missing sample count")
		}
	}
	if okCount != 4 || errCount != 2 {
		t.Errorf("ok=%d err=%d, want 4/2 (the bogus metric fails per entry)", okCount, errCount)
	}
	// Population files and the report exist.
	for _, name := range []string{"tiny-swaptions-default.json", "tiny-swaptions-l2half.json", "tiny-report.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing output %s: %v", name, err)
		}
	}
	// The report file parses back.
	f, err := os.Open(filepath.Join(dir, "tiny-report.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var back Report
	if err := json.NewDecoder(f).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "tiny" || len(back.Results) != 6 {
		t.Errorf("report round trip wrong: %+v", back)
	}
}

// TestRunnerTelemetry is the observability acceptance check: with tracing
// and metrics enabled, a campaign emits one "sim.run" span per simulation
// and the runs-completed counter equals the manifest's total run count —
// and the populations are bit-identical to an unobserved campaign.
func TestRunnerTelemetry(t *testing.T) {
	m := tinyManifest()
	wantRuns := 0
	for _, e := range m.Entries {
		runs := e.Runs
		if runs <= 0 {
			runs = m.Runs
		}
		wantRuns += runs
	}

	var trace, progress bytes.Buffer
	o := &obs.Observer{
		Tracer:   obs.NewTracer(&trace),
		Metrics:  obs.NewRegistry(),
		Progress: obs.NewProgress(&progress, "runs", 0),
	}
	dir := t.TempDir()
	r := &Runner{OutDir: dir, Obs: o}
	rep, err := r.Run(m)
	if err != nil {
		t.Fatal(err)
	}

	if got := o.Metrics.Counter(obs.MetricRunsCompleted).Value(); got != int64(wantRuns) {
		t.Errorf("runs_completed %d, want %d", got, wantRuns)
	}
	if got := o.Metrics.Counter(obs.MetricRunsFailed).Value(); got != 0 {
		t.Errorf("runs_failed %d, want 0", got)
	}
	if got := strings.Count(trace.String(), `"name":"sim.run"`); got != wantRuns {
		t.Errorf("trace has %d sim.run spans, want %d", got, wantRuns)
	}
	if got := strings.Count(trace.String(), `"name":"campaign.analysis"`); got != len(rep.Results) {
		t.Errorf("trace has %d analysis spans, want %d", got, len(rep.Results))
	}
	if done, total := o.Progress.Counts(); done != int64(wantRuns) || total != int64(wantRuns) {
		t.Errorf("progress %d/%d, want %d/%d", done, total, wantRuns, wantRuns)
	}
	// CI metrics: 4 analyses succeed, 2 fail (bogus metric per entry).
	if ok, bad := o.Metrics.Counter(obs.MetricCIBuilt).Value(), o.Metrics.Counter(obs.MetricCIFailed).Value(); ok != 4 || bad != 2 {
		t.Errorf("ci built/failed %d/%d, want 4/2", ok, bad)
	}

	// Determinism: an unobserved campaign yields bit-identical populations.
	plainDir := t.TempDir()
	plain := &Runner{OutDir: plainDir}
	if _, err := plain.Run(m); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tiny-swaptions-default.json", "tiny-swaptions-l2half.json"} {
		a, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(plainDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("telemetry perturbed population %s", name)
		}
	}
}

func TestRunnerResume(t *testing.T) {
	dir := t.TempDir()
	r := &Runner{OutDir: dir}
	m := tinyManifest()
	if _, err := r.Run(m); err != nil {
		t.Fatal(err)
	}
	// Second run must reuse both populations.
	rep, err := r.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reused) != 2 {
		t.Errorf("resume reused %d populations, want 2", len(rep.Reused))
	}
}

func TestRunnerResumeCorruptFile(t *testing.T) {
	dir := t.TempDir()
	m := tinyManifest()
	m.Entries = m.Entries[:1]
	bad := filepath.Join(dir, "tiny-swaptions-default.json")
	if err := os.WriteFile(bad, []byte("{corrupt"), 0o600); err != nil {
		t.Fatal(err)
	}
	r := &Runner{OutDir: dir}
	_, err := r.Run(m)
	if err == nil {
		t.Fatal("corrupt population file should fail loudly, not silently regenerate")
	}
	if !strings.Contains(err.Error(), "resuming from") || !strings.Contains(err.Error(), bad) {
		t.Errorf("error should say it was resuming and name the file: %v", err)
	}
}

// TestRunnerResumeTruncatedFile covers the partial-write shape of
// corruption (a crash mid-write under non-atomic saving): a valid JSON
// prefix cut off mid-stream must also fail the resume loudly.
func TestRunnerResumeTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	m := tinyManifest()
	m.Entries = m.Entries[:1]
	r := &Runner{OutDir: dir}
	if _, err := r.Run(m); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "tiny-swaptions-default.json")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)/2], 0o600); err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(m)
	if err == nil {
		t.Fatal("truncated population file should fail the resume")
	}
	if !strings.Contains(err.Error(), "resuming from") {
		t.Errorf("error should mention resuming: %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("ok"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "ok" {
		t.Fatalf("atomic write produced %q, %v", got, err)
	}

	// A failed write must leave neither the target nor temp litter behind.
	failPath := filepath.Join(dir, "fail.json")
	boom := errors.New("disk full")
	if err := WriteFileAtomic(failPath, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("want the write error back, got %v", err)
	}
	if _, err := os.Stat(failPath); !errors.Is(err, os.ErrNotExist) {
		t.Error("failed write left the target file behind")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "out.json" {
			t.Errorf("leftover file %s after failed atomic write", e.Name())
		}
	}
}

func TestRunnerValidationAndSetupErrors(t *testing.T) {
	r := &Runner{OutDir: t.TempDir()}
	bad := tinyManifest()
	bad.Name = ""
	if _, err := r.Run(bad); err == nil {
		t.Error("invalid manifest should error")
	}
	r2 := &Runner{}
	if _, err := r2.Run(tinyManifest()); err == nil {
		t.Error("missing out dir should error")
	}
}

func TestReportRender(t *testing.T) {
	rep := &Report{
		Name: "demo",
		Results: []AnalysisResult{
			{Entry: "a-default", Metric: "m", F: 0.5, C: 0.9, Direction: "atmost", Samples: 10},
			{Entry: "a-default", Metric: "x", F: 0.5, C: 0.9, Direction: "atmost", Err: "boom"},
		},
		Reused: []string{"a-default"},
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, frag := range []string{"campaign demo", "1 populations reused", "error: boom"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}
