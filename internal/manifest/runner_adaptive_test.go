package manifest

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// adaptiveManifest pairs one converging and one budget-bound adaptive
// analysis on a single fast entry.
func adaptiveManifest() *Manifest {
	return &Manifest{
		Name:  "adapt",
		Seed:  11,
		Scale: 0.05,
		Runs:  16,
		Entries: []Entry{
			{Benchmark: "swaptions"},
		},
		Analyses: []Analysis{
			// A target so loose the first round satisfies it.
			{Metric: sim.MetricRuntime, F: 0.5, C: 0.9, TargetWidth: 1e6, MaxSamples: 64},
			// A target so tight the budget runs out first, forcing several
			// refinement rounds.
			{Metric: sim.MetricRuntime, F: 0.5, C: 0.9, TargetWidth: 1e-12, MaxSamples: 40, GrowBatch: 8},
		},
	}
}

func runAdaptive(t *testing.T, workers []string) (string, *Report, *obs.Registry) {
	t.Helper()
	dir := t.TempDir()
	reg := obs.NewRegistry()
	r := &Runner{OutDir: dir, Workers: workers, Obs: &obs.Observer{Metrics: reg}}
	rep, err := r.Run(adaptiveManifest())
	if err != nil {
		t.Fatal(err)
	}
	return dir, rep, reg
}

func TestRunnerAdaptiveAnalyses(t *testing.T) {
	dir, rep, reg := runAdaptive(t, nil)
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results", len(rep.Results))
	}

	loose, tight := rep.Results[0], rep.Results[1]
	if !loose.Converged || len(loose.Rounds) != 1 {
		t.Errorf("loose target should converge in one round: %+v", loose)
	}
	if tight.Converged {
		t.Errorf("tight target cannot converge within 40 samples: %+v", tight)
	}
	if tight.Err != "" {
		t.Errorf("budget exhaustion must keep the interval usable, got error %q", tight.Err)
	}
	if !tight.Interval.IsValid() || tight.Samples != 40 {
		t.Errorf("budget-bound result wrong: %+v", tight)
	}
	if len(tight.Rounds) < 2 {
		t.Fatalf("tight target took %d rounds, want several", len(tight.Rounds))
	}
	prev := 0
	for i, rd := range tight.Rounds {
		if rd.Round != i+1 || rd.Samples <= prev || rd.Width <= 0 || rd.Target != 1e-12 {
			t.Errorf("round %d malformed: %+v", i, rd)
		}
		prev = rd.Samples
	}
	if last := tight.Rounds[len(tight.Rounds)-1]; last.Samples != tight.Samples {
		t.Errorf("last round samples %d != result samples %d", last.Samples, tight.Samples)
	}

	// The convergence gauges hold the final round's state.
	l := obs.Labels{"entry": "swaptions-default", "metric": sim.MetricRuntime, "method": "SPA"}
	if got := reg.GaugeL(obs.MetricCIConvergenceRuns, l).Value(); got != 40 {
		t.Errorf("convergence runs gauge = %v, want 40", got)
	}
	if got := reg.GaugeL(obs.MetricCIConvergenceTarget, l).Value(); got != 1e-12 {
		t.Errorf("convergence target gauge = %v", got)
	}

	// The journal has one line per round, round-trippable back into the
	// same records the report holds.
	f, err := os.Open(filepath.Join(dir, "adapt-telemetry.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var journal []ConvergenceRound
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec ConvergenceRound
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("journal line not JSON: %v: %s", err, sc.Text())
		}
		journal = append(journal, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := append(append([]ConvergenceRound(nil), loose.Rounds...), tight.Rounds...)
	if !reflect.DeepEqual(journal, want) {
		t.Errorf("journal does not match report rounds:\n%+v\nvs\n%+v", journal, want)
	}
}

// TestRunnerAdaptiveDeterministic re-runs the adaptive campaign and
// requires the full trajectory — samples, widths, round counts — to be
// identical: telemetry observes the run, it never steers the samples.
func TestRunnerAdaptiveDeterministic(t *testing.T) {
	_, rep1, _ := runAdaptive(t, nil)
	_, rep2, _ := runAdaptive(t, nil)
	if !reflect.DeepEqual(rep1.Results, rep2.Results) {
		t.Errorf("adaptive campaigns diverge:\n%+v\nvs\n%+v", rep1.Results, rep2.Results)
	}
}

// TestRunnerAdaptiveThroughWorkers runs the same adaptive campaign over
// real workers and requires the identical trajectory: the collector seam
// guarantees remote refinement rounds see the same samples.
func TestRunnerAdaptiveThroughWorkers(t *testing.T) {
	_, local, _ := runAdaptive(t, nil)
	_, distrep, _ := runAdaptive(t, startDistWorkers(t, 2))
	if !reflect.DeepEqual(local.Results, distrep.Results) {
		t.Errorf("distributed adaptive trajectory diverges:\n%+v\nvs\n%+v", local.Results, distrep.Results)
	}
}
