package manifest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/popcache"
	"repro/internal/population"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/stats"
)

// AnalysisResult is one (entry, analysis) outcome.
type AnalysisResult struct {
	Entry     string         `json:"entry"`
	Metric    string         `json:"metric"`
	F         float64        `json:"f"`
	C         float64        `json:"c"`
	Direction string         `json:"direction"`
	Samples   int            `json:"samples"`
	Interval  stats.Interval `json:"interval"`
	// Sampling names the variance-reduction design an adaptive analysis
	// collected under ("stratified", "rss"); empty for plain collection.
	Sampling string `json:"sampling,omitempty"`
	// PilotRuns counts the pilot (proxy) executions the design spent on
	// top of Samples full-scale runs; zero for plain collection.
	PilotRuns int `json:"pilot_runs,omitempty"`
	// TargetWidth/Converged/Rounds describe an adaptive analysis: the
	// width it refined toward, whether it got there before the sample
	// budget ran out, and the per-round convergence trajectory. Empty for
	// fixed-population analyses.
	TargetWidth float64            `json:"target_width,omitempty"`
	Converged   bool               `json:"converged,omitempty"`
	Rounds      []ConvergenceRound `json:"rounds,omitempty"`
	// Err carries a per-analysis failure (e.g. metric missing) without
	// aborting the rest of the campaign.
	Err string `json:"error,omitempty"`
}

// ConvergenceRound is one refinement step of an adaptive analysis: after
// Samples executions the SPA interval was Width wide against Target.
// The same records, tagged with their entry and metric, make up the
// campaign's telemetry journal.
type ConvergenceRound struct {
	Entry   string  `json:"entry,omitempty"`
	Metric  string  `json:"metric,omitempty"`
	Round   int     `json:"round"`
	Samples int     `json:"samples"`
	Width   float64 `json:"width"`
	Target  float64 `json:"target"`
}

// Report is the campaign outcome.
type Report struct {
	Name    string           `json:"name"`
	Results []AnalysisResult `json:"results"`
	// Reused lists entries whose populations were loaded from disk rather
	// than re-simulated (the resume path).
	Reused []string `json:"reused,omitempty"`
}

// Hooks are optional campaign-progress callbacks, fired synchronously
// from the runner's goroutine. The campaign service journals per-entry
// progress and live convergence rounds through them; they observe only
// and must not mutate the manifest or the report.
type Hooks struct {
	// OnEntryStart fires before an entry's population is loaded or
	// simulated.
	OnEntryStart func(idx int, key string)
	// OnEntryDone fires after an entry's population is ready (or failed);
	// reused marks the resume/cache path.
	OnEntryDone func(idx int, key string, reused bool, err error)
	// OnAnalysisDone fires after each per-entry analysis completes.
	OnAnalysisDone func(res AnalysisResult)
	// OnConvergenceRound fires once per adaptive refinement round, as it
	// happens — the live view of what the telemetry journal records at
	// the end.
	OnConvergenceRound func(rec ConvergenceRound)
}

// Runner executes manifests.
type Runner struct {
	// OutDir receives per-entry population JSONs and the report; it is
	// created if missing.
	OutDir string
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Obs receives campaign telemetry: progress lines and per-run ticks
	// through its Progress, per-run/per-analysis spans through its
	// Tracer, and counters/histograms through its Metrics. Nil (or any
	// nil field) disables that backend. It replaces the old ad-hoc Log
	// writer; for plain progress lines use obs.NewProgress on a writer.
	Obs *obs.Observer
	// Workers are spaworker addresses (host:port). When non-empty,
	// populations are simulated across them via internal/dist; the
	// results are byte-identical to a local campaign with the same
	// manifest seed (unreachable workers degrade to local execution).
	Workers []string
	// Dial optionally replaces the coordinator's TCP dialer when Workers
	// is non-empty — the fault-injection seam (internal/faultx) behind
	// the CLIs' -chaos-seed flag. Nil uses the real network.
	Dial dist.DialFunc
	// ChunkTarget enables throughput-adaptive chunk sizing on the lazily
	// created coordinator: chunks sent to v3 workers are sized so each
	// takes roughly this long at the worker's observed run rate. Zero
	// keeps fixed-size chunks. Ignored when Coord is injected.
	ChunkTarget time.Duration
	// PopCache, when non-nil, is consulted before simulating an entry and
	// fed after. It is content-addressed by the full generation recipe, so
	// a hit is byte-identical to re-simulating; unlike the per-campaign
	// OutDir resume files it is shared across campaigns and manifests.
	// Variance-reduction designs also route their pilot populations and
	// cumulative measured populations through it, which is what makes a
	// repeated design campaign nearly free.
	PopCache *popcache.Cache
	// Sampling is the default variance-reduction design for adaptive
	// analyses that don't set their own ("", "plain", "stratified" or
	// "rss") — the CLIs' -sampling flag and the campaign service's
	// config land here. Analysis-level settings win.
	Sampling string
	// Coord, when non-nil, replaces the runner's own lazily-created
	// coordinator — the campaign service shares one coordinator (and with
	// it the worker fleet, its telemetry, and the local parallelism
	// bound) across every tenant's campaigns. When set, all population
	// generation routes through it, so cancellation applies at chunk
	// granularity even with no workers configured.
	Coord *dist.Coordinator
	// Hooks receive per-entry and per-analysis progress callbacks.
	Hooks Hooks
	// StableReport omits resume bookkeeping (the Reused list) from the
	// report, making the report bytes a pure function of the manifest —
	// identical whether the campaign ran straight through or was killed
	// and resumed. The campaign service sets it; the CLI keeps the
	// human-facing reuse note.
	StableReport bool

	// coord is the shared dist coordinator behind both worker-backed
	// population generation and adaptive collection; sharing one instance
	// is what lets per-worker telemetry and /statusz chunk accounting
	// accumulate across the whole campaign.
	coordMu sync.Mutex
	coord   *dist.Coordinator
}

// Coordinator returns the runner's shared coordinator, creating it on
// first call — CLIs install it as their /statusz source before Run. With
// no Workers configured it degrades to a purely local runner, so it is
// never nil.
func (r *Runner) Coordinator() *dist.Coordinator {
	if r.Coord != nil {
		return r.Coord
	}
	r.coordMu.Lock()
	defer r.coordMu.Unlock()
	if r.coord == nil {
		r.coord = &dist.Coordinator{Workers: r.Workers, Parallelism: r.Parallelism, ChunkTarget: r.ChunkTarget, Obs: r.Obs, Dial: r.Dial}
	}
	return r.coord
}

func (r *Runner) logf(format string, args ...any) {
	r.Obs.Logf(format, args...)
}

// popPath is the population file for an entry.
func (r *Runner) popPath(m *Manifest, e Entry) string {
	return filepath.Join(r.OutDir, fmt.Sprintf("%s-%s.json", m.Name, e.key()))
}

// ReportPath is the report file the campaign writes.
func (r *Runner) ReportPath(m *Manifest) string {
	return filepath.Join(r.OutDir, fmt.Sprintf("%s-report.json", m.Name))
}

// TelemetryPath is the convergence journal the campaign writes next to
// the report when it ran adaptive analyses: one JSON object per line,
// one line per refinement round (see ConvergenceRound). benchreport
// -telemetry renders it.
func (r *Runner) TelemetryPath(m *Manifest) string {
	return filepath.Join(r.OutDir, fmt.Sprintf("%s-telemetry.jsonl", m.Name))
}

// Run executes the campaign: simulate (or load) every entry's population,
// run every analysis on it, and persist the report. Individual analysis
// failures are recorded in the report rather than aborting.
func (r *Runner) Run(m *Manifest) (*Report, error) {
	return r.RunContext(context.Background(), m)
}

// RunContext is Run with cooperative cancellation: the campaign stops at
// the next entry, analysis, or — when generation routes through a
// coordinator — chunk boundary, returning the context's error. Entry
// populations already persisted stay on disk, so a later RunContext with
// the same manifest resumes exactly where this one stopped.
func (r *Runner) RunContext(ctx context.Context, m *Manifest) (*Report, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if r.OutDir == "" {
		return nil, errors.New("manifest: runner needs an output directory")
	}
	if err := os.MkdirAll(r.OutDir, 0o755); err != nil {
		return nil, err
	}
	scale := m.Scale
	if scale == 0 {
		scale = 1.0
	}
	report := &Report{Name: m.Name}
	campaign := r.Obs.T().StartSpan("campaign", obs.Str("name", m.Name),
		obs.Int("entries", len(m.Entries)), obs.Int("analyses", len(m.Analyses)))
	defer campaign.End()

	var journal []ConvergenceRound
	for i, e := range m.Entries {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("manifest: campaign interrupted before entry %s: %w", e.key(), err)
		}
		if r.Hooks.OnEntryStart != nil {
			r.Hooks.OnEntryStart(i, e.key())
		}
		pop, reused, err := r.loadOrGenerate(ctx, m, e, i, scale)
		if r.Hooks.OnEntryDone != nil {
			r.Hooks.OnEntryDone(i, e.key(), reused, err)
		}
		if err != nil {
			return nil, fmt.Errorf("manifest: entry %s: %w", e.key(), err)
		}
		if reused && !r.StableReport {
			report.Reused = append(report.Reused, e.key())
		}
		for _, a := range m.Analyses {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("manifest: campaign interrupted during entry %s: %w", e.key(), err)
			}
			var res AnalysisResult
			if a.Adaptive() {
				res = r.analyzeAdaptive(ctx, m, e, i, scale, a)
				if res.Err != "" && ctx.Err() != nil {
					// A cancelled adaptive collection is an interruption,
					// not a campaign result.
					return nil, fmt.Errorf("manifest: campaign interrupted during entry %s: %w", e.key(), ctx.Err())
				}
				journal = append(journal, res.Rounds...)
			} else {
				res = r.analyze(e, a, pop)
			}
			if r.Hooks.OnAnalysisDone != nil {
				r.Hooks.OnAnalysisDone(res)
			}
			report.Results = append(report.Results, res)
		}
	}

	if len(journal) > 0 {
		err := WriteFileAtomic(r.TelemetryPath(m), func(w io.Writer) error {
			enc := json.NewEncoder(w)
			for _, rec := range journal {
				if err := enc.Encode(rec); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		r.logf("convergence journal written to %s", r.TelemetryPath(m))
	}

	err := WriteFileAtomic(r.ReportPath(m), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(report)
	})
	if err != nil {
		return nil, err
	}
	r.logf("report written to %s", r.ReportPath(m))
	return report, nil
}

// WriteFileAtomic writes via a temp file in the same directory and
// renames it into place, propagating Close errors — so a short write (a
// full disk, a crash mid-campaign) never leaves a truncated file that
// the resume path would later load as a valid population.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// analyze runs one analysis on an entry's population, recording a span
// and the CI construction metrics.
func (r *Runner) analyze(e Entry, a Analysis, pop *population.Population) AnalysisResult {
	res := AnalysisResult{
		Entry: e.key(), Metric: a.Metric, F: a.F, C: a.C,
		Direction: a.Direction,
	}
	if res.Direction == "" {
		res.Direction = "atmost"
	}
	span := r.Obs.T().StartSpan("campaign.analysis", obs.Str("entry", res.Entry),
		obs.Str("metric", a.Metric), obs.F64("f", a.F), obs.F64("c", a.C))
	fail := func(err error) AnalysisResult {
		res.Err = err.Error()
		r.Obs.CIBuilt("SPA", 0, err)
		span.End(obs.Str("error", res.Err))
		return res
	}
	p, err := a.Params()
	if err != nil {
		return fail(err)
	}
	xs, err := pop.Metric(a.Metric)
	if err != nil {
		return fail(err)
	}
	res.Samples = len(xs)
	iv, err := core.ConfidenceInterval(xs, p)
	if err != nil {
		return fail(err)
	}
	res.Interval = iv
	r.Obs.CIBuilt("SPA", iv.Width(), nil)
	span.End(obs.Int("samples", res.Samples), obs.F64("width", iv.Width()))
	return res
}

// analyzeAdaptive runs one width-refinement analysis: it re-collects the
// entry's seed range through the shared coordinator (workers when
// configured, in-process otherwise) until the SPA interval narrows to
// the target width, recording a convergence round — trace event, labeled
// gauges, journal record — per refinement step. Seeds are the entry's
// own base-seed range, so the trajectory is replicable run to run.
func (r *Runner) analyzeAdaptive(ctx context.Context, m *Manifest, e Entry, idx int, scale float64, a Analysis) AnalysisResult {
	res := AnalysisResult{
		Entry: e.key(), Metric: a.Metric, F: a.F, C: a.C,
		Direction: a.Direction, TargetWidth: a.TargetWidth,
	}
	if res.Direction == "" {
		res.Direction = "atmost"
	}
	span := r.Obs.T().StartSpan("campaign.analysis_adaptive", obs.Str("entry", res.Entry),
		obs.Str("metric", a.Metric), obs.F64("f", a.F), obs.F64("c", a.C),
		obs.F64("target_width", a.TargetWidth))
	fail := func(err error) AnalysisResult {
		res.Err = err.Error()
		r.Obs.CIBuilt("SPA", 0, err)
		span.End(obs.Str("error", res.Err))
		return res
	}
	p, err := a.Params()
	if err != nil {
		return fail(err)
	}
	cfg, err := e.Config()
	if err != nil {
		return fail(err)
	}
	baseSeed := m.Seed + uint64(idx)*1_000_000
	job := dist.Job{Benchmark: e.Benchmark, Config: cfg, Scale: scale}
	var col core.Collector = r.Coordinator().CollectorCtx(ctx, job, a.Metric)
	design, dcol, err := r.designCollector(ctx, e, a, cfg, scale, col)
	if err != nil {
		return fail(err)
	}
	if dcol != nil {
		col = dcol
		res.Sampling = design.String()
	}
	round := 0
	hooks := core.Hooks{
		OnRound: func(samples int, width float64) {
			round++
			rec := ConvergenceRound{
				Entry: res.Entry, Metric: a.Metric,
				Round: round, Samples: samples, Width: width, Target: a.TargetWidth,
			}
			res.Rounds = append(res.Rounds, rec)
			r.Obs.ConvergenceRound(res.Entry, a.Metric, "SPA", samples, width, a.TargetWidth)
			if r.Hooks.OnConvergenceRound != nil {
				r.Hooks.OnConvergenceRound(rec)
			}
		},
	}
	an, err := core.AnalyzeToWidthWith(col, p, core.WidthOptions{
		TargetWidth: a.TargetWidth, GrowBatch: a.GrowBatch,
		MaxSamples: a.MaxSamples, Batch: r.Parallelism,
		BaseSeed: baseSeed, Hooks: hooks,
	})
	switch {
	case err == nil:
		res.Converged = true
	case errors.Is(err, core.ErrWidthBudget):
		// The widest-effort interval is still usable; Converged stays
		// false to record the budget miss.
	default:
		return fail(err)
	}
	res.Samples = len(an.Samples)
	res.Interval = an.Interval
	if dcol != nil {
		res.PilotRuns = dcol.Stats().PilotRuns
	}
	r.Obs.CIBuilt("SPA", an.Interval.Width(), nil)
	span.End(obs.Int("samples", res.Samples), obs.F64("width", an.Interval.Width()),
		obs.Int("rounds", round), obs.Bool("converged", res.Converged),
		obs.Str("sampling", res.Sampling), obs.Int("pilot_runs", res.PilotRuns))
	return res
}

// designCollector builds the variance-reduction collector for an
// adaptive analysis, or returns nil when the effective design is plain.
// The pilot pass runs the same benchmark at a reduced scale through the
// shared coordinator, with its block populations cached under plain
// popcache recipes (shared with anything else running that scale) and
// the cumulative measured population cached under the design recipe —
// so a repeated campaign re-ranks and re-selects without simulating.
func (r *Runner) designCollector(ctx context.Context, e Entry, a Analysis, cfg sim.Config, scale float64, full core.Collector) (sampling.Design, *sampling.Collector, error) {
	s := a.Sampling
	if s == "" {
		s = r.Sampling
	}
	design, err := sampling.ParseDesign(s)
	if err != nil {
		return sampling.Plain, nil, err
	}
	if design == sampling.Plain {
		return design, nil, nil
	}
	pilotScale := a.PilotScale
	if pilotScale == 0 {
		pilotScale = scale / 2
	}
	pilotJob := dist.Job{Benchmark: e.Benchmark, Config: cfg, Scale: pilotScale}
	pilotCol := r.Coordinator().CollectorCtx(ctx, pilotJob, a.Metric)
	pilot := func(baseSeed uint64, n int) ([]float64, error) {
		key := popcache.Key{Benchmark: e.Benchmark, Config: cfg, Scale: pilotScale, BaseSeed: baseSeed, Runs: n}
		pop, _, err := r.PopCache.GetOrGenerate(key, func() (*population.Population, error) {
			vals, err := pilotCol.Collect(baseSeed, n, r.Parallelism, core.Hooks{})
			if err != nil {
				return nil, err
			}
			return &population.Population{Benchmark: e.Benchmark, Runs: len(vals), BaseSeed: baseSeed,
				Metrics: map[string][]float64{a.Metric: vals}}, nil
		})
		if err != nil {
			return nil, err
		}
		return pop.Metric(a.Metric)
	}
	alloc, err := sampling.ParseAllocation(a.SamplingAllocation)
	if err != nil {
		return design, nil, err
	}
	dcol, err := sampling.New(sampling.Options{
		Design:     design,
		Strata:     a.SamplingStrata,
		Allocation: alloc,
		PilotBlock: a.PilotRuns,
		Fidelity:   a.Fidelity,
		Metric:     a.Metric,
		Cache:      r.PopCache,
		Recipe: popcache.Key{Benchmark: e.Benchmark, Config: cfg, Scale: scale,
			PilotScale: pilotScale, ProxyMetric: a.Metric},
	}, full, pilot)
	if err != nil {
		return design, nil, err
	}
	return design, dcol, nil
}

// loadOrGenerate resumes an entry's population from disk or simulates it.
func (r *Runner) loadOrGenerate(ctx context.Context, m *Manifest, e Entry, idx int, scale float64) (*population.Population, bool, error) {
	path := r.popPath(m, e)
	if f, err := os.Open(path); err == nil {
		defer f.Close()
		pop, err := population.Load(f)
		if err != nil {
			return nil, false, fmt.Errorf("resuming from %s: %w", path, err)
		}
		r.logf("reusing %s (%d runs)", path, pop.Runs)
		r.Obs.M().Counter(obs.MetricEntriesReused).Inc()
		r.Obs.T().Event("campaign.reused", obs.Str("entry", e.key()), obs.Int("runs", pop.Runs))
		return pop, true, nil
	}
	cfg, err := e.Config()
	if err != nil {
		return nil, false, err
	}
	runs := e.Runs
	if runs <= 0 {
		runs = m.Runs
	}
	if runs <= 0 {
		runs = 100
	}
	baseSeed := m.Seed + uint64(idx)*1_000_000
	ck := popcache.Key{Benchmark: e.Benchmark, Config: cfg, Scale: scale, BaseSeed: baseSeed, Runs: runs}
	if pop := r.PopCache.Get(ck); pop != nil {
		r.logf("population cache hit for %s (%d runs)", e.key(), pop.Runs)
		r.Obs.M().Counter(obs.MetricEntriesReused).Inc()
		r.Obs.T().Event("campaign.cache_hit", obs.Str("entry", e.key()), obs.Int("runs", pop.Runs))
		if err := WriteFileAtomic(path, pop.Save); err != nil {
			return nil, false, err
		}
		return pop, true, nil
	}
	r.logf("simulating %s: %d runs at scale %g", e.key(), runs, scale)
	// Totals grow entry by entry (resume skips entries), so ETA reflects
	// the work discovered so far.
	r.Obs.P().AddTotal(runs)
	hooks := population.ObserverHooks(r.Obs, e.Benchmark)
	var pop *population.Population
	if len(r.Workers) > 0 || r.Coord != nil {
		// The coordinator path covers both worker fleets and — with an
		// injected coordinator and no workers — bounded in-process
		// execution with chunk-boundary cancellation; its populations are
		// byte-identical to GenerateHooked's for the same seeds.
		pop, err = r.Coordinator().GeneratePopulationCtx(ctx, e.Benchmark, cfg, scale, runs, baseSeed, hooks)
	} else {
		pop, err = population.GenerateHooked(e.Benchmark, cfg, scale, runs,
			baseSeed, r.Parallelism, hooks)
	}
	if err != nil {
		return nil, false, err
	}
	_ = r.PopCache.Put(ck, pop)
	if err := WriteFileAtomic(path, pop.Save); err != nil {
		return nil, false, err
	}
	return pop, false, nil
}

// Render writes the report as an aligned text table.
func (rep *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "campaign %s: %d results", rep.Name, len(rep.Results))
	if len(rep.Reused) > 0 {
		fmt.Fprintf(w, " (%d populations reused)", len(rep.Reused))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-24s %-18s %-5s %-5s %-8s %-14s %s\n",
		"entry", "metric", "F", "C", "dir", "lo", "hi")
	for _, res := range rep.Results {
		if res.Err != "" {
			fmt.Fprintf(w, "%-24s %-18s %-5g %-5g %-8s error: %s\n",
				res.Entry, res.Metric, res.F, res.C, res.Direction, res.Err)
			continue
		}
		note := ""
		if res.TargetWidth > 0 {
			mode := "adaptive"
			if res.Sampling != "" {
				mode += "/" + res.Sampling
			}
			note = fmt.Sprintf("  [%s: hit budget]", mode)
			if res.Converged {
				note = fmt.Sprintf("  [%s: converged in %d rounds]", mode, len(res.Rounds))
			}
		}
		fmt.Fprintf(w, "%-24s %-18s %-5g %-5g %-8s %-14.6g %.6g%s\n",
			res.Entry, res.Metric, res.F, res.C, res.Direction,
			res.Interval.Lo, res.Interval.Hi, note)
	}
}
