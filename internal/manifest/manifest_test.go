package manifest

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTemplateIsValid(t *testing.T) {
	if err := Template().Validate(); err != nil {
		t.Fatalf("template invalid: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Template().Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "example" || len(m.Entries) != 3 || len(m.Analyses) != 3 {
		t.Errorf("round trip lost content: %+v", m)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	js := `{"name":"x","entries":[{"benchmark":"ferret"}],"analyses":[{"metric":"runtime_s","f":0.5,"c":0.9}],"bogus":1}`
	if _, err := Load(strings.NewReader(js)); err == nil {
		t.Error("unknown field should be rejected")
	}
	if _, err := Load(strings.NewReader("{nope")); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	base := func() *Manifest { return Template() }
	cases := []struct {
		name string
		mut  func(*Manifest)
	}{
		{"empty name", func(m *Manifest) { m.Name = "" }},
		{"no entries", func(m *Manifest) { m.Entries = nil }},
		{"no analyses", func(m *Manifest) { m.Analyses = nil }},
		{"negative scale", func(m *Manifest) { m.Scale = -1 }},
		{"negative runs", func(m *Manifest) { m.Runs = -1 }},
		{"unknown benchmark", func(m *Manifest) { m.Entries[0].Benchmark = "nope" }},
		{"unknown variant", func(m *Manifest) { m.Entries[0].Variant = "warp" }},
		{"negative entry runs", func(m *Manifest) { m.Entries[0].Runs = -2 }},
		{"duplicate entry", func(m *Manifest) { m.Entries = append(m.Entries, m.Entries[0]) }},
		{"bad direction", func(m *Manifest) { m.Analyses[0].Direction = "sideways" }},
		{"bad F", func(m *Manifest) { m.Analyses[0].F = 2 }},
		{"empty metric", func(m *Manifest) { m.Analyses[0].Metric = "" }},
	}
	for _, c := range cases {
		m := base()
		c.mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: should be invalid", c.name)
		}
	}
}

func TestEntryConfigVariants(t *testing.T) {
	for variant, l2 := range map[string]int{
		"":         3 * 1024 * 1024,
		"default":  3 * 1024 * 1024,
		"l2half":   512 * 1024,
		"l2double": 1024 * 1024,
	} {
		cfg, err := Entry{Benchmark: "ferret", Variant: variant}.Config()
		if err != nil {
			t.Fatalf("variant %q: %v", variant, err)
		}
		if cfg.L2Size != l2 {
			t.Errorf("variant %q: L2 %d, want %d", variant, cfg.L2Size, l2)
		}
	}
	hw, err := Entry{Benchmark: "ferret", Variant: "hardware"}.Config()
	if err != nil || hw.ColocationProb == 0 {
		t.Error("hardware variant should enable colocation")
	}
}

func TestAnalysisParams(t *testing.T) {
	p, err := Analysis{Metric: sim.MetricIPC, F: 0.9, C: 0.9, Direction: "atleast"}.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.Direction.String() != "at-least" {
		t.Errorf("direction = %v", p.Direction)
	}
	if _, err := (Analysis{F: 0.5, C: 0.9, Direction: "no"}).Params(); err == nil {
		t.Error("bad direction should error")
	}
}
