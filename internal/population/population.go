// Package population manages run campaigns and their results: generating a
// benchmark's population of executions in parallel (Sec. 5.3 uses 500 runs
// per benchmark as ground truth), extracting metric vectors, computing
// ground-truth proportion values, drawing trial samples, and forming
// speedup samples by randomly pairing base and improved executions
// (Sec. 5.2).
package population

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Population is the result set of one campaign: per-metric value vectors
// indexed by run (seed order), so campaigns are replicable.
type Population struct {
	Benchmark string               `json:"benchmark"`
	Runs      int                  `json:"runs"`
	BaseSeed  uint64               `json:"base_seed"`
	Metrics   map[string][]float64 `json:"metrics"`
}

// RunHooks are optional per-execution callbacks for GenerateHooked, the
// attachment points for the observability layer. Either field may be nil;
// both may be called from many goroutines concurrently. Hooks only
// observe — the simulation RNG is seeded before they fire, so telemetry
// cannot perturb determinism.
type RunHooks struct {
	OnRunStart func(i int, seed uint64)
	OnRunDone  func(i int, seed uint64, res *sim.Result, err error, elapsed time.Duration)
}

// ObserverHooks adapts an obs.Observer into RunHooks: run counters, the
// duration histogram, a progress tick and a "sim.run" span per execution.
// A nil observer yields zero hooks.
func ObserverHooks(o *obs.Observer, benchmark string) RunHooks {
	if o == nil {
		return RunHooks{}
	}
	return RunHooks{
		OnRunStart: func(i int, seed uint64) { o.RunStarted() },
		OnRunDone: func(i int, seed uint64, res *sim.Result, err error, elapsed time.Duration) {
			var cycles uint64
			if res != nil {
				cycles = res.Cycles
			}
			o.RunDone(benchmark, seed, cycles, err, time.Time{}, elapsed)
		},
	}
}

// Generate runs the benchmark `runs` times with seeds baseSeed+i on the
// given configuration, in parallel (parallelism ≤ 0 selects GOMAXPROCS),
// and collects every scalar metric. Results are ordered by seed offset.
func Generate(benchmark string, cfg sim.Config, scale float64, runs int, baseSeed uint64, parallelism int) (*Population, error) {
	return GenerateHooked(benchmark, cfg, scale, runs, baseSeed, parallelism, RunHooks{})
}

// GenerateHooked is Generate with per-execution observability callbacks.
//
// Runs execute on a fixed pool of workers, each owning one reusable
// sim.Runner arena: run i always computes from seed baseSeed+i into slot i,
// so results are independent of which worker picks up which run, and each
// worker's machine allocations are paid once rather than per run.
func GenerateHooked(benchmark string, cfg sim.Config, scale float64, runs int, baseSeed uint64, parallelism int, h RunHooks) (*Population, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("population: non-positive run count %d", runs)
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > runs {
		parallelism = runs
	}
	observed := h.OnRunStart != nil || h.OnRunDone != nil
	results := make([]*sim.Result, runs)
	errs := make([]error, runs)
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner := sim.NewRunner()
			for i := range indices {
				seed := baseSeed + uint64(i)
				if !observed {
					results[i], errs[i] = runner.Run(benchmark, cfg, scale, seed)
					continue
				}
				if h.OnRunStart != nil {
					h.OnRunStart(i, seed)
				}
				start := time.Now()
				results[i], errs[i] = runner.Run(benchmark, cfg, scale, seed)
				if h.OnRunDone != nil {
					h.OnRunDone(i, seed, results[i], errs[i], time.Since(start))
				}
			}
		}()
	}
	for i := 0; i < runs; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
	var failures []error
	for i, err := range errs {
		if err != nil {
			failures = append(failures, fmt.Errorf("population: run %d of %s: %w", i, benchmark, err))
		}
	}
	if len(failures) > 0 {
		return nil, errors.Join(failures...)
	}
	metrics := make([]map[string]float64, runs)
	for i, res := range results {
		metrics[i] = res.Metrics
	}
	return FromRuns(benchmark, baseSeed, metrics), nil
}

// FromRuns assembles a population from per-run scalar metric maps
// ordered by seed offset. Local generation and the distributed
// coordinator (internal/dist) both build populations through this one
// path, which is what makes a distributed campaign byte-identical to a
// local one for the same base seed.
func FromRuns(benchmark string, baseSeed uint64, runs []map[string]float64) *Population {
	pop := &Population{
		Benchmark: benchmark,
		Runs:      len(runs),
		BaseSeed:  baseSeed,
		Metrics:   make(map[string][]float64),
	}
	for _, m := range runs {
		for name, v := range m {
			pop.Metrics[name] = append(pop.Metrics[name], v)
		}
	}
	return pop
}

// FromValues builds a population directly from a metric vector, for
// analyses of externally produced data (the SPA CLI path).
func FromValues(name, metric string, values []float64) *Population {
	return &Population{
		Benchmark: name,
		Runs:      len(values),
		Metrics:   map[string][]float64{metric: append([]float64(nil), values...)},
	}
}

// Metric returns the population's value vector for a metric.
func (p *Population) Metric(name string) ([]float64, error) {
	vs, ok := p.Metrics[name]
	if !ok {
		names := make([]string, 0, len(p.Metrics))
		for n := range p.Metrics {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("population: no metric %q (have %v)", name, names)
	}
	return vs, nil
}

// GroundTruth returns the population's F-proportion value for a metric —
// the paper's definition of the "correct" value a CI should cover
// (Sec. 5.3): the smallest value v such that at least an F fraction of the
// population is ≤ v.
func (p *Population) GroundTruth(metric string, f float64) (float64, error) {
	vs, err := p.Metric(metric)
	if err != nil {
		return 0, err
	}
	return stats.Quantile(vs, f)
}

// Sample draws n values for a metric with replacement, using the supplied
// stream — one evaluation trial (Sec. 5.4 draws 22).
func (p *Population) Sample(metric string, n int, r *randx.Rand) ([]float64, error) {
	vs, err := p.Metric(metric)
	if err != nil {
		return nil, err
	}
	if len(vs) == 0 {
		return nil, errors.New("population: empty metric vector")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = vs[r.Intn(len(vs))]
	}
	return out, nil
}

// Rounded returns a copy of the population with every metric rounded to
// the given number of decimals — the Fig. 15 protocol that provokes
// bootstrap failures through duplicate data.
func (p *Population) Rounded(places int) *Population {
	out := &Population{
		Benchmark: p.Benchmark,
		Runs:      p.Runs,
		BaseSeed:  p.BaseSeed,
		Metrics:   make(map[string][]float64, len(p.Metrics)),
	}
	for name, vs := range p.Metrics {
		out.Metrics[name] = stats.Round(vs, places)
	}
	return out
}

// Speedups forms n speedup samples by randomly drawing one execution from
// the base population and one from the improved population and dividing
// their runtimes (base/improved), exactly as the paper does for speedup
// analyses (Sec. 5.2).
func Speedups(base, improved []float64, n int, r *randx.Rand) ([]float64, error) {
	if len(base) == 0 || len(improved) == 0 {
		return nil, errors.New("population: empty speedup inputs")
	}
	out := make([]float64, n)
	for i := range out {
		b := base[r.Intn(len(base))]
		im := improved[r.Intn(len(improved))]
		if im == 0 {
			return nil, errors.New("population: zero improved runtime")
		}
		out[i] = b / im
	}
	return out, nil
}

// Save writes the population as JSON.
func (p *Population) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// Load reads a population saved with Save.
func Load(r io.Reader) (*Population, error) {
	var p Population
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("population: decoding: %w", err)
	}
	if p.Metrics == nil {
		return nil, errors.New("population: file has no metrics")
	}
	return &p, nil
}
