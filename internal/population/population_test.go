package population

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/sim"
)

func smallPop(t *testing.T, runs int) *Population {
	t.Helper()
	pop, err := Generate("swaptions", sim.DefaultConfig(), 0.05, runs, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestGenerate(t *testing.T) {
	pop := smallPop(t, 12)
	if pop.Runs != 12 || pop.Benchmark != "swaptions" {
		t.Errorf("population header wrong: %+v", pop)
	}
	vs, err := pop.Metric(sim.MetricRuntime)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 12 {
		t.Fatalf("runtime vector has %d entries", len(vs))
	}
	for _, v := range vs {
		if v <= 0 {
			t.Error("non-positive runtime")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := smallPop(t, 6)
	b := smallPop(t, 6)
	av, _ := a.Metric(sim.MetricCycles)
	bv, _ := b.Metric(sim.MetricCycles)
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("campaign not replicable at run %d", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("swaptions", sim.DefaultConfig(), 0.05, 0, 0, 1); err == nil {
		t.Error("zero runs should error")
	}
	if _, err := Generate("nope", sim.DefaultConfig(), 0.05, 2, 0, 1); err == nil {
		t.Error("unknown benchmark should error")
	}
	bad := sim.DefaultConfig()
	bad.Cores = 0
	if _, err := Generate("swaptions", bad, 0.05, 2, 0, 1); err == nil {
		t.Error("bad config should error")
	}
}

func TestMetricUnknown(t *testing.T) {
	pop := FromValues("x", "m", []float64{1, 2})
	if _, err := pop.Metric("other"); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestGroundTruthMatchesQuantile(t *testing.T) {
	pop := FromValues("x", "m", []float64{5, 1, 4, 2, 3})
	gt, err := pop.GroundTruth("m", 0.5)
	if err != nil || gt != 3 {
		t.Errorf("median ground truth = %g, %v", gt, err)
	}
	gt, err = pop.GroundTruth("m", 0.9)
	if err != nil || gt != 5 {
		t.Errorf("0.9 ground truth = %g, %v", gt, err)
	}
	if _, err := pop.GroundTruth("m", 0); err == nil {
		t.Error("F=0 should error")
	}
}

func TestSample(t *testing.T) {
	pop := FromValues("x", "m", []float64{10, 20, 30})
	r := randx.New(1)
	xs, err := pop.Sample("m", 100, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 100 {
		t.Fatalf("sample size %d", len(xs))
	}
	for _, v := range xs {
		if v != 10 && v != 20 && v != 30 {
			t.Fatalf("sampled value %g not in population", v)
		}
	}
	if _, err := pop.Sample("nope", 5, r); err == nil {
		t.Error("unknown metric should error")
	}
	empty := &Population{Metrics: map[string][]float64{"m": {}}}
	if _, err := empty.Sample("m", 5, r); err == nil {
		t.Error("empty vector should error")
	}
}

func TestRounded(t *testing.T) {
	pop := FromValues("x", "m", []float64{1.23456, 1.23499, 2.5})
	r3 := pop.Rounded(3)
	vs, _ := r3.Metric("m")
	if vs[0] != 1.235 || vs[1] != 1.235 {
		t.Errorf("rounding wrong: %v", vs)
	}
	// Original untouched.
	orig, _ := pop.Metric("m")
	if orig[0] != 1.23456 {
		t.Error("Rounded mutated the original")
	}
}

func TestSpeedups(t *testing.T) {
	r := randx.New(2)
	base := []float64{2, 2.2}
	improved := []float64{1, 1.1}
	sp, err := Speedups(base, improved, 1000, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sp {
		if s < 2.0/1.1-1e-9 || s > 2.2/1.0+1e-9 {
			t.Fatalf("speedup %g outside achievable range", s)
		}
	}
	if _, err := Speedups(nil, improved, 5, r); err == nil {
		t.Error("empty base should error")
	}
	if _, err := Speedups(base, []float64{0}, 5, r); err == nil {
		t.Error("zero improved runtime should error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	pop := FromValues("bench", "m", []float64{1.5, 2.5, 3.5})
	pop.BaseSeed = 77
	var buf bytes.Buffer
	if err := pop.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Benchmark != "bench" || back.BaseSeed != 77 || back.Runs != 3 {
		t.Errorf("header mismatch: %+v", back)
	}
	vs, err := back.Metric("m")
	if err != nil || len(vs) != 3 || vs[1] != 2.5 {
		t.Errorf("values mismatch: %v, %v", vs, err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{not json")); err == nil {
		t.Error("garbage should error")
	}
	if _, err := Load(bytes.NewBufferString(`{"benchmark":"x"}`)); err == nil {
		t.Error("missing metrics should error")
	}
}

func TestFromValuesCopies(t *testing.T) {
	src := []float64{1, 2}
	pop := FromValues("x", "m", src)
	src[0] = 99
	vs, _ := pop.Metric("m")
	if vs[0] != 1 {
		t.Error("FromValues should copy its input")
	}
	if math.IsNaN(vs[0]) {
		t.Error("unexpected NaN")
	}
}
