package gem5

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleStats = `
---------- Begin Simulation Statistics ----------
simSeconds                                   0.001432                       # Number of seconds simulated (Second)
simTicks                                 1432000000                       # Number of ticks simulated (Tick)
system.cpu0.ipc                              0.712345                       # IPC: instructions per cycle
system.cpu0.numCycles                        20123456                       # Number of cpu cycles simulated
system.l2.overallMissRate::total             0.134000                       # miss rate for overall accesses
system.l2.overallMisses::total                  98765                       # number of overall misses
system.mem_ctrl.avgRdBWSys                   1234.56%                       # percentage-style vector row
badline
system.cpu0.someHist::samples                     inf                       # unusable placeholder
---------- End Simulation Statistics   ----------
`

const twoSections = sampleStats + `
---------- Begin Simulation Statistics ----------
simSeconds                                   0.002000
system.cpu0.ipc                              0.650000
---------- End Simulation Statistics   ----------
`

func TestParseScalars(t *testing.T) {
	st, err := Parse(strings.NewReader(sampleStats))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := st.Metric("simSeconds"); err != nil || v != 0.001432 {
		t.Errorf("simSeconds = %v, %v", v, err)
	}
	if v, err := st.Metric("system.cpu0.ipc"); err != nil || v != 0.712345 {
		t.Errorf("ipc = %v, %v", v, err)
	}
	if v, err := st.Metric("system.l2.overallMisses::total"); err != nil || v != 98765 {
		t.Errorf("vector total = %v, %v", v, err)
	}
	if v, err := st.Metric("system.mem_ctrl.avgRdBWSys"); err != nil || v != 1234.56 {
		t.Errorf("percent-suffixed value = %v, %v", v, err)
	}
	if _, err := st.Metric("system.cpu0.someHist::samples"); err == nil {
		t.Error("inf placeholder should be skipped")
	}
	if _, err := st.Metric("badline"); err == nil {
		t.Error("malformed line should be skipped")
	}
}

func TestParseTakesLastSection(t *testing.T) {
	st, err := Parse(strings.NewReader(twoSections))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Metric("system.cpu0.ipc"); v != 0.65 {
		t.Errorf("should read the last section's ipc, got %v", v)
	}
	all, err := ParseAll(strings.NewReader(twoSections))
	if err != nil || len(all) != 2 {
		t.Fatalf("ParseAll = %d sections, %v", len(all), err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("no markers here")); err == nil {
		t.Error("stream without sections should error")
	}
	// An unterminated section is tolerated (killed run).
	trunc := strings.Split(sampleStats, "---------- End")[0]
	st, err := Parse(strings.NewReader(trunc))
	if err != nil {
		t.Fatalf("truncated dump should still parse: %v", err)
	}
	if _, err := st.Metric("simSeconds"); err != nil {
		t.Error("truncated dump lost stats")
	}
}

func TestFind(t *testing.T) {
	st, _ := Parse(strings.NewReader(sampleStats))
	hits := st.Find("l2")
	if len(hits) != 2 {
		t.Errorf("Find(l2) = %v", hits)
	}
	if len(st.Find("zzz")) != 0 {
		t.Error("Find should return nothing for no matches")
	}
}

// writeStats writes a stats.txt with the given ipc and an extra stat that
// only some files carry (to exercise common-metric intersection).
func writeStats(t *testing.T, dir, name string, ipc float64, extra bool) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("---------- Begin Simulation Statistics ----------\n")
	fmt.Fprintf(&sb, "simSeconds  0.001  # seconds\n")
	fmt.Fprintf(&sb, "system.cpu0.ipc  %g  # ipc\n", ipc)
	if extra {
		sb.WriteString("system.only.sometimes  1.0\n")
	}
	sb.WriteString("---------- End Simulation Statistics   ----------\n")
	if err := os.WriteFile(filepath.Join(dir, name), []byte(sb.String()), 0o600); err != nil {
		t.Fatal(err)
	}
}

func TestPopulationFromGlob(t *testing.T) {
	dir := t.TempDir()
	writeStats(t, dir, "run1.txt", 0.70, true)
	writeStats(t, dir, "run2.txt", 0.72, false)
	writeStats(t, dir, "run3.txt", 0.68, true)

	pop, err := Population(filepath.Join(dir, "run*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if pop.Runs != 3 {
		t.Fatalf("runs = %d", pop.Runs)
	}
	ipcs, err := pop.Metric("system.cpu0.ipc")
	if err != nil {
		t.Fatal(err)
	}
	// Sorted path order: run1, run2, run3.
	want := []float64{0.70, 0.72, 0.68}
	for i := range want {
		if ipcs[i] != want[i] {
			t.Errorf("ipc[%d] = %g, want %g", i, ipcs[i], want[i])
		}
	}
	// The sometimes-present stat must be dropped (not common to all runs).
	if _, err := pop.Metric("system.only.sometimes"); err == nil {
		t.Error("non-common stat should be excluded from the population")
	}
}

func TestPopulationErrors(t *testing.T) {
	if _, err := Population(filepath.Join(t.TempDir(), "none*.txt")); err == nil {
		t.Error("empty glob should error")
	}
	if _, err := Population("[bad-glob"); err == nil {
		t.Error("invalid glob should error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.txt"), []byte("no markers"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Population(filepath.Join(dir, "bad.txt")); err == nil {
		t.Error("unparseable file should error")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("missing file should error")
	}
}
