// Package gem5 bridges real gem5 output into the SPA toolchain. The
// paper's released artifact integrates SPA with gem5 (Sec. 1, 5.1); this
// package parses gem5's stats.txt format — the whitespace-separated
// "name value [# description]" dumps between `---------- Begin Simulation
// Statistics ----------` markers — so populations of real simulator runs
// can be analyzed by cmd/spa exactly like this repository's synthetic
// substrate.
package gem5

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/population"
)

// Stats is one simulation's scalar statistics, keyed by the full
// dotted stat name (e.g. "system.cpu0.ipc").
type Stats map[string]float64

// beginMarker/endMarker delimit a dump section in gem5 stats files.
const (
	beginMarker = "Begin Simulation Statistics"
	endMarker   = "End Simulation Statistics"
)

// Parse reads one stats.txt stream. Files may contain several dump
// sections (gem5 appends one per m5_dumpstats); Parse returns the LAST
// section, which by convention covers the region of interest in
// checkpoint-style runs. Non-scalar lines (histograms, vectors with
// per-bucket rows, nan/inf placeholders) are skipped.
func Parse(r io.Reader) (Stats, error) {
	sections, err := ParseAll(r)
	if err != nil {
		return nil, err
	}
	if len(sections) == 0 {
		return nil, errors.New("gem5: no statistics sections found")
	}
	return sections[len(sections)-1], nil
}

// ParseAll reads every dump section in the stream, in order.
func ParseAll(r io.Reader) ([]Stats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var (
		sections []Stats
		cur      Stats
		inBody   bool
		lineNo   int
	)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.Contains(line, beginMarker):
			cur = make(Stats)
			inBody = true
			continue
		case strings.Contains(line, endMarker):
			if inBody {
				sections = append(sections, cur)
				cur = nil
				inBody = false
			}
			continue
		}
		if !inBody {
			continue
		}
		name, value, ok := parseLine(line)
		if ok {
			cur[name] = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gem5: reading stats at line %d: %w", lineNo, err)
	}
	// Tolerate a final unterminated section (a run killed mid-dump).
	if inBody && len(cur) > 0 {
		sections = append(sections, cur)
	}
	return sections, nil
}

// parseLine extracts a scalar stat from one dump line.
func parseLine(line string) (string, float64, bool) {
	// Strip the trailing "# description" comment first.
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", 0, false
	}
	name := fields[0]
	// Vector stats repeat the name with ::bucket suffixes; keep them —
	// they are legitimate scalars — but skip obvious non-numerics.
	raw := fields[1]
	switch raw {
	case "nan", "-nan", "inf", "-inf", "|":
		return "", 0, false
	}
	// Percentages like "12.34%" appear in some vector rows.
	raw = strings.TrimSuffix(raw, "%")
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return "", 0, false
	}
	return name, v, true
}

// Metric returns a stat by exact name.
func (s Stats) Metric(name string) (float64, error) {
	v, ok := s[name]
	if !ok {
		return 0, fmt.Errorf("gem5: no stat %q", name)
	}
	return v, nil
}

// Find returns the stats whose names contain the given substring, sorted —
// the discovery aid for long gem5 stat lists.
func (s Stats) Find(substr string) []string {
	var out []string
	for name := range s {
		if strings.Contains(name, substr) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// LoadFile parses a stats.txt on disk (last section).
func LoadFile(path string) (Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Population assembles a population from a glob of stats files — one run
// per file, as produced by repeated seeded gem5 invocations — extracting
// every stat common to all files. Files are taken in sorted path order so
// the population is stable.
func Population(glob string) (*population.Population, error) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("gem5: bad glob %q: %w", glob, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("gem5: no files match %q", glob)
	}
	sort.Strings(paths)

	all := make([]Stats, len(paths))
	for i, p := range paths {
		st, err := LoadFile(p)
		if err != nil {
			return nil, fmt.Errorf("gem5: %s: %w", p, err)
		}
		all[i] = st
	}
	// Metrics present in every run.
	common := make(map[string]bool, len(all[0]))
	for name := range all[0] {
		common[name] = true
	}
	for _, st := range all[1:] {
		for name := range common {
			if _, ok := st[name]; !ok {
				delete(common, name)
			}
		}
	}
	if len(common) == 0 {
		return nil, errors.New("gem5: runs share no common stats")
	}
	pop := &population.Population{
		Benchmark: glob,
		Runs:      len(paths),
		Metrics:   make(map[string][]float64, len(common)),
	}
	for _, st := range all {
		for name := range common {
			pop.Metrics[name] = append(pop.Metrics[name], st[name])
		}
	}
	return pop, nil
}
