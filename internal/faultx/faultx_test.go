package faultx

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseProfile(t *testing.T) {
	for _, s := range []string{"", "all"} {
		p, err := ParseProfile(s)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", s, err)
		}
		if len(p.Scenarios) != int(numScenarios) {
			t.Errorf("ParseProfile(%q) enabled %d scenarios, want all %d", s, len(p.Scenarios), numScenarios)
		}
	}
	p, err := ParseProfile("delay, stall,dup")
	if err != nil {
		t.Fatal(err)
	}
	want := []Scenario{Delay, Stall, Duplicate}
	if len(p.Scenarios) != len(want) {
		t.Fatalf("got %v, want %v", p.Scenarios, want)
	}
	for i := range want {
		if p.Scenarios[i] != want[i] {
			t.Errorf("scenario %d: %v != %v", i, p.Scenarios[i], want[i])
		}
	}
	if _, err := ParseProfile("delay,warp"); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Errorf("unknown scenario should error by name, got %v", err)
	}
	if _, err := ParseProfile(" , ,"); err == nil {
		t.Error("blank scenario list should error")
	}
}

func TestScenarioNamesRoundTrip(t *testing.T) {
	for _, sc := range Scenarios() {
		p, err := ParseProfile(sc.String())
		if err != nil {
			t.Fatalf("%v does not parse back: %v", sc, err)
		}
		if len(p.Scenarios) != 1 || p.Scenarios[0] != sc {
			t.Errorf("%v round-tripped to %v", sc, p.Scenarios)
		}
	}
}

// TestScheduleDeterministic pins the core reproducibility claim: two
// injectors with the same seed and profile produce identical fault
// decision sequences for the same connection and operation indices.
func TestScheduleDeterministic(t *testing.T) {
	prof := Profile{Rate: 0.5, GraceOps: -1}
	mk := func() [][]faultPlan {
		in := New(99, prof, nil)
		var all [][]faultPlan
		for conn := 0; conn < 4; conn++ {
			c := in.wrap(nil, in.nextStream())
			var plans []faultPlan
			for op := 0; op < 32; op++ {
				plans = append(plans, c.decide(in.writeFaults))
			}
			all = append(all, plans)
		}
		return all
	}
	a, b := mk(), mk()
	fired := 0
	for ci := range a {
		for oi := range a[ci] {
			if a[ci][oi] != b[ci][oi] {
				t.Fatalf("conn %d op %d: %+v != %+v (schedule not seed-deterministic)", ci, oi, a[ci][oi], b[ci][oi])
			}
			if a[ci][oi].fire {
				fired++
			}
		}
	}
	if fired == 0 {
		t.Fatal("no faults fired at rate 0.5 over 128 ops")
	}
	// A different seed must yield a different schedule.
	in2 := New(100, prof, nil)
	c2 := in2.wrap(nil, in2.nextStream())
	same := true
	for op := 0; op < 32; op++ {
		if c2.decide(in2.writeFaults) != a[0][op] {
			same = false
		}
	}
	if same {
		t.Error("seeds 99 and 100 produced identical schedules")
	}
}

func TestGraceOpsHoldFire(t *testing.T) {
	in := New(1, Profile{Rate: 1, GraceOps: 5, Scenarios: []Scenario{Close}}, nil)
	c := in.wrap(nil, in.nextStream())
	for op := 0; op < 5; op++ {
		if p := c.decide(in.writeFaults); p.fire {
			t.Fatalf("op %d faulted inside the grace window", op)
		}
	}
	if p := c.decide(in.writeFaults); !p.fire {
		t.Error("rate-1 profile did not fault after the grace window")
	}
}

// chaosPipe wraps one end of an in-memory pipe with the injector and
// pumps reads on the other end through a channel.
func chaosPipe(t *testing.T, in *Injector) (faulty net.Conn, peer net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	fc := in.Wrap(a)
	t.Cleanup(func() { fc.Close(); b.Close() })
	return fc, b
}

func TestPartialWriteTruncatesAndKills(t *testing.T) {
	in := New(3, Profile{Rate: 1, GraceOps: -1, Scenarios: []Scenario{Partial}}, nil)
	fc, peer := chaosPipe(t, in)

	read := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(peer)
		read <- buf
	}()
	msg := []byte("{\"type\":\"ping\"}\n")
	n, err := fc.Write(msg)
	if err == nil {
		t.Fatal("partial-write fault should return an error")
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("partial write delivered %d of %d bytes; want a strict prefix", n, len(msg))
	}
	select {
	case got := <-read:
		if !bytes.Equal(got, msg[:n]) {
			t.Errorf("peer read %q, want prefix %q", got, msg[:n])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never observed the truncated stream closing")
	}
	if _, err := fc.Write(msg); err == nil {
		t.Error("writes after a kill should fail")
	}
}

func TestDuplicateReplaysCompleteLines(t *testing.T) {
	// Probability 1, Duplicate only: every complete-line write is
	// delivered at least twice (dup of itself or replay of an earlier
	// line — both are legal protocol-level duplicates).
	in := New(5, Profile{Rate: 1, GraceOps: -1, Scenarios: []Scenario{Duplicate}}, nil)
	fc, peer := chaosPipe(t, in)

	lines := make(chan string, 16)
	go func() {
		buf := make([]byte, 4096)
		var acc []byte
		for {
			n, err := peer.Read(buf)
			acc = append(acc, buf[:n]...)
			for {
				i := bytes.IndexByte(acc, '\n')
				if i < 0 {
					break
				}
				lines <- string(acc[:i])
				acc = acc[i+1:]
			}
			if err != nil {
				close(lines)
				return
			}
		}
	}()
	if _, err := fc.Write([]byte("alpha\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Write([]byte("beta\n")); err != nil {
		t.Fatal(err)
	}
	fc.Close()
	counts := map[string]int{}
	for l := range lines {
		counts[l]++
	}
	if counts["alpha"]+counts["beta"] < 3 {
		t.Errorf("no duplicate delivered at rate 1: %v", counts)
	}
	for l := range counts {
		if l != "alpha" && l != "beta" {
			t.Errorf("duplication corrupted the stream: unexpected line %q", l)
		}
	}
}

// lineCollector reads peer until EOF, splitting on newlines.
func lineCollector(peer net.Conn) chan string {
	lines := make(chan string, 64)
	go func() {
		buf := make([]byte, 4096)
		var acc []byte
		for {
			n, err := peer.Read(buf)
			acc = append(acc, buf[:n]...)
			for {
				i := bytes.IndexByte(acc, '\n')
				if i < 0 {
					break
				}
				lines <- string(acc[:i])
				acc = acc[i+1:]
			}
			if err != nil {
				close(lines)
				return
			}
		}
	}()
	return lines
}

// TestDuplicateNeverReplaysSplitFrameTail guards the v3 interaction: a
// frame bigger than the sender's buffer arrives as several Write calls,
// and the last one ends with '\n' without being a whole frame. Treating
// that tail as a replayable "complete line" — which the pre-midLine
// implementation did — corrupts the stream with a fragment duplicate.
func TestDuplicateNeverReplaysSplitFrameTail(t *testing.T) {
	in := New(23, Profile{Rate: 1, GraceOps: -1, Scenarios: []Scenario{Duplicate}}, nil)
	fc, peer := chaosPipe(t, in)
	lines := lineCollector(peer)

	// One frame split across two writes, like bufio flushing a full
	// buffer chunk and then the remainder.
	if _, err := fc.Write([]byte("headheadhead")); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Write([]byte("tailtail\n")); err != nil {
		t.Fatal(err)
	}
	// A normal whole-line write afterwards is fair game for duplication.
	if _, err := fc.Write([]byte("small\n")); err != nil {
		t.Fatal(err)
	}
	fc.Close()
	counts := map[string]int{}
	for l := range lines {
		counts[l]++
	}
	if counts["headheadheadtailtail"] != 1 {
		t.Errorf("split frame delivered %d times, want exactly once: %v", counts["headheadheadtailtail"], counts)
	}
	for l := range counts {
		if l != "headheadheadtailtail" && l != "small" {
			t.Errorf("duplication corrupted the stream: unexpected line %q", l)
		}
	}
}

// TestDuplicateCapsReplayedLineSize: whole lines longer than
// maxReplayLine pass through exactly once and are never recorded for
// stale replay — a multi-hundred-run result_batch line must not be
// doubled on the wire.
func TestDuplicateCapsReplayedLineSize(t *testing.T) {
	in := New(29, Profile{Rate: 1, GraceOps: -1, Scenarios: []Scenario{Duplicate}}, nil)
	fc, peer := chaosPipe(t, in)
	lines := lineCollector(peer)

	big := strings.Repeat("b", maxReplayLine+100) + "\n"
	if _, err := fc.Write([]byte(big)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := fc.Write([]byte("little\n")); err != nil {
			t.Fatal(err)
		}
	}
	fc.Close()
	counts := map[string]int{}
	for l := range lines {
		counts[l]++
	}
	if n := counts[strings.TrimSuffix(big, "\n")]; n != 1 {
		t.Errorf("oversized line delivered %d times, want exactly once", n)
	}
	if counts["little"] < 5 {
		t.Errorf("no duplicate of the small lines at rate 1: %v", counts["little"])
	}
}

func TestStallHonoursReadDeadline(t *testing.T) {
	in := New(7, Profile{Rate: 1, GraceOps: -1, StallFor: 10 * time.Second, Scenarios: []Scenario{Stall}}, nil)
	fc, _ := chaosPipe(t, in)

	if err := fc.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := fc.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read returned %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall ignored the read deadline (took %v)", elapsed)
	}
}

func TestStallWithoutDeadlineKills(t *testing.T) {
	in := New(7, Profile{Rate: 1, GraceOps: -1, StallFor: 30 * time.Millisecond, Scenarios: []Scenario{Stall}}, nil)
	fc, _ := chaosPipe(t, in)
	_, err := fc.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("stall without a deadline should kill the connection")
	}
	if _, err := fc.Read(make([]byte, 1)); err == nil {
		t.Error("reads after a stall kill should fail")
	}
}

func TestRefuseDial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	reg := obs.NewRegistry()
	in := New(11, Profile{Rate: 1, Scenarios: []Scenario{Refuse}}, &obs.Observer{Metrics: reg})
	if _, err := in.Dial("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("rate-1 refuse profile should refuse every dial")
	}
	if v := reg.Counter(obs.MetricChaosRefusals).Value(); v == 0 {
		t.Error("refusal counter never incremented")
	}
}

func TestRefuseListener(t *testing.T) {
	in := New(13, Profile{Rate: 1, Scenarios: []Scenario{Refuse}}, nil)
	ln, err := in.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept() // blocks: every arrival is refused
		if err == nil {
			accepted <- c
		}
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// The refused connection is closed server-side: our read sees EOF.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("refused accept should close the connection")
	}
	select {
	case <-accepted:
		t.Fatal("rate-1 refuse profile surfaced a connection to Accept")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestCleanProfilePassesTrafficThrough(t *testing.T) {
	// Rate ~0 (tiny epsilon is impossible to hit in a few ops): wrapped
	// traffic must be byte-transparent.
	in := New(17, Profile{Rate: 1e-12, GraceOps: -1}, nil)
	fc, peer := chaosPipe(t, in)
	go fc.Write([]byte("hello\nworld\n"))
	buf := make([]byte, 12)
	peer.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(peer, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello\nworld\n" {
		t.Errorf("clean profile mangled traffic: %q", buf)
	}
}

func TestFaultCounters(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(19, Profile{Rate: 1, GraceOps: -1, Scenarios: []Scenario{Close}}, &obs.Observer{Metrics: reg})
	fc, _ := chaosPipe(t, in)
	fc.Write([]byte("x\n"))
	if v := reg.Counter(obs.MetricChaosConns).Value(); v != 1 {
		t.Errorf("conns counter = %d, want 1", v)
	}
	total := reg.Counter(obs.MetricChaosFaults).Value()
	if total == 0 {
		t.Error("fault counter never incremented")
	}
	// The per-kind labeled counter tracks the aggregate: all faults here
	// are Close, so the one labeled series carries the whole total.
	if v := reg.CounterL(obs.MetricChaosFaultsByKind, obs.Labels{"kind": Close.String()}).Value(); v != total {
		t.Errorf("fault{kind=close} = %d, want %d (the aggregate)", v, total)
	}
}
