// Package faultx injects deterministic, seeded transport faults into
// net.Conn / net.Listener pairs, so the distributed campaign layer
// (internal/dist) can be soak-tested under realistic network pathology
// — slow, lossy, and half-dead peers — with every chaos run reproducible
// from a single seed.
//
// Determinism model: an Injector derives one randx substream per
// connection, keyed by the connection's arrival index, and every fault
// decision on that connection is drawn sequentially from its stream. The
// fault *schedule* (which operation indices fault, and how) is therefore
// a pure function of (seed, profile, connection index, operation index);
// real goroutine interleaving still varies, but the dist layer's
// byte-identity contract must — and does — hold under any interleaving,
// which is exactly what the chaos soak test asserts.
//
// Faults never bypass the peer's liveness machinery: stalls honour the
// read/write deadlines set on the wrapped connection, so a deadline-
// bounded recv or send observes a timeout exactly as it would against a
// genuinely wedged kernel socket.
package faultx

import (
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/randx"
)

// Scenario is one kind of injected fault.
type Scenario uint8

const (
	// Delay sleeps before delivering an operation (slow link).
	Delay Scenario = iota
	// Stall freezes the connection for StallFor, honouring any deadline
	// set on it, then kills it (half-dead peer).
	Stall
	// Close abruptly closes the connection mid-stream.
	Close
	// Partial delivers a strict prefix of one write, then kills the
	// connection (truncated frame).
	Partial
	// Duplicate re-delivers a complete frame line — either the write in
	// flight (duplicate) or an earlier one (stale replay).
	Duplicate
	// Refuse rejects the connection at dial or accept time.
	Refuse

	numScenarios
)

var scenarioNames = [numScenarios]string{
	Delay: "delay", Stall: "stall", Close: "close",
	Partial: "partial", Duplicate: "dup", Refuse: "refuse",
}

func (s Scenario) String() string {
	if int(s) < len(scenarioNames) {
		return scenarioNames[s]
	}
	return fmt.Sprintf("scenario(%d)", uint8(s))
}

// Scenarios lists every fault kind, in declaration order.
func Scenarios() []Scenario {
	out := make([]Scenario, numScenarios)
	for i := range out {
		out[i] = Scenario(i)
	}
	return out
}

// Profile configures which faults an Injector may fire and how hard.
// The zero value of every field selects a usable default.
type Profile struct {
	// Scenarios are the enabled fault kinds (empty = all).
	Scenarios []Scenario
	// Rate is the per-operation fault probability in [0,1] (0 = 0.1).
	Rate float64
	// MaxDelay bounds Delay sleeps (0 = 10ms).
	MaxDelay time.Duration
	// StallFor is how long Stall freezes a connection before killing it
	// (0 = 250ms). A deadline on the connection still fires first.
	StallFor time.Duration
	// GraceOps is the number of fault-free operations at the start of
	// every connection (<0 = none, 0 = 2), enough to let the hello
	// exchange through so chaos exercises steady-state paths too.
	GraceOps int
}

func (p Profile) rate() float64 {
	if p.Rate <= 0 {
		return 0.1
	}
	if p.Rate > 1 {
		return 1
	}
	return p.Rate
}

func (p Profile) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 10 * time.Millisecond
	}
	return p.MaxDelay
}

func (p Profile) stallFor() time.Duration {
	if p.StallFor <= 0 {
		return 250 * time.Millisecond
	}
	return p.StallFor
}

func (p Profile) graceOps() int {
	if p.GraceOps < 0 {
		return 0
	}
	if p.GraceOps == 0 {
		return 2
	}
	return p.GraceOps
}

// ProfileFor returns a Profile enabling exactly the given scenarios.
func ProfileFor(scenarios ...Scenario) Profile {
	return Profile{Scenarios: scenarios}
}

// ParseProfile parses a comma-separated scenario list ("delay,stall"),
// with "all" (or "") enabling every scenario. It is the -chaos-profile
// flag syntax.
func ParseProfile(s string) (Profile, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return Profile{Scenarios: Scenarios()}, nil
	}
	var p Profile
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, sc := range Scenarios() {
			if sc.String() == name {
				p.Scenarios = append(p.Scenarios, sc)
				found = true
				break
			}
		}
		if !found {
			return Profile{}, fmt.Errorf("faultx: unknown scenario %q (want one of all,%s)",
				name, strings.Join(scenarioNameList(), ","))
		}
	}
	if len(p.Scenarios) == 0 {
		return Profile{}, errors.New("faultx: empty scenario list")
	}
	return p, nil
}

func scenarioNameList() []string {
	out := make([]string, numScenarios)
	for i, s := range Scenarios() {
		out[i] = s.String()
	}
	return out
}

// errRefused marks a connection the injector refused outright.
var errRefused = errors.New("faultx: connection refused by fault injector")

// errKilled marks a connection a fault tore down mid-stream.
var errKilled = errors.New("faultx: connection killed by fault injector")

// Injector wraps dialers and listeners with a seeded fault schedule.
// One Injector models one unreliable network vantage point; share it
// across connections so every connection gets its own substream.
type Injector struct {
	prof Profile
	root *randx.Rand
	seq  atomic.Uint64
	o    *obs.Observer

	// Enabled scenario subsets per direction, computed once.
	readFaults  []Scenario
	writeFaults []Scenario
	refuse      bool
}

// New builds an Injector whose fault schedule is fully determined by
// seed and prof. o receives chaos counters and events; nil disables.
func New(seed uint64, prof Profile, o *obs.Observer) *Injector {
	in := &Injector{prof: prof, root: randx.New(seed), o: o}
	enabled := prof.Scenarios
	if len(enabled) == 0 {
		enabled = Scenarios()
	}
	for _, s := range enabled {
		switch s {
		case Delay, Stall, Close:
			in.readFaults = append(in.readFaults, s)
			in.writeFaults = append(in.writeFaults, s)
		case Partial, Duplicate:
			in.writeFaults = append(in.writeFaults, s)
		case Refuse:
			in.refuse = true
		}
	}
	return in
}

// nextStream derives the substream for the next connection.
func (in *Injector) nextStream() *randx.Rand {
	return in.root.Split(in.seq.Add(1))
}

// refused draws the connect-refusal decision from a connection's stream.
func (in *Injector) refused(rng *randx.Rand) bool {
	if !in.refuse {
		return false
	}
	return rng.Float64() < in.prof.rate()
}

func (in *Injector) countFault(s Scenario, op string) {
	in.o.M().Counter(obs.MetricChaosFaults).Inc()
	in.o.M().CounterL(obs.MetricChaosFaultsByKind, obs.Labels{"kind": s.String()}).Inc()
	in.o.T().Event("faultx.fault", obs.Str("kind", s.String()), obs.Str("op", op))
}

// Dial has the signature of dist.Coordinator.Dial: it refuses a
// deterministic fraction of connection attempts and wraps the rest with
// this injector's per-connection fault schedule.
func (in *Injector) Dial(network, address string, timeout time.Duration) (net.Conn, error) {
	rng := in.nextStream()
	if in.refused(rng) {
		in.o.M().Counter(obs.MetricChaosRefusals).Inc()
		in.o.T().Event("faultx.refuse", obs.Str("addr", address))
		return nil, &net.OpError{Op: "dial", Net: network, Err: errRefused}
	}
	nc, err := net.DialTimeout(network, address, timeout)
	if err != nil {
		return nil, err
	}
	return in.wrap(nc, rng), nil
}

// Listen has the signature of dist.Worker.ListenFunc: accepted
// connections are wrapped with per-connection fault schedules, and a
// deterministic fraction is closed on arrival (refused).
func (in *Injector) Listen(network, address string) (net.Listener, error) {
	ln, err := net.Listen(network, address)
	if err != nil {
		return nil, err
	}
	return &listener{Listener: ln, in: in}, nil
}

// Wrap applies this injector's fault schedule to an existing connection
// (refusal does not apply; the connection already exists).
func (in *Injector) Wrap(nc net.Conn) net.Conn {
	return in.wrap(nc, in.nextStream())
}

func (in *Injector) wrap(nc net.Conn, rng *randx.Rand) *faultConn {
	in.o.M().Counter(obs.MetricChaosConns).Inc()
	return &faultConn{nc: nc, in: in, rng: rng, closed: make(chan struct{})}
}

// listener wraps Accept with refusal and connection wrapping.
type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		nc, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		rng := l.in.nextStream()
		if l.in.refused(rng) {
			l.in.o.M().Counter(obs.MetricChaosRefusals).Inc()
			l.in.o.T().Event("faultx.refuse", obs.Str("addr", nc.RemoteAddr().String()))
			nc.Close()
			continue
		}
		return l.in.wrap(nc, rng), nil
	}
}

// faultPlan is one drawn fault decision, with any randomness the fault
// needs pre-drawn so the schedule stays a pure function of op index.
type faultPlan struct {
	kind  Scenario
	fire  bool
	delay time.Duration // Delay
	frac  float64       // Partial cut point in (0,1)
	stale bool          // Duplicate: replay the previous line, not this one
}

// faultConn wraps a net.Conn with the injector's per-connection fault
// schedule. Decisions are drawn under mu; blocking work (sleeps, stalls,
// underlying IO) happens outside it so reads and writes don't serialize.
type faultConn struct {
	nc net.Conn
	in *Injector

	mu       sync.Mutex
	rng      *randx.Rand
	ops      int
	lastLine []byte // last complete frame line written, for stale replay
	// midLine is true while the stream sits inside a frame line: the last
	// byte written was not '\n'. A frame larger than the sender's buffer
	// arrives as several Write calls, and only the first begins at a line
	// boundary — its newline-terminated tail must never be mistaken for a
	// complete frame and replayed.
	midLine  bool
	rdl, wdl time.Time

	closeOnce sync.Once
	closed    chan struct{}
	dead      atomic.Bool
}

// decide draws the next fault decision from the connection's stream.
func (c *faultConn) decide(faults []Scenario) faultPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	if c.ops <= c.in.prof.graceOps() || len(faults) == 0 {
		return faultPlan{}
	}
	if c.rng.Float64() >= c.in.prof.rate() {
		return faultPlan{}
	}
	p := faultPlan{fire: true, kind: faults[c.rng.Intn(len(faults))]}
	switch p.kind {
	case Delay:
		p.delay = time.Duration(c.rng.Float64() * float64(c.in.prof.maxDelay()))
	case Partial:
		p.frac = c.rng.Float64()
	case Duplicate:
		p.stale = c.rng.Bernoulli(0.5)
	}
	return p
}

// kill tears the connection down as a fault consequence.
func (c *faultConn) kill() {
	c.dead.Store(true)
	c.closeOnce.Do(func() {
		close(c.closed)
		c.nc.Close()
	})
}

// stallWait freezes the connection, honouring deadline: if the deadline
// fires first the connection survives and a timeout error is returned;
// otherwise the stall runs its course and the connection is killed.
func (c *faultConn) stallWait(deadline time.Time) error {
	stall := c.in.prof.stallFor()
	if !deadline.IsZero() {
		if until := time.Until(deadline); until < stall {
			if until > 0 {
				t := time.NewTimer(until)
				defer t.Stop()
				select {
				case <-t.C:
				case <-c.closed:
					return net.ErrClosed
				}
			}
			return os.ErrDeadlineExceeded
		}
	}
	t := time.NewTimer(stall)
	defer t.Stop()
	select {
	case <-t.C:
		c.kill()
		return errKilled
	case <-c.closed:
		return net.ErrClosed
	}
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.dead.Load() {
		return 0, errKilled
	}
	plan := c.decide(c.in.readFaults)
	if plan.fire {
		c.in.countFault(plan.kind, "read")
		switch plan.kind {
		case Delay:
			time.Sleep(plan.delay)
		case Stall:
			c.mu.Lock()
			dl := c.rdl
			c.mu.Unlock()
			return 0, c.stallWait(dl)
		case Close:
			c.kill()
			return 0, errKilled
		}
	}
	return c.nc.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.dead.Load() {
		return 0, errKilled
	}
	plan := c.decide(c.in.writeFaults)
	if plan.fire {
		c.in.countFault(plan.kind, "write")
		switch plan.kind {
		case Delay:
			time.Sleep(plan.delay)
		case Stall:
			c.mu.Lock()
			dl := c.wdl
			c.mu.Unlock()
			return 0, c.stallWait(dl)
		case Close:
			c.kill()
			return 0, errKilled
		case Partial:
			if len(p) >= 2 {
				k := 1 + int(plan.frac*float64(len(p)-1))
				if k >= len(p) {
					k = len(p) - 1
				}
				n, _ := c.nc.Write(p[:k])
				c.kill()
				return n, errKilled
			}
			c.kill()
			return 0, errKilled
		case Duplicate:
			return c.writeDuplicated(p, plan.stale)
		}
	}
	n, err := c.nc.Write(p)
	if err == nil {
		c.noteWrite(p)
	}
	return n, err
}

// maxReplayLine caps the line a Duplicate fault may buffer and replay.
// Batched result_batch frames (protocol v3) can run to hundreds of KB;
// replaying one wholesale would double the hot path's traffic and pin
// large buffers, and a long duplicate exercises nothing a short one
// doesn't. Oversized lines pass through unfaulted.
const maxReplayLine = 8 << 10

// writeDuplicated delivers p and then replays a complete frame line —
// the one just written, or an earlier one (stale replay). The replay
// fires only when p is one whole boundary-aligned line no longer than
// maxReplayLine: duplicating a fragment — including the newline-
// terminated *tail* of a frame that outgrew the sender's buffer and
// arrived split across writes — would corrupt the stream rather than
// exercise the peer's duplicate/stale-frame handling.
func (c *faultConn) writeDuplicated(p []byte, stale bool) (int, error) {
	var replay []byte
	c.mu.Lock()
	if !c.midLine && completeLine(p) && len(p) <= maxReplayLine {
		if stale && c.lastLine != nil {
			// Copy: lastLine's buffer is reused by later notes, and the
			// replay write happens outside the lock.
			replay = append([]byte(nil), c.lastLine...)
		} else {
			replay = p
		}
	}
	c.mu.Unlock()
	n, err := c.nc.Write(p)
	if err != nil {
		return n, err
	}
	if replay != nil {
		c.nc.Write(replay)
	}
	c.noteWrite(p)
	return n, nil
}

// completeLine reports whether b is exactly one newline-terminated
// frame, the unit the JSONL protocol can absorb as a duplicate.
func completeLine(b []byte) bool {
	if len(b) == 0 || b[len(b)-1] != '\n' {
		return false
	}
	for _, ch := range b[:len(b)-1] {
		if ch == '\n' {
			return false
		}
	}
	return true
}

// noteWrite tracks line framing across writes: whether the stream now
// sits mid-line, and — when p was one whole boundary-aligned line
// within the replay cap — remembers it for stale replay.
func (c *faultConn) noteWrite(p []byte) {
	if len(p) == 0 {
		return
	}
	c.mu.Lock()
	if !c.midLine && completeLine(p) && len(p) <= maxReplayLine {
		c.lastLine = append(c.lastLine[:0], p...)
	}
	c.midLine = p[len(p)-1] != '\n'
	c.mu.Unlock()
}

func (c *faultConn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.nc.Close()
	})
	return err
}

func (c *faultConn) LocalAddr() net.Addr  { return c.nc.LocalAddr() }
func (c *faultConn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

func (c *faultConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl, c.wdl = t, t
	c.mu.Unlock()
	return c.nc.SetDeadline(t)
}

func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl = t
	c.mu.Unlock()
	return c.nc.SetReadDeadline(t)
}

func (c *faultConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdl = t
	c.mu.Unlock()
	return c.nc.SetWriteDeadline(t)
}
