package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitOrderIndependence(t *testing.T) {
	r1 := New(7)
	r2 := New(7)
	// Splitting id 5 must give the same stream regardless of other splits.
	_ = r1.Split(3)
	a := r1.Split(5)
	b := r2.Split(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams diverged at step %d", i)
		}
	}
}

func TestSplitStreamsDecorrelated(t *testing.T) {
	r := New(99)
	a := r.Split(1)
	b := r.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("sibling splits produced %d collisions in 1000 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(4)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("Intn bucket %d count %d deviates >5%% from %g", k, c, want)
		}
	}
}

func TestIntnPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniformIntInclusiveBounds(t *testing.T) {
	r := New(5)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.UniformInt(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
		if v == 3 {
			seenLo = true
		}
		if v == 7 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Error("UniformInt never hit an endpoint in 10000 draws")
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	varr := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %g, want ≈10", mean)
	}
	if math.Abs(varr-4) > 0.15 {
		t.Errorf("Normal variance = %g, want ≈4", varr)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(0.5)
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Errorf("Exponential(0.5) mean = %g, want ≈2", mean)
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(8)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %g", rate)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(1.5, 2); v < 1.5 {
			t.Fatalf("Pareto below xm: %g", v)
		}
	}
}

func TestPermIsPermutationProperty(t *testing.T) {
	f := func(seed uint64, nr uint8) bool {
		n := int(nr%50) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(11)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Errorf("Shuffle changed multiset sum: %d != %d", got, sum)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(12)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		k := z.Next()
		if k < 0 || k >= 100 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[50] {
		t.Error("Zipf head not heavier than middle")
	}
	if counts[0] <= counts[99] {
		t.Error("Zipf head not heavier than tail")
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(r, 0, s) should panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestMul64AgainstBigProducts(t *testing.T) {
	// Spot-check against values computable exactly: (2^32)(2^32) = 2^64.
	hi, lo := mul64(1<<32, 1<<32)
	if hi != 1 || lo != 0 {
		t.Errorf("mul64(2^32,2^32) = (%d,%d), want (1,0)", hi, lo)
	}
	hi, lo = mul64(0xffffffffffffffff, 2)
	if hi != 1 || lo != 0xfffffffffffffffe {
		t.Errorf("mul64(max,2) = (%d,%#x)", hi, lo)
	}
	hi, lo = mul64(123456789, 987654321)
	if hi != 0 || lo != 123456789*987654321 {
		t.Errorf("small mul64 wrong: (%d,%d)", hi, lo)
	}
}

func TestLogNormalPositiveAndMedian(t *testing.T) {
	r := New(13)
	const n = 100000
	belowMedian := 0
	for i := 0; i < n; i++ {
		v := r.LogNormal(1.5, 0.5)
		if v <= 0 {
			t.Fatal("LogNormal must be positive")
		}
		if v < math.Exp(1.5) {
			belowMedian++
		}
	}
	// The median of LogNormal(mu, sigma) is e^mu.
	if frac := float64(belowMedian) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below e^mu = %.3f, want ≈0.5", frac)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exponential(0) should panic")
		}
	}()
	New(1).Exponential(0)
}

func TestParetoPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pareto with bad params should panic")
		}
	}()
	New(1).Pareto(0, 1)
}

func TestUniformIntPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UniformInt(5,3) should panic")
		}
	}()
	New(1).UniformInt(5, 3)
}

func TestUniformRange(t *testing.T) {
	r := New(21)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}
