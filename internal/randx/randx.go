// Package randx provides the deterministic pseudo-random number generation
// used everywhere in the repository. Reproducibility is a core requirement of
// the paper's methodology (Sec. 5.2: "Each execution itself is deterministic,
// with the sequence of random numbers determined by a seed that we input"),
// so every simulator run, variability injection, and statistical trial draws
// from an explicitly seeded generator from this package, never from global
// state.
//
// The generator is xoshiro256** seeded through SplitMix64, the standard
// recommendation for initializing xoshiro state. Streams can be split
// hierarchically with Split, which lets a single campaign seed derive
// independent per-run, per-component generators without correlation between
// sibling streams.
package randx

import (
	"math"
	"sync"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding and for stream derivation.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator. The zero value is NOT
// valid; construct with New.
type Rand struct {
	s [4]uint64
	// gauss caches the second variate of the Box–Muller pair.
	gauss    float64
	hasGauss bool
}

// New returns a generator seeded from the given 64-bit seed. Two generators
// constructed with the same seed produce identical sequences.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro requires a nonzero state; SplitMix64 cannot produce four
	// zeros from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new independent generator from this one, keyed by id.
// Splitting with distinct ids yields decorrelated streams; the parent's
// state is not advanced, so splits are order-independent:
// r.Split(a) is the same regardless of prior r.Split(b) calls.
func (r *Rand) Split(id uint64) *Rand {
	child := &Rand{}
	r.SplitInto(id, child)
	return child
}

// SplitInto reinitializes child to exactly the generator Split(id) would
// return, without allocating. Hot loops that derive one substream per work
// item (e.g. per bootstrap resample) reuse a single stack-allocated Rand
// this way. It only reads the parent's initial state, so concurrent
// SplitInto calls on a shared parent are safe.
func (r *Rand) SplitInto(id uint64, child *Rand) {
	// Mix the parent's initial state with the id through SplitMix64.
	sm := r.s[0] ^ (id * 0xd1342543de82ef95)
	for i := range child.s {
		child.s[i] = splitMix64(&sm)
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = 0x9e3779b97f4a7c15
	}
	child.gauss = 0
	child.hasGauss = false
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// UniformInt returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *Rand) UniformInt(lo, hi int) int {
	if hi < lo {
		panic("randx: UniformInt with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Normal returns a normal variate with the given mean and standard
// deviation, via Box–Muller with caching of the paired variate.
func (r *Rand) Normal(mean, sd float64) float64 {
	if r.hasGauss {
		r.hasGauss = false
		return mean + sd*r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return mean + sd*u*f
}

// Exponential returns an exponential variate with the given rate λ > 0.
func (r *Rand) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("randx: Exponential with non-positive rate")
	}
	// 1-Float64() is in (0,1], so the log is finite.
	return -math.Log(1-r.Float64()) / rate
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto(xm, alpha) variate (heavy-tailed, xm minimum).
func (r *Rand) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("randx: Pareto with non-positive parameter")
	}
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf returns integers in [0, n) following an approximate Zipf(s)
// distribution, used by workload generators for skewed address streams.
// It uses inverse-CDF sampling over a precomputed table; build the table
// once with NewZipf.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// zipfCDFCache memoizes CDF tables by (n, s). The table is a pure function
// of its key — no randomness is drawn while building it — and is read-only
// after construction, so sharing one copy across samplers (and goroutines)
// yields bit-identical draws while skipping the O(n) math.Pow loop that
// would otherwise run on every workload build.
var zipfCDFCache sync.Map // zipfCDFKey → []float64

type zipfCDFKey struct {
	n int
	s float64
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s > 0 drawing
// randomness from r.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("randx: NewZipf with non-positive n")
	}
	key := zipfCDFKey{n: n, s: s}
	if cached, ok := zipfCDFCache.Load(key); ok {
		return &Zipf{cdf: cached.([]float64), r: r}
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	zipfCDFCache.Store(key, cdf)
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next Zipf-distributed integer.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	// Binary search for the first index with cdf ≥ u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] >= u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
