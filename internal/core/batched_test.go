package core

import (
	"errors"
	"testing"

	"repro/internal/randx"
	"repro/internal/smc"
)

// bernoulliMetric yields 1.0 with probability p and 0.0 otherwise,
// deterministically per seed.
func bernoulliMetric(p float64) RunFunc {
	return func(seed uint64) (float64, error) {
		if randx.New(seed).Bernoulli(p) {
			return 1, nil
		}
		return 0, nil
	}
}

func isOne(v float64) bool { return v == 1 }

func TestCheckBatchedMatchesSequential(t *testing.T) {
	// The batched loop must return the exact verdict and sample count of
	// the strictly sequential Algorithm 1 over the same seed order.
	run := bernoulliMetric(0.97)
	p := Params{F: 0.9, C: 0.9}

	seq := uint64(0)
	sampler := smc.SamplerFunc(func() (bool, error) {
		v, err := run(seq)
		seq++
		return isOne(v), err
	})
	want, err := smc.CheckSequential(sampler, p.F, p.C, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, batch := range []int{1, 4, 7, 32} {
		got, err := CheckBatched(run, isOne, p, Options{Batch: batch})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if got.Assertion != want.Assertion || got.Samples != want.Samples || got.Satisfied != want.Satisfied {
			t.Errorf("batch %d: %+v differs from sequential %+v", batch, got.Result, want)
		}
		if got.Launched < got.Samples || got.Launched >= got.Samples+batch {
			t.Errorf("batch %d: launched %d outside [samples, samples+batch): %d",
				batch, got.Launched, got.Samples)
		}
	}
}

func TestCheckBatchedClearNegative(t *testing.T) {
	got, err := CheckBatched(bernoulliMetric(0.05), isOne, Params{F: 0.9, C: 0.9}, Options{Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Assertion != smc.Negative {
		t.Errorf("p=0.05 vs F=0.9 should assert negative, got %+v", got.Result)
	}
	if got.Samples > 8 {
		t.Errorf("clear negative should converge fast, used %d samples", got.Samples)
	}
}

func TestCheckBatchedBudget(t *testing.T) {
	// p exactly at F never converges; the budget must surface.
	res, err := CheckBatched(bernoulliMetric(0.9), isOne, Params{F: 0.9, C: 0.9999}, Options{Batch: 8, Samples: 24})
	if !errors.Is(err, smc.ErrSampleBudget) {
		t.Fatalf("want budget error, got %v", err)
	}
	if res.Launched != 24 || res.Assertion != smc.Inconclusive {
		t.Errorf("partial result %+v", res)
	}
}

func TestCheckBatchedValidation(t *testing.T) {
	p := Params{F: 0.9, C: 0.9}
	if _, err := CheckBatched(nil, isOne, p, Options{}); err == nil {
		t.Error("nil run should error")
	}
	if _, err := CheckBatched(bernoulliMetric(0.5), nil, p, Options{}); err == nil {
		t.Error("nil predicate should error")
	}
	if _, err := CheckBatched(bernoulliMetric(0.5), isOne, Params{F: 2, C: 0.9}, Options{}); err == nil {
		t.Error("bad params should error")
	}
	boom := errors.New("boom")
	bad := func(uint64) (float64, error) { return 0, boom }
	if _, err := CheckBatched(bad, isOne, p, Options{}); !errors.Is(err, boom) {
		t.Errorf("run error should propagate, got %v", err)
	}
}
