package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/smc"
	"repro/internal/stats"
)

// ConfidenceIntervalSweep builds the SPA confidence interval with the
// paper's granularity-based search (Sec. 4.2): start from an initial
// estimate V0 of the metric, step outward by the granularity, and rerun the
// fixed-sample SMC test at each threshold until the boundary thresholds of
// the non-converged band are found. No new executions are needed — every
// test reuses the same sample set (Sec. 4.1).
//
// The exact construction in ConfidenceInterval is the granularity→0 limit
// of this search and is preferred; the sweep is retained because it
// reproduces the paper's procedure literally (and the ablation benchmark
// compares the two). The returned interval's endpoints are grid points, so
// they differ from the exact interval by at most one granularity step.
func ConfidenceIntervalSweep(samples []float64, p Params) (stats.Interval, error) {
	if err := p.validate(); err != nil {
		return stats.Interval{}, err
	}
	if len(samples) == 0 {
		return stats.Interval{}, fmt.Errorf("%w: empty sample", ErrInsufficientSamples)
	}
	// Surface the insufficient-samples case exactly like the exact
	// construction (the sweep below would otherwise walk to its scan limit
	// and return a meaningless interval).
	if _, _, err := convergenceBounds(len(samples), p.F, p.sideLevel()); err != nil {
		return stats.Interval{}, err
	}
	// Each per-threshold test must converge at the composition's per-side
	// level so the sweep agrees with the exact construction.
	side := p
	side.C = p.sideLevel()
	side.Composition = PerSideC

	// One sort up front serves the walk's satisfied counts (binary search
	// per step), the extrema, and the initial estimate.
	sorted := append([]float64(nil), samples...)
	stats.SortFloats(sorted)

	lo, hi := sorted[0], sorted[len(sorted)-1]
	g := p.Granularity
	if g <= 0 {
		if hi > lo {
			g = (hi - lo) / 1000
		} else {
			// Degenerate constant sample: any positive step works.
			g = math.Max(math.Abs(lo)*1e-6, 1e-9)
		}
	}

	// V0: the empirical value at the proportion of interest.
	v0 := initialEstimate(sorted, p)

	n := len(sorted)
	test := func(v float64) smc.Assertion {
		var m int
		if p.Direction == AtLeast {
			m = n - sort.Search(n, func(j int) bool { return sorted[j] >= v })
		} else {
			m = sort.Search(n, func(j int) bool { return sorted[j] > v })
		}
		a, conf := smc.Confidence(m, n, side.F)
		if conf < side.C {
			return smc.Inconclusive
		}
		return a
	}

	// For AtMost, the assertion is monotone in v: Negative for small
	// thresholds, then None, then Positive. For AtLeast the direction is
	// mirrored. Normalize to the AtMost orientation for the walk.
	dirUp := smc.Positive
	dirDown := smc.Negative
	if p.Direction == AtLeast {
		dirUp, dirDown = dirDown, dirUp
	}

	// Walk upward to the smallest grid threshold asserting dirUp, and
	// downward to the largest asserting dirDown. The walk is bounded well
	// beyond the sample range, where the assertions are guaranteed (the
	// convergenceBounds precondition above ensures both sides converge).
	span := hi - lo + g
	maxSteps := int(span/g) + 2

	upper := math.NaN()
	for i := 0; i <= maxSteps; i++ {
		v := v0 + float64(i)*g
		if test(v) == dirUp {
			upper = v
			break
		}
	}
	lower := math.NaN()
	for i := 0; i <= maxSteps; i++ {
		v := v0 - float64(i)*g
		if test(v) == dirDown {
			lower = v
			break
		}
	}
	if math.IsNaN(upper) || math.IsNaN(lower) {
		return stats.Interval{}, fmt.Errorf("%w: sweep did not bracket the None band (granularity %g)",
			ErrInsufficientSamples, g)
	}
	// The paper reports [V_lower, V_upper]: the boundary thresholds at
	// which the two opposing assertions first converge.
	return stats.Interval{Lo: lower, Hi: upper}, nil
}

// initialEstimate picks V0 for the sweep: the empirical sample value at the
// proportion the property targets, which always lies inside or adjacent to
// the None band. The sample must already be sorted ascending.
func initialEstimate(sorted []float64, p Params) float64 {
	f := p.F
	if p.Direction == AtLeast {
		f = 1 - p.F
		if f <= 0 {
			f = math.SmallestNonzeroFloat64
		}
	}
	if f > 1 {
		f = 1
	}
	return stats.QuantileSorted(sorted, f)
}
