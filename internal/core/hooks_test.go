package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCollectHooksFire(t *testing.T) {
	var started, done atomic.Int64
	var mu sync.Mutex
	seen := map[uint64]float64{}
	h := Hooks{
		OnRunStart: func(seed uint64) { started.Add(1) },
		OnRunDone: func(seed uint64, v float64, err error, elapsed time.Duration) {
			done.Add(1)
			if err != nil {
				t.Errorf("unexpected run error: %v", err)
			}
			if elapsed < 0 {
				t.Errorf("negative elapsed %v", elapsed)
			}
			mu.Lock()
			seen[seed] = v
			mu.Unlock()
		},
	}
	out, err := CollectHooks(metricRun, 100, 20, 4, h)
	if err != nil {
		t.Fatal(err)
	}
	if started.Load() != 20 || done.Load() != 20 {
		t.Errorf("hooks fired %d/%d times, want 20/20", started.Load(), done.Load())
	}
	for i, v := range out {
		if got, ok := seen[100+uint64(i)]; !ok || got != v {
			t.Errorf("seed %d: hook saw %g (present %v), Collect returned %g", 100+i, got, ok, v)
		}
	}
}

func TestCollectJoinsAllErrors(t *testing.T) {
	boom := errors.New("boom")
	run := func(seed uint64) (float64, error) {
		if seed == 3 || seed == 7 {
			return 0, fmt.Errorf("seed-specific: %w", boom)
		}
		return float64(seed), nil
	}
	_, err := Collect(run, 0, 10, 2)
	if !errors.Is(err, boom) {
		t.Fatalf("joined error must preserve Is: %v", err)
	}
	msg := err.Error()
	for _, frag := range []string{"seed 3", "seed 7"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("aggregate error missing %q: %v", frag, msg)
		}
	}
}

func TestCheckBatchedHooks(t *testing.T) {
	var done atomic.Int64
	opts := Options{
		Batch: 4, BaseSeed: 50,
		Hooks: Hooks{OnRunDone: func(seed uint64, v float64, err error, _ time.Duration) {
			if seed < 50 {
				t.Errorf("hook saw seed %d below BaseSeed", seed)
			}
			done.Add(1)
		}},
	}
	res, err := CheckBatched(metricRun, func(v float64) bool { return v >= 0 }, Params{F: 0.8, C: 0.9}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if int(done.Load()) != res.Launched {
		t.Errorf("hook fired %d times, launched %d", done.Load(), res.Launched)
	}
}

func TestAnalyzeToWidthHooks(t *testing.T) {
	var runs atomic.Int64
	var rounds atomic.Int64
	w := WidthOptions{
		TargetWidth: 1e9, // satisfied on the first round
		BaseSeed:    1000,
		Hooks: Hooks{
			OnRunDone: func(seed uint64, v float64, err error, _ time.Duration) {
				if seed < 1000 {
					t.Errorf("hook saw relative seed %d; want campaign-absolute", seed)
				}
				runs.Add(1)
			},
			OnRound: func(samples int, width float64) {
				rounds.Add(1)
				if samples <= 0 || width < 0 {
					t.Errorf("round reported samples=%d width=%g", samples, width)
				}
			},
		},
	}
	a, err := AnalyzeToWidth(metricRun, Params{F: 0.5, C: 0.9}, w)
	if err != nil {
		t.Fatal(err)
	}
	if int(runs.Load()) != len(a.Samples) {
		t.Errorf("hook fired %d times for %d samples", runs.Load(), len(a.Samples))
	}
	if rounds.Load() == 0 {
		t.Error("OnRound never fired")
	}
}

// BenchmarkCollectHooksOverhead guards the tentpole constraint: disabled
// hooks must add no measurable overhead to the hot RunFunc path. Compare
// the disabled case against baseline; they should be within noise.
func BenchmarkCollectHooksOverhead(b *testing.B) {
	run := func(seed uint64) (float64, error) {
		// A cheap deterministic stand-in for a simulation.
		x := seed
		for i := 0; i < 64; i++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
		return float64(x % 1000), nil
	}
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Collect(run, 1, 64, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hooks-disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := CollectHooks(run, 1, 64, 8, Hooks{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hooks-enabled", func(b *testing.B) {
		var n atomic.Int64
		h := Hooks{OnRunDone: func(uint64, float64, error, time.Duration) { n.Add(1) }}
		for i := 0; i < b.N; i++ {
			if _, err := CollectHooks(run, 1, 64, 8, h); err != nil {
				b.Fatal(err)
			}
		}
	})
}
