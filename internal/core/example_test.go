package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/randx"
)

// The SPA confidence interval: with 90% confidence, 90% of executions have
// a metric value at most the interval's upper bound and the interval pins
// the F = 0.9 population value.
func ExampleConfidenceInterval() {
	r := randx.New(1)
	samples := make([]float64, 29) // SPA's two-sided minimum at F=C=0.9
	for i := range samples {
		samples[i] = 100 + r.Normal(0, 5)
	}
	iv, _ := core.ConfidenceInterval(samples, core.Params{F: 0.9, C: 0.9})
	fmt.Println(iv.Lo < iv.Hi, iv.Contains(106))
	// Output: true true
}

// A direct hypothesis test (property template 1): is the metric at most
// 1.1 for at least 80% of executions?
func ExampleHypothesisTest() {
	samples := []float64{1.0, 1.02, 1.05, 1.01, 1.03, 1.04, 1.02, 1.06, 1.03, 1.01, 1.05, 1.02}
	res, _ := core.HypothesisTest(samples, 1.1, core.Params{F: 0.8, C: 0.9})
	fmt.Printf("%s (%d/%d)\n", res.Assertion, res.Satisfied, res.Samples)
	// Output: positive (12/12)
}

// CIMinSamples reports how many executions a campaign must run before a
// confidence interval can exist at all.
func ExampleCIMinSamples() {
	n, _ := core.CIMinSamples(core.Params{F: 0.9, C: 0.9})
	paper, _ := core.CIMinSamples(core.Params{F: 0.9, C: 0.9, Composition: core.PerSideC})
	fmt.Println(n, paper)
	// Output: 29 22
}
