package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// RunFunc executes one experiment (typically a simulation) with the given
// seed and returns the metric of interest. Implementations must be safe for
// concurrent use: SPA launches batches of executions in parallel
// (Sec. 4.3). Determinism is the caller's contract — the same seed must
// yield the same metric — which is what makes SPA campaigns replicable.
type RunFunc func(seed uint64) (float64, error)

// Collect runs n executions with seeds baseSeed+0 … baseSeed+n−1, at most
// batch at a time in parallel (batch ≤ 0 means fully parallel), and returns
// the metrics ordered by seed offset. The ordering guarantee means the
// result is independent of goroutine scheduling, preserving replicability.
// Execution errors are aggregated with errors.Join after the batch drains,
// so a multi-seed failure surfaces every failing seed in one pass.
func Collect(run RunFunc, baseSeed uint64, n, batch int) ([]float64, error) {
	return CollectHooks(run, baseSeed, n, batch, Hooks{})
}

// CollectHooks is Collect with per-execution observability callbacks; see
// Hooks. Zero hooks take the exact Collect fast path.
//
// Concurrency is a fixed pool of batch goroutines pulling seed offsets
// from a channel — not one goroutine per sample — so a campaign of
// thousands of runs with a small batch allocates batch stacks, not
// thousands. Results land at their seed offset, preserving the ordering
// guarantee regardless of which pool worker ran which seed.
func CollectHooks(run RunFunc, baseSeed uint64, n, batch int, h Hooks) ([]float64, error) {
	if run == nil {
		return nil, errors.New("core: nil RunFunc")
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: non-positive sample count %d", n)
	}
	if batch <= 0 || batch > n {
		batch = n
	}
	out := make([]float64, n)
	observed := h.enabled()
	idx := make(chan int)
	// Failures are the exception, so they are gathered lazily under a mutex
	// rather than in a per-call []error of length n: the happy path of a
	// campaign round allocates only the sample slice itself. The seed-offset
	// sort keeps the joined error deterministic regardless of which worker
	// hit which failure first.
	var (
		errMu    sync.Mutex
		failures []seedErr
	)
	var wg sync.WaitGroup
	wg.Add(batch)
	for w := 0; w < batch; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				seed := baseSeed + uint64(i)
				var err error
				if observed {
					if h.OnRunStart != nil {
						h.OnRunStart(seed)
					}
					start := time.Now()
					out[i], err = run(seed)
					if h.OnRunDone != nil {
						h.OnRunDone(seed, out[i], err, time.Since(start))
					}
				} else {
					out[i], err = run(seed)
				}
				if err != nil {
					errMu.Lock()
					failures = append(failures, seedErr{i: i, err: err})
					errMu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if len(failures) > 0 {
		sort.Slice(failures, func(a, b int) bool { return failures[a].i < failures[b].i })
		joined := make([]error, len(failures))
		for k, f := range failures {
			joined[k] = fmt.Errorf("core: execution with seed %d: %w", baseSeed+uint64(f.i), f.err)
		}
		return nil, errors.Join(joined...)
	}
	return out, nil
}

// seedErr pairs a failed execution's seed offset with its error so joined
// failures report in seed order.
type seedErr struct {
	i   int
	err error
}

// Analysis is the full result of a push-button SPA run.
type Analysis struct {
	Params     Params
	Samples    []float64      // collected metrics, ordered by seed offset
	Interval   stats.Interval // the SPA confidence interval
	MinSamples int            // minimum executions required by (F, C)
}

// Options tunes Analyze.
type Options struct {
	// Samples is the number of executions to run; zero means exactly the
	// minimum required by (F, C) (eq. 8). More samples narrow the interval.
	Samples int
	// Batch bounds parallel in-flight executions; zero means run all of a
	// campaign concurrently.
	Batch int
	// BaseSeed seeds the campaign; run i uses BaseSeed+i.
	BaseSeed uint64
	// Hooks receive per-execution telemetry callbacks; the zero value
	// disables them (see Hooks).
	Hooks Hooks
}

// Analyze is the push-button entry point of the SPA framework: it computes
// the minimum sample count for (F, C), collects that many executions in
// parallel batches, and returns the confidence interval for the metric at
// proportion F. This is the end-to-end flow of the paper's Fig. 3.
func Analyze(run RunFunc, p Params, opts Options) (*Analysis, error) {
	return AnalyzeWith(FuncCollector(run), p, opts)
}

// AnalyzeWith is Analyze against any collection backend — a local
// RunFunc (FuncCollector) or a distributed coordinator. Because the
// Collector contract fixes seed→sample ordering, the analysis is
// identical whichever backend collected the samples.
func AnalyzeWith(c Collector, p Params, opts Options) (*Analysis, error) {
	if c == nil {
		return nil, errNilCollector
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	minN, err := designMinSamples(c, p)
	if err != nil {
		return nil, fmt.Errorf("core: computing minimum samples: %w", err)
	}
	n := opts.Samples
	if n <= 0 {
		n = minN
	}
	if n < minN {
		return nil, fmt.Errorf("%w: requested %d executions, (F=%g, C=%g) needs at least %d",
			ErrInsufficientSamples, n, p.F, p.C, minN)
	}
	samples, err := c.Collect(opts.BaseSeed, n, opts.Batch, opts.Hooks)
	if err != nil {
		return nil, err
	}
	if len(samples) != n {
		return nil, &CollectionSizeError{BaseSeed: opts.BaseSeed, Requested: n, Returned: len(samples)}
	}
	iv, err := designInterval(c, samples, p)
	if err != nil {
		return nil, err
	}
	return &Analysis{Params: p, Samples: samples, Interval: iv, MinSamples: minN}, nil
}
