package core

import (
	"errors"
	"testing"

	"repro/internal/randx"
)

// noisyRun is a deterministic metric with moderate spread.
func noisyRun(seed uint64) (float64, error) {
	r := randx.New(seed)
	return 100 + r.Normal(0, 4), nil
}

func TestAnalyzeToWidthConverges(t *testing.T) {
	p := Params{F: 0.5, C: 0.9}
	a, err := AnalyzeToWidth(noisyRun, p, WidthOptions{TargetWidth: 1.5, Batch: 8, MaxSamples: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Interval.Width() > 1.5 {
		t.Errorf("returned width %.3f exceeds target", a.Interval.Width())
	}
	if len(a.Samples) < a.MinSamples {
		t.Errorf("fewer samples than the minimum: %d", len(a.Samples))
	}
}

func TestAnalyzeToWidthBudget(t *testing.T) {
	p := Params{F: 0.5, C: 0.9}
	// An impossible target within a tiny budget: the partial result still
	// comes back.
	a, err := AnalyzeToWidth(noisyRun, p, WidthOptions{TargetWidth: 1e-9, MaxSamples: 40, Batch: 4})
	if !errors.Is(err, ErrWidthBudget) {
		t.Fatalf("want ErrWidthBudget, got %v", err)
	}
	if a == nil || len(a.Samples) != 40 {
		t.Errorf("partial analysis missing or wrong size: %+v", a)
	}
	if !a.Interval.IsValid() {
		t.Error("partial interval invalid")
	}
}

func TestAnalyzeToWidthValidation(t *testing.T) {
	p := Params{F: 0.5, C: 0.9}
	if _, err := AnalyzeToWidth(noisyRun, p, WidthOptions{TargetWidth: 0}); err == nil {
		t.Error("zero target should error")
	}
	if _, err := AnalyzeToWidth(noisyRun, Params{F: 0, C: 0.9}, WidthOptions{TargetWidth: 1}); err == nil {
		t.Error("bad params should error")
	}
	if _, err := AnalyzeToWidth(noisyRun, p, WidthOptions{TargetWidth: 1, MaxSamples: 2}); err == nil {
		t.Error("MaxSamples below minimum should error")
	}
	boom := errors.New("boom")
	bad := func(uint64) (float64, error) { return 0, boom }
	if _, err := AnalyzeToWidth(bad, p, WidthOptions{TargetWidth: 1}); !errors.Is(err, boom) {
		t.Errorf("run error not propagated: %v", err)
	}
}

func TestAnalyzeToWidthReplicable(t *testing.T) {
	p := Params{F: 0.8, C: 0.9}
	opts := WidthOptions{TargetWidth: 2.5, Batch: 3, BaseSeed: 5, MaxSamples: 2000}
	a, err := AnalyzeToWidth(noisyRun, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Batch = 7 // different parallelism must not change the outcome
	b, err := AnalyzeToWidth(noisyRun, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Interval != b.Interval || len(a.Samples) != len(b.Samples) {
		t.Errorf("refinement not replicable: %+v/%d vs %+v/%d",
			a.Interval, len(a.Samples), b.Interval, len(b.Samples))
	}
}

func TestWidthAtSamplesShrinks(t *testing.T) {
	xs := sampleNormal(9, 200, 50, 5)
	p := Params{F: 0.5, C: 0.9}
	w22, err := WidthAtSamples(xs, p, 22)
	if err != nil {
		t.Fatal(err)
	}
	w200, err := WidthAtSamples(xs, p, 200)
	if err != nil {
		t.Fatal(err)
	}
	w800, err := WidthAtSamples(xs, p, 800)
	if err != nil {
		t.Fatal(err)
	}
	if !(w22 > w200 && w200 > w800) {
		t.Errorf("projected widths should shrink: %g, %g, %g", w22, w200, w800)
	}
}

func TestWidthAtSamplesValidation(t *testing.T) {
	p := Params{F: 0.5, C: 0.9}
	if _, err := WidthAtSamples(nil, p, 22); err == nil {
		t.Error("empty sample should error")
	}
	if _, err := WidthAtSamples([]float64{1, 2}, p, 2); !errors.Is(err, ErrInsufficientSamples) {
		t.Error("below-minimum projection should error")
	}
	if _, err := WidthAtSamples([]float64{1}, Params{F: 2, C: 0.9}, 22); err == nil {
		t.Error("bad params should error")
	}
}
