package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/numeric"
	"repro/internal/smc"
	"repro/internal/stats"
)

// Direction selects the comparison used in the scalar property
// "metric ⋈ threshold" that SPA sweeps to build a confidence interval.
type Direction int

const (
	// AtMost uses φ_v(x) = (x ≤ v): "the metric is no more than v".
	// With proportion F this targets the F-quantile of the metric.
	AtMost Direction = iota
	// AtLeast uses φ_v(x) = (x ≥ v): "the metric is at least v".
	// With proportion F this targets the value exceeded by an F fraction
	// of executions (the (1−F) inverted-CDF quantile).
	AtLeast
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == AtLeast {
		return "at-least"
	}
	return "at-most"
}

// Composition selects how the two opposing one-sided hypothesis tests are
// composed into a two-sided confidence interval (Sec. 4.1).
type Composition int

const (
	// BonferroniSplit (the default) runs each one-sided test at level
	// 1−(1−C)/2, so the union bound over the two disjoint miss events
	// guarantees two-sided coverage ≥ C. The paper's text composes the
	// interval "between any two hypothesis tests yielding opposing results
	// with confidence greater than C", which only guarantees coverage
	// 2C−1; the error probabilities the paper actually measures for SPA
	// (0.065 at the median for C = 0.9, Fig. 6) match the split level, so
	// we make the coverage-correct variant the default. See EXPERIMENTS.md.
	BonferroniSplit Composition = iota
	// PerSideC runs each one-sided test at level C, literally as written
	// in Sec. 4.1. The resulting interval is narrower but only guarantees
	// coverage 2C−1. Kept for the ablation benchmark.
	PerSideC
)

// Params configures an SPA analysis.
type Params struct {
	// F is the proportion of executions that must satisfy the property
	// (paper Sec. 4.4: F = 0.5 targets the median, larger F the tails).
	F float64
	// C is the requested confidence level in (0, 1).
	C float64
	// Direction chooses the property comparison; the default AtMost
	// estimates the F-quantile.
	Direction Direction
	// Composition selects the two-sided composition rule; the default
	// BonferroniSplit guarantees coverage ≥ C.
	Composition Composition
	// Granularity is the threshold step of the sweep-based search
	// (Sec. 4.2). Zero selects 1/1000 of the sample range. The exact
	// order-statistic construction ignores it.
	Granularity float64
}

// SideLevel returns the confidence level each one-sided test must reach
// under p's composition rule. Exported for design estimators
// (internal/sampling) that must compose their two one-sided tests
// exactly like the plain construction, or their coverage guarantee
// would silently diverge from it.
func (p Params) SideLevel() float64 { return p.sideLevel() }

// sideLevel returns the confidence level each one-sided test must reach.
func (p Params) sideLevel() float64 {
	if p.Composition == PerSideC {
		return p.C
	}
	return 1 - (1-p.C)/2
}

func (p Params) validate() error {
	if math.IsNaN(p.F) || p.F <= 0 || p.F >= 1 {
		return fmt.Errorf("core: proportion F=%v outside (0,1)", p.F)
	}
	if math.IsNaN(p.C) || p.C <= 0 || p.C >= 1 {
		return fmt.Errorf("core: confidence C=%v outside (0,1)", p.C)
	}
	if p.Granularity < 0 {
		return errors.New("core: negative granularity")
	}
	return nil
}

// ErrInsufficientSamples reports that the sample set is smaller than the
// minimum required for the hypothesis tests at (F, C) to converge in both
// directions (paper eq. 8), so no confidence interval exists.
var ErrInsufficientSamples = errors.New("core: not enough samples for requested F and C")

// ConfidenceInterval builds the SPA confidence interval for the metric at
// proportion p.F with confidence p.C, using the exact order-statistic
// construction.
//
// The construction is the granularity→0 limit of the paper's threshold
// search: for the AtMost property the satisfied count M(v) = #{x ≤ v} steps
// through 0..N as v crosses the sorted sample values, and the
// Clopper–Pearson verdict depends on v only through M(v). Let mNeg be the
// largest M whose test converges negative and mPos the smallest M whose
// test converges positive. Every threshold strictly below the (mNeg+1)-th
// order statistic is invalidated, every threshold at or above the mPos-th
// order statistic is validated, and thresholds in between yield "None"
// (paper Fig. 4's unshaded band). The interval is therefore
//
//	[ x_(mNeg+1) , x_(mPos) ]
//
// in 1-based order statistics, which is exactly what the paper's search
// returns as [V_lower, V_upper] when the granularity is fine enough.
func ConfidenceInterval(samples []float64, p Params) (stats.Interval, error) {
	if err := p.validate(); err != nil {
		return stats.Interval{}, err
	}
	if len(samples) == 0 {
		return stats.Interval{}, fmt.Errorf("%w: empty sample", ErrInsufficientSamples)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return ConfidenceIntervalSorted(sorted, p)
}

// ConfidenceIntervalSorted is ConfidenceInterval for a sample the caller
// has already sorted ascending. Trial harnesses that build several CIs from
// the same draw sort once and share the view; the construction itself is
// pure order-statistic indexing, so no copy and no re-sort happens here.
// The AtLeast direction reads the reflected order statistics directly
// (x ≥ v ⟺ −x ≤ −v, and negating an ascending array reverses it), which is
// exactly the reflect–solve–reflect of the AtMost construction without
// materializing the negated sample.
func ConfidenceIntervalSorted(sorted []float64, p Params) (stats.Interval, error) {
	if err := p.validate(); err != nil {
		return stats.Interval{}, err
	}
	n := len(sorted)
	mNeg, mPos, err := convergenceBounds(n, p.F, p.sideLevel())
	if err != nil {
		return stats.Interval{}, err
	}
	if p.Direction == AtLeast {
		return stats.Interval{Lo: sorted[n-mPos], Hi: sorted[n-1-mNeg]}, nil
	}
	return stats.Interval{Lo: sorted[mNeg], Hi: sorted[mPos-1]}, nil
}

// convergenceKey memoizes convergenceBounds: every trial of a CI-evaluation
// campaign re-solves the identical (n, f, c) instance, and the bounds are a
// pure function of the key.
type convergenceKey struct {
	n    int
	f, c float64
}

type convergenceVal struct{ mNeg, mPos int }

var (
	convergenceCache     sync.Map // convergenceKey → convergenceVal
	convergenceCacheSize atomic.Int64
)

// convergenceCacheCap bounds the memo; past it, instances are solved
// without being stored (campaigns use a handful of keys, so the cap exists
// only as a leak guard).
const convergenceCacheCap = 1 << 12

// convergenceBounds returns mNeg (largest satisfied-count with a converged
// negative verdict) and mPos (smallest with a converged positive verdict)
// for sample size n. Convergence means C_CP ≥ c (see the note on
// smc.CheckFixed). It returns ErrInsufficientSamples when either side
// cannot converge at all.
//
// The negative-side confidence decreases as M grows toward F·N and the
// positive side decreases as M shrinks toward it (both are tails of the
// monotone BetaCDF), so each boundary is found by binary search — O(log N)
// beta evaluations instead of the former O(N) scans — and successful
// results are memoized by (n, f, c). TestConvergenceBoundsMatchesLinearScan
// pins equivalence with the linear reference.
func convergenceBounds(n int, f, c float64) (mNeg, mPos int, err error) {
	if n == 0 {
		return 0, 0, fmt.Errorf("%w: empty sample", ErrInsufficientSamples)
	}
	key := convergenceKey{n: n, f: f, c: c}
	if v, ok := convergenceCache.Load(key); ok {
		cv := v.(convergenceVal)
		return cv.mNeg, cv.mPos, nil
	}
	if a, conf := smc.Confidence(0, n, f); a != smc.Negative || conf < c {
		return 0, 0, fmt.Errorf("%w: even M=0 cannot assert negative at C=%v with N=%d (need %s)",
			ErrInsufficientSamples, c, n, minSamplesHint(f, c))
	}
	if a, conf := smc.Confidence(n, n, f); a != smc.Positive || conf < c {
		return 0, 0, fmt.Errorf("%w: even M=N cannot assert positive at C=%v with N=%d (need %s)",
			ErrInsufficientSamples, c, n, minSamplesHint(f, c))
	}
	// negOK holds on the contiguous prefix [0, mNeg]; sort.Search finds the
	// first m where it fails.
	negOK := func(m int) bool {
		a, conf := smc.Confidence(m, n, f)
		return a == smc.Negative && conf >= c
	}
	mNeg = sort.Search(n+1, func(m int) bool { return !negOK(m) }) - 1
	// posOK holds on the contiguous suffix [mPos, n]; sort.Search finds its
	// first member.
	posOK := func(m int) bool {
		a, conf := smc.Confidence(m, n, f)
		return a == smc.Positive && conf >= c
	}
	mPos = sort.Search(n+1, posOK)
	if convergenceCacheSize.Load() < convergenceCacheCap {
		if _, loaded := convergenceCache.LoadOrStore(key, convergenceVal{mNeg: mNeg, mPos: mPos}); !loaded {
			convergenceCacheSize.Add(1)
		}
	}
	return mNeg, mPos, nil
}

func minSamplesHint(f, c float64) string {
	if n, err := smc.MinSamples(f, c); err == nil {
		return fmt.Sprintf("≥%d samples", n)
	}
	return "more samples"
}

// CIMinSamples returns the minimum number of executions for which the
// confidence-interval construction can succeed under p's composition rule.
// For PerSideC this equals smc.MinSamples(F, C) — the paper's eq. 8 count
// (22 at F = C = 0.9); the coverage-correct BonferroniSplit needs the
// eq. 8 count at the split level (29 at F = C = 0.9).
func CIMinSamples(p Params) (int, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	return smc.MinSamples(p.F, p.sideLevel())
}

// HypothesisTest runs a single fixed-sample SMC test of the direct property
// "metric ⋈ threshold" on the samples (the trivial path of Sec. 4.2, used
// when the architect supplies the property herself).
func HypothesisTest(samples []float64, threshold float64, p Params) (smc.Result, error) {
	if err := p.validate(); err != nil {
		return smc.Result{}, err
	}
	pred := func(x float64) bool { return x <= threshold }
	if p.Direction == AtLeast {
		pred = func(x float64) bool { return x >= threshold }
	}
	return smc.CheckValues(samples, pred, p.F, p.C)
}

// PositiveConfidence returns the one-sided confidence that P(φ) ≥ F given M
// successes out of N — the quantity plotted per threshold in the paper's
// Fig. 4. Values above C converge to positive; values below 1−C indicate
// the negative test converged; the band between is "None".
func PositiveConfidence(m, n int, f float64) float64 {
	switch {
	case n <= 0 || m < 0 || m > n:
		return math.NaN()
	case m == 0:
		return 0
	case m == n:
		return 1 - math.Pow(f, float64(n))
	default:
		return 1 - numeric.BetaCDF(f, float64(m), float64(n-m)+1)
	}
}

// ThresholdPoint is one point of a threshold sweep (Fig. 4).
type ThresholdPoint struct {
	Threshold    float64
	Satisfied    int           // M at this threshold
	PositiveConf float64       // one-sided positive confidence (the plotted value)
	Assertion    smc.Assertion // converged verdict, or Inconclusive
}

// ThresholdSweep evaluates the fixed-sample SMC test at each threshold and
// returns the per-threshold confidences, reproducing the data behind the
// paper's Fig. 4.
func ThresholdSweep(samples []float64, thresholds []float64, p Params) ([]ThresholdPoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, errors.New("core: threshold sweep over an empty sample")
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return ThresholdSweepSorted(sorted, thresholds, p)
}

// ThresholdSweepSorted is ThresholdSweep for an already ascending-sorted
// sample: the satisfied count at each threshold comes from one binary
// search over the sorted view instead of an O(N) predicate scan, and the
// verdict from a single Clopper–Pearson evaluation — exactly the counts and
// assertions HypothesisTest produces on the unsorted sample.
func ThresholdSweepSorted(sorted []float64, thresholds []float64, p Params) ([]ThresholdPoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(sorted)
	if n == 0 {
		return nil, errors.New("core: threshold sweep over an empty sample")
	}
	out := make([]ThresholdPoint, len(thresholds))
	for i, v := range thresholds {
		var m int
		if p.Direction == AtLeast {
			// #{x ≥ v} = n − #{x < v}.
			m = n - sort.Search(n, func(j int) bool { return sorted[j] >= v })
		} else {
			// #{x ≤ v}.
			m = sort.Search(n, func(j int) bool { return sorted[j] > v })
		}
		assertion, conf := smc.Confidence(m, n, p.F)
		if conf < p.C {
			assertion = smc.Inconclusive
		}
		out[i] = ThresholdPoint{
			Threshold:    v,
			Satisfied:    m,
			PositiveConf: PositiveConfidence(m, n, p.F),
			Assertion:    assertion,
		}
	}
	return out, nil
}
