package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
	"repro/internal/smc"
	"repro/internal/stats"
)

// Direction selects the comparison used in the scalar property
// "metric ⋈ threshold" that SPA sweeps to build a confidence interval.
type Direction int

const (
	// AtMost uses φ_v(x) = (x ≤ v): "the metric is no more than v".
	// With proportion F this targets the F-quantile of the metric.
	AtMost Direction = iota
	// AtLeast uses φ_v(x) = (x ≥ v): "the metric is at least v".
	// With proportion F this targets the value exceeded by an F fraction
	// of executions (the (1−F) inverted-CDF quantile).
	AtLeast
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == AtLeast {
		return "at-least"
	}
	return "at-most"
}

// Composition selects how the two opposing one-sided hypothesis tests are
// composed into a two-sided confidence interval (Sec. 4.1).
type Composition int

const (
	// BonferroniSplit (the default) runs each one-sided test at level
	// 1−(1−C)/2, so the union bound over the two disjoint miss events
	// guarantees two-sided coverage ≥ C. The paper's text composes the
	// interval "between any two hypothesis tests yielding opposing results
	// with confidence greater than C", which only guarantees coverage
	// 2C−1; the error probabilities the paper actually measures for SPA
	// (0.065 at the median for C = 0.9, Fig. 6) match the split level, so
	// we make the coverage-correct variant the default. See EXPERIMENTS.md.
	BonferroniSplit Composition = iota
	// PerSideC runs each one-sided test at level C, literally as written
	// in Sec. 4.1. The resulting interval is narrower but only guarantees
	// coverage 2C−1. Kept for the ablation benchmark.
	PerSideC
)

// Params configures an SPA analysis.
type Params struct {
	// F is the proportion of executions that must satisfy the property
	// (paper Sec. 4.4: F = 0.5 targets the median, larger F the tails).
	F float64
	// C is the requested confidence level in (0, 1).
	C float64
	// Direction chooses the property comparison; the default AtMost
	// estimates the F-quantile.
	Direction Direction
	// Composition selects the two-sided composition rule; the default
	// BonferroniSplit guarantees coverage ≥ C.
	Composition Composition
	// Granularity is the threshold step of the sweep-based search
	// (Sec. 4.2). Zero selects 1/1000 of the sample range. The exact
	// order-statistic construction ignores it.
	Granularity float64
}

// sideLevel returns the confidence level each one-sided test must reach.
func (p Params) sideLevel() float64 {
	if p.Composition == PerSideC {
		return p.C
	}
	return 1 - (1-p.C)/2
}

func (p Params) validate() error {
	if math.IsNaN(p.F) || p.F <= 0 || p.F >= 1 {
		return fmt.Errorf("core: proportion F=%v outside (0,1)", p.F)
	}
	if math.IsNaN(p.C) || p.C <= 0 || p.C >= 1 {
		return fmt.Errorf("core: confidence C=%v outside (0,1)", p.C)
	}
	if p.Granularity < 0 {
		return errors.New("core: negative granularity")
	}
	return nil
}

// ErrInsufficientSamples reports that the sample set is smaller than the
// minimum required for the hypothesis tests at (F, C) to converge in both
// directions (paper eq. 8), so no confidence interval exists.
var ErrInsufficientSamples = errors.New("core: not enough samples for requested F and C")

// ConfidenceInterval builds the SPA confidence interval for the metric at
// proportion p.F with confidence p.C, using the exact order-statistic
// construction.
//
// The construction is the granularity→0 limit of the paper's threshold
// search: for the AtMost property the satisfied count M(v) = #{x ≤ v} steps
// through 0..N as v crosses the sorted sample values, and the
// Clopper–Pearson verdict depends on v only through M(v). Let mNeg be the
// largest M whose test converges negative and mPos the smallest M whose
// test converges positive. Every threshold strictly below the (mNeg+1)-th
// order statistic is invalidated, every threshold at or above the mPos-th
// order statistic is validated, and thresholds in between yield "None"
// (paper Fig. 4's unshaded band). The interval is therefore
//
//	[ x_(mNeg+1) , x_(mPos) ]
//
// in 1-based order statistics, which is exactly what the paper's search
// returns as [V_lower, V_upper] when the granularity is fine enough.
func ConfidenceInterval(samples []float64, p Params) (stats.Interval, error) {
	if err := p.validate(); err != nil {
		return stats.Interval{}, err
	}
	if p.Direction == AtLeast {
		// φ: x ≥ v  ⟺  (−x) ≤ (−v); reflect, solve AtMost, reflect back.
		neg := make([]float64, len(samples))
		for i, x := range samples {
			neg[i] = -x
		}
		q := p
		q.Direction = AtMost
		iv, err := ConfidenceInterval(neg, q)
		if err != nil {
			return stats.Interval{}, err
		}
		return stats.Interval{Lo: -iv.Hi, Hi: -iv.Lo}, nil
	}

	n := len(samples)
	mNeg, mPos, err := convergenceBounds(n, p.F, p.sideLevel())
	if err != nil {
		return stats.Interval{}, err
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return stats.Interval{Lo: sorted[mNeg], Hi: sorted[mPos-1]}, nil
}

// convergenceBounds returns mNeg (largest satisfied-count with a converged
// negative verdict) and mPos (smallest with a converged positive verdict)
// for sample size n. Convergence means C_CP ≥ c (see the note on
// smc.CheckFixed). It returns ErrInsufficientSamples when either side
// cannot converge at all.
func convergenceBounds(n int, f, c float64) (mNeg, mPos int, err error) {
	if n == 0 {
		return 0, 0, fmt.Errorf("%w: empty sample", ErrInsufficientSamples)
	}
	// Negative-side confidence decreases as M grows toward F·N, so scan up
	// from 0; positive-side confidence decreases as M shrinks toward F·N,
	// so scan down from N. Both scans are O(N) with O(1) beta evaluations.
	if a, conf := smc.Confidence(0, n, f); a != smc.Negative || conf < c {
		return 0, 0, fmt.Errorf("%w: even M=0 cannot assert negative at C=%v with N=%d (need %s)",
			ErrInsufficientSamples, c, n, minSamplesHint(f, c))
	}
	if a, conf := smc.Confidence(n, n, f); a != smc.Positive || conf < c {
		return 0, 0, fmt.Errorf("%w: even M=N cannot assert positive at C=%v with N=%d (need %s)",
			ErrInsufficientSamples, c, n, minSamplesHint(f, c))
	}
	mNeg = 0
	for m := 1; m <= n; m++ {
		a, conf := smc.Confidence(m, n, f)
		if a != smc.Negative || conf < c {
			break
		}
		mNeg = m
	}
	mPos = n
	for m := n - 1; m >= 0; m-- {
		a, conf := smc.Confidence(m, n, f)
		if a != smc.Positive || conf < c {
			break
		}
		mPos = m
	}
	return mNeg, mPos, nil
}

func minSamplesHint(f, c float64) string {
	if n, err := smc.MinSamples(f, c); err == nil {
		return fmt.Sprintf("≥%d samples", n)
	}
	return "more samples"
}

// CIMinSamples returns the minimum number of executions for which the
// confidence-interval construction can succeed under p's composition rule.
// For PerSideC this equals smc.MinSamples(F, C) — the paper's eq. 8 count
// (22 at F = C = 0.9); the coverage-correct BonferroniSplit needs the
// eq. 8 count at the split level (29 at F = C = 0.9).
func CIMinSamples(p Params) (int, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	return smc.MinSamples(p.F, p.sideLevel())
}

// HypothesisTest runs a single fixed-sample SMC test of the direct property
// "metric ⋈ threshold" on the samples (the trivial path of Sec. 4.2, used
// when the architect supplies the property herself).
func HypothesisTest(samples []float64, threshold float64, p Params) (smc.Result, error) {
	if err := p.validate(); err != nil {
		return smc.Result{}, err
	}
	pred := func(x float64) bool { return x <= threshold }
	if p.Direction == AtLeast {
		pred = func(x float64) bool { return x >= threshold }
	}
	return smc.CheckValues(samples, pred, p.F, p.C)
}

// PositiveConfidence returns the one-sided confidence that P(φ) ≥ F given M
// successes out of N — the quantity plotted per threshold in the paper's
// Fig. 4. Values above C converge to positive; values below 1−C indicate
// the negative test converged; the band between is "None".
func PositiveConfidence(m, n int, f float64) float64 {
	switch {
	case n <= 0 || m < 0 || m > n:
		return math.NaN()
	case m == 0:
		return 0
	case m == n:
		return 1 - math.Pow(f, float64(n))
	default:
		return 1 - numeric.BetaCDF(f, float64(m), float64(n-m)+1)
	}
}

// ThresholdPoint is one point of a threshold sweep (Fig. 4).
type ThresholdPoint struct {
	Threshold    float64
	Satisfied    int           // M at this threshold
	PositiveConf float64       // one-sided positive confidence (the plotted value)
	Assertion    smc.Assertion // converged verdict, or Inconclusive
}

// ThresholdSweep evaluates the fixed-sample SMC test at each threshold and
// returns the per-threshold confidences, reproducing the data behind the
// paper's Fig. 4.
func ThresholdSweep(samples []float64, thresholds []float64, p Params) ([]ThresholdPoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	out := make([]ThresholdPoint, len(thresholds))
	for i, v := range thresholds {
		res, err := HypothesisTest(samples, v, p)
		if err != nil {
			return nil, err
		}
		out[i] = ThresholdPoint{
			Threshold:    v,
			Satisfied:    res.Satisfied,
			PositiveConf: PositiveConfidence(res.Satisfied, res.Samples, p.F),
			Assertion:    res.Assertion,
		}
	}
	return out, nil
}
