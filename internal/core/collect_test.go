package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/randx"
)

func metricRun(seed uint64) (float64, error) {
	r := randx.New(seed)
	return 100 + r.Normal(0, 5), nil
}

func TestCollectDeterministicOrdering(t *testing.T) {
	a, err := Collect(metricRun, 10, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(metricRun, 10, 50, 13) // different batch size
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("batching changed results at index %d: %g != %g", i, a[i], b[i])
		}
	}
}

func TestCollectRespectsBatchLimit(t *testing.T) {
	var inFlight, peak int64
	run := func(seed uint64) (float64, error) {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
				break
			}
		}
		defer atomic.AddInt64(&inFlight, -1)
		return float64(seed), nil
	}
	if _, err := Collect(run, 0, 64, 4); err != nil {
		t.Fatal(err)
	}
	if peak > 4 {
		t.Errorf("batch limit violated: peak in-flight %d > 4", peak)
	}
}

func TestCollectPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	run := func(seed uint64) (float64, error) {
		if seed == 7 {
			return 0, boom
		}
		return 1, nil
	}
	if _, err := Collect(run, 0, 20, 5); !errors.Is(err, boom) {
		t.Errorf("want boom, got %v", err)
	}
}

func TestCollectValidation(t *testing.T) {
	if _, err := Collect(nil, 0, 5, 1); err == nil {
		t.Error("nil RunFunc should error")
	}
	if _, err := Collect(metricRun, 0, 0, 1); err == nil {
		t.Error("zero samples should error")
	}
}

func TestAnalyzeDefaultsToMinSamples(t *testing.T) {
	a, err := Analyze(metricRun, Params{F: 0.9, C: 0.9}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MinSamples != 29 || len(a.Samples) != 29 {
		t.Errorf("MinSamples=%d len=%d, want 29/29 under the default split", a.MinSamples, len(a.Samples))
	}
	if !a.Interval.IsValid() {
		t.Errorf("invalid interval %+v", a.Interval)
	}
	// Paper-literal composition keeps the headline 22.
	b, err := Analyze(metricRun, Params{F: 0.9, C: 0.9, Composition: PerSideC}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.MinSamples != 22 || len(b.Samples) != 22 {
		t.Errorf("PerSideC MinSamples=%d len=%d, want 22/22", b.MinSamples, len(b.Samples))
	}
}

func TestAnalyzeRejectsTooFewRequested(t *testing.T) {
	_, err := Analyze(metricRun, Params{F: 0.9, C: 0.9}, Options{Samples: 10})
	if !errors.Is(err, ErrInsufficientSamples) {
		t.Errorf("want ErrInsufficientSamples, got %v", err)
	}
}

func TestAnalyzeMoreSamplesAccepted(t *testing.T) {
	a, err := Analyze(metricRun, Params{F: 0.5, C: 0.9}, Options{Samples: 100, Batch: 8, BaseSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != 100 {
		t.Errorf("len = %d, want 100", len(a.Samples))
	}
	// Replicability: same options, same analysis.
	b, err := Analyze(metricRun, Params{F: 0.5, C: 0.9}, Options{Samples: 100, Batch: 3, BaseSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Interval != b.Interval {
		t.Errorf("same campaign seeds gave different intervals: %+v vs %+v", a.Interval, b.Interval)
	}
}

func TestAnalyzeInvalidParams(t *testing.T) {
	if _, err := Analyze(metricRun, Params{F: 0, C: 0.9}, Options{}); err == nil {
		t.Error("invalid F should error")
	}
	// F=0.999999 at C=0.9 is fine for MinSamples but enormous; use an F
	// whose positive side cannot converge: none exists in (0,1), so
	// instead exercise the error path via the run error.
	boom := errors.New("boom")
	_, err := Analyze(func(uint64) (float64, error) { return 0, boom }, Params{F: 0.9, C: 0.9}, Options{})
	if !errors.Is(err, boom) {
		t.Errorf("run error should propagate, got %v", err)
	}
}
