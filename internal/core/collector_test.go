package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// seedFn is a deterministic pseudo-metric: value is a fixed function of
// the absolute seed, so any correct collector returns the same slice.
func seedFn(seed uint64) (float64, error) {
	return float64(seed%97) + float64(seed%13)/100, nil
}

// recordingCollector wraps FuncCollector and records every Collect call,
// to verify which (baseSeed, n) windows the entry points request.
type recordingCollector struct {
	calls []struct {
		base uint64
		n    int
	}
	inner FuncCollector
}

func (rc *recordingCollector) Collect(baseSeed uint64, n, batch int, h Hooks) ([]float64, error) {
	rc.calls = append(rc.calls, struct {
		base uint64
		n    int
	}{baseSeed, n})
	return rc.inner.Collect(baseSeed, n, batch, h)
}

func TestFuncCollectorMatchesCollectHooks(t *testing.T) {
	want, err := CollectHooks(seedFn, 100, 25, 4, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := FuncCollector(seedFn).Collect(100, 25, 4, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %g != %g", i, got[i], want[i])
		}
	}
}

func TestCollectOrderIndependentOfBatch(t *testing.T) {
	// The fixed worker-pool must preserve seed-offset ordering for every
	// pool size, including 1 (sequential) and > n (all in flight).
	want, err := CollectHooks(seedFn, 7, 40, 1, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{0, 2, 3, 16, 100} {
		got, err := CollectHooks(seedFn, 7, 40, batch, Hooks{})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %d sample %d: %g != %g", batch, i, got[i], want[i])
			}
		}
	}
}

func TestAnalyzeWithNilCollector(t *testing.T) {
	if _, err := AnalyzeWith(nil, Params{F: 0.5, C: 0.9}, Options{}); !errors.Is(err, errNilCollector) {
		t.Errorf("want errNilCollector, got %v", err)
	}
	if _, err := AnalyzeToWidthWith(nil, Params{F: 0.5, C: 0.9}, WidthOptions{TargetWidth: 1}); !errors.Is(err, errNilCollector) {
		t.Errorf("AnalyzeToWidthWith: want errNilCollector, got %v", err)
	}
	pred := func(v float64) bool { return v < 1 }
	if _, err := CheckBatchedWith(nil, pred, Params{F: 0.5, C: 0.9}, Options{}); !errors.Is(err, errNilCollector) {
		t.Errorf("CheckBatchedWith: want errNilCollector, got %v", err)
	}
}

func TestAnalyzeWithCustomCollectorMatchesAnalyze(t *testing.T) {
	p := Params{F: 0.5, C: 0.9}
	opts := Options{Samples: 80, BaseSeed: 11}
	want, err := Analyze(seedFn, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	rc := &recordingCollector{inner: FuncCollector(seedFn)}
	got, err := AnalyzeWith(rc, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interval != want.Interval {
		t.Errorf("intervals differ: %+v vs %+v", got.Interval, want.Interval)
	}
	if len(rc.calls) != 1 || rc.calls[0].base != 11 || rc.calls[0].n != 80 {
		t.Errorf("unexpected collect calls: %+v", rc.calls)
	}
}

func TestAnalyzeToWidthWithRequestsAbsoluteSeeds(t *testing.T) {
	// The adaptive loop must hand collectors absolute seed windows
	// (BaseSeed+consumed), not zero-based ones it shifts afterwards —
	// remote backends only see the base seed they are given.
	p := Params{F: 0.5, C: 0.9}
	w := WidthOptions{TargetWidth: 5, MaxSamples: 400, BaseSeed: 1000}
	rc := &recordingCollector{inner: FuncCollector(seedFn)}
	got, err := AnalyzeToWidthWith(rc, p, w)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnalyzeToWidth(seedFn, p, w)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interval != want.Interval || len(got.Samples) != len(want.Samples) {
		t.Errorf("collector-backed adaptive run differs: %+v vs %+v", got.Interval, want.Interval)
	}
	next := uint64(1000)
	for i, c := range rc.calls {
		if c.base != next {
			t.Fatalf("call %d asked for base %d, want %d (absolute, contiguous)", i, c.base, next)
		}
		next += uint64(c.n)
	}
}

func TestCheckBatchedWithMatchesCheckBatched(t *testing.T) {
	p := Params{F: 0.9, C: 0.9}
	pred := func(v float64) bool { return v < 95 }
	opts := Options{Batch: 32, Samples: 512, BaseSeed: 3}
	want, err := CheckBatched(seedFn, pred, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	rc := &recordingCollector{inner: FuncCollector(seedFn)}
	got, err := CheckBatchedWith(rc, pred, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Assertion != want.Assertion || got.Samples != want.Samples || got.Launched != want.Launched {
		t.Errorf("collector-backed check differs: %+v vs %+v", got, want)
	}
	next := uint64(3)
	for i, c := range rc.calls {
		if c.base != next {
			t.Fatalf("batch %d asked for base %d, want %d", i, c.base, next)
		}
		next += uint64(c.n)
	}
}

func TestCollectPoolPropagatesErrorsFromAnyWorker(t *testing.T) {
	bad := func(seed uint64) (float64, error) {
		if seed%7 == 0 {
			return 0, fmt.Errorf("seed %d broke", seed)
		}
		return 1, nil
	}
	_, err := CollectHooks(bad, 0, 20, 3, Hooks{})
	if err == nil {
		t.Fatal("pool should propagate run errors")
	}
	for _, s := range []string{"seed 0", "seed 7", "seed 14"} {
		if !strings.Contains(err.Error(), s) {
			t.Errorf("joined error missing %q: %v", s, err)
		}
	}
}
