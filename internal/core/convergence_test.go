package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/randx"
	"repro/internal/smc"
)

// linearConvergenceBounds is the O(N) reference convergenceBounds replaced
// with binary searches: scan every satisfied count and take the largest with
// a converged negative verdict and the smallest with a converged positive
// one. Scanning the full range (rather than stopping at the first failure)
// also re-checks the contiguity the binary searches rely on.
func linearConvergenceBounds(n int, f, c float64) (mNeg, mPos int) {
	mNeg, mPos = -1, n+1
	for m := 0; m <= n; m++ {
		a, conf := smc.Confidence(m, n, f)
		if a == smc.Negative && conf >= c {
			if mNeg != m-1 {
				panic("negative-side convergence region is not a prefix")
			}
			mNeg = m
		}
		if a == smc.Positive && conf >= c && m < mPos {
			mPos = m
		}
	}
	return mNeg, mPos
}

// TestConvergenceBoundsMatchesLinearScan pins the binary-search
// convergenceBounds against the linear reference over a grid of sample
// sizes, proportions, and confidence levels, including error cases.
func TestConvergenceBoundsMatchesLinearScan(t *testing.T) {
	for _, n := range []int{1, 2, 5, 22, 29, 100, 500, 1000} {
		for _, f := range []float64{0.1, 0.5, 0.8, 0.9, 0.95, 0.99} {
			for _, c := range []float64{0.9, 0.95, 0.99} {
				mNeg, mPos, err := convergenceBounds(n, f, c)
				// The endpoint checks define feasibility: M=0 must assert
				// negative and M=N positive at confidence ≥ c.
				aNeg, confNeg := smc.Confidence(0, n, f)
				aPos, confPos := smc.Confidence(n, n, f)
				feasible := aNeg == smc.Negative && confNeg >= c &&
					aPos == smc.Positive && confPos >= c
				if !feasible {
					if err == nil {
						t.Errorf("n=%d f=%g c=%g: want error for infeasible instance, got (%d, %d)", n, f, c, mNeg, mPos)
					}
					continue
				}
				if err != nil {
					t.Errorf("n=%d f=%g c=%g: unexpected error %v", n, f, c, err)
					continue
				}
				wantNeg, wantPos := linearConvergenceBounds(n, f, c)
				if mNeg != wantNeg || mPos != wantPos {
					t.Errorf("n=%d f=%g c=%g: got (%d, %d), linear scan (%d, %d)",
						n, f, c, mNeg, mPos, wantNeg, wantPos)
				}
			}
		}
	}
}

// TestThresholdSweepMatchesHypothesisTest pins the binary-search satisfied
// counts of ThresholdSweepSorted against HypothesisTest's predicate scan on
// the unsorted sample, in both property directions, at thresholds on, off,
// between, and outside the sample values (including exact duplicates).
func TestThresholdSweepMatchesHypothesisTest(t *testing.T) {
	r := randx.New(31)
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = math.Round(r.Normal(10, 2)*4) / 4 // quarter-grid: many ties
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var thresholds []float64
	for _, v := range sorted[:20] {
		thresholds = append(thresholds, v, v+1e-9, v-1e-9, v+0.125)
	}
	thresholds = append(thresholds, sorted[0]-1, sorted[len(sorted)-1]+1)

	for _, dir := range []Direction{AtMost, AtLeast} {
		p := Params{F: 0.9, C: 0.9, Direction: dir}
		pts, err := ThresholdSweep(xs, thresholds, p)
		if err != nil {
			t.Fatal(err)
		}
		ptsSorted, err := ThresholdSweepSorted(sorted, thresholds, p)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range thresholds {
			res, err := HypothesisTest(xs, v, p)
			if err != nil {
				t.Fatal(err)
			}
			if pts[i].Satisfied != res.Satisfied || pts[i].Assertion != res.Assertion {
				t.Errorf("%v threshold %v: sweep (M=%d, %v), hypothesis test (M=%d, %v)",
					dir, v, pts[i].Satisfied, pts[i].Assertion, res.Satisfied, res.Assertion)
			}
			if ptsSorted[i] != pts[i] {
				t.Errorf("%v threshold %v: ThresholdSweepSorted %+v differs from ThresholdSweep %+v",
					dir, v, ptsSorted[i], pts[i])
			}
		}
	}
}

// TestConfidenceIntervalSortedMatchesUnsorted checks the sorted entry point
// agrees with the copy-and-sort one in both directions.
func TestConfidenceIntervalSortedMatchesUnsorted(t *testing.T) {
	r := randx.New(8)
	xs := make([]float64, 80)
	for i := range xs {
		xs[i] = r.Normal(5, 1)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, dir := range []Direction{AtMost, AtLeast} {
		p := Params{F: 0.9, C: 0.9, Direction: dir}
		want, err := ConfidenceInterval(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ConfidenceIntervalSorted(sorted, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Lo) != math.Float64bits(want.Lo) ||
			math.Float64bits(got.Hi) != math.Float64bits(want.Hi) {
			t.Errorf("%v: sorted entry %v, unsorted %v", dir, got, want)
		}
	}
}
