package core

import "time"

// Hooks are optional per-execution callbacks threaded through Collect,
// CheckBatched and the adaptive loops, the attachment points for the
// observability layer (internal/obs). The zero value disables everything;
// a nil field is skipped with a single pointer check, so the hot RunFunc
// path pays no measurable cost when telemetry is off (see
// BenchmarkCollectHooksOverhead).
//
// Hooks observe executions; they must not mutate campaign state and they
// never receive or consume simulation RNG, so enabling them cannot change
// any collected metric.
type Hooks struct {
	// OnRunStart fires immediately before an execution with its seed.
	// It may be called from many goroutines concurrently.
	OnRunStart func(seed uint64)
	// OnRunDone fires after an execution completes with its seed, the
	// collected value (undefined on error), the error, and the wall time.
	// It may be called from many goroutines concurrently.
	OnRunDone func(seed uint64, value float64, err error, elapsed time.Duration)
	// OnRound fires once per adaptive refinement round (AnalyzeToWidth)
	// with the cumulative sample count and the current interval width.
	OnRound func(samples int, width float64)
}

// enabled reports whether any per-run callback is set; when false the
// collect loop takes the exact pre-hooks code path (no time.Now calls).
func (h Hooks) enabled() bool {
	return h.OnRunStart != nil || h.OnRunDone != nil
}
