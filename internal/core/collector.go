package core

import "errors"

// Collector abstracts where samples come from: a local RunFunc driven in
// parallel batches (FuncCollector), or a remote backend like
// internal/dist's coordinator, which shards the seed range across worker
// processes. The contract is Collect's: samples for seeds
// baseSeed+0 … baseSeed+n−1, ordered by seed offset, with at most batch
// in flight where the backend honours it (remote backends may govern
// parallelism themselves — the bound can shift wall-clock time but never
// sample values). Hooks observe runs and must not affect results.
type Collector interface {
	Collect(baseSeed uint64, n, batch int, h Hooks) ([]float64, error)
}

// FuncCollector adapts a RunFunc into the Collector the analysis entry
// points consume; Collect is exactly CollectHooks.
type FuncCollector RunFunc

// Collect implements Collector.
func (f FuncCollector) Collect(baseSeed uint64, n, batch int, h Hooks) ([]float64, error) {
	return CollectHooks(RunFunc(f), baseSeed, n, batch, h)
}

// errNilCollector reports an AnalyzeWith-style call without a backend.
var errNilCollector = errors.New("core: nil Collector")
