package core

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// Collector abstracts where samples come from: a local RunFunc driven in
// parallel batches (FuncCollector), or a remote backend like
// internal/dist's coordinator, which shards the seed range across worker
// processes. The contract is Collect's: exactly n samples for the seed
// range rooted at baseSeed, ordered by seed offset, with at most batch
// in flight where the backend honours it (remote backends may govern
// parallelism themselves — the bound can shift wall-clock time but never
// sample values). Hooks observe runs and must not affect results.
//
// Variance-reduction collectors (internal/sampling) relax "samples for
// seeds baseSeed+0 … baseSeed+n−1" to "samples for n deterministically
// design-selected seeds from the range rooted at baseSeed": which seeds
// get measured depends only on the design's pilot pass, never on
// scheduling, so replicability is preserved. Such collectors implement
// DesignCollector so the analysis uses their matched estimator.
type Collector interface {
	Collect(baseSeed uint64, n, batch int, h Hooks) ([]float64, error)
}

// DesignCollector is the optional Collector extension for sampling
// designs whose samples are not a plain i.i.d.-style seed range: the
// plain order-statistic construction (ConfidenceInterval) is not
// coverage-correct on design-selected samples, so the analysis entry
// points build the interval through the collector's own estimator
// instead.
type DesignCollector interface {
	Collector

	// DesignInterval builds the confidence interval matched to the
	// collector's sampling design over samples — exactly the cumulative
	// slice its Collect calls returned, in collection order.
	DesignInterval(samples []float64, p Params) (stats.Interval, error)

	// DesignMinSamples is the smallest sample count for which
	// DesignInterval can converge in both directions at p — the design's
	// analogue of CIMinSamples.
	DesignMinSamples(p Params) (int, error)
}

// FuncCollector adapts a RunFunc into the Collector the analysis entry
// points consume; Collect is exactly CollectHooks.
type FuncCollector RunFunc

// Collect implements Collector.
func (f FuncCollector) Collect(baseSeed uint64, n, batch int, h Hooks) ([]float64, error) {
	return CollectHooks(RunFunc(f), baseSeed, n, batch, h)
}

// errNilCollector reports an AnalyzeWith-style call without a backend.
var errNilCollector = errors.New("core: nil Collector")

// CollectionSizeError reports a Collector that returned a different
// number of samples than requested. The adaptive loop advances its seed
// cursor by the requested count, so a short (or long) collection would
// silently desynchronize the seed range from the sample count and
// corrupt campaign replicability; it is a backend contract violation,
// not a recoverable condition.
type CollectionSizeError struct {
	BaseSeed  uint64 // base seed of the offending Collect call
	Requested int    // samples asked for
	Returned  int    // samples the backend produced
}

// Error implements error.
func (e *CollectionSizeError) Error() string {
	return fmt.Sprintf("core: collector returned %d samples for %d requested at base seed %d",
		e.Returned, e.Requested, e.BaseSeed)
}

// designInterval builds the CI through the collector's matched estimator
// when it has one, and through the plain order-statistic construction
// otherwise. Analysis entry points must build every interval through
// this seam so a design-selected sample is never fed to the plain
// estimator.
func designInterval(c Collector, samples []float64, p Params) (stats.Interval, error) {
	if dc, ok := c.(DesignCollector); ok {
		return dc.DesignInterval(samples, p)
	}
	return ConfidenceInterval(samples, p)
}

// designMinSamples is CIMinSamples through the same seam.
func designMinSamples(c Collector, p Params) (int, error) {
	if dc, ok := c.(DesignCollector); ok {
		return dc.DesignMinSamples(p)
	}
	return CIMinSamples(p)
}
