package core

import (
	"errors"
	"fmt"

	"repro/internal/smc"
)

// BatchedResult is the outcome of CheckBatched: the sequential SMC verdict
// plus the execution accounting the batching introduces.
type BatchedResult struct {
	smc.Result
	// Launched counts executions actually run; up to Batch−1 more than
	// Result.Samples, since a batch in flight when the verdict lands is
	// still paid for (the Sec. 4.3 trade: wall-clock for a few extra
	// simulations).
	Launched int
}

// CheckBatched is the paper's Fig. 3 operating loop: sequentially test the
// property "pred(metric)" at proportion p.F and confidence p.C, launching
// executions in parallel batches instead of one at a time. Outcomes are
// consumed in seed order, so the verdict and its sample count are
// *identical* to the strictly sequential Algorithm 1 — batching only
// changes wall-clock time and may waste at most Batch−1 executions.
//
// opts.Samples bounds the total executions (0 means 4096); exhausting it
// returns the partial result with smc.ErrSampleBudget.
func CheckBatched(run RunFunc, pred func(float64) bool, p Params, opts Options) (BatchedResult, error) {
	if run == nil {
		return BatchedResult{}, errors.New("core: nil RunFunc")
	}
	return CheckBatchedWith(FuncCollector(run), pred, p, opts)
}

// CheckBatchedWith is CheckBatched against any collection backend; see
// AnalyzeWith. Outcomes are consumed in seed order whatever backend ran
// the batch, so the verdict is backend-independent.
func CheckBatchedWith(c Collector, pred func(float64) bool, p Params, opts Options) (BatchedResult, error) {
	if err := p.validate(); err != nil {
		return BatchedResult{}, err
	}
	if c == nil {
		return BatchedResult{}, errNilCollector
	}
	if pred == nil {
		return BatchedResult{}, errors.New("core: nil predicate")
	}
	batch := opts.Batch
	if batch <= 0 {
		batch = 8
	}
	budget := opts.Samples
	if budget <= 0 {
		budget = 4096
	}

	var (
		m, n     int
		launched int
	)
	for launched < budget {
		size := batch
		if launched+size > budget {
			size = budget - launched
		}
		values, err := c.Collect(opts.BaseSeed+uint64(launched), size, size, opts.Hooks)
		if err != nil {
			return BatchedResult{}, err
		}
		launched += size
		// Consume in seed order, exactly as Algorithm 1 would.
		for _, v := range values {
			n++
			if pred(v) {
				m++
			}
			assertion, conf := smc.Confidence(m, n, p.F)
			if conf >= p.C {
				return BatchedResult{
					Result: smc.Result{
						Assertion: assertion, Confidence: conf,
						Satisfied: m, Samples: n,
					},
					Launched: launched,
				}, nil
			}
		}
	}
	assertion, conf := smc.Confidence(m, n, p.F)
	return BatchedResult{
			Result: smc.Result{
				Assertion: smc.Inconclusive, Confidence: conf,
				Satisfied: m, Samples: n,
			},
			Launched: launched,
		}, fmt.Errorf("%w (last assertion %v at C_CP=%.4f after %d executions)",
			smc.ErrSampleBudget, assertion, conf, launched)
}
