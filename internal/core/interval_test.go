package core

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/smc"
	"repro/internal/stats"
)

func sampleNormal(seed uint64, n int, mean, sd float64) []float64 {
	r := randx.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(mean, sd)
	}
	return xs
}

func TestParamsValidate(t *testing.T) {
	good := Params{F: 0.9, C: 0.9}
	if err := good.validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{F: 0, C: 0.9}, {F: 1, C: 0.9}, {F: 0.5, C: 0}, {F: 0.5, C: 1},
		{F: math.NaN(), C: 0.9}, {F: 0.5, C: 0.9, Granularity: -1},
	}
	for _, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
}

func TestConfidenceIntervalKnownOrderStatistics(t *testing.T) {
	// For N=22, F=0.9, C=0.9 with the paper-literal PerSideC composition:
	// mNeg and mPos determine the CI as order statistics. Verify against a
	// hand-checkable sample 1..22.
	xs := make([]float64, 22)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	iv, err := ConfidenceInterval(xs, Params{F: 0.9, C: 0.9, Composition: PerSideC})
	if err != nil {
		t.Fatal(err)
	}
	// mPos must be 22 here: only M=N=22 reaches C≥0.9 on the positive side
	// (M=21 gives 1−I_0.9(21,2) ≈ 0.66 < 0.9), so Hi = x_(22) = 22.
	if iv.Hi != 22 {
		t.Errorf("Hi = %g, want 22", iv.Hi)
	}
	// The negative side: mNeg is the largest M with I_0.9(M+1, 22−M) ≥ 0.9.
	// Scan with the engine directly to confirm self-consistency.
	wantLo := 0.0
	for m := 0; m <= 22; m++ {
		a, conf := smc.Confidence(m, 22, 0.9)
		if a == smc.Negative && conf >= 0.9 {
			wantLo = float64(m + 1) // CI lower is x_(m+1) for the largest such m
		}
	}
	if iv.Lo != wantLo {
		t.Errorf("Lo = %g, want %g", iv.Lo, wantLo)
	}
	if iv.Lo >= iv.Hi {
		t.Errorf("degenerate interval %+v", iv)
	}
}

func TestConfidenceIntervalMedianSymmetric(t *testing.T) {
	// F=0.5 on 1..n: the CI should be symmetric around the median.
	n := 30
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	iv, err := ConfidenceInterval(xs, Params{F: 0.5, C: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	mid := float64(n+1) / 2
	if math.Abs((mid-iv.Lo)-(iv.Hi-mid)) > 1 {
		t.Errorf("median CI [%g, %g] not symmetric about %g", iv.Lo, iv.Hi, mid)
	}
	if !iv.Contains(mid) {
		t.Errorf("median CI does not contain the sample median")
	}
}

func TestConfidenceIntervalInsufficientSamples(t *testing.T) {
	xs := sampleNormal(1, 10, 0, 1) // 10 < 22 required at F=C=0.9
	_, err := ConfidenceInterval(xs, Params{F: 0.9, C: 0.9})
	if !errors.Is(err, ErrInsufficientSamples) {
		t.Errorf("want ErrInsufficientSamples, got %v", err)
	}
	if _, err := ConfidenceInterval(nil, Params{F: 0.5, C: 0.9}); !errors.Is(err, ErrInsufficientSamples) {
		t.Errorf("empty sample: want ErrInsufficientSamples, got %v", err)
	}
}

func TestConfidenceIntervalExactMinimumSamples(t *testing.T) {
	// Exactly CIMinSamples executions must be sufficient, and one fewer
	// must fail — the consistency contract between eq. 6–8 (at the
	// composition's per-side level) and the CI construction.
	for _, comp := range []Composition{BonferroniSplit, PerSideC} {
		for _, pc := range []struct{ f, c float64 }{
			{0.9, 0.9}, {0.5, 0.9}, {0.5, 0.75}, {0.8, 0.95}, {0.95, 0.99},
		} {
			p := Params{F: pc.f, C: pc.c, Composition: comp}
			n, err := CIMinSamples(p)
			if err != nil {
				t.Fatal(err)
			}
			xs := sampleNormal(7, n, 100, 10)
			if _, err := ConfidenceInterval(xs, p); err != nil {
				t.Errorf("F=%g C=%g comp=%d: CI failed with exactly CIMinSamples=%d: %v",
					pc.f, pc.c, comp, n, err)
			}
			if n > 1 {
				if _, err := ConfidenceInterval(xs[:n-1], p); !errors.Is(err, ErrInsufficientSamples) {
					t.Errorf("F=%g C=%g comp=%d: CI with %d samples should fail", pc.f, pc.c, comp, n-1)
				}
			}
		}
	}
}

func TestCIMinSamplesHeadline(t *testing.T) {
	// Paper-literal composition reproduces eq. 8's 22 at F = C = 0.9; the
	// coverage-correct split needs 29 (eq. 6 at level 0.95).
	if n, err := CIMinSamples(Params{F: 0.9, C: 0.9, Composition: PerSideC}); err != nil || n != 22 {
		t.Errorf("PerSideC: %d, %v; want 22", n, err)
	}
	if n, err := CIMinSamples(Params{F: 0.9, C: 0.9}); err != nil || n != 29 {
		t.Errorf("BonferroniSplit: %d, %v; want 29", n, err)
	}
	if _, err := CIMinSamples(Params{F: 0, C: 0.9}); err == nil {
		t.Error("invalid params should error")
	}
}

func TestConfidenceIntervalAtLeastMirrorsAtMost(t *testing.T) {
	xs := sampleNormal(3, 50, 10, 2)
	ivMost, err := ConfidenceInterval(xs, Params{F: 0.9, C: 0.9, Direction: AtMost})
	if err != nil {
		t.Fatal(err)
	}
	neg := make([]float64, len(xs))
	for i, x := range xs {
		neg[i] = -x
	}
	ivLeast, err := ConfidenceInterval(neg, Params{F: 0.9, C: 0.9, Direction: AtLeast})
	if err != nil {
		t.Fatal(err)
	}
	if ivLeast.Lo != -ivMost.Hi || ivLeast.Hi != -ivMost.Lo {
		t.Errorf("AtLeast on negated data %+v should mirror AtMost %+v", ivLeast, ivMost)
	}
}

// The CI must contain the empirical F-quantile of the sample itself.
func TestConfidenceIntervalContainsEmpiricalQuantileProperty(t *testing.T) {
	f := func(seed uint64, nr uint8, fr uint8) bool {
		n := 22 + int(nr%200)
		fq := 0.3 + 0.4*float64(fr)/255.0 // mid-range F so 22+ samples suffice
		xs := sampleNormal(seed, n, 50, 8)
		iv, err := ConfidenceInterval(xs, Params{F: fq, C: 0.9})
		if err != nil {
			return errors.Is(err, ErrInsufficientSamples)
		}
		q, err := stats.Quantile(xs, fq)
		if err != nil {
			return false
		}
		return iv.Contains(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Coverage: across many trials, the CI must contain the population
// F-quantile with frequency ≥ C (the paper's central claim for SPA,
// Figs. 6–13: SPA error probability stays below 1−C).
func TestConfidenceIntervalCoverage(t *testing.T) {
	const (
		popN   = 20000
		trials = 600
		nSamp  = 22
	)
	pop := make([]float64, popN)
	r := randx.New(99)
	for i := range pop {
		// Bimodal, far from Gaussian — the paper's motivating shape.
		if r.Bernoulli(0.8) {
			pop[i] = r.Normal(1.0, 0.05)
		} else {
			pop[i] = r.Normal(1.4, 0.08)
		}
	}
	for _, fc := range []struct{ f, c float64 }{{0.5, 0.9}, {0.9, 0.9}} {
		p := Params{F: fc.f, C: fc.c}
		truth, err := stats.Quantile(pop, fc.f)
		if err != nil {
			t.Fatal(err)
		}
		// Use the construction's own minimum (22 at the median, 29 at
		// F=0.9) but never fewer than the paper's 22.
		n, err := CIMinSamples(p)
		if err != nil {
			t.Fatal(err)
		}
		if n < nSamp {
			n = nSamp
		}
		miss := 0
		tr := randx.New(7)
		for i := 0; i < trials; i++ {
			xs := make([]float64, n)
			for j := range xs {
				xs[j] = pop[tr.Intn(popN)]
			}
			iv, err := ConfidenceInterval(xs, p)
			if err != nil {
				t.Fatal(err)
			}
			if !iv.Contains(truth) {
				miss++
			}
		}
		errProb := float64(miss) / trials
		if errProb > 1-fc.c+0.03 { // small slack for trial noise
			t.Errorf("F=%g: SPA CI error probability %.3f exceeds 1-C=%.3f",
				fc.f, errProb, 1-fc.c)
		}
	}
}

func TestHypothesisTestDirections(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	// 90% of values ≤ 9; property "x ≤ 9.5" holds on 9/10.
	res, err := HypothesisTest(xs, 9.5, Params{F: 0.5, C: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied != 9 {
		t.Errorf("AtMost satisfied = %d, want 9", res.Satisfied)
	}
	res, err = HypothesisTest(xs, 9.5, Params{F: 0.5, C: 0.9, Direction: AtLeast})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied != 1 {
		t.Errorf("AtLeast satisfied = %d, want 1", res.Satisfied)
	}
	if _, err := HypothesisTest(xs, 1, Params{F: 2, C: 0.9}); err == nil {
		t.Error("invalid params should error")
	}
}

func TestPositiveConfidenceBounds(t *testing.T) {
	if PositiveConfidence(0, 22, 0.9) != 0 {
		t.Error("M=0 positive confidence should be 0")
	}
	want := 1 - math.Pow(0.9, 22)
	if got := PositiveConfidence(22, 22, 0.9); math.Abs(got-want) > 1e-12 {
		t.Errorf("M=N: %g, want %g", got, want)
	}
	if !math.IsNaN(PositiveConfidence(5, 0, 0.9)) {
		t.Error("N=0 should be NaN")
	}
	// Monotone in M.
	prev := -1.0
	for m := 0; m <= 22; m++ {
		c := PositiveConfidence(m, 22, 0.9)
		if c < prev-1e-12 {
			t.Fatalf("PositiveConfidence not monotone at M=%d", m)
		}
		prev = c
	}
}

func TestThresholdSweepShape(t *testing.T) {
	// Reproduce the Fig. 4 shape: AtLeast property over increasing
	// thresholds must walk from Positive through None to Negative, with
	// the plotted positive confidence decreasing.
	xs := sampleNormal(11, 22, 1.45, 0.03)
	ths := make([]float64, 21)
	for i := range ths {
		ths[i] = 1.35 + 0.01*float64(i)
	}
	pts, err := ThresholdSweep(xs, ths, Params{F: 0.9, C: 0.9, Direction: AtLeast})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Assertion != smc.Positive {
		t.Errorf("leftmost threshold should converge positive, got %v", pts[0].Assertion)
	}
	if pts[len(pts)-1].Assertion != smc.Negative {
		t.Errorf("rightmost threshold should converge negative, got %v", pts[len(pts)-1].Assertion)
	}
	sawNone := false
	for i := 1; i < len(pts); i++ {
		if pts[i].PositiveConf > pts[i-1].PositiveConf+1e-9 {
			t.Errorf("positive confidence increased at threshold %g", pts[i].Threshold)
		}
		if pts[i].Assertion == smc.Inconclusive {
			sawNone = true
		}
	}
	if !sawNone {
		t.Error("sweep should pass through a None band")
	}
	if _, err := ThresholdSweep(xs, ths, Params{F: 0, C: 0.9}); err == nil {
		t.Error("invalid params should error")
	}
}

// The sweep construction must agree with the exact construction to within
// one granularity step on each side (ablation #1 in DESIGN.md).
func TestSweepMatchesExactProperty(t *testing.T) {
	f := func(seed uint64, dir bool) bool {
		xs := sampleNormal(seed, 40, 100, 15)
		d := AtMost
		if dir {
			d = AtLeast
		}
		p := Params{F: 0.8, C: 0.9, Direction: d, Granularity: 0.05}
		exact, err1 := ConfidenceInterval(xs, p)
		swept, err2 := ConfidenceIntervalSweep(xs, p)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(exact.Lo-swept.Lo) <= p.Granularity+1e-9 &&
			math.Abs(exact.Hi-swept.Hi) <= p.Granularity+1e-9 &&
			swept.Lo <= exact.Lo+1e-9 && swept.Hi >= exact.Hi-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSweepInsufficientSamples(t *testing.T) {
	xs := sampleNormal(1, 5, 0, 1)
	if _, err := ConfidenceIntervalSweep(xs, Params{F: 0.9, C: 0.9}); !errors.Is(err, ErrInsufficientSamples) {
		t.Errorf("want ErrInsufficientSamples, got %v", err)
	}
	if _, err := ConfidenceIntervalSweep(nil, Params{F: 0.5, C: 0.9}); !errors.Is(err, ErrInsufficientSamples) {
		t.Errorf("empty: want ErrInsufficientSamples, got %v", err)
	}
}

func TestSweepDegenerateConstantSample(t *testing.T) {
	xs := make([]float64, 29) // CIMinSamples at F=C=0.9 under the default split
	for i := range xs {
		xs[i] = 3.14
	}
	iv, err := ConfidenceIntervalSweep(xs, Params{F: 0.9, C: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(3.14) {
		t.Errorf("constant-sample sweep CI %+v should contain the constant", iv)
	}
	exact, err := ConfidenceInterval(xs, Params{F: 0.9, C: 0.9})
	if err != nil || exact.Lo != 3.14 || exact.Hi != 3.14 {
		t.Errorf("constant-sample exact CI = %+v, %v", exact, err)
	}
}

// More samples must never widen the exact CI's order-statistic *indices*
// beyond proportionality — concretely, width shrinks stochastically. We
// check the simpler deterministic property: on sorted uniform grids, a
// larger sample gives a narrower normalized CI.
func TestMoreSamplesNarrowerCI(t *testing.T) {
	widths := make([]float64, 0, 3)
	for _, n := range []int{22, 100, 400} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) / float64(n-1) // uniform grid on [0,1]
		}
		iv, err := ConfidenceInterval(xs, Params{F: 0.5, C: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		widths = append(widths, iv.Width())
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(widths))) {
		t.Errorf("CI widths %v should shrink with sample size", widths)
	}
}

// The paper-literal PerSideC composition only guarantees two-sided coverage
// 2C−1; on continuous data at the minimum sample size its error probability
// exceeds 1−C (which is why BonferroniSplit is this library's default — see
// the Composition docs and EXPERIMENTS.md). This test pins that behaviour
// so the difference stays documented and detectable.
func TestPerSideCompositionCoverageGap(t *testing.T) {
	const (
		trials = 800
		nSamp  = 22
		f, c   = 0.5, 0.9
	)
	pop := sampleNormal(1234, 20000, 50, 5)
	truth, err := stats.Quantile(pop, f)
	if err != nil {
		t.Fatal(err)
	}
	miss := map[Composition]int{}
	tr := randx.New(99)
	for i := 0; i < trials; i++ {
		xs := make([]float64, nSamp)
		for j := range xs {
			xs[j] = pop[tr.Intn(len(pop))]
		}
		for _, comp := range []Composition{BonferroniSplit, PerSideC} {
			iv, err := ConfidenceInterval(xs, Params{F: f, C: c, Composition: comp})
			if err != nil {
				t.Fatal(err)
			}
			if !iv.Contains(truth) {
				miss[comp]++
			}
		}
	}
	split := float64(miss[BonferroniSplit]) / trials
	literal := float64(miss[PerSideC]) / trials
	if split > 1-c+0.03 {
		t.Errorf("split composition error %.3f exceeds 1-C", split)
	}
	if literal > 2*(1-c)+0.04 {
		t.Errorf("literal composition error %.3f exceeds its 2(1-C) bound", literal)
	}
	if literal <= split {
		t.Errorf("literal composition (%.3f) should miss more than the split (%.3f)", literal, split)
	}
}
