// Package core implements SPA — SMC for Processor Analysis — the paper's
// primary contribution (Sec. 4). SPA wraps the SMC engine of internal/smc
// with the three capabilities architects need:
//
//  1. Confidence intervals from SMC (Sec. 4.1): repeated fixed-sample
//     hypothesis tests at different property thresholds over the *same*
//     sample set are composed into a confidence interval for the metric
//     value at proportion F.
//  2. Engine management (Sec. 4.2): SPA generates the property thresholds
//     itself, searching outward from an initial estimate at a configurable
//     granularity until it finds the largest validated and smallest
//     invalidated thresholds. An exact order-statistic construction —
//     the granularity→0 limit of the search — is also provided and is the
//     default.
//  3. Parallel sample collection (Sec. 4.3): the minimum number of
//     executions for (F, C) is computed up front (22 for F = C = 0.9) and
//     executions are launched in parallel batches, each seeded
//     deterministically so campaigns are replicable.
package core
