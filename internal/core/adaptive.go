package core

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// WidthOptions tune AnalyzeToWidth.
type WidthOptions struct {
	// TargetWidth is the desired maximum CI width (absolute units of the
	// metric). Must be positive.
	TargetWidth float64
	// GrowBatch is how many extra executions each refinement round adds;
	// zero selects the (F, C) minimum again.
	GrowBatch int
	// MaxSamples bounds the total executions (0 selects 4096).
	MaxSamples int
	// Batch bounds parallel in-flight executions per round.
	Batch int
	// BaseSeed seeds the campaign.
	BaseSeed uint64
	// Hooks receive per-execution and per-round telemetry callbacks; the
	// zero value disables them (see Hooks). Seeds reported to hooks are
	// campaign-absolute (BaseSeed included).
	Hooks Hooks
}

// ErrWidthBudget reports that AnalyzeToWidth hit MaxSamples before the
// interval narrowed to the target.
var ErrWidthBudget = errors.New("core: sample budget exhausted before reaching target width")

// AnalyzeToWidth implements the refinement loop of Sec. 4.2: "if the
// architect decides that the interval [...] is wider than desired, she can
// decide to run more simulator executions, which may result in a narrower
// interval." It collects the (F, C) minimum first, then adds executions in
// rounds until the SPA interval is at most TargetWidth wide, reusing every
// earlier execution (seeds are consecutive, so the campaign stays
// replicable).
//
// On budget exhaustion the widest-effort analysis is returned together
// with ErrWidthBudget, so callers can still use the interval.
func AnalyzeToWidth(run RunFunc, p Params, w WidthOptions) (*Analysis, error) {
	return AnalyzeToWidthWith(FuncCollector(run), p, w)
}

// AnalyzeToWidthWith is AnalyzeToWidth against any collection backend;
// see AnalyzeWith. Refinement rounds extend the same consecutive seed
// range whichever backend runs them, so the campaign stays replicable.
func AnalyzeToWidthWith(c Collector, p Params, w WidthOptions) (*Analysis, error) {
	if c == nil {
		return nil, errNilCollector
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	if w.TargetWidth <= 0 {
		return nil, errors.New("core: non-positive target width")
	}
	minN, err := designMinSamples(c, p)
	if err != nil {
		return nil, err
	}
	grow := w.GrowBatch
	if grow <= 0 {
		grow = minN
	}
	maxN := w.MaxSamples
	if maxN <= 0 {
		maxN = 4096
	}
	if maxN < minN {
		return nil, fmt.Errorf("core: MaxSamples %d below the (F,C) minimum %d", maxN, minN)
	}

	// The sample buffer is sized once for the whole budget, so refinement
	// rounds append without regrowing, and the Analysis copy is made only
	// on the round that actually returns.
	samples := make([]float64, 0, maxN)
	next := uint64(0)
	collect := func(n int) error {
		fresh, err := c.Collect(w.BaseSeed+next, n, w.Batch, w.Hooks)
		if err != nil {
			return err
		}
		// The cursor advances by the count we asked for, so a backend that
		// returns short (or long) would desynchronize the seed range from
		// the sample count — every later round, and any replay of the
		// campaign, would disagree about which seed produced which sample.
		// That contract violation is fatal, not papered over.
		if len(fresh) != n {
			return &CollectionSizeError{BaseSeed: w.BaseSeed + next, Requested: n, Returned: len(fresh)}
		}
		samples = append(samples, fresh...)
		next += uint64(n)
		return nil
	}

	if err := collect(minN); err != nil {
		return nil, err
	}
	for {
		iv, err := designInterval(c, samples, p)
		if err != nil {
			return nil, err
		}
		if w.Hooks.OnRound != nil {
			w.Hooks.OnRound(len(samples), iv.Width())
		}
		done := iv.Width() <= w.TargetWidth
		exhausted := !done && len(samples) >= maxN
		if done || exhausted {
			a := &Analysis{Params: p, Samples: append([]float64(nil), samples...), Interval: iv, MinSamples: minN}
			if exhausted {
				return a, fmt.Errorf("%w: width %.6g after %d executions (target %.6g)",
					ErrWidthBudget, iv.Width(), len(samples), w.TargetWidth)
			}
			return a, nil
		}
		n := grow
		if len(samples)+n > maxN {
			n = maxN - len(samples)
		}
		if err := collect(n); err != nil {
			return nil, err
		}
	}
}

// WidthAtSamples estimates, by order-statistic geometry on an existing
// sample, how wide the SPA interval would be had n executions been drawn
// from the same distribution — a planning helper for sizing campaigns.
// It resamples the empirical distribution deterministically (stratified
// quantiles) and builds the CI on that synthetic sample.
func WidthAtSamples(existing []float64, p Params, n int) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if len(existing) == 0 {
		return 0, errors.New("core: empty sample")
	}
	minN, err := CIMinSamples(p)
	if err != nil {
		return 0, err
	}
	if n < minN {
		return 0, fmt.Errorf("%w: %d below minimum %d", ErrInsufficientSamples, n, minN)
	}
	sorted := append([]float64(nil), existing...)
	stats.SortFloats(sorted)
	synth := make([]float64, n)
	for i := range synth {
		f := (float64(i) + 0.5) / float64(n)
		synth[i] = stats.QuantileSorted(sorted, f)
	}
	iv, err := ConfidenceInterval(synth, p)
	if err != nil {
		return 0, err
	}
	return iv.Width(), nil
}
