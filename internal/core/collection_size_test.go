package core

import (
	"errors"
	"testing"

	"repro/internal/stats"
)

// shortCollector returns one sample fewer than requested — a broken
// backend (e.g. a remote collector that dropped an offset) that the
// adaptive loop must reject instead of silently desynchronizing its
// seed cursor from the sample count.
type shortCollector struct{ calls int }

func (s *shortCollector) Collect(baseSeed uint64, n, batch int, h Hooks) ([]float64, error) {
	s.calls++
	out := make([]float64, 0, n)
	for i := 0; i < n-1; i++ {
		out = append(out, 100+float64(baseSeed)+float64(i))
	}
	return out, nil
}

// TestAnalyzeToWidthShortCollection is the regression test for the seed
// cursor bug: before the fix, a short-returning Collector advanced the
// cursor by the requested n anyway, so the loop continued on a
// desynchronized seed range and returned a "successful" analysis whose
// samples no longer matched its seeds. Now it must fail with a typed
// CollectionSizeError on the very first round.
func TestAnalyzeToWidthShortCollection(t *testing.T) {
	sc := &shortCollector{}
	_, err := AnalyzeToWidthWith(sc, Params{F: 0.5, C: 0.9}, WidthOptions{TargetWidth: 1e9})
	var cse *CollectionSizeError
	if !errors.As(err, &cse) {
		t.Fatalf("AnalyzeToWidthWith with a short collector: got err %v, want CollectionSizeError", err)
	}
	if cse.Returned != cse.Requested-1 {
		t.Errorf("CollectionSizeError = %+v, want Returned = Requested-1", cse)
	}
	if sc.calls != 1 {
		t.Errorf("adaptive loop issued %d collects after a short collection, want 1", sc.calls)
	}
}

// TestAnalyzeWithShortCollection: the fixed-n entry point enforces the
// same contract.
func TestAnalyzeWithShortCollection(t *testing.T) {
	_, err := AnalyzeWith(&shortCollector{}, Params{F: 0.5, C: 0.9}, Options{Samples: 40})
	var cse *CollectionSizeError
	if !errors.As(err, &cse) {
		t.Fatalf("AnalyzeWith with a short collector: got err %v, want CollectionSizeError", err)
	}
	if cse.Requested != 40 || cse.Returned != 39 {
		t.Errorf("CollectionSizeError = %+v, want 39/40", cse)
	}
}

// fakeDesignCollector pins the estimator seam: when a collector carries
// its own estimator, AnalyzeWith/AnalyzeToWidthWith must build every
// interval (and the minimum sample count) through it rather than the
// plain order-statistic construction.
type fakeDesignCollector struct {
	intervalCalls int
	minCalls      int
}

func (f *fakeDesignCollector) Collect(baseSeed uint64, n, batch int, h Hooks) ([]float64, error) {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(baseSeed) + float64(i)
	}
	return out, nil
}

func (f *fakeDesignCollector) DesignInterval(samples []float64, p Params) (stats.Interval, error) {
	f.intervalCalls++
	return stats.Interval{Lo: 1, Hi: 3}, nil
}

func (f *fakeDesignCollector) DesignMinSamples(p Params) (int, error) {
	f.minCalls++
	return 7, nil
}

func TestDesignCollectorSeam(t *testing.T) {
	fc := &fakeDesignCollector{}
	an, err := AnalyzeWith(fc, Params{F: 0.5, C: 0.9}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fc.intervalCalls == 0 || fc.minCalls == 0 {
		t.Fatalf("AnalyzeWith bypassed the design estimator (interval calls %d, min calls %d)",
			fc.intervalCalls, fc.minCalls)
	}
	if an.MinSamples != 7 || len(an.Samples) != 7 {
		t.Errorf("AnalyzeWith ignored DesignMinSamples: MinSamples=%d samples=%d, want 7",
			an.MinSamples, len(an.Samples))
	}
	if an.Interval != (stats.Interval{Lo: 1, Hi: 3}) {
		t.Errorf("AnalyzeWith interval = %+v, want the design estimator's", an.Interval)
	}

	fc = &fakeDesignCollector{}
	an, err = AnalyzeToWidthWith(fc, Params{F: 0.5, C: 0.9}, WidthOptions{TargetWidth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if fc.intervalCalls == 0 || fc.minCalls == 0 {
		t.Fatalf("AnalyzeToWidthWith bypassed the design estimator (interval calls %d, min calls %d)",
			fc.intervalCalls, fc.minCalls)
	}
	if len(an.Samples) != 7 {
		t.Errorf("adaptive loop collected %d samples, want the design minimum 7", len(an.Samples))
	}
}
