package campaignd

import (
	"repro/internal/manifest"
)

// State is a campaign's position in the service state machine.
//
//	queued ──► running ──► done
//	  │           │  ├───► failed
//	  │           │  └───► cancelled
//	  │           └──────► queued      (drain/crash: requeued for resume)
//	  └──────────────────► cancelled
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state has no outgoing transitions.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Entry-progress states. Distinct from campaign State: an entry is
// pending until the runner reaches it, then running/done/failed.
const (
	EntryPending = "pending"
	EntryRunning = "running"
	EntryDone    = "done"
	EntryFailed  = "failed"
)

// EntryProgress is one manifest entry's journaled progress row.
type EntryProgress struct {
	Key   string `json:"key"`
	State string `json:"state"`
	// Reused marks the resume/popcache path: the population came off
	// disk instead of being re-simulated.
	Reused bool   `json:"reused,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Record is the journaled campaign: everything a restarted server needs
// to resume it, and everything the status endpoint reports. It is
// persisted as campaign.json in the campaign's directory on every state
// transition (campaign-level and entry-level).
type Record struct {
	ID string `json:"id"`
	// Seq is the admission sequence number; restarts rebuild tenant FIFO
	// order from it.
	Seq  uint64 `json:"seq"`
	Spec Spec   `json:"spec"`
	// Cost and Weight are frozen at admission so scheduling is stable
	// across restarts even if defaulting rules evolve.
	Cost   int    `json:"cost"`
	Weight int    `json:"weight"`
	State  State  `json:"state"`
	Error  string `json:"error,omitempty"`
	// Entries is per-entry progress, index-aligned with the manifest.
	Entries []EntryProgress `json:"entries"`
	// Rounds is the live adaptive-convergence trajectory of the current
	// (or final) execution — the PR 6 telemetry, surfaced per campaign.
	// Journaled on entry boundaries; a resume rebuilds it exactly, since
	// adaptive collection is deterministic in the manifest seed.
	Rounds []manifest.ConvergenceRound `json:"rounds,omitempty"`
	// Resumes counts how many times the campaign was re-queued after a
	// drain or crash.
	Resumes int `json:"resumes,omitempty"`

	SubmittedUnixMS int64 `json:"submitted_unix_ms,omitempty"`
	StartedUnixMS   int64 `json:"started_unix_ms,omitempty"`
	FinishedUnixMS  int64 `json:"finished_unix_ms,omitempty"`
}

// newRecord builds the queued-state record for an admitted spec.
func newRecord(id string, seq uint64, spec Spec, nowMS int64) *Record {
	rec := &Record{
		ID: id, Seq: seq, Spec: spec,
		Cost: spec.Cost(), Weight: spec.Weight(),
		State:           StateQueued,
		SubmittedUnixMS: nowMS,
	}
	rec.Entries = make([]EntryProgress, len(spec.Manifest.Entries))
	for i, e := range spec.Manifest.Entries {
		rec.Entries[i] = EntryProgress{Key: e.Key(), State: EntryPending}
	}
	return rec
}

// resetProgress rewinds per-entry progress and the convergence trace for
// a fresh (or resumed) execution; the runner's hooks repopulate both.
func (r *Record) resetProgress() {
	for i := range r.Entries {
		r.Entries[i].State = EntryPending
		r.Entries[i].Reused = false
		r.Entries[i].Error = ""
	}
	r.Rounds = nil
}
