package campaignd

import (
	"errors"
	"fmt"
	"regexp"

	"repro/internal/manifest"
)

// maxPriority caps the DRR weight a tenant can request, so one tenant
// cannot buy unbounded scheduling share with a large number.
const maxPriority = 8

// tenantRE constrains tenant names to something safe for metric labels,
// JSON, and log lines. Campaign directories are named by server-assigned
// IDs, so tenants never name filesystem paths, but the label hygiene
// still matters.
var tenantRE = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,31}$`)

// Spec is one campaign submission: the existing manifest format plus the
// multi-tenant metadata the scheduler consumes.
type Spec struct {
	// Tenant is the submitting tenant's identity (lowercase alphanumeric
	// plus ._-, at most 32 chars). Admission caps and fair-share
	// scheduling are per tenant.
	Tenant string `json:"tenant"`
	// Priority is the tenant-requested scheduling weight, 1 (default)
	// to 8. A priority-2 campaign's tenant accrues deficit credit twice
	// as fast as a priority-1 one — more share, never exclusive access.
	Priority int `json:"priority,omitempty"`
	// Manifest is the campaign itself, unchanged from the CLI format.
	Manifest *manifest.Manifest `json:"manifest"`
}

// Validate checks the submission before it is admitted.
func (s *Spec) Validate() error {
	if s == nil {
		return errors.New("campaignd: nil spec")
	}
	if !tenantRE.MatchString(s.Tenant) {
		return fmt.Errorf("campaignd: invalid tenant %q (want %s)", s.Tenant, tenantRE)
	}
	if s.Priority < 0 || s.Priority > maxPriority {
		return fmt.Errorf("campaignd: priority %d out of range [0,%d]", s.Priority, maxPriority)
	}
	if s.Manifest == nil {
		return errors.New("campaignd: spec has no manifest")
	}
	return s.Manifest.Validate()
}

// Weight is the spec's effective DRR weight.
func (s *Spec) Weight() int {
	if s.Priority <= 0 {
		return 1
	}
	if s.Priority > maxPriority {
		return maxPriority
	}
	return s.Priority
}

// Cost is the campaign's scheduling cost in simulated runs — the unit
// deficits accrue in. It mirrors the runner's per-entry run-count
// defaulting so the scheduler charges what the fleet will actually
// execute (analyses re-collect on top of this for adaptive mode, but
// population generation dominates).
func (s *Spec) Cost() int {
	total := 0
	for _, e := range s.Manifest.Entries {
		runs := e.Runs
		if runs <= 0 {
			runs = s.Manifest.Runs
		}
		if runs <= 0 {
			runs = 100
		}
		total += runs
	}
	return total
}
