package campaignd

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/manifest"
)

// recordFile is the journal file inside each campaign directory.
const recordFile = "campaign.json"

// journal persists campaign Records, one directory per campaign under
// the service data dir:
//
//	<dir>/<id>/campaign.json           the Record (this file)
//	<dir>/<id>/<name>-<entry>.json     populations (runner resume files)
//	<dir>/<id>/<name>-report.json      the final report
//	<dir>/<id>/<name>-telemetry.jsonl  convergence journal (adaptive)
//
// Every write goes through manifest.WriteFileAtomic, so a crash mid-save
// leaves the previous consistent state, never a truncated record — the
// same guarantee the runner's population files already have, which is
// what makes kill-anywhere resume safe.
type journal struct {
	dir string
}

// campaignDir is the directory owning one campaign's record + artifacts.
func (j journal) campaignDir(id string) string {
	return filepath.Join(j.dir, id)
}

// save journals the record (creating the campaign dir on first save).
func (j journal) save(rec *Record) error {
	dir := j.campaignDir(rec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return manifest.WriteFileAtomic(filepath.Join(dir, recordFile), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(rec)
	})
}

// load reads one campaign's record.
func (j journal) load(id string) (*Record, error) {
	f, err := os.Open(filepath.Join(j.campaignDir(id), recordFile))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rec Record
	if err := json.NewDecoder(f).Decode(&rec); err != nil {
		return nil, fmt.Errorf("campaignd: corrupt record %s: %w", id, err)
	}
	return &rec, nil
}

// scan loads every journaled campaign, ordered by admission sequence —
// the restart path. Directories without a readable record are skipped
// (a crash between MkdirAll and the first save leaves one); they carry
// no committed state.
func (j journal) scan() ([]*Record, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var recs []*Record
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rec, err := j.load(e.Name())
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Seq < recs[b].Seq })
	return recs, nil
}
