package campaignd

import (
	"reflect"
	"testing"
)

// mkRec builds a scheduler-only record (no manifest needed: the
// scheduler reads Cost/Weight/ID/Tenant and nothing else).
func mkRec(id, tenant string, cost, weight int) *Record {
	return &Record{ID: id, Spec: Spec{Tenant: tenant}, Cost: cost, Weight: weight, State: StateQueued}
}

func ids(recs []*Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.ID
	}
	return out
}

// Equal-weight tenants with equal-cost campaigns must alternate strictly:
// one campaign per tenant per rotation, FIFO within each tenant.
func TestSchedulerAlternatesEqualTenants(t *testing.T) {
	s := newScheduler(100, 10)
	for _, id := range []string{"a1", "a2", "a3"} {
		s.enqueue(mkRec(id, "alpha", 100, 1))
	}
	for _, id := range []string{"b1", "b2", "b3"} {
		s.enqueue(mkRec(id, "beta", 100, 1))
	}
	got := ids(s.next(6))
	want := []string{"a1", "b1", "a2", "b2", "a3", "b3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DRR order = %v, want %v", got, want)
	}
}

// A weight-2 tenant accrues credit twice as fast, so it starts two
// campaigns per rotation against a weight-1 tenant's one.
func TestSchedulerWeightsShare(t *testing.T) {
	s := newScheduler(100, 10)
	for _, id := range []string{"a1", "a2", "a3"} {
		s.enqueue(mkRec(id, "alpha", 100, 2))
	}
	for _, id := range []string{"b1", "b2", "b3"} {
		s.enqueue(mkRec(id, "beta", 100, 1))
	}
	got := ids(s.next(6))
	want := []string{"a1", "a2", "b1", "a3", "b2", "b3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("weighted DRR order = %v, want %v", got, want)
	}
}

// A campaign costing several quanta starts only after its tenant
// accrues enough credit — and the accrual must not block other tenants.
func TestSchedulerCostAccrual(t *testing.T) {
	s := newScheduler(10, 10)
	s.enqueue(mkRec("big", "alpha", 25, 1))
	s.enqueue(mkRec("small", "beta", 5, 1))
	got := ids(s.next(2))
	// beta's cheap campaign must not wait for alpha's three accrual
	// visits (10, 20, 30 ≥ 25).
	want := []string{"small", "big"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

// A tenant at its running cap is parked without accruing credit; its
// queue drains only after a slot frees.
func TestSchedulerRunningCapParks(t *testing.T) {
	s := newScheduler(100, 1)
	s.enqueue(mkRec("a1", "alpha", 100, 1))
	s.enqueue(mkRec("a2", "alpha", 100, 1))
	s.enqueue(mkRec("b1", "beta", 100, 1))
	got := ids(s.next(3))
	want := []string{"a1", "b1"} // a2 parked: alpha at cap
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("capped order = %v, want %v", got, want)
	}
	if d := s.queueDepth("alpha"); d != 1 {
		t.Fatalf("alpha queue depth = %d, want 1", d)
	}
	// No slot frees: another pass starts nothing (and must terminate).
	if extra := s.next(3); len(extra) != 0 {
		t.Fatalf("pass with capped tenant started %v", ids(extra))
	}
	s.finished("alpha")
	got = ids(s.next(3))
	if !reflect.DeepEqual(got, []string{"a2"}) {
		t.Fatalf("after slot freed = %v, want [a2]", got)
	}
}

// An emptied queue forfeits leftover deficit: an idle tenant cannot bank
// credit and later burst past the rotation.
func TestSchedulerForfeitsDeficitWhenIdle(t *testing.T) {
	s := newScheduler(100, 10)
	s.enqueue(mkRec("a1", "alpha", 10, 1)) // visit leaves 90 credit
	if got := ids(s.next(1)); !reflect.DeepEqual(got, []string{"a1"}) {
		t.Fatalf("first pass = %v", got)
	}
	s.enqueue(mkRec("a2", "alpha", 100, 1))
	s.enqueue(mkRec("b1", "beta", 100, 1))
	got := ids(s.next(2))
	// alpha re-enters with zero deficit, so it has no head start; the
	// rotation is FIFO by (re-)activation order.
	want := []string{"a2", "b1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-idle order = %v, want %v", got, want)
	}
	if s.tenants["alpha"].deficit != 0 {
		t.Fatalf("alpha kept %d deficit after emptying", s.tenants["alpha"].deficit)
	}
}

// remove (the cancel path) deletes a queued campaign wherever it sits.
func TestSchedulerRemove(t *testing.T) {
	s := newScheduler(100, 10)
	s.enqueue(mkRec("a1", "alpha", 100, 1))
	s.enqueue(mkRec("a2", "alpha", 100, 1))
	if !s.remove("a1") {
		t.Fatal("remove(a1) = false")
	}
	if s.remove("a1") {
		t.Fatal("double remove succeeded")
	}
	if got := ids(s.next(2)); !reflect.DeepEqual(got, []string{"a2"}) {
		t.Fatalf("after remove = %v, want [a2]", got)
	}
}

// snapshot reports rotation order first and is deterministic.
func TestSchedulerSnapshot(t *testing.T) {
	s := newScheduler(100, 10)
	s.enqueue(mkRec("b1", "beta", 100, 1))
	s.enqueue(mkRec("a1", "alpha", 100, 1))
	snap := s.snapshot()
	if len(snap) != 2 || snap[0].Tenant != "beta" || snap[1].Tenant != "alpha" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if !reflect.DeepEqual(snap[0].Queued, []string{"b1"}) {
		t.Fatalf("beta queue = %v", snap[0].Queued)
	}
}
