package campaignd

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/sim"
)

// lockedBuffer lets two workers share one trace sink; the tracer holds
// its own encoder mutex, but reads must not race late span emissions.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// startFleetWorker boots an in-process spaworker wired to the shared
// trace sink.
func startFleetWorker(t *testing.T, o *obs.Observer) *dist.Worker {
	t.Helper()
	w := &dist.Worker{Parallelism: 1, Obs: o}
	if err := w.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = w.Serve() }()
	t.Cleanup(func() { w.Close() })
	return w
}

// The fairness acceptance test: two tenants submit equal campaigns to a
// saturated two-worker fleet (one simulation slot per worker) and the
// fleet must execute chunks from both tenants interleaved — neither
// tenant's campaign runs to completion before the other starts.
func TestTwoTenantChunkInterleaving(t *testing.T) {
	trace := &lockedBuffer{}
	wobs := &obs.Observer{Tracer: obs.NewTracer(trace)}
	w1 := startFleetWorker(t, wobs)
	w2 := startFleetWorker(t, wobs)

	s := startService(t, Config{
		Workers:    []string{w1.Addr(), w2.Addr()},
		MaxRunning: 2,
	})
	// Small chunks give the scheduler and workers many dispatch points to
	// interleave; both campaigns must be in flight before chunks flow.
	s.Coordinator().ChunkSize = 3

	mk := func(name, bench string) *manifest.Manifest {
		return &manifest.Manifest{
			Name: name, Seed: 11, Scale: 0.05, Runs: 120,
			Entries:  []manifest.Entry{{Benchmark: bench}},
			Analyses: []manifest.Analysis{{Metric: sim.MetricRuntime, F: 0.5, C: 0.9}},
		}
	}
	idA, err := s.Submit(Spec{Tenant: "alpha", Manifest: mk("fair-a", "swaptions")})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := s.Submit(Spec{Tenant: "beta", Manifest: mk("fair-b", "canneal")})
	if err != nil {
		t.Fatal(err)
	}
	if rec := waitTerminal(t, s, idA, 120*time.Second); rec.State != StateDone {
		t.Fatalf("tenant alpha campaign = %v (%s)", rec.State, rec.Error)
	}
	if rec := waitTerminal(t, s, idB, 120*time.Second); rec.State != StateDone {
		t.Fatalf("tenant beta campaign = %v (%s)", rec.State, rec.Error)
	}

	// Reconstruct the fleet's dispatch order from worker chunk spans.
	type span struct {
		Kind  string    `json:"kind"`
		Name  string    `json:"name"`
		Start time.Time `json:"start"`
		Attrs struct {
			Benchmark string `json:"benchmark"`
		} `json:"attrs"`
	}
	var starts []span
	for _, line := range bytes.Split(trace.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var sp span
		if err := json.Unmarshal(line, &sp); err != nil {
			t.Fatalf("bad trace line %s: %v", line, err)
		}
		if sp.Kind == "span" && sp.Name == "dist.worker_chunk" {
			starts = append(starts, sp)
		}
	}
	var firstA, lastA, firstB, lastB time.Time
	nA, nB := 0, 0
	for _, sp := range starts {
		switch sp.Attrs.Benchmark {
		case "swaptions":
			if nA == 0 || sp.Start.Before(firstA) {
				firstA = sp.Start
			}
			if sp.Start.After(lastA) {
				lastA = sp.Start
			}
			nA++
		case "canneal":
			if nB == 0 || sp.Start.Before(firstB) {
				firstB = sp.Start
			}
			if sp.Start.After(lastB) {
				lastB = sp.Start
			}
			nB++
		}
	}
	// 120 runs / 3-run chunks = 40 chunks per tenant (re-dispatches can
	// add more, never fewer).
	if nA < 40 || nB < 40 {
		t.Fatalf("fleet served %d swaptions + %d canneal chunks, want >= 40 each", nA, nB)
	}
	// Interleaved dispatch: each tenant's first chunk starts before the
	// other tenant's last chunk — neither campaign was serialized behind
	// the other on the saturated fleet.
	if !firstA.Before(lastB) || !firstB.Before(lastA) {
		t.Fatalf("chunk dispatch not interleaved: swaptions [%s, %s], canneal [%s, %s]",
			firstA.Format(time.RFC3339Nano), lastA.Format(time.RFC3339Nano),
			firstB.Format(time.RFC3339Nano), lastB.Format(time.RFC3339Nano))
	}
}
