package campaignd

import "sort"

// scheduler implements weighted deficit round robin across tenants with
// FIFO order within a tenant — the shape Bulychev-style chunked SMC
// wants: campaigns are schedulable units with a known cost (simulated
// runs), tenants take turns accruing credit, and a campaign starts when
// its tenant's accumulated deficit covers its cost. The active list is a
// FIFO of tenants, so every tenant with queued work is visited once per
// rotation and none starves regardless of priorities.
//
// The scheduler is pure bookkeeping: no goroutines, no clock, no IO. The
// Service drives it under its own lock, which is what makes its decisions
// easy to test deterministically.
type scheduler struct {
	// quantum is the credit (in simulated runs) a weight-1 tenant accrues
	// per visit.
	quantum int
	// tenantRunningCap bounds concurrently running campaigns per tenant.
	tenantRunningCap int

	tenants map[string]*tenantQueue
	// active is the DRR rotation: tenants with queued campaigns, visited
	// FIFO. A tenant appears at most once (tenantQueue.active).
	active []string
}

// tenantQueue is one tenant's scheduler state.
type tenantQueue struct {
	queue   []*Record // FIFO of queued campaigns
	deficit int       // accrued credit, in runs
	running int       // campaigns currently executing
	active  bool      // present in the rotation list
}

func newScheduler(quantum, tenantRunningCap int) *scheduler {
	if quantum <= 0 {
		quantum = 256
	}
	if tenantRunningCap <= 0 {
		tenantRunningCap = 2
	}
	return &scheduler{
		quantum:          quantum,
		tenantRunningCap: tenantRunningCap,
		tenants:          make(map[string]*tenantQueue),
	}
}

func (s *scheduler) tenant(name string) *tenantQueue {
	t := s.tenants[name]
	if t == nil {
		t = &tenantQueue{}
		s.tenants[name] = t
	}
	return t
}

// enqueue appends a campaign to its tenant's FIFO and joins the tenant
// into the rotation if absent.
func (s *scheduler) enqueue(rec *Record) {
	t := s.tenant(rec.Spec.Tenant)
	t.queue = append(t.queue, rec)
	if !t.active {
		t.active = true
		s.active = append(s.active, rec.Spec.Tenant)
	}
}

// remove deletes a queued campaign (the cancel path); false if absent.
func (s *scheduler) remove(id string) bool {
	for _, t := range s.tenants {
		for i, rec := range t.queue {
			if rec.ID == id {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				return true
			}
		}
	}
	return false
}

// queueDepth is the tenant's queued-campaign count (admission control).
func (s *scheduler) queueDepth(tenant string) int {
	if t := s.tenants[tenant]; t != nil {
		return len(t.queue)
	}
	return 0
}

// running is the tenant's in-flight campaign count.
func (s *scheduler) runningCount(tenant string) int {
	if t := s.tenants[tenant]; t != nil {
		return t.running
	}
	return 0
}

// next picks up to slots campaigns to start, in DRR order, marking their
// tenants' running counts. Each visited tenant accrues quantum×weight
// credit and dequeues head campaigns while the credit covers their cost;
// a tenant at its running cap is parked without credit (its turn is not
// spent waiting). The loop terminates when slots are exhausted or a full
// rotation made no progress and accrued no credit.
func (s *scheduler) next(slots int) []*Record {
	var out []*Record
	parked := 0 // consecutive visits that neither credited nor dequeued
	for slots > 0 && len(s.active) > 0 && parked < len(s.active) {
		name := s.active[0]
		s.active = s.active[1:]
		t := s.tenants[name]
		if len(t.queue) == 0 {
			t.active = false
			t.deficit = 0
			continue
		}
		if t.running >= s.tenantRunningCap {
			// Parked: stays in rotation but accrues nothing while capped,
			// so a tenant cannot bank unbounded credit it can't use.
			s.active = append(s.active, name)
			parked++
			continue
		}
		parked = 0
		t.deficit += s.quantum * t.queue[0].Weight
		for len(t.queue) > 0 && slots > 0 && t.running < s.tenantRunningCap && t.queue[0].Cost <= t.deficit {
			rec := t.queue[0]
			t.queue = t.queue[1:]
			t.deficit -= rec.Cost
			t.running++
			slots--
			out = append(out, rec)
		}
		if len(t.queue) > 0 {
			s.active = append(s.active, name)
		} else {
			// An emptied queue forfeits leftover credit: deficits reward
			// waiting work, not idle tenants.
			t.active = false
			t.deficit = 0
		}
	}
	return out
}

// finished returns a tenant's running slot (campaign completed,
// cancelled, failed, or requeued by a drain).
func (s *scheduler) finished(tenant string) {
	if t := s.tenants[tenant]; t != nil && t.running > 0 {
		t.running--
	}
}

// TenantStatus is one tenant's row in the /v1/queue snapshot.
type TenantStatus struct {
	Tenant  string   `json:"tenant"`
	Queued  []string `json:"queued,omitempty"` // campaign IDs, FIFO order
	Running int      `json:"running"`
	Deficit int      `json:"deficit"`
}

// snapshot lists per-tenant queue state, rotation order first, then
// inactive tenants with running campaigns (sorted by name at the call
// site if needed — the rotation order itself is informative).
func (s *scheduler) snapshot() []TenantStatus {
	seen := make(map[string]bool, len(s.tenants))
	var out []TenantStatus
	add := func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		t := s.tenants[name]
		st := TenantStatus{Tenant: name, Running: t.running, Deficit: t.deficit}
		for _, rec := range t.queue {
			st.Queued = append(st.Queued, rec.ID)
		}
		out = append(out, st)
	}
	for _, name := range s.active {
		add(name)
	}
	rest := make([]string, 0, len(s.tenants))
	for name, t := range s.tenants {
		if t.running > 0 && !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		add(name)
	}
	return out
}
