// Package campaignd is the multi-tenant campaign service behind cmd/spad:
// a long-running server that accepts manifest-based campaign submissions
// from many tenants, admission-controls them (per-tenant queue and
// in-flight caps, HTTP 429 on overload), schedules them onto a shared
// worker fleet with weighted deficit-round-robin fairness, and journals
// every state transition so a restarted server resumes incomplete
// campaigns exactly where they left off.
//
// The package splits into four layers:
//
//   - Spec/Record (spec.go, record.go): what a tenant submits — the
//     existing manifest format plus tenant/priority metadata — and the
//     journaled campaign state machine
//     (queued → running → done/failed/cancelled).
//   - journal (journal.go): crash-safe persistence of Records through
//     manifest.WriteFileAtomic, one directory per campaign holding
//     campaign.json next to the runner's population/report artifacts, so
//     the campaign's resume state and its data live and die together.
//   - scheduler (sched.go): deficit round robin across tenants — each
//     tenant queue is FIFO, credit accrues in simulated-run units
//     weighted by priority, and a campaign starts when its tenant's
//     deficit covers its cost. No tenant starves: the active list is a
//     FIFO of tenants, so every tenant with queued work is visited each
//     rotation.
//   - Service/HTTP (service.go, http.go): the orchestration loop tying
//     admission, scheduling, execution through manifest.Runner over one
//     shared dist.Coordinator, journaling, cancellation, and drain
//     together, exposed as an HTTP/JSON API.
package campaignd
