package campaignd

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/sim"
)

// testManifest is a fast campaign: nEntries swaptions variants at tiny
// scale, one SPA analysis.
func testManifest(name string, nEntries, runs int) *manifest.Manifest {
	m := &manifest.Manifest{
		Name:  name,
		Seed:  7,
		Scale: 0.05,
		Runs:  runs,
		Analyses: []manifest.Analysis{
			{Metric: sim.MetricRuntime, F: 0.5, C: 0.9},
		},
	}
	variants := []string{"", "l2half", "l2double", "hardware"}
	for i := 0; i < nEntries && i < len(variants); i++ {
		m.Entries = append(m.Entries, manifest.Entry{Benchmark: "swaptions", Variant: variants[i]})
	}
	return m
}

func startService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Drain(30 * time.Second) })
	return s
}

// waitTerminal polls until the campaign reaches a terminal state.
func waitTerminal(t *testing.T, s *Service, id string, timeout time.Duration) *Record {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		rec, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State.Terminal() {
			return rec
		}
		time.Sleep(2 * time.Millisecond)
	}
	rec, _ := s.Get(id)
	t.Fatalf("campaign %s not terminal after %s (state %v)", id, timeout, rec.State)
	return nil
}

func TestServiceLifecycle(t *testing.T) {
	s := startService(t, Config{})
	id, err := s.Submit(Spec{Tenant: "acme", Manifest: testManifest("lc", 2, 24)})
	if err != nil {
		t.Fatal(err)
	}
	rec := waitTerminal(t, s, id, 30*time.Second)
	if rec.State != StateDone {
		t.Fatalf("state = %v (error %q), want done", rec.State, rec.Error)
	}
	for i, e := range rec.Entries {
		if e.State != EntryDone {
			t.Errorf("entry %d (%s) state = %s, want done", i, e.Key, e.State)
		}
	}
	if rec.StartedUnixMS == 0 || rec.FinishedUnixMS == 0 {
		t.Error("missing timestamps")
	}
	// The report exists and parses.
	path, err := s.ReportPath(id)
	if err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep manifest.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Name != "lc" || len(rep.Results) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	// List knows it; the queue is empty again.
	if recs := s.List(); len(recs) != 1 || recs[0].ID != id {
		t.Fatalf("List = %+v", recs)
	}
	if q := s.Queue(); q.Queued != 0 || q.Running != 0 {
		t.Fatalf("queue not drained: %+v", q)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := startService(t, Config{})
	cases := []Spec{
		{Tenant: "Bad Tenant", Manifest: testManifest("v", 1, 8)},
		{Tenant: "ok", Priority: 99, Manifest: testManifest("v", 1, 8)},
		{Tenant: "ok"},
		{Tenant: "ok", Manifest: &manifest.Manifest{Name: "empty"}},
	}
	for i, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("case %d: invalid spec admitted", i)
		}
	}
}

// Admission control: per-tenant and global queue caps reject with typed
// reasons while a long campaign holds the single running slot.
func TestAdmissionControl(t *testing.T) {
	s := startService(t, Config{
		MaxRunning:     1,
		TenantQueueCap: 2,
		MaxQueued:      3,
	})
	// Occupies the only running slot for the duration of the test.
	heavyID, err := s.Submit(Spec{Tenant: "acme", Manifest: testManifest("heavy", 2, 4000)})
	if err != nil {
		t.Fatal(err)
	}
	// Fill acme's queue.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(Spec{Tenant: "acme", Manifest: testManifest("q", 1, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	var over *ErrOverloaded
	if _, err := s.Submit(Spec{Tenant: "acme", Manifest: testManifest("q", 1, 8)}); !errors.As(err, &over) || over.Reason != ReasonQueueFull {
		t.Fatalf("tenant overflow err = %v, want %s", err, ReasonQueueFull)
	}
	// A different tenant still gets the remaining global slot...
	otherID, err := s.Submit(Spec{Tenant: "zeta", Manifest: testManifest("q", 1, 8)})
	if err != nil {
		t.Fatal(err)
	}
	// ...and then the global cap rejects.
	if _, err := s.Submit(Spec{Tenant: "zeta", Manifest: testManifest("q", 1, 8)}); !errors.As(err, &over) || over.Reason != ReasonServerFull {
		t.Fatalf("global overflow err = %v, want %s", err, ReasonServerFull)
	}
	// Cancelling a queued campaign frees its slot immediately.
	if err := s.Cancel(otherID); err != nil {
		t.Fatal(err)
	}
	if rec, _ := s.Get(otherID); rec.State != StateCancelled {
		t.Fatalf("queued cancel state = %v", rec.State)
	}
	if _, err := s.Submit(Spec{Tenant: "zeta", Manifest: testManifest("q", 1, 8)}); err != nil {
		t.Fatalf("slot not freed after cancel: %v", err)
	}
	// Cancelling the running campaign is cooperative but prompt (chunk
	// granularity), and double-cancel of a terminal campaign is a
	// conflict.
	if err := s.Cancel(heavyID); err != nil {
		t.Fatal(err)
	}
	rec := waitTerminal(t, s, heavyID, 30*time.Second)
	if rec.State != StateCancelled {
		t.Fatalf("running cancel state = %v", rec.State)
	}
	if err := s.Cancel(heavyID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("cancel after terminal = %v, want ErrTerminal", err)
	}
	if err := s.Cancel("c99999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown = %v, want ErrNotFound", err)
	}
}

// The resume acceptance test: drain the service mid-campaign (the
// in-process equivalent of killing spad), restart on the same data dir,
// and require the final report to be byte-identical to an uninterrupted
// run of the same manifest.
func TestResumeReportByteIdentical(t *testing.T) {
	dir := t.TempDir()
	m := testManifest("resume", 3, 150)

	svc1 := New(Config{DataDir: dir})
	if err := svc1.Start(); err != nil {
		t.Fatal(err)
	}
	id, err := svc1.Submit(Spec{Tenant: "acme", Manifest: m})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the campaign is actually executing an entry, then pull
	// the plug.
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec, err := svc1.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State == StateRunning {
			running := false
			for _, e := range rec.Entries {
				if e.State != EntryPending {
					running = true
				}
			}
			if running {
				break
			}
		}
		if rec.State.Terminal() {
			t.Fatalf("campaign finished before the drain could interrupt it — enlarge the manifest")
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never started")
		}
		time.Sleep(500 * time.Microsecond)
	}
	svc1.Drain(30 * time.Second)

	// The journal must show an interrupted campaign ready to resume.
	j := journal{dir: dir}
	rec, err := j.load(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateQueued || rec.Resumes != 1 {
		t.Fatalf("journal after drain: state=%v resumes=%d, want queued/1", rec.State, rec.Resumes)
	}

	// Restart: a fresh service on the same data dir resumes and finishes.
	svc2 := startService(t, Config{DataDir: dir})
	final := waitTerminal(t, svc2, id, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("resumed campaign state = %v (error %q)", final.State, final.Error)
	}
	if final.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1", final.Resumes)
	}
	path, err := svc2.ReportPath(id)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted control run of the same manifest.
	svc3 := startService(t, Config{DataDir: t.TempDir()})
	id3, err := svc3.Submit(Spec{Tenant: "acme", Manifest: testManifest("resume", 3, 150)})
	if err != nil {
		t.Fatal(err)
	}
	if rec := waitTerminal(t, svc3, id3, 60*time.Second); rec.State != StateDone {
		t.Fatalf("control campaign state = %v (error %q)", rec.State, rec.Error)
	}
	path3, err := svc3.ReportPath(id3)
	if err != nil {
		t.Fatal(err)
	}
	control, err := os.ReadFile(path3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, control) {
		t.Fatalf("resumed report differs from uninterrupted run:\nresumed:  %s\ncontrol:  %s", resumed, control)
	}
}

// Draining rejects new submissions with the draining reason.
func TestDrainRejectsSubmissions(t *testing.T) {
	s := startService(t, Config{})
	s.Drain(time.Second)
	var over *ErrOverloaded
	if _, err := s.Submit(Spec{Tenant: "acme", Manifest: testManifest("d", 1, 8)}); !errors.As(err, &over) || over.Reason != ReasonDraining {
		t.Fatalf("submit while draining = %v, want %s", err, ReasonDraining)
	}
}

func TestHTTPAPI(t *testing.T) {
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	s := startService(t, Config{Obs: o})
	srv := httptest.NewServer(NewHandler(s, o))
	defer srv.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	// Bad JSON and invalid specs are 400s.
	if resp, _ := post("{nope"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", resp.StatusCode)
	}
	if resp, _ := post(`{"tenant":"NOPE","manifest":null}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec status = %d", resp.StatusCode)
	}

	// Submit a real campaign.
	mb, _ := json.Marshal(testManifest("http", 1, 16))
	resp, body := post(`{"tenant":"acme","priority":2,"manifest":` + string(mb) + `}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit response %s: %v", body, err)
	}

	waitTerminal(t, s, sub.ID, 30*time.Second)

	// Status endpoint.
	resp, body = get("/v1/campaigns/" + sub.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rec Record
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != StateDone || len(rec.Entries) != 1 {
		t.Fatalf("record = %+v", rec)
	}
	// Report endpoint serves the runner's JSON verbatim.
	resp, body = get("/v1/campaigns/" + sub.ID + "/report")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d: %s", resp.StatusCode, body)
	}
	var rep manifest.Report
	if err := json.Unmarshal(body, &rep); err != nil || rep.Name != "http" {
		t.Fatalf("report %s: %v", body, err)
	}
	// List + queue.
	if resp, _ = get("/v1/campaigns"); resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	resp, body = get("/v1/queue")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queue status = %d", resp.StatusCode)
	}
	var q QueueStatus
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	// Unknowns are 404; cancel of a done campaign is 409.
	if resp, _ = get("/v1/campaigns/c99999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign status = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/campaigns/"+sub.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel done campaign status = %d", dresp.StatusCode)
	}

	// Telemetry rides on the same mux: per-tenant series on /metrics,
	// scheduler + coordinator state on /statusz.
	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `spa_campaignd_submitted_total{tenant="acme"} 1`) {
		t.Fatalf("/metrics missing per-tenant submitted series:\n%s", body)
	}
	if !strings.Contains(string(body), `spa_campaignd_campaigns_total{state="done",tenant="acme"} 1`) {
		t.Fatalf("/metrics missing per-tenant done series:\n%s", body)
	}
	resp, body = get("/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"queue"`) || !strings.Contains(string(body), `"coordinator"`) {
		t.Fatalf("/statusz missing sections: %s", body)
	}
}

// HTTP admission rejections carry 429 + Retry-After and a machine
// reason.
func TestHTTPOverloadStatus(t *testing.T) {
	s := startService(t, Config{MaxRunning: 1, TenantQueueCap: 1, MaxQueued: 2})
	srv := httptest.NewServer(NewHandler(s, nil))
	defer srv.Close()

	submit := func(tenant, name string, runs int) *http.Response {
		t.Helper()
		mb, _ := json.Marshal(testManifest(name, 1, runs))
		resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json",
			strings.NewReader(`{"tenant":"`+tenant+`","manifest":`+string(mb)+`}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := submit("acme", "heavy", 4000); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	if resp := submit("acme", "q1", 8); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", resp.StatusCode)
	}
	resp := submit("acme", "q2", 8)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
}
