package campaignd

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/popcache"
)

// Config tunes the Service. Zero values select sane defaults.
type Config struct {
	// DataDir is the journal root: one subdirectory per campaign holding
	// its record, populations, report, and telemetry journal.
	DataDir string
	// Workers are spaworker addresses shared by every campaign; empty
	// runs everything in-process (still through the shared coordinator,
	// so the parallelism bound and cancellation behave identically).
	Workers []string
	// Parallelism bounds in-process simulations (0 = GOMAXPROCS).
	Parallelism int
	// ChunkTarget enables throughput-adaptive chunk sizing on the shared
	// coordinator: chunks for v3 workers are sized so each takes roughly
	// this long at the worker's observed rate. Zero keeps fixed-size
	// chunks.
	ChunkTarget time.Duration
	// MaxRunning bounds concurrently executing campaigns across all
	// tenants (default 4).
	MaxRunning int
	// TenantRunningCap bounds concurrently executing campaigns per
	// tenant (default 2).
	TenantRunningCap int
	// TenantQueueCap bounds queued (not yet running) campaigns per
	// tenant; submissions beyond it are rejected with ErrOverloaded
	// (default 16).
	TenantQueueCap int
	// MaxQueued bounds queued campaigns across all tenants (default 256).
	MaxQueued int
	// Quantum is the DRR credit per rotation in simulated runs
	// (default 256).
	Quantum int
	// PopCache, when non-nil, is shared across every campaign.
	PopCache *popcache.Cache
	// Sampling is the default variance-reduction design for adaptive
	// analyses whose manifests don't choose one ("", "plain",
	// "stratified" or "rss"); see manifest.Runner.Sampling.
	Sampling string
	// Dial optionally replaces the coordinator's dialer (fault
	// injection).
	Dial dist.DialFunc
	// Obs receives service metrics and spans; nil disables.
	Obs *obs.Observer
}

func (c *Config) maxRunning() int {
	if c.MaxRunning <= 0 {
		return 4
	}
	return c.MaxRunning
}

func (c *Config) tenantQueueCap() int {
	if c.TenantQueueCap <= 0 {
		return 16
	}
	return c.TenantQueueCap
}

func (c *Config) maxQueued() int {
	if c.MaxQueued <= 0 {
		return 256
	}
	return c.MaxQueued
}

// Rejection reasons, used as the {reason} label on
// spa_campaignd_rejected_total and in HTTP 429 bodies.
const (
	ReasonQueueFull  = "queue_full"  // tenant queue-depth cap
	ReasonServerFull = "server_full" // global queued cap
	ReasonDraining   = "draining"    // server shutting down
)

// ErrOverloaded is an admission-control rejection; the HTTP layer maps
// it to 429 (503 when draining).
type ErrOverloaded struct {
	Reason string
	Msg    string
}

func (e *ErrOverloaded) Error() string { return e.Msg }

// ErrNotFound reports an unknown campaign ID (HTTP 404).
var ErrNotFound = errors.New("campaignd: no such campaign")

// ErrTerminal reports an operation on a campaign that already reached a
// terminal state (HTTP 409).
var ErrTerminal = errors.New("campaignd: campaign already finished")

// errCancelled/errDraining are cancellation causes: they distinguish a
// tenant's DELETE (terminal) from a server drain (requeue for resume).
var (
	errCancelled = errors.New("campaignd: cancelled by tenant")
	errDraining  = errors.New("campaignd: server draining")
)

// campaign is the in-memory wrapper around a journaled Record.
type campaign struct {
	rec *Record
	// cancel is non-nil while the campaign executes.
	cancel context.CancelCauseFunc
}

// Service is the campaign service: admission, fair-share scheduling,
// execution over one shared coordinator, journaling, and resume.
type Service struct {
	cfg     Config
	obs     *obs.Observer
	journal journal
	coord   *dist.Coordinator

	mu        sync.Mutex
	campaigns map[string]*campaign
	sched     *scheduler
	nextSeq   uint64
	queued    int // queued campaigns across tenants
	running   int // executing campaigns across tenants
	draining  bool

	wg sync.WaitGroup // one per executing campaign goroutine
}

// New builds a Service (no IO yet; Start scans the journal).
func New(cfg Config) *Service {
	return &Service{
		cfg:       cfg,
		obs:       cfg.Obs,
		journal:   journal{dir: cfg.DataDir},
		coord:     &dist.Coordinator{Workers: cfg.Workers, Parallelism: cfg.Parallelism, ChunkTarget: cfg.ChunkTarget, Obs: cfg.Obs, Dial: cfg.Dial},
		campaigns: make(map[string]*campaign),
		sched:     newScheduler(cfg.Quantum, cfg.TenantRunningCap),
		nextSeq:   1,
	}
}

// Coordinator exposes the shared coordinator (the /statusz source).
func (s *Service) Coordinator() *dist.Coordinator { return s.coord }

// Start replays the journal and begins scheduling: terminal campaigns
// are loaded for status/report serving, queued ones re-enter their
// tenant queues in admission order, and campaigns that were running when
// the previous process died are requeued — their populations are already
// on disk, so the runner resumes them entry by entry.
func (s *Service) Start() error {
	if s.cfg.DataDir == "" {
		return errors.New("campaignd: config needs a data directory")
	}
	if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		return err
	}
	recs, err := s.journal.scan()
	if err != nil {
		return err
	}
	s.mu.Lock()
	for _, rec := range recs {
		if rec.Seq >= s.nextSeq {
			s.nextSeq = rec.Seq + 1
		}
		c := &campaign{rec: rec}
		s.campaigns[rec.ID] = c
		switch rec.State {
		case StateRunning:
			// The previous process died (or drained) mid-run: requeue.
			rec.State = StateQueued
			rec.Resumes++
			rec.resetProgress()
			if err := s.journal.save(rec); err != nil {
				s.mu.Unlock()
				return err
			}
			s.obs.M().CounterL(obs.MetricCampaignResumed, obs.Labels{"tenant": rec.Spec.Tenant}).Inc()
			fallthrough
		case StateQueued:
			s.sched.enqueue(rec)
			s.queued++
		}
		s.refreshTenantGauges(rec.Spec.Tenant)
	}
	s.mu.Unlock()
	s.obs.Logf("campaignd: journal replayed: %d campaigns (%d queued)", len(recs), s.queued)
	s.schedule()
	return nil
}

// Submit admission-controls and enqueues one campaign, returning its ID.
func (s *Service) Submit(spec Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected(spec.Tenant, ReasonDraining)
		return "", &ErrOverloaded{Reason: ReasonDraining, Msg: "campaignd: server is draining"}
	}
	if s.queued >= s.cfg.maxQueued() {
		s.mu.Unlock()
		s.rejected(spec.Tenant, ReasonServerFull)
		return "", &ErrOverloaded{Reason: ReasonServerFull,
			Msg: fmt.Sprintf("campaignd: %d campaigns queued server-wide (cap %d)", s.queued, s.cfg.maxQueued())}
	}
	if depth := s.sched.queueDepth(spec.Tenant); depth >= s.cfg.tenantQueueCap() {
		s.mu.Unlock()
		s.rejected(spec.Tenant, ReasonQueueFull)
		return "", &ErrOverloaded{Reason: ReasonQueueFull,
			Msg: fmt.Sprintf("campaignd: tenant %s has %d campaigns queued (cap %d)", spec.Tenant, depth, s.cfg.tenantQueueCap())}
	}
	seq := s.nextSeq
	s.nextSeq++
	id := fmt.Sprintf("c%08d", seq)
	rec := newRecord(id, seq, spec, time.Now().UnixMilli())
	if err := s.journal.save(rec); err != nil {
		s.nextSeq-- // nothing was admitted
		s.mu.Unlock()
		return "", err
	}
	s.campaigns[id] = &campaign{rec: rec}
	s.sched.enqueue(rec)
	s.queued++
	s.obs.M().CounterL(obs.MetricCampaignSubmitted, obs.Labels{"tenant": spec.Tenant}).Inc()
	s.refreshTenantGauges(spec.Tenant)
	s.mu.Unlock()
	s.obs.T().Event("campaignd.submitted", obs.Str("id", id), obs.Str("tenant", spec.Tenant),
		obs.Int("cost", rec.Cost), obs.Int("weight", rec.Weight))
	s.schedule()
	return id, nil
}

func (s *Service) rejected(tenant, reason string) {
	s.obs.M().CounterL(obs.MetricCampaignRejected, obs.Labels{"tenant": tenant, "reason": reason}).Inc()
}

// refreshTenantGauges re-derives the per-tenant queue/running gauges;
// callers hold mu.
func (s *Service) refreshTenantGauges(tenant string) {
	l := obs.Labels{"tenant": tenant}
	s.obs.M().GaugeL(obs.MetricCampaignQueueDepth, l).Set(float64(s.sched.queueDepth(tenant)))
	s.obs.M().GaugeL(obs.MetricCampaignRunning, l).Set(float64(s.sched.runningCount(tenant)))
}

// schedule runs one DRR pass, launching every campaign it picks.
func (s *Service) schedule() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scheduleLocked()
}

func (s *Service) scheduleLocked() {
	if s.draining {
		return
	}
	s.obs.M().Counter(obs.MetricCampaignSchedPasses).Inc()
	picks := s.sched.next(s.cfg.maxRunning() - s.running)
	for _, rec := range picks {
		c := s.campaigns[rec.ID]
		rec.State = StateRunning
		rec.StartedUnixMS = time.Now().UnixMilli()
		rec.resetProgress()
		s.queued--
		s.running++
		if err := s.journal.save(rec); err != nil {
			// Journal IO failing is a server-level problem; fail the
			// campaign rather than run it unjournaled (resume would
			// otherwise report a stale queued state forever).
			s.finishLocked(c, StateFailed, err)
			continue
		}
		ctx, cancel := context.WithCancelCause(context.Background())
		c.cancel = cancel
		s.refreshTenantGauges(rec.Spec.Tenant)
		s.obs.T().Event("campaignd.started", obs.Str("id", rec.ID), obs.Str("tenant", rec.Spec.Tenant))
		s.wg.Add(1)
		go s.execute(ctx, c)
	}
}

// execute runs one campaign to completion on its own goroutine.
func (s *Service) execute(ctx context.Context, c *campaign) {
	defer s.wg.Done()
	rec := c.rec
	runner := &manifest.Runner{
		OutDir:       s.journal.campaignDir(rec.ID),
		Parallelism:  s.cfg.Parallelism,
		Obs:          s.obs,
		Workers:      s.cfg.Workers,
		PopCache:     s.cfg.PopCache,
		Sampling:     s.cfg.Sampling,
		Coord:        s.coord,
		StableReport: true,
		Hooks: manifest.Hooks{
			OnEntryStart: func(idx int, key string) {
				s.entryTransition(rec, idx, EntryRunning, false, nil)
			},
			OnEntryDone: func(idx int, key string, reused bool, err error) {
				state := EntryDone
				if err != nil {
					state = EntryFailed
				} else {
					s.obs.M().CounterL(obs.MetricCampaignEntriesDone, obs.Labels{"tenant": rec.Spec.Tenant}).Inc()
				}
				s.entryTransition(rec, idx, state, reused, err)
			},
			OnConvergenceRound: func(round manifest.ConvergenceRound) {
				s.mu.Lock()
				rec.Rounds = append(rec.Rounds, round)
				s.mu.Unlock()
			},
		},
	}
	_, err := runner.RunContext(ctx, rec.Spec.Manifest)

	s.mu.Lock()
	defer s.mu.Unlock()
	c.cancel = nil
	switch cause := context.Cause(ctx); {
	case err == nil:
		s.finishLocked(c, StateDone, nil)
	case errors.Is(cause, errCancelled):
		s.finishLocked(c, StateCancelled, errCancelled)
	case errors.Is(cause, errDraining):
		// Not terminal: back to the queue, journaled, so the next process
		// resumes it from the populations already on disk.
		rec.State = StateQueued
		rec.Resumes++
		rec.Error = ""
		if jerr := s.journal.save(rec); jerr != nil {
			s.obs.Logf("campaignd: journaling drained campaign %s: %v", rec.ID, jerr)
		}
		s.running--
		s.queued++
		s.sched.finished(rec.Spec.Tenant)
		s.sched.enqueue(rec)
		s.refreshTenantGauges(rec.Spec.Tenant)
		s.obs.T().Event("campaignd.requeued", obs.Str("id", rec.ID), obs.Str("tenant", rec.Spec.Tenant))
	default:
		s.finishLocked(c, StateFailed, err)
	}
	s.scheduleLocked()
}

// finishLocked journals a terminal transition and frees the running
// slot; callers hold mu and have already accounted the campaign as
// running.
func (s *Service) finishLocked(c *campaign, state State, err error) {
	rec := c.rec
	rec.State = state
	rec.FinishedUnixMS = time.Now().UnixMilli()
	if err != nil {
		rec.Error = err.Error()
	}
	if jerr := s.journal.save(rec); jerr != nil {
		s.obs.Logf("campaignd: journaling %s campaign %s: %v", state, rec.ID, jerr)
	}
	s.running--
	s.sched.finished(rec.Spec.Tenant)
	s.refreshTenantGauges(rec.Spec.Tenant)
	s.obs.M().CounterL(obs.MetricCampaignDone, obs.Labels{"tenant": rec.Spec.Tenant, "state": string(state)}).Inc()
	s.obs.T().Event("campaignd.finished", obs.Str("id", rec.ID),
		obs.Str("tenant", rec.Spec.Tenant), obs.Str("state", string(state)))
}

// entryTransition journals one entry's progress change.
func (s *Service) entryTransition(rec *Record, idx int, state string, reused bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if idx < 0 || idx >= len(rec.Entries) {
		return
	}
	rec.Entries[idx].State = state
	rec.Entries[idx].Reused = reused
	if err != nil {
		rec.Entries[idx].Error = err.Error()
	}
	if jerr := s.journal.save(rec); jerr != nil {
		s.obs.Logf("campaignd: journaling entry progress for %s: %v", rec.ID, jerr)
	}
}

// Cancel cancels a campaign: a queued one is finished immediately, a
// running one is cancelled cooperatively (its goroutine journals the
// terminal state when the runner unwinds).
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.campaigns[id]
	if c == nil {
		return ErrNotFound
	}
	rec := c.rec
	switch rec.State {
	case StateQueued:
		s.sched.remove(id)
		s.queued--
		rec.State = StateCancelled
		rec.FinishedUnixMS = time.Now().UnixMilli()
		if err := s.journal.save(rec); err != nil {
			return err
		}
		s.obs.M().CounterL(obs.MetricCampaignDone, obs.Labels{"tenant": rec.Spec.Tenant, "state": string(StateCancelled)}).Inc()
		s.refreshTenantGauges(rec.Spec.Tenant)
		return nil
	case StateRunning:
		if c.cancel != nil {
			c.cancel(errCancelled)
		}
		return nil
	default:
		return ErrTerminal
	}
}

// Get returns a deep-enough copy of a campaign's record for serializing
// without racing the runner's hooks.
func (s *Service) Get(id string) (*Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.campaigns[id]
	if c == nil {
		return nil, ErrNotFound
	}
	return snapshotRecord(c.rec), nil
}

// snapshotRecord copies the mutable slices; Spec (immutable after
// admission) is shared.
func snapshotRecord(rec *Record) *Record {
	cp := *rec
	cp.Entries = append([]EntryProgress(nil), rec.Entries...)
	cp.Rounds = append([]manifest.ConvergenceRound(nil), rec.Rounds...)
	return &cp
}

// ReportPath returns the campaign's report file, or ErrNotFound /
// ErrNotReady when the campaign is unknown or not done.
func (s *Service) ReportPath(id string) (string, error) {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return "", ErrNotFound
	}
	if c.rec.State != StateDone {
		return "", fmt.Errorf("campaignd: campaign %s is %s, report exists only when done", id, c.rec.State)
	}
	return filepath.Join(s.journal.campaignDir(id), fmt.Sprintf("%s-report.json", c.rec.Spec.Manifest.Name)), nil
}

// List returns every known campaign's record snapshot, newest first.
func (s *Service) List() []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Record, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		out = append(out, snapshotRecord(c.rec))
	}
	sortRecords(out)
	return out
}

// sortRecords orders newest-first by admission sequence.
func sortRecords(recs []*Record) {
	sort.Slice(recs, func(a, b int) bool { return recs[a].Seq > recs[b].Seq })
}

// QueueStatus is the /v1/queue (and /statusz scheduler) snapshot.
type QueueStatus struct {
	Draining   bool           `json:"draining,omitempty"`
	Queued     int            `json:"queued"`
	Running    int            `json:"running"`
	MaxRunning int            `json:"max_running"`
	Tenants    []TenantStatus `json:"tenants,omitempty"`
}

// Queue snapshots the scheduler.
func (s *Service) Queue() QueueStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return QueueStatus{
		Draining:   s.draining,
		Queued:     s.queued,
		Running:    s.running,
		MaxRunning: s.cfg.maxRunning(),
		Tenants:    s.sched.snapshot(),
	}
}

// Status is the full /statusz source: scheduler plus coordinator.
func (s *Service) Status() any {
	return struct {
		Queue QueueStatus            `json:"queue"`
		Coord dist.CoordinatorStatus `json:"coordinator"`
	}{s.Queue(), s.coord.Status()}
}

// Drain gracefully shuts the service down: admission closes, every
// running campaign is cancelled with the draining cause (so it journals
// itself back to queued for the next process), and Drain returns when
// the campaign goroutines have unwound or the timeout expires.
func (s *Service) Drain(timeout time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	for _, c := range s.campaigns {
		if c.rec.State == StateRunning && c.cancel != nil {
			c.cancel(errDraining)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.obs.Logf("campaignd: drain timed out after %s with campaigns still unwinding", timeout)
	}
}
