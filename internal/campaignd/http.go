package campaignd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"

	"repro/internal/manifest"
	"repro/internal/obs"
)

// SubmitRequest is the POST /v1/campaigns body: tenant metadata wrapped
// around the existing manifest format, unchanged.
type SubmitRequest struct {
	Tenant   string             `json:"tenant"`
	Priority int                `json:"priority,omitempty"`
	Manifest *manifest.Manifest `json:"manifest"`
}

// SubmitResponse acknowledges an admitted campaign.
type SubmitResponse struct {
	ID    string `json:"id"`
	State State  `json:"state"`
}

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// NewHandler builds the spad HTTP API on a fresh mux:
//
//	POST   /v1/campaigns             submit (429/503 on admission reject)
//	GET    /v1/campaigns             list all campaigns, newest first
//	GET    /v1/campaigns/{id}        status: state machine + per-entry
//	                                 progress + convergence rounds
//	GET    /v1/campaigns/{id}/report final report (done campaigns only)
//	DELETE /v1/campaigns/{id}        cancel
//	GET    /v1/queue                 scheduler snapshot per tenant
//
// plus the shared telemetry surface (/metrics, /statusz, /healthz) when
// o is non-nil, so one port serves API and observability.
func NewHandler(s *Service, o *obs.Observer) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err.Error(), "")
			return
		}
		id, err := s.Submit(Spec{Tenant: req.Tenant, Priority: req.Priority, Manifest: req.Manifest})
		if err != nil {
			var over *ErrOverloaded
			switch {
			case errors.As(err, &over) && over.Reason == ReasonDraining:
				writeError(w, http.StatusServiceUnavailable, over.Msg, over.Reason)
			case errors.As(err, &over):
				w.Header().Set("Retry-After", "5")
				writeError(w, http.StatusTooManyRequests, over.Msg, over.Reason)
			default:
				writeError(w, http.StatusBadRequest, err.Error(), "")
			}
			return
		}
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id, State: StateQueued})
	})

	mux.HandleFunc("GET /v1/campaigns", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})

	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		rec, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error(), "")
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})

	mux.HandleFunc("GET /v1/campaigns/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		path, err := s.ReportPath(r.PathValue("id"))
		if err != nil {
			code := http.StatusConflict
			if errors.Is(err, ErrNotFound) {
				code = http.StatusNotFound
			}
			writeError(w, code, err.Error(), "")
			return
		}
		body, err := os.ReadFile(path)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error(), "")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})

	mux.HandleFunc("DELETE /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		err := s.Cancel(r.PathValue("id"))
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, map[string]string{"id": r.PathValue("id"), "status": "cancelling"})
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err.Error(), "")
		case errors.Is(err, ErrTerminal):
			writeError(w, http.StatusConflict, err.Error(), "")
		default:
			writeError(w, http.StatusInternalServerError, err.Error(), "")
		}
	})

	mux.HandleFunc("GET /v1/queue", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Queue())
	})

	if o != nil {
		o.SetStatus(s.Status)
		tele := obs.NewTelemetryMux(o)
		for _, p := range []string{"/metrics", "/statusz", "/healthz"} {
			mux.Handle(p, tele)
		}
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(body); err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: encoding response: %v\n", err)
	}
}

func writeError(w http.ResponseWriter, code int, msg, reason string) {
	writeJSON(w, code, errorBody{Error: msg, Reason: reason})
}
