package workload

import (
	"errors"
	"fmt"

	"repro/internal/randx"
)

// This file is the public builder API for custom workloads: the same
// generators the built-in PARSEC-like profiles use, behind exported spec
// structs, so downstream users can model their own applications without
// touching this package.

// RegionSpec declares an address region a thread draws accesses from.
type RegionSpec struct {
	// Shared selects the program-wide shared mapping; otherwise the
	// thread's private mapping is used.
	Shared bool
	// SizeBytes is the region size (minimum one cache block).
	SizeBytes uint64
	// ZipfSkew skews whole-region accesses toward low addresses when > 0.
	ZipfSkew float64
	// HotFraction of accesses target a sliding hot window of HotBlocks
	// cache blocks advancing every AdvanceEvery accesses (temporal
	// locality). Zero disables the window.
	HotFraction  float64
	HotBlocks    uint64
	AdvanceEvery int
}

func (rs RegionSpec) validate() error {
	if rs.SizeBytes < 64 {
		return fmt.Errorf("workload: region size %d below one block", rs.SizeBytes)
	}
	if rs.ZipfSkew < 0 || rs.HotFraction < 0 || rs.HotFraction > 1 {
		return errors.New("workload: region skew/hot-fraction out of range")
	}
	return nil
}

// build instantiates the region for thread tid.
func (rs RegionSpec) build(tid int, r *randx.Rand) *region {
	base := uint64(SharedBase)
	if !rs.Shared {
		base = privBase(tid)
	}
	reg := newRegion(base, rs.SizeBytes, rs.ZipfSkew, r)
	if rs.HotFraction > 0 {
		reg.withLocality(rs.HotFraction, rs.HotBlocks, rs.AdvanceEvery)
	}
	return reg
}

// DataParallelSpec declares one data-parallel thread group: every thread
// runs the same iteration structure over its own private region plus the
// shared region.
type DataParallelSpec struct {
	Threads        int
	Iterations     int
	ComputeMean    int     // cycles per iteration burst
	ComputeJitter  int     // ± uniform jitter on the burst
	InstrsPerCycle float64 // instructions represented per compute cycle
	MemOps         int     // memory accesses per iteration
	WriteFraction  float64
	SharedFraction float64 // fraction of accesses to the shared region
	Branches       int
	BranchBias     float64
	Private        RegionSpec // Shared flag ignored (always private)
	Shared         *RegionSpec
	// LockID < 0 disables the critical section; LockEvery iterations take
	// the lock around LockHeldOps shared accesses.
	LockID      int
	LockEvery   int
	LockHeldOps int
	// BarrierEvery iterations joins barrier 0 (0 disables).
	BarrierEvery int
}

func (spec DataParallelSpec) validate() error {
	switch {
	case spec.Threads < 1:
		return errors.New("workload: need at least one thread")
	case spec.Iterations < 1:
		return errors.New("workload: need at least one iteration")
	case spec.ComputeMean < 1:
		return errors.New("workload: non-positive compute burst")
	case spec.MemOps < 0 || spec.Branches < 0:
		return errors.New("workload: negative op counts")
	case spec.WriteFraction < 0 || spec.WriteFraction > 1,
		spec.SharedFraction < 0 || spec.SharedFraction > 1,
		spec.BranchBias < 0 || spec.BranchBias > 1:
		return errors.New("workload: fractions must be in [0,1]")
	case spec.LockID >= 0 && spec.Shared == nil && spec.LockHeldOps > 0:
		return errors.New("workload: critical sections need a shared region")
	case spec.SharedFraction > 0 && spec.Shared == nil:
		return errors.New("workload: shared fraction set without a shared region")
	}
	if err := spec.Private.validate(); err != nil {
		return err
	}
	if spec.Shared != nil {
		if err := spec.Shared.validate(); err != nil {
			return err
		}
	}
	return nil
}

// NewDataParallelProfile builds a custom data-parallel workload profile.
// The returned profile behaves exactly like the built-ins: Build
// instantiates deterministic per-thread op streams for a run.
func NewDataParallelProfile(name string, spec DataParallelSpec) (Profile, error) {
	if name == "" {
		return Profile{}, errors.New("workload: empty profile name")
	}
	if err := spec.validate(); err != nil {
		return Profile{}, err
	}
	return Profile{
		Name: name,
		Build: func(scale float64, r *randx.Rand) *Program {
			prog := &Program{Name: name}
			iters := scaleCount(spec.Iterations, scale)
			var shared *region
			if spec.Shared != nil {
				sh := *spec.Shared
				sh.Shared = true
				shared = sh.build(0, r.Split(1000))
			}
			for t := 0; t < spec.Threads; t++ {
				tr := r.Split(uint64(t))
				lockID := spec.LockID
				barrierID := -1
				if spec.BarrierEvery > 0 {
					barrierID = 0
				}
				g := newDataParallelGen(dataParallelParams{
					iters: iters, computeMean: spec.ComputeMean, computeJitter: spec.ComputeJitter,
					instrsPerCycle: spec.InstrsPerCycle, memOps: spec.MemOps,
					writeFrac: spec.WriteFraction, sharedFrac: spec.SharedFraction,
					branches: spec.Branches, branchBias: spec.BranchBias,
					private: spec.Private.build(t, tr.Split(1)),
					shared:  shared, lockID: lockID, lockEvery: spec.LockEvery,
					lockHeldOps: spec.LockHeldOps,
					barrierID:   barrierID, barrierEvery: spec.BarrierEvery,
					pcBase: 0xC000 + uint64(t)*0x100,
				}, tr)
				prog.Threads = append(prog.Threads, g)
			}
			if spec.BarrierEvery > 0 {
				prog.Barriers = []BarrierSpec{{ID: 0, Participants: spec.Threads}}
			}
			return prog
		},
	}, nil
}

// PipelineStageSpec declares one stage of a custom pipeline profile.
type PipelineStageSpec struct {
	// Threads run this stage in parallel, splitting its items evenly
	// (Items must be divisible by Threads).
	Threads       int
	ComputeMean   int
	ComputeJitter int
	MemOps        int
	WriteFraction float64
	SharedFrac    float64
	Branches      int
}

// PipelineSpec declares a custom pipeline: a source feeding Items through
// the stages into a sink over bounded queues.
type PipelineSpec struct {
	Items         int
	QueueCapacity int
	Shared        RegionSpec // stage-shared data (Shared flag forced on)
	Private       RegionSpec // per-thread buffers (Shared flag forced off)
	Stages        []PipelineStageSpec
}

func (spec PipelineSpec) validate() error {
	if spec.Items < 1 {
		return errors.New("workload: pipeline needs at least one item")
	}
	if spec.QueueCapacity < 1 {
		return errors.New("workload: queue capacity must be ≥ 1")
	}
	if len(spec.Stages) < 1 {
		return errors.New("workload: pipeline needs at least one stage")
	}
	for i, st := range spec.Stages {
		if st.Threads < 1 {
			return fmt.Errorf("workload: stage %d needs threads", i)
		}
		if spec.Items%st.Threads != 0 {
			return fmt.Errorf("workload: items %d not divisible by stage %d's %d threads",
				spec.Items, i, st.Threads)
		}
		if st.ComputeMean < 1 || st.MemOps < 0 {
			return fmt.Errorf("workload: stage %d has invalid op counts", i)
		}
	}
	if err := spec.Shared.validate(); err != nil {
		return err
	}
	return spec.Private.validate()
}

// NewPipelineProfile builds a custom pipeline workload profile with a
// single-threaded source and sink around the declared stages, exactly the
// structure of the built-in ferret/dedup profiles. The scale factor
// multiplies Items (floored so stage splits stay exact).
func NewPipelineProfile(name string, spec PipelineSpec) (Profile, error) {
	if name == "" {
		return Profile{}, errors.New("workload: empty profile name")
	}
	if err := spec.validate(); err != nil {
		return Profile{}, err
	}
	// Divisibility must survive scaling: use the LCM-ish simple approach
	// of scaling then rounding down to a multiple of every thread count.
	mult := 1
	for _, st := range spec.Stages {
		mult = lcm(mult, st.Threads)
	}
	return Profile{
		Name: name,
		Build: func(scale float64, r *randx.Rand) *Program {
			items := scaleCount(spec.Items, scale) / mult * mult
			if items < mult {
				items = mult
			}
			prog := &Program{Name: name}
			sh := spec.Shared
			sh.Shared = true
			shared := sh.build(0, r.Split(1000))
			nq := len(spec.Stages) + 1
			for q := 0; q < nq; q++ {
				prog.Queues = append(prog.Queues, QueueSpec{ID: q, Capacity: spec.QueueCapacity})
			}
			tid := 0
			add := func(p pipelineStageParams) {
				p.pcBase = 0xD000 + uint64(tid)*0x100
				pr := spec.Private
				pr.Shared = false
				p.private = pr.build(tid, r.Split(uint64(500+tid)))
				p.shared = shared
				prog.Threads = append(prog.Threads, newPipelineStageGen(p, r.Split(uint64(tid))))
				tid++
			}
			// Source.
			add(pipelineStageParams{items: items, inQueue: -1, outQueue: 0,
				computeMean: 50, computeJitter: 10, memOps: 4, writeFrac: 0.2, sharedFrac: 0.1, branches: 2})
			for i, st := range spec.Stages {
				for k := 0; k < st.Threads; k++ {
					add(pipelineStageParams{
						items: items / st.Threads, inQueue: i, outQueue: i + 1,
						computeMean: st.ComputeMean, computeJitter: st.ComputeJitter,
						memOps: st.MemOps, writeFrac: st.WriteFraction,
						sharedFrac: st.SharedFrac, branches: st.Branches,
					})
				}
			}
			// Sink.
			add(pipelineStageParams{items: items, inQueue: nq - 1, outQueue: -1,
				computeMean: 40, computeJitter: 8, memOps: 3, writeFrac: 0.6, sharedFrac: 0.1, branches: 2})
			return prog
		},
	}, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
