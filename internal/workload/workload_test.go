package workload

import (
	"testing"

	"repro/internal/randx"
)

func TestNamesAndByName(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("expected 9 profiles, got %d", len(names))
	}
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			t.Errorf("ByName(%q): %v", n, err)
			continue
		}
		if p.Name != n {
			t.Errorf("profile name mismatch: %q vs %q", p.Name, n)
		}
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown profile should error")
	}
}

// drain consumes a generator fully and returns its ops.
func drain(t *testing.T, g ThreadGen, cap int) []Op {
	t.Helper()
	var ops []Op
	for {
		op, ok := g.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
		if len(ops) > cap {
			t.Fatalf("generator exceeded %d ops without terminating", cap)
		}
	}
}

func TestAllProfilesBuildAndTerminate(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog := p.Build(0.05, randx.New(1))
		if len(prog.Threads) == 0 {
			t.Errorf("%s: no threads", name)
		}
		for tid, g := range prog.Threads {
			ops := drain(t, g, 2_000_000)
			if len(ops) == 0 {
				t.Errorf("%s thread %d: empty stream", name, tid)
			}
		}
	}
}

// Queue produce/consume counts must balance exactly per queue — the
// deadlock-freedom precondition of the machine model.
func TestPipelineQueueBalance(t *testing.T) {
	for _, name := range []string{"ferret", "dedup"} {
		p, _ := ByName(name)
		prog := p.Build(0.3, randx.New(7))
		produces := map[int]int{}
		consumes := map[int]int{}
		for _, g := range prog.Threads {
			for _, op := range drain(t, g, 5_000_000) {
				switch op.Kind {
				case OpProduce:
					produces[op.ID]++
				case OpConsume:
					consumes[op.ID]++
				}
			}
		}
		if len(produces) == 0 {
			t.Fatalf("%s: no queue traffic", name)
		}
		for q, n := range produces {
			if consumes[q] != n {
				t.Errorf("%s queue %d: %d produces vs %d consumes", name, q, n, consumes[q])
			}
		}
		for _, spec := range prog.Queues {
			if spec.Capacity < 1 {
				t.Errorf("%s queue %d: capacity %d", name, spec.ID, spec.Capacity)
			}
		}
	}
}

// Lock and unlock ops must pair up in order within each thread.
func TestLockPairing(t *testing.T) {
	for _, name := range Names() {
		p, _ := ByName(name)
		prog := p.Build(0.1, randx.New(3))
		for tid, g := range prog.Threads {
			held := map[int]int{}
			for _, op := range drain(t, g, 2_000_000) {
				switch op.Kind {
				case OpLock:
					held[op.ID]++
					if held[op.ID] > 1 {
						t.Fatalf("%s thread %d: re-acquired lock %d", name, tid, op.ID)
					}
				case OpUnlock:
					held[op.ID]--
					if held[op.ID] < 0 {
						t.Fatalf("%s thread %d: unlock of free lock %d", name, tid, op.ID)
					}
				}
			}
			for id, n := range held {
				if n != 0 {
					t.Errorf("%s thread %d: lock %d left held", name, tid, id)
				}
			}
		}
	}
}

// Barrier ops must appear the same number of times in every participant.
func TestBarrierBalance(t *testing.T) {
	for _, name := range Names() {
		p, _ := ByName(name)
		prog := p.Build(0.1, randx.New(5))
		if len(prog.Barriers) == 0 {
			continue
		}
		counts := make([]map[int]int, len(prog.Threads))
		for tid, g := range prog.Threads {
			counts[tid] = map[int]int{}
			for _, op := range drain(t, g, 2_000_000) {
				if op.Kind == OpBarrier {
					counts[tid][op.ID]++
				}
			}
		}
		for _, spec := range prog.Barriers {
			if spec.Participants != len(prog.Threads) {
				t.Errorf("%s barrier %d: %d participants for %d threads",
					name, spec.ID, spec.Participants, len(prog.Threads))
			}
			first := counts[0][spec.ID]
			for tid := range prog.Threads {
				if counts[tid][spec.ID] != first {
					t.Errorf("%s barrier %d: thread %d hits %d times vs %d",
						name, spec.ID, tid, counts[tid][spec.ID], first)
				}
			}
		}
	}
}

func TestBuildDeterministicPerSeed(t *testing.T) {
	p, _ := ByName("ferret")
	a := p.Build(0.1, randx.New(11))
	b := p.Build(0.1, randx.New(11))
	for tid := range a.Threads {
		opsA := drain(t, a.Threads[tid], 5_000_000)
		opsB := drain(t, b.Threads[tid], 5_000_000)
		if len(opsA) != len(opsB) {
			t.Fatalf("thread %d stream lengths differ", tid)
		}
		for i := range opsA {
			if opsA[i] != opsB[i] {
				t.Fatalf("thread %d op %d differs: %+v vs %+v", tid, i, opsA[i], opsB[i])
			}
		}
	}
}

func TestScaleChangesWork(t *testing.T) {
	p, _ := ByName("swaptions")
	small := p.Build(0.05, randx.New(2))
	big := p.Build(0.5, randx.New(2))
	nSmall := len(drain(t, small.Threads[0], 5_000_000))
	nBig := len(drain(t, big.Threads[0], 5_000_000))
	if nBig <= nSmall {
		t.Errorf("scale 0.5 (%d ops) should exceed scale 0.05 (%d ops)", nBig, nSmall)
	}
}

// Addresses must stay inside their declared regions so private regions of
// different threads never alias.
func TestPrivateRegionsDisjoint(t *testing.T) {
	p, _ := ByName("swaptions") // pure private traffic
	prog := p.Build(0.1, randx.New(9))
	for tid, g := range prog.Threads {
		lo := privBase(tid)
		hi := lo + PrivateStep
		for _, op := range drain(t, g, 2_000_000) {
			if op.Kind != OpLoad && op.Kind != OpStore {
				continue
			}
			if op.Addr < lo || op.Addr >= hi {
				t.Fatalf("thread %d address %#x escapes [%#x, %#x)", tid, op.Addr, lo, hi)
			}
		}
	}
}

func TestScaleCountFloor(t *testing.T) {
	if scaleCount(100, 0.001) != 1 {
		t.Error("scaleCount should floor at 1")
	}
	if scaleCount(100, 2) != 200 {
		t.Error("scaleCount should scale linearly")
	}
}
