package workload

import "repro/internal/randx"

// Address-space layout: one shared region plus one private region per
// thread, far apart so they never alias. Exported so the machine model can
// apply per-mapping ASLR offsets without breaking sharing.
const (
	// SharedBase is the start of the program's shared data mapping.
	SharedBase = 0x1000_0000
	// PrivateBase is the start of thread 0's private mapping.
	PrivateBase = 0x4000_0000
	// PrivateStep is the spacing between consecutive private mappings.
	PrivateStep = 0x0200_0000 // 32 MB apart
)

func privBase(tid int) uint64 { return PrivateBase + uint64(tid)*PrivateStep }

// RegionIndex maps an address to its mapping index: 0 for the shared
// mapping (and anything below the private area), 1+k for thread k's
// private mapping. Under ASLR each mapping gets its own per-run offset.
func RegionIndex(addr uint64) int {
	if addr < PrivateBase {
		return 0
	}
	return 1 + int((addr-PrivateBase)/PrivateStep)
}

var profiles = []Profile{
	{
		// Embarrassingly parallel option pricing: private streaming data,
		// a single final barrier, essentially no sharing. The lowest
		// variability of the suite (the paper's CoV floor of 0.0002).
		Name: "blackscholes",
		Build: func(scale float64, r *randx.Rand) *Program {
			const threads = 4
			prog := &Program{Name: "blackscholes"}
			iters := scaleCount(400, scale)
			shared := newRegion(SharedBase, 1*mb, 0, r.Split(1000))
			for t := 0; t < threads; t++ {
				tr := r.Split(uint64(t))
				g := newDataParallelGen(dataParallelParams{
					iters: iters, computeMean: 300, computeJitter: 20,
					instrsPerCycle: 1.5, memOps: 48, writeFrac: 0.25,
					sharedFrac: 0.02, branches: 4, branchBias: 0.92,
					private: newRegion(privBase(t), 1*mb, 0, tr.Split(1)).withLocality(0.92, 48, 160),
					shared:  shared, lockID: -1, barrierID: 0,
					barrierEvery: iters, // one barrier at the end
					pcBase:       0x1000 + uint64(t)*0x100,
				}, tr)
				prog.Threads = append(prog.Threads, g)
			}
			prog.Barriers = []BarrierSpec{{ID: 0, Participants: threads}}
			return prog
		},
	},
	{
		// Per-frame data parallelism with frequent barriers and a shared
		// model updated under a lock.
		Name: "bodytrack",
		Build: func(scale float64, r *randx.Rand) *Program {
			const threads = 4
			prog := &Program{Name: "bodytrack"}
			iters := scaleCount(300, scale)
			shared := newRegion(SharedBase, 4*mb, 0.7, r.Split(1000))
			for t := 0; t < threads; t++ {
				tr := r.Split(uint64(t))
				g := newDataParallelGen(dataParallelParams{
					iters: iters, computeMean: 220, computeJitter: 50,
					instrsPerCycle: 1.3, memOps: 80, writeFrac: 0.3,
					sharedFrac: 0.15, branches: 6, branchBias: 0.85,
					private: newRegion(privBase(t), 2*mb, 0, tr.Split(1)).withLocality(0.9, 64, 160),
					shared:  shared, lockID: 0, lockEvery: 40, lockHeldOps: 3,
					barrierID: 0, barrierEvery: 25,
					pcBase: 0x2000 + uint64(t)*0x100,
				}, tr)
				prog.Threads = append(prog.Threads, g)
			}
			prog.Barriers = []BarrierSpec{{ID: 0, Participants: threads}}
			return prog
		},
	},
	{
		// Simulated annealing over a netlist far larger than the L2:
		// pointer-chasing random accesses, tiny lock-protected swaps.
		// The L2-MPKI outlier of the suite.
		Name: "canneal",
		Build: func(scale float64, r *randx.Rand) *Program {
			const threads = 4
			prog := &Program{Name: "canneal"}
			iters := scaleCount(250, scale)
			shared := newRegion(SharedBase, 48*mb, 0, r.Split(1000))
			for t := 0; t < threads; t++ {
				tr := r.Split(uint64(t))
				g := newDataParallelGen(dataParallelParams{
					iters: iters, computeMean: 90, computeJitter: 20,
					instrsPerCycle: 1.0, memOps: 240, writeFrac: 0.4,
					sharedFrac: 0.9, branches: 5, branchBias: 0.6,
					private: newRegion(privBase(t), 256*1024, 0, tr.Split(1)).withLocality(0.85, 48, 200),
					shared:  shared, lockID: t % 2, lockEvery: 10, lockHeldOps: 2,
					barrierID: -1,
					pcBase:    0x3000 + uint64(t)*0x100,
				}, tr)
				prog.Threads = append(prog.Threads, g)
			}
			return prog
		},
	},
	{
		// Three-stage deduplication pipeline over bounded queues.
		Name: "dedup",
		Build: func(scale float64, r *randx.Rand) *Program {
			prog := &Program{Name: "dedup"}
			items := scaleCount(48, scale) / 6 * 6 // divisible by 2 and 3
			if items < 6 {
				items = 6
			}
			shared := newRegion(SharedBase, 12*mb, 1.0, r.Split(1000))
			prog.Queues = []QueueSpec{{ID: 0, Capacity: 4}, {ID: 1, Capacity: 4}, {ID: 2, Capacity: 4}}
			tid := 0
			add := func(p pipelineStageParams) {
				p.pcBase = 0x4000 + uint64(tid)*0x100
				if p.private == nil {
					p.private = newRegion(privBase(tid), 1*mb, 0, r.Split(uint64(500+tid))).withLocality(0.9, 64, 150)
				}
				p.shared = shared
				prog.Threads = append(prog.Threads, newPipelineStageGen(p, r.Split(uint64(tid))))
				tid++
			}
			// Source reads input and produces chunks.
			add(pipelineStageParams{items: items, inQueue: -1, outQueue: 0,
				computeMean: 120, computeJitter: 30, memOps: 64, writeFrac: 0.2, sharedFrac: 0.2, branches: 3})
			// Two chunkers.
			for i := 0; i < 2; i++ {
				add(pipelineStageParams{items: items / 2, inQueue: 0, outQueue: 1,
					computeMean: 260, computeJitter: 60, memOps: 96, writeFrac: 0.3, sharedFrac: 0.5, branches: 5})
			}
			// Three compressors (the heavy stage).
			for i := 0; i < 3; i++ {
				add(pipelineStageParams{items: items / 3, inQueue: 1, outQueue: 2,
					computeMean: 520, computeJitter: 140, memOps: 128, writeFrac: 0.4, sharedFrac: 0.3, branches: 6})
			}
			// Sink.
			add(pipelineStageParams{items: items, inQueue: 2, outQueue: -1,
				computeMean: 90, computeJitter: 20, memOps: 48, writeFrac: 0.6, sharedFrac: 0.2, branches: 2})
			return prog
		},
	},
	{
		// Content-based image search: the paper's variability star. A
		// deep pipeline (input → segment → extract×2 → index×2 → rank×2 →
		// output) over small bounded queues; the rank stage dominates, so
		// which interleaving the scheduler falls into decides whether the
		// pipeline streams or stalls — frequent synchronization and data
		// sharing, exactly as Sec. 5.1 describes.
		Name: "ferret",
		Build: func(scale float64, r *randx.Rand) *Program {
			prog := &Program{Name: "ferret"}
			items := scaleCount(64, scale) / 2 * 2
			if items < 4 {
				items = 4
			}
			shared := newRegion(SharedBase, 896*1024, 0.3, r.Split(1000))
			prog.Queues = []QueueSpec{
				{ID: 0, Capacity: 2}, {ID: 1, Capacity: 2},
				{ID: 2, Capacity: 2}, {ID: 3, Capacity: 2}, {ID: 4, Capacity: 2},
			}
			tid := 0
			add := func(p pipelineStageParams) {
				p.pcBase = 0x5000 + uint64(tid)*0x100
				if p.private == nil {
					p.private = newRegion(privBase(tid), 768*1024, 0, r.Split(uint64(500+tid))).withLocality(0.9, 64, 150)
				}
				p.shared = shared
				prog.Threads = append(prog.Threads, newPipelineStageGen(p, r.Split(uint64(tid))))
				tid++
			}
			add(pipelineStageParams{items: items, inQueue: -1, outQueue: 0,
				computeMean: 60, computeJitter: 15, memOps: 32, writeFrac: 0.2, sharedFrac: 0.1, branches: 2})
			add(pipelineStageParams{items: items, inQueue: 0, outQueue: 1,
				computeMean: 200, computeJitter: 50, memOps: 80, writeFrac: 0.25, sharedFrac: 0.55, branches: 4})
			for i := 0; i < 2; i++ {
				add(pipelineStageParams{items: items / 2, inQueue: 1, outQueue: 2,
					computeMean: 340, computeJitter: 90, memOps: 112, writeFrac: 0.3, sharedFrac: 0.65, branches: 5})
			}
			for i := 0; i < 2; i++ {
				add(pipelineStageParams{items: items / 2, inQueue: 2, outQueue: 3,
					computeMean: 300, computeJitter: 80, memOps: 144, writeFrac: 0.25, sharedFrac: 0.8, branches: 5})
			}
			for i := 0; i < 2; i++ {
				add(pipelineStageParams{items: items / 2, inQueue: 3, outQueue: 4,
					computeMean: 900, computeJitter: 260, memOps: 176, writeFrac: 0.2, sharedFrac: 0.75, branches: 8})
			}
			add(pipelineStageParams{items: items, inQueue: 4, outQueue: -1,
				computeMean: 50, computeJitter: 10, memOps: 24, writeFrac: 0.7, sharedFrac: 0.1, branches: 2})
			return prog
		},
	},
	{
		// Grid fluid dynamics: the most lock-intensive PARSEC code
		// (fine-grained cell locks) plus frequent barriers.
		Name: "fluidanimate",
		Build: func(scale float64, r *randx.Rand) *Program {
			const threads = 4
			prog := &Program{Name: "fluidanimate"}
			iters := scaleCount(300, scale)
			shared := newRegion(SharedBase, 6*mb, 0.8, r.Split(1000))
			for t := 0; t < threads; t++ {
				tr := r.Split(uint64(t))
				g := newDataParallelGen(dataParallelParams{
					iters: iters, computeMean: 150, computeJitter: 30,
					instrsPerCycle: 1.4, memOps: 96, writeFrac: 0.35,
					sharedFrac: 0.3, branches: 5, branchBias: 0.8,
					private: newRegion(privBase(t), 1536*1024, 0, tr.Split(1)).withLocality(0.9, 56, 180),
					shared:  shared, lockID: t, lockEvery: 1, lockHeldOps: 2,
					barrierID: 0, barrierEvery: 30,
					pcBase: 0x6000 + uint64(t)*0x100,
				}, tr)
				prog.Threads = append(prog.Threads, g)
			}
			prog.Barriers = []BarrierSpec{{ID: 0, Participants: threads}}
			return prog
		},
	},
	{
		// Frequent-itemset mining over a shared FP-tree: read-mostly
		// skewed accesses, almost no locking.
		Name: "freqmine",
		Build: func(scale float64, r *randx.Rand) *Program {
			const threads = 4
			prog := &Program{Name: "freqmine"}
			iters := scaleCount(280, scale)
			shared := newRegion(SharedBase, 8*mb, 1.15, r.Split(1000))
			for t := 0; t < threads; t++ {
				tr := r.Split(uint64(t))
				g := newDataParallelGen(dataParallelParams{
					iters: iters, computeMean: 350, computeJitter: 60,
					instrsPerCycle: 1.6, memOps: 112, writeFrac: 0.15,
					sharedFrac: 0.6, branches: 7, branchBias: 0.75,
					private: newRegion(privBase(t), 1*mb, 0, tr.Split(1)).withLocality(0.92, 48, 160),
					shared:  shared, lockID: -1,
					barrierID: 0, barrierEvery: 140,
					pcBase: 0x7000 + uint64(t)*0x100,
				}, tr)
				prog.Threads = append(prog.Threads, g)
			}
			prog.Barriers = []BarrierSpec{{ID: 0, Participants: threads}}
			return prog
		},
	},
	{
		// Online clustering: barrier after every point batch, half the
		// accesses hit the shared centers.
		Name: "streamcluster",
		Build: func(scale float64, r *randx.Rand) *Program {
			const threads = 4
			prog := &Program{Name: "streamcluster"}
			iters := scaleCount(300, scale)
			shared := newRegion(SharedBase, 2*mb, 0.5, r.Split(1000))
			for t := 0; t < threads; t++ {
				tr := r.Split(uint64(t))
				g := newDataParallelGen(dataParallelParams{
					iters: iters, computeMean: 180, computeJitter: 25,
					instrsPerCycle: 1.2, memOps: 128, writeFrac: 0.2,
					sharedFrac: 0.5, branches: 4, branchBias: 0.88,
					private: newRegion(privBase(t), 1*mb, 0, tr.Split(1)).withLocality(0.92, 48, 160),
					shared:  shared, lockID: 0, lockEvery: 30, lockHeldOps: 2,
					barrierID: 0, barrierEvery: 10,
					pcBase: 0x8000 + uint64(t)*0x100,
				}, tr)
				prog.Threads = append(prog.Threads, g)
			}
			prog.Barriers = []BarrierSpec{{ID: 0, Participants: threads}}
			return prog
		},
	},
	{
		// Monte-Carlo swaption pricing: fully independent threads on
		// private data; the only synchronization is program exit.
		Name: "swaptions",
		Build: func(scale float64, r *randx.Rand) *Program {
			const threads = 4
			prog := &Program{Name: "swaptions"}
			iters := scaleCount(350, scale)
			for t := 0; t < threads; t++ {
				tr := r.Split(uint64(t))
				g := newDataParallelGen(dataParallelParams{
					iters: iters, computeMean: 400, computeJitter: 60,
					instrsPerCycle: 1.7, memOps: 32, writeFrac: 0.3,
					sharedFrac: 0, branches: 5, branchBias: 0.9,
					private: newRegion(privBase(t), 512*1024, 0, tr.Split(1)).withLocality(0.94, 40, 200),
					shared:  nil, lockID: -1, barrierID: -1,
					pcBase: 0x9000 + uint64(t)*0x100,
				}, tr)
				prog.Threads = append(prog.Threads, g)
			}
			return prog
		},
	},
}
