package workload

import (
	"testing"

	"repro/internal/randx"
)

func validDataParallel() DataParallelSpec {
	return DataParallelSpec{
		Threads: 4, Iterations: 50,
		ComputeMean: 100, ComputeJitter: 10, InstrsPerCycle: 1.2,
		MemOps: 20, WriteFraction: 0.3, SharedFraction: 0.2,
		Branches: 3, BranchBias: 0.8,
		Private: RegionSpec{SizeBytes: 1 << 20, HotFraction: 0.9, HotBlocks: 32, AdvanceEvery: 100},
		Shared:  &RegionSpec{SizeBytes: 2 << 20, ZipfSkew: 0.8},
		LockID:  0, LockEvery: 10, LockHeldOps: 2,
		BarrierEvery: 25,
	}
}

func TestNewDataParallelProfile(t *testing.T) {
	p, err := NewDataParallelProfile("mybench", validDataParallel())
	if err != nil {
		t.Fatal(err)
	}
	prog := p.Build(1.0, randx.New(3))
	if len(prog.Threads) != 4 || len(prog.Barriers) != 1 {
		t.Fatalf("program shape wrong: %d threads, %d barriers", len(prog.Threads), len(prog.Barriers))
	}
	kinds := map[OpKind]int{}
	for _, g := range prog.Threads {
		for {
			op, ok := g.Next()
			if !ok {
				break
			}
			kinds[op.Kind]++
		}
	}
	for _, k := range []OpKind{OpCompute, OpLoad, OpStore, OpBranch, OpLock, OpUnlock, OpBarrier} {
		if kinds[k] == 0 {
			t.Errorf("custom profile emitted no ops of kind %d", k)
		}
	}
	if kinds[OpLock] != kinds[OpUnlock] {
		t.Errorf("lock/unlock imbalance: %d vs %d", kinds[OpLock], kinds[OpUnlock])
	}
}

func TestNewDataParallelProfileValidation(t *testing.T) {
	if _, err := NewDataParallelProfile("", validDataParallel()); err == nil {
		t.Error("empty name should error")
	}
	muts := []func(*DataParallelSpec){
		func(s *DataParallelSpec) { s.Threads = 0 },
		func(s *DataParallelSpec) { s.Iterations = 0 },
		func(s *DataParallelSpec) { s.ComputeMean = 0 },
		func(s *DataParallelSpec) { s.MemOps = -1 },
		func(s *DataParallelSpec) { s.WriteFraction = 2 },
		func(s *DataParallelSpec) { s.SharedFraction = -0.1 },
		func(s *DataParallelSpec) { s.Shared = nil }, // shared frac still 0.2
		func(s *DataParallelSpec) { s.Private.SizeBytes = 1 },
		func(s *DataParallelSpec) { s.Shared.ZipfSkew = -1 },
	}
	for i, mut := range muts {
		spec := validDataParallel()
		mut(&spec)
		if _, err := NewDataParallelProfile("x", spec); err == nil {
			t.Errorf("mutation %d should be invalid", i)
		}
	}
}

func validPipeline() PipelineSpec {
	return PipelineSpec{
		Items: 24, QueueCapacity: 2,
		Shared:  RegionSpec{SizeBytes: 1 << 20, ZipfSkew: 0.6},
		Private: RegionSpec{SizeBytes: 256 << 10, HotFraction: 0.9, HotBlocks: 32, AdvanceEvery: 80},
		Stages: []PipelineStageSpec{
			{Threads: 2, ComputeMean: 200, ComputeJitter: 40, MemOps: 30, WriteFraction: 0.3, SharedFrac: 0.4, Branches: 4},
			{Threads: 3, ComputeMean: 400, ComputeJitter: 80, MemOps: 40, WriteFraction: 0.2, SharedFrac: 0.5, Branches: 5},
		},
	}
}

func TestNewPipelineProfileBalanced(t *testing.T) {
	p, err := NewPipelineProfile("mypipe", validPipeline())
	if err != nil {
		t.Fatal(err)
	}
	prog := p.Build(1.0, randx.New(9))
	// Source + 2 + 3 + sink = 7 threads; 3 queues.
	if len(prog.Threads) != 7 || len(prog.Queues) != 3 {
		t.Fatalf("pipeline shape wrong: %d threads, %d queues", len(prog.Threads), len(prog.Queues))
	}
	produces := map[int]int{}
	consumes := map[int]int{}
	for _, g := range prog.Threads {
		for {
			op, ok := g.Next()
			if !ok {
				break
			}
			switch op.Kind {
			case OpProduce:
				produces[op.ID]++
			case OpConsume:
				consumes[op.ID]++
			}
		}
	}
	for q, n := range produces {
		if consumes[q] != n {
			t.Errorf("queue %d imbalanced: %d produces, %d consumes", q, n, consumes[q])
		}
	}
}

func TestNewPipelineProfileScalingKeepsDivisibility(t *testing.T) {
	p, err := NewPipelineProfile("mypipe", validPipeline())
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []float64{0.05, 0.37, 2.0} {
		prog := p.Build(scale, randx.New(1))
		produces := map[int]int{}
		consumes := map[int]int{}
		for _, g := range prog.Threads {
			for {
				op, ok := g.Next()
				if !ok {
					break
				}
				switch op.Kind {
				case OpProduce:
					produces[op.ID]++
				case OpConsume:
					consumes[op.ID]++
				}
			}
		}
		for q, n := range produces {
			if consumes[q] != n {
				t.Fatalf("scale %g queue %d imbalanced", scale, q)
			}
		}
	}
}

func TestNewPipelineProfileValidation(t *testing.T) {
	if _, err := NewPipelineProfile("", validPipeline()); err == nil {
		t.Error("empty name should error")
	}
	muts := []func(*PipelineSpec){
		func(s *PipelineSpec) { s.Items = 0 },
		func(s *PipelineSpec) { s.QueueCapacity = 0 },
		func(s *PipelineSpec) { s.Stages = nil },
		func(s *PipelineSpec) { s.Stages[0].Threads = 0 },
		func(s *PipelineSpec) { s.Stages[0].Threads = 5 }, // 24 % 5 != 0
		func(s *PipelineSpec) { s.Stages[1].ComputeMean = 0 },
		func(s *PipelineSpec) { s.Shared.SizeBytes = 1 },
	}
	for i, mut := range muts {
		spec := validPipeline()
		mut(&spec)
		if _, err := NewPipelineProfile("x", spec); err == nil {
			t.Errorf("mutation %d should be invalid", i)
		}
	}
}

func TestLCM(t *testing.T) {
	if lcm(2, 3) != 6 || lcm(4, 6) != 12 || lcm(1, 7) != 7 {
		t.Error("lcm wrong")
	}
}
