// Package workload generates the synthetic multithreaded programs the
// simulator executes. Each program is a per-thread stream of operations
// (compute bursts, loads/stores, branches, lock/unlock, barriers, and
// bounded-queue produce/consume for pipeline-parallel codes).
//
// The profiles are named after the eight PARSEC benchmarks the paper
// evaluates (Sec. 5.1, simsmall inputs). They are not ports of PARSEC —
// that is impossible and unnecessary here (see DESIGN.md) — but each
// profile's parallelism model, working-set size, sharing intensity, and
// synchronization rate are chosen to mirror the published characterization
// of its namesake, so the per-benchmark metric distributions differ in
// location, spread and shape the way the paper's Figs. 10–13 require:
// ferret and dedup are queue-based pipelines with heavy synchronization
// (high variability), canneal chases pointers across a huge footprint
// (high L2 MPKI), swaptions and blackscholes are embarrassingly parallel
// (tiny variability), and so on.
package workload

import (
	"fmt"

	"repro/internal/randx"
)

// OpKind enumerates the operations a thread can issue.
type OpKind int

// Operation kinds.
const (
	// OpCompute burns Cycles of pure computation representing Instrs
	// instructions.
	OpCompute OpKind = iota
	// OpLoad reads Addr through the memory hierarchy.
	OpLoad
	// OpStore writes Addr.
	OpStore
	// OpBranch resolves a conditional branch at PC with outcome Taken.
	OpBranch
	// OpLock acquires mutex ID (blocking).
	OpLock
	// OpUnlock releases mutex ID.
	OpUnlock
	// OpBarrier joins barrier ID; the thread blocks until all participants
	// arrive.
	OpBarrier
	// OpProduce enqueues one item into bounded queue ID (blocking when full).
	OpProduce
	// OpConsume dequeues one item from queue ID (blocking when empty).
	OpConsume
)

// Op is a single operation in a thread's stream.
type Op struct {
	Kind   OpKind
	Cycles uint64 // OpCompute: burst length
	Instrs uint64 // OpCompute: instructions represented
	Addr   uint64 // OpLoad/OpStore
	PC     uint64 // OpBranch
	Taken  bool   // OpBranch
	ID     int    // lock, barrier, or queue identifier
}

// ThreadGen produces a thread's operation stream.
type ThreadGen interface {
	// Next returns the next operation, or ok=false at end of stream.
	Next() (op Op, ok bool)
}

// QueueSpec declares a bounded queue used by a pipeline profile.
type QueueSpec struct {
	ID       int
	Capacity int
}

// BarrierSpec declares a barrier and its participant count.
type BarrierSpec struct {
	ID           int
	Participants int
}

// Program is a fully instantiated multithreaded workload.
type Program struct {
	Name     string
	Threads  []ThreadGen
	Queues   []QueueSpec
	Barriers []BarrierSpec
}

// Profile is a named workload blueprint; Build instantiates it for a run,
// drawing any randomized structure from the supplied stream.
type Profile struct {
	Name string
	// Scale multiplies the iteration counts; 1.0 is the "simsmall-like"
	// default. Tests use small scales for speed.
	Build func(scale float64, r *randx.Rand) *Program
}

// Names lists the built-in profiles in the paper's benchmark order.
func Names() []string {
	return []string{
		"blackscholes", "bodytrack", "canneal", "dedup",
		"ferret", "fluidanimate", "freqmine", "streamcluster", "swaptions",
	}
}

// ByName returns a built-in profile.
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q (have %v)", name, Names())
}

// scaleCount scales an iteration count, keeping at least 1.
func scaleCount(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

// region describes an address region a generator draws accesses from,
// with an optional temporal-locality model: a fraction of accesses target
// a small "hot" window (the current item buffer / stack frame) that slides
// through the region, which is what gives the simulated caches realistic
// hit rates; the rest draw from the whole region (zipf-skewed or uniform).
type region struct {
	base  uint64
	size  uint64 // bytes
	zipf  *randx.Zipf
	r     *randx.Rand
	block uint64

	hotFrac      float64 // fraction of accesses to the hot window
	hotBlocks    uint64  // hot-window size in blocks
	advanceEvery int     // window slides after this many accesses
	window       uint64  // current window start block
	count        int
}

func newRegion(base, size uint64, skew float64, r *randx.Rand) *region {
	blocks := int(size / 64)
	if blocks < 1 {
		blocks = 1
	}
	reg := &region{base: base, size: size, r: r, block: 64}
	if skew > 0 {
		reg.zipf = randx.NewZipf(r, blocks, skew)
	}
	return reg
}

// withLocality enables the hot-window model: hotFrac of accesses land in a
// window of hotBlocks cache blocks that advances by half its size every
// advanceEvery accesses.
func (reg *region) withLocality(hotFrac float64, hotBlocks uint64, advanceEvery int) *region {
	reg.hotFrac = hotFrac
	reg.hotBlocks = hotBlocks
	reg.advanceEvery = advanceEvery
	return reg
}

func (reg *region) addr() uint64 {
	blocks := reg.size / reg.block
	if blocks == 0 {
		blocks = 1
	}
	var b uint64
	reg.count++
	if reg.hotFrac > 0 && reg.r.Float64() < reg.hotFrac {
		if reg.advanceEvery > 0 && reg.count%reg.advanceEvery == 0 {
			step := reg.hotBlocks / 2
			if step == 0 {
				step = 1
			}
			reg.window = (reg.window + step) % blocks
		}
		span := reg.hotBlocks
		if span < 1 {
			span = 1
		}
		b = (reg.window + uint64(reg.r.Intn(int(span)))) % blocks
	} else if reg.zipf != nil {
		b = uint64(reg.zipf.Next())
	} else {
		b = uint64(reg.r.Intn(int(blocks)))
	}
	off := uint64(reg.r.Intn(int(reg.block)))
	return reg.base + b*reg.block + off
}

// loopGen is the workhorse generator: a fixed number of iterations, each
// emitting a randomized mix of branches, compute, private and shared
// accesses, and synchronization according to its parameters. It implements
// the per-iteration structure shared by all data-parallel profiles.
type loopGen struct {
	r     *randx.Rand
	iters int
	iter  int
	queue []Op // ops pending for the current iteration
	emit  func(g *loopGen)
}

func (g *loopGen) Next() (Op, bool) {
	for len(g.queue) == 0 {
		if g.iter >= g.iters {
			return Op{}, false
		}
		g.iter++
		g.emit(g)
	}
	op := g.queue[0]
	g.queue = g.queue[1:]
	return op, true
}

func (g *loopGen) push(op Op) { g.queue = append(g.queue, op) }

// dataParallelParams shape a loopGen-based thread.
type dataParallelParams struct {
	iters          int
	computeMean    int     // cycles per iteration burst
	computeJitter  int     // ± uniform jitter on the burst
	instrsPerCycle float64 // instructions represented per compute cycle
	memOps         int     // memory accesses per iteration
	writeFrac      float64
	sharedFrac     float64 // fraction of accesses to the shared region
	branches       int     // branches per iteration
	branchBias     float64 // probability taken
	private        *region
	shared         *region
	lockID         int // -1 for none
	lockEvery      int // take the lock every k iterations
	lockHeldOps    int // accesses inside the critical section
	barrierID      int // -1 for none
	barrierEvery   int
	pcBase         uint64
}

func newDataParallelGen(p dataParallelParams, r *randx.Rand) *loopGen {
	g := &loopGen{r: r, iters: p.iters}
	g.emit = func(g *loopGen) {
		// Branch cluster at the loop head.
		for b := 0; b < p.branches; b++ {
			g.push(Op{
				Kind:  OpBranch,
				PC:    p.pcBase + uint64(b)*4,
				Taken: g.r.Bernoulli(p.branchBias),
			})
		}
		// Compute burst.
		c := p.computeMean
		if p.computeJitter > 0 {
			c += g.r.UniformInt(-p.computeJitter, p.computeJitter)
		}
		if c < 1 {
			c = 1
		}
		g.push(Op{Kind: OpCompute, Cycles: uint64(c), Instrs: uint64(float64(c) * p.instrsPerCycle)})
		// Memory accesses.
		for m := 0; m < p.memOps; m++ {
			reg := p.private
			if p.shared != nil && g.r.Bernoulli(p.sharedFrac) {
				reg = p.shared
			}
			kind := OpLoad
			if g.r.Bernoulli(p.writeFrac) {
				kind = OpStore
			}
			g.push(Op{Kind: kind, Addr: reg.addr()})
		}
		// Critical section.
		if p.lockID >= 0 && p.lockEvery > 0 && g.iter%p.lockEvery == 0 {
			g.push(Op{Kind: OpLock, ID: p.lockID})
			for m := 0; m < p.lockHeldOps; m++ {
				kind := OpLoad
				if g.r.Bernoulli(0.5) {
					kind = OpStore
				}
				g.push(Op{Kind: kind, Addr: p.shared.addr()})
			}
			g.push(Op{Kind: OpUnlock, ID: p.lockID})
		}
		// Barrier.
		if p.barrierID >= 0 && p.barrierEvery > 0 && g.iter%p.barrierEvery == 0 {
			g.push(Op{Kind: OpBarrier, ID: p.barrierID})
		}
	}
	return g
}

// pipelineStageParams shape a pipeline-stage thread: consume from one
// queue, process, produce into the next.
type pipelineStageParams struct {
	items         int // items this thread processes
	inQueue       int // -1 for the source stage
	outQueue      int // -1 for the sink stage
	computeMean   int
	computeJitter int
	memOps        int
	writeFrac     float64
	sharedFrac    float64
	branches      int
	private       *region
	shared        *region
	pcBase        uint64
}

func newPipelineStageGen(p pipelineStageParams, r *randx.Rand) *loopGen {
	g := &loopGen{r: r, iters: p.items}
	g.emit = func(g *loopGen) {
		if p.inQueue >= 0 {
			g.push(Op{Kind: OpConsume, ID: p.inQueue})
		}
		for b := 0; b < p.branches; b++ {
			g.push(Op{Kind: OpBranch, PC: p.pcBase + uint64(b)*4, Taken: g.r.Bernoulli(0.85)})
		}
		c := p.computeMean
		if p.computeJitter > 0 {
			c += g.r.UniformInt(-p.computeJitter, p.computeJitter)
		}
		if c < 1 {
			c = 1
		}
		g.push(Op{Kind: OpCompute, Cycles: uint64(c), Instrs: uint64(float64(c) * 1.2)})
		for m := 0; m < p.memOps; m++ {
			reg := p.private
			if p.shared != nil && g.r.Bernoulli(p.sharedFrac) {
				reg = p.shared
			}
			kind := OpLoad
			if g.r.Bernoulli(p.writeFrac) {
				kind = OpStore
			}
			g.push(Op{Kind: kind, Addr: reg.addr()})
		}
		if p.outQueue >= 0 {
			g.push(Op{Kind: OpProduce, ID: p.outQueue})
		}
	}
	return g
}

// mb is a convenience for region sizes.
const mb = 1 << 20
