package dist

import (
	"testing"
	"time"
)

// TestBackoffJitterBounds pins the jitter contract: every delay is
// base·2^attempt (capped at max) scaled by a factor in [0.5, 1.5).
func TestBackoffJitterBounds(t *testing.T) {
	const base, max = 10 * time.Millisecond, 500 * time.Millisecond
	for seed := uint64(0); seed < 8; seed++ {
		b := newBackoff(base, max, seed)
		expected := base
		for i := 0; i < 40; i++ {
			d := b.next()
			lo := time.Duration(float64(expected) * 0.5)
			hi := time.Duration(float64(expected) * 1.5)
			if d < lo || d >= hi {
				t.Fatalf("seed %d attempt %d: delay %v outside [%v, %v)", seed, i, d, lo, hi)
			}
			if expected < max {
				expected *= 2
				if expected > max {
					expected = max
				}
			}
		}
	}
}

// TestBackoffShiftOverflowCapped drives the attempt counter far past
// the point where base<<attempt overflows int64: the delay must stay
// positive and capped at 1.5·max, never negative or zero.
func TestBackoffShiftOverflowCapped(t *testing.T) {
	for _, base := range []time.Duration{50 * time.Millisecond, time.Hour, 1 << 62} {
		max := 2 * time.Second
		b := newBackoff(base, max, 42)
		for i := 0; i < 100; i++ {
			d := b.next()
			if d <= 0 {
				t.Fatalf("base %v attempt %d: non-positive delay %v (shift overflow leaked)", base, i, d)
			}
			if hi := time.Duration(float64(max) * 1.5); d >= hi {
				t.Fatalf("base %v attempt %d: delay %v >= cap %v", base, i, d, hi)
			}
		}
	}
}

// TestBackoffAttemptCounterSaturates verifies the attempt counter stops
// growing (the shift stays in range) while delays remain capped.
func TestBackoffAttemptCounterSaturates(t *testing.T) {
	b := newBackoff(time.Millisecond, 10*time.Millisecond, 7)
	for i := 0; i < 1000; i++ {
		b.next()
	}
	if b.attempt != 30 {
		t.Errorf("attempt counter = %d after 1000 calls, want saturation at 30", b.attempt)
	}
	b.reset()
	if b.attempt != 0 {
		t.Errorf("reset left attempt = %d", b.attempt)
	}
	if d := b.next(); d >= time.Duration(float64(time.Millisecond)*1.5) {
		t.Errorf("post-reset delay %v not back at base scale", d)
	}
}

// TestBackoffDeterministicPerSeed: same seed, same delay sequence — the
// jitter stream is part of the reproducibility story.
func TestBackoffDeterministicPerSeed(t *testing.T) {
	a := newBackoff(5*time.Millisecond, 100*time.Millisecond, 99)
	b := newBackoff(5*time.Millisecond, 100*time.Millisecond, 99)
	for i := 0; i < 20; i++ {
		if da, db := a.next(), b.next(); da != db {
			t.Fatalf("attempt %d: %v != %v for identical seeds", i, da, db)
		}
	}
}
