package dist

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// CoordinatorStatus is the coordinator's /statusz snapshot: cumulative
// chunk accounting across every job it has run (jobs may overlap when
// campaigns share the coordinator) plus a per-worker table folded from
// wire telemetry. Zero-valued before any Run.
type CoordinatorStatus struct {
	// Benchmark is the most recently submitted job's benchmark.
	Benchmark string `json:"benchmark,omitempty"`
	// Runs/Chunks accumulate across jobs; JobsActive counts Run calls in
	// flight right now, and Done is true when the coordinator has run at
	// least one job and none is in flight.
	Runs            int                 `json:"runs"`
	Chunks          int                 `json:"chunks"`
	JobsStarted     int                 `json:"jobs_started,omitempty"`
	JobsActive      int                 `json:"jobs_active,omitempty"`
	ChunksCompleted int                 `json:"chunks_completed"`
	ChunksInFlight  int                 `json:"chunks_in_flight"`
	Redispatches    int                 `json:"redispatches"`
	LocalChunks     int                 `json:"local_fallback_chunks"`
	Done            bool                `json:"done"`
	LastError       string              `json:"last_error,omitempty"`
	Workers         []CoordWorkerStatus `json:"workers,omitempty"`
}

// CoordWorkerStatus is one worker's row in the coordinator's fleet
// table. RunsServed/InFlight/RunSeconds are the worker's own lifetime
// numbers from wire telemetry; ThroughputRPS is the coordinator-side
// differentiated rate — exactly the signal adaptive batch sizing
// consumes.
type CoordWorkerStatus struct {
	Addr           string  `json:"addr"`
	RunsServed     int64   `json:"runs_served"`
	InFlight       int64   `json:"in_flight"`
	ThroughputRPS  float64 `json:"throughput_runs_per_s"`
	MeanRunSeconds float64 `json:"mean_run_seconds"`
	ChunksDone     int     `json:"chunks_done"`
	Dead           bool    `json:"dead,omitempty"`
	LastSeenUnixMS int64   `json:"last_seen_unix_ms,omitempty"`
}

// workerState is the coordinator's mutable per-worker record behind the
// status table and the labeled fleet gauges.
type workerState struct {
	CoordWorkerStatus
	// lastRuns/lastTime anchor the previous accepted throughput sample,
	// so the instantaneous rate differentiates over a window long enough
	// to be meaningful.
	lastRuns int64
	lastTime time.Time
	// windowed is true once ThroughputRPS comes from a real
	// differentiated window (>= throughputWindow apart) rather than the
	// first-snapshot busy-rate seed; the adaptive chunk sizer trusts
	// windowed rates outright and blends earlier estimates with the
	// worker's advertised parallelism.
	windowed bool
	// helloParallelism is the slot count the worker advertised at
	// hello_ok — the sizer's only signal before any telemetry arrives.
	helloParallelism int
}

// jobState is the coordinator's cumulative chunk accounting. Jobs from
// concurrent campaigns fold into the same tallies; jobsActive tracks how
// many Run calls are in flight so "done" means the whole coordinator is
// quiescent, not that one job finished.
type jobState struct {
	benchmark       string
	runs            int
	chunks          int
	jobsStarted     int
	jobsActive      int
	chunksCompleted int
	chunksInFlight  int
	redispatches    int
	localChunks     int
	lastError       string
}

// throughputWindow is the minimum spacing between telemetry frames used
// to differentiate an instantaneous rate; closer frames only refresh the
// cumulative numbers.
const throughputWindow = 100 * time.Millisecond

// beginJob folds a new Run into the cumulative accounting. Worker rows
// persist across jobs of one coordinator (the fleet is the same), their
// chunk counts keep accumulating. Chunk counts are no longer known up
// front — adaptive sizing carves them on demand — so they accumulate as
// first-attempt dispatches happen, via jobStat.
func (c *Coordinator) beginJob(job Job, runs int) {
	c.stMu.Lock()
	defer c.stMu.Unlock()
	if c.jobSt == nil {
		c.jobSt = &jobState{}
	}
	c.jobSt.benchmark = job.Benchmark
	c.jobSt.runs += runs
	c.jobSt.jobsStarted++
	c.jobSt.jobsActive++
	if c.workerSt == nil {
		c.workerSt = make(map[string]*workerState)
	}
}

// endJob retires one Run, recording its terminal error if any.
func (c *Coordinator) endJob(err error) {
	c.stMu.Lock()
	defer c.stMu.Unlock()
	if c.jobSt == nil {
		return
	}
	c.jobSt.jobsActive--
	if err != nil {
		c.jobSt.lastError = err.Error()
	}
}

// jobStat mutates the current job accounting under the lock.
func (c *Coordinator) jobStat(f func(*jobState)) {
	c.stMu.Lock()
	defer c.stMu.Unlock()
	if c.jobSt != nil {
		f(c.jobSt)
	}
}

// worker returns (creating) the named worker's row; callers hold stMu.
func (c *Coordinator) workerLocked(addr string) *workerState {
	if c.workerSt == nil {
		c.workerSt = make(map[string]*workerState)
	}
	ws := c.workerSt[addr]
	if ws == nil {
		ws = &workerState{CoordWorkerStatus: CoordWorkerStatus{Addr: addr}}
		c.workerSt[addr] = ws
	}
	return ws
}

// noteWorkerTelemetry folds one wire snapshot into the worker's row and
// the labeled fleet gauges the scheduler (and /metrics scrapers) read:
// spa_dist_worker_throughput_runs_per_s{worker=...},
// spa_dist_worker_inflight{worker=...} and friends.
func (c *Coordinator) noteWorkerTelemetry(addr string, t *WorkerTelemetry) {
	if t == nil {
		return
	}
	now := time.Now()
	c.stMu.Lock()
	ws := c.workerLocked(addr)
	ws.RunsServed = t.RunsServed
	ws.InFlight = t.InFlight
	ws.LastSeenUnixMS = now.UnixMilli()
	if t.RunsServed > 0 && t.RunSeconds > 0 {
		ws.MeanRunSeconds = t.RunSeconds / float64(t.RunsServed)
	}
	switch {
	case ws.lastTime.IsZero():
		// First snapshot: no window to differentiate over yet. Seed the
		// gauge with the worker's busy-time service rate (runs per busy
		// second) so the series exists from the first heartbeat.
		if t.RunSeconds > 0 {
			ws.ThroughputRPS = float64(t.RunsServed) / t.RunSeconds
		}
		ws.lastRuns, ws.lastTime = t.RunsServed, now
	case now.Sub(ws.lastTime) >= throughputWindow:
		dt := now.Sub(ws.lastTime).Seconds()
		ws.ThroughputRPS = float64(t.RunsServed-ws.lastRuns) / dt
		ws.lastRuns, ws.lastTime = t.RunsServed, now
		ws.windowed = true
	}
	row := *ws
	c.stMu.Unlock()

	l := obs.Labels{"worker": addr}
	m := c.Obs.M()
	m.GaugeL(obs.MetricDistWorkerRunsServed, l).Set(float64(row.RunsServed))
	m.GaugeL(obs.MetricDistWorkerInflight, l).Set(float64(row.InFlight))
	m.GaugeL(obs.MetricDistWorkerThroughput, l).Set(row.ThroughputRPS)
	m.GaugeL(obs.MetricDistWorkerMeanRunSeconds, l).Set(row.MeanRunSeconds)
}

// noteWorkerHello records the parallelism a worker advertised at
// hello_ok, and clears any stale Dead mark — a worker that answers a
// fresh handshake is alive again for scheduling purposes.
func (c *Coordinator) noteWorkerHello(addr string, parallelism int) {
	c.stMu.Lock()
	ws := c.workerLocked(addr)
	if parallelism > 0 {
		ws.helloParallelism = parallelism
	}
	ws.Dead = false
	c.stMu.Unlock()
}

// rateEstimate returns the best available runs/sec estimate for a
// worker, for adaptive chunk sizing. Preference order: a real
// differentiated throughput window; the busy-rate seed scaled by the
// advertised parallelism (mean run cost amortized over slots); bare
// hello_ok parallelism as "about 1 run/sec/slot" when nothing has ever
// run. Zero means no basis at all.
func (c *Coordinator) rateEstimate(addr string) float64 {
	c.stMu.Lock()
	defer c.stMu.Unlock()
	ws := c.workerSt[addr]
	if ws == nil {
		return 0
	}
	if ws.windowed && ws.ThroughputRPS > 0 {
		return ws.ThroughputRPS
	}
	par := ws.helloParallelism
	if par < 1 {
		par = 1
	}
	if ws.MeanRunSeconds > 0 {
		return float64(par) / ws.MeanRunSeconds
	}
	if ws.ThroughputRPS > 0 {
		// Busy-rate seed from the first snapshot: one slot's service
		// rate; the worker runs par slots.
		return ws.ThroughputRPS * float64(par)
	}
	if ws.helloParallelism > 0 {
		return float64(ws.helloParallelism)
	}
	return 0
}

// liveWorkers counts workers not currently marked dead (minimum 1), the
// divisor of the tail-shrinking heuristic.
func (c *Coordinator) liveWorkers() int {
	c.stMu.Lock()
	defer c.stMu.Unlock()
	n := 0
	for _, addr := range c.Workers {
		if ws := c.workerSt[addr]; ws == nil || !ws.Dead {
			n++
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// noteWorkerDead marks a worker abandoned for this job.
func (c *Coordinator) noteWorkerDead(addr string) {
	c.stMu.Lock()
	c.workerLocked(addr).Dead = true
	c.stMu.Unlock()
}

// noteWorkerChunk credits one committed chunk to the worker.
func (c *Coordinator) noteWorkerChunk(addr string) {
	c.stMu.Lock()
	c.workerLocked(addr).ChunksDone++
	c.stMu.Unlock()
	c.Obs.M().CounterL(obs.MetricDistWorkerChunks, obs.Labels{"worker": addr}).Inc()
}

// Status snapshots the coordinator for /statusz. Safe from any
// goroutine, including while Run is in flight.
func (c *Coordinator) Status() CoordinatorStatus {
	c.stMu.Lock()
	defer c.stMu.Unlock()
	var s CoordinatorStatus
	if c.jobSt != nil {
		s = CoordinatorStatus{
			Benchmark:       c.jobSt.benchmark,
			Runs:            c.jobSt.runs,
			Chunks:          c.jobSt.chunks,
			JobsStarted:     c.jobSt.jobsStarted,
			JobsActive:      c.jobSt.jobsActive,
			ChunksCompleted: c.jobSt.chunksCompleted,
			ChunksInFlight:  c.jobSt.chunksInFlight,
			Redispatches:    c.jobSt.redispatches,
			LocalChunks:     c.jobSt.localChunks,
			Done:            c.jobSt.jobsStarted > 0 && c.jobSt.jobsActive == 0,
			LastError:       c.jobSt.lastError,
		}
	}
	for _, ws := range c.workerSt {
		s.Workers = append(s.Workers, ws.CoordWorkerStatus)
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Addr < s.Workers[j].Addr })
	return s
}
