package dist

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/sim"
)

// startWorker boots a real worker on a loopback port and tears it down
// with the test.
func startWorker(t *testing.T) *Worker {
	t.Helper()
	w := &Worker{Parallelism: 2, HeartbeatEvery: 50 * time.Millisecond}
	if err := w.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Serve() }()
	t.Cleanup(func() {
		w.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("worker did not stop")
		}
	})
	return w
}

// fastCoord returns a coordinator tuned for test-speed failure handling.
func fastCoord(workers ...string) *Coordinator {
	return &Coordinator{
		Workers:      workers,
		ChunkSize:    3,
		ChunkTimeout: 10 * time.Second,
		ReadTimeout:  2 * time.Second,
		DialTimeout:  time.Second,
		BackoffBase:  time.Millisecond,
		BackoffMax:   10 * time.Millisecond,
	}
}

const (
	testBench = "swaptions"
	testScale = 0.05
	testSeed  = uint64(42)
)

func testJob() Job {
	return Job{Benchmark: testBench, Config: sim.DefaultConfig(), Scale: testScale}
}

// localPop is the reference every distributed run must match.
func localPop(t *testing.T, runs int) *population.Population {
	t.Helper()
	p, err := population.Generate(testBench, sim.DefaultConfig(), testScale, runs, testSeed, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// mustJSON pins byte-identity, the subsystem's core guarantee.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func checkPopEqual(t *testing.T, got, want *population.Population) {
	t.Helper()
	g, w := mustJSON(t, got), mustJSON(t, want)
	if string(g) != string(w) {
		t.Errorf("distributed population differs from local:\n got %s\nwant %s", g, w)
	}
}

func TestNoWorkersRunsLocally(t *testing.T) {
	c := fastCoord() // zero workers: a purely local runner
	results, err := c.Run(testJob(), testSeed, 8, population.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results, want 8", len(results))
	}
	for i, r := range results {
		if r.Offset != i {
			t.Fatalf("result %d has offset %d; want seed order", i, r.Offset)
		}
		res, err := sim.Run(testBench, sim.DefaultConfig(), testScale, testSeed+uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if r.Metrics[sim.MetricRuntime] != res.Metrics[sim.MetricRuntime] {
			t.Errorf("offset %d: runtime %g != local %g", i, r.Metrics[sim.MetricRuntime], res.Metrics[sim.MetricRuntime])
		}
	}
}

func TestWorkerCountsByteIdentical(t *testing.T) {
	const runs = 12
	want := localPop(t, runs)
	for _, nw := range []int{1, 2, 4} {
		addrs := make([]string, nw)
		for i := range addrs {
			addrs[i] = startWorker(t).Addr()
		}
		c := fastCoord(addrs...)
		got, err := c.GeneratePopulation(testBench, sim.DefaultConfig(), testScale, runs, testSeed, population.RunHooks{})
		if err != nil {
			t.Fatalf("%d workers: %v", nw, err)
		}
		checkPopEqual(t, got, want)
	}
}

func TestRunRejectsBadJobs(t *testing.T) {
	c := fastCoord()
	if _, err := c.Run(testJob(), testSeed, 0, population.RunHooks{}); err == nil {
		t.Error("zero runs should error")
	}
	if _, err := c.Run(Job{Config: sim.DefaultConfig()}, testSeed, 4, population.RunHooks{}); err == nil {
		t.Error("missing benchmark should error")
	}
	bad := testJob()
	bad.Config.Cores = -1
	if _, err := c.Run(bad, testSeed, 4, population.RunHooks{}); err == nil {
		t.Error("invalid config should error")
	}
}

func TestExecErrorAbortsJob(t *testing.T) {
	w := startWorker(t)
	for name, c := range map[string]*Coordinator{
		"remote": fastCoord(w.Addr()),
		"local":  fastCoord(),
	} {
		job := testJob()
		job.Benchmark = "no-such-benchmark"
		_, err := c.Run(job, testSeed, 4, population.RunHooks{})
		if err == nil {
			t.Fatalf("%s: unknown benchmark should abort the job", name)
		}
		if !strings.Contains(err.Error(), "no-such-benchmark") {
			t.Errorf("%s: error should name the benchmark: %v", name, err)
		}
	}
}

func TestUnreachableWorkerFallsBackLocal(t *testing.T) {
	// A bound-then-closed listener yields a port that refuses connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	reg := obs.NewRegistry()
	c := fastCoord(addr)
	c.MaxWorkerFailures = 2
	c.Obs = &obs.Observer{Metrics: reg}
	got, err := c.GeneratePopulation(testBench, sim.DefaultConfig(), testScale, 8, testSeed, population.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	checkPopEqual(t, got, localPop(t, 8))
	if v := reg.Counter(obs.MetricDistLocalChunks).Value(); v == 0 {
		t.Error("local fallback counter never incremented")
	}
	if v := reg.Counter(obs.MetricDistWorkersDead).Value(); v == 0 {
		t.Error("dead-worker counter never incremented")
	}
}

func TestPing(t *testing.T) {
	w := startWorker(t)
	c := fastCoord()
	if err := c.Ping(w.Addr()); err != nil {
		t.Errorf("ping healthy worker: %v", err)
	}
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	dead := ln.Addr().String()
	ln.Close()
	if err := c.Ping(dead); err == nil {
		t.Error("ping dead address should error")
	}
}

// fakeWorker serves scripted protocol conversations for failure-mode
// tests. Each accepted connection is handed to handle; when handle
// returns, the connection closes.
type fakeWorker struct {
	ln net.Listener
	wg sync.WaitGroup
}

func startFakeWorker(t *testing.T, handle func(c *conn)) *fakeWorker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeWorker{ln: ln}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				c := newConn(nc, 0)
				defer c.close()
				handle(c)
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		f.wg.Wait()
	})
	return f
}

func (f *fakeWorker) addr() string { return f.ln.Addr().String() }

// answerHello consumes the hello frame and accepts it.
func answerHello(t *testing.T, c *conn) bool {
	f, err := c.recv(time.Now().Add(5 * time.Second))
	if err != nil || f.Type != frameHello {
		return false
	}
	return c.send(frame{Type: frameHelloOK, Version: ProtocolVersion, Parallelism: 1}) == nil
}

func TestOutOfOrderResultsCommitInSeedOrder(t *testing.T) {
	// A worker that streams results in reverse offset order: legal under
	// the protocol, and must not perturb the returned sample order.
	fake := startFakeWorker(t, func(c *conn) {
		if !answerHello(t, c) {
			return
		}
		for {
			req, err := c.recv(time.Now().Add(5 * time.Second))
			if err != nil || req.Type != frameRunChunk {
				return
			}
			for i := req.Count - 1; i >= 0; i-- {
				off := req.Start + i
				res, err := sim.Run(req.Benchmark, *req.Config, req.Scale, req.BaseSeed+uint64(off))
				if err != nil {
					c.send(frame{Type: frameError, ID: req.ID, Error: err.Error()})
					return
				}
				if c.send(frame{Type: frameResult, ID: req.ID, Offset: off,
					Metrics: res.Metrics, Cycles: res.Cycles}) != nil {
					return
				}
			}
			if c.send(frame{Type: frameChunkDone, ID: req.ID, Count: req.Count}) != nil {
				return
			}
		}
	})

	c := fastCoord(fake.addr())
	got, err := c.GeneratePopulation(testBench, sim.DefaultConfig(), testScale, 10, testSeed, population.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	checkPopEqual(t, got, localPop(t, 10))
}

func TestWorkerDeathMidChunkRedispatches(t *testing.T) {
	// The dying worker streams two bogus results per chunk and drops the
	// connection without chunk_done, every time. Its partial results must
	// be discarded (never committed), the chunks re-dispatched, and the
	// healthy worker must finish the job with local-identical samples.
	dying := startFakeWorker(t, func(c *conn) {
		if !answerHello(t, c) {
			return
		}
		req, err := c.recv(time.Now().Add(5 * time.Second))
		if err != nil || req.Type != frameRunChunk {
			return
		}
		for i := 0; i < 2 && i < req.Count; i++ {
			c.send(frame{Type: frameResult, ID: req.ID, Offset: req.Start + i,
				Metrics: map[string]float64{sim.MetricRuntime: -12345}}) // poison: must never commit
		}
		// close without chunk_done: mid-chunk death
	})
	healthy := startWorker(t)

	reg := obs.NewRegistry()
	c := fastCoord(dying.addr(), healthy.Addr())
	c.MaxWorkerFailures = 2
	c.Obs = &obs.Observer{Metrics: reg}
	got, err := c.GeneratePopulation(testBench, sim.DefaultConfig(), testScale, 12, testSeed, population.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	checkPopEqual(t, got, localPop(t, 12))
	for _, s := range got.Metrics[sim.MetricRuntime] {
		if s == -12345 {
			t.Fatal("poison sample from the dying worker was committed")
		}
	}
	if v := reg.Counter(obs.MetricDistRedispatches).Value(); v == 0 {
		t.Error("mid-chunk death never triggered a re-dispatch")
	}
	if v := reg.Counter(obs.MetricDistWorkersDead).Value(); v == 0 {
		t.Error("repeatedly dying worker was never declared dead")
	}
}

func TestSlowWorkerDuplicateCommitDiscarded(t *testing.T) {
	// A worker that answers hello and then goes silent: the read deadline
	// trips, the chunk re-dispatches to the healthy worker, and the job
	// still completes with exactly one commit per chunk.
	silent := startFakeWorker(t, func(c *conn) {
		if !answerHello(t, c) {
			return
		}
		// Accept the chunk but never respond; the next recv blocks until
		// the coordinator gives up on us and closes the connection.
		if req, err := c.recv(time.Now().Add(5 * time.Second)); err != nil || req.Type != frameRunChunk {
			return
		}
		c.recv(time.Now().Add(30 * time.Second))
	})
	healthy := startWorker(t)

	c := fastCoord(silent.addr(), healthy.Addr())
	c.ReadTimeout = 300 * time.Millisecond
	c.MaxWorkerFailures = 1
	got, err := c.GeneratePopulation(testBench, sim.DefaultConfig(), testScale, 9, testSeed, population.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	checkPopEqual(t, got, localPop(t, 9))
}

func TestHooksFireOncePerRun(t *testing.T) {
	w := startWorker(t)
	var mu sync.Mutex
	seen := map[int]int{}
	h := population.RunHooks{
		OnRunDone: func(i int, seed uint64, res *sim.Result, err error, elapsed time.Duration) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			if seed != testSeed+uint64(i) {
				t.Errorf("hook for run %d saw seed %d", i, seed)
			}
			if err != nil || res == nil || res.Benchmark != testBench {
				t.Errorf("hook for run %d: res=%v err=%v", i, res, err)
			}
		},
	}
	c := fastCoord(w.Addr())
	if _, err := c.Run(testJob(), testSeed, 7, h); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 7; i++ {
		if seen[i] != 1 {
			t.Errorf("run %d hook fired %d times, want exactly 1", i, seen[i])
		}
	}
}

func TestDistCollectMatchesLocalSamples(t *testing.T) {
	w := startWorker(t)
	c := fastCoord(w.Addr())
	got, err := c.DistCollect(testJob(), sim.MetricRuntime, testSeed, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := localPop(t, 10).Metrics[sim.MetricRuntime]
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("sample %d: %g != %g", i, got[i], want[i])
		}
	}
}

func TestCollectorRejectsMissingMetric(t *testing.T) {
	w := startWorker(t)
	c := fastCoord(w.Addr())
	_, err := c.DistCollect(testJob(), "no-such-metric", testSeed, 4)
	if err == nil || !strings.Contains(err.Error(), "no-such-metric") {
		t.Errorf("missing metric should error by name, got %v", err)
	}
}

func TestAnalyzeWithDistCollector(t *testing.T) {
	w := startWorker(t)
	c := fastCoord(w.Addr())
	p := core.Params{F: 0.5, C: 0.9}
	opts := core.Options{Samples: 40, BaseSeed: testSeed}

	distA, err := core.AnalyzeWith(c.Collector(testJob(), sim.MetricRuntime), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed uint64) (float64, error) {
		res, err := sim.Run(testBench, sim.DefaultConfig(), testScale, seed)
		if err != nil {
			return 0, err
		}
		return res.Metrics[sim.MetricRuntime], nil
	}
	localA, err := core.Analyze(run, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if string(mustJSON(t, distA.Samples)) != string(mustJSON(t, localA.Samples)) {
		t.Error("distributed analysis samples differ from local")
	}
	if distA.Interval != localA.Interval {
		t.Errorf("intervals differ: %+v vs %+v", distA.Interval, localA.Interval)
	}
}

func TestSplitAddrs(t *testing.T) {
	if got := SplitAddrs(""); got != nil {
		t.Errorf("empty string should yield nil, got %v", got)
	}
	got := SplitAddrs("a:1, b:2,,c:3,")
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("addr %d: %q != %q", i, got[i], want[i])
		}
	}
}

func TestSplitAddrsDedupsRepeats(t *testing.T) {
	// A repeated address would double that worker's share of the
	// failure budget and its connection count; SplitAddrs keeps the
	// first occurrence only.
	got := SplitAddrs("a:1,b:2, a:1,c:3,b:2,a:1")
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("addr %d: %q != %q", i, got[i], want[i])
		}
	}
}
