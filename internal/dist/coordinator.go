package dist

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/sim"
)

// Job names the deterministic work a campaign farms out: which workload
// to run on which simulated system at which scale. Together with an
// absolute seed a Job fully determines one run's result, which is why
// chunks can be re-dispatched freely.
type Job struct {
	Benchmark string
	Config    sim.Config
	Scale     float64
}

// RunResult is one completed run: its seed offset within the campaign
// and the simulator's scalar metrics. Elapsed is the executing worker's
// wall time (local or remote).
type RunResult struct {
	Offset  int
	Metrics map[string]float64
	Cycles  uint64
	Elapsed time.Duration
}

// Coordinator shards a seed range into contiguous chunks and executes
// them across the configured workers, re-dispatching on failure and
// degrading to in-process execution when no worker is reachable. The
// zero value with no Workers is a purely local runner. A Coordinator is
// safe for concurrent Run calls — the campaign service runs many
// tenants' jobs through one shared instance so fleet telemetry, chunk
// accounting, and the local-fallback parallelism bound accumulate in
// one place; configuration fields must not be mutated once the first
// Run is in flight.
type Coordinator struct {
	// Workers are worker addresses (host:port). Empty means run
	// everything in-process.
	Workers []string
	// ChunkSize is the number of consecutive seeds per dispatch
	// (0 = 16). Smaller chunks re-balance faster after a failure;
	// larger ones amortize framing. With ChunkTarget set it is only the
	// fallback size for peers below protocol v3 and the local path.
	ChunkSize int
	// ChunkTarget, when positive, switches chunk carving from fixed
	// ChunkSize slices to throughput-adaptive sizing: each v3 worker's
	// next chunk is sized from its observed runs/sec (wire telemetry,
	// seeded by hello_ok parallelism before the first sample) to take
	// about ChunkTarget of wall time, and shrinks near the tail so no
	// single worker strags the job on one oversized final chunk.
	// Scheduling becomes non-deterministic; assembled results do not —
	// they stay keyed by seed offset. Zero keeps fixed-size chunks.
	ChunkTarget time.Duration
	// ChunkTimeout bounds one chunk's total execution including
	// streaming (0 = 5m). A chunk that exceeds it is re-dispatched.
	ChunkTimeout time.Duration
	// ReadTimeout bounds the silence between frames from a worker
	// (0 = 10s). Workers heartbeat every second while executing, so a
	// tripped read deadline means the worker is gone, not slow.
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame send (0 = 10s). A worker that
	// stops reading trips it instead of wedging the dispatch forever.
	WriteTimeout time.Duration
	// DialTimeout bounds connection establishment (0 = 3s).
	DialTimeout time.Duration
	// Dial optionally replaces the TCP dialer — fault injection
	// (internal/faultx) and tests. Nil uses net.DialTimeout.
	Dial DialFunc
	// MaxWorkerFailures is the consecutive-failure budget before a
	// worker is abandoned for the rest of the job (0 = 3).
	MaxWorkerFailures int
	// BackoffBase/BackoffMax bound the jittered exponential reconnect
	// backoff (0 = 50ms / 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Parallelism bounds in-process execution when degrading to local
	// runs (0 = GOMAXPROCS).
	Parallelism int
	// Obs receives dispatch/retry/re-dispatch/health telemetry.
	Obs *obs.Observer

	// stMu guards the status/telemetry state below (status.go). Lazily
	// initialized so the zero-value Coordinator keeps working.
	stMu     sync.Mutex
	jobSt    *jobState
	workerSt map[string]*workerState

	// localSem bounds in-process execution across every concurrent job
	// (lazily sized from Parallelism), so campaigns degrading to local
	// runs share one CPU budget instead of multiplying it.
	localOnce sync.Once
	localSem  chan struct{}

	// chunkSeq issues process-unique chunk IDs, so a stale frame from an
	// abandoned exchange can never alias a live chunk on a reused
	// connection.
	chunkSeq atomic.Uint64
}

func (c *Coordinator) chunkSize() int {
	if c.ChunkSize <= 0 {
		return 16
	}
	return c.ChunkSize
}

func (c *Coordinator) chunkTimeout() time.Duration {
	if c.ChunkTimeout <= 0 {
		return 5 * time.Minute
	}
	return c.ChunkTimeout
}

func (c *Coordinator) readTimeout() time.Duration {
	if c.ReadTimeout <= 0 {
		return 10 * time.Second
	}
	return c.ReadTimeout
}

func (c *Coordinator) writeTimeout() time.Duration {
	if c.WriteTimeout <= 0 {
		return 10 * time.Second
	}
	return c.WriteTimeout
}

func (c *Coordinator) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return 3 * time.Second
	}
	return c.DialTimeout
}

func (c *Coordinator) maxWorkerFailures() int {
	if c.MaxWorkerFailures <= 0 {
		return 3
	}
	return c.MaxWorkerFailures
}

// chunk is one contiguous slice of the seed range, carved from the work
// queue at dispatch time. A chunk is owned by exactly one place at any
// time — the queue, one worker goroutine, or the committed state; the
// per-offset commit ledger makes even a misbehaving double-dispatch
// harmless.
type chunk struct {
	start, count int
	attempts     int
}

// workQueue holds the seed ranges not yet dispatched. Unlike the old
// fixed pre-carved chunk channel, ranges are carved on demand — each
// worker connection takes a chunk sized for its own throughput — and
// failed dispatches return their range whole for someone else to carve
// differently.
type workQueue struct {
	mu     sync.Mutex
	segs   []chunk
	closed bool
	avail  chan struct{} // capacity 1: "work may be available" wakeup
}

func newWorkQueue(n int) *workQueue {
	return &workQueue{segs: []chunk{{start: 0, count: n}}, avail: make(chan struct{}, 1)}
}

func (q *workQueue) signal() {
	select {
	case q.avail <- struct{}{}:
	default:
	}
}

// pending is the number of runs not yet dispatched (requeued ranges
// included) — the denominator of the tail-shrinking heuristic.
func (q *workQueue) pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, s := range q.segs {
		n += s.count
	}
	return n
}

// take carves up to max runs off the front segment; nil means the queue
// is empty right now (the job may still have chunks in flight
// elsewhere — wait on avail or st.done). A take never spans segments,
// so a requeued range keeps its attempt count.
func (q *workQueue) take(max int) *chunk {
	if max < 1 {
		max = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.segs) == 0 {
		return nil
	}
	s := &q.segs[0]
	ch := &chunk{start: s.start, count: min(s.count, max), attempts: s.attempts}
	s.start += ch.count
	s.count -= ch.count
	if s.count == 0 {
		q.segs = q.segs[1:]
	}
	if len(q.segs) > 0 {
		q.signal() // more work: don't leave a second waiter sleeping
	}
	return ch
}

// put returns a failed dispatch's range to the queue and wakes a waiter.
// A put after close is dropped: the job already completed (the range's
// offsets committed through another dispatch), so requeuing it would
// only hand a dead segment to the next idle worker.
func (q *workQueue) put(ch *chunk) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.segs = append(q.segs, chunk{start: ch.start, count: ch.count, attempts: ch.attempts})
	q.mu.Unlock()
	q.signal()
}

// close discards every un-dispatched segment and makes later takes
// return nil and later puts no-ops. The run state calls it the moment
// the job finishes or fails, so convergence at the analysis layer —
// which ends the round by completing the job — cancels queued work
// instead of letting an idle worker dispatch a stale requeued segment
// after the result is already decided.
func (q *workQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.segs = nil
	q.mu.Unlock()
	q.signal()
}

// runState accumulates committed results, keyed by seed offset. Every
// offset commits exactly once; late duplicates (a slow worker racing
// its own re-dispatch) are discarded per offset, which is safe because
// a run's result is a pure function of its seed.
type runState struct {
	mu        sync.Mutex
	results   []RunResult
	got       []bool
	remaining int
	err       error
	done      chan struct{}
	closed    bool
	// queue is the job's work queue, closed together with done so no
	// idle worker can take (and dispatch) a stale requeued segment after
	// the job's outcome is already decided.
	queue *workQueue
}

func newRunState(n int, queue *workQueue) *runState {
	return &runState{
		results:   make([]RunResult, n),
		got:       make([]bool, n),
		remaining: n,
		done:      make(chan struct{}),
		queue:     queue,
	}
}

// commit installs a dispatch's results and returns the subset that was
// new — the runs hooks may observe. A nil return means the job already
// closed (finished or failed) and nothing was committed.
func (st *runState) commit(runs []RunResult) []RunResult {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	fresh := runs[:0:0]
	for _, r := range runs {
		if st.got[r.Offset] {
			continue
		}
		st.got[r.Offset] = true
		st.results[r.Offset] = r
		st.remaining--
		fresh = append(fresh, r)
	}
	finished := st.remaining == 0
	if finished {
		st.closed = true
		close(st.done)
	}
	st.mu.Unlock()
	// Queue teardown happens outside st.mu: close takes the queue lock,
	// and no queue path takes st.mu, so the lock order stays one-way.
	if finished && st.queue != nil {
		st.queue.close()
	}
	return fresh
}

// fail aborts the job with a terminal error (deterministic execution
// failures re-dispatching cannot cure).
func (st *runState) fail(err error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.err = err
	st.closed = true
	close(st.done)
	st.mu.Unlock()
	if st.queue != nil {
		st.queue.close()
	}
}

func (st *runState) finished() (bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.closed, st.err
}

// Run executes n runs with seeds baseSeed+0 … baseSeed+n−1 across the
// workers and returns the results ordered by seed offset — byte-for-byte
// the samples a local run would produce, independent of worker count,
// chunk size, or arrival order. Hooks (may be zero) observe runs as
// their chunks commit.
func (c *Coordinator) Run(job Job, baseSeed uint64, n int, h population.RunHooks) ([]RunResult, error) {
	return c.RunCtx(context.Background(), job, baseSeed, n, h)
}

// RunCtx is Run with cooperative cancellation: when ctx is cancelled the
// job fails with the context's error at the next chunk boundary —
// in-flight runs finish (a simulator run is not interruptible) but no
// new chunk is dispatched or launched. The campaign service's DELETE
// and drain paths ride on this.
func (c *Coordinator) RunCtx(ctx context.Context, job Job, baseSeed uint64, n int, h population.RunHooks) ([]RunResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: non-positive run count %d", n)
	}
	if job.Benchmark == "" {
		return nil, errors.New("dist: job has no benchmark")
	}
	if err := job.Config.Validate(); err != nil {
		return nil, fmt.Errorf("dist: job config: %w", err)
	}

	queue := newWorkQueue(n)
	st := newRunState(n, queue)
	c.beginJob(job, n)

	span := c.Obs.T().StartSpan("dist.job", obs.Str("benchmark", job.Benchmark),
		obs.U64("base_seed", baseSeed), obs.Int("runs", n),
		obs.Int("workers", len(c.Workers)))

	// Cancellation fails the run state, which every dispatch and local
	// loop already observes at chunk boundaries.
	if ctx.Done() != nil {
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-ctx.Done():
				st.fail(context.Cause(ctx))
			case <-stopWatch:
			case <-st.done:
			}
		}()
	}

	var wg sync.WaitGroup
	for _, addr := range c.Workers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			c.workerLoop(addr, job, baseSeed, st, queue, h)
		}(addr)
	}
	allDead := make(chan struct{})
	go func() {
		wg.Wait()
		close(allDead)
	}()

	select {
	case <-st.done:
	case <-allDead:
		// Every worker is gone (or none was configured): degrade to
		// in-process execution of whatever is still queued.
		if done, _ := st.finished(); !done {
			if len(c.Workers) > 0 {
				c.Obs.Logf("dist: no reachable workers, running remaining chunks in-process")
				c.Obs.T().Event("dist.fallback_local", obs.Int("workers", len(c.Workers)))
			}
			c.runLocal(job, baseSeed, st, queue, h)
		}
	}
	<-allDead // worker goroutines all observe st.done before returning

	_, err := st.finished()
	c.endJob(err)
	if err != nil {
		span.End(obs.Str("error", err.Error()))
		return nil, err
	}
	span.End(obs.Int("completed", n))
	return st.results, nil
}

// workerLoop owns one worker address for the duration of a job: it
// connects, carves chunks off the shared work queue sized for this
// worker's throughput, dispatches them, and applies the failure policy
// (reconnect with jittered backoff, re-dispatch on error, abandon the
// worker after too many consecutive failures). Connecting happens
// before carving — the negotiated version and advertised parallelism
// decide how the first chunk is sized.
func (c *Coordinator) workerLoop(addr string, job Job, baseSeed uint64, st *runState, queue *workQueue, h population.RunHooks) {
	hsh := fnv.New64a()
	hsh.Write([]byte(addr))
	bo := newBackoff(c.BackoffBase, c.BackoffMax, hsh.Sum64())
	var cn *conn
	defer func() {
		if cn != nil {
			cn.close()
		}
	}()
	failures := 0
	requeue := func(ch *chunk) {
		ch.attempts++
		c.Obs.M().Counter(obs.MetricDistRedispatches).Inc()
		c.jobStat(func(j *jobState) { j.redispatches++ })
		queue.put(ch)
	}
	abandon := func(ch *chunk, why error) {
		if ch != nil {
			requeue(ch)
		}
		c.noteWorkerDead(addr)
		c.Obs.M().Counter(obs.MetricDistWorkersDead).Inc()
		c.Obs.T().Event("dist.worker_dead", obs.Str("worker", addr), obs.Str("error", why.Error()))
		c.Obs.Logf("dist: abandoning worker %s: %v", addr, why)
	}
	for {
		// Ensure a healthy connection, backing off between attempts.
		for cn == nil {
			var err error
			cn, err = c.dial(addr)
			if err == nil {
				bo.reset()
				c.noteWorkerHello(addr, cn.parallelism)
				break
			}
			c.Obs.M().Counter(obs.MetricDistRetries).Inc()
			failures++
			if failures >= c.maxWorkerFailures() {
				abandon(nil, err)
				return
			}
			select {
			case <-st.done:
				return
			case <-time.After(bo.next()):
			}
		}
		ch := queue.take(c.nextChunkSize(addr, cn.version, queue.pending()))
		if ch == nil {
			// Queue drained, but the job may still be waiting on chunks
			// in flight elsewhere — one of which may yet fail and requeue
			// its range. Sleep until either happens.
			select {
			case <-st.done:
				return
			case <-queue.avail:
				continue
			}
		}
		err := c.dispatch(cn, job, baseSeed, ch, st, h)
		if err == nil {
			failures = 0
			continue
		}
		if errors.Is(err, errJobDone) {
			return
		}
		var execErr *chunkExecError
		if errors.As(err, &execErr) {
			// Deterministic failure: the same seed fails everywhere, so
			// re-dispatching cannot help. Abort the whole job, matching
			// local collection semantics.
			st.fail(fmt.Errorf("dist: worker %s: chunk [%d,%d): %w", addr, ch.start, ch.start+ch.count, execErr))
			return
		}
		// Connection-level failure (death, timeout, malformed stream):
		// the chunk goes back to the pool and the connection is torn
		// down; another worker — or this one after reconnecting — picks
		// it up, possibly carved differently.
		cn.close()
		cn = nil
		failures++
		requeue(ch)
		if failures >= c.maxWorkerFailures() {
			abandon(nil, err)
			return
		}
		select {
		case <-st.done:
			return
		case <-time.After(bo.next()):
		}
	}
}

// maxAdaptiveChunk caps one adaptive dispatch so a wildly overestimated
// rate cannot swallow a whole campaign in a single chunk (which would
// defeat both re-balancing and failure recovery).
const maxAdaptiveChunk = 4096

// nextChunkSize decides how many runs to carve for a worker's next
// dispatch. Fixed ChunkSize unless adaptive sizing is on (ChunkTarget
// set) and the peer speaks v3 — batching is what makes large chunks
// cheap, and a per-run-framing peer with a huge chunk would regress the
// very hot path this exists to fix. Adaptive size = observed runs/sec ×
// ChunkTarget (seeded from hello_ok parallelism before telemetry
// exists), capped at half a fair share of the remaining work so chunks
// shrink toward the tail and no worker strags the job on one oversized
// final dispatch.
func (c *Coordinator) nextChunkSize(addr string, version, pending int) int {
	if c.ChunkTarget <= 0 || version < batchVersion {
		return c.chunkSize()
	}
	size := int(c.rateEstimate(addr)*c.ChunkTarget.Seconds() + 0.5)
	if size > maxAdaptiveChunk {
		size = maxAdaptiveChunk
	}
	if pending > 0 {
		live := 2 * c.liveWorkers()
		if share := (pending + live - 1) / live; size > share {
			size = share
		}
	}
	if size < 1 {
		size = 1
	}
	return size
}

// chunkExecError marks a worker-reported execution failure, as opposed
// to a transport failure.
type chunkExecError struct{ msg string }

func (e *chunkExecError) Error() string { return e.msg }

// errJobDone aborts a dispatch whose job finished (or failed) elsewhere.
var errJobDone = errors.New("dist: job finished elsewhere")

// DialFunc establishes one transport connection; it matches
// net.DialTimeout and is the seam fault injectors and tests use.
type DialFunc func(network, address string, timeout time.Duration) (net.Conn, error)

func (c *Coordinator) dial(addr string) (*conn, error) {
	dial := c.Dial
	if dial == nil {
		dial = net.DialTimeout
	}
	nc, err := dial("tcp", addr, c.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	cn := newConn(nc, c.writeTimeout())
	// Label this connection with the configured worker address, not the
	// transport's RemoteAddr — it is the stable identity spans, the
	// per-worker metric labels, and the /statusz table key all share.
	cn.addr = addr
	if err := cn.handshake(c.dialTimeout()); err != nil {
		cn.close()
		return nil, err
	}
	return cn, nil
}

// dispatch sends one chunk and consumes its result stream. Errors are
// transport-level unless wrapped in chunkExecError.
func (c *Coordinator) dispatch(cn *conn, job Job, baseSeed uint64, ch *chunk, st *runState, h population.RunHooks) error {
	// The job may have completed between carving and here (a slow
	// duplicate dispatch committing the final offsets): launch nothing —
	// neither span, ledger increment, nor wire frame.
	select {
	case <-st.done:
		return errJobDone
	default:
	}
	span := c.Obs.T().StartSpan("dist.chunk", obs.Str("worker", cn.addr),
		obs.Int("start", ch.start), obs.Int("count", ch.count), obs.Int("attempt", ch.attempts))
	c.Obs.M().Counter(obs.MetricDistChunksDispatched).Inc()
	c.jobStat(func(j *jobState) {
		j.chunksInFlight++
		if ch.attempts == 0 {
			j.chunks++
		}
	})
	defer c.jobStat(func(j *jobState) { j.chunksInFlight-- })
	// Chunk IDs are process-unique, not per-job indexes: work is carved
	// on demand, so two dispatches of overlapping ranges must never share
	// an ID a stale frame could alias.
	id := c.chunkSeq.Add(1)
	cfg := job.Config
	err := cn.send(frame{
		Type: frameRunChunk, ID: id,
		Benchmark: job.Benchmark, Config: &cfg, Scale: job.Scale,
		BaseSeed: baseSeed, Start: ch.start, Count: ch.count,
	})
	if err != nil {
		span.End(obs.Str("error", err.Error()))
		return err
	}
	deadline := time.Now().Add(c.chunkTimeout())
	runs := make([]RunResult, 0, ch.count)
	seen := make(map[int]bool, ch.count)
	accept := func(off int, metrics map[string]float64, cycles uint64, elapsedUS int64) error {
		if off < ch.start || off >= ch.start+ch.count || seen[off] {
			return fmt.Errorf("dist: worker %s sent offset %d outside chunk [%d,%d)", cn.addr, off, ch.start, ch.start+ch.count)
		}
		seen[off] = true
		runs = append(runs, RunResult{Offset: off, Metrics: metrics,
			Cycles: cycles, Elapsed: time.Duration(elapsedUS) * time.Microsecond})
		return nil
	}
	for {
		// A slow dispatch racing its own re-dispatch stops as soon as the
		// job finishes elsewhere, instead of streaming to completion.
		select {
		case <-st.done:
			span.End(obs.Str("error", errJobDone.Error()))
			return errJobDone
		default:
		}
		readDL := time.Now().Add(c.readTimeout())
		if readDL.After(deadline) {
			readDL = deadline
		}
		f, err := cn.recv(readDL)
		if err != nil {
			span.End(obs.Str("error", err.Error()))
			return fmt.Errorf("dist: chunk stream from %s: %w", cn.addr, err)
		}
		// Telemetry snapshots describe the worker process, not a chunk, so
		// fold them in even when they arrive on stale frames.
		if f.Telemetry != nil {
			c.noteWorkerTelemetry(cn.addr, f.Telemetry)
		}
		if f.ID != id {
			continue // stale frame from an abandoned exchange
		}
		switch f.Type {
		case frameHeartbeat:
			continue
		case frameResult:
			if err := accept(f.Offset, f.Metrics, f.Cycles, f.ElapsedUS); err != nil {
				span.End(obs.Str("error", "bad offset"))
				return err
			}
		case frameResultBatch:
			b := f.Batch
			if b == nil {
				span.End(obs.Str("error", "empty batch"))
				return fmt.Errorf("dist: worker %s sent result_batch with no payload", cn.addr)
			}
			if err := b.validate(); err != nil {
				span.End(obs.Str("error", err.Error()))
				return err
			}
			for i, off := range b.Offsets {
				// Rebuild the per-run metric map from the columns: names
				// decode once per batch instead of once per run.
				m := make(map[string]float64, len(b.Metrics))
				for k, vs := range b.Metrics {
					m[k] = vs[i]
				}
				if err := accept(off, m, b.Cycles[i], b.ElapsedUS[i]); err != nil {
					span.End(obs.Str("error", "bad offset"))
					return err
				}
			}
		case frameChunkDone:
			if len(runs) != ch.count {
				span.End(obs.Str("error", "short chunk"))
				return fmt.Errorf("dist: worker %s finished chunk with %d/%d results", cn.addr, len(runs), ch.count)
			}
			c.Obs.M().Counter(obs.MetricDistChunksCompleted).Inc()
			c.noteWorkerChunk(cn.addr)
			c.jobStat(func(j *jobState) { j.chunksCompleted++ })
			if fresh := st.commit(runs); len(fresh) > 0 {
				fireHooks(job, baseSeed, fresh, h)
			}
			span.End(obs.Int("results", len(runs)))
			return nil
		case frameError:
			span.End(obs.Str("error", f.Error))
			return &chunkExecError{msg: f.Error}
		default:
			span.End(obs.Str("error", "unexpected frame "+f.Type))
			return fmt.Errorf("dist: unexpected %s frame from %s", f.Type, cn.addr)
		}
	}
}

// localSemaphore returns the process-wide in-process execution bound,
// shared by every concurrent job so N campaigns degrading locally still
// run at most Parallelism simulations at once.
func (c *Coordinator) localSemaphore() chan struct{} {
	c.localOnce.Do(func() {
		par := c.Parallelism
		if par <= 0 {
			par = runtime.GOMAXPROCS(0)
		}
		c.localSem = make(chan struct{}, par)
	})
	return c.localSem
}

// runLocal executes every still-queued chunk in-process — the
// degradation path, and the whole path when no workers are configured.
// It uses the same chunk/commit machinery so determinism is shared.
func (c *Coordinator) runLocal(job Job, baseSeed uint64, st *runState, queue *workQueue, h population.RunHooks) {
	sem := c.localSemaphore()
	var wg sync.WaitGroup
	for {
		ch := queue.take(c.chunkSize())
		if ch == nil {
			wg.Wait()
			return
		}
		if done, _ := st.finished(); done {
			wg.Wait()
			return
		}
		c.Obs.M().Counter(obs.MetricDistLocalChunks).Inc()
		c.jobStat(func(j *jobState) {
			j.localChunks++
			if ch.attempts == 0 {
				j.chunks++
			}
		})
		runs := make([]RunResult, ch.count)
		var cwg sync.WaitGroup
		failed := false
		var mu sync.Mutex
		for i := 0; i < ch.count; i++ {
			cwg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer cwg.Done()
				defer func() { <-sem }()
				off := ch.start + i
				seed := baseSeed + uint64(off)
				if h.OnRunStart != nil {
					h.OnRunStart(off, seed)
				}
				start := time.Now()
				res, err := sim.Run(job.Benchmark, job.Config, job.Scale, seed)
				elapsed := time.Since(start)
				if h.OnRunDone != nil {
					h.OnRunDone(off, seed, res, err, elapsed)
				}
				if err != nil {
					mu.Lock()
					failed = true
					mu.Unlock()
					st.fail(fmt.Errorf("dist: local run with seed %d: %w", seed, err))
					return
				}
				runs[i] = RunResult{Offset: off, Metrics: res.Metrics, Cycles: res.Cycles, Elapsed: elapsed}
			}(i)
		}
		wg.Add(1)
		go func(ch *chunk) {
			defer wg.Done()
			cwg.Wait()
			mu.Lock()
			bad := failed
			mu.Unlock()
			if !bad && st.commit(runs) != nil {
				c.jobStat(func(j *jobState) { j.chunksCompleted++ })
			}
		}(ch)
	}
}

// fireHooks reports a committed remote chunk's runs to the hooks in
// offset order. Hooks observe only — values and ordering of the returned
// samples never depend on them.
func fireHooks(job Job, baseSeed uint64, runs []RunResult, h population.RunHooks) {
	if h.OnRunStart == nil && h.OnRunDone == nil {
		return
	}
	for _, r := range runs {
		seed := baseSeed + uint64(r.Offset)
		if h.OnRunStart != nil {
			h.OnRunStart(r.Offset, seed)
		}
		if h.OnRunDone != nil {
			res := &sim.Result{Benchmark: job.Benchmark, Cycles: r.Cycles, Metrics: r.Metrics}
			h.OnRunDone(r.Offset, seed, res, nil, r.Elapsed)
		}
	}
}

// SplitAddrs parses a comma-separated worker address list (the CLIs'
// -workers flag), dropping empty entries so trailing commas are
// harmless and deduplicating repeats so one listed-twice worker doesn't
// get two worker loops — and with them a doubled failure budget and
// doubled dispatch share. nil means "no workers" — a purely local
// coordinator.
func SplitAddrs(s string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// Ping checks one worker's liveness with a hello/ping round trip.
func (c *Coordinator) Ping(addr string) error {
	cn, err := c.dial(addr)
	if err != nil {
		return err
	}
	defer cn.close()
	if err := cn.send(frame{Type: framePing}); err != nil {
		return err
	}
	f, err := cn.recv(time.Now().Add(c.readTimeout()))
	if err != nil {
		return err
	}
	if f.Type != framePong {
		return fmt.Errorf("dist: worker %s answered ping with %s", addr, f.Type)
	}
	return nil
}
