package dist

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/sim"
)

// Job names the deterministic work a campaign farms out: which workload
// to run on which simulated system at which scale. Together with an
// absolute seed a Job fully determines one run's result, which is why
// chunks can be re-dispatched freely.
type Job struct {
	Benchmark string
	Config    sim.Config
	Scale     float64
}

// RunResult is one completed run: its seed offset within the campaign
// and the simulator's scalar metrics. Elapsed is the executing worker's
// wall time (local or remote).
type RunResult struct {
	Offset  int
	Metrics map[string]float64
	Cycles  uint64
	Elapsed time.Duration
}

// Coordinator shards a seed range into contiguous chunks and executes
// them across the configured workers, re-dispatching on failure and
// degrading to in-process execution when no worker is reachable. The
// zero value with no Workers is a purely local runner. A Coordinator is
// safe for concurrent Run calls — the campaign service runs many
// tenants' jobs through one shared instance so fleet telemetry, chunk
// accounting, and the local-fallback parallelism bound accumulate in
// one place; configuration fields must not be mutated once the first
// Run is in flight.
type Coordinator struct {
	// Workers are worker addresses (host:port). Empty means run
	// everything in-process.
	Workers []string
	// ChunkSize is the number of consecutive seeds per dispatch
	// (0 = 16). Smaller chunks re-balance faster after a failure;
	// larger ones amortize framing.
	ChunkSize int
	// ChunkTimeout bounds one chunk's total execution including
	// streaming (0 = 5m). A chunk that exceeds it is re-dispatched.
	ChunkTimeout time.Duration
	// ReadTimeout bounds the silence between frames from a worker
	// (0 = 10s). Workers heartbeat every second while executing, so a
	// tripped read deadline means the worker is gone, not slow.
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame send (0 = 10s). A worker that
	// stops reading trips it instead of wedging the dispatch forever.
	WriteTimeout time.Duration
	// DialTimeout bounds connection establishment (0 = 3s).
	DialTimeout time.Duration
	// Dial optionally replaces the TCP dialer — fault injection
	// (internal/faultx) and tests. Nil uses net.DialTimeout.
	Dial DialFunc
	// MaxWorkerFailures is the consecutive-failure budget before a
	// worker is abandoned for the rest of the job (0 = 3).
	MaxWorkerFailures int
	// BackoffBase/BackoffMax bound the jittered exponential reconnect
	// backoff (0 = 50ms / 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Parallelism bounds in-process execution when degrading to local
	// runs (0 = GOMAXPROCS).
	Parallelism int
	// Obs receives dispatch/retry/re-dispatch/health telemetry.
	Obs *obs.Observer

	// stMu guards the status/telemetry state below (status.go). Lazily
	// initialized so the zero-value Coordinator keeps working.
	stMu     sync.Mutex
	jobSt    *jobState
	workerSt map[string]*workerState

	// localSem bounds in-process execution across every concurrent job
	// (lazily sized from Parallelism), so campaigns degrading to local
	// runs share one CPU budget instead of multiplying it.
	localOnce sync.Once
	localSem  chan struct{}
}

func (c *Coordinator) chunkSize() int {
	if c.ChunkSize <= 0 {
		return 16
	}
	return c.ChunkSize
}

func (c *Coordinator) chunkTimeout() time.Duration {
	if c.ChunkTimeout <= 0 {
		return 5 * time.Minute
	}
	return c.ChunkTimeout
}

func (c *Coordinator) readTimeout() time.Duration {
	if c.ReadTimeout <= 0 {
		return 10 * time.Second
	}
	return c.ReadTimeout
}

func (c *Coordinator) writeTimeout() time.Duration {
	if c.WriteTimeout <= 0 {
		return 10 * time.Second
	}
	return c.WriteTimeout
}

func (c *Coordinator) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return 3 * time.Second
	}
	return c.DialTimeout
}

func (c *Coordinator) maxWorkerFailures() int {
	if c.MaxWorkerFailures <= 0 {
		return 3
	}
	return c.MaxWorkerFailures
}

// chunk is one contiguous slice of the seed range. A chunk is owned by
// exactly one place at any time — the queue, one worker goroutine, or
// the committed state — so re-dispatch never duplicates commits.
type chunk struct {
	index, start, count int
	attempts            int
}

// runState accumulates committed results. Chunks commit atomically and
// exactly once; duplicate completions (a slow worker racing its own
// re-dispatch) are discarded whole.
type runState struct {
	mu        sync.Mutex
	results   []RunResult
	chunkDone []bool
	remaining int
	err       error
	done      chan struct{}
	closed    bool
}

func newRunState(n, numChunks int) *runState {
	return &runState{
		results:   make([]RunResult, n),
		chunkDone: make([]bool, numChunks),
		remaining: numChunks,
		done:      make(chan struct{}),
	}
}

// commit installs a chunk's results; false means another dispatch beat
// this one and the results were discarded.
func (st *runState) commit(ch *chunk, runs []RunResult) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || st.chunkDone[ch.index] {
		return false
	}
	st.chunkDone[ch.index] = true
	for _, r := range runs {
		st.results[r.Offset] = r
	}
	st.remaining--
	if st.remaining == 0 {
		st.closed = true
		close(st.done)
	}
	return true
}

// fail aborts the job with a terminal error (deterministic execution
// failures re-dispatching cannot cure).
func (st *runState) fail(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.err = err
	st.closed = true
	close(st.done)
}

func (st *runState) finished() (bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.closed, st.err
}

// Run executes n runs with seeds baseSeed+0 … baseSeed+n−1 across the
// workers and returns the results ordered by seed offset — byte-for-byte
// the samples a local run would produce, independent of worker count,
// chunk size, or arrival order. Hooks (may be zero) observe runs as
// their chunks commit.
func (c *Coordinator) Run(job Job, baseSeed uint64, n int, h population.RunHooks) ([]RunResult, error) {
	return c.RunCtx(context.Background(), job, baseSeed, n, h)
}

// RunCtx is Run with cooperative cancellation: when ctx is cancelled the
// job fails with the context's error at the next chunk boundary —
// in-flight runs finish (a simulator run is not interruptible) but no
// new chunk is dispatched or launched. The campaign service's DELETE
// and drain paths ride on this.
func (c *Coordinator) RunCtx(ctx context.Context, job Job, baseSeed uint64, n int, h population.RunHooks) ([]RunResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: non-positive run count %d", n)
	}
	if job.Benchmark == "" {
		return nil, errors.New("dist: job has no benchmark")
	}
	if err := job.Config.Validate(); err != nil {
		return nil, fmt.Errorf("dist: job config: %w", err)
	}

	size := c.chunkSize()
	numChunks := (n + size - 1) / size
	queue := make(chan *chunk, numChunks)
	for i := 0; i < numChunks; i++ {
		start := i * size
		count := size
		if start+count > n {
			count = n - start
		}
		queue <- &chunk{index: i, start: start, count: count}
	}
	st := newRunState(n, numChunks)
	c.beginJob(job, n, numChunks)

	span := c.Obs.T().StartSpan("dist.job", obs.Str("benchmark", job.Benchmark),
		obs.U64("base_seed", baseSeed), obs.Int("runs", n),
		obs.Int("chunks", numChunks), obs.Int("workers", len(c.Workers)))

	// Cancellation fails the run state, which every dispatch and local
	// loop already observes at chunk boundaries.
	if ctx.Done() != nil {
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-ctx.Done():
				st.fail(context.Cause(ctx))
			case <-stopWatch:
			case <-st.done:
			}
		}()
	}

	var wg sync.WaitGroup
	for _, addr := range c.Workers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			c.workerLoop(addr, job, baseSeed, st, queue, h)
		}(addr)
	}
	allDead := make(chan struct{})
	go func() {
		wg.Wait()
		close(allDead)
	}()

	select {
	case <-st.done:
	case <-allDead:
		// Every worker is gone (or none was configured): degrade to
		// in-process execution of whatever is still queued.
		if done, _ := st.finished(); !done {
			if len(c.Workers) > 0 {
				c.Obs.Logf("dist: no reachable workers, running remaining chunks in-process")
				c.Obs.T().Event("dist.fallback_local", obs.Int("workers", len(c.Workers)))
			}
			c.runLocal(job, baseSeed, st, queue, h)
		}
	}
	<-allDead // worker goroutines all observe st.done before returning

	_, err := st.finished()
	c.endJob(err)
	if err != nil {
		span.End(obs.Str("error", err.Error()))
		return nil, err
	}
	span.End(obs.Int("completed", n))
	return st.results, nil
}

// workerLoop owns one worker address for the duration of a job: it pulls
// chunks, dispatches them, and applies the failure policy (reconnect
// with jittered backoff, re-dispatch on error, abandon the worker after
// too many consecutive failures).
func (c *Coordinator) workerLoop(addr string, job Job, baseSeed uint64, st *runState, queue chan *chunk, h population.RunHooks) {
	hsh := fnv.New64a()
	hsh.Write([]byte(addr))
	bo := newBackoff(c.BackoffBase, c.BackoffMax, hsh.Sum64())
	var cn *conn
	defer func() {
		if cn != nil {
			cn.close()
		}
	}()
	failures := 0
	requeue := func(ch *chunk) {
		ch.attempts++
		c.Obs.M().Counter(obs.MetricDistRedispatches).Inc()
		c.jobStat(func(j *jobState) { j.redispatches++ })
		queue <- ch // buffered to the chunk count, never blocks
	}
	abandon := func(ch *chunk, why error) {
		if ch != nil {
			requeue(ch)
		}
		c.noteWorkerDead(addr)
		c.Obs.M().Counter(obs.MetricDistWorkersDead).Inc()
		c.Obs.T().Event("dist.worker_dead", obs.Str("worker", addr), obs.Str("error", why.Error()))
		c.Obs.Logf("dist: abandoning worker %s: %v", addr, why)
	}
	for {
		var ch *chunk
		select {
		case <-st.done:
			return
		case ch = <-queue:
		}
		// Ensure a healthy connection, backing off between attempts.
		for cn == nil {
			var err error
			cn, err = c.dial(addr)
			if err == nil {
				bo.reset()
				break
			}
			c.Obs.M().Counter(obs.MetricDistRetries).Inc()
			failures++
			if failures >= c.maxWorkerFailures() {
				abandon(ch, err)
				return
			}
			select {
			case <-st.done:
				requeue(ch)
				return
			case <-time.After(bo.next()):
			}
		}
		err := c.dispatch(cn, job, baseSeed, ch, st, h)
		if err == nil {
			failures = 0
			continue
		}
		if errors.Is(err, errJobDone) {
			return
		}
		var execErr *chunkExecError
		if errors.As(err, &execErr) {
			// Deterministic failure: the same seed fails everywhere, so
			// re-dispatching cannot help. Abort the whole job, matching
			// local collection semantics.
			st.fail(fmt.Errorf("dist: worker %s: chunk [%d,%d): %w", addr, ch.start, ch.start+ch.count, execErr))
			return
		}
		// Connection-level failure (death, timeout, malformed stream):
		// the chunk goes back to the pool and the connection is torn
		// down; another worker — or this one after reconnecting — picks
		// it up.
		cn.close()
		cn = nil
		failures++
		requeue(ch)
		if failures >= c.maxWorkerFailures() {
			abandon(nil, err)
			return
		}
		select {
		case <-st.done:
			return
		case <-time.After(bo.next()):
		}
	}
}

// chunkExecError marks a worker-reported execution failure, as opposed
// to a transport failure.
type chunkExecError struct{ msg string }

func (e *chunkExecError) Error() string { return e.msg }

// errJobDone aborts a dispatch whose job finished (or failed) elsewhere.
var errJobDone = errors.New("dist: job finished elsewhere")

// DialFunc establishes one transport connection; it matches
// net.DialTimeout and is the seam fault injectors and tests use.
type DialFunc func(network, address string, timeout time.Duration) (net.Conn, error)

func (c *Coordinator) dial(addr string) (*conn, error) {
	dial := c.Dial
	if dial == nil {
		dial = net.DialTimeout
	}
	nc, err := dial("tcp", addr, c.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	cn := newConn(nc, c.writeTimeout())
	// Label this connection with the configured worker address, not the
	// transport's RemoteAddr — it is the stable identity spans, the
	// per-worker metric labels, and the /statusz table key all share.
	cn.addr = addr
	if err := cn.handshake(c.dialTimeout()); err != nil {
		cn.close()
		return nil, err
	}
	return cn, nil
}

// dispatch sends one chunk and consumes its result stream. Errors are
// transport-level unless wrapped in chunkExecError.
func (c *Coordinator) dispatch(cn *conn, job Job, baseSeed uint64, ch *chunk, st *runState, h population.RunHooks) error {
	span := c.Obs.T().StartSpan("dist.chunk", obs.Str("worker", cn.addr),
		obs.Int("start", ch.start), obs.Int("count", ch.count), obs.Int("attempt", ch.attempts))
	c.Obs.M().Counter(obs.MetricDistChunksDispatched).Inc()
	c.jobStat(func(j *jobState) { j.chunksInFlight++ })
	defer c.jobStat(func(j *jobState) { j.chunksInFlight-- })
	id := uint64(ch.index) + 1
	cfg := job.Config
	err := cn.send(frame{
		Type: frameRunChunk, ID: id,
		Benchmark: job.Benchmark, Config: &cfg, Scale: job.Scale,
		BaseSeed: baseSeed, Start: ch.start, Count: ch.count,
	})
	if err != nil {
		span.End(obs.Str("error", err.Error()))
		return err
	}
	deadline := time.Now().Add(c.chunkTimeout())
	runs := make([]RunResult, 0, ch.count)
	seen := make(map[int]bool, ch.count)
	for {
		// A slow dispatch racing its own re-dispatch stops as soon as the
		// job finishes elsewhere, instead of streaming to completion.
		select {
		case <-st.done:
			span.End(obs.Str("error", errJobDone.Error()))
			return errJobDone
		default:
		}
		readDL := time.Now().Add(c.readTimeout())
		if readDL.After(deadline) {
			readDL = deadline
		}
		f, err := cn.recv(readDL)
		if err != nil {
			span.End(obs.Str("error", err.Error()))
			return fmt.Errorf("dist: chunk stream from %s: %w", cn.addr, err)
		}
		// Telemetry snapshots describe the worker process, not a chunk, so
		// fold them in even when they arrive on stale frames.
		if f.Telemetry != nil {
			c.noteWorkerTelemetry(cn.addr, f.Telemetry)
		}
		if f.ID != id {
			continue // stale frame from an abandoned exchange
		}
		switch f.Type {
		case frameHeartbeat:
			continue
		case frameResult:
			off := f.Offset
			if off < ch.start || off >= ch.start+ch.count || seen[off] {
				span.End(obs.Str("error", "bad offset"))
				return fmt.Errorf("dist: worker %s sent offset %d outside chunk [%d,%d)", cn.addr, off, ch.start, ch.start+ch.count)
			}
			seen[off] = true
			runs = append(runs, RunResult{Offset: off, Metrics: f.Metrics,
				Cycles: f.Cycles, Elapsed: time.Duration(f.ElapsedUS) * time.Microsecond})
		case frameChunkDone:
			if len(runs) != ch.count {
				span.End(obs.Str("error", "short chunk"))
				return fmt.Errorf("dist: worker %s finished chunk with %d/%d results", cn.addr, len(runs), ch.count)
			}
			c.Obs.M().Counter(obs.MetricDistChunksCompleted).Inc()
			c.noteWorkerChunk(cn.addr)
			c.jobStat(func(j *jobState) { j.chunksCompleted++ })
			if st.commit(ch, runs) {
				fireHooks(job, baseSeed, runs, h)
			}
			span.End(obs.Int("results", len(runs)))
			return nil
		case frameError:
			span.End(obs.Str("error", f.Error))
			return &chunkExecError{msg: f.Error}
		default:
			span.End(obs.Str("error", "unexpected frame "+f.Type))
			return fmt.Errorf("dist: unexpected %s frame from %s", f.Type, cn.addr)
		}
	}
}

// localSemaphore returns the process-wide in-process execution bound,
// shared by every concurrent job so N campaigns degrading locally still
// run at most Parallelism simulations at once.
func (c *Coordinator) localSemaphore() chan struct{} {
	c.localOnce.Do(func() {
		par := c.Parallelism
		if par <= 0 {
			par = runtime.GOMAXPROCS(0)
		}
		c.localSem = make(chan struct{}, par)
	})
	return c.localSem
}

// runLocal executes every still-queued chunk in-process — the
// degradation path, and the whole path when no workers are configured.
// It uses the same chunk/commit machinery so determinism is shared.
func (c *Coordinator) runLocal(job Job, baseSeed uint64, st *runState, queue chan *chunk, h population.RunHooks) {
	sem := c.localSemaphore()
	var wg sync.WaitGroup
	for {
		var ch *chunk
		select {
		case ch = <-queue:
		default:
			wg.Wait()
			return
		}
		if done, _ := st.finished(); done {
			wg.Wait()
			return
		}
		c.Obs.M().Counter(obs.MetricDistLocalChunks).Inc()
		c.jobStat(func(j *jobState) { j.localChunks++ })
		runs := make([]RunResult, ch.count)
		var cwg sync.WaitGroup
		failed := false
		var mu sync.Mutex
		for i := 0; i < ch.count; i++ {
			cwg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer cwg.Done()
				defer func() { <-sem }()
				off := ch.start + i
				seed := baseSeed + uint64(off)
				if h.OnRunStart != nil {
					h.OnRunStart(off, seed)
				}
				start := time.Now()
				res, err := sim.Run(job.Benchmark, job.Config, job.Scale, seed)
				elapsed := time.Since(start)
				if h.OnRunDone != nil {
					h.OnRunDone(off, seed, res, err, elapsed)
				}
				if err != nil {
					mu.Lock()
					failed = true
					mu.Unlock()
					st.fail(fmt.Errorf("dist: local run with seed %d: %w", seed, err))
					return
				}
				runs[i] = RunResult{Offset: off, Metrics: res.Metrics, Cycles: res.Cycles, Elapsed: elapsed}
			}(i)
		}
		wg.Add(1)
		go func(ch *chunk) {
			defer wg.Done()
			cwg.Wait()
			mu.Lock()
			bad := failed
			mu.Unlock()
			if !bad && st.commit(ch, runs) {
				c.jobStat(func(j *jobState) { j.chunksCompleted++ })
			}
		}(ch)
	}
}

// fireHooks reports a committed remote chunk's runs to the hooks in
// offset order. Hooks observe only — values and ordering of the returned
// samples never depend on them.
func fireHooks(job Job, baseSeed uint64, runs []RunResult, h population.RunHooks) {
	if h.OnRunStart == nil && h.OnRunDone == nil {
		return
	}
	for _, r := range runs {
		seed := baseSeed + uint64(r.Offset)
		if h.OnRunStart != nil {
			h.OnRunStart(r.Offset, seed)
		}
		if h.OnRunDone != nil {
			res := &sim.Result{Benchmark: job.Benchmark, Cycles: r.Cycles, Metrics: r.Metrics}
			h.OnRunDone(r.Offset, seed, res, nil, r.Elapsed)
		}
	}
}

// SplitAddrs parses a comma-separated worker address list (the CLIs'
// -workers flag), dropping empty entries so trailing commas are
// harmless and deduplicating repeats so one listed-twice worker doesn't
// get two worker loops — and with them a doubled failure budget and
// doubled dispatch share. nil means "no workers" — a purely local
// coordinator.
func SplitAddrs(s string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// Ping checks one worker's liveness with a hello/ping round trip.
func (c *Coordinator) Ping(addr string) error {
	cn, err := c.dial(addr)
	if err != nil {
		return err
	}
	defer cn.close()
	if err := cn.send(frame{Type: framePing}); err != nil {
		return err
	}
	f, err := cn.recv(time.Now().Add(c.readTimeout()))
	if err != nil {
		return err
	}
	if f.Type != framePong {
		return fmt.Errorf("dist: worker %s answered ping with %s", addr, f.Type)
	}
	return nil
}
