package dist

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// dialRaw opens a raw protocol connection to a worker, without the
// coordinator machinery, so tests can speak the wire format directly.
func dialRaw(t *testing.T, addr string) *conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(nc)
	t.Cleanup(func() { c.close() })
	return c
}

func recvT(t *testing.T, c *conn) frame {
	t.Helper()
	f, err := c.recv(time.Now().Add(10 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWorkerHelloAndPing(t *testing.T) {
	w := startWorker(t)
	c := dialRaw(t, w.Addr())
	if err := c.handshake(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.send(frame{Type: framePing}); err != nil {
		t.Fatal(err)
	}
	if f := recvT(t, c); f.Type != framePong {
		t.Errorf("ping answered with %q", f.Type)
	}
}

func TestWorkerRejectsVersionSkew(t *testing.T) {
	w := startWorker(t)
	c := dialRaw(t, w.Addr())
	if err := c.send(frame{Type: frameHello, Version: ProtocolVersion + 7}); err != nil {
		t.Fatal(err)
	}
	f := recvT(t, c)
	if f.Type != frameError || !strings.Contains(f.Error, "version") {
		t.Errorf("version skew answered with %+v", f)
	}
}

func TestWorkerStreamsChunk(t *testing.T) {
	w := startWorker(t)
	c := dialRaw(t, w.Addr())
	if err := c.handshake(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	const id, start, count = 5, 2, 4
	err := c.send(frame{Type: frameRunChunk, ID: id, Benchmark: testBench,
		Config: &cfg, Scale: testScale, BaseSeed: testSeed, Start: start, Count: count})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]map[string]float64{}
	for {
		f := recvT(t, c)
		switch f.Type {
		case frameHeartbeat:
			continue
		case frameResult:
			if f.ID != id {
				t.Fatalf("result for chunk %d, want %d", f.ID, id)
			}
			got[f.Offset] = f.Metrics
		case frameChunkDone:
			if len(got) != count || f.Count != count {
				t.Fatalf("chunk_done after %d results (reported %d), want %d", len(got), f.Count, count)
			}
			for off := start; off < start+count; off++ {
				res, err := sim.Run(testBench, cfg, testScale, testSeed+uint64(off))
				if err != nil {
					t.Fatal(err)
				}
				if got[off] == nil || got[off][sim.MetricRuntime] != res.Metrics[sim.MetricRuntime] {
					t.Errorf("offset %d: streamed %v, local %g", off, got[off], res.Metrics[sim.MetricRuntime])
				}
			}
			return
		case frameError:
			t.Fatalf("worker reported: %s", f.Error)
		default:
			t.Fatalf("unexpected %q frame", f.Type)
		}
	}
}

func TestWorkerReportsRunErrorInBand(t *testing.T) {
	w := startWorker(t)
	c := dialRaw(t, w.Addr())
	if err := c.handshake(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	if err := c.send(frame{Type: frameRunChunk, ID: 1, Benchmark: "nope",
		Config: &cfg, Scale: testScale, BaseSeed: testSeed, Count: 2}); err != nil {
		t.Fatal(err)
	}
	for {
		f := recvT(t, c)
		if f.Type == frameHeartbeat {
			continue
		}
		if f.Type != frameError || !strings.Contains(f.Error, "nope") {
			t.Fatalf("bad benchmark answered with %+v", f)
		}
		break
	}
	// The failure was in-band: the connection must still serve.
	if err := c.send(frame{Type: framePing}); err != nil {
		t.Fatal(err)
	}
	if f := recvT(t, c); f.Type != framePong {
		t.Errorf("connection dead after in-band error: got %q", f.Type)
	}
}

func TestWorkerRejectsMalformedChunk(t *testing.T) {
	w := startWorker(t)
	c := dialRaw(t, w.Addr())
	if err := c.handshake(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// No config, no benchmark, zero count.
	if err := c.send(frame{Type: frameRunChunk, ID: 3}); err != nil {
		t.Fatal(err)
	}
	f := recvT(t, c)
	if f.Type != frameError || f.ID != 3 {
		t.Errorf("malformed chunk answered with %+v", f)
	}
}

func TestWorkerClosesOnUnknownFrame(t *testing.T) {
	w := startWorker(t)
	c := dialRaw(t, w.Addr())
	if err := c.send(frame{Type: "bogus"}); err != nil {
		t.Fatal(err)
	}
	f := recvT(t, c)
	if f.Type != frameError || !strings.Contains(f.Error, "bogus") {
		t.Errorf("unknown frame answered with %+v", f)
	}
	if _, err := c.recv(time.Now().Add(2 * time.Second)); err == nil {
		t.Error("worker should close the connection after an unknown frame")
	}
}

func TestWorkerServeWithoutListen(t *testing.T) {
	var w Worker
	if err := w.Serve(); err == nil {
		t.Error("Serve before Listen should error")
	}
}
