package dist

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/sim"
)

// dialRaw opens a raw protocol connection to a worker, without the
// coordinator machinery, so tests can speak the wire format directly.
func dialRaw(t *testing.T, addr string) *conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(nc, 0)
	t.Cleanup(func() { c.close() })
	return c
}

func recvT(t *testing.T, c *conn) frame {
	t.Helper()
	f, err := c.recv(time.Now().Add(10 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWorkerHelloAndPing(t *testing.T) {
	w := startWorker(t)
	c := dialRaw(t, w.Addr())
	if err := c.handshake(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.send(frame{Type: framePing}); err != nil {
		t.Fatal(err)
	}
	if f := recvT(t, c); f.Type != framePong {
		t.Errorf("ping answered with %q", f.Type)
	}
}

func TestWorkerRejectsVersionSkew(t *testing.T) {
	w := startWorker(t)
	c := dialRaw(t, w.Addr())
	if err := c.send(frame{Type: frameHello, Version: ProtocolVersion + 7}); err != nil {
		t.Fatal(err)
	}
	f := recvT(t, c)
	if f.Type != frameError || !strings.Contains(f.Error, "version") {
		t.Errorf("version skew answered with %+v", f)
	}
}

func TestWorkerStreamsChunk(t *testing.T) {
	w := startWorker(t)
	c := dialRaw(t, w.Addr())
	if err := c.handshake(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	const id, start, count = 5, 2, 4
	err := c.send(frame{Type: frameRunChunk, ID: id, Benchmark: testBench,
		Config: &cfg, Scale: testScale, BaseSeed: testSeed, Start: start, Count: count})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]map[string]float64{}
	for {
		f := recvT(t, c)
		switch f.Type {
		case frameHeartbeat:
			continue
		case frameResult:
			if f.ID != id {
				t.Fatalf("result for chunk %d, want %d", f.ID, id)
			}
			got[f.Offset] = f.Metrics
		case frameResultBatch:
			// The handshake negotiated v3, so results arrive batched.
			if f.ID != id {
				t.Fatalf("result_batch for chunk %d, want %d", f.ID, id)
			}
			if f.Batch == nil {
				t.Fatal("result_batch frame without payload")
			}
			if err := f.Batch.validate(); err != nil {
				t.Fatal(err)
			}
			for i, off := range f.Batch.Offsets {
				m := make(map[string]float64, len(f.Batch.Metrics))
				for k, vs := range f.Batch.Metrics {
					m[k] = vs[i]
				}
				got[off] = m
			}
		case frameChunkDone:
			if len(got) != count || f.Count != count {
				t.Fatalf("chunk_done after %d results (reported %d), want %d", len(got), f.Count, count)
			}
			for off := start; off < start+count; off++ {
				res, err := sim.Run(testBench, cfg, testScale, testSeed+uint64(off))
				if err != nil {
					t.Fatal(err)
				}
				if got[off] == nil || got[off][sim.MetricRuntime] != res.Metrics[sim.MetricRuntime] {
					t.Errorf("offset %d: streamed %v, local %g", off, got[off], res.Metrics[sim.MetricRuntime])
				}
			}
			return
		case frameError:
			t.Fatalf("worker reported: %s", f.Error)
		default:
			t.Fatalf("unexpected %q frame", f.Type)
		}
	}
}

func TestWorkerReportsRunErrorInBand(t *testing.T) {
	w := startWorker(t)
	c := dialRaw(t, w.Addr())
	if err := c.handshake(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	if err := c.send(frame{Type: frameRunChunk, ID: 1, Benchmark: "nope",
		Config: &cfg, Scale: testScale, BaseSeed: testSeed, Count: 2}); err != nil {
		t.Fatal(err)
	}
	for {
		f := recvT(t, c)
		if f.Type == frameHeartbeat {
			continue
		}
		if f.Type != frameError || !strings.Contains(f.Error, "nope") {
			t.Fatalf("bad benchmark answered with %+v", f)
		}
		break
	}
	// The failure was in-band: the connection must still serve.
	if err := c.send(frame{Type: framePing}); err != nil {
		t.Fatal(err)
	}
	if f := recvT(t, c); f.Type != framePong {
		t.Errorf("connection dead after in-band error: got %q", f.Type)
	}
}

func TestWorkerRejectsMalformedChunk(t *testing.T) {
	w := startWorker(t)
	c := dialRaw(t, w.Addr())
	if err := c.handshake(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// No config, no benchmark, zero count.
	if err := c.send(frame{Type: frameRunChunk, ID: 3}); err != nil {
		t.Fatal(err)
	}
	f := recvT(t, c)
	if f.Type != frameError || f.ID != 3 {
		t.Errorf("malformed chunk answered with %+v", f)
	}
}

func TestWorkerClosesOnUnknownFrame(t *testing.T) {
	w := startWorker(t)
	c := dialRaw(t, w.Addr())
	if err := c.send(frame{Type: "bogus"}); err != nil {
		t.Fatal(err)
	}
	f := recvT(t, c)
	if f.Type != frameError || !strings.Contains(f.Error, "bogus") {
		t.Errorf("unknown frame answered with %+v", f)
	}
	if _, err := c.recv(time.Now().Add(2 * time.Second)); err == nil {
		t.Error("worker should close the connection after an unknown frame")
	}
}

func TestWorkerServeWithoutListen(t *testing.T) {
	var w Worker
	if err := w.Serve(); err == nil {
		t.Error("Serve before Listen should error")
	}
}

// pipeListener is an in-memory net.Listener over net.Pipe, wired into
// the worker through the injectable ListenFunc hook. net.Pipe writes
// are unbuffered — they block until the peer reads — which models a
// zero TCP window (a peer that stopped reading) exactly.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// dial hands the worker one end of a fresh pipe and returns the other.
func (l *pipeListener) dial(t *testing.T) net.Conn {
	t.Helper()
	client, server := net.Pipe()
	select {
	case l.conns <- server:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never accepted the pipe connection")
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// startPipeWorker boots a worker serving over an in-memory listener.
func startPipeWorker(t *testing.T, w *Worker) *pipeListener {
	t.Helper()
	pl := newPipeListener()
	w.ListenFunc = func(network, address string) (net.Listener, error) { return pl, nil }
	if err := w.Listen("pipe"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Serve() }()
	t.Cleanup(func() {
		w.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("worker did not stop")
		}
	})
	return pl
}

// connCount reports the worker's live connection-map size.
func connCount(w *Worker) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.conns)
}

// waitConnsDrained polls until the worker's connection map is empty.
func waitConnsDrained(t *testing.T, w *Worker, within time.Duration, what string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for connCount(w) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d connection(s) still tracked after %v", what, connCount(w), within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerStalledReaderDoesNotWedgeChunk is the worker-level
// regression test for the stalled-reader wedge: a coordinator that
// dispatches a chunk and then stops reading used to block the heartbeat
// goroutine (and with it the whole runChunk) forever inside the write
// lock. With write deadlines the chunk must abort and the connection be
// torn down promptly.
func TestWorkerStalledReaderDoesNotWedgeChunk(t *testing.T) {
	w := &Worker{
		Parallelism:    2,
		HeartbeatEvery: 20 * time.Millisecond,
		WriteTimeout:   150 * time.Millisecond,
	}
	pl := startPipeWorker(t, w)
	client := pl.dial(t)
	c := newConn(client, 0)
	if err := c.handshake(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	if err := c.send(frame{Type: frameRunChunk, ID: 1, Benchmark: testBench,
		Config: &cfg, Scale: testScale, BaseSeed: testSeed, Count: 4}); err != nil {
		t.Fatal(err)
	}
	// Stop reading entirely: every worker write now blocks until its
	// write deadline trips. The worker must abort the chunk and drop
	// the connection instead of wedging forever.
	waitConnsDrained(t, w, 10*time.Second, "stalled-reader chunk")

	// The semaphore must be fully released: a fresh chunk on a fresh
	// connection has to complete.
	c2 := newConn(pl.dial(t), 0)
	if err := c2.handshake(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c2.send(frame{Type: frameRunChunk, ID: 2, Benchmark: testBench,
		Config: &cfg, Scale: testScale, BaseSeed: testSeed, Count: 2}); err != nil {
		t.Fatal(err)
	}
	for {
		f, err := c2.recv(time.Now().Add(10 * time.Second))
		if err != nil {
			t.Fatalf("fresh chunk after a stalled one: %v", err)
		}
		if f.Type == frameChunkDone {
			break
		}
		if f.Type == frameError {
			t.Fatalf("fresh chunk failed: %s", f.Error)
		}
	}
}

// TestWorkerIdleConnReaped is the regression test for the half-open
// connection leak: a coordinator that handshakes and then vanishes
// without closing used to hold the serve goroutine and conns-map entry
// for the life of the process (recv had no deadline). The idle read
// deadline must reap it.
func TestWorkerIdleConnReaped(t *testing.T) {
	w := &Worker{Parallelism: 1, IdleTimeout: 100 * time.Millisecond}
	pl := startPipeWorker(t, w)
	client := pl.dial(t)
	c := newConn(client, 0)
	if err := c.handshake(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n := connCount(w); n != 1 {
		t.Fatalf("worker tracks %d conns after handshake, want 1", n)
	}
	// Go half-open: never send another frame, never close.
	waitConnsDrained(t, w, 5*time.Second, "half-open connection")
}

// TestDoomedChunkStopsLaunchingRuns is the regression test for the
// CPU-burn bug: a chunk whose coordinator disconnected used to keep
// launching and executing every remaining seed, holding semaphore slots
// hostage. Once doomed, launching must stop.
func TestDoomedChunkStopsLaunchingRuns(t *testing.T) {
	const count = 400
	reg := obs.NewRegistry()
	w := &Worker{
		Parallelism:    1,
		HeartbeatEvery: 10 * time.Millisecond,
		WriteTimeout:   100 * time.Millisecond,
		Obs:            &obs.Observer{Metrics: reg},
	}
	ln := startWorkerWith(t, w)
	c := dialRaw(t, ln)
	if err := c.handshake(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	if err := c.send(frame{Type: frameRunChunk, ID: 1, Benchmark: testBench,
		Config: &cfg, Scale: testScale, BaseSeed: testSeed, Count: count}); err != nil {
		t.Fatal(err)
	}
	// Read the first frame (heartbeat or result) so the chunk is known
	// to be executing, then kill the connection.
	if _, err := c.recv(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	c.close()

	waitConnsDrained(t, w, 10*time.Second, "disconnected chunk")
	// The semaphore must be free promptly: acquire every slot.
	for i := 0; i < cap(w.sem); i++ {
		select {
		case w.sem <- struct{}{}:
		case <-time.After(5 * time.Second):
			t.Fatal("semaphore slot still held after the chunk aborted")
		}
	}
	for i := 0; i < cap(w.sem); i++ {
		<-w.sem
	}
	if launched := reg.Counter(obs.MetricDistWorkerRuns).Value(); launched >= count {
		t.Fatalf("worker executed all %d runs of a doomed chunk (launched %d)", count, launched)
	} else {
		t.Logf("doomed chunk launched %d of %d runs before stopping", launched, count)
	}
}

// startWorkerWith boots a pre-configured worker on a loopback port.
func startWorkerWith(t *testing.T, w *Worker) string {
	t.Helper()
	if err := w.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Serve() }()
	t.Cleanup(func() {
		w.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("worker did not stop")
		}
	})
	return w.Addr()
}

// TestWorkerShutdownIdle: with no chunks in flight, Shutdown returns
// promptly and Serve unwinds cleanly.
func TestWorkerShutdownIdle(t *testing.T) {
	w := &Worker{}
	if err := w.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Serve() }()
	if err := w.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve after shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after shutdown")
	}
}

// TestWorkerShutdownMidJob drains the worker while a coordinator's job
// is in flight: in-flight chunks finish, refused chunks re-dispatch (here
// to local fallback), and the job's population stays byte-identical to a
// local run — graceful worker restarts never corrupt campaigns.
func TestWorkerShutdownMidJob(t *testing.T) {
	w := &Worker{Parallelism: 1}
	addr := startWorkerWith(t, w)
	c := fastCoord(addr)

	const runs = 48
	popCh := make(chan *population.Population, 1)
	errCh := make(chan error, 1)
	go func() {
		p, err := c.GeneratePopulation(testBench, sim.DefaultConfig(), testScale, runs, testSeed, population.RunHooks{})
		popCh <- p
		errCh <- err
	}()
	// Wait until the worker has actually served work, then drain it.
	deadline := time.Now().Add(10 * time.Second)
	for w.Status().ChunksServed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never received a chunk")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Shutdown(30 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := w.Status().InFlight; got != 0 {
		t.Fatalf("%d chunks still in flight after drain", got)
	}
	pop := <-popCh
	if err := <-errCh; err != nil {
		t.Fatalf("job failed across worker drain: %v", err)
	}
	checkPopEqual(t, pop, localPop(t, runs))
}
