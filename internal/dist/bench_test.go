package dist

import (
	"encoding/json"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/population"
	"repro/internal/sim"
)

// benchRunFrames builds n per-run result frames with a realistic metric
// payload (one actual simulation's metric set, replicated).
func benchRunFrames(b *testing.B, n int) []frame {
	b.Helper()
	res, err := sim.Run(testBench, sim.DefaultConfig(), testScale, testSeed)
	if err != nil {
		b.Fatal(err)
	}
	frames := make([]frame, n)
	for i := range frames {
		m := make(map[string]float64, len(res.Metrics))
		for k, v := range res.Metrics {
			m[k] = v
		}
		frames[i] = frame{Type: frameResult, ID: 1, Offset: i,
			Metrics: m, Cycles: res.Cycles, ElapsedUS: 1234}
	}
	return frames
}

// BenchmarkDistWireEncode isolates the wire cost of shipping one chunk's
// results: JSON encode + decode of 256 runs, the way a v2 worker sends
// them (one result frame per run, metric names re-encoded every run)
// versus the v3 columnar result_batch framing (metric names keyed once
// per batch, default 64-run flush). No sockets, no simulation — just the
// serialization the hot path pays per run.
func BenchmarkDistWireEncode(b *testing.B) {
	const runs = 256
	perRun := benchRunFrames(b, runs)

	b.Run("proto=v2", func(b *testing.B) {
		b.ReportAllocs()
		var bytesTotal int64
		for b.Loop() {
			for i := range perRun {
				data, err := json.Marshal(perRun[i])
				if err != nil {
					b.Fatal(err)
				}
				bytesTotal += int64(len(data)) + 1 // newline
				var g frame
				if err := json.Unmarshal(data, &g); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(1, "frames/run")
		b.ReportMetric(float64(bytesTotal)/float64(b.N*runs), "wireB/run")
	})

	b.Run("proto=v3", func(b *testing.B) {
		b.ReportAllocs()
		// Batch exactly as a v3 worker would: flush every batchRuns.
		w := &Worker{}
		var batches []frame
		rb := &ResultBatch{}
		for _, f := range perRun {
			rb.add(f.Offset, f.Metrics, f.Cycles, f.ElapsedUS)
			if rb.len() >= w.batchRuns() {
				batches = append(batches, frame{Type: frameResultBatch, ID: 1, Batch: rb})
				rb = &ResultBatch{}
			}
		}
		if rb.len() > 0 {
			batches = append(batches, frame{Type: frameResultBatch, ID: 1, Batch: rb})
		}
		var bytesTotal int64
		for b.Loop() {
			for i := range batches {
				data, err := json.Marshal(batches[i])
				if err != nil {
					b.Fatal(err)
				}
				bytesTotal += int64(len(data)) + 1
				var g frame
				if err := json.Unmarshal(data, &g); err != nil {
					b.Fatal(err)
				}
				if err := g.Batch.validate(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(batches))/runs, "frames/run")
		b.ReportMetric(float64(bytesTotal)/float64(b.N*runs), "wireB/run")
	})
}

// lineCountConn counts newline-delimited frames read from the peer — a
// zero-parse tap on everything the coordinator receives (results or
// batches, heartbeats, handshakes, chunk_done).
type lineCountConn struct {
	net.Conn
	lines *atomic.Int64
}

func (c lineCountConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	for _, ch := range p[:n] {
		if ch == '\n' {
			c.lines.Add(1)
		}
	}
	return n, err
}

// BenchmarkDistCampaignThroughput runs a real 2-worker loopback campaign
// per iteration and reports coordinator-side inbound frames per run and
// end-to-end ns per run. The v2 arm caps the workers at protocol v2
// (per-run result frames, fixed-size chunks); the v3 arm negotiates
// batching and adaptive chunk sizing.
func BenchmarkDistCampaignThroughput(b *testing.B) {
	const runs = 96
	for _, arm := range []struct {
		name        string
		maxVersion  int
		chunkTarget time.Duration
	}{
		{"proto=v2", 2, 0},
		{"proto=v3", 0, 250 * time.Millisecond},
	} {
		b.Run(fmt.Sprintf("proto=%s", arm.name[len("proto="):]), func(b *testing.B) {
			addrs := make([]string, 2)
			for i := range addrs {
				w := &Worker{
					Parallelism:    2,
					HeartbeatEvery: 200 * time.Millisecond,
					WriteTimeout:   2 * time.Second,
					IdleTimeout:    time.Minute,
					maxVersion:     arm.maxVersion,
				}
				if err := w.Listen("127.0.0.1:0"); err != nil {
					b.Fatal(err)
				}
				go w.Serve()
				b.Cleanup(func() { w.Close() })
				addrs[i] = w.Addr()
			}
			var lines atomic.Int64
			c := &Coordinator{
				Workers:      addrs,
				ChunkSize:    8,
				ChunkTarget:  arm.chunkTarget,
				ChunkTimeout: 30 * time.Second,
				ReadTimeout:  5 * time.Second,
				DialTimeout:  2 * time.Second,
				Dial: func(network, addr string, timeout time.Duration) (net.Conn, error) {
					cn, err := net.DialTimeout(network, addr, timeout)
					if err != nil {
						return nil, err
					}
					return lineCountConn{cn, &lines}, nil
				},
			}
			for b.Loop() {
				if _, err := c.GeneratePopulation(testBench, sim.DefaultConfig(), testScale,
					runs, testSeed, population.RunHooks{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(lines.Load())/float64(b.N*runs), "frames/run")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*runs), "ns/run")
		})
	}
}
