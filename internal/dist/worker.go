package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Worker serves seed chunks to coordinators: it listens on a TCP
// address, executes the requested workload+sim runs with bounded local
// parallelism, and streams per-run results back as they complete
// (offsets identify runs, so arrival order is free to be whatever the
// scheduler produces). One worker serves any number of coordinator
// connections concurrently.
type Worker struct {
	// Parallelism bounds concurrent simulations across all connections
	// (0 = GOMAXPROCS).
	Parallelism int
	// HeartbeatEvery is the interval between liveness frames while a
	// chunk executes (0 = 1s). Heartbeats keep the coordinator's read
	// deadline from tripping on genuinely slow runs.
	HeartbeatEvery time.Duration
	// WriteTimeout bounds each frame send (0 = 15s). A coordinator that
	// stops reading trips it instead of wedging the sender forever.
	WriteTimeout time.Duration
	// IdleTimeout bounds the silence between frames on an idle
	// connection (0 = 5m, generous: pooled coordinator connections sit
	// idle between chunks). A half-open coordinator connection trips it
	// instead of leaking the serve goroutine for the process lifetime.
	IdleTimeout time.Duration
	// ListenFunc optionally replaces the TCP listener — fault injection
	// (internal/faultx) and in-memory test transports. Nil uses a TCP
	// listener with keepalive enabled.
	ListenFunc func(network, address string) (net.Listener, error)
	// BatchRuns caps how many completed runs accumulate in one
	// result_batch frame before a flush (0 = 64). Only v3+ connections
	// batch; older peers get one result frame per run.
	BatchRuns int
	// BatchFlush bounds how long a completed run may sit in an unflushed
	// batch (0 = 25ms), so a slow trickle of results still reaches the
	// coordinator — and its progress hooks — promptly.
	BatchFlush time.Duration
	// Obs receives spans and counters for served chunks; nil disables.
	Obs *obs.Observer

	// maxVersion, when positive, caps the protocol version this worker
	// negotiates — a test seam for exercising mixed-version fleets
	// without building old binaries.
	maxVersion int

	ln       net.Listener
	sem      chan struct{}
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool

	// activeChunks counts chunks currently streaming; Shutdown waits for
	// it to reach zero before tearing connections down.
	activeChunks atomic.Int64

	// Lifetime run accounting, the source of the wire telemetry
	// snapshots and Status: total runs completed, cumulative run wall
	// seconds (float64 bits, CAS-accumulated), and runs in flight now.
	runsDone   atomic.Int64
	runSecBits atomic.Uint64
	inflight   atomic.Int64
	chunks     atomic.Int64
}

// addRunSeconds folds one run's wall time into the cumulative sum.
func (w *Worker) addRunSeconds(s float64) {
	for {
		old := w.runSecBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + s)
		if w.runSecBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// telemetry builds the compact wire snapshot, nil when there is nothing
// to report yet (so idle heartbeats stay minimal).
func (w *Worker) telemetry() *WorkerTelemetry {
	t := &WorkerTelemetry{
		RunsServed: w.runsDone.Load(),
		InFlight:   w.inflight.Load(),
		RunSeconds: math.Float64frombits(w.runSecBits.Load()),
	}
	if t.empty() {
		return nil
	}
	return t
}

// WorkerStatus is the /statusz snapshot of a worker process.
type WorkerStatus struct {
	Addr         string  `json:"addr"`
	Parallelism  int     `json:"parallelism"`
	ActiveConns  int     `json:"active_conns"`
	ChunksServed int64   `json:"chunks_served"`
	RunsServed   int64   `json:"runs_served"`
	InFlight     int64   `json:"in_flight"`
	RunSeconds   float64 `json:"run_seconds"`
}

// Status reports the worker's live state; safe from any goroutine.
func (w *Worker) Status() WorkerStatus {
	w.mu.Lock()
	conns := len(w.conns)
	w.mu.Unlock()
	return WorkerStatus{
		Addr:         w.Addr(),
		Parallelism:  cap(w.sem),
		ActiveConns:  conns,
		ChunksServed: w.chunks.Load(),
		RunsServed:   w.runsDone.Load(),
		InFlight:     w.inflight.Load(),
		RunSeconds:   math.Float64frombits(w.runSecBits.Load()),
	}
}

// Listen binds the worker to addr (e.g. ":9777" or "127.0.0.1:0").
// TCP keepalive is enabled on accepted connections so a coordinator
// host that vanishes without a FIN is detected at the transport layer
// too, not only by the idle read deadline.
func (w *Worker) Listen(addr string) error {
	listen := w.ListenFunc
	if listen == nil {
		lc := net.ListenConfig{KeepAlive: 30 * time.Second}
		listen = func(network, address string) (net.Listener, error) {
			return lc.Listen(context.Background(), network, address)
		}
	}
	ln, err := listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: worker listen %s: %w", addr, err)
	}
	w.ln = ln
	p := w.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	w.sem = make(chan struct{}, p)
	w.conns = make(map[net.Conn]struct{})
	return nil
}

func (w *Worker) writeTimeout() time.Duration {
	if w.WriteTimeout <= 0 {
		return 15 * time.Second
	}
	return w.WriteTimeout
}

func (w *Worker) idleTimeout() time.Duration {
	if w.IdleTimeout <= 0 {
		return 5 * time.Minute
	}
	return w.IdleTimeout
}

func (w *Worker) batchRuns() int {
	if w.BatchRuns <= 0 {
		return 64
	}
	return w.BatchRuns
}

func (w *Worker) batchFlush() time.Duration {
	if w.BatchFlush <= 0 {
		return 25 * time.Millisecond
	}
	return w.BatchFlush
}

// Addr returns the bound listen address (useful with port 0).
func (w *Worker) Addr() string {
	if w.ln == nil {
		return ""
	}
	return w.ln.Addr().String()
}

// Serve accepts coordinator connections until Close. It returns nil on
// a clean shutdown.
func (w *Worker) Serve() error {
	if w.ln == nil {
		return errors.New("dist: worker not listening (call Listen first)")
	}
	for {
		nc, err := w.ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed || w.draining
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			nc.Close()
			return nil
		}
		w.conns[nc] = struct{}{}
		w.mu.Unlock()
		go w.serveConn(nc)
	}
}

// Shutdown drains the worker gracefully: it stops accepting new
// connections, refuses chunk requests arriving on existing ones (their
// coordinators re-dispatch to the rest of the fleet), and waits up to
// timeout for in-flight chunks to finish streaming before tearing the
// connections down. This is the SIGINT/SIGTERM path — a worker leaving
// a fleet this way never costs a coordinator more than a re-dispatch.
func (w *Worker) Shutdown(timeout time.Duration) error {
	w.mu.Lock()
	if w.closed || w.draining {
		w.mu.Unlock()
		return w.Close()
	}
	w.draining = true
	ln := w.ln
	w.mu.Unlock()
	if ln != nil {
		ln.Close() // Serve's accept loop sees draining and returns nil
	}
	deadline := time.Now().Add(timeout)
	for w.activeChunks.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	w.Close()
	return nil
}

// Close stops accepting and tears down every live connection, aborting
// in-flight chunks (their coordinators will re-dispatch elsewhere).
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	conns := make([]net.Conn, 0, len(w.conns))
	for nc := range w.conns {
		conns = append(conns, nc)
	}
	w.mu.Unlock()
	var err error
	if w.ln != nil {
		if cerr := w.ln.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			err = cerr // Shutdown already closed the listener: not an error
		}
	}
	for _, nc := range conns {
		nc.Close()
	}
	return err
}

func (w *Worker) serveConn(nc net.Conn) {
	defer func() {
		nc.Close()
		w.mu.Lock()
		delete(w.conns, nc)
		w.mu.Unlock()
	}()
	c := newConn(nc, w.writeTimeout())
	for {
		f, err := c.recv(time.Now().Add(w.idleTimeout()))
		if err != nil {
			switch {
			case errors.Is(err, os.ErrDeadlineExceeded):
				w.Obs.T().Event("dist.worker_conn_idle", obs.Str("peer", c.addr))
			case !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed):
				w.Obs.T().Event("dist.worker_conn_error", obs.Str("peer", c.addr), obs.Str("error", err.Error()))
			}
			return
		}
		switch f.Type {
		case frameHello:
			if f.Version < MinProtocolVersion || f.Version > ProtocolVersion {
				c.send(frame{Type: frameError,
					Error: fmt.Sprintf("protocol version %d, worker speaks %d..%d", f.Version, MinProtocolVersion, ProtocolVersion)})
				return
			}
			// Speak the lower of the two versions: a v1 coordinator gets
			// plain v1 frames, a v2 one gets telemetry piggybacks but
			// per-run results, a v3 one gets batched result frames.
			effective := ProtocolVersion
			if w.maxVersion > 0 && w.maxVersion < effective {
				effective = w.maxVersion
			}
			c.version = min(f.Version, effective)
			p := cap(w.sem)
			if err := c.send(frame{Type: frameHelloOK, Version: c.version, Parallelism: p}); err != nil {
				return
			}
		case framePing:
			if err := c.send(frame{Type: framePong}); err != nil {
				return
			}
		case frameRunChunk:
			w.mu.Lock()
			draining := w.draining
			w.mu.Unlock()
			if draining {
				// Refuse by closing: the coordinator sees a transport
				// failure and re-dispatches the chunk to another worker —
				// never an execution error, which would abort its job.
				w.Obs.T().Event("dist.worker_drain_refuse", obs.Str("peer", c.addr))
				return
			}
			if err := w.runChunk(c, f); err != nil {
				return
			}
		default:
			c.send(frame{Type: frameError, ID: f.ID, Error: fmt.Sprintf("unknown frame type %q", f.Type)})
			return
		}
	}
}

// runChunk executes one contiguous seed chunk and streams results. The
// connection error (not the simulation error) is returned: a failed run
// is reported in-band with an error frame and the connection stays up.
func (w *Worker) runChunk(c *conn, req frame) error {
	span := w.Obs.T().StartSpan("dist.worker_chunk", obs.Str("peer", c.addr),
		obs.U64("id", req.ID), obs.Str("benchmark", req.Benchmark),
		obs.Int("start", req.Start), obs.Int("count", req.Count))
	w.Obs.M().Counter(obs.MetricDistChunksServed).Inc()
	w.chunks.Add(1)
	w.activeChunks.Add(1)
	defer w.activeChunks.Add(-1)
	// Telemetry piggybacks are version-gated: a v1 coordinator never sees
	// the field, so old fleets interoperate unchanged.
	sendTelemetry := c.version >= telemetryVersion
	snapshot := func() *WorkerTelemetry {
		if !sendTelemetry {
			return nil
		}
		return w.telemetry()
	}
	if req.Count <= 0 || req.Config == nil || req.Benchmark == "" {
		span.End(obs.Str("error", "malformed chunk"))
		return c.send(frame{Type: frameError, ID: req.ID, Error: "malformed run_chunk frame"})
	}

	// doomed flips once the chunk cannot complete on this connection —
	// a failed send (dead coordinator), a failed heartbeat, or a failed
	// seed. Launching stops immediately so a doomed chunk doesn't burn
	// CPU and hold semaphore slots that other coordinators' chunks need;
	// runs already in flight finish and release their slots.
	doomed := make(chan struct{})
	var doomOnce sync.Once
	doom := func() { doomOnce.Do(func() { close(doomed) }) }

	hb := w.HeartbeatEvery
	if hb <= 0 {
		hb = time.Second
	}
	stopHB := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-t.C:
				// A failed heartbeat means the coordinator is gone: the
				// error itself also surfaces on the result path, but
				// dooming here stops run launches a heartbeat sooner.
				if c.send(frame{Type: frameHeartbeat, ID: req.ID, Telemetry: snapshot()}) != nil {
					doom()
				}
			}
		}
	}()
	defer func() {
		close(stopHB)
		hbWG.Wait()
	}()

	type runOut struct {
		offset  int
		metrics map[string]float64
		cycles  uint64
		elapsed time.Duration
		err     error
	}
	outs := make(chan runOut, req.Count)

	// Drain concurrently with launching, so the first failure dooms the
	// chunk while later seeds are still unlaunched. A failed seed aborts
	// the chunk (the coordinator decides whether to surface it); runs
	// already executing still drain so the semaphore is returned.
	//
	// On v3+ connections completed runs accumulate into a columnar
	// result_batch, flushed every BatchRuns runs or BatchFlush of wall
	// time — one frame and one syscall amortized over the whole batch
	// instead of per run. Older peers keep one result frame per run.
	type outcome struct {
		runErr, sendErr error
		sent            int
	}
	outcomeCh := make(chan outcome, 1)
	batching := c.version >= batchVersion
	go func() {
		var o outcome
		var rb *ResultBatch
		var flushC <-chan time.Time // nil (never fires) unless batching
		if batching {
			rb = &ResultBatch{}
			t := time.NewTicker(w.batchFlush())
			defer t.Stop()
			flushC = t.C
		}
		flush := func() {
			if rb == nil || rb.len() == 0 || o.sendErr != nil || o.runErr != nil {
				return
			}
			if err := c.send(frame{Type: frameResultBatch, ID: req.ID, Batch: rb}); err != nil {
				o.sendErr = err
				doom()
				return
			}
			o.sent += rb.len()
			rb.reset() // send encodes synchronously, so the columns are free to reuse
		}
		handle := func(r runOut) {
			if r.err != nil {
				if o.runErr == nil {
					o.runErr = fmt.Errorf("seed %d: %w", req.BaseSeed+uint64(r.offset), r.err)
					doom()
				}
				return
			}
			if o.sendErr != nil || o.runErr != nil {
				return
			}
			if !batching {
				if err := c.send(frame{Type: frameResult, ID: req.ID, Offset: r.offset,
					Metrics: r.metrics, Cycles: r.cycles, ElapsedUS: r.elapsed.Microseconds()}); err != nil {
					o.sendErr = err
					doom()
				} else {
					o.sent++
				}
				return
			}
			if !rb.add(r.offset, r.metrics, r.cycles, r.elapsed.Microseconds()) {
				// Metric key set changed mid-chunk (rare): flush the
				// homogeneous batch and start over on a fresh one.
				flush()
				if o.sendErr != nil || o.runErr != nil {
					return
				}
				rb.add(r.offset, r.metrics, r.cycles, r.elapsed.Microseconds())
			}
			if rb.len() >= w.batchRuns() {
				flush()
			}
		}
		for {
			select {
			case r, ok := <-outs:
				if !ok {
					flush()
					outcomeCh <- o
					return
				}
				handle(r)
			case <-flushC:
				flush()
			}
		}
	}()

	var wg sync.WaitGroup
	launched := 0
launch:
	for i := 0; i < req.Count; i++ {
		select {
		case <-doomed:
			break launch
		case w.sem <- struct{}{}:
		}
		wg.Add(1)
		launched++
		go func(off int) {
			defer wg.Done()
			defer func() { <-w.sem }()
			w.Obs.M().Counter(obs.MetricDistWorkerRuns).Inc()
			w.inflight.Add(1)
			seed := req.BaseSeed + uint64(off)
			start := time.Now()
			res, err := sim.Run(req.Benchmark, *req.Config, req.Scale, seed)
			elapsed := time.Since(start)
			w.inflight.Add(-1)
			w.runsDone.Add(1)
			w.addRunSeconds(elapsed.Seconds())
			o := runOut{offset: off, elapsed: elapsed, err: err}
			if err == nil {
				o.metrics = res.Metrics
				o.cycles = res.Cycles
			}
			outs <- o
		}(req.Start + i)
	}
	wg.Wait()
	close(outs)
	o := <-outcomeCh

	if o.sendErr != nil {
		span.End(obs.Str("error", o.sendErr.Error()))
		return o.sendErr
	}
	if o.runErr != nil {
		span.End(obs.Str("error", o.runErr.Error()))
		return c.send(frame{Type: frameError, ID: req.ID, Error: o.runErr.Error()})
	}
	if launched < req.Count {
		// Doomed by a heartbeat failure before any result send failed:
		// the coordinator is gone, so tear the connection down.
		err := errors.New("dist: chunk aborted, coordinator connection lost")
		span.End(obs.Str("error", err.Error()))
		return err
	}
	span.End(obs.Int("results", o.sent))
	return c.send(frame{Type: frameChunkDone, ID: req.ID, Count: o.sent, Telemetry: snapshot()})
}
