package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Worker serves seed chunks to coordinators: it listens on a TCP
// address, executes the requested workload+sim runs with bounded local
// parallelism, and streams per-run results back as they complete
// (offsets identify runs, so arrival order is free to be whatever the
// scheduler produces). One worker serves any number of coordinator
// connections concurrently.
type Worker struct {
	// Parallelism bounds concurrent simulations across all connections
	// (0 = GOMAXPROCS).
	Parallelism int
	// HeartbeatEvery is the interval between liveness frames while a
	// chunk executes (0 = 1s). Heartbeats keep the coordinator's read
	// deadline from tripping on genuinely slow runs.
	HeartbeatEvery time.Duration
	// Obs receives spans and counters for served chunks; nil disables.
	Obs *obs.Observer

	ln     net.Listener
	sem    chan struct{}
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Listen binds the worker to addr (e.g. ":9777" or "127.0.0.1:0").
func (w *Worker) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: worker listen %s: %w", addr, err)
	}
	w.ln = ln
	p := w.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	w.sem = make(chan struct{}, p)
	w.conns = make(map[net.Conn]struct{})
	return nil
}

// Addr returns the bound listen address (useful with port 0).
func (w *Worker) Addr() string {
	if w.ln == nil {
		return ""
	}
	return w.ln.Addr().String()
}

// Serve accepts coordinator connections until Close. It returns nil on
// a clean shutdown.
func (w *Worker) Serve() error {
	if w.ln == nil {
		return errors.New("dist: worker not listening (call Listen first)")
	}
	for {
		nc, err := w.ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			nc.Close()
			return nil
		}
		w.conns[nc] = struct{}{}
		w.mu.Unlock()
		go w.serveConn(nc)
	}
}

// Close stops accepting and tears down every live connection, aborting
// in-flight chunks (their coordinators will re-dispatch elsewhere).
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	conns := make([]net.Conn, 0, len(w.conns))
	for nc := range w.conns {
		conns = append(conns, nc)
	}
	w.mu.Unlock()
	var err error
	if w.ln != nil {
		err = w.ln.Close()
	}
	for _, nc := range conns {
		nc.Close()
	}
	return err
}

func (w *Worker) serveConn(nc net.Conn) {
	defer func() {
		nc.Close()
		w.mu.Lock()
		delete(w.conns, nc)
		w.mu.Unlock()
	}()
	c := newConn(nc)
	for {
		f, err := c.recv(time.Time{})
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				w.Obs.T().Event("dist.worker_conn_error", obs.Str("peer", c.addr), obs.Str("error", err.Error()))
			}
			return
		}
		switch f.Type {
		case frameHello:
			if f.Version != ProtocolVersion {
				c.send(frame{Type: frameError,
					Error: fmt.Sprintf("protocol version %d, worker speaks %d", f.Version, ProtocolVersion)})
				return
			}
			p := cap(w.sem)
			if err := c.send(frame{Type: frameHelloOK, Version: ProtocolVersion, Parallelism: p}); err != nil {
				return
			}
		case framePing:
			if err := c.send(frame{Type: framePong}); err != nil {
				return
			}
		case frameRunChunk:
			if err := w.runChunk(c, f); err != nil {
				return
			}
		default:
			c.send(frame{Type: frameError, ID: f.ID, Error: fmt.Sprintf("unknown frame type %q", f.Type)})
			return
		}
	}
}

// runChunk executes one contiguous seed chunk and streams results. The
// connection error (not the simulation error) is returned: a failed run
// is reported in-band with an error frame and the connection stays up.
func (w *Worker) runChunk(c *conn, req frame) error {
	span := w.Obs.T().StartSpan("dist.worker_chunk", obs.Str("peer", c.addr),
		obs.U64("id", req.ID), obs.Str("benchmark", req.Benchmark),
		obs.Int("start", req.Start), obs.Int("count", req.Count))
	w.Obs.M().Counter(obs.MetricDistChunksServed).Inc()
	if req.Count <= 0 || req.Config == nil || req.Benchmark == "" {
		span.End(obs.Str("error", "malformed chunk"))
		return c.send(frame{Type: frameError, ID: req.ID, Error: "malformed run_chunk frame"})
	}

	hb := w.HeartbeatEvery
	if hb <= 0 {
		hb = time.Second
	}
	stopHB := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-t.C:
				// A send failure here will also surface on the result
				// path; ignore it.
				c.send(frame{Type: frameHeartbeat, ID: req.ID})
			}
		}
	}()
	defer func() {
		close(stopHB)
		hbWG.Wait()
	}()

	type runOut struct {
		offset  int
		metrics map[string]float64
		cycles  uint64
		elapsed time.Duration
		err     error
	}
	outs := make(chan runOut, req.Count)
	var wg sync.WaitGroup
	for i := 0; i < req.Count; i++ {
		wg.Add(1)
		w.sem <- struct{}{}
		go func(off int) {
			defer wg.Done()
			defer func() { <-w.sem }()
			seed := req.BaseSeed + uint64(off)
			start := time.Now()
			res, err := sim.Run(req.Benchmark, *req.Config, req.Scale, seed)
			o := runOut{offset: off, elapsed: time.Since(start), err: err}
			if err == nil {
				o.metrics = res.Metrics
				o.cycles = res.Cycles
			}
			outs <- o
		}(req.Start + i)
	}
	go func() {
		wg.Wait()
		close(outs)
	}()

	// Drain every run before reporting: a single failed seed aborts the
	// chunk (the coordinator decides whether to retry it elsewhere or
	// surface the failure), but the remaining runs must finish so the
	// semaphore is returned.
	var runErr error
	sent := 0
	var sendErr error
	for o := range outs {
		if o.err != nil {
			if runErr == nil {
				runErr = fmt.Errorf("seed %d: %w", req.BaseSeed+uint64(o.offset), o.err)
			}
			continue
		}
		if sendErr != nil || runErr != nil {
			continue
		}
		if err := c.send(frame{Type: frameResult, ID: req.ID, Offset: o.offset,
			Metrics: o.metrics, Cycles: o.cycles, ElapsedUS: o.elapsed.Microseconds()}); err != nil {
			sendErr = err
			continue
		}
		sent++
	}
	if sendErr != nil {
		span.End(obs.Str("error", sendErr.Error()))
		return sendErr
	}
	if runErr != nil {
		span.End(obs.Str("error", runErr.Error()))
		return c.send(frame{Type: frameError, ID: req.ID, Error: runErr.Error()})
	}
	span.End(obs.Int("results", sent))
	return c.send(frame{Type: frameChunkDone, ID: req.ID, Count: sent})
}
