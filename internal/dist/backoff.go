package dist

import (
	"time"

	"repro/internal/randx"
)

// backoff produces bounded exponential delays with jitter for worker
// reconnect attempts. Jitter decorrelates a fleet of coordinators
// hammering a recovering worker; it only perturbs timing, never sample
// values, so campaign determinism is untouched.
type backoff struct {
	base, max time.Duration
	attempt   int
	rng       *randx.Rand
}

func newBackoff(base, max time.Duration, seed uint64) *backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	return &backoff{base: base, max: max, rng: randx.New(seed)}
}

// next returns the delay before the next attempt: base·2^attempt capped
// at max, multiplied by a uniform factor in [0.5, 1.5).
func (b *backoff) next() time.Duration {
	d := b.base << uint(b.attempt)
	if d > b.max || d <= 0 { // <= 0 guards shift overflow
		d = b.max
	}
	if b.attempt < 30 {
		b.attempt++
	}
	jitter := 0.5 + b.rng.Float64()
	return time.Duration(float64(d) * jitter)
}

// reset clears the attempt counter after a successful operation.
func (b *backoff) reset() { b.attempt = 0 }
