package dist

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sim"
)

// GeneratePopulation is the distributed twin of population.Generate: it
// runs the job `runs` times with seeds baseSeed+i across the workers and
// assembles the population through the same code path local generation
// uses, so the two are byte-identical for the same manifest seed.
func (c *Coordinator) GeneratePopulation(benchmark string, cfg sim.Config, scale float64, runs int, baseSeed uint64, h population.RunHooks) (*population.Population, error) {
	return c.GeneratePopulationCtx(context.Background(), benchmark, cfg, scale, runs, baseSeed, h)
}

// GeneratePopulationCtx is GeneratePopulation with cooperative
// cancellation (see RunCtx).
func (c *Coordinator) GeneratePopulationCtx(ctx context.Context, benchmark string, cfg sim.Config, scale float64, runs int, baseSeed uint64, h population.RunHooks) (*population.Population, error) {
	results, err := c.RunCtx(ctx, Job{Benchmark: benchmark, Config: cfg, Scale: scale}, baseSeed, runs, h)
	if err != nil {
		return nil, err
	}
	metrics := make([]map[string]float64, len(results))
	for i, r := range results {
		metrics[i] = r.Metrics
	}
	return population.FromRuns(benchmark, baseSeed, metrics), nil
}

// DistCollect runs the job across the workers and returns one metric's
// samples ordered by seed offset — the distributed equivalent of
// core.Collect over a simulator-backed RunFunc.
func (c *Coordinator) DistCollect(job Job, metric string, baseSeed uint64, n int) ([]float64, error) {
	return c.Collector(job, metric).Collect(baseSeed, n, 0, core.Hooks{})
}

// Collector binds the coordinator to one (job, metric) pair as a
// core.Collector, so Analyze/AnalyzeToWidth/CheckBatched can consume a
// remote backend unchanged.
func (c *Coordinator) Collector(job Job, metric string) core.Collector {
	return c.CollectorCtx(context.Background(), job, metric)
}

// CollectorCtx is Collector bound to a context: every Collect the
// analysis loop issues is cancelled with it. core.Collector has no ctx
// parameter, so the binding happens here.
func (c *Coordinator) CollectorCtx(ctx context.Context, job Job, metric string) core.Collector {
	return &metricCollector{c: c, ctx: ctx, job: job, metric: metric}
}

type metricCollector struct {
	c      *Coordinator
	ctx    context.Context
	job    Job
	metric string
}

// Collect implements core.Collector. The batch bound is advisory here:
// in-flight parallelism is governed by each worker's own limit (and the
// coordinator's for local fallback), which cannot change sample values.
func (mc *metricCollector) Collect(baseSeed uint64, n, batch int, h core.Hooks) ([]float64, error) {
	results, err := mc.c.RunCtx(mc.ctx, mc.job, baseSeed, n, adaptHooks(mc.metric, h))
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i, r := range results {
		v, ok := r.Metrics[mc.metric]
		if !ok {
			return nil, fmt.Errorf("dist: run with seed %d has no metric %q", baseSeed+uint64(r.Offset), mc.metric)
		}
		out[i] = v
	}
	return out, nil
}

// adaptHooks projects core's scalar-metric hooks onto the per-run hooks
// the coordinator fires.
func adaptHooks(metric string, h core.Hooks) population.RunHooks {
	var out population.RunHooks
	if h.OnRunStart != nil {
		out.OnRunStart = func(i int, seed uint64) { h.OnRunStart(seed) }
	}
	if h.OnRunDone != nil {
		out.OnRunDone = func(i int, seed uint64, res *sim.Result, err error, elapsed time.Duration) {
			var v float64
			if res != nil {
				v = res.Metrics[metric]
			}
			h.OnRunDone(seed, v, err, elapsed)
		}
	}
	return out
}
