package dist

import (
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faultx"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/sim"
)

// chaosSeed returns the soak seed: SPA_CHAOS_SEED in the environment
// (CI runs the soak at two seeds), default 1. Every fault schedule in a
// soak run derives deterministically from this one value.
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	s := os.Getenv("SPA_CHAOS_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("SPA_CHAOS_SEED=%q: %v", s, err)
	}
	return v
}

// chaosProfile tunes a scenario profile for test-speed soaking.
func chaosProfile(scenarios ...faultx.Scenario) faultx.Profile {
	p := faultx.ProfileFor(scenarios...)
	p.Rate = 0.25
	p.MaxDelay = 5 * time.Millisecond
	p.StallFor = 150 * time.Millisecond
	return p
}

// startChaosWorker boots a real worker behind a fault-injecting
// listener. Batching is tuned aggressively small so the soak exercises
// many result_batch flush boundaries per chunk, not one big batch.
func startChaosWorker(t *testing.T, inj *faultx.Injector) *Worker {
	t.Helper()
	w := &Worker{
		Parallelism:    2,
		HeartbeatEvery: 50 * time.Millisecond,
		WriteTimeout:   500 * time.Millisecond,
		IdleTimeout:    30 * time.Second,
		BatchRuns:      4,
		BatchFlush:     5 * time.Millisecond,
	}
	return startChaos(t, w, inj)
}

func startChaos(t *testing.T, w *Worker, inj *faultx.Injector) *Worker {
	t.Helper()
	w.ListenFunc = inj.Listen
	if err := w.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Serve() }()
	t.Cleanup(func() {
		w.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("chaos worker serve: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("chaos worker did not stop")
		}
	})
	return w
}

// chaosCoord builds a coordinator with failure handling tuned for
// soak-test speed and a fault budget large enough that chaos rarely
// abandons both workers (and byte-identity holds even when it does —
// the coordinator degrades to local execution). ChunkTarget is set so
// the soak runs the adaptive carving path — re-dispatch of variably
// sized, partially-streamed batched chunks is exactly where scheduling
// bugs would corrupt assembly.
func chaosCoord(dial *faultx.Injector, obsv *obs.Observer, addrs ...string) *Coordinator {
	return &Coordinator{
		Workers:           addrs,
		ChunkSize:         3,
		ChunkTarget:       100 * time.Millisecond,
		ChunkTimeout:      20 * time.Second,
		ReadTimeout:       500 * time.Millisecond,
		WriteTimeout:      500 * time.Millisecond,
		DialTimeout:       2 * time.Second,
		MaxWorkerFailures: 5,
		BackoffBase:       time.Millisecond,
		BackoffMax:        20 * time.Millisecond,
		Dial:              dial.Dial,
		Obs:               obsv,
	}
}

// TestChaosSoakByteIdentity is the adversarial proof of the dist
// layer's core claim: for EVERY fault scenario — injected on both the
// coordinator's dial side and each worker's listener side — a 2-worker
// campaign returns samples byte-identical to a clean local run. Faults
// perturb timing, routing, and retries; they must never perturb sample
// values or ordering.
func TestChaosSoakByteIdentity(t *testing.T) {
	const runs = 12
	want := localPop(t, runs)
	seed := chaosSeed(t)
	reg := obs.NewRegistry()
	chaosObs := &obs.Observer{Metrics: reg}

	scenarios := append(faultx.Scenarios(), faultx.Scenario(255)) // 255 = combined
	for _, sc := range scenarios {
		name := sc.String()
		prof := chaosProfile(sc)
		if sc == 255 {
			name = "combined"
			prof = chaosProfile(faultx.Scenarios()...)
		}
		t.Run(name, func(t *testing.T) {
			// Distinct, deterministic sub-seeds per scenario and side.
			base := seed*1000 + uint64(sc)*10
			addrs := make([]string, 2)
			for i := range addrs {
				w := startChaosWorker(t, faultx.New(base+uint64(i), prof, chaosObs))
				addrs[i] = w.Addr()
			}
			c := chaosCoord(faultx.New(base+7, prof, chaosObs), &obs.Observer{Metrics: reg}, addrs...)
			got, err := c.GeneratePopulation(testBench, sim.DefaultConfig(), testScale, runs, testSeed, population.RunHooks{})
			if err != nil {
				t.Fatalf("chaos campaign (%s, seed %d) failed outright: %v", name, seed, err)
			}
			checkPopEqual(t, got, want)
		})
	}
	// Across the full soak the injectors must actually have fired:
	// a soak that never faulted proves nothing.
	if v := reg.Counter(obs.MetricChaosFaults).Value() + reg.Counter(obs.MetricChaosRefusals).Value(); v == 0 {
		t.Error("chaos soak completed without a single injected fault")
	}
	t.Logf("chaos soak seed %d: %d faults, %d refusals, %d redispatches, %d dead workers, %d local-fallback chunks",
		seed,
		reg.Counter(obs.MetricChaosFaults).Value(),
		reg.Counter(obs.MetricChaosRefusals).Value(),
		reg.Counter(obs.MetricDistRedispatches).Value(),
		reg.Counter(obs.MetricDistWorkersDead).Value(),
		reg.Counter(obs.MetricDistLocalChunks).Value())
}

// TestChaosHooksNeverDuplicate runs the combined profile and checks the
// exactly-once hook contract survives chaos: re-dispatched and
// half-streamed chunks must not fire hooks twice or for phantom runs.
func TestChaosHooksNeverDuplicate(t *testing.T) {
	const runs = 9
	seed := chaosSeed(t)
	prof := chaosProfile(faultx.Scenarios()...)
	w1 := startChaosWorker(t, faultx.New(seed*7+1, prof, nil))
	w2 := startChaosWorker(t, faultx.New(seed*7+2, prof, nil))

	var mu sync.Mutex
	seen := map[int]int{}
	h := population.RunHooks{
		OnRunDone: func(i int, s uint64, res *sim.Result, err error, elapsed time.Duration) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		},
	}
	c := chaosCoord(faultx.New(seed*7+3, prof, nil), nil, w1.Addr(), w2.Addr())
	if _, err := c.Run(testJob(), testSeed, runs, h); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < runs; i++ {
		if seen[i] != 1 {
			t.Errorf("run %d hook fired %d times under chaos, want exactly 1", i, seen[i])
		}
	}
}
