package dist

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestNoTakeAfterJobDone is the deterministic regression test for
// post-completion dispatch: a chunk held by a slow worker gets requeued
// by its chunk timeout, a fast worker completes the whole job from the
// duplicate, and then the slow worker's own failure path puts its stale
// segment back. Before the fix the queue happily handed that dead
// segment to the next idle worker, which dispatched a brand-new chunk
// for a job whose outcome was already decided. Now completion closes
// the queue: the late put is dropped and the take returns nil.
func TestNoTakeAfterJobDone(t *testing.T) {
	q := newWorkQueue(4)
	st := newRunState(4, q)

	// Slow worker takes the whole range and stalls mid-dispatch.
	stale := q.take(4)
	if stale == nil || stale.count != 4 {
		t.Fatalf("initial take = %+v, want the full [0,4) range", stale)
	}
	// Its chunk timeout fires: the coordinator requeues the range…
	q.put(&chunk{start: 0, count: 4, attempts: 1})
	// …and a healthy worker re-dispatches and completes the job.
	dup := q.take(4)
	if dup == nil {
		t.Fatal("re-dispatch take returned nil with a requeued segment pending")
	}
	runs := make([]RunResult, 4)
	for i := range runs {
		runs[i] = RunResult{Offset: i}
	}
	if fresh := st.commit(runs); len(fresh) != 4 {
		t.Fatalf("commit installed %d results, want 4", len(fresh))
	}
	select {
	case <-st.done:
	default:
		t.Fatal("job did not complete after all offsets committed")
	}

	// The stalled worker finally errors out and requeues its segment —
	// after the job already finished.
	q.put(stale)
	if q.pending() != 0 {
		t.Errorf("queue holds %d pending runs after job completion, want 0 (stale put must be dropped)", q.pending())
	}
	if ch := q.take(4); ch != nil {
		t.Errorf("take after job completion returned %+v — an idle worker would dispatch it as a new chunk", ch)
	}
}

// TestQueueClosedOnFailure: a terminal job failure must also cancel
// un-dispatched segments, not just successful completion.
func TestQueueClosedOnFailure(t *testing.T) {
	q := newWorkQueue(8)
	st := newRunState(8, q)
	st.fail(errJobDone)
	if ch := q.take(8); ch != nil {
		t.Errorf("take after job failure returned %+v, want nil", ch)
	}
}

// TestNoChunkDispatchAfterConvergence asserts, via the chunk ledger,
// the satellite guarantee end to end: once OnRound reports
// width ≤ target, the adaptive analysis is done and no further chunk —
// remote dispatch or local — may launch. Stale work is possible here
// because every refinement round ends by completing a dist job while
// worker loops may still hold carved segments.
func TestNoChunkDispatchAfterConvergence(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	c := fastCoord(w1.Addr(), w2.Addr())
	c.ChunkSize = 2 // several chunks per round: convergence races carving
	c.Obs = o

	dispatched := func() int64 {
		return o.Metrics.Counter(obs.MetricDistChunksDispatched).Value() +
			o.Metrics.Counter(obs.MetricDistLocalChunks).Value()
	}

	var atConvergence atomic.Int64
	atConvergence.Store(-1)
	const target = 1.0 // generous: the very first round converges
	col := c.Collector(testJob(), "runtime_s")
	_, err := core.AnalyzeToWidthWith(col, core.Params{F: 0.5, C: 0.9}, core.WidthOptions{
		TargetWidth: target,
		BaseSeed:    testSeed,
		Hooks: core.Hooks{OnRound: func(samples int, width float64) {
			if width <= target && atConvergence.Load() < 0 {
				atConvergence.Store(dispatched())
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	at := atConvergence.Load()
	if at < 0 {
		t.Fatal("analysis returned without reporting a converged round")
	}
	// Give any straggling worker goroutine time to (wrongly) dispatch.
	time.Sleep(300 * time.Millisecond)
	if after := dispatched(); after != at {
		t.Errorf("%d chunks launched after OnRound reported width <= target (ledger %d -> %d)",
			after-at, at, after)
	}
}
