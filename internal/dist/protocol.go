package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/sim"
)

// ProtocolVersion guards against coordinator/worker skew. Peers accept
// any version in [MinProtocolVersion, ProtocolVersion] at hello time and
// speak the lower of the two — so a v1 fleet keeps working against a v2
// coordinator (and vice versa), while anything outside the window is
// rejected before a campaign starts.
//
//	v1: base protocol (chunks, results, heartbeats)
//	v2: worker telemetry piggybacked on heartbeat/chunk_done frames
//	v3: batched columnar result frames (result_batch) and, coordinator
//	    side, throughput-adaptive chunk sizing; v1/v2 peers keep getting
//	    per-run result frames and fixed chunks
const (
	ProtocolVersion    = 3
	MinProtocolVersion = 1
	// telemetryVersion is the negotiated version from which workers
	// attach telemetry snapshots to their frames.
	telemetryVersion = 2
	// batchVersion is the negotiated version from which workers ship
	// results as columnar result_batch frames instead of one result
	// frame per run — and from which the coordinator may size chunks
	// adaptively rather than carving fixed ones.
	batchVersion = 3
)

// Frame types. The protocol is newline-delimited JSON: every message is
// one frame object on one line, in both directions.
const (
	// coordinator → worker
	frameHello    = "hello"     // handshake: version check
	frameRunChunk = "run_chunk" // execute a contiguous seed chunk
	framePing     = "ping"      // liveness probe on an idle connection

	// worker → coordinator
	frameHelloOK     = "hello_ok"     // handshake accepted
	frameResult      = "result"       // one completed run (any order within a chunk)
	frameResultBatch = "result_batch" // many completed runs, columnar (v3+)
	frameHeartbeat   = "heartbeat"    // liveness while a chunk is executing
	frameChunkDone = "chunk_done"
	frameError     = "error" // chunk failed worker-side
	framePong      = "pong"
)

// frame is the single wire message shape; Type selects which fields are
// meaningful. Keeping one struct makes decoding trivial and the protocol
// self-describing in captures.
type frame struct {
	Type    string `json:"type"`
	Version int    `json:"version,omitempty"`
	// Chunk identity and job description (run_chunk; echoed on replies).
	ID        uint64      `json:"id,omitempty"`
	Benchmark string      `json:"benchmark,omitempty"`
	Config    *sim.Config `json:"config,omitempty"`
	Scale     float64     `json:"scale,omitempty"`
	BaseSeed  uint64      `json:"base_seed,omitempty"`
	Start     int         `json:"start,omitempty"`
	Count     int         `json:"count,omitempty"`
	// Per-run result payload (result frames).
	Offset    int                `json:"offset,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	Cycles    uint64             `json:"cycles,omitempty"`
	ElapsedUS int64              `json:"elapsed_us,omitempty"`
	// Batch is the columnar multi-run payload (result_batch frames,
	// protocol v3+).
	Batch *ResultBatch `json:"batch,omitempty"`
	// Worker capability (hello_ok) and failure detail (error frames).
	Parallelism int    `json:"parallelism,omitempty"`
	Error       string `json:"error,omitempty"`
	// Telemetry is the worker's compact metrics snapshot, piggybacked on
	// heartbeat and chunk_done frames from protocol v2 on; omitted when
	// the peer negotiated v1 or the worker has nothing to report yet.
	Telemetry *WorkerTelemetry `json:"telemetry,omitempty"`
}

// WorkerTelemetry is the per-worker metrics snapshot carried on the wire:
// cumulative process-lifetime totals (the coordinator differentiates
// successive snapshots into rates) plus the instantaneous in-flight
// count. It is intentionally a summary — count and sum of the run
// duration distribution rather than full buckets — to keep heartbeats
// one short line.
type WorkerTelemetry struct {
	// RunsServed is the total simulation runs completed by this worker
	// process (all connections, all coordinators).
	RunsServed int64 `json:"runs_served"`
	// InFlight is the number of runs executing right now.
	InFlight int64 `json:"in_flight,omitempty"`
	// RunSeconds is the cumulative wall time of completed runs — with
	// RunsServed this is the run-duration histogram's (count, sum)
	// summary, giving the coordinator mean run cost per worker.
	RunSeconds float64 `json:"run_seconds,omitempty"`
}

// empty reports whether the snapshot carries no information (a worker
// that has not run anything yet omits it from the frame entirely).
func (t *WorkerTelemetry) empty() bool {
	return t == nil || (t.RunsServed == 0 && t.InFlight == 0 && t.RunSeconds == 0)
}

// ResultBatch is the v3 columnar result payload: many completed runs in
// one frame, with the per-metric value arrays keyed once by metric name
// instead of one map[string]float64 per run. Index i across all arrays
// describes one run; the arrays are always the same length. Batching
// amortizes JSON encode/decode, syscalls, and per-run map allocations
// across the whole batch — the dist hot path's dominant cost at small
// simulation scales.
type ResultBatch struct {
	// Offsets are the runs' seed offsets within the campaign (the same
	// identity per-run result frames carry), in completion order.
	Offsets []int `json:"offsets"`
	// Cycles and ElapsedUS align with Offsets.
	Cycles    []uint64 `json:"cycles"`
	ElapsedUS []int64  `json:"elapsed_us"`
	// Metrics maps each metric name to its value column. Every run in a
	// batch has the same metric set — the worker flushes early on the
	// rare key-set change — so name strings ship (and decode) once per
	// batch rather than once per run.
	Metrics map[string][]float64 `json:"metrics,omitempty"`
}

func (b *ResultBatch) len() int { return len(b.Offsets) }

// add appends one run to the batch. It reports false — without
// modifying the batch — when the run's metric key set differs from the
// batch's; the caller flushes and retries on a fresh batch.
func (b *ResultBatch) add(offset int, metrics map[string]float64, cycles uint64, elapsedUS int64) bool {
	if len(b.Offsets) == 0 {
		if b.Metrics == nil {
			b.Metrics = make(map[string][]float64, len(metrics))
		}
		// A reset batch keeps its columns for capacity; drop any key the
		// new run doesn't carry so the batch can't come out ragged.
		for k := range b.Metrics {
			if _, ok := metrics[k]; !ok {
				delete(b.Metrics, k)
			}
		}
		for k, v := range metrics {
			b.Metrics[k] = append(b.Metrics[k], v)
		}
	} else {
		if len(metrics) != len(b.Metrics) {
			return false
		}
		for k := range metrics {
			if _, ok := b.Metrics[k]; !ok {
				return false
			}
		}
		for k, v := range metrics {
			b.Metrics[k] = append(b.Metrics[k], v)
		}
	}
	b.Offsets = append(b.Offsets, offset)
	b.Cycles = append(b.Cycles, cycles)
	b.ElapsedUS = append(b.ElapsedUS, elapsedUS)
	return true
}

// reset empties the batch for reuse, keeping the column capacity.
func (b *ResultBatch) reset() {
	b.Offsets = b.Offsets[:0]
	b.Cycles = b.Cycles[:0]
	b.ElapsedUS = b.ElapsedUS[:0]
	for k := range b.Metrics {
		b.Metrics[k] = b.Metrics[k][:0]
	}
}

// validate checks the columnar invariants a peer-supplied batch must
// hold before it is safe to index.
func (b *ResultBatch) validate() error {
	n := len(b.Offsets)
	if len(b.Cycles) != n || len(b.ElapsedUS) != n {
		return fmt.Errorf("dist: ragged result_batch: %d offsets, %d cycles, %d elapsed",
			n, len(b.Cycles), len(b.ElapsedUS))
	}
	for k, vs := range b.Metrics {
		if len(vs) != n {
			return fmt.Errorf("dist: ragged result_batch: metric %q has %d values for %d offsets", k, len(vs), n)
		}
	}
	return nil
}

// conn wraps a TCP connection with buffered JSONL framing and a write
// lock, so result streaming and heartbeats can interleave safely.
type conn struct {
	net net.Conn
	r   *bufio.Reader
	dec *json.Decoder
	wmu sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	// writeTimeout bounds each send; zero disables. Without it a peer
	// that stops reading blocks the sender inside wmu forever — wedging
	// whatever holds the lock next (heartbeats, result streaming).
	writeTimeout time.Duration
	addr         string
	// version is the negotiated protocol version — min(ours, peer's) —
	// set by the handshake on the coordinator side and by the hello
	// exchange on the worker side. Zero means not yet negotiated.
	version int
	// parallelism is the worker's advertised simulation slot count from
	// hello_ok (coordinator side only) — the adaptive chunk sizer's seed
	// before any throughput sample exists for the worker.
	parallelism int
}

func newConn(c net.Conn, writeTimeout time.Duration) *conn {
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)
	return &conn{
		net: c, r: r, dec: json.NewDecoder(r),
		w: w, enc: json.NewEncoder(w),
		writeTimeout: writeTimeout,
		addr:         c.RemoteAddr().String(),
	}
}

// send encodes one frame and flushes it, bounded by the write timeout.
// A tripped deadline poisons the buffered writer, so callers must treat
// any send error as fatal for the connection (they all do: both sides
// tear the connection down and re-establish).
func (c *conn) send(f frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.writeTimeout > 0 {
		if err := c.net.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return err
		}
	}
	if err := c.enc.Encode(f); err != nil {
		return err
	}
	return c.w.Flush()
}

// recv decodes the next frame, honouring the deadline (zero means no
// deadline). Read deadlines are the liveness mechanism: a worker that
// stops streaming results or heartbeats trips the deadline and is
// treated as dead.
func (c *conn) recv(deadline time.Time) (frame, error) {
	if err := c.net.SetReadDeadline(deadline); err != nil {
		return frame{}, err
	}
	var f frame
	if err := c.dec.Decode(&f); err != nil {
		return frame{}, err
	}
	return f, nil
}

func (c *conn) close() error { return c.net.Close() }

// handshake runs the coordinator side of the hello exchange and records
// the negotiated version on the connection.
func (c *conn) handshake(timeout time.Duration) error {
	if err := c.send(frame{Type: frameHello, Version: ProtocolVersion}); err != nil {
		return fmt.Errorf("dist: hello to %s: %w", c.addr, err)
	}
	f, err := c.recv(time.Now().Add(timeout))
	if err != nil {
		return fmt.Errorf("dist: hello reply from %s: %w", c.addr, err)
	}
	if f.Type == frameError {
		return fmt.Errorf("dist: worker %s rejected hello: %s", c.addr, f.Error)
	}
	if f.Type != frameHelloOK || f.Version < MinProtocolVersion || f.Version > ProtocolVersion {
		return fmt.Errorf("dist: worker %s spoke %s v%d, want %s v%d..v%d",
			c.addr, f.Type, f.Version, frameHelloOK, MinProtocolVersion, ProtocolVersion)
	}
	c.version = f.Version // worker already replied with min(its, ours)
	c.parallelism = f.Parallelism
	return nil
}
