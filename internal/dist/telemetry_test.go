package dist

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/population"
)

// TestWorkerTelemetryFoldsIntoLabeledGauges runs a real two-connection
// campaign and asserts the coordinator turned the wire snapshots into
// per-worker labeled series and a populated /statusz table.
func TestWorkerTelemetryFoldsIntoLabeledGauges(t *testing.T) {
	w := startWorker(t)
	addr := w.Addr()

	reg := obs.NewRegistry()
	coord := fastCoord(addr)
	coord.Obs = &obs.Observer{Metrics: reg}

	const runs = 12
	results, err := coord.Run(testJob(), testSeed, runs, population.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != runs {
		t.Fatalf("got %d results, want %d", len(results), runs)
	}

	l := obs.Labels{"worker": addr}
	if got := reg.GaugeL(obs.MetricDistWorkerRunsServed, l).Value(); got != runs {
		t.Errorf("runs_served{worker=%s} = %v, want %d", addr, got, runs)
	}
	if got := reg.GaugeL(obs.MetricDistWorkerInflight, l).Value(); got != 0 {
		t.Errorf("inflight{worker=%s} = %v at job end, want 0", addr, got)
	}
	if got := reg.GaugeL(obs.MetricDistWorkerThroughput, l).Value(); got <= 0 {
		t.Errorf("throughput{worker=%s} = %v, want > 0", addr, got)
	}
	if got := reg.GaugeL(obs.MetricDistWorkerMeanRunSeconds, l).Value(); got <= 0 {
		t.Errorf("mean_run_seconds{worker=%s} = %v, want > 0", addr, got)
	}
	if got := reg.CounterL(obs.MetricDistWorkerChunks, l).Value(); got != 4 {
		t.Errorf("chunks{worker=%s} = %d, want 4 (12 runs / chunk size 3)", addr, got)
	}

	st := coord.Status()
	if !st.Done || st.LastError != "" {
		t.Errorf("status not done cleanly: %+v", st)
	}
	if st.Runs != runs || st.Chunks != 4 || st.ChunksCompleted != 4 || st.ChunksInFlight != 0 {
		t.Errorf("chunk accounting wrong: %+v", st)
	}
	if len(st.Workers) != 1 {
		t.Fatalf("%d worker rows, want 1: %+v", len(st.Workers), st.Workers)
	}
	row := st.Workers[0]
	if row.Addr != addr || row.RunsServed != runs || row.ChunksDone != 4 || row.Dead {
		t.Errorf("worker row wrong: %+v", row)
	}

	ws := w.Status()
	if ws.RunsServed != runs || ws.InFlight != 0 || ws.RunSeconds <= 0 || ws.ChunksServed != 4 {
		t.Errorf("worker self-status wrong: %+v", ws)
	}

	// Status marshals for /statusz.
	if _, err := json.Marshal(st); err != nil {
		t.Errorf("status not JSON-marshalable: %v", err)
	}
}

// TestTelemetryOmittedForV1Peer drives the worker over a raw v1
// connection and asserts no telemetry field ever appears on the wire —
// the version gate that keeps old coordinators decoding happily.
func TestTelemetryOmittedForV1Peer(t *testing.T) {
	w := startWorker(t)

	raw, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	nc := newConn(raw, 2*time.Second)
	defer nc.close()
	if err := nc.send(frame{Type: frameHello, Version: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := nc.recv(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != frameHelloOK || f.Version != 1 {
		t.Fatalf("v1 hello answered with %s v%d, want %s v1", f.Type, f.Version, frameHelloOK)
	}

	cfg := testJob().Config
	err = nc.send(frame{Type: frameRunChunk, ID: 7, Benchmark: testBench,
		Config: &cfg, Scale: testScale, BaseSeed: testSeed, Start: 0, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	for {
		f, err := nc.recv(time.Now().Add(10 * time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if f.Telemetry != nil {
			t.Fatalf("v1 peer received telemetry on %s frame", f.Type)
		}
		if f.Type == frameChunkDone {
			return
		}
		if f.Type == frameError {
			t.Fatalf("chunk failed: %s", f.Error)
		}
	}
}

// TestTelemetryAttachedForV2Peer is the inverse: a v2 connection must
// see a snapshot on chunk_done once the worker has served runs.
func TestTelemetryAttachedForV2Peer(t *testing.T) {
	w := startWorker(t)

	raw, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	nc := newConn(raw, 2*time.Second)
	defer nc.close()
	if err := nc.handshake(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if nc.version != ProtocolVersion {
		t.Fatalf("negotiated v%d, want v%d", nc.version, ProtocolVersion)
	}

	cfg := testJob().Config
	err = nc.send(frame{Type: frameRunChunk, ID: 7, Benchmark: testBench,
		Config: &cfg, Scale: testScale, BaseSeed: testSeed, Start: 0, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	for {
		f, err := nc.recv(time.Now().Add(10 * time.Second))
		if err != nil {
			t.Fatal(err)
		}
		switch f.Type {
		case frameChunkDone:
			if f.Telemetry == nil {
				t.Fatal("v2 chunk_done carried no telemetry")
			}
			if f.Telemetry.RunsServed != 3 || f.Telemetry.RunSeconds <= 0 {
				t.Fatalf("telemetry wrong: %+v", f.Telemetry)
			}
			return
		case frameError:
			t.Fatalf("chunk failed: %s", f.Error)
		}
	}
}
