package dist

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// pipePair builds a connected conn pair over an in-memory duplex pipe.
func pipePair() (*conn, *conn) {
	a, b := net.Pipe()
	return newConn(a, 0), newConn(b, 0)
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := pipePair()
	defer a.close()
	defer b.close()
	cfg := sim.DefaultConfig()
	want := frame{
		Type: frameRunChunk, ID: 9, Benchmark: "ferret", Config: &cfg,
		Scale: 0.5, BaseSeed: 1000, Start: 32, Count: 16,
	}
	go func() {
		if err := a.send(want); err != nil {
			t.Error(err)
		}
	}()
	got, err := b.recv(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.ID != want.ID || got.Benchmark != want.Benchmark ||
		got.Scale != want.Scale || got.BaseSeed != want.BaseSeed ||
		got.Start != want.Start || got.Count != want.Count {
		t.Errorf("round trip mangled frame: %+v", got)
	}
	if got.Config == nil || got.Config.Cores != cfg.Cores || got.Config.L2Size != cfg.L2Size {
		t.Errorf("config did not survive: %+v", got.Config)
	}
}

func TestResultFrameZeroOffset(t *testing.T) {
	// Offset 0 is a legitimate seed offset; it must round-trip even
	// though the field is omitempty on the wire.
	a, b := pipePair()
	defer a.close()
	defer b.close()
	go a.send(frame{Type: frameResult, ID: 1, Offset: 0, Metrics: map[string]float64{"m": 1.5}})
	got, err := b.recv(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got.Offset != 0 || got.Metrics["m"] != 1.5 {
		t.Errorf("zero offset mangled: %+v", got)
	}
}

func TestRecvDeadline(t *testing.T) {
	a, b := pipePair()
	defer a.close()
	defer b.close()
	if _, err := b.recv(time.Now().Add(30 * time.Millisecond)); err == nil {
		t.Error("recv without traffic should trip the deadline")
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	a, b := pipePair()
	defer a.close()
	defer b.close()
	go func() {
		f, err := b.recv(time.Now().Add(2 * time.Second))
		if err != nil || f.Type != frameHello {
			return
		}
		b.send(frame{Type: frameHelloOK, Version: ProtocolVersion + 1})
	}()
	err := a.handshake(2 * time.Second)
	if err == nil || !strings.Contains(err.Error(), "v2") {
		t.Errorf("version mismatch should be rejected, got %v", err)
	}
}

// TestSendWriteDeadlineUnsticksStalledReader is the regression test for
// the stalled-reader wedge: a peer that stops reading used to block
// send inside wmu forever (net.Pipe is unbuffered, so an unread write
// blocks exactly like a zero TCP window). With a write timeout, send
// must fail with a timeout instead.
func TestSendWriteDeadlineUnsticksStalledReader(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := newConn(a, 150*time.Millisecond)
	defer c.close()

	done := make(chan error, 1)
	go func() { done <- c.send(frame{Type: framePing}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("send to a reader that never reads should fail")
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Errorf("want a timeout error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send blocked despite the write deadline (stalled-reader wedge)")
	}
}

func TestSendWithoutTimeoutStillWorks(t *testing.T) {
	// Zero write timeout must not set any deadline (scripted test
	// conns and raw tooling rely on it).
	a, b := pipePair()
	defer a.close()
	defer b.close()
	go a.send(frame{Type: framePong})
	if f, err := b.recv(time.Now().Add(2 * time.Second)); err != nil || f.Type != framePong {
		t.Fatalf("recv: %v %+v", err, f)
	}
}

func TestBackoffBoundedAndJittered(t *testing.T) {
	b := newBackoff(10*time.Millisecond, 80*time.Millisecond, 1)
	prevMax := time.Duration(0)
	for i := 0; i < 12; i++ {
		d := b.next()
		if d < 5*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside jittered bounds", i, d)
		}
		if d > prevMax {
			prevMax = d
		}
	}
	if prevMax < 40*time.Millisecond {
		t.Errorf("backoff never grew: max %v", prevMax)
	}
	b.reset()
	if d := b.next(); d > 15*time.Millisecond {
		t.Errorf("reset did not shrink the delay: %v", d)
	}
}
