package dist

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// pipePair builds a connected conn pair over an in-memory duplex pipe.
func pipePair() (*conn, *conn) {
	a, b := net.Pipe()
	return newConn(a, 0), newConn(b, 0)
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := pipePair()
	defer a.close()
	defer b.close()
	cfg := sim.DefaultConfig()
	want := frame{
		Type: frameRunChunk, ID: 9, Benchmark: "ferret", Config: &cfg,
		Scale: 0.5, BaseSeed: 1000, Start: 32, Count: 16,
	}
	go func() {
		if err := a.send(want); err != nil {
			t.Error(err)
		}
	}()
	got, err := b.recv(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.ID != want.ID || got.Benchmark != want.Benchmark ||
		got.Scale != want.Scale || got.BaseSeed != want.BaseSeed ||
		got.Start != want.Start || got.Count != want.Count {
		t.Errorf("round trip mangled frame: %+v", got)
	}
	if got.Config == nil || got.Config.Cores != cfg.Cores || got.Config.L2Size != cfg.L2Size {
		t.Errorf("config did not survive: %+v", got.Config)
	}
}

func TestResultFrameZeroOffset(t *testing.T) {
	// Offset 0 is a legitimate seed offset; it must round-trip even
	// though the field is omitempty on the wire.
	a, b := pipePair()
	defer a.close()
	defer b.close()
	go a.send(frame{Type: frameResult, ID: 1, Offset: 0, Metrics: map[string]float64{"m": 1.5}})
	got, err := b.recv(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got.Offset != 0 || got.Metrics["m"] != 1.5 {
		t.Errorf("zero offset mangled: %+v", got)
	}
}

func TestRecvDeadline(t *testing.T) {
	a, b := pipePair()
	defer a.close()
	defer b.close()
	if _, err := b.recv(time.Now().Add(30 * time.Millisecond)); err == nil {
		t.Error("recv without traffic should trip the deadline")
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	a, b := pipePair()
	defer a.close()
	defer b.close()
	go func() {
		f, err := b.recv(time.Now().Add(2 * time.Second))
		if err != nil || f.Type != frameHello {
			return
		}
		b.send(frame{Type: frameHelloOK, Version: ProtocolVersion + 1})
	}()
	err := a.handshake(2 * time.Second)
	want := fmt.Sprintf("v%d", ProtocolVersion)
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("version mismatch should be rejected naming %s, got %v", want, err)
	}
}

// TestSendWriteDeadlineUnsticksStalledReader is the regression test for
// the stalled-reader wedge: a peer that stops reading used to block
// send inside wmu forever (net.Pipe is unbuffered, so an unread write
// blocks exactly like a zero TCP window). With a write timeout, send
// must fail with a timeout instead.
func TestSendWriteDeadlineUnsticksStalledReader(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := newConn(a, 150*time.Millisecond)
	defer c.close()

	done := make(chan error, 1)
	go func() { done <- c.send(frame{Type: framePing}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("send to a reader that never reads should fail")
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Errorf("want a timeout error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send blocked despite the write deadline (stalled-reader wedge)")
	}
}

func TestSendWithoutTimeoutStillWorks(t *testing.T) {
	// Zero write timeout must not set any deadline (scripted test
	// conns and raw tooling rely on it).
	a, b := pipePair()
	defer a.close()
	defer b.close()
	go a.send(frame{Type: framePong})
	if f, err := b.recv(time.Now().Add(2 * time.Second)); err != nil || f.Type != framePong {
		t.Fatalf("recv: %v %+v", err, f)
	}
}

func TestBackoffBoundedAndJittered(t *testing.T) {
	b := newBackoff(10*time.Millisecond, 80*time.Millisecond, 1)
	prevMax := time.Duration(0)
	for i := 0; i < 12; i++ {
		d := b.next()
		if d < 5*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside jittered bounds", i, d)
		}
		if d > prevMax {
			prevMax = d
		}
	}
	if prevMax < 40*time.Millisecond {
		t.Errorf("backoff never grew: max %v", prevMax)
	}
	b.reset()
	if d := b.next(); d > 15*time.Millisecond {
		t.Errorf("reset did not shrink the delay: %v", d)
	}
}

// TestResultBatchColumns pins the columnar batch invariants: add keeps
// the arrays aligned, refuses a metric key-set change without mutating
// the batch, reset keeps capacity but never leaks stale keys into the
// next batch, and validate rejects ragged peer input.
func TestResultBatchColumns(t *testing.T) {
	b := &ResultBatch{}
	if !b.add(3, map[string]float64{"ipc": 1.5, "mpki": 0.2}, 100, 7) {
		t.Fatal("first add refused")
	}
	if !b.add(4, map[string]float64{"ipc": 1.6, "mpki": 0.3}, 200, 9) {
		t.Fatal("same-key add refused")
	}
	if b.len() != 2 || b.Offsets[1] != 4 || b.Cycles[0] != 100 || b.Metrics["ipc"][1] != 1.6 {
		t.Fatalf("batch columns wrong: %+v", b)
	}
	if err := b.validate(); err != nil {
		t.Fatal(err)
	}
	// Key-set change: refused, batch untouched.
	if b.add(5, map[string]float64{"ipc": 1.7}, 300, 11) {
		t.Fatal("key-set change accepted into a non-empty batch")
	}
	if b.len() != 2 {
		t.Fatalf("refused add mutated the batch: len %d", b.len())
	}
	// Round-trip through the wire encoding.
	a, p := pipePair()
	defer a.close()
	defer p.close()
	go a.send(frame{Type: frameResultBatch, ID: 9, Batch: b})
	f, err := p.recv(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if f.Batch == nil || f.Batch.len() != 2 || f.Batch.Metrics["mpki"][1] != 0.3 {
		t.Fatalf("batch did not round-trip: %+v", f.Batch)
	}
	// Reset keeps the key columns for reuse but a different key set
	// afterwards must not leave stale zero-length columns behind.
	b.reset()
	if b.len() != 0 {
		t.Fatalf("reset left %d rows", b.len())
	}
	if !b.add(6, map[string]float64{"ipc": 1.8}, 400, 13) {
		t.Fatal("add to reset batch refused")
	}
	if err := b.validate(); err != nil {
		t.Fatalf("reset+shrunken key set produced a ragged batch: %v", err)
	}
	if _, ok := b.Metrics["mpki"]; ok {
		t.Error("stale metric column survived a key-set change")
	}
	// Ragged peer input must be rejected before indexing.
	bad := &ResultBatch{Offsets: []int{1, 2}, Cycles: []uint64{1, 2},
		ElapsedUS: []int64{1, 2}, Metrics: map[string][]float64{"ipc": {1.0}}}
	if err := bad.validate(); err == nil {
		t.Error("ragged batch validated")
	}
}
