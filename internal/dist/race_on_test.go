//go:build race

package dist

// raceEnabled reports whether the race detector is compiled in; timing
// assertions calibrated for production-speed execution skip under its
// ~10x slowdown.
const raceEnabled = true
