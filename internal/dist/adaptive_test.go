package dist

import (
	"bytes"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/sim"
)

// frameCounter tallies worker→coordinator frame types observed on the
// wire, one line accumulator per connection so interleaved connections
// don't shear each other's lines.
type frameCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

func (fc *frameCounter) inc(typ string) {
	fc.mu.Lock()
	if fc.counts == nil {
		fc.counts = make(map[string]int)
	}
	fc.counts[typ]++
	fc.mu.Unlock()
}

func (fc *frameCounter) get(typ string) int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.counts[typ]
}

// countingConn feeds every byte the coordinator reads through a line
// splitter and counts the decoded frame types.
type countingConn struct {
	net.Conn
	fc  *frameCounter
	acc []byte
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.acc = append(c.acc, p[:n]...)
		for {
			i := bytes.IndexByte(c.acc, '\n')
			if i < 0 {
				break
			}
			var f frame
			if json.Unmarshal(c.acc[:i], &f) == nil && f.Type != "" {
				c.fc.inc(f.Type)
			}
			c.acc = c.acc[i+1:]
		}
	}
	return n, err
}

// countingDial wraps the default dialer so every coordinator connection
// reports inbound frame types to fc.
func countingDial(fc *frameCounter) DialFunc {
	return func(network, address string, timeout time.Duration) (net.Conn, error) {
		nc, err := net.DialTimeout(network, address, timeout)
		if err != nil {
			return nil, err
		}
		return &countingConn{Conn: nc, fc: fc}, nil
	}
}

// TestV3FleetStreamsBatches: the v3 happy path end to end — a batching
// worker and an adaptive coordinator complete a campaign byte-identical
// to local, with results arriving as result_batch frames and zero
// legacy per-run result frames on the wire.
func TestV3FleetStreamsBatches(t *testing.T) {
	const runs = 24
	want := localPop(t, runs)
	w := startWorker(t)
	fc := &frameCounter{}
	c := fastCoord(w.Addr())
	c.ChunkTarget = 100 * time.Millisecond
	c.Dial = countingDial(fc)
	got, err := c.GeneratePopulation(testBench, sim.DefaultConfig(), testScale, runs, testSeed, population.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	checkPopEqual(t, got, want)
	if n := fc.get(frameResultBatch); n == 0 {
		t.Error("v3 fleet sent no result_batch frames")
	}
	if n := fc.get(frameResult); n != 0 {
		t.Errorf("v3 fleet sent %d per-run result frames, want 0", n)
	}
	// Batching must actually amortize: far fewer batch frames than runs.
	if n := fc.get(frameResultBatch); n > runs/2 {
		t.Errorf("%d result_batch frames for %d runs — batching is not amortizing", n, runs)
	}
}

// TestMixedVersionV2WorkerFallsBack is the negotiation satellite: a v3
// coordinator (adaptive sizing requested) against a worker that only
// speaks v2 must fall back to per-run result frames and fixed-size
// chunks, and the campaign must still complete byte-identically.
func TestMixedVersionV2WorkerFallsBack(t *testing.T) {
	const runs = 12
	want := localPop(t, runs)
	w := startWorker(t)
	w.maxVersion = 2 // simulate an old fleet binary
	fc := &frameCounter{}
	c := fastCoord(w.Addr()) // ChunkSize 3
	c.ChunkTarget = 100 * time.Millisecond
	c.Dial = countingDial(fc)
	got, err := c.GeneratePopulation(testBench, sim.DefaultConfig(), testScale, runs, testSeed, population.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	checkPopEqual(t, got, want)
	if n := fc.get(frameResultBatch); n != 0 {
		t.Errorf("v2 peer sent %d result_batch frames, want 0", n)
	}
	if n := fc.get(frameResult); n != runs {
		t.Errorf("v2 peer sent %d per-run result frames, want %d", n, runs)
	}
	// Below batchVersion the adaptive sizer must stand down: fixed
	// ChunkSize carving, runs/ChunkSize first-attempt chunks.
	if st := c.Status(); st.Chunks != 4 {
		t.Errorf("v2 fallback carved %d chunks, want 4 fixed-size chunks", st.Chunks)
	}
	// Telemetry (a v2 feature) still flows on the fallback path.
	if st := c.Status(); len(st.Workers) == 0 || st.Workers[0].RunsServed == 0 {
		t.Error("v2 fallback lost worker telemetry")
	}
}

// TestMixedVersionV1CoordinatorGetsPlainFrames drives the new worker
// with a raw v1 hello — the other direction of the skew matrix — and
// asserts the worker answers with plain per-run frames only.
func TestMixedVersionV1CoordinatorGetsPlainFrames(t *testing.T) {
	w := startWorker(t)
	c := dialRaw(t, w.Addr())
	if err := c.send(frame{Type: frameHello, Version: 1}); err != nil {
		t.Fatal(err)
	}
	if f := recvT(t, c); f.Type != frameHelloOK || f.Version != 1 {
		t.Fatalf("v1 hello answered with %s v%d", f.Type, f.Version)
	}
	cfg := sim.DefaultConfig()
	if err := c.send(frame{Type: frameRunChunk, ID: 3, Benchmark: testBench,
		Config: &cfg, Scale: testScale, BaseSeed: testSeed, Count: 5}); err != nil {
		t.Fatal(err)
	}
	results := 0
	for {
		f := recvT(t, c)
		switch f.Type {
		case frameHeartbeat:
		case frameResult:
			if f.Telemetry != nil {
				t.Error("v1 peer received telemetry")
			}
			results++
		case frameResultBatch:
			t.Fatal("v1 peer received a result_batch frame")
		case frameChunkDone:
			if results != 5 {
				t.Fatalf("chunk_done after %d per-run results, want 5", results)
			}
			return
		default:
			t.Fatalf("unexpected %q frame", f.Type)
		}
	}
}

// slowConn adds a fixed latency to every read and write — a distant or
// congested link. Unlike faultx delays it is unconditional and
// deterministic, so the throughput gap between workers is guaranteed.
type slowConn struct {
	net.Conn
	lag time.Duration
}

func (c *slowConn) Read(p []byte) (int, error) {
	time.Sleep(c.lag)
	return c.Conn.Read(p)
}

func (c *slowConn) Write(p []byte) (int, error) {
	time.Sleep(c.lag)
	return c.Conn.Write(p)
}

type slowListener struct {
	net.Listener
	lag time.Duration
}

func (l *slowListener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &slowConn{Conn: nc, lag: l.lag}, nil
}

// TestHeterogeneousFleetAdaptive is the scheduling satellite: an 8-slot
// worker and a single-slot worker behind a slow link share a campaign
// under adaptive sizing. The fast worker must serve proportionally more
// runs, no chunk may outlive the wall-time budget by more than 2x (plus
// one run's worth of slack — a run is not preemptible), and the
// assembled population must be byte-identical to a local run.
func TestHeterogeneousFleetAdaptive(t *testing.T) {
	const (
		runs   = 240
		target = 200 * time.Millisecond
	)
	want := localPop(t, runs)

	mkWorker := func(par int, lag time.Duration) *Worker {
		w := &Worker{Parallelism: par, HeartbeatEvery: 20 * time.Millisecond}
		if lag > 0 {
			w.ListenFunc = func(network, address string) (net.Listener, error) {
				ln, err := net.Listen(network, address)
				if err != nil {
					return nil, err
				}
				return &slowListener{Listener: ln, lag: lag}, nil
			}
		}
		if err := w.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		go func() { _ = w.Serve() }()
		t.Cleanup(func() { w.Close() })
		return w
	}
	fast := mkWorker(8, 0)
	slow := mkWorker(1, 8*time.Millisecond)

	trace := &syncBuffer{}
	c := fastCoord(fast.Addr(), slow.Addr())
	c.ChunkTarget = target
	c.Obs = &obs.Observer{Tracer: obs.NewTracer(trace)}
	var runMu sync.Mutex
	var maxRun time.Duration
	h := population.RunHooks{OnRunDone: func(i int, seed uint64, res *sim.Result, err error, elapsed time.Duration) {
		runMu.Lock()
		if elapsed > maxRun {
			maxRun = elapsed
		}
		runMu.Unlock()
	}}
	got, err := c.GeneratePopulation(testBench, sim.DefaultConfig(), testScale, runs, testSeed, h)
	if err != nil {
		t.Fatal(err)
	}
	checkPopEqual(t, got, want)

	fs, ss := fast.Status(), slow.Status()
	if fs.RunsServed+ss.RunsServed != runs {
		t.Fatalf("fleet served %d+%d runs, want %d total", fs.RunsServed, ss.RunsServed, runs)
	}
	if fs.RunsServed < ss.RunsServed*3/2 {
		t.Errorf("8-slot worker served %d runs vs single-slot %d; want at least 1.5x",
			fs.RunsServed, ss.RunsServed)
	}

	// No dispatched chunk may blow the wall-time budget: 2x the target
	// plus the campaign's slowest single run (chunks are carved in whole
	// runs, and a run cannot be preempted mid-flight). The race detector
	// inflates run cost ~10x mid-campaign, invalidating every throughput
	// estimate the sizes were derived from — skip the wall-time check
	// there, keep the sharing and byte-identity ones.
	runMu.Lock()
	budget := 2*target + maxRun
	runMu.Unlock()
	type span struct {
		Kind  string `json:"kind"`
		Name  string `json:"name"`
		DurUS int64  `json:"dur_us"`
		Attrs struct {
			Count int `json:"count"`
		} `json:"attrs"`
	}
	chunks := 0
	for _, line := range bytes.Split(trace.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var sp span
		if err := json.Unmarshal(line, &sp); err != nil {
			t.Fatalf("bad trace line %s: %v", line, err)
		}
		if sp.Kind != "span" || sp.Name != "dist.chunk" {
			continue
		}
		chunks++
		if d := time.Duration(sp.DurUS) * time.Microsecond; d > budget && !raceEnabled {
			t.Errorf("chunk of %d runs took %v, budget %v (2x %v target + %v slowest run)",
				sp.Attrs.Count, d, budget, target, maxRun)
		}
	}
	if chunks < 2 {
		t.Fatalf("trace recorded %d dispatched chunks, want the fleet sharing work", chunks)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for shared trace sinks.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestNextChunkSize pins the sizing policy: fixed below v3 or with the
// target unset, rate x target when adaptive, seeded by hello
// parallelism before any telemetry, and tail-capped to half a fair
// share of what remains.
func TestNextChunkSize(t *testing.T) {
	c := &Coordinator{Workers: []string{"a", "b"}, ChunkSize: 7}
	// Adaptive off → fixed, regardless of version.
	if got := c.nextChunkSize("a", ProtocolVersion, 1000); got != 7 {
		t.Errorf("ChunkTarget=0: size %d, want fixed 7", got)
	}
	c.ChunkTarget = time.Second
	// v2 peer → fixed even with the target set.
	if got := c.nextChunkSize("a", 2, 1000); got != 7 {
		t.Errorf("v2 peer: size %d, want fixed 7", got)
	}
	// No state at all → minimum chunk of 1.
	if got := c.nextChunkSize("a", 3, 1000); got != 1 {
		t.Errorf("no estimate: size %d, want 1", got)
	}
	// hello_ok parallelism seeds the first estimate (~1 run/sec/slot).
	c.noteWorkerHello("a", 6)
	if got := c.nextChunkSize("a", 3, 1000); got != 6 {
		t.Errorf("hello-seeded: size %d, want 6", got)
	}
	// A windowed throughput sample overrides the seed.
	c.stMu.Lock()
	ws := c.workerLocked("a")
	ws.windowed = true
	ws.ThroughputRPS = 40
	c.stMu.Unlock()
	if got := c.nextChunkSize("a", 3, 1000); got != 40 {
		t.Errorf("windowed 40 rps x 1s: size %d, want 40", got)
	}
	// Tail cap: never more than half a fair share of pending runs
	// (2 live workers → pending/4, rounded up).
	if got := c.nextChunkSize("a", 3, 30); got != 8 {
		t.Errorf("tail: size %d, want ceil(30/4)=8", got)
	}
}
