// Package dist distributes SPA campaigns across worker processes. SPA
// sample collection is embarrassingly parallel over seeds (Sec. 4.3 of
// the paper runs batches of independent seeded executions), so the
// subsystem shards a campaign's seed range into contiguous chunks and
// farms them out to workers over TCP, exactly the shape of distributed
// SMC engines (Bulychev et al., "Distributed Parametric and Statistical
// Model Checking").
//
// The replicability contract carries over unchanged: every run is
// identified by its absolute seed offset, results are committed by
// offset, and the coordinator returns samples ordered by seed offset —
// so a distributed campaign is byte-identical to a local one for any
// worker count, chunk size, or arrival order.
//
// Topology: a Coordinator (the campaign process) connects out to one or
// more Worker servers (cmd/spaworker). The wire protocol is
// newline-delimited JSON frames over a plain TCP connection — stdlib
// only, one connection per worker, chunks dispatched pull-style so fast
// workers naturally take more of the seed range.
//
// Failure layer: per-chunk deadlines, read and write deadlines on every
// frame, heartbeats during long chunks, idle-connection reaping and TCP
// keepalive on the worker side, bounded exponential backoff with jitter
// on reconnects, automatic re-dispatch of chunks from dead or slow
// workers to healthy ones, and graceful degradation to in-process
// execution when no worker is reachable (a coordinator with no workers
// at all is simply a local runner).
//
// The transport is injectable — Coordinator.Dial and Worker.ListenFunc
// replace the real network — which is how internal/faultx subjects the
// whole layer to deterministic, seeded chaos (delays, stalls, abrupt
// closes, truncated and duplicated frames, refused connects) and how
// the chaos soak test proves the byte-identity contract holds under
// network pathology, not just clean failures.
package dist
