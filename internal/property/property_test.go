package property

import (
	"testing"

	"repro/internal/stl"
)

func trace(t *testing.T, step float64, signals map[string][]float64) *stl.Trace {
	t.Helper()
	tr, err := stl.NewTrace(step)
	if err != nil {
		t.Fatal(err)
	}
	for name, vals := range signals {
		if err := tr.Add(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func mustCheck(t *testing.T, p Property, e Execution) bool {
	t.Helper()
	ok, err := p.Check(e)
	if err != nil {
		t.Fatalf("property %q: %v", p.Name, err)
	}
	return ok
}

func TestMetricCompare(t *testing.T) {
	e := Execution{Metrics: map[string]float64{"perf": 1.5, "power": 80}}
	if !mustCheck(t, MetricCompare("perf", stl.GT, 1.0), e) {
		t.Error("perf > 1.0 should hold")
	}
	if mustCheck(t, MetricCompare("power", stl.LT, 50), e) {
		t.Error("power < 50 should fail")
	}
	if !mustCheck(t, MetricCompare("power", stl.LE, 80), e) {
		t.Error("power <= 80 should hold")
	}
	if _, err := MetricCompare("nope", stl.GT, 0).Check(e); err == nil {
		t.Error("missing metric should error")
	}
}

func TestMetricBetween(t *testing.T) {
	e := Execution{Metrics: map[string]float64{"mttf": 5}}
	if !mustCheck(t, MetricBetween("mttf", 10, 1), e) {
		t.Error("10 > 5 > 1 should hold")
	}
	if mustCheck(t, MetricBetween("mttf", 5, 1), e) {
		t.Error("strict upper bound should exclude 5")
	}
	if mustCheck(t, MetricBetween("mttf", 10, 5), e) {
		t.Error("strict lower bound should exclude 5")
	}
}

func TestTimeInState(t *testing.T) {
	e := Execution{Trace: trace(t, 100, map[string][]float64{
		"mispredict": {1, 0, 0, 1, 0, 0, 0, 0, 0, 0}, // 20% active
	})}
	if !mustCheck(t, TimeInState("mispredict", stl.LT, 0.25), e) {
		t.Error("time-in-state 0.2 < 0.25 should hold")
	}
	if mustCheck(t, TimeInState("mispredict", stl.LT, 0.1), e) {
		t.Error("time-in-state 0.2 < 0.1 should fail")
	}
	if _, err := TimeInState("x", stl.LT, 1).Check(Execution{}); err == nil {
		t.Error("missing trace should error")
	}
}

func TestAvgCyclesPerEvent(t *testing.T) {
	// 4 events over a 1000-cycle trace: avg 250 cycles/event.
	e := Execution{Trace: trace(t, 100, map[string][]float64{
		"tlb_miss": {1, 0, 2, 0, 0, 1, 0, 0, 0, 0},
	})}
	if !mustCheck(t, AvgCyclesPerEvent("tlb_miss", stl.GT, 200), e) {
		t.Error("avg 250 > 200 should hold")
	}
	if mustCheck(t, AvgCyclesPerEvent("tlb_miss", stl.GT, 300), e) {
		t.Error("avg 250 > 300 should fail")
	}
	// Zero events: average is +Inf.
	quiet := Execution{Trace: trace(t, 100, map[string][]float64{
		"tlb_miss": {0, 0, 0},
	})}
	if !mustCheck(t, AvgCyclesPerEvent("tlb_miss", stl.GT, 1e12), quiet) {
		t.Error("no events: avg +Inf > anything should hold")
	}
	if mustCheck(t, AvgCyclesPerEvent("tlb_miss", stl.LT, 1e12), quiet) {
		t.Error("no events: avg +Inf < anything should fail")
	}
}

func TestMetricImplication(t *testing.T) {
	e := Execution{Metrics: map[string]float64{"power": 90, "perf": 2.0}}
	if !mustCheck(t, MetricImplication("power", stl.GT, 80, "perf", stl.GT, 1.5), e) {
		t.Error("90>80 -> 2.0>1.5 should hold")
	}
	if mustCheck(t, MetricImplication("power", stl.GT, 80, "perf", stl.GT, 2.5), e) {
		t.Error("90>80 -> 2.0>2.5 should fail")
	}
	if !mustCheck(t, MetricImplication("power", stl.GT, 95, "perf", stl.GT, 99), e) {
		t.Error("false antecedent should make implication hold")
	}
	// Antecedent metric missing: error. Consequent metric missing only
	// matters when the antecedent holds.
	if _, err := MetricImplication("nope", stl.GT, 0, "perf", stl.GT, 0).Check(e); err == nil {
		t.Error("missing antecedent metric should error")
	}
	if _, err := MetricImplication("power", stl.GT, 80, "nope", stl.GT, 0).Check(e); err == nil {
		t.Error("missing consequent metric should error when antecedent holds")
	}
}

func TestEventWithin(t *testing.T) {
	// Errors at t=0 and t=500; second events at t=100 (within 200 of the
	// first) and nothing after the second.
	e := Execution{Trace: trace(t, 100, map[string][]float64{
		"err1": {1, 0, 0, 0, 0, 1, 0, 0, 0, 0},
		"err2": {0, 1, 0, 0, 0, 0, 0, 0, 0, 0},
	})}
	// Fraction followed-within-200 = 1/2.
	if !mustCheck(t, EventWithin("err1", "err2", 200, stl.LE, 0.5), e) {
		t.Error("P[follow] = 0.5 ≤ 0.5 should hold")
	}
	if mustCheck(t, EventWithin("err1", "err2", 200, stl.LT, 0.5), e) {
		t.Error("P[follow] = 0.5 < 0.5 should fail")
	}
	// No event1 occurrences: vacuously true.
	quiet := Execution{Trace: trace(t, 100, map[string][]float64{
		"err1": {0, 0}, "err2": {0, 0},
	})}
	if !mustCheck(t, EventWithin("err1", "err2", 200, stl.LT, 0.01), quiet) {
		t.Error("no occurrences should be vacuously true")
	}
}

func TestStayInStateUntil(t *testing.T) {
	// Sprint entered at t=0; state holds through the alert at t=300.
	good := Execution{Trace: trace(t, 100, map[string][]float64{
		"enter":  {1, 0, 0, 0, 0},
		"sprint": {1, 1, 1, 1, 0},
		"alert":  {0, 0, 0, 1, 0},
	})}
	if !mustCheck(t, StayInStateUntil("enter", "sprint", "alert", stl.GE, 1.0), good) {
		t.Error("staying until alert should make P = 1")
	}
	// Sprint collapses before the alert.
	bad := Execution{Trace: trace(t, 100, map[string][]float64{
		"enter":  {1, 0, 0, 0, 0},
		"sprint": {1, 0, 0, 0, 0},
		"alert":  {0, 0, 0, 1, 0},
	})}
	if mustCheck(t, StayInStateUntil("enter", "sprint", "alert", stl.GE, 1.0), bad) {
		t.Error("early exit should make P = 0")
	}
	if !mustCheck(t, StayInStateUntil("enter", "sprint", "alert", stl.LT, 0.5), bad) {
		t.Error("P = 0 < 0.5 should hold")
	}
	// No entries: vacuous.
	quiet := Execution{Trace: trace(t, 100, map[string][]float64{
		"enter": {0, 0}, "sprint": {0, 0}, "alert": {0, 0},
	})}
	if !mustCheck(t, StayInStateUntil("enter", "sprint", "alert", stl.GE, 1.0), quiet) {
		t.Error("no entries should be vacuously true")
	}
}

func TestConditionalEventProb(t *testing.T) {
	// In-state 50% of the time; event fires in 2 of 5 in-state samples.
	e := Execution{Trace: trace(t, 100, map[string][]float64{
		"handling": {1, 1, 1, 1, 1, 0, 0, 0, 0, 0},
		"new_miss": {1, 0, 1, 0, 0, 1, 1, 1, 0, 0},
	})}
	// Guard: P[state]=0.5 > 0.4 holds; conditional P = 2/5 = 0.4.
	if !mustCheck(t, ConditionalEventProb("new_miss", "handling", stl.GT, 0.4, stl.LT, 0.5), e) {
		t.Error("0.4 < 0.5 should hold")
	}
	if mustCheck(t, ConditionalEventProb("new_miss", "handling", stl.GT, 0.4, stl.LT, 0.3), e) {
		t.Error("0.4 < 0.3 should fail")
	}
	// Guard fails: vacuously true regardless of the event rate.
	if !mustCheck(t, ConditionalEventProb("new_miss", "handling", stl.GT, 0.9, stl.LT, 0.0001), e) {
		t.Error("failed guard should be vacuously true")
	}
}

func TestLatencyImplication(t *testing.T) {
	e := Execution{Metrics: map[string]float64{"lat_r": 120, "lat_s": 250}}
	if !mustCheck(t, LatencyImplication("lat_r", stl.GT, 100, "lat_s", stl.GT, 200), e) {
		t.Error("latency implication should hold")
	}
}

func TestFromSTLAndParse(t *testing.T) {
	e := Execution{Trace: trace(t, 100, map[string][]float64{
		"ipc": {0.9, 0.8, 0.7},
	})}
	p, err := ParseSTL("G[0,200](ipc > 0.5)")
	if err != nil {
		t.Fatal(err)
	}
	if !mustCheck(t, p, e) {
		t.Error("G(ipc > 0.5) should hold")
	}
	p2, err := ParseSTL("F[0,200](ipc > 0.85)")
	if err != nil {
		t.Fatal(err)
	}
	if !mustCheck(t, p2, e) {
		t.Error("F(ipc > 0.85) should hold at i=0")
	}
	if _, err := ParseSTL("not valid ((("); err == nil {
		t.Error("bad STL should error")
	}
	if _, err := p.Check(Execution{}); err == nil {
		t.Error("STL property without a trace should error")
	}
}

func TestOutcomes(t *testing.T) {
	execs := []Execution{
		{Metrics: map[string]float64{"x": 1}},
		{Metrics: map[string]float64{"x": 5}},
		{Metrics: map[string]float64{"x": 10}},
	}
	out, err := MetricCompare("x", stl.GT, 3).Outcomes(execs)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("outcome[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Error propagation includes the property name and index.
	execs = append(execs, Execution{Metrics: map[string]float64{"y": 0}})
	if _, err := MetricCompare("x", stl.GT, 3).Outcomes(execs); err == nil {
		t.Error("missing metric in one execution should error")
	}
}

func TestNilEvaluator(t *testing.T) {
	var p Property
	if _, err := p.Check(Execution{}); err == nil {
		t.Error("zero-value Property should error, not panic")
	}
}

func TestFromSTLRobust(t *testing.T) {
	e := Execution{Trace: trace(t, 1, map[string][]float64{
		"temp": {60, 70, 74},
	})}
	f := stl.Globally{I: stl.Whole, F: stl.Atom{Signal: "temp", Op: stl.LT, Threshold: 78}}
	// Minimum headroom is 78-74 = 4 degrees.
	if !mustCheck(t, FromSTLRobust(f, 3), e) {
		t.Error("margin 3 should hold with 4 degrees of headroom")
	}
	if mustCheck(t, FromSTLRobust(f, 5), e) {
		t.Error("margin 5 should fail with 4 degrees of headroom")
	}
	if _, err := FromSTLRobust(f, 0).Check(Execution{}); err == nil {
		t.Error("missing trace should error")
	}
}

func TestRobustnessValues(t *testing.T) {
	f := stl.Globally{I: stl.Whole, F: stl.Atom{Signal: "temp", Op: stl.LT, Threshold: 78}}
	execs := []Execution{
		{Trace: trace(t, 1, map[string][]float64{"temp": {60, 74}})}, // headroom 4
		{Trace: trace(t, 1, map[string][]float64{"temp": {60, 70}})}, // headroom 8
		{Trace: trace(t, 1, map[string][]float64{"temp": {60, 80}})}, // violated by 2
	}
	rhos, err := RobustnessValues(f, execs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 8, -2}
	for i := range want {
		if rhos[i] != want[i] {
			t.Errorf("rho[%d] = %g, want %g", i, rhos[i], want[i])
		}
	}
	execs = append(execs, Execution{})
	if _, err := RobustnessValues(f, execs); err == nil {
		t.Error("missing trace should error")
	}
}
