// Package property implements the paper's Table 1: the nine property
// templates computer architects evaluate with SMC. Each template constructor
// returns a Property — a named boolean predicate over one execution — whose
// outcomes feed the SMC engine (paper eq. 2). Templates 1–5 and 7 operate on
// scalar end-of-run metrics; templates 3, 4, 6, 8 and 9 operate on the
// execution's sampled trace. FromSTL adapts any internal/stl formula.
//
// The paper notes (Sec. 3.1) that every experiment in ISCA 2022 maps onto
// templates 1–4; the richer templates are the headroom SMC offers.
package property

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stl"
)

// Execution is one run of a system: its end-of-run scalar metrics plus an
// optional sampled trace for temporal properties.
type Execution struct {
	Metrics map[string]float64
	Trace   *stl.Trace
}

// Metric returns a scalar metric by name.
func (e Execution) Metric(name string) (float64, error) {
	v, ok := e.Metrics[name]
	if !ok {
		return 0, fmt.Errorf("property: execution has no metric %q", name)
	}
	return v, nil
}

// Property is a named boolean predicate over one execution.
type Property struct {
	Name string
	Eval func(Execution) (bool, error)
}

// Check evaluates the property on an execution.
func (p Property) Check(e Execution) (bool, error) {
	if p.Eval == nil {
		return false, errors.New("property: nil evaluator")
	}
	return p.Eval(e)
}

// Outcomes evaluates the property over a slice of executions, producing the
// boolean sample the SMC engine consumes.
func (p Property) Outcomes(execs []Execution) ([]bool, error) {
	out := make([]bool, len(execs))
	for i, e := range execs {
		ok, err := p.Check(e)
		if err != nil {
			return nil, fmt.Errorf("property %q on execution %d: %w", p.Name, i, err)
		}
		out[i] = ok
	}
	return out, nil
}

func cmp(op stl.CmpOp, v, thr float64) bool {
	switch op {
	case stl.LT:
		return v < thr
	case stl.LE:
		return v <= thr
	case stl.GT:
		return v > thr
	case stl.GE:
		return v >= thr
	case stl.EQ:
		return v == thr
	default:
		return v != thr
	}
}

// MetricCompare is Table 1 template 1: "metric ≷ threshold"
// (e.g. performance > A, power < B).
func MetricCompare(metric string, op stl.CmpOp, thr float64) Property {
	return Property{
		Name: fmt.Sprintf("%s %v %g", metric, op, thr),
		Eval: func(e Execution) (bool, error) {
			v, err := e.Metric(metric)
			if err != nil {
				return false, err
			}
			return cmp(op, v, thr), nil
		},
	}
}

// MetricBetween is Table 1 template 2: "threshold1 > metric > threshold2"
// (strict on both sides, as written in the paper).
func MetricBetween(metric string, hi, lo float64) Property {
	return Property{
		Name: fmt.Sprintf("%g > %s > %g", hi, metric, lo),
		Eval: func(e Execution) (bool, error) {
			v, err := e.Metric(metric)
			if err != nil {
				return false, err
			}
			return v > lo && v < hi, nil
		},
	}
}

// stateActive treats a trace signal as a boolean state: active when > 0.5.
const stateThreshold = 0.5

// TimeInState is Table 1 template 3: "%time in state ≷ threshold"
// (e.g. %time handling mispredictions < A). The state signal is boolean
// (active when > 0.5); thr is a fraction in [0, 1].
func TimeInState(state string, op stl.CmpOp, thr float64) Property {
	return Property{
		Name: fmt.Sprintf("%%time(%s) %v %g", state, op, thr),
		Eval: func(e Execution) (bool, error) {
			frac, err := fractionActive(e.Trace, state)
			if err != nil {
				return false, err
			}
			return cmp(op, frac, thr), nil
		},
	}
}

func fractionActive(t *stl.Trace, state string) (float64, error) {
	if t == nil {
		return 0, errors.New("property: execution has no trace")
	}
	sig, err := t.Signal(state)
	if err != nil {
		return 0, err
	}
	if len(sig) == 0 {
		return 0, errors.New("property: empty trace")
	}
	active := 0
	for _, v := range sig {
		if v > stateThreshold {
			active++
		}
	}
	return float64(active) / float64(len(sig)), nil
}

// AvgCyclesPerEvent is Table 1 template 4: "avg #cycles/event ≷ threshold"
// (e.g. avg #cycles between TLB misses > A). The event signal carries the
// count of events per sample interval. With zero events the average is +Inf,
// so "avg > A" is true and "avg < A" is false.
func AvgCyclesPerEvent(event string, op stl.CmpOp, thr float64) Property {
	return Property{
		Name: fmt.Sprintf("avgCycles(%s) %v %g", event, op, thr),
		Eval: func(e Execution) (bool, error) {
			if e.Trace == nil {
				return false, errors.New("property: execution has no trace")
			}
			sig, err := e.Trace.Signal(event)
			if err != nil {
				return false, err
			}
			total := 0.0
			for _, v := range sig {
				total += v
			}
			avg := math.Inf(1)
			if total > 0 {
				avg = e.Trace.Duration() / total
			}
			return cmp(op, avg, thr), nil
		},
	}
}

// MetricImplication is Table 1 template 5:
// "metric1 ≷ threshold1 → metric2 ≷ threshold2"
// (e.g. power > A → performance > B).
func MetricImplication(m1 string, op1 stl.CmpOp, t1 float64, m2 string, op2 stl.CmpOp, t2 float64) Property {
	return Property{
		Name: fmt.Sprintf("%s %v %g -> %s %v %g", m1, op1, t1, m2, op2, t2),
		Eval: func(e Execution) (bool, error) {
			v1, err := e.Metric(m1)
			if err != nil {
				return false, err
			}
			if !cmp(op1, v1, t1) {
				return true, nil
			}
			v2, err := e.Metric(m2)
			if err != nil {
				return false, err
			}
			return cmp(op2, v2, t2), nil
		},
	}
}

// EventWithin is Table 1 template 6:
// "event1 occurs → Prob[event2 occurs within W cycles] ≷ threshold"
// (e.g. if an error occurs, the probability of a second error within C
// cycles is < PB). Both events are count signals; the per-execution
// probability is the fraction of event1 occurrences followed by an event2
// within W time units. An execution without any event1 occurrence satisfies
// the property vacuously.
func EventWithin(e1, e2 string, window float64, op stl.CmpOp, thr float64) Property {
	return Property{
		Name: fmt.Sprintf("%s -> P[%s within %g] %v %g", e1, e2, window, op, thr),
		Eval: func(e Execution) (bool, error) {
			frac, n, err := followFraction(e.Trace, e1, e2, window, nil)
			if err != nil {
				return false, err
			}
			if n == 0 {
				return true, nil
			}
			return cmp(op, frac, thr), nil
		},
	}
}

// StayInStateUntil is Table 1 template 8:
// "event1 occurs → Prob[stay in state until event2] ≷ threshold"
// (e.g. if we enter the sprinting state, the probability of staying there
// until the thermal alert is < PA). For each event1 occurrence, the success
// condition is the STL Until: the state holds from the occurrence until an
// event2 fires. Executions without event1 occurrences are vacuously true.
func StayInStateUntil(e1, state, e2 string, op stl.CmpOp, thr float64) Property {
	name := fmt.Sprintf("%s -> P[%s U %s] %v %g", e1, state, e2, op, thr)
	return Property{
		Name: name,
		Eval: func(e Execution) (bool, error) {
			if e.Trace == nil {
				return false, errors.New("property: execution has no trace")
			}
			until := stl.Until{
				I: stl.Whole,
				A: stl.Atom{Signal: state, Op: stl.GT, Threshold: stateThreshold},
				B: stl.Atom{Signal: e2, Op: stl.GT, Threshold: stateThreshold},
			}
			sig, err := e.Trace.Signal(e1)
			if err != nil {
				return false, err
			}
			occ, success := 0, 0
			for i, v := range sig {
				if v > stateThreshold {
					occ++
					ok, err := until.Sat(e.Trace, i)
					if err != nil {
						return false, err
					}
					if ok {
						success++
					}
				}
			}
			if occ == 0 {
				return true, nil
			}
			return cmp(op, float64(success)/float64(occ), thr), nil
		},
	}
}

// ConditionalEventProb is Table 1 template 9:
// "Prob[event when Prob[state] ≷ threshold1] ≷ threshold2"
// (e.g. Prob[new TLB miss when Prob[handling old TLB miss] > PA] < PB).
// The guard compares the execution's fraction of time in the state against
// threshold1; when the guard fails the property holds vacuously. Otherwise
// the conditional frequency of the event in state-active samples is
// compared against threshold2.
func ConditionalEventProb(event, state string, stateOp stl.CmpOp, t1 float64, op stl.CmpOp, t2 float64) Property {
	name := fmt.Sprintf("P[%s | P[%s] %v %g] %v %g", event, state, stateOp, t1, op, t2)
	return Property{
		Name: name,
		Eval: func(e Execution) (bool, error) {
			frac, err := fractionActive(e.Trace, state)
			if err != nil {
				return false, err
			}
			if !cmp(stateOp, frac, t1) {
				return true, nil
			}
			stateSig, err := e.Trace.Signal(state)
			if err != nil {
				return false, err
			}
			eventSig, err := e.Trace.Signal(event)
			if err != nil {
				return false, err
			}
			inState, hits := 0, 0
			for i := range stateSig {
				if stateSig[i] > stateThreshold {
					inState++
					if eventSig[i] > stateThreshold {
						hits++
					}
				}
			}
			if inState == 0 {
				return true, nil
			}
			return cmp(op, float64(hits)/float64(inState), t2), nil
		},
	}
}

// LatencyImplication is Table 1 template 7:
// "event1's latency ≷ threshold1 → event2's latency ≷ threshold2"
// (e.g. service time for request R > A → service time for request S > B).
// Latencies are scalar metrics, so this is template 5 over latency metrics;
// it is kept as its own constructor to mirror the paper's table.
func LatencyImplication(lat1 string, op1 stl.CmpOp, t1 float64, lat2 string, op2 stl.CmpOp, t2 float64) Property {
	p := MetricImplication(lat1, op1, t1, lat2, op2, t2)
	p.Name = "latency: " + p.Name
	return p
}

// followFraction computes, over occurrences of e1 (samples with value >
// stateThreshold), the fraction followed by an occurrence of e2 within the
// given window. The optional filter restricts which e1 samples count.
func followFraction(t *stl.Trace, e1, e2 string, window float64, filter func(i int) bool) (frac float64, occurrences int, err error) {
	if t == nil {
		return 0, 0, errors.New("property: execution has no trace")
	}
	sig1, err := t.Signal(e1)
	if err != nil {
		return 0, 0, err
	}
	within := stl.Eventually{
		I: stl.Interval{Lo: 0, Hi: window},
		F: stl.Atom{Signal: e2, Op: stl.GT, Threshold: stateThreshold},
	}
	success := 0
	for i, v := range sig1 {
		if v <= stateThreshold {
			continue
		}
		if filter != nil && !filter(i) {
			continue
		}
		occurrences++
		ok, err := within.Sat(t, i)
		if err != nil {
			return 0, 0, err
		}
		if ok {
			success++
		}
	}
	if occurrences == 0 {
		return 0, 0, nil
	}
	return float64(success) / float64(occurrences), occurrences, nil
}

// FromSTL adapts an STL formula into a property evaluated at the start of
// the execution's trace (the conventional t = 0 anchoring).
func FromSTL(f stl.Formula) Property {
	return Property{
		Name: f.String(),
		Eval: func(e Execution) (bool, error) {
			if e.Trace == nil {
				return false, errors.New("property: execution has no trace")
			}
			if e.Trace.Len() == 0 {
				return false, errors.New("property: empty trace")
			}
			return f.Sat(e.Trace, 0)
		},
	}
}

// ParseSTL parses an STL formula (internal/stl syntax) into a Property.
func ParseSTL(input string) (Property, error) {
	f, err := stl.Parse(input)
	if err != nil {
		return Property{}, err
	}
	return FromSTL(f), nil
}

// FromSTLRobust returns a property that holds when the formula's
// quantitative robustness at the start of the trace is at least margin —
// "satisfied with headroom". A margin of 0 accepts boundary satisfaction;
// positive margins demand slack, the quantitative-verification upgrade on
// boolean STL checking.
func FromSTLRobust(f stl.Formula, margin float64) Property {
	return Property{
		Name: fmt.Sprintf("ρ(%s) >= %g", f.String(), margin),
		Eval: func(e Execution) (bool, error) {
			rho, err := robustnessAt(e, f)
			if err != nil {
				return false, err
			}
			return rho >= margin, nil
		},
	}
}

// RobustnessValues evaluates the formula's robustness on each execution,
// producing a scalar sample that SPA can build confidence intervals over:
// "with confidence C, at least F of executions satisfy φ with margin in
// [lo, hi]".
func RobustnessValues(f stl.Formula, execs []Execution) ([]float64, error) {
	out := make([]float64, len(execs))
	for i, e := range execs {
		rho, err := robustnessAt(e, f)
		if err != nil {
			return nil, fmt.Errorf("property: robustness on execution %d: %w", i, err)
		}
		out[i] = rho
	}
	return out, nil
}

func robustnessAt(e Execution, f stl.Formula) (float64, error) {
	if e.Trace == nil {
		return 0, errors.New("property: execution has no trace")
	}
	if e.Trace.Len() == 0 {
		return 0, errors.New("property: empty trace")
	}
	return f.Robustness(e.Trace, 0)
}
