package popcache

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/population"
	"repro/internal/sim"
)

func testKey() Key {
	return Key{
		Benchmark: "swaptions",
		Config:    sim.DefaultConfig(),
		Scale:     0.05,
		BaseSeed:  7,
		Runs:      4,
	}
}

func generate(t *testing.T, k Key) *population.Population {
	t.Helper()
	pop, err := population.Generate(k.Benchmark, k.Config, k.Scale, k.Runs, k.BaseSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

// popBytes renders a population in its exact on-disk form, so comparisons
// are byte-for-byte rather than approximate.
func popBytes(t *testing.T, p *population.Population) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHashStableAndSensitive(t *testing.T) {
	k := testKey()
	h := k.Hash()
	if len(h) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", h)
	}
	if k.Hash() != h {
		t.Fatal("hash of identical key differs")
	}
	// Every recipe ingredient must perturb the address; a collision on any
	// one of them would let a hit return the wrong population.
	mutations := map[string]Key{}
	m := k
	m.Benchmark = "ferret"
	mutations["benchmark"] = m
	m = k
	m.Scale = 0.06
	mutations["scale"] = m
	m = k
	m.BaseSeed = 8
	mutations["seed"] = m
	m = k
	m.Runs = 5
	mutations["runs"] = m
	m = k
	m.Config.L2Size *= 2
	mutations["config"] = m
	for name, mk := range mutations {
		if mk.Hash() == h {
			t.Errorf("changing %s did not change the hash", name)
		}
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	k := testKey()
	if got := c.Get(k); got != nil {
		t.Fatalf("nil cache Get = %v", got)
	}
	if err := c.Put(k, &population.Population{}); err != nil {
		t.Fatal(err)
	}
	pop, hit, err := c.GetOrGenerate(k, func() (*population.Population, error) {
		return generate(t, k), nil
	})
	if err != nil || hit || pop == nil {
		t.Fatalf("nil cache GetOrGenerate = (%v, %v, %v)", pop, hit, err)
	}
}

func TestMemoryHitByteIdentical(t *testing.T) {
	c := New("", 0)
	k := testKey()
	fresh := generate(t, k)
	if err := c.Put(k, fresh); err != nil {
		t.Fatal(err)
	}
	got := c.Get(k)
	if got == nil {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(popBytes(t, got), popBytes(t, fresh)) {
		t.Fatal("memory hit differs from the stored population")
	}
	if s := c.Stats(); s.MemHits != 1 || s.Puts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskHitByteIdenticalAcrossProcessesSimulated(t *testing.T) {
	dir := t.TempDir()
	k := testKey()
	fresh := generate(t, k)
	writer := New(dir, 0)
	if err := writer.Put(k, fresh); err != nil {
		t.Fatal(err)
	}
	// A second cache over the same directory models a separate process: no
	// shared memory tier, only the content-addressed files.
	reader := New(dir, 0)
	got := reader.Get(k)
	if got == nil {
		t.Fatal("disk miss after Put")
	}
	if !bytes.Equal(popBytes(t, got), popBytes(t, fresh)) {
		t.Fatal("disk hit is not byte-identical to the stored population")
	}
	if s := reader.Stats(); s.DiskHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The promoted entry serves from memory on the next lookup.
	if reader.Get(k) == nil {
		t.Fatal("promoted entry missing")
	}
	if s := reader.Stats(); s.MemHits != 1 {
		t.Fatalf("stats after promotion = %+v", s)
	}
}

func TestHitEqualsMissByteForByte(t *testing.T) {
	// The cache's core contract: a run that hits must observe exactly the
	// metric vectors a run that missed (and simulated) would have.
	dir := t.TempDir()
	k := testKey()
	c1 := New(dir, 0)
	missPop, hit, err := c1.GetOrGenerate(k, func() (*population.Population, error) {
		return generate(t, k), nil
	})
	if err != nil || hit {
		t.Fatalf("first GetOrGenerate = (hit=%v, err=%v)", hit, err)
	}
	c2 := New(dir, 0)
	hitPop, hit, err := c2.GetOrGenerate(k, func() (*population.Population, error) {
		t.Fatal("generator ran on what should be a hit")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("second GetOrGenerate = (hit=%v, err=%v)", hit, err)
	}
	missBytes, hitBytes := popBytes(t, missPop), popBytes(t, hitPop)
	if !bytes.Equal(missBytes, hitBytes) {
		t.Fatalf("hit differs from miss:\nmiss: %s\nhit:  %s", missBytes, hitBytes)
	}
	// And both equal an entirely fresh generation, down to the last bit of
	// every float64.
	fresh := generate(t, k)
	for name, want := range fresh.Metrics {
		got := hitPop.Metrics[name]
		if len(got) != len(want) {
			t.Fatalf("metric %s: %d values, want %d", name, len(got), len(want))
		}
		for i := range want {
			g := strconv.FormatFloat(got[i], 'g', -1, 64)
			w := strconv.FormatFloat(want[i], 'g', -1, 64)
			if g != w {
				t.Errorf("metric %s run %d: cache %s, fresh %s", name, i, g, w)
			}
		}
	}
}

func TestCorruptAndMismatchedEntriesMiss(t *testing.T) {
	dir := t.TempDir()
	k := testKey()
	c := New(dir, 0)
	if err := c.Put(k, generate(t, k)); err != nil {
		t.Fatal(err)
	}
	path := c.path(k.Hash())
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := New(dir, 0)
	if fresh.Get(k) != nil {
		t.Fatal("corrupt entry served as a hit")
	}
	// An entry whose embedded key disagrees with its filename (a renamed or
	// hand-edited file) must also miss.
	other := k
	other.BaseSeed++
	c2 := New(t.TempDir(), 0)
	if err := c2.Put(other, generate(t, other)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c2.path(other.Hash()))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if fresh.Get(k) != nil {
		t.Fatal("entry with mismatched key served as a hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New("", 2)
	base := testKey()
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = base
		keys[i].BaseSeed = uint64(100 + i)
		if err := c.Put(keys[i], &population.Population{Runs: i, Metrics: map[string][]float64{}}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Get(keys[0]) != nil {
		t.Fatal("oldest entry survived past capacity")
	}
	if c.Get(keys[1]) == nil || c.Get(keys[2]) == nil {
		t.Fatal("recent entries evicted")
	}
	// Touching keys[1] makes keys[2] the LRU victim of the next insert.
	c.Get(keys[1])
	extra := base
	extra.BaseSeed = 999
	if err := c.Put(extra, &population.Population{Metrics: map[string][]float64{}}); err != nil {
		t.Fatal(err)
	}
	if c.Get(keys[2]) != nil {
		t.Fatal("recently-touched entry evicted instead of LRU")
	}
	if c.Get(keys[1]) == nil || c.Get(extra) == nil {
		t.Fatal("LRU kept the wrong entries")
	}
}

func TestDiskWriteFailureDegradesToMemory(t *testing.T) {
	// A file standing where the cache directory should be makes MkdirAll
	// fail; Put must report it yet still serve the population from memory.
	dir := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(dir, 0)
	k := testKey()
	err := c.Put(k, generate(t, k))
	if err == nil {
		t.Fatal("Put through a blocked directory succeeded")
	}
	if !strings.Contains(err.Error(), "popcache") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if c.Get(k) == nil {
		t.Fatal("memory tier lost the population after a disk failure")
	}
}
