// Package popcache is a content-addressed cache of simulation populations.
//
// A population is fully determined by its recipe — (benchmark, simulator
// configuration, workload scale, base seed, run count) — because every
// execution is seed-deterministic. The cache therefore keys populations by
// a stable hash of that recipe: any process that asks for the same recipe
// gets byte-identical metric vectors without re-simulating. This extends
// the Engine's in-process cross-figure reuse across processes and across
// distributed re-dispatches, in the spirit of the sampling literature's
// "never re-execute what you already know".
//
// Hits are served from an in-memory LRU first and, when a directory is
// configured, from an on-disk JSON store second. Disk writes go through a
// temp-file + rename, so concurrent writers of the same entry are safe and
// readers never observe a torn file.
package popcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/population"
	"repro/internal/sim"
)

// Key is the complete recipe of a population. Two keys hash equal iff every
// field — including every configuration knob — is equal, so a cache hit can
// only ever return the population the same generation call would produce.
//
// The sampling-design fields address populations produced by
// internal/sampling's variance-reduction collectors: a design-selected
// measured population differs from the plain population of the same base
// recipe (different seeds get measured), so the design and every knob
// that influences seed selection must be part of the content address.
// They are all omitempty, so a plain recipe marshals — and hashes —
// byte-identically to before the fields existed and no existing disk
// cache is invalidated (TestKeyHashStability pins this).
type Key struct {
	Benchmark string     `json:"benchmark"`
	Config    sim.Config `json:"config"`
	Scale     float64    `json:"scale"`
	BaseSeed  uint64     `json:"base_seed"`
	Runs      int        `json:"runs"`

	// Design is the sampling design ("" or "plain" = plain population;
	// "stratified", "rss" = design-selected measured population).
	Design string `json:"design,omitempty"`
	// Strata is the stratum count (stratified) or set size (rss).
	Strata int `json:"strata,omitempty"`
	// Allocation is the stratified allocation rule ("proportional" or
	// "neyman").
	Allocation string `json:"allocation,omitempty"`
	// PilotScale is the workload scale of the pilot (proxy) pass.
	PilotScale float64 `json:"pilot_scale,omitempty"`
	// PilotRuns is the pilot block size the design fetches at a time.
	PilotRuns int `json:"pilot_runs,omitempty"`
	// ProxyMetric is the pilot metric the design ranks by.
	ProxyMetric string `json:"proxy_metric,omitempty"`
	// Fidelity is a fixed ranking-fidelity override (0 = estimated from
	// the measured data). It changes only the interval, not the selected
	// seeds, but is part of the recipe so cached design populations stay
	// a pure function of the configuration that produced them.
	Fidelity float64 `json:"fidelity,omitempty"`
}

// keyEnvelope versions the hashed representation so a future change to the
// semantics of an existing field (not just its value) can invalidate old
// entries by bumping the version.
type keyEnvelope struct {
	Version int `json:"v"`
	Key     Key `json:"key"`
}

const keyVersion = 1

// Hash returns the content address of the recipe: a hex SHA-256 of its
// canonical JSON. encoding/json marshals struct fields in declaration
// order and renders float64s in their shortest round-trippable form, so
// the bytes — and the hash — are deterministic across processes.
func (k Key) Hash() string {
	data, err := json.Marshal(keyEnvelope{Version: keyVersion, Key: k})
	if err != nil {
		// Key contains only scalars and strings; Marshal cannot fail.
		panic(fmt.Sprintf("popcache: marshaling key: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// DefaultMemEntries bounds the in-memory LRU when New is given a
// non-positive limit. Populations are a few hundred float64s per metric;
// 64 of them is a handful of megabytes.
const DefaultMemEntries = 64

// Cache is a two-tier population cache: a bounded in-memory LRU over an
// optional on-disk store. The zero value is not usable; construct with New.
// A nil *Cache is valid everywhere and behaves as a cache that never hits,
// so callers can thread an optional cache without nil checks.
//
// Cached populations are shared: callers must treat them as immutable
// (population.Rounded and friends already copy).
type Cache struct {
	dir        string // "" = memory only
	maxEntries int

	mu    sync.Mutex
	mem   map[string]*population.Population
	order []string // LRU order, least recent first
	stats Stats
}

// Stats counts cache outcomes.
type Stats struct {
	MemHits  uint64
	DiskHits uint64
	Misses   uint64
	Puts     uint64
}

// New builds a cache. dir is the on-disk store directory ("" disables the
// disk tier; the directory is created on first write). maxEntries bounds
// the in-memory tier (non-positive selects DefaultMemEntries).
func New(dir string, maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMemEntries
	}
	return &Cache{
		dir:        dir,
		maxEntries: maxEntries,
		mem:        make(map[string]*population.Population),
	}
}

// Dir returns the disk-store directory ("" when memory-only).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Stats returns a copy of the outcome counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// touch moves hash to the most-recent end of the LRU order. Caller holds mu.
func (c *Cache) touch(hash string) {
	for i, h := range c.order {
		if h == hash {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, hash)
}

// insert adds a population to the memory tier, evicting the least recently
// used entry beyond capacity. Caller holds mu.
func (c *Cache) insert(hash string, pop *population.Population) {
	if _, ok := c.mem[hash]; !ok && len(c.mem) >= c.maxEntries {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.mem, oldest)
	}
	c.mem[hash] = pop
	c.touch(hash)
}

// Get returns the cached population for the recipe, or nil when absent.
// Memory is consulted first, then disk; a disk hit is promoted to memory.
func (c *Cache) Get(k Key) *population.Population {
	if c == nil {
		return nil
	}
	hash := k.Hash()
	c.mu.Lock()
	if pop, ok := c.mem[hash]; ok {
		c.touch(hash)
		c.stats.MemHits++
		c.mu.Unlock()
		return pop
	}
	c.mu.Unlock()

	if c.dir != "" {
		if pop := c.loadDisk(hash, k); pop != nil {
			c.mu.Lock()
			c.insert(hash, pop)
			c.stats.DiskHits++
			c.mu.Unlock()
			return pop
		}
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil
}

// Put stores a freshly generated population under its recipe in both tiers.
// Disk errors are returned but leave the memory tier populated, so a
// read-only cache directory degrades to memory-only caching.
func (c *Cache) Put(k Key, pop *population.Population) error {
	if c == nil || pop == nil {
		return nil
	}
	hash := k.Hash()
	c.mu.Lock()
	c.insert(hash, pop)
	c.stats.Puts++
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	return c.storeDisk(hash, k, pop)
}

// diskEntry is the on-disk format: the recipe rides along with the
// population so hash collisions (or hand-edited files) are detected by
// comparing the recipe, not trusted from the filename.
type diskEntry struct {
	Key        Key                    `json:"key"`
	Population *population.Population `json:"population"`
}

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, "pop-"+hash+".json")
}

// loadDisk reads and verifies an on-disk entry; nil on any miss or damage.
func (c *Cache) loadDisk(hash string, k Key) *population.Population {
	data, err := os.ReadFile(c.path(hash))
	if err != nil {
		return nil
	}
	var ent diskEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return nil
	}
	if ent.Key != k || ent.Population == nil || ent.Population.Metrics == nil {
		return nil
	}
	return ent.Population
}

// storeDisk writes an entry via temp-file + rename (the manifest package's
// atomic-write pattern), so concurrent writers and readers are safe.
func (c *Cache) storeDisk(hash string, k Key, pop *population.Population) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("popcache: creating %s: %w", c.dir, err)
	}
	data, err := json.MarshalIndent(diskEntry{Key: k, Population: pop}, "", " ")
	if err != nil {
		return fmt.Errorf("popcache: marshaling entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "pop-*.tmp")
	if err != nil {
		return fmt.Errorf("popcache: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("popcache: writing entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("popcache: closing entry: %w", err)
	}
	if err := os.Rename(tmpName, c.path(hash)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("popcache: publishing entry: %w", err)
	}
	return nil
}

// GetOrGenerate returns the cached population for the recipe or invokes
// generate, storing its result. The hit flag reports whether simulation was
// skipped. Generation errors pass through; a Put disk error is dropped (the
// population itself is valid and cached in memory).
func (c *Cache) GetOrGenerate(k Key, generate func() (*population.Population, error)) (pop *population.Population, hit bool, err error) {
	if pop := c.Get(k); pop != nil {
		return pop, true, nil
	}
	pop, err = generate()
	if err != nil {
		return nil, false, err
	}
	_ = c.Put(k, pop)
	return pop, false, nil
}
