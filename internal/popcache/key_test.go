package popcache

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestKeyHashStability pins the content address of legacy (plain) keys:
// extending Key with the sampling-design fields must not change the hash
// of any recipe that does not use them, or every existing disk cache
// would silently invalidate. The hex values were computed from the
// pre-extension five-field Key.
func TestKeyHashStability(t *testing.T) {
	cases := []struct {
		key  Key
		want string
	}{
		{
			Key{Benchmark: "ferret", Config: sim.DefaultConfig(), Scale: 0.5, BaseSeed: 42, Runs: 100},
			"558e506e751ad31372145e30fed05ee3e6b8fb46d668f32a9817d8596b41e1cd",
		},
		{
			Key{Benchmark: "canneal", Config: sim.HardwareLikeConfig(), Scale: 1, BaseSeed: 7, Runs: 31},
			"e2e88072d9ac8ada6cc11df3706cf2b9f90395135ac111aec5ed9b073a7f778d",
		},
	}
	for _, c := range cases {
		if got := c.key.Hash(); got != c.want {
			t.Errorf("legacy key %s/%d hash changed:\n got  %s\n want %s — existing disk caches would be invalidated",
				c.key.Benchmark, c.key.Runs, got, c.want)
		}
	}
}

// TestKeyPairwiseDistinct builds one variant per Key field, each
// differing from the base recipe in exactly that field, and checks every
// pair of recipes hashes differently — so neither field omission
// (omitempty) nor any value shift between fields can alias two distinct
// recipes to one cache entry.
func TestKeyPairwiseDistinct(t *testing.T) {
	base := Key{Benchmark: "ferret", Config: sim.DefaultConfig(), Scale: 0.5, BaseSeed: 42, Runs: 100}
	cfg2 := sim.DefaultConfig()
	cfg2.L2Size *= 2

	variants := map[string]Key{"base": base}
	mk := func(name string, mut func(*Key)) {
		k := base
		mut(&k)
		variants[name] = k
	}
	mk("Benchmark", func(k *Key) { k.Benchmark = "canneal" })
	mk("Config", func(k *Key) { k.Config = cfg2 })
	mk("Scale", func(k *Key) { k.Scale = 0.25 })
	mk("BaseSeed", func(k *Key) { k.BaseSeed = 43 })
	mk("Runs", func(k *Key) { k.Runs = 101 })
	mk("Design", func(k *Key) { k.Design = "rss" })
	mk("Strata", func(k *Key) { k.Strata = 4 })
	mk("Allocation", func(k *Key) { k.Allocation = "neyman" })
	mk("PilotScale", func(k *Key) { k.PilotScale = 0.125 })
	mk("PilotRuns", func(k *Key) { k.PilotRuns = 64 })
	mk("ProxyMetric", func(k *Key) { k.ProxyMetric = "runtime_s" })
	mk("Fidelity", func(k *Key) { k.Fidelity = 0.8 })

	// Every Key field must have a variant, so a future field cannot be
	// added without extending this collision test.
	if want := reflect.TypeOf(Key{}).NumField(); len(variants)-1 != want {
		t.Fatalf("collision test covers %d of %d Key fields — add a variant for the new field",
			len(variants)-1, want)
	}

	hashes := map[string]string{}
	for name, k := range variants {
		hashes[name] = k.Hash()
	}
	for a, ha := range hashes {
		for b, hb := range hashes {
			if a < b && ha == hb {
				t.Errorf("recipes %q and %q collide on hash %s", a, b, ha)
			}
		}
	}
}
