package exp

import (
	"os"
	"testing"
)

func TestQuickRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	e := NewEngine(QuickOptions())
	if err := e.RunAll(os.Stdout); err != nil {
		t.Fatal(err)
	}
}
