package exp

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/population"
)

// TestEvaluateCIDeterministicAcrossParallelism pins the campaign-level
// determinism contract: every per-trial quantity is derived from (seed,
// trial index), so the aggregate tallies are identical for any worker count.
func TestEvaluateCIDeterministicAcrossParallelism(t *testing.T) {
	vals := make([]float64, 150)
	for i := range vals {
		vals[i] = float64(i%37) + float64(i)*0.01
	}
	pop := population.FromValues("synth", "m", vals)
	methods := []Method{MethodSPA, MethodBootstrap, MethodRank, MethodZScore}
	var base []MethodEval
	for i, par := range []int{1, 4} {
		opts := tinyOpts()
		opts.Parallelism = par
		evals, err := NewEngine(opts).EvaluateCI(pop, "m", 0.5, 0.9, methods)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", par, err)
		}
		if i == 0 {
			base = evals
			continue
		}
		if !reflect.DeepEqual(evals, base) {
			t.Errorf("parallelism=%d: evals differ from sequential run:\n%+v\nvs\n%+v", par, evals, base)
		}
	}
}

// TestFiguresDeterministicAcrossParallelism renders the fanned-out figures
// (metric cells, benchmark cells) at two parallelism levels and requires
// byte-identical tables: the cell fan-out must not reorder rows or perturb
// any trial stream.
func TestFiguresDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("renders multi-benchmark figures")
	}
	render := func(par int) map[string]string {
		opts := tinyOpts()
		opts.Parallelism = par
		e := NewEngine(opts)
		out := map[string]string{}
		for name, build := range map[string]func() (*Table, error){
			"fig6":  e.Fig6,
			"fig10": e.Fig10,
		} {
			tab, err := build()
			if err != nil {
				t.Fatalf("parallelism=%d %s: %v", par, name, err)
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			out[name] = buf.String()
		}
		return out
	}
	seq := render(1)
	par := render(4)
	for name := range seq {
		if seq[name] != par[name] {
			t.Errorf("%s differs between parallelism 1 and 4:\n--- seq ---\n%s\n--- par ---\n%s",
				name, seq[name], par[name])
		}
	}
}
