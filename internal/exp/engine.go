// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Sec. 5–6) on the simulator substrate.
// Each FigN/TableN function produces a renderable Table whose rows carry
// the same series the paper plots; EXPERIMENTS.md records the comparison
// of shapes against the paper.
package exp

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ci"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/popcache"
	"repro/internal/population"
	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options size an experiment campaign.
type Options struct {
	// Runs is the population size per benchmark (paper Sec. 5.3: 500).
	Runs int
	// HWRuns is the Fig. 1 hardware-like population size (paper: 1000).
	HWRuns int
	// Trials is the number of CI evaluation trials (paper: 1000).
	Trials int
	// Fig14Trials is the trial count for the width-vs-confidence sweep
	// (paper: 100).
	Fig14Trials int
	// Samples is the per-trial draw (paper: 22). Methods requiring more
	// (SPA's two-sided minimum at high F) raise it per experiment; the
	// raise applies to every method for fairness and is noted in output.
	Samples int
	// Scale is the workload scale factor (1.0 ≈ simsmall-like).
	Scale float64
	// Resamples is the bootstrap resample count.
	Resamples int
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Seed roots every campaign and trial stream.
	Seed uint64
}

// DefaultOptions reproduces the paper's experiment sizes.
func DefaultOptions() Options {
	return Options{
		Runs: 500, HWRuns: 1000, Trials: 1000, Fig14Trials: 100,
		Samples: 22, Scale: 1.0, Resamples: 1000, Seed: 1,
	}
}

// QuickOptions shrinks everything for tests and benchmarks while keeping
// the shapes of the results.
func QuickOptions() Options {
	return Options{
		Runs: 60, HWRuns: 80, Trials: 120, Fig14Trials: 40,
		Samples: 22, Scale: 0.12, Resamples: 200, Seed: 1,
	}
}

// Variant selects a simulated-system variant for population generation.
type Variant int

// System variants used by the experiments.
const (
	// VariantDefault is the Table 2 system.
	VariantDefault Variant = iota
	// VariantHardware adds OS noise and colocation (Fig. 1 populations).
	VariantHardware
	// VariantL2Half is the Fig. 4 baseline with a 512 kB L2.
	VariantL2Half
	// VariantL2Double is the Fig. 4 improved system with a 1 MB L2.
	VariantL2Double
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantHardware:
		return "hardware"
	case VariantL2Half:
		return "l2-512k"
	case VariantL2Double:
		return "l2-1m"
	default:
		return "default"
	}
}

// Config returns the simulator configuration for the variant.
func (v Variant) Config() sim.Config {
	switch v {
	case VariantHardware:
		return sim.HardwareLikeConfig()
	case VariantL2Half:
		cfg := sim.DefaultConfig()
		cfg.L2Size = 512 * 1024
		return cfg
	case VariantL2Double:
		cfg := sim.DefaultConfig()
		cfg.L2Size = 1024 * 1024
		return cfg
	default:
		return sim.DefaultConfig()
	}
}

// Engine caches benchmark populations across figures so each campaign is
// simulated once.
type Engine struct {
	opts  Options
	obs   *obs.Observer
	cache *popcache.Cache

	mu   sync.Mutex
	pops map[string]*popEntry
}

// popEntry is one population slot. The sync.Once gives concurrent figure
// cells single-flight semantics: when two cells need the same population,
// one simulates and the other waits, instead of both simulating.
type popEntry struct {
	once sync.Once
	pop  *population.Population
	err  error
}

// SetObserver attaches campaign telemetry: per-simulation spans/counters
// during population generation, per-evaluation spans, and trial counters.
// Telemetry never touches the trial or simulation RNG streams, so results
// are identical with or without it.
func (e *Engine) SetObserver(o *obs.Observer) { e.obs = o }

// SetPopCache attaches a content-addressed population cache consulted
// before any campaign is simulated. Because cache keys cover the complete
// generation recipe and entries are byte-identical to fresh generation, an
// engine with a warm cache produces exactly the figures a cold one would —
// just without re-simulating. A nil cache (the default) disables the layer.
func (e *Engine) SetPopCache(c *popcache.Cache) { e.cache = c }

// NewEngine builds an engine. Zero-valued option fields are filled from
// DefaultOptions.
func NewEngine(opts Options) *Engine {
	def := DefaultOptions()
	if opts.Runs <= 0 {
		opts.Runs = def.Runs
	}
	if opts.HWRuns <= 0 {
		opts.HWRuns = def.HWRuns
	}
	if opts.Trials <= 0 {
		opts.Trials = def.Trials
	}
	if opts.Fig14Trials <= 0 {
		opts.Fig14Trials = def.Fig14Trials
	}
	if opts.Samples <= 0 {
		opts.Samples = def.Samples
	}
	if opts.Scale <= 0 {
		opts.Scale = def.Scale
	}
	if opts.Resamples <= 0 {
		opts.Resamples = def.Resamples
	}
	if opts.Seed == 0 {
		opts.Seed = def.Seed
	}
	return &Engine{opts: opts, pops: make(map[string]*popEntry)}
}

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opts }

// Population returns (generating and caching on first use) the population
// of the benchmark under the given system variant. Concurrent callers of
// the same (benchmark, variant) share one generation — the figure engine
// fans out across cells, and duplicate simulation would waste the whole
// win — while different keys generate independently.
func (e *Engine) Population(bench string, v Variant) (*population.Population, error) {
	runs := e.opts.Runs
	if v == VariantHardware {
		runs = e.opts.HWRuns
	}
	key := fmt.Sprintf("%s/%s/%d", bench, v, runs)
	e.mu.Lock()
	entry, ok := e.pops[key]
	if !ok {
		entry = &popEntry{}
		e.pops[key] = entry
	}
	e.mu.Unlock()
	entry.once.Do(func() {
		ck := popcache.Key{
			Benchmark: bench,
			Config:    v.Config(),
			Scale:     e.opts.Scale,
			BaseSeed:  e.opts.Seed*1_000_003 + uint64(v)*1009,
			Runs:      runs,
		}
		if pop := e.cache.Get(ck); pop != nil {
			e.obs.Logf("population cache hit for %s/%s: %d runs", bench, v, runs)
			entry.pop = pop
			return
		}
		e.obs.Logf("simulating %s/%s: %d runs", bench, v, runs)
		e.obs.P().AddTotal(runs)
		entry.pop, entry.err = population.GenerateHooked(bench, v.Config(), e.opts.Scale, runs,
			ck.BaseSeed, e.opts.Parallelism,
			population.ObserverHooks(e.obs, bench))
		if entry.err == nil {
			_ = e.cache.Put(ck, entry.pop)
		}
	})
	return entry.pop, entry.err
}

// Method identifies a CI construction technique in comparisons.
type Method string

// The four techniques the paper compares (Sec. 5.4).
const (
	MethodSPA       Method = "SPA"
	MethodBootstrap Method = "Bootstrap"
	MethodRank      Method = "Rank"
	MethodZScore    Method = "Z-score"
)

// MethodEval is one method's aggregate performance over a trial campaign
// (one bar of Figs. 6–13).
type MethodEval struct {
	Method Method
	// ErrProb is the fraction of produced CIs that miss the ground truth
	// (Nulls excluded, as in the paper's figures).
	ErrProb float64
	// NullRate is the fraction of trials where the method failed to
	// produce a CI (the red "Bootstrapping Null" bars).
	NullRate float64
	// MeanNormWidth is the mean CI width divided by the ground truth.
	MeanNormWidth float64
	// Trials, Misses and Nulls are the raw counts.
	Trials, Misses, Nulls int
}

// buildCI constructs one CI with the given method; a nil interval with nil
// error means the method abstained (Null). The caller supplies both the
// sample in draw order (xs) and an ascending-sorted view of the same values
// (sorted): every trial evaluates several methods on one draw, and sorting
// once per draw instead of once per method is where the per-trial time
// goes. Z-score is the only moment-based method and keeps the raw view.
func (e *Engine) buildCI(method Method, xs, sorted []float64, f, c float64, trialSeed uint64) (*stats.Interval, error) {
	switch method {
	case MethodSPA:
		iv, err := core.ConfidenceIntervalSorted(sorted, core.Params{F: f, C: c})
		if err != nil {
			return nil, err
		}
		return &iv, nil
	case MethodBootstrap:
		iv, err := ci.BootstrapBCaSorted(sorted, f, c, ci.BootstrapOptions{Resamples: e.opts.Resamples, Seed: trialSeed})
		if errors.Is(err, ci.ErrDegenerate) {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		return &iv, nil
	case MethodRank:
		iv, err := ci.RankCISorted(sorted, f, c)
		if errors.Is(err, ci.ErrDegenerate) {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		return &iv, nil
	case MethodZScore:
		iv, err := ci.ZScoreCI(xs, c)
		if errors.Is(err, ci.ErrDegenerate) {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		return &iv, nil
	default:
		return nil, fmt.Errorf("exp: unknown method %q", method)
	}
}

// runCells runs fn(0..n-1) on a bounded worker pool and returns the error
// from the smallest failing cell index, so a fan-out failure is reported
// identically regardless of scheduling. Figure and table builders use it to
// evaluate independent (benchmark, metric) cells concurrently: each cell
// writes into its own index of a pre-sized result slice, which keeps output
// ordering deterministic by construction.
func (e *Engine) runCells(n int, fn func(cell int) error) error {
	workers := e.opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for cell := 0; cell < n; cell++ {
			if err := fn(cell); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg      sync.WaitGroup
		next    int64
		mu      sync.Mutex
		errCell = n
		errVal  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				cell := int(atomic.AddInt64(&next, 1)) - 1
				if cell >= n {
					return
				}
				if err := fn(cell); err != nil {
					mu.Lock()
					if cell < errCell {
						errCell, errVal = cell, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return errVal
}

// trialSamples returns the per-trial sample count for proportion f at
// confidence c: the paper's 22, raised to SPA's two-sided minimum when
// (f, c) demands more so that every method sees the same draws.
func (e *Engine) trialSamples(f, c float64) (int, error) {
	minN, err := core.CIMinSamples(core.Params{F: f, C: c})
	if err != nil {
		return 0, err
	}
	if minN > e.opts.Samples {
		return minN, nil
	}
	return e.opts.Samples, nil
}

// EvaluateCI runs the paper's CI evaluation protocol (Sec. 5.4) on one
// population metric: repeated trials draw samples, every method builds a
// CI from the same draw, and coverage of the population ground truth and
// widths are tallied.
func (e *Engine) EvaluateCI(pop *population.Population, metric string, f, c float64, methods []Method) ([]MethodEval, error) {
	span := e.obs.T().StartSpan("exp.evaluate_ci",
		obs.Str("benchmark", pop.Benchmark), obs.Str("metric", metric),
		obs.F64("f", f), obs.F64("c", c), obs.Int("trials", e.opts.Trials))
	defer span.End()
	truth, err := pop.GroundTruth(metric, f)
	if err != nil {
		return nil, err
	}
	n, err := e.trialSamples(f, c)
	if err != nil {
		return nil, err
	}
	evals := make([]MethodEval, len(methods))
	for i, m := range methods {
		evals[i].Method = m
	}
	// Each trial writes its widths into its own slot; the final reduction
	// walks trials in index order, so the float sum is identical for any
	// worker count (the integer tallies commute exactly and may still fold
	// per worker).
	trialWidths := make([]float64, e.opts.Trials*len(methods))
	// Trials are independent (per-trial seed streams), so they run on a
	// worker pool; the tallies are order-independent sums.
	root := randx.New(e.opts.Seed ^ 0xC1C1)
	workers := e.opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		next     int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]MethodEval, len(methods))
			// One sorted scratch buffer per worker: each trial sorts its
			// draw once and every method reads the sorted view.
			var sortedBuf []float64
			for {
				trial := int(atomic.AddInt64(&next, 1)) - 1
				if trial >= e.opts.Trials {
					break
				}
				r := root.Split(uint64(trial))
				xs, err := pop.Sample(metric, n, r)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				sortedBuf = append(sortedBuf[:0], xs...)
				sort.Float64s(sortedBuf)
				for i, m := range methods {
					iv, err := e.buildCI(m, xs, sortedBuf, f, c, uint64(trial)*7919+uint64(i))
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("exp: %s on %s/%s trial %d: %w", m, pop.Benchmark, metric, trial, err)
						}
						mu.Unlock()
						return
					}
					local[i].Trials++
					if iv == nil {
						local[i].Nulls++
						continue
					}
					if !iv.Contains(truth) {
						local[i].Misses++
					}
					trialWidths[trial*len(methods)+i] = iv.Width()
				}
			}
			mu.Lock()
			for i := range methods {
				evals[i].Trials += local[i].Trials
				evals[i].Nulls += local[i].Nulls
				evals[i].Misses += local[i].Misses
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if len(evals) > 0 {
		e.obs.M().Counter(obs.MetricTrials).Add(int64(evals[0].Trials))
	}
	for i := range evals {
		widthSum := 0.0
		for trial := 0; trial < e.opts.Trials; trial++ {
			widthSum += trialWidths[trial*len(methods)+i]
		}
		produced := evals[i].Trials - evals[i].Nulls
		if produced > 0 {
			evals[i].ErrProb = float64(evals[i].Misses) / float64(produced)
			if truth != 0 {
				evals[i].MeanNormWidth = widthSum / float64(produced) / truth
			}
		}
		evals[i].NullRate = float64(evals[i].Nulls) / float64(evals[i].Trials)
	}
	return evals, nil
}

// EvaluateCIRounded is EvaluateCI over a decimal-rounded copy of the
// population (the Fig. 15 protocol).
func (e *Engine) EvaluateCIRounded(pop *population.Population, metric string, f, c float64, methods []Method, places int) ([]MethodEval, error) {
	return e.EvaluateCI(pop.Rounded(places), metric, f, c, methods)
}

// ferretMetrics is the metric set swept in the per-metric figures.
var ferretMetrics = []string{
	sim.MetricRuntime,
	sim.MetricIPC,
	sim.MetricL1DMPKI,
	sim.MetricL2MPKI,
	sim.MetricAvgLoadLat,
	sim.MetricMaxLoadLat,
}

// benchmarks is the 8-benchmark set of Figs. 10–13 (the paper's suite
// minus vips, x264 and raytrace, which it excludes too). We also run
// swaptions, giving 9; the paper's "eight PARSEC benchmarks" per-benchmark
// figures use the first eight here.
var benchmarks = []string{
	"blackscholes", "bodytrack", "canneal", "dedup",
	"ferret", "fluidanimate", "freqmine", "streamcluster",
}

// geomeanErr returns the geometric mean of one method's error
// probabilities over per-metric/per-benchmark rows, with zero entries
// floored (the conventional dodge for the Z-score's zero errors).
func geomeanErr(idx int, per [][]MethodEval) float64 {
	var es []float64
	for _, row := range per {
		es = append(es, row[idx].ErrProb)
	}
	return stats.GeoMeanWithFloor(es, 1e-4)
}

// sortedMetricNames lists a population's metrics deterministically.
func sortedMetricNames(pop *population.Population) []string {
	names := make([]string, 0, len(pop.Metrics))
	for n := range pop.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
