package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/stats"
)

// Fig1 reproduces Figure 1: the runtime distribution of 1000 ferret
// executions on a "real machine" (our hardware-like variant with OS noise
// and colocation), with the F = 0.5 and F = 0.9 proportion values marked.
// The paper's headline features — strong non-Gaussianity with a dominant
// fast mode holding roughly 80 % of the mass — are reproduced.
func (e *Engine) Fig1() (*Table, error) {
	return e.distributionFigure("fig1", VariantHardware,
		"1000 runtimes of ferret benchmark on real machine (hardware-like variant)")
}

// Fig2 reproduces Figure 2: 500 simulated ferret runtimes on the Table 2
// system with 0–4 cycle memory-latency variability injection.
func (e *Engine) Fig2() (*Table, error) {
	return e.distributionFigure("fig2", VariantDefault,
		"500 simulated runtimes of ferret with variability injection")
}

func (e *Engine) distributionFigure(id string, v Variant, title string) (*Table, error) {
	pop, err := e.Population("ferret", v)
	if err != nil {
		return nil, err
	}
	xs, err := pop.Metric(sim.MetricRuntime)
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogram(xs, 25)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title, Columns: []string{"runtime_s", "count", "histogram"}}
	bars := hist.Render(50)
	for i, c := range hist.Counts {
		t.AddRow(f6(hist.BinCenter(i)), fmt.Sprintf("%d", c), bars[i])
	}
	sorted := append([]float64(nil), xs...)
	stats.SortFloats(sorted)
	q50 := stats.QuantileSorted(sorted, 0.5)
	q90 := stats.QuantileSorted(sorted, 0.9)
	t.Note("proportion values (dashed lines in the paper): F=0.5 → %s s, F=0.9 → %s s", f6(q50), f6(q90))
	t.Note("population: %d runs; CoV = %s", len(xs), f4(stats.CoefficientOfVariation(xs)))
	return t, nil
}

// speedupContext prepares the Fig. 4/5 scenario: ferret on a 512 kB L2
// versus a 1 MB L2, speedup samples from random base/improved pairing
// (Sec. 5.2), and the ground-truth speedup at proportion F from a large
// pairing population.
type speedupContext struct {
	samples []float64
	// sorted is the ascending view of samples; Fig. 4 and Fig. 5 each run
	// several order-statistic constructions over the same draw.
	sorted []float64
	truth  float64
	n      int
	params core.Params
}

func (e *Engine) speedupContext() (*speedupContext, error) {
	base, err := e.Population("ferret", VariantL2Half)
	if err != nil {
		return nil, err
	}
	improved, err := e.Population("ferret", VariantL2Double)
	if err != nil {
		return nil, err
	}
	bv, err := base.Metric(sim.MetricRuntime)
	if err != nil {
		return nil, err
	}
	iv, err := improved.Metric(sim.MetricRuntime)
	if err != nil {
		return nil, err
	}
	// The property of Fig. 4 is "speedup is at least V" with F = C = 0.9.
	params := core.Params{F: 0.9, C: 0.9, Direction: core.AtLeast}
	n, err := e.trialSamples(params.F, params.C)
	if err != nil {
		return nil, err
	}
	r := randx.New(e.opts.Seed ^ 0x4A4A)
	xs, err := population.Speedups(bv, iv, n, r)
	if err != nil {
		return nil, err
	}
	// Ground truth: the speedup achieved by at least 90 % of pairings,
	// i.e. the 0.1-quantile of a large pairing population.
	big, err := population.Speedups(bv, iv, 20000, r.Split(1))
	if err != nil {
		return nil, err
	}
	truth, err := stats.Quantile(big, 1-params.F)
	if err != nil {
		return nil, err
	}
	sorted := append([]float64(nil), xs...)
	stats.SortFloats(sorted)
	return &speedupContext{samples: xs, sorted: sorted, truth: truth, n: n, params: params}, nil
}

// Fig4 reproduces Figure 4: the per-threshold SMC confidence sweep for the
// L2-doubling speedup, showing the converged-positive region, the None
// band (the confidence interval), and the converged-negative region.
func (e *Engine) Fig4() (*Table, error) {
	sc, err := e.speedupContext()
	if err != nil {
		return nil, err
	}
	iv, err := core.ConfidenceIntervalSorted(sc.sorted, sc.params)
	if err != nil {
		return nil, err
	}
	span := iv.Width()
	if span <= 0 {
		span = sc.truth * 0.01
	}
	lo := iv.Lo - span
	step := (iv.Hi + span - lo) / 24
	thresholds := make([]float64, 25)
	for i := range thresholds {
		thresholds[i] = lo + float64(i)*step
	}
	// The sweep's per-threshold tests run at SPA's per-side level so the
	// None band matches the constructed interval.
	side := sc.params
	side.C = 1 - (1-sc.params.C)/2
	pts, err := core.ThresholdSweepSorted(sc.sorted, thresholds, side)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4",
		Title:   "SMC hypothesis-test confidence per speedup threshold (ferret, L2 512kB→1MB, F=C=0.9)",
		Columns: []string{"threshold", "satisfied", "positive_conf", "assertion"},
	}
	for _, p := range pts {
		t.AddRow(f4(p.Threshold), fmt.Sprintf("%d/%d", p.Satisfied, sc.n), f4(p.PositiveConf), p.Assertion.String())
	}
	t.Note("SPA confidence interval (None band): [%s, %s]; ground-truth speedup at F=0.9: %s",
		f4(iv.Lo), f4(iv.Hi), f4(sc.truth))
	return t, nil
}

// Fig5 reproduces Figure 5: one trial's CIs from the four techniques
// against the population ground truth, for the speedup scenario. The
// quantile-based baselines target the same 0.1-quantile the AtLeast/F=0.9
// property estimates; the Z-score CI carries the Gaussian assumption the
// paper includes for comparison.
func (e *Engine) Fig5() (*Table, error) {
	sc, err := e.speedupContext()
	if err != nil {
		return nil, err
	}
	qf := 1 - sc.params.F // target quantile in AtMost space
	t := &Table{
		ID:      "fig5",
		Title:   "CIs constructed by different techniques for the speedup (one trial)",
		Columns: []string{"method", "lo", "hi", "width", "covers_truth"},
	}
	add := func(name Method, lo, hi float64, produced bool) {
		if !produced {
			t.AddRow(string(name), "-", "-", "-", "null")
			return
		}
		iv := stats.Interval{Lo: lo, Hi: hi}
		t.AddRow(string(name), f4(lo), f4(hi), f4(iv.Width()), fmt.Sprintf("%v", iv.Contains(sc.truth)))
	}
	spaIV, err := core.ConfidenceIntervalSorted(sc.sorted, sc.params)
	if err != nil {
		return nil, err
	}
	add(MethodSPA, spaIV.Lo, spaIV.Hi, true)
	for _, m := range []Method{MethodBootstrap, MethodRank, MethodZScore} {
		f := qf
		if m == MethodZScore {
			f = 0.5 // the Z-score CI has no quantile parameter
		}
		iv, err := e.buildCI(m, sc.samples, sc.sorted, f, sc.params.C, e.opts.Seed^0xF15)
		if err != nil {
			return nil, err
		}
		if iv == nil {
			add(m, 0, 0, false)
			continue
		}
		add(m, iv.Lo, iv.Hi, true)
	}
	t.Note("ground-truth speedup at proportion F=0.9: %s (0.1-quantile of the pairing population)", f4(sc.truth))
	t.Note("case study only — accuracy is evaluated over %d trials in figs 6-13", e.opts.Trials)
	return t, nil
}

// metricFigure runs the Figs. 6–9 protocol over the ferret metric set.
func (e *Engine) metricFigure(id, title string, f float64, methods []Method, width bool, rounded int) (*Table, error) {
	pop, err := e.Population("ferret", VariantDefault)
	if err != nil {
		return nil, err
	}
	cols := []string{"metric"}
	for _, m := range methods {
		if width {
			cols = append(cols, string(m)+"_width")
		} else {
			cols = append(cols, string(m)+"_err", string(m)+"_null")
		}
	}
	t := &Table{ID: id, Title: title, Columns: cols}
	// Metric cells are independent campaigns over the same population, so
	// they fan out; each cell writes its own slot and the rows are emitted
	// in metric order afterwards, keeping the table deterministic.
	all := make([][]MethodEval, len(ferretMetrics))
	err = e.runCells(len(ferretMetrics), func(cell int) error {
		metric := ferretMetrics[cell]
		var evals []MethodEval
		var cellErr error
		if rounded > 0 {
			evals, cellErr = e.EvaluateCIRounded(pop, metric, f, 0.9, methods, rounded)
		} else {
			evals, cellErr = e.EvaluateCI(pop, metric, f, 0.9, methods)
		}
		if cellErr != nil {
			return cellErr
		}
		all[cell] = evals
		return nil
	})
	if err != nil {
		return nil, err
	}
	for cell, metric := range ferretMetrics {
		row := []string{metric}
		for _, ev := range all[cell] {
			if width {
				row = append(row, f4(ev.MeanNormWidth))
			} else {
				row = append(row, f3(ev.ErrProb), pct(ev.NullRate))
			}
		}
		t.AddRow(row...)
	}
	if !width {
		row := []string{"geomean"}
		for i := range methods {
			row = append(row, f3(geomeanErr(i, all)), "")
		}
		t.AddRow(row...)
		t.Note("dashed-line threshold: error probability must stay below 1-C = 0.100")
	}
	n, _ := e.trialSamples(f, 0.9)
	t.Note("%d trials × %d samples per trial, C=0.9, F=%g", e.opts.Trials, n, f)
	return t, nil
}

// Fig6 reproduces Figure 6: CI error probability for ferret metrics at the
// median (F = 0.5) for all four techniques.
func (e *Engine) Fig6() (*Table, error) {
	return e.metricFigure("fig6", "CI error probability, ferret metrics, F=0.5",
		0.5, []Method{MethodSPA, MethodBootstrap, MethodRank, MethodZScore}, false, 0)
}

// Fig7 reproduces Figure 7: mean normalized CI width for the same setting.
func (e *Engine) Fig7() (*Table, error) {
	return e.metricFigure("fig7", "CI width (normalized), ferret metrics, F=0.5",
		0.5, []Method{MethodSPA, MethodBootstrap, MethodRank, MethodZScore}, true, 0)
}

// Fig8 reproduces Figure 8: CI error probability for ferret metrics at
// F = 0.9 (SPA vs bootstrapping; the other methods do not support F≠0.5).
func (e *Engine) Fig8() (*Table, error) {
	return e.metricFigure("fig8", "CI error probability, ferret metrics, F=0.9",
		0.9, []Method{MethodSPA, MethodBootstrap}, false, 0)
}

// Fig9 reproduces Figure 9: CI width for ferret metrics at F = 0.9.
func (e *Engine) Fig9() (*Table, error) {
	return e.metricFigure("fig9", "CI width (normalized), ferret metrics, F=0.9",
		0.9, []Method{MethodSPA, MethodBootstrap}, true, 0)
}

// benchmarkFigure runs the Figs. 10–13 protocol across the benchmark suite
// for one metric.
func (e *Engine) benchmarkFigure(id, title, metric string, width bool) (*Table, error) {
	methods := []Method{MethodSPA, MethodBootstrap}
	cols := []string{"benchmark"}
	for _, m := range methods {
		if width {
			cols = append(cols, string(m)+"_width")
		} else {
			cols = append(cols, string(m)+"_err", string(m)+"_null")
		}
	}
	t := &Table{ID: id, Title: title, Columns: cols}
	// Benchmark cells fan out like metric cells; the popEntry single-flight
	// in Population keeps concurrent cells from duplicating simulations.
	all := make([][]MethodEval, len(benchmarks))
	err := e.runCells(len(benchmarks), func(cell int) error {
		pop, cellErr := e.Population(benchmarks[cell], VariantDefault)
		if cellErr != nil {
			return cellErr
		}
		evals, cellErr := e.EvaluateCI(pop, metric, 0.9, 0.9, methods)
		if cellErr != nil {
			return cellErr
		}
		all[cell] = evals
		return nil
	})
	if err != nil {
		return nil, err
	}
	for cell, bench := range benchmarks {
		row := []string{bench}
		for _, ev := range all[cell] {
			if width {
				row = append(row, f4(ev.MeanNormWidth))
			} else {
				row = append(row, f3(ev.ErrProb), pct(ev.NullRate))
			}
		}
		t.AddRow(row...)
	}
	if !width {
		row := []string{"geomean"}
		for i := range methods {
			row = append(row, f3(geomeanErr(i, all)), "")
		}
		t.AddRow(row...)
	}
	n, _ := e.trialSamples(0.9, 0.9)
	t.Note("%d trials × %d samples per trial, F=0.9, C=0.9, metric %s", e.opts.Trials, n, metric)
	return t, nil
}

// Fig10 reproduces Figure 10: error probability across benchmarks for L1
// cache misses per 1k instructions at F = 0.9.
func (e *Engine) Fig10() (*Table, error) {
	return e.benchmarkFigure("fig10", "CI error probability across benchmarks (L1D MPKI), F=0.9",
		sim.MetricL1DMPKI, false)
}

// Fig11 reproduces Figure 11: widths of the Fig. 10 CIs.
func (e *Engine) Fig11() (*Table, error) {
	return e.benchmarkFigure("fig11", "CI width across benchmarks (L1D MPKI), F=0.9",
		sim.MetricL1DMPKI, true)
}

// Fig12 reproduces Figure 12: error probability across benchmarks for the
// L2 cache miss metric at F = 0.9.
func (e *Engine) Fig12() (*Table, error) {
	return e.benchmarkFigure("fig12", "CI error probability across benchmarks (L2 MPKI), F=0.9",
		sim.MetricL2MPKI, false)
}

// Fig13 reproduces Figure 13: widths of the Fig. 12 CIs.
func (e *Engine) Fig13() (*Table, error) {
	return e.benchmarkFigure("fig13", "CI width across benchmarks (L2 MPKI), F=0.9",
		sim.MetricL2MPKI, true)
}

// Fig14 reproduces Figure 14: mean normalized CI width versus requested
// confidence (90 % to 99.9 %) at the median, for the L1D MPKI metric of
// ferret, all four methods.
func (e *Engine) Fig14() (*Table, error) {
	pop, err := e.Population("ferret", VariantDefault)
	if err != nil {
		return nil, err
	}
	methods := []Method{MethodSPA, MethodBootstrap, MethodRank, MethodZScore}
	metric := sim.MetricL1DMPKI
	truth, err := pop.GroundTruth(metric, 0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig14",
		Title:   "Mean normalized CI width vs confidence (ferret L1D MPKI, F=0.5)",
		Columns: []string{"confidence", "SPA", "Bootstrap", "Rank", "Z-score"},
	}
	for _, conf := range []float64{0.90, 0.95, 0.99, 0.999} {
		n, err := e.trialSamples(0.5, conf)
		if err != nil {
			return nil, err
		}
		sums := make([]float64, len(methods))
		counts := make([]int, len(methods))
		root := randx.New(e.opts.Seed ^ 0xF14)
		var sortedBuf []float64
		for trial := 0; trial < e.opts.Fig14Trials; trial++ {
			r := root.Split(uint64(trial))
			xs, err := pop.Sample(metric, n, r)
			if err != nil {
				return nil, err
			}
			sortedBuf = append(sortedBuf[:0], xs...)
			stats.SortFloats(sortedBuf)
			for i, m := range methods {
				iv, err := e.buildCI(m, xs, sortedBuf, 0.5, conf, uint64(trial)*31+uint64(i))
				if err != nil {
					return nil, err
				}
				if iv == nil {
					continue
				}
				sums[i] += iv.Width()
				counts[i]++
			}
		}
		row := []string{fmt.Sprintf("%.1f%%", conf*100)}
		for i := range methods {
			if counts[i] == 0 || truth == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, f4(sums[i]/float64(counts[i])/truth))
		}
		t.AddRow(row...)
	}
	t.Note("%d trials per confidence; the F=0.5 two-sided minimum stays below the standard draw, so every confidence uses the same sample count", e.opts.Fig14Trials)
	return t, nil
}

// Fig15 reproduces Figure 15: the Fig. 8 experiment redone with every
// metric rounded to 3 decimals, provoking duplicate data and frequent
// bootstrap failures.
func (e *Engine) Fig15() (*Table, error) {
	return e.metricFigure("fig15", "Fig. 8 with metrics rounded to 3 decimals (duplicate data)",
		0.9, []Method{MethodSPA, MethodBootstrap}, false, 3)
}

// MinSamplesTable reproduces the Sec. 4.3 analysis: the minimum executions
// for the hypothesis test (eq. 8) and for SPA's two-sided CI, over a grid
// of (F, C).
func MinSamplesTable() (*Table, error) {
	t := &Table{
		ID:      "minsamples",
		Title:   "Minimum executions required (eq. 6-8 and SPA's two-sided CI minimum)",
		Columns: []string{"F", "C", "N+ (eq.6)", "N- (eq.7)", "hypothesis test (eq.8)", "SPA CI (split)"},
	}
	for _, f := range []float64{0.5, 0.8, 0.9, 0.95, 0.99} {
		for _, c := range []float64{0.9, 0.95, 0.99} {
			np, err := smc.MinSamplesPositive(f, c)
			if err != nil {
				return nil, err
			}
			nn, err := smc.MinSamplesNegative(f, c)
			if err != nil {
				return nil, err
			}
			nh, err := smc.MinSamples(f, c)
			if err != nil {
				return nil, err
			}
			nci, err := core.CIMinSamples(core.Params{F: f, C: c})
			if err != nil {
				return nil, err
			}
			t.AddRow(f3(f), f3(c), fmt.Sprintf("%d", np), fmt.Sprintf("%d", nn),
				fmt.Sprintf("%d", nh), fmt.Sprintf("%d", nci))
		}
	}
	t.Note("the paper's headline: at F=C=0.9 a hypothesis test needs 22 all-true samples (N+) and 1 all-false (N-)")
	return t, nil
}

// CoVTable reproduces the Sec. 6 dispersion statistics: the coefficient of
// variation across ferret metrics and across benchmarks for L1D MPKI.
func (e *Engine) CoVTable() (*Table, error) {
	t := &Table{
		ID:      "cov",
		Title:   "Coefficients of variation (Sec. 6: ferret metrics 0.022-0.117; L1 MPKI across benchmarks 0.0002-0.127)",
		Columns: []string{"scope", "name", "cov"},
	}
	pop, err := e.Population("ferret", VariantDefault)
	if err != nil {
		return nil, err
	}
	for _, metric := range sortedMetricNames(pop) {
		vs, _ := pop.Metric(metric)
		t.AddRow("ferret metric", metric, f4(stats.CoefficientOfVariation(vs)))
	}
	for _, bench := range benchmarks {
		bp, err := e.Population(bench, VariantDefault)
		if err != nil {
			return nil, err
		}
		vs, err := bp.Metric(sim.MetricL1DMPKI)
		if err != nil {
			return nil, err
		}
		t.AddRow("benchmark l1d_mpki", bench, f4(stats.CoefficientOfVariation(vs)))
	}
	return t, nil
}
