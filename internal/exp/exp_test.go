package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/population"
	"repro/internal/sim"
)

// tinyOpts keep unit tests fast; QuickRunAll (quick_exp_test.go) covers the
// full pipeline at a more meaningful size.
func tinyOpts() Options {
	return Options{
		Runs: 32, HWRuns: 32, Trials: 40, Fig14Trials: 10,
		Samples: 22, Scale: 0.06, Resamples: 60, Seed: 3,
	}
}

func TestNewEngineFillsDefaults(t *testing.T) {
	e := NewEngine(Options{})
	def := DefaultOptions()
	if e.Options() != def {
		t.Errorf("zero options should resolve to defaults: %+v vs %+v", e.Options(), def)
	}
	e2 := NewEngine(Options{Runs: 7, Trials: 9})
	if e2.Options().Runs != 7 || e2.Options().Trials != 9 {
		t.Error("explicit options overridden")
	}
	if e2.Options().Scale != def.Scale {
		t.Error("unset options not defaulted")
	}
}

func TestVariantConfigs(t *testing.T) {
	if VariantDefault.Config().L2Size != 3*1024*1024 {
		t.Error("default variant should be the Table 2 system")
	}
	if VariantL2Half.Config().L2Size != 512*1024 {
		t.Error("l2half should shrink the L2")
	}
	if VariantL2Double.Config().L2Size != 1024*1024 {
		t.Error("l2double should be 1MB")
	}
	if VariantHardware.Config().ColocationProb == 0 {
		t.Error("hardware variant should enable colocation")
	}
	names := map[Variant]string{
		VariantDefault: "default", VariantHardware: "hardware",
		VariantL2Half: "l2-512k", VariantL2Double: "l2-1m",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("variant %d renders %q, want %q", v, v, want)
		}
	}
}

func TestPopulationCaching(t *testing.T) {
	e := NewEngine(tinyOpts())
	a, err := e.Population("swaptions", VariantDefault)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Population("swaptions", VariantDefault)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("population not cached (distinct pointers)")
	}
	if _, err := e.Population("nope", VariantDefault); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestTrialSamplesRaisesToCIMinimum(t *testing.T) {
	e := NewEngine(tinyOpts())
	n, err := e.trialSamples(0.5, 0.9)
	if err != nil || n != 22 {
		t.Errorf("median trials keep the paper's 22: got %d, %v", n, err)
	}
	n, err = e.trialSamples(0.9, 0.9)
	if err != nil || n != 29 {
		t.Errorf("F=0.9 trials need SPA's two-sided minimum 29: got %d, %v", n, err)
	}
}

func TestEvaluateCIProtocol(t *testing.T) {
	e := NewEngine(tinyOpts())
	// Synthetic population with a known spread: coverage counts must be
	// internally consistent.
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = float64(i)
	}
	pop := population.FromValues("synth", "m", vals)
	methods := []Method{MethodSPA, MethodBootstrap, MethodRank, MethodZScore}
	evals, err := e.EvaluateCI(pop, "m", 0.5, 0.9, methods)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != len(methods) {
		t.Fatalf("got %d evals", len(evals))
	}
	for _, ev := range evals {
		if ev.Trials != e.Options().Trials {
			t.Errorf("%s: %d trials, want %d", ev.Method, ev.Trials, e.Options().Trials)
		}
		if ev.Misses+ev.Nulls > ev.Trials {
			t.Errorf("%s: inconsistent counts %+v", ev.Method, ev)
		}
		if ev.ErrProb < 0 || ev.ErrProb > 1 || ev.NullRate < 0 || ev.NullRate > 1 {
			t.Errorf("%s: rates out of range %+v", ev.Method, ev)
		}
		if ev.Method == MethodSPA && ev.NullRate != 0 {
			t.Error("SPA never abstains")
		}
	}
	// SPA coverage on a benign population should be well within spec.
	if evals[0].ErrProb > 0.1+0.08 {
		t.Errorf("SPA error %.3f way above spec on uniform population", evals[0].ErrProb)
	}
	if _, err := e.EvaluateCI(pop, "missing", 0.5, 0.9, methods); err == nil {
		t.Error("unknown metric should error")
	}
	if _, err := e.EvaluateCI(pop, "m", 0.5, 0.9, []Method{"bogus"}); err == nil {
		t.Error("unknown method should error")
	}
}

func TestEvaluateCIRoundedTriggersNulls(t *testing.T) {
	e := NewEngine(tinyOpts())
	// Values that collapse onto very few distinct points after rounding.
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = 10 + 0.0001*float64(i%3)
	}
	pop := population.FromValues("dup", "m", vals)
	evals, err := e.EvaluateCIRounded(pop, "m", 0.5, 0.9, []Method{MethodBootstrap}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if evals[0].NullRate == 0 {
		t.Error("rounding to 3 decimals should provoke bootstrap nulls on duplicate-heavy data")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bee"}}
	tab.AddRow("1", "2")
	tab.AddRow("longer", "4")
	tab.Note("hello %d", 7)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, frag := range []string{"== x: demo ==", "a       bee", "longer", "note: hello 7"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendered table missing %q:\n%s", frag, out)
		}
	}
}

func TestMinSamplesTableHeadline(t *testing.T) {
	tab, err := MinSamplesTable()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range tab.Rows {
		if r[0] == "0.900" && r[1] == "0.900" {
			if r[2] != "22" || r[3] != "1" || r[4] != "22" || r[5] != "29" {
				t.Errorf("F=C=0.9 row wrong: %v", r)
			}
			found = true
		}
	}
	if !found {
		t.Error("F=C=0.9 row missing")
	}
}

func TestTable2MatchesConfig(t *testing.T) {
	tab := Table2()
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, frag := range []string{"4 out-of-order", "3MB/16-way", "MESI directory", "16B links", "90-cycle"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 2 missing %q", frag)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	e := NewEngine(tinyOpts())
	if _, err := e.Run("fig99"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestExperimentNamesCoverRegistry(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 19 {
		t.Errorf("expected 19 experiments, got %d: %v", len(names), names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate experiment id %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"fig1", "fig15", "table1", "table2", "minsamples", "cov"} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
}

func TestDistributionFigureContent(t *testing.T) {
	e := NewEngine(tinyOpts())
	tab, err := e.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 25 {
		t.Errorf("histogram should have 25 bins, got %d rows", len(tab.Rows))
	}
	total := 0
	for _, r := range tab.Rows {
		var c int
		if _, err := fmtSscan(r[1], &c); err != nil {
			t.Fatalf("bad count cell %q", r[1])
		}
		total += c
	}
	if total != e.Options().Runs {
		t.Errorf("histogram counts sum to %d, want %d", total, e.Options().Runs)
	}
}

// fmtSscan avoids importing fmt solely for one scan in the test body.
func fmtSscan(s string, v *int) (int, error) {
	n := 0
	for _, ch := range s {
		if ch < '0' || ch > '9' {
			break
		}
		n = n*10 + int(ch-'0')
	}
	*v = n
	return 1, nil
}

func TestSpeedupContextConsistency(t *testing.T) {
	e := NewEngine(tinyOpts())
	sc, err := e.speedupContext()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.samples) != sc.n {
		t.Errorf("speedup sample count %d != %d", len(sc.samples), sc.n)
	}
	for _, s := range sc.samples {
		if s <= 0 {
			t.Error("non-positive speedup sample")
		}
	}
	if sc.truth <= 0 {
		t.Error("non-positive ground truth")
	}
	// Ground truth sits below the median of the samples (F=0.9 AtLeast
	// targets the 0.1-quantile).
	med := 0
	for _, s := range sc.samples {
		if s > sc.truth {
			med++
		}
	}
	if med < sc.n/2 {
		t.Errorf("ground truth %.4f should sit low in the speedup distribution", sc.truth)
	}
}

func TestTable1AllTemplatesPresent(t *testing.T) {
	e := NewEngine(tinyOpts())
	tab, err := e.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("Table 1 should demo 9 templates, got %d", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		if r[0] != string(rune('1'+i)) {
			t.Errorf("row %d template id %q", i, r[0])
		}
		if r[3] != "positive" && r[3] != "negative" && r[3] != "none" {
			t.Errorf("row %d verdict %q", i, r[3])
		}
	}
}

func TestCoVTableCoversSuite(t *testing.T) {
	e := NewEngine(tinyOpts())
	tab, err := e.CoVTable()
	if err != nil {
		t.Fatal(err)
	}
	benchRows := 0
	for _, r := range tab.Rows {
		if r[0] == "benchmark l1d_mpki" {
			benchRows++
		}
	}
	if benchRows != len(benchmarks) {
		t.Errorf("CoV table has %d benchmark rows, want %d", benchRows, len(benchmarks))
	}
}

func TestFerretMetricsAreRealMetrics(t *testing.T) {
	e := NewEngine(tinyOpts())
	pop, err := e.Population("ferret", VariantDefault)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ferretMetrics {
		if _, err := pop.Metric(m); err != nil {
			t.Errorf("figure metric %q missing from simulator output: %v", m, err)
		}
	}
	if _, ok := map[string]bool{sim.MetricMaxLoadLat: true}[ferretMetrics[len(ferretMetrics)-1]]; !ok {
		t.Error("max load latency (the integer metric of Sec. 6.4) must be part of the sweep")
	}
}

func TestGeomeanErr(t *testing.T) {
	per := [][]MethodEval{
		{{ErrProb: 0.1}, {ErrProb: 0.2}},
		{{ErrProb: 0.4}, {ErrProb: 0.0}}, // zero floors at 1e-4
	}
	got := geomeanErr(0, per)
	want := 0.2 // sqrt(0.1*0.4)
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("geomeanErr = %g, want %g", got, want)
	}
	floored := geomeanErr(1, per)
	if floored <= 0 {
		t.Error("zero entries must be floored, not zero the geomean")
	}
}

func TestAblationTableShape(t *testing.T) {
	e := NewEngine(tinyOpts())
	tab, err := e.AblationTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("ablation should have 5 rows, got %d", len(tab.Rows))
	}
	// The no-injection row must be fully deterministic: CoV ≈ 0 (floating
	// roundoff only), one distinct runtime.
	none := tab.Rows[0]
	if cov, err := strconv.ParseFloat(none[1], 64); err != nil || cov > 1e-12 {
		t.Errorf("deterministic row CoV = %s, want ≈0", none[1])
	}
	if !strings.HasPrefix(none[2], "1/") {
		t.Errorf("deterministic row distinct = %s, want 1/N", none[2])
	}
	// The all-sources row must show variability.
	all := tab.Rows[4]
	if all[1] == "0" {
		t.Error("all-sources row should have nonzero CoV")
	}
}
