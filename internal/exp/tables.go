package exp

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/population"
	"repro/internal/property"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/stats"
	"repro/internal/stl"
)

// Table2 renders the simulated system parameters (the paper's Table 2),
// including the substitutions this reproduction makes.
func Table2() *Table {
	cfg := sim.DefaultConfig()
	t := &Table{
		ID:      "table2",
		Title:   "Simulated system parameters",
		Columns: []string{"parameter", "value"},
	}
	t.AddRow("cores", fmt.Sprintf("%d out-of-order-class x86 cores @ %.1f GHz", cfg.Cores, cfg.FreqGHz))
	t.AddRow("L1 I", fmt.Sprintf("%dKB/%d-way, overlapped fetch", cfg.L1ISize/1024, cfg.L1IWays))
	t.AddRow("L1 D", fmt.Sprintf("%dKB/%d-way, %d-cycle", cfg.L1DSize/1024, cfg.L1DWays, cfg.L1Latency))
	t.AddRow("shared L2", fmt.Sprintf("inclusive %dMB/%d-way, %d-cycle, %d banks",
		cfg.L2Size/(1024*1024), cfg.L2Ways, cfg.L2Latency, cfg.L2Banks))
	t.AddRow("cache block size", fmt.Sprintf("%dB", cfg.BlockSize))
	t.AddRow("memory", fmt.Sprintf("%d-cycle + uniform 0-%d cycle injected jitter", cfg.MemLatency, cfg.JitterMax))
	t.AddRow("coherence protocol", "MESI directory")
	t.AddRow("on-chip network", fmt.Sprintf("crossbar with %dB links (flit size)", cfg.LinkBytes))
	t.AddRow("branch predictor", fmt.Sprintf("bimodal, %d 2-bit counters, %d-cycle mispredict", cfg.BPEntries, cfg.MispredictPenalty))
	t.AddRow("TLB", fmt.Sprintf("%d entries, %dB pages, %d-cycle walk", cfg.TLBEntries, cfg.PageSize, cfg.TLBWalkLatency))
	t.AddRow("scheduler", fmt.Sprintf("%d-cycle quantum, %d-cycle switch", cfg.SchedQuantum, cfg.CtxSwitchCost))
	t.Note("paper used gem5 v22.1 + Ruby on x86/Ubuntu 18.04; see DESIGN.md for the substitution argument")
	return t
}

// Table1 demonstrates the nine property templates of the paper's Table 1,
// evaluating each with the SMC engine over a set of executions. Thresholds
// are calibrated from the population so the verdicts are informative.
func (e *Engine) Table1() (*Table, error) {
	// A modest execution set with traces; Table 1 is a demonstration, not
	// a statistics-heavy experiment.
	n := 40
	if e.opts.Runs < n {
		n = e.opts.Runs
	}
	cfg := sim.DefaultConfig()
	execs := make([]property.Execution, n)
	metricVals := map[string][]float64{}
	for i := 0; i < n; i++ {
		res, err := sim.Run("ferret", cfg, e.opts.Scale, e.opts.Seed*9973+uint64(i))
		if err != nil {
			return nil, err
		}
		execs[i] = property.Execution{Metrics: res.Metrics, Trace: res.Trace}
		for k, v := range res.Metrics {
			metricVals[k] = append(metricVals[k], v)
		}
	}
	q := func(metric string, f float64) float64 {
		v, err := stats.Quantile(metricVals[metric], f)
		if err != nil {
			return 0
		}
		return v
	}

	ipcHi := q(sim.MetricIPC, 0.85)
	rtLo, rtHi := q(sim.MetricRuntime, 0.05), q(sim.MetricRuntime, 0.95)
	l2Hi := q(sim.MetricL2MPKI, 0.7)
	loadHi := q(sim.MetricAvgLoadLat, 0.7)
	rtMid := q(sim.MetricRuntime, 0.3)
	// Template 4's threshold is calibrated from the observed average
	// cycles between TLB misses so the verdict is informative rather than
	// degenerate: avg = cycles / misses = 1000·cycles/(tlb_mpki·instr).
	tlbGap := 0.8 * 1000 * q(sim.MetricCycles, 0.5) /
		(q(sim.MetricTLBMPKI, 0.5) * q(sim.MetricInstructions, 0.5))

	props := []struct {
		template int
		p        property.Property
	}{
		{1, property.MetricCompare(sim.MetricIPC, stl.LT, ipcHi)},
		{2, property.MetricBetween(sim.MetricRuntime, rtHi, rtLo)},
		{3, property.TimeInState("sprint", stl.LT, 0.9)},
		{4, property.AvgCyclesPerEvent("tlb_miss", stl.GT, tlbGap)},
		{5, property.MetricImplication(sim.MetricL2MPKI, stl.GT, l2Hi, sim.MetricIPC, stl.LT, ipcHi)},
		{6, property.EventWithin("thermal_alert", "sprint_enter", 40*float64(cfg.SampleInterval), stl.GE, 0.5)},
		{7, property.LatencyImplication(sim.MetricAvgLoadLat, stl.GT, loadHi, sim.MetricRuntime, stl.GT, rtMid)},
		{8, property.StayInStateUntil("sprint_enter", "sprint", "thermal_alert", stl.GE, 0.5)},
		{9, property.ConditionalEventProb("thermal_alert", "sprint", stl.GT, 0.05, stl.LT, 0.5)},
	}

	const f, c = 0.8, 0.9
	t := &Table{
		ID:      "table1",
		Title:   "Property templates 1-9 evaluated with SMC (ferret executions)",
		Columns: []string{"template", "property", "M/N", "assertion", "C_CP"},
	}
	for _, row := range props {
		outcomes, err := row.p.Outcomes(execs)
		if err != nil {
			return nil, err
		}
		res, err := smc.CheckFixed(outcomes, f, c)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", row.template), row.p.Name,
			fmt.Sprintf("%d/%d", res.Satisfied, res.Samples),
			res.Assertion.String(), f4(res.Confidence))
	}
	t.Note("each property tested over %d executions at F=%g, C=%g", n, f, c)
	return t, nil
}

// Experiment names in presentation order.
var experimentOrder = []string{
	"table2", "fig1", "fig2", "table1", "minsamples",
	"fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "cov", "ablation",
}

// ExperimentNames lists every runnable experiment id.
func ExperimentNames() []string {
	return append([]string(nil), experimentOrder...)
}

// Run executes one experiment by id.
func (e *Engine) Run(id string) (*Table, error) {
	switch id {
	case "fig1":
		return e.Fig1()
	case "fig2":
		return e.Fig2()
	case "fig4":
		return e.Fig4()
	case "fig5":
		return e.Fig5()
	case "fig6":
		return e.Fig6()
	case "fig7":
		return e.Fig7()
	case "fig8":
		return e.Fig8()
	case "fig9":
		return e.Fig9()
	case "fig10":
		return e.Fig10()
	case "fig11":
		return e.Fig11()
	case "fig12":
		return e.Fig12()
	case "fig13":
		return e.Fig13()
	case "fig14":
		return e.Fig14()
	case "fig15":
		return e.Fig15()
	case "table1":
		return e.Table1()
	case "table2":
		return Table2(), nil
	case "minsamples":
		return MinSamplesTable()
	case "cov":
		return e.CoVTable()
	case "ablation":
		return e.AblationTable()
	default:
		names := ExperimentNames()
		sort.Strings(names)
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", id, names)
	}
}

// RunAll executes every experiment in presentation order, rendering each
// to w as it completes.
func (e *Engine) RunAll(w io.Writer) error {
	for _, id := range experimentOrder {
		t, err := e.Run(id)
		if err != nil {
			return fmt.Errorf("exp: %s: %w", id, err)
		}
		t.Render(w)
	}
	return nil
}

// AblationTable quantifies each injected variability source (Sec. 2.2's
// "how to inject variability" concern, DESIGN.md ablation #2): the CoV of
// ferret runtimes with sources enabled one at a time. With everything off
// the simulator is deterministic — the motivating failure the paper opens
// with (a deterministic simulator re-runs identically, so statistics over
// repeated runs are meaningless without injection).
func (e *Engine) AblationTable() (*Table, error) {
	cases := []struct {
		name string
		mut  func(*sim.Config)
	}{
		{"none (deterministic)", func(c *sim.Config) {
			c.JitterMax = -1
			c.ASLRPages = 0
			c.Thermal.InitSpread = 0
		}},
		{"dram jitter only", func(c *sim.Config) { c.ASLRPages = 0; c.Thermal.InitSpread = 0 }},
		{"aslr only", func(c *sim.Config) { c.JitterMax = -1; c.Thermal.InitSpread = 0 }},
		{"thermal state only", func(c *sim.Config) { c.JitterMax = -1; c.ASLRPages = 0 }},
		{"all sources", func(c *sim.Config) {}},
	}
	runs := e.opts.Runs / 4
	if runs < 12 {
		runs = 12
	}
	t := &Table{
		ID:      "ablation",
		Title:   "Variability-injection ablation: ferret runtime CoV per source",
		Columns: []string{"sources", "runtime CoV", "distinct runtimes"},
	}
	for _, cse := range cases {
		cfg := sim.DefaultConfig()
		cse.mut(&cfg)
		pop, err := population.Generate("ferret", cfg, e.opts.Scale, runs, e.opts.Seed*77, e.opts.Parallelism)
		if err != nil {
			return nil, err
		}
		xs, err := pop.Metric(sim.MetricRuntime)
		if err != nil {
			return nil, err
		}
		distinct := map[float64]bool{}
		for _, v := range xs {
			distinct[v] = true
		}
		t.AddRow(cse.name, f6(stats.CoefficientOfVariation(xs)), fmt.Sprintf("%d/%d", len(distinct), runs))
	}
	t.Note("%d runs per row at scale %g; a lone distinct runtime means no statistics are possible", runs, e.opts.Scale)
	t.Note("aslr shows no effect here because ferret's footprint fits the 3MB L2 and page-aligned offsets cannot move 64-set L1 indices; under L2 pressure (canneal, or a 512kB L2) it does perturb runtimes")
	return t, nil
}
