package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a renderable experiment result: the rows/series a paper figure
// or table reports.
type Table struct {
	ID      string // "fig6", "table2", ...
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f3, f4 and pct are the standard cell formats.
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func f6(v float64) string  { return fmt.Sprintf("%.6g", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
