// Package numeric provides the special functions required by the SMC engine
// and the baseline confidence-interval methods: the regularized incomplete
// beta function and the beta distribution (used by the Clopper–Pearson exact
// method, paper eq. 4), the normal distribution (used by the Z-score and BCa
// bootstrap baselines), and the binomial distribution (used by the rank-test
// baseline).
//
// Everything is implemented from scratch on top of the math package, since
// the module is stdlib-only. Accuracy targets are absolute error below 1e-12
// for CDFs over their full domains and 1e-9 for quantiles, which is far
// tighter than anything the statistical methodology is sensitive to.
package numeric
