package numeric

import "math"

// LogChoose returns ln C(n, k) for 0 ≤ k ≤ n, and NaN otherwise.
func LogChoose(n, k int) float64 {
	if k < 0 || n < 0 || k > n {
		return math.NaN()
	}
	ln1, _ := math.Lgamma(float64(n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(n-k) + 1)
	return ln1 - lk - lnk
}

// BinomialPMF returns P(X = k) for X ~ Binom(n, p), computed in log space so
// it stays finite for large n.
func BinomialPMF(k, n int, p float64) float64 {
	if k < 0 || k > n || n < 0 || p < 0 || p > 1 {
		return 0
	}
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	return math.Exp(LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

// BinomialCDF returns P(X ≤ k) for X ~ Binom(n, p), using the identity
// P(X ≤ k) = I_{1−p}(n−k, k+1) with the regularized incomplete beta function.
func BinomialCDF(k, n int, p float64) float64 {
	switch {
	case n < 0 || p < 0 || p > 1:
		return math.NaN()
	case k < 0:
		return 0
	case k >= n:
		return 1
	}
	return RegIncBeta(1-p, float64(n-k), float64(k)+1)
}

// BinomialQuantile returns the smallest k with P(X ≤ k) ≥ q for
// X ~ Binom(n, p). It binary-searches the CDF.
func BinomialQuantile(q float64, n int, p float64) int {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return n
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if BinomialCDF(mid, n, p) >= q {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
