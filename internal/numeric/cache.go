package numeric

import (
	"sync"
	"sync/atomic"
)

// betaQuantileKey identifies one inversion. The SMC engine's inversions are
// keyed by integer counts and a confidence level — BetaQuantile(α/2, M,
// N−M+1) and friends — so the float triple is exact and collision-free for
// every (n, m, c) the callers can produce.
type betaQuantileKey struct{ p, a, b float64 }

var (
	betaQuantileCache     sync.Map // betaQuantileKey → float64
	betaQuantileCacheSize atomic.Int64
)

// betaQuantileCacheCap bounds the memo. Campaigns revisit a small set of
// (n, m, c) triples thousands of times (every trial at the same sample size
// hits the same inversions), so a few thousand entries cover the working
// set; past the cap new triples are computed without being stored, which
// keeps the cache O(1)-bounded without eviction machinery.
const betaQuantileCacheCap = 1 << 13

// BetaQuantileCached is BetaQuantile through a concurrent memo. The cache
// stores the value BetaQuantile computed — it never recomputes along a
// different path — so cached and uncached results are bit-identical
// (pinned by TestBetaQuantileCachedBitIdentical). Domain errors are
// returned without populating the cache.
func BetaQuantileCached(p, a, b float64) (float64, error) {
	key := betaQuantileKey{p: p, a: a, b: b}
	if v, ok := betaQuantileCache.Load(key); ok {
		return v.(float64), nil
	}
	v, err := BetaQuantile(p, a, b)
	if err != nil {
		return v, err
	}
	if betaQuantileCacheSize.Load() < betaQuantileCacheCap {
		if _, loaded := betaQuantileCache.LoadOrStore(key, v); !loaded {
			betaQuantileCacheSize.Add(1)
		}
	}
	return v, nil
}
