package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10},
		{10, 5, 252},
		{22, 0, 1},
		{22, 22, 1},
		{52, 5, 2598960},
	}
	for _, c := range cases {
		got := math.Exp(LogChoose(c.n, c.k))
		if math.Abs(got-c.want)/c.want > 1e-10 {
			t.Errorf("C(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
	if !math.IsNaN(LogChoose(3, 5)) || !math.IsNaN(LogChoose(-1, 0)) {
		t.Error("LogChoose out of domain should be NaN")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 7, 22, 100} {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += BinomialPMF(k, n, p)
			}
			if math.Abs(sum-1) > 1e-10 {
				t.Errorf("sum PMF(n=%d,p=%g) = %g", n, p, sum)
			}
		}
	}
}

func TestBinomialPMFDegenerate(t *testing.T) {
	if BinomialPMF(0, 5, 0) != 1 || BinomialPMF(1, 5, 0) != 0 {
		t.Error("p=0 PMF wrong")
	}
	if BinomialPMF(5, 5, 1) != 1 || BinomialPMF(4, 5, 1) != 0 {
		t.Error("p=1 PMF wrong")
	}
	if BinomialPMF(-1, 5, 0.5) != 0 || BinomialPMF(6, 5, 0.5) != 0 {
		t.Error("out-of-range k PMF should be 0")
	}
}

func TestBinomialCDFMatchesPMFSum(t *testing.T) {
	for _, n := range []int{3, 22, 60} {
		for _, p := range []float64{0.05, 0.5, 0.9} {
			run := 0.0
			for k := 0; k < n; k++ {
				run += BinomialPMF(k, n, p)
				got := BinomialCDF(k, n, p)
				if math.Abs(got-run) > 1e-10 {
					t.Errorf("CDF(%d;%d,%g) = %.12f, PMF sum %.12f", k, n, p, got, run)
				}
			}
		}
	}
}

func TestBinomialCDFEdges(t *testing.T) {
	if BinomialCDF(-1, 10, 0.5) != 0 {
		t.Error("CDF below support should be 0")
	}
	if BinomialCDF(10, 10, 0.5) != 1 || BinomialCDF(42, 10, 0.5) != 1 {
		t.Error("CDF at/above support should be 1")
	}
	if !math.IsNaN(BinomialCDF(2, -1, 0.5)) {
		t.Error("negative n should be NaN")
	}
}

func TestBinomialQuantileInvertsCDF(t *testing.T) {
	f := func(nr, pr, qr uint16) bool {
		n := int(nr%200) + 1
		p := (float64(pr%999) + 0.5) / 1000.0
		q := (float64(qr%999) + 0.5) / 1000.0
		k := BinomialQuantile(q, n, p)
		if BinomialCDF(k, n, p) < q {
			return false
		}
		if k > 0 && BinomialCDF(k-1, n, p) >= q {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBinomialQuantileEdges(t *testing.T) {
	if BinomialQuantile(0, 10, 0.5) != 0 {
		t.Error("q=0 quantile should be 0")
	}
	if BinomialQuantile(1, 10, 0.5) != 10 {
		t.Error("q=1 quantile should be n")
	}
}
