package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-2.5758293035489004, 0.005},
		{3, 0.9986501019683699},
		{-6, 9.865876450376946e-10},
	}
	for _, c := range cases {
		got := NormalCDF(c.x)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%g) = %.16g, want %.16g", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.995, 2.5758293035489004},
		{0.9995, 3.2905267314919255},
		{0.025, -1.959963984540054},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalQuantile(%g) = %.12g, want %.12g", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("NormalQuantile outside [0,1] should be NaN")
	}
}

// Round trip Φ(Φ⁻¹(p)) = p across the open interval, including deep tails.
func TestNormalRoundTripProperty(t *testing.T) {
	f := func(r uint32) bool {
		p := (float64(r%999999) + 0.5) / 1000000.0
		back := NormalCDF(NormalQuantile(p))
		return math.Abs(back-p) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Antisymmetry: Φ⁻¹(1−p) = −Φ⁻¹(p).
func TestNormalQuantileAntisymmetryProperty(t *testing.T) {
	f := func(r uint32) bool {
		p := (float64(r%499999) + 0.5) / 1000000.0
		return math.Abs(NormalQuantile(1-p)+NormalQuantile(p)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestNormalPDFSymmetricAndNormalized(t *testing.T) {
	if math.Abs(NormalPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-15 {
		t.Error("NormalPDF(0) wrong")
	}
	for _, x := range []float64{0.5, 1, 2.5} {
		if math.Abs(NormalPDF(x)-NormalPDF(-x)) > 1e-15 {
			t.Errorf("NormalPDF not symmetric at %g", x)
		}
	}
	// ∫pdf ≈ 1 via trapezoid over [-8, 8].
	const n = 8000
	sum := 0.0
	for i := 0; i <= n; i++ {
		x := -8 + 16*float64(i)/n
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		sum += w * NormalPDF(x) * 16 / n
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("∫pdf = %g, want 1", sum)
	}
}
