package numeric

import (
	"math"
	"sync"
	"testing"
)

// TestBetaQuantileCachedBitIdentical pins the cache's contract: the memoized
// value is the exact float64 BetaQuantile computed — cached and uncached
// results agree to the last bit, on first call (miss) and on repeat (hit).
func TestBetaQuantileCachedBitIdentical(t *testing.T) {
	// The grid mirrors the Clopper–Pearson callers: integer m out of n at a
	// handful of confidence levels.
	for _, n := range []int{5, 22, 100, 1000} {
		for _, m := range []int{1, n / 2, n - 1} {
			for _, c := range []float64{0.9, 0.95, 0.99} {
				alpha := 1 - c
				for _, args := range [][3]float64{
					{alpha / 2, float64(m), float64(n-m) + 1},
					{1 - alpha/2, float64(m) + 1, float64(n - m)},
				} {
					want, err := BetaQuantile(args[0], args[1], args[2])
					if err != nil {
						t.Fatalf("BetaQuantile(%v): %v", args, err)
					}
					for pass := 0; pass < 2; pass++ { // miss, then hit
						got, err := BetaQuantileCached(args[0], args[1], args[2])
						if err != nil {
							t.Fatalf("BetaQuantileCached(%v) pass %d: %v", args, pass, err)
						}
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("BetaQuantileCached(%v) pass %d = %x, uncached %x",
								args, pass, math.Float64bits(got), math.Float64bits(want))
						}
					}
				}
			}
		}
	}
}

// TestBetaQuantileCachedConcurrent hammers one key and a spread of keys from
// many goroutines; every result must equal the uncached value (run under
// -race in CI).
func TestBetaQuantileCachedConcurrent(t *testing.T) {
	want, err := BetaQuantile(0.05, 11, 12)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := BetaQuantileCached(0.05, 11, 12)
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("goroutine %d: got %x, want %x", g, math.Float64bits(got), math.Float64bits(want))
					return
				}
				// A per-goroutine key keeps store traffic flowing too.
				if _, err := BetaQuantileCached(0.025, float64(g+1), float64(i+1)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBetaQuantileCachedErrors checks domain errors pass through uncached.
func TestBetaQuantileCachedErrors(t *testing.T) {
	if _, err := BetaQuantileCached(-0.1, 2, 3); err == nil {
		t.Error("p<0 should error")
	}
	if _, err := BetaQuantileCached(0.5, 0, 3); err == nil {
		t.Error("a=0 should error")
	}
}
