package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{1, 1, 0},                     // B(1,1) = 1
		{2, 2, math.Log(1.0 / 6.0)},   // B(2,2) = 1/6
		{0.5, 0.5, math.Log(math.Pi)}, // B(1/2,1/2) = π
		{3, 4, math.Log(1.0 / 60.0)},  // B(3,4) = 1/60
		{10, 10, math.Log(362880.0 * 362880.0 / 121645100408832000.0)}, // Γ(10)²/Γ(20)
	}
	for _, c := range cases {
		got := LogBeta(c.a, c.b)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("LogBeta(%g,%g) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestLogBetaDomain(t *testing.T) {
	for _, pair := range [][2]float64{{0, 1}, {-1, 2}, {1, 0}, {3, -0.5}} {
		if !math.IsNaN(LogBeta(pair[0], pair[1])) {
			t.Errorf("LogBeta(%g,%g) should be NaN", pair[0], pair[1])
		}
	}
}

func TestRegIncBetaBoundaries(t *testing.T) {
	if got := RegIncBeta(0, 2, 3); got != 0 {
		t.Errorf("I_0(2,3) = %g, want 0", got)
	}
	if got := RegIncBeta(1, 2, 3); got != 1 {
		t.Errorf("I_1(2,3) = %g, want 1", got)
	}
	if got := RegIncBeta(-0.5, 2, 3); got != 0 {
		t.Errorf("I_{-0.5}(2,3) = %g, want 0 (clamped)", got)
	}
	if got := RegIncBeta(1.5, 2, 3); got != 1 {
		t.Errorf("I_{1.5}(2,3) = %g, want 1 (clamped)", got)
	}
	if !math.IsNaN(RegIncBeta(0.5, 0, 1)) {
		t.Error("I_x(0,1) should be NaN")
	}
}

// For integer a=1, I_x(1,b) = 1-(1-x)^b has a closed form.
func TestRegIncBetaClosedFormA1(t *testing.T) {
	for _, b := range []float64{1, 2, 5, 17.5} {
		for _, x := range []float64{0.01, 0.2, 0.5, 0.8, 0.99} {
			want := 1 - math.Pow(1-x, b)
			got := RegIncBeta(x, 1, b)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("I_%g(1,%g) = %.15g, want %.15g", x, b, got, want)
			}
		}
	}
}

// I_x(a,1) = x^a.
func TestRegIncBetaClosedFormB1(t *testing.T) {
	for _, a := range []float64{1, 3, 8, 22} {
		for _, x := range []float64{0.05, 0.33, 0.9, 0.999} {
			want := math.Pow(x, a)
			got := RegIncBeta(x, a, 1)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("I_%g(%g,1) = %.15g, want %.15g", x, a, got, want)
			}
		}
	}
}

// Reference values computed with scipy.special.betainc.
func TestRegIncBetaReferenceValues(t *testing.T) {
	cases := []struct {
		x, a, b, want float64
	}{
		{0.5, 2, 3, 0.6875},
		{0.3, 5, 5, 0.09880866},
		{0.9, 10, 2, 0.69735688},
		{0.1, 0.5, 0.5, 0.20483276},
		{0.75, 22, 1, 0.001783807}, // 0.75^22
		{0.5, 100, 100, 0.5},
		{0.6, 2, 2, 0.648},     // 3x²−2x³
		{0.25, 4, 2, 0.015625}, // P(X≥4), X~Binom(5,1/4)
	}
	for _, c := range cases {
		got := RegIncBeta(c.x, c.a, c.b)
		if math.Abs(got-c.want) > 1e-7 {
			t.Errorf("I_%g(%g,%g) = %.8f, want %.8f", c.x, c.a, c.b, got, c.want)
		}
	}
}

// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
func TestRegIncBetaSymmetryProperty(t *testing.T) {
	f := func(xr, ar, br uint16) bool {
		x := float64(xr%1000)/1000.0 + 0.0005
		a := float64(ar%500)/10.0 + 0.1
		b := float64(br%500)/10.0 + 0.1
		lhs := RegIncBeta(x, a, b)
		rhs := 1 - RegIncBeta(1-x, b, a)
		return math.Abs(lhs-rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Monotonicity in x.
func TestRegIncBetaMonotoneProperty(t *testing.T) {
	f := func(x1r, x2r, ar, br uint16) bool {
		x1 := float64(x1r%1000) / 1000.0
		x2 := float64(x2r%1000) / 1000.0
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		a := float64(ar%300)/10.0 + 0.2
		b := float64(br%300)/10.0 + 0.2
		return RegIncBeta(x1, a, b) <= RegIncBeta(x2, a, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Values stay inside [0,1].
func TestRegIncBetaRangeProperty(t *testing.T) {
	f := func(xr, ar, br uint32) bool {
		x := float64(xr%10000) / 10000.0
		a := float64(ar%2000)/10.0 + 0.05
		b := float64(br%2000)/10.0 + 0.05
		v := RegIncBeta(x, a, b)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestBetaQuantileRoundTrip(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2, 10, 22} {
		for _, b := range []float64{0.5, 1, 3, 15} {
			for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
				x, err := BetaQuantile(p, a, b)
				if err != nil {
					t.Fatalf("BetaQuantile(%g,%g,%g): %v", p, a, b, err)
				}
				back := BetaCDF(x, a, b)
				if math.Abs(back-p) > 1e-9 {
					t.Errorf("CDF(Quantile(%g); %g,%g) = %g", p, a, b, back)
				}
			}
		}
	}
}

func TestBetaQuantileEdges(t *testing.T) {
	if x, err := BetaQuantile(0, 2, 3); err != nil || x != 0 {
		t.Errorf("BetaQuantile(0) = %g, %v", x, err)
	}
	if x, err := BetaQuantile(1, 2, 3); err != nil || x != 1 {
		t.Errorf("BetaQuantile(1) = %g, %v", x, err)
	}
	if _, err := BetaQuantile(0.5, -1, 3); err == nil {
		t.Error("BetaQuantile with a<0 should error")
	}
	if _, err := BetaQuantile(1.5, 1, 1); err == nil {
		t.Error("BetaQuantile with p>1 should error")
	}
}

func TestBetaPDFIntegratesToCDF(t *testing.T) {
	// Trapezoidal integration of the PDF should reproduce the CDF.
	const steps = 20000
	a, b := 2.5, 4.0
	sum := 0.0
	prev := BetaPDF(0, a, b)
	for i := 1; i <= steps; i++ {
		x := float64(i) / steps
		cur := BetaPDF(x, a, b)
		sum += (prev + cur) / 2 / steps
		prev = cur
		if i == steps/2 {
			want := BetaCDF(0.5, a, b)
			if math.Abs(sum-want) > 1e-5 {
				t.Errorf("∫pdf to 0.5 = %g, CDF = %g", sum, want)
			}
		}
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("∫pdf over [0,1] = %g, want 1", sum)
	}
}

func TestBetaPDFEdges(t *testing.T) {
	if v := BetaPDF(0, 0.5, 1); !math.IsInf(v, 1) {
		t.Errorf("BetaPDF(0; .5,1) = %g, want +Inf", v)
	}
	if v := BetaPDF(0, 1, 3); v != 3 {
		t.Errorf("BetaPDF(0; 1,3) = %g, want 3", v)
	}
	if v := BetaPDF(1, 3, 1); v != 3 {
		t.Errorf("BetaPDF(1; 3,1) = %g, want 3", v)
	}
	if v := BetaPDF(0, 2, 3); v != 0 {
		t.Errorf("BetaPDF(0; 2,3) = %g, want 0", v)
	}
	if v := BetaPDF(1, 0.7, 0.5); !math.IsInf(v, 1) {
		t.Errorf("BetaPDF(1; .7,.5) = %g, want +Inf", v)
	}
	if !math.IsNaN(BetaPDF(0.5, -1, 1)) {
		t.Error("BetaPDF with a<0 should be NaN")
	}
}
