package numeric

import (
	"errors"
	"math"
)

// ErrDomain reports an argument outside a function's domain.
var ErrDomain = errors.New("numeric: argument out of domain")

// LogBeta returns ln B(a, b) = lnΓ(a) + lnΓ(b) − lnΓ(a+b) for a, b > 0.
// It returns NaN if either argument is non-positive.
func LogBeta(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return math.NaN()
	}
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// for a, b > 0 and x in [0, 1]. I_x(a, b) is the CDF of the Beta(a, b)
// distribution evaluated at x.
//
// The implementation follows the standard approach: evaluate the continued
// fraction of Lentz's method on whichever of I_x(a,b) or 1−I_{1−x}(b,a)
// converges fastest (x < (a+1)/(a+b+2) uses the direct form).
func RegIncBeta(x, a, b float64) float64 {
	switch {
	case a <= 0 || b <= 0 || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// Prefactor x^a (1-x)^b / (a B(a,b)) computed in log space to avoid
	// under/overflow for large shape parameters.
	logPre := a*math.Log(x) + b*math.Log1p(-x) - LogBeta(a, b)
	if x < (a+1)/(a+b+2) {
		return math.Exp(logPre) * betaCF(x, a, b) / a
	}
	return 1 - math.Exp(logPre)*betaCF(1-x, b, a)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// using the modified Lentz algorithm (Numerical Recipes §6.4).
func betaCF(x, a, b float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-15
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h
		}
	}
	// The fraction converges within a handful of iterations for every
	// (M, N) pair the SMC engine can produce; hitting the cap indicates a
	// pathological argument, for which the partial evaluation is still the
	// best available answer.
	return h
}

// BetaCDF returns P(X ≤ x) for X ~ Beta(a, b). It is an alias of RegIncBeta
// kept for call-site readability in the SMC engine.
func BetaCDF(x, a, b float64) float64 { return RegIncBeta(x, a, b) }

// BetaPDF returns the density of Beta(a, b) at x.
func BetaPDF(x, a, b float64) float64 {
	if a <= 0 || b <= 0 || x < 0 || x > 1 {
		return math.NaN()
	}
	if x == 0 {
		switch {
		case a < 1:
			return math.Inf(1)
		case a == 1:
			return b
		default:
			return 0
		}
	}
	if x == 1 {
		switch {
		case b < 1:
			return math.Inf(1)
		case b == 1:
			return a
		default:
			return 0
		}
	}
	return math.Exp((a-1)*math.Log(x) + (b-1)*math.Log1p(-x) - LogBeta(a, b))
}

// BetaQuantile returns the p-quantile of Beta(a, b): the x with
// BetaCDF(x, a, b) = p. It uses bisection refined by Newton steps and
// converges to about 1e-12 absolute error.
func BetaQuantile(p, a, b float64) (float64, error) {
	if a <= 0 || b <= 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN(), ErrDomain
	}
	if p == 0 {
		return 0, nil
	}
	if p == 1 {
		return 1, nil
	}
	lo, hi := 0.0, 1.0
	x := a / (a + b) // mean as the starting point
	for i := 0; i < 200; i++ {
		f := BetaCDF(x, a, b) - p
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		// Newton step, falling back to bisection when it escapes the
		// bracket or the density is degenerate.
		d := BetaPDF(x, a, b)
		var next float64
		if d > 0 && !math.IsInf(d, 1) {
			next = x - f/d
		}
		if !(next > lo && next < hi) {
			next = (lo + hi) / 2
		}
		if math.Abs(next-x) < 1e-14 {
			return next, nil
		}
		x = next
	}
	return x, nil
}
