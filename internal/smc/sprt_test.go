package smc

import (
	"errors"
	"testing"

	"repro/internal/randx"
)

func TestNewSPRTValidation(t *testing.T) {
	if _, err := NewSPRT(0.9, 0.9, 0); err == nil {
		t.Error("zero delta should error")
	}
	if _, err := NewSPRT(0.95, 0.9, 0.1); err == nil {
		t.Error("indifference region escaping 1 should error")
	}
	if _, err := NewSPRT(0.05, 0.9, 0.1); err == nil {
		t.Error("indifference region escaping 0 should error")
	}
	if _, err := NewSPRT(1.5, 0.9, 0.05); err == nil {
		t.Error("F out of range should error")
	}
	if _, err := NewSPRT(0.5, 0.9, 0.1); err != nil {
		t.Error("valid SPRT construction failed")
	}
}

func TestSPRTDecidesClearCases(t *testing.T) {
	sprt, err := NewSPRT(0.5, 0.95, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// True p = 0.9 ≫ 0.6: expect positive.
	r := randx.New(1)
	res, err := sprt.Check(SamplerFunc(func() (bool, error) { return r.Bernoulli(0.9), nil }), 0)
	if err != nil || res.Assertion != Positive {
		t.Errorf("p=0.9: %+v, %v", res, err)
	}
	// True p = 0.1 ≪ 0.4: expect negative.
	r2 := randx.New(2)
	res, err = sprt.Check(SamplerFunc(func() (bool, error) { return r2.Bernoulli(0.1), nil }), 0)
	if err != nil || res.Assertion != Negative {
		t.Errorf("p=0.1: %+v, %v", res, err)
	}
}

func TestSPRTAccuracyOverTrials(t *testing.T) {
	sprt, err := NewSPRT(0.7, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	wrong, done := 0, 0
	for i := 0; i < 200; i++ {
		r := randx.New(uint64(9000 + i))
		res, err := sprt.Check(SamplerFunc(func() (bool, error) { return r.Bernoulli(0.95), nil }), 100000)
		if err != nil {
			continue
		}
		done++
		if res.Assertion != Positive {
			wrong++
		}
	}
	if done == 0 {
		t.Fatal("no SPRT trials converged")
	}
	if rate := float64(wrong) / float64(done); rate > 0.1 {
		t.Errorf("SPRT error rate %.3f exceeds 0.1", rate)
	}
}

func TestSPRTBudgetAndErrors(t *testing.T) {
	sprt, _ := NewSPRT(0.5, 0.999, 0.01)
	r := randx.New(3)
	// p sits inside the indifference region: likelihood drifts slowly, so a
	// tiny budget must exhaust.
	_, err := sprt.Check(SamplerFunc(func() (bool, error) { return r.Bernoulli(0.5), nil }), 3)
	if !errors.Is(err, ErrSampleBudget) {
		t.Errorf("expected budget error, got %v", err)
	}
	boom := errors.New("boom")
	if _, err := sprt.Check(SamplerFunc(func() (bool, error) { return false, boom }), 0); !errors.Is(err, boom) {
		t.Errorf("sampler error not propagated: %v", err)
	}
}

// SPRT and Clopper–Pearson must agree on clear-cut instances.
func TestSPRTAgreesWithCP(t *testing.T) {
	for i, p := range []float64{0.99, 0.3} {
		sprt, _ := NewSPRT(0.8, 0.9, 0.05)
		r1 := randx.New(uint64(40 + i))
		sres, err := sprt.Check(SamplerFunc(func() (bool, error) { return r1.Bernoulli(p), nil }), 0)
		if err != nil {
			t.Fatal(err)
		}
		r2 := randx.New(uint64(80 + i))
		cres, err := CheckSequential(SamplerFunc(func() (bool, error) { return r2.Bernoulli(p), nil }), 0.8, 0.9, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sres.Assertion != cres.Assertion {
			t.Errorf("p=%g: SPRT %v vs CP %v", p, sres.Assertion, cres.Assertion)
		}
	}
}
