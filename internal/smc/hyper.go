package smc

import (
	"errors"
	"fmt"
)

// Hyperproperty support (paper Sec. 3.1, flagged as future work): whereas a
// property is evaluated on a single execution, a hyperproperty is evaluated
// on a k-tuple of executions taken together — e.g. "the runtimes of any two
// executions differ by less than a threshold". Statistically nothing
// changes: the truth value of the hyperproperty on an independently drawn
// tuple is still a Bernoulli sample, so the same Clopper–Pearson machinery
// applies with tuples as the sampling unit.

// HyperProperty is a predicate over a k-tuple of per-execution metric
// values.
type HyperProperty func(tuple []float64) bool

// CheckHyperFixed partitions values into consecutive disjoint k-tuples,
// evaluates the hyperproperty on each, and runs the fixed-sample test
// (Algorithm 2) on the outcomes. Disjoint tuples keep the samples
// independent, which the binomial analysis requires. Leftover values that
// do not fill a final tuple are discarded.
func CheckHyperFixed(values []float64, k int, hp HyperProperty, f, c float64) (Result, error) {
	if k < 2 {
		return Result{}, errors.New("smc: hyperproperty arity must be ≥ 2")
	}
	if len(values) < k {
		return Result{}, fmt.Errorf("smc: need at least %d values for arity-%d hyperproperty", k, k)
	}
	tuples := len(values) / k
	outcomes := make([]bool, tuples)
	for i := 0; i < tuples; i++ {
		outcomes[i] = hp(values[i*k : (i+1)*k])
	}
	return CheckFixed(outcomes, f, c)
}

// HyperSampler adapts a per-execution metric sampler into a boolean Sampler
// over k-tuples, for use with the sequential Algorithm 1.
func HyperSampler(draw func() (float64, error), k int, hp HyperProperty) Sampler {
	return SamplerFunc(func() (bool, error) {
		tuple := make([]float64, k)
		for i := range tuple {
			v, err := draw()
			if err != nil {
				return false, err
			}
			tuple[i] = v
		}
		return hp(tuple), nil
	})
}

// MaxPairwiseGapWithin returns a 2-ary hyperproperty that holds when the
// absolute difference of the two executions' metrics is at most eps — the
// paper's motivating example of studying "whether the performance of
// multiple executions will differ by less than a given threshold".
func MaxPairwiseGapWithin(eps float64) HyperProperty {
	return func(tuple []float64) bool {
		lo, hi := tuple[0], tuple[0]
		for _, v := range tuple[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi-lo <= eps
	}
}
