package smc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func TestProportionIntervalValidation(t *testing.T) {
	if _, err := ProportionInterval(0, 0, 0.9); err == nil {
		t.Error("N=0 should error")
	}
	if _, err := ProportionInterval(-1, 5, 0.9); err == nil {
		t.Error("M<0 should error")
	}
	if _, err := ProportionInterval(6, 5, 0.9); err == nil {
		t.Error("M>N should error")
	}
	if _, err := ProportionInterval(3, 5, 1); err == nil {
		t.Error("C=1 should error")
	}
}

func TestProportionIntervalEdges(t *testing.T) {
	// M=0: lower bound exactly 0; upper = 1-(α/2)^(1/N).
	iv, err := ProportionInterval(0, 22, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 0 {
		t.Errorf("M=0 lower = %g", iv.Lo)
	}
	wantHi := 1 - math.Pow(0.05, 1.0/22)
	if math.Abs(iv.Hi-wantHi) > 1e-9 {
		t.Errorf("M=0 upper = %g, want %g", iv.Hi, wantHi)
	}
	// M=N: upper exactly 1; lower = (α/2)^(1/N).
	iv, err = ProportionInterval(22, 22, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Hi != 1 {
		t.Errorf("M=N upper = %g", iv.Hi)
	}
	wantLo := math.Pow(0.05, 1.0/22)
	if math.Abs(iv.Lo-wantLo) > 1e-9 {
		t.Errorf("M=N lower = %g, want %g", iv.Lo, wantLo)
	}
}

// Exact coverage: across many Bernoulli samples, the CP interval covers the
// true p at least C of the time.
func TestProportionIntervalCoverage(t *testing.T) {
	const trials, n, c = 500, 22, 0.9
	for _, p := range []float64{0.1, 0.5, 0.9} {
		misses := 0
		r := randx.New(321)
		for i := 0; i < trials; i++ {
			m := 0
			for j := 0; j < n; j++ {
				if r.Bernoulli(p) {
					m++
				}
			}
			iv, err := ProportionInterval(m, n, c)
			if err != nil {
				t.Fatal(err)
			}
			if !iv.Contains(p) {
				misses++
			}
		}
		if rate := float64(misses) / trials; rate > 1-c+0.03 {
			t.Errorf("p=%g: miss rate %.3f exceeds %.3f", p, rate, 1-c)
		}
	}
}

// The interval must contain the point estimate M/N and be ordered.
func TestProportionIntervalContainsEstimateProperty(t *testing.T) {
	f := func(mr, nr uint8, cr uint16) bool {
		n := int(nr%100) + 1
		m := int(mr) % (n + 1)
		c := 0.5 + 0.49*float64(cr%1000)/1000.0
		iv, err := ProportionInterval(m, n, c)
		if err != nil {
			return false
		}
		if !(iv.Lo <= iv.Hi && iv.Lo >= 0 && iv.Hi <= 1) {
			return false
		}
		return iv.Contains(float64(m) / float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Consistency with the hypothesis test: if the CP test asserts positive for
// threshold F at confidence c, then F must lie at or below the interval's
// upper bound; a negative assertion pins F above the lower bound.
func TestProportionIntervalConsistentWithAssertions(t *testing.T) {
	for _, tc := range []struct{ m, n int }{{20, 22}, {5, 22}, {11, 22}, {40, 45}} {
		iv, err := ProportionInterval(tc.m, tc.n, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []float64{0.05, 0.3, 0.5, 0.7, 0.95} {
			a, conf := Confidence(tc.m, tc.n, f)
			if conf < 0.95 { // interval uses α/2 per side
				continue
			}
			switch a {
			case Positive:
				if f > iv.Hi+1e-9 {
					t.Errorf("M=%d N=%d: positive at F=%g but interval %+v", tc.m, tc.n, f, iv)
				}
			case Negative:
				if f < iv.Lo-1e-9 {
					t.Errorf("M=%d N=%d: negative at F=%g but interval %+v", tc.m, tc.n, f, iv)
				}
			}
		}
	}
}

func TestProportionIntervalFromOutcomes(t *testing.T) {
	outcomes := []bool{true, true, true, false}
	iv, err := ProportionIntervalFromOutcomes(outcomes, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(0.75) {
		t.Errorf("interval %+v should contain 3/4", iv)
	}
	if _, err := ProportionIntervalFromOutcomes(nil, 0.9); err == nil {
		t.Error("empty outcomes should error")
	}
}
