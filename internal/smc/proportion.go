package smc

import (
	"errors"
	"fmt"

	"repro/internal/numeric"
	"repro/internal/stats"
)

// ProportionInterval returns the two-sided Clopper–Pearson confidence
// interval for the satisfaction probability p itself, given M successes in
// N samples at confidence c. This complements the hypothesis-testing API:
// instead of asking "is p ≥ F?", it reports the range of F values any such
// test could not reject — which is how SPA's per-property uncertainty is
// best summarized when no specific threshold is of interest.
//
// The bounds are the exact beta-quantile forms: with α = 1−c,
//
//	lower = BetaQuantile(α/2; M, N−M+1)     (0 when M = 0)
//	upper = BetaQuantile(1−α/2; M+1, N−M)   (1 when M = N)
//
// Coverage is ≥ c for every N and p, by the same argument as eq. 4.
func ProportionInterval(m, n int, c float64) (stats.Interval, error) {
	if n <= 0 || m < 0 || m > n {
		return stats.Interval{}, fmt.Errorf("smc: invalid counts M=%d, N=%d", m, n)
	}
	if c <= 0 || c >= 1 {
		return stats.Interval{}, errors.New("smc: confidence outside (0,1)")
	}
	// The inversions are memoized by (n, m, c) — campaigns re-derive the
	// same Clopper–Pearson bounds for every trial at a fixed sample size,
	// and the cache returns the exact bits the uncached path computes.
	alpha := 1 - c
	lo := 0.0
	if m > 0 {
		v, err := numeric.BetaQuantileCached(alpha/2, float64(m), float64(n-m)+1)
		if err != nil {
			return stats.Interval{}, err
		}
		lo = v
	}
	hi := 1.0
	if m < n {
		v, err := numeric.BetaQuantileCached(1-alpha/2, float64(m)+1, float64(n-m))
		if err != nil {
			return stats.Interval{}, err
		}
		hi = v
	}
	return stats.Interval{Lo: lo, Hi: hi}, nil
}

// ProportionIntervalFromOutcomes is ProportionInterval over a boolean
// outcome sample.
func ProportionIntervalFromOutcomes(outcomes []bool, c float64) (stats.Interval, error) {
	m := 0
	for _, ok := range outcomes {
		if ok {
			m++
		}
	}
	return ProportionInterval(m, len(outcomes), c)
}
