// Package smc implements the statistical model checking engine of the paper
// (Sec. 3.3): hypothesis tests of the form
//
//	P_{σ∼S}(φ holds on σ) ≥ F
//
// evaluated with the Clopper–Pearson exact method (paper eq. 4–5), both in
// the textbook sequential form (Algorithm 1) and in the fixed-sample-size
// form the SPA framework requires (Algorithm 2). It also provides the
// minimum-sample computation of Sec. 4.3 (eq. 6–8), a Sequential Probability
// Ratio Test alternative, and hyperproperty checking over execution tuples
// (both flagged as extensions in the paper).
//
// The engine is deliberately agnostic about what an "execution" is: a sample
// is just the boolean outcome of evaluating a property φ on one execution σ
// (paper eq. 2). Property evaluation itself lives in internal/stl and
// internal/property.
package smc

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Assertion is the verdict of an SMC hypothesis test (paper eq. 3).
type Assertion int

const (
	// Inconclusive is Algorithm 2's "None": the fixed sample set did not
	// reach the requested confidence.
	Inconclusive Assertion = iota
	// Negative asserts P(φ) < F.
	Negative
	// Positive asserts P(φ) ≥ F.
	Positive
)

// String implements fmt.Stringer.
func (a Assertion) String() string {
	switch a {
	case Positive:
		return "positive"
	case Negative:
		return "negative"
	default:
		return "none"
	}
}

// Result is the outcome of an SMC check.
type Result struct {
	Assertion  Assertion
	Confidence float64 // achieved Clopper–Pearson confidence C_CP
	Satisfied  int     // M: executions on which φ held
	Samples    int     // N: executions tested
}

// Converged reports whether the achieved confidence reached the target, in
// which case Assertion is Positive or Negative rather than Inconclusive.
func (r Result) Converged() bool { return r.Assertion != Inconclusive }

// validate checks shared parameter domains.
func validate(f, c float64) error {
	if math.IsNaN(f) || f < 0 || f > 1 {
		return fmt.Errorf("smc: proportion F=%v outside [0,1]", f)
	}
	if math.IsNaN(c) || c <= 0 || c >= 1 {
		return fmt.Errorf("smc: confidence C=%v outside (0,1)", c)
	}
	return nil
}

// Confidence computes the Clopper–Pearson confidence level C_CP(a,b|M,N) of
// the statistical assertion for P(φ) ≥ F after observing M successes in N
// samples (paper eq. 4 with the bounds of eq. 5). The returned assertion is
// Negative when M/N < F and Positive otherwise (paper eq. 3).
func Confidence(m, n int, f float64) (Assertion, float64) {
	if n <= 0 || m < 0 || m > n {
		return Inconclusive, 0
	}
	nn := float64(n)
	negative := float64(m)/nn < f
	var a, b float64
	if negative {
		a, b = 0, f
	} else {
		a, b = f, 1
	}
	var c float64
	switch {
	case m == 0:
		c = math.Pow(1-a, nn) - math.Pow(1-b, nn)
	case m == n:
		c = math.Pow(b, nn) - math.Pow(a, nn)
	default:
		c = numeric.BetaCDF(b, float64(m)+1, float64(n-m)) -
			numeric.BetaCDF(a, float64(m), float64(n-m)+1)
	}
	if c < 0 {
		c = 0
	}
	if negative {
		return Negative, c
	}
	return Positive, c
}

// Sampler yields property outcomes from fresh executions. Implementations
// typically run a simulation and evaluate φ on it.
type Sampler interface {
	// Sample runs one execution and reports whether φ held on it.
	Sample() (bool, error)
}

// SamplerFunc adapts a function to the Sampler interface.
type SamplerFunc func() (bool, error)

// Sample implements Sampler.
func (f SamplerFunc) Sample() (bool, error) { return f() }

// ErrSampleBudget reports that CheckSequential hit its sample budget before
// reaching the requested confidence.
var ErrSampleBudget = errors.New("smc: sample budget exhausted before convergence")

// CheckSequential is Algorithm 1: it draws executions from the sampler until
// the Clopper–Pearson confidence of the assertion reaches c, then returns
// the assertion. maxSamples bounds the loop (0 means 1e6); if the budget is
// exhausted first, the partial result is returned along with
// ErrSampleBudget. The process terminates with probability 1 whenever the
// true satisfaction probability differs from f (see Sec. 3.3).
func CheckSequential(s Sampler, f, c float64, maxSamples int) (Result, error) {
	if err := validate(f, c); err != nil {
		return Result{}, err
	}
	if maxSamples <= 0 {
		maxSamples = 1_000_000
	}
	m := 0
	for n := 1; n <= maxSamples; n++ {
		ok, err := s.Sample()
		if err != nil {
			return Result{}, fmt.Errorf("smc: drawing sample %d: %w", n, err)
		}
		if ok {
			m++
		}
		assertion, conf := Confidence(m, n, f)
		if conf >= c {
			return Result{Assertion: assertion, Confidence: conf, Satisfied: m, Samples: n}, nil
		}
	}
	assertion, conf := Confidence(m, maxSamples, f)
	return Result{Assertion: Inconclusive, Confidence: conf, Satisfied: m, Samples: maxSamples},
		fmt.Errorf("%w (last assertion %v at C_CP=%.4f)", ErrSampleBudget, assertion, conf)
}

// CheckFixed is Algorithm 2: the constant-sample-size variant used by SPA's
// confidence-interval construction (Sec. 4.1). Every outcome is consumed;
// if the final confidence reaches c the assertion is returned, otherwise
// the result is Inconclusive ("None" in the paper). Using a constant sample
// set is what makes tests at different property thresholds directly
// comparable.
//
// Note: the paper's Algorithm 2 writes the convergence check as C_CP > C
// while its Algorithm 1 loops "while C_CP < C" (i.e. converges at ≥). We
// use ≥ in both so that the minimum-sample counts of eq. 6–8 (which use ≤)
// are exactly the sample sizes at which convergence becomes possible.
func CheckFixed(outcomes []bool, f, c float64) (Result, error) {
	if err := validate(f, c); err != nil {
		return Result{}, err
	}
	if len(outcomes) == 0 {
		return Result{}, errors.New("smc: no outcomes supplied")
	}
	m := 0
	for _, ok := range outcomes {
		if ok {
			m++
		}
	}
	n := len(outcomes)
	assertion, conf := Confidence(m, n, f)
	r := Result{Assertion: assertion, Confidence: conf, Satisfied: m, Samples: n}
	if conf < c {
		r.Assertion = Inconclusive
	}
	return r, nil
}

// CheckValues evaluates the property pred over a fixed sample of metric
// values and runs CheckFixed. It is the common entry point for scalar
// metrics ("runtime ≤ 1.1s" and friends).
func CheckValues(values []float64, pred func(float64) bool, f, c float64) (Result, error) {
	outcomes := make([]bool, len(values))
	for i, v := range values {
		outcomes[i] = pred(v)
	}
	return CheckFixed(outcomes, f, c)
}

// MinSamplesPositive returns the smallest N satisfying C ≤ 1^N − F^N
// (paper eq. 6): the number of all-true samples needed to assert Positive
// at confidence c. It errors when F = 1, for which a Positive assertion can
// never converge.
func MinSamplesPositive(f, c float64) (int, error) {
	if err := validate(f, c); err != nil {
		return 0, err
	}
	if f >= 1 {
		return 0, errors.New("smc: positive assertion cannot converge at F=1")
	}
	if f <= 0 {
		return 1, nil
	}
	n := int(math.Ceil(math.Log(1-c) / math.Log(f)))
	if n < 1 {
		n = 1
	}
	// Guard against floating-point edge effects around the ceiling.
	for 1-math.Pow(f, float64(n)) < c {
		n++
	}
	for n > 1 && 1-math.Pow(f, float64(n-1)) >= c {
		n--
	}
	return n, nil
}

// MinSamplesNegative returns the smallest N satisfying C ≤ 1 − (1−F)^N
// (paper eq. 7): the number of all-false samples needed to assert Negative.
// It errors when F = 0.
func MinSamplesNegative(f, c float64) (int, error) {
	if err := validate(f, c); err != nil {
		return 0, err
	}
	if f <= 0 {
		return 0, errors.New("smc: negative assertion cannot converge at F=0")
	}
	if f >= 1 {
		return 1, nil
	}
	n, err := MinSamplesPositive(1-f, c)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// MinSamples returns max{N+, N−} (paper eq. 8): the minimum number of
// executions SPA must collect so that a hypothesis test at (F, C) can
// possibly converge in either direction. For C = F = 0.9 this is 22, the
// sample size used throughout the paper's evaluation.
func MinSamples(f, c float64) (int, error) {
	np, err := MinSamplesPositive(f, c)
	if err != nil {
		return 0, err
	}
	nn, err := MinSamplesNegative(f, c)
	if err != nil {
		return 0, err
	}
	if nn > np {
		return nn, nil
	}
	return np, nil
}
