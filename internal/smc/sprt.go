package smc

import (
	"errors"
	"fmt"
	"math"
)

// SPRT implements Wald's Sequential Probability Ratio Test as an alternative
// sequential engine. The paper (Sec. 3.3) prefers the Clopper–Pearson method
// because SPRT needs an indifference region around F — the assumption that
// the true probability is not within ±δ of the threshold — whereas CP only
// assumes p ≠ F. We provide SPRT both for completeness and for the ablation
// benchmark comparing the sample counts of the two engines.
//
// The test decides between H1: p ≥ F+δ (accept ⇒ Positive) and
// H0: p ≤ F−δ (accept ⇒ Negative), with type I and II error both 1−C.
type SPRT struct {
	f, c, delta float64
	logA, logB  float64 // acceptance thresholds for the log-likelihood ratio
	p0, p1      float64
}

// NewSPRT constructs an SPRT for proportion f, confidence c, and
// indifference half-width delta. It errors when the indifference region
// [f−δ, f+δ] escapes (0, 1).
func NewSPRT(f, c, delta float64) (*SPRT, error) {
	if err := validate(f, c); err != nil {
		return nil, err
	}
	if delta <= 0 {
		return nil, errors.New("smc: SPRT indifference width must be positive")
	}
	p0, p1 := f-delta, f+delta
	if p0 <= 0 || p1 >= 1 {
		return nil, fmt.Errorf("smc: SPRT indifference region [%.4f, %.4f] escapes (0,1)", p0, p1)
	}
	alpha := 1 - c
	return &SPRT{
		f: f, c: c, delta: delta,
		logA: math.Log((1 - alpha) / alpha),
		logB: math.Log(alpha / (1 - alpha)),
		p0:   p0, p1: p1,
	}, nil
}

// Check draws samples until the likelihood ratio crosses a decision
// threshold, up to maxSamples (0 means 1e6). On budget exhaustion it
// returns the partial state with ErrSampleBudget.
func (t *SPRT) Check(s Sampler, maxSamples int) (Result, error) {
	if maxSamples <= 0 {
		maxSamples = 1_000_000
	}
	var (
		llr float64
		m   int
	)
	logTrue := math.Log(t.p1 / t.p0)
	logFalse := math.Log((1 - t.p1) / (1 - t.p0))
	for n := 1; n <= maxSamples; n++ {
		ok, err := s.Sample()
		if err != nil {
			return Result{}, fmt.Errorf("smc: SPRT sample %d: %w", n, err)
		}
		if ok {
			m++
			llr += logTrue
		} else {
			llr += logFalse
		}
		switch {
		case llr >= t.logA:
			return Result{Assertion: Positive, Confidence: t.c, Satisfied: m, Samples: n}, nil
		case llr <= t.logB:
			return Result{Assertion: Negative, Confidence: t.c, Satisfied: m, Samples: n}, nil
		}
	}
	return Result{Assertion: Inconclusive, Satisfied: m, Samples: maxSamples}, ErrSampleBudget
}
