package smc_test

import (
	"fmt"

	"repro/internal/smc"
)

// The paper's headline calculation: how many executions does a hypothesis
// test need before it can possibly convince us at F = C = 0.9?
func ExampleMinSamples() {
	n, _ := smc.MinSamples(0.9, 0.9)
	np, _ := smc.MinSamplesPositive(0.9, 0.9)
	nn, _ := smc.MinSamplesNegative(0.9, 0.9)
	fmt.Println(n, np, nn)
	// Output: 22 22 1
}

// Algorithm 2: a fixed sample either converges to a verdict or returns
// None ("not enough evidence"), never a wrong level of certainty.
func ExampleCheckFixed() {
	outcomes := make([]bool, 22)
	for i := range outcomes {
		outcomes[i] = true // every execution satisfied the property
	}
	res, _ := smc.CheckFixed(outcomes, 0.9, 0.9)
	fmt.Printf("%s %.4f\n", res.Assertion, res.Confidence)
	// Output: positive 0.9015
}

// The Clopper–Pearson interval for the satisfaction probability itself.
func ExampleProportionInterval() {
	iv, _ := smc.ProportionInterval(20, 22, 0.9)
	fmt.Printf("[%.3f, %.3f]\n", iv.Lo, iv.Hi)
	// Output: [0.741, 0.984]
}
