package smc

import (
	"testing"

	"repro/internal/randx"
)

func TestCheckHyperFixedPairwiseGap(t *testing.T) {
	// Tightly clustered values: every pair within eps.
	r := randx.New(7)
	vals := make([]float64, 44)
	for i := range vals {
		vals[i] = 100 + r.Uniform(0, 0.1)
	}
	res, err := CheckHyperFixed(vals, 2, MaxPairwiseGapWithin(0.5), 0.9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assertion != Positive {
		t.Errorf("clustered values: %+v, want positive", res)
	}
	if res.Samples != 22 {
		t.Errorf("44 values should give 22 pairs, got %d", res.Samples)
	}

	// Wildly spread values: pairs should violate the gap.
	for i := range vals {
		vals[i] = r.Uniform(0, 1000)
	}
	res, err = CheckHyperFixed(vals, 2, MaxPairwiseGapWithin(0.5), 0.9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assertion != Negative {
		t.Errorf("spread values: %+v, want negative", res)
	}
}

func TestCheckHyperFixedValidation(t *testing.T) {
	if _, err := CheckHyperFixed([]float64{1, 2, 3}, 1, MaxPairwiseGapWithin(1), 0.9, 0.9); err == nil {
		t.Error("arity 1 should error")
	}
	if _, err := CheckHyperFixed([]float64{1, 2}, 3, MaxPairwiseGapWithin(1), 0.9, 0.9); err == nil {
		t.Error("too few values should error")
	}
}

func TestCheckHyperFixedDiscardsLeftover(t *testing.T) {
	vals := []float64{1, 1, 1, 1, 1, 1, 1} // 7 values, arity 3 ⇒ 2 tuples
	res, err := CheckHyperFixed(vals, 3, MaxPairwiseGapWithin(1), 0.5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 2 {
		t.Errorf("expected 2 tuples, got %d", res.Samples)
	}
}

func TestHyperSamplerSequential(t *testing.T) {
	r := randx.New(9)
	draw := func() (float64, error) { return 50 + r.Normal(0, 0.01), nil }
	s := HyperSampler(draw, 2, MaxPairwiseGapWithin(1))
	res, err := CheckSequential(s, 0.9, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assertion != Positive {
		t.Errorf("tight distribution should satisfy gap hyperproperty: %+v", res)
	}
}

func TestHyperSamplerPropagatesError(t *testing.T) {
	calls := 0
	draw := func() (float64, error) {
		calls++
		if calls >= 2 {
			return 0, ErrSampleBudget // any sentinel
		}
		return 1, nil
	}
	s := HyperSampler(draw, 2, MaxPairwiseGapWithin(1))
	if _, err := s.Sample(); err == nil {
		t.Error("draw error should propagate through HyperSampler")
	}
}

func TestMaxPairwiseGapWithinEdge(t *testing.T) {
	hp := MaxPairwiseGapWithin(2)
	if !hp([]float64{1, 3}) {
		t.Error("gap exactly eps should satisfy")
	}
	if hp([]float64{1, 3.01}) {
		t.Error("gap above eps should violate")
	}
	if !hp([]float64{5, 4, 6, 5.5}) {
		t.Error("4-tuple within range should satisfy")
	}
}
