package smc

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func TestConfidenceAllTrue(t *testing.T) {
	// M = N: C = 1 − F^N (paper eq. 6 shape).
	for _, n := range []int{1, 5, 22, 100} {
		a, c := Confidence(n, n, 0.9)
		if a != Positive {
			t.Errorf("N=%d all-true: assertion %v, want positive", n, a)
		}
		want := 1 - math.Pow(0.9, float64(n))
		if math.Abs(c-want) > 1e-12 {
			t.Errorf("N=%d all-true: C=%.12f, want %.12f", n, c, want)
		}
	}
}

func TestConfidenceAllFalse(t *testing.T) {
	// M = 0: C = 1 − (1−F)^N (paper eq. 7 shape).
	for _, n := range []int{1, 3, 22} {
		a, c := Confidence(0, n, 0.9)
		if a != Negative {
			t.Errorf("N=%d all-false: assertion %v, want negative", n, a)
		}
		want := 1 - math.Pow(0.1, float64(n))
		if math.Abs(c-want) > 1e-12 {
			t.Errorf("N=%d all-false: C=%.12f, want %.12f", n, c, want)
		}
	}
}

func TestConfidencePaperHeadline(t *testing.T) {
	// The paper's headline numbers: at C=F=0.9, 22 all-true samples are
	// needed for positive, 1 all-false sample for negative.
	if _, c := Confidence(22, 22, 0.9); c < 0.9 {
		t.Errorf("22 all-true samples should reach C=0.9, got %.6f", c)
	}
	if _, c := Confidence(21, 21, 0.9); c >= 0.9 {
		t.Errorf("21 all-true samples should NOT reach C=0.9, got %.6f", c)
	}
	if _, c := Confidence(0, 1, 0.9); c < 0.9-1e-12 {
		t.Errorf("1 all-false sample should reach C=0.9, got %.6f", c)
	}
}

func TestConfidenceGeneralCaseMatchesOneSidedCP(t *testing.T) {
	// Negative branch: C = I_F(M+1, N−M); positive: C = 1 − I_F(M, N−M+1).
	// Cross-check through the closed forms at M=1, N=2, F=0.9:
	// negative since 0.5 < 0.9; I_0.9(2,1) = 0.81.
	a, c := Confidence(1, 2, 0.9)
	if a != Negative || math.Abs(c-0.81) > 1e-12 {
		t.Errorf("Confidence(1,2,0.9) = %v %.12f, want negative 0.81", a, c)
	}
	// Positive branch at M=2, N=2 handled by all-true case; try M=9, N=10,
	// F=0.5: positive; C = 1 − I_0.5(9, 2) = 1 − P(X≥9), X~Binom(10,0.5)
	// = 1 − (10+1)/1024 = 1 − 11/1024.
	a, c = Confidence(9, 10, 0.5)
	want := 1 - 11.0/1024.0
	if a != Positive || math.Abs(c-want) > 1e-12 {
		t.Errorf("Confidence(9,10,0.5) = %v %.12f, want positive %.12f", a, c, want)
	}
}

func TestConfidenceAssertionMatchesRatio(t *testing.T) {
	f := func(mr, nr uint8, fr uint16) bool {
		n := int(nr%100) + 1
		m := int(mr) % (n + 1)
		fq := float64(fr%1001) / 1000.0
		a, c := Confidence(m, n, fq)
		if c < 0 || c > 1 || math.IsNaN(c) {
			return false
		}
		if float64(m)/float64(n) < fq {
			return a == Negative
		}
		return a == Positive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestConfidenceDegenerateInputs(t *testing.T) {
	if a, c := Confidence(0, 0, 0.5); a != Inconclusive || c != 0 {
		t.Error("N=0 should be inconclusive with zero confidence")
	}
	if a, _ := Confidence(-1, 5, 0.5); a != Inconclusive {
		t.Error("negative M should be inconclusive")
	}
	if a, _ := Confidence(6, 5, 0.5); a != Inconclusive {
		t.Error("M > N should be inconclusive")
	}
}

// Adding a satisfying sample must not decrease positive-side confidence in
// the all-true regime, and confidence grows with run length.
func TestConfidenceMonotoneAllTrue(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 200; n++ {
		_, c := Confidence(n, n, 0.9)
		if c < prev-1e-12 {
			t.Fatalf("all-true confidence decreased at N=%d: %g < %g", n, c, prev)
		}
		prev = c
	}
}

func TestMinSamplesHeadline(t *testing.T) {
	n, err := MinSamples(0.9, 0.9)
	if err != nil || n != 22 {
		t.Errorf("MinSamples(0.9,0.9) = %d, %v; want 22", n, err)
	}
	np, _ := MinSamplesPositive(0.9, 0.9)
	nn, _ := MinSamplesNegative(0.9, 0.9)
	if np != 22 || nn != 1 {
		t.Errorf("N+=%d N-=%d, want 22 and 1", np, nn)
	}
}

func TestMinSamplesTable(t *testing.T) {
	cases := []struct {
		f, c float64
		want int
	}{
		{0.5, 0.9, 4},    // 1-0.5^4 = 0.9375 ≥ 0.9; 1-0.5^3 = 0.875 < 0.9
		{0.9, 0.95, 29},  // 1-0.9^29 ≈ 0.9529
		{0.95, 0.9, 45},  // 1-0.95^45 ≈ 0.9006
		{0.5, 0.99, 7},   // 1-0.5^7 ≈ 0.9922
		{0.99, 0.9, 230}, // 1-0.99^230 ≈ 0.9007
	}
	for _, cse := range cases {
		got, err := MinSamples(cse.f, cse.c)
		if err != nil || got != cse.want {
			t.Errorf("MinSamples(%g,%g) = %d, %v; want %d", cse.f, cse.c, got, err, cse.want)
		}
	}
}

// MinSamplesPositive must be the *smallest* N achieving the confidence.
func TestMinSamplesPositiveMinimalityProperty(t *testing.T) {
	f := func(fr, cr uint16) bool {
		fq := 0.05 + 0.9*float64(fr%1000)/1000.0
		cc := 0.5 + 0.499*float64(cr%1000)/1000.0
		n, err := MinSamplesPositive(fq, cc)
		if err != nil {
			return false
		}
		_, cAtN := Confidence(n, n, fq)
		if cAtN < cc {
			return false
		}
		if n > 1 {
			if _, cPrev := Confidence(n-1, n-1, fq); cPrev >= cc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMinSamplesDegenerateF(t *testing.T) {
	if _, err := MinSamplesPositive(1, 0.9); err == nil {
		t.Error("F=1 positive should be impossible")
	}
	if _, err := MinSamplesNegative(0, 0.9); err == nil {
		t.Error("F=0 negative should be impossible")
	}
	if n, err := MinSamplesPositive(0, 0.9); err != nil || n != 1 {
		t.Errorf("F=0 positive should need 1 sample, got %d, %v", n, err)
	}
	if n, err := MinSamplesNegative(1, 0.9); err != nil || n != 1 {
		t.Errorf("F=1 negative should need 1 sample, got %d, %v", n, err)
	}
}

func TestCheckSequentialAllTrueConvergesAtMinSamples(t *testing.T) {
	calls := 0
	s := SamplerFunc(func() (bool, error) { calls++; return true, nil })
	r, err := CheckSequential(s, 0.9, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Assertion != Positive || r.Samples != 22 || calls != 22 {
		t.Errorf("got %+v after %d calls, want positive at 22", r, calls)
	}
}

func TestCheckSequentialAllFalseConvergesFast(t *testing.T) {
	s := SamplerFunc(func() (bool, error) { return false, nil })
	r, err := CheckSequential(s, 0.9, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Assertion != Negative || r.Samples != 1 {
		t.Errorf("got %+v, want negative at 1 sample", r)
	}
}

func TestCheckSequentialBudgetExhaustion(t *testing.T) {
	// True p exactly at F makes convergence very slow; tiny budget forces
	// the error path.
	r := randx.New(17)
	s := SamplerFunc(func() (bool, error) { return r.Bernoulli(0.9), nil })
	res, err := CheckSequential(s, 0.9, 0.9999, 5)
	if !errors.Is(err, ErrSampleBudget) {
		t.Fatalf("expected budget error, got %v", err)
	}
	if res.Samples != 5 || res.Assertion != Inconclusive {
		t.Errorf("partial result %+v", res)
	}
}

func TestCheckSequentialSamplerError(t *testing.T) {
	boom := errors.New("boom")
	s := SamplerFunc(func() (bool, error) { return false, boom })
	if _, err := CheckSequential(s, 0.9, 0.9, 0); !errors.Is(err, boom) {
		t.Errorf("sampler error not propagated: %v", err)
	}
}

func TestCheckSequentialValidation(t *testing.T) {
	s := SamplerFunc(func() (bool, error) { return true, nil })
	if _, err := CheckSequential(s, -0.1, 0.9, 0); err == nil {
		t.Error("bad F should error")
	}
	if _, err := CheckSequential(s, 0.9, 1.0, 0); err == nil {
		t.Error("C=1 should error")
	}
}

func TestCheckSequentialStatisticalConvergence(t *testing.T) {
	// True p = 0.99 ≫ F = 0.9: the assertion should converge positive in
	// nearly every run.
	correct := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		r := randx.New(uint64(1000 + i))
		s := SamplerFunc(func() (bool, error) { return r.Bernoulli(0.99), nil })
		res, err := CheckSequential(s, 0.9, 0.9, 100000)
		if err != nil {
			continue
		}
		if res.Assertion == Positive {
			correct++
		}
	}
	if float64(correct)/trials < 0.9 {
		t.Errorf("only %d/%d runs asserted positive for p=0.99 vs F=0.9", correct, trials)
	}
}

func TestCheckFixedConvergedAndNone(t *testing.T) {
	allTrue := make([]bool, 22)
	for i := range allTrue {
		allTrue[i] = true
	}
	r, err := CheckFixed(allTrue, 0.9, 0.9)
	if err != nil || r.Assertion != Positive {
		t.Errorf("all-true 22: %+v, %v", r, err)
	}
	// A mixed sample near the threshold should fail to converge.
	mixed := make([]bool, 22)
	for i := range mixed {
		mixed[i] = i%10 != 0 // 20/22 ≈ 0.909, barely above F
	}
	r, err = CheckFixed(mixed, 0.9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if r.Assertion != Inconclusive {
		t.Errorf("borderline sample should be None, got %+v", r)
	}
	if r.Converged() {
		t.Error("Converged() should be false for None")
	}
}

func TestCheckFixedEmptyAndValidation(t *testing.T) {
	if _, err := CheckFixed(nil, 0.9, 0.9); err == nil {
		t.Error("empty outcomes should error")
	}
	if _, err := CheckFixed([]bool{true}, 2, 0.9); err == nil {
		t.Error("bad F should error")
	}
}

func TestCheckValues(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 100}
	r, err := CheckValues(vals, func(v float64) bool { return v < 50 }, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if r.Satisfied != 4 || r.Samples != 5 {
		t.Errorf("CheckValues counted %d/%d", r.Satisfied, r.Samples)
	}
}

// Clopper–Pearson coverage guarantee: with true p clearly away from F, the
// error rate of converged assertions stays below 1−C.
func TestClopperPearsonCoverage(t *testing.T) {
	const (
		trials = 400
		n      = 22
		f      = 0.9
		c      = 0.9
	)
	for _, p := range []float64{0.6, 0.99} {
		wrong, converged := 0, 0
		truth := Positive
		if p < f {
			truth = Negative
		}
		r := randx.New(555)
		for i := 0; i < trials; i++ {
			outcomes := make([]bool, n)
			for j := range outcomes {
				outcomes[j] = r.Bernoulli(p)
			}
			res, err := CheckFixed(outcomes, f, c)
			if err != nil {
				t.Fatal(err)
			}
			if res.Assertion == Inconclusive {
				continue
			}
			converged++
			if res.Assertion != truth {
				wrong++
			}
		}
		if converged == 0 {
			t.Fatalf("p=%g: no converged trials", p)
		}
		if rate := float64(wrong) / float64(converged); rate > 1-c {
			t.Errorf("p=%g: error rate %.3f exceeds 1-C=%.3f (%d/%d)", p, rate, 1-c, wrong, converged)
		}
	}
}

func TestAssertionString(t *testing.T) {
	if Positive.String() != "positive" || Negative.String() != "negative" || Inconclusive.String() != "none" {
		t.Error("Assertion.String() wrong")
	}
}
