package ci

import (
	"math"
	"runtime"
	"sort"
	"testing"

	"repro/internal/randx"
	"repro/internal/stats"
)

// referenceBootstrapThetas is an independent sequential implementation of
// the resampling contract: resample i draws every index from the substream
// root.Split(i) over the ascending-sorted sample, and the statistic is the
// inverted-CDF F-quantile of the fully sorted resample. bootstrapDistribution
// must reproduce these values bit for bit regardless of worker count.
func referenceBootstrapThetas(sorted []float64, f float64, b int, seed uint64) []float64 {
	n := len(sorted)
	root := randx.New(seed)
	thetas := make([]float64, b)
	buf := make([]float64, n)
	for i := 0; i < b; i++ {
		r := root.Split(uint64(i))
		for j := range buf {
			buf[j] = sorted[r.Intn(n)]
		}
		sort.Float64s(buf)
		thetas[i] = stats.QuantileSorted(buf, f)
	}
	sort.Float64s(thetas)
	return thetas
}

func lognormalSample(seed uint64, n int) []float64 {
	r := randx.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Exp(r.Normal(0, 0.2))
	}
	return xs
}

// TestBootstrapParallelByteIdentical pins the determinism contract: the
// bootstrap distribution (and the BCa interval built on it) is a pure
// function of (sample, f, B, seed) — the Workers option and GOMAXPROCS
// change only scheduling, never a single output bit.
func TestBootstrapParallelByteIdentical(t *testing.T) {
	xs := lognormalSample(11, 200)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	const b, seed, f = 500, 99, 0.5
	want := referenceBootstrapThetas(sorted, f, b, seed)

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{0, 1, 2, 8} {
			gotp := bootstrapDistribution(sorted, f, b, seed, workers)
			got := *gotp
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("GOMAXPROCS=%d workers=%d: thetas[%d] = %x, reference %x",
						procs, workers, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
			putFloats(gotp)
		}
	}
}

// TestBootstrapBCaWorkerInvariant checks the same contract end to end
// through the public API: the full BCa interval is byte-identical for every
// worker count.
func TestBootstrapBCaWorkerInvariant(t *testing.T) {
	xs := lognormalSample(12, 150)
	var base stats.Interval
	for i, workers := range []int{1, 2, 8, 0} {
		iv, err := BootstrapBCa(xs, 0.5, 0.9, BootstrapOptions{Resamples: 400, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			base = iv
			continue
		}
		if math.Float64bits(iv.Lo) != math.Float64bits(base.Lo) ||
			math.Float64bits(iv.Hi) != math.Float64bits(base.Hi) {
			t.Fatalf("workers=%d: interval %v differs from workers=1 interval %v", workers, iv, base)
		}
	}
}

// TestBootstrapSortedMatchesUnsorted pins the documented identity
// BootstrapBCa(xs) == BootstrapBCaSorted(sortedCopy(xs)) for any permutation
// of xs: the resampling stream draws from the sorted order, so caller-side
// sample order is irrelevant.
func TestBootstrapSortedMatchesUnsorted(t *testing.T) {
	xs := lognormalSample(13, 80)
	want, err := BootstrapBCa(xs, 0.5, 0.9, BootstrapOptions{Resamples: 300, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// A different permutation of the same values.
	perm := append([]float64(nil), xs...)
	r := randx.New(5)
	for i := len(perm) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	got, err := BootstrapBCa(perm, 0.5, 0.9, BootstrapOptions{Resamples: 300, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Lo) != math.Float64bits(want.Lo) ||
		math.Float64bits(got.Hi) != math.Float64bits(want.Hi) {
		t.Fatalf("permuted sample: interval %v, original order %v", got, want)
	}
	sorted, err := BootstrapBCaSorted(sortedCopy(xs), 0.5, 0.9, BootstrapOptions{Resamples: 300, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sorted.Lo) != math.Float64bits(want.Lo) ||
		math.Float64bits(sorted.Hi) != math.Float64bits(want.Hi) {
		t.Fatalf("BootstrapBCaSorted %v differs from BootstrapBCa %v", sorted, want)
	}
}

// naiveJackknifeAcceleration is the classical definition: for each left-out
// index build the leave-one-out sample, sort it, take the inverted-CDF
// quantile, and form the third-moment ratio.
func naiveJackknifeAcceleration(xs []float64, f float64) (float64, bool) {
	n := len(xs)
	jack := make([]float64, n)
	loo := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		loo = loo[:0]
		loo = append(loo, xs[:i]...)
		loo = append(loo, xs[i+1:]...)
		sort.Float64s(loo)
		jack[i] = stats.QuantileSorted(loo, f)
	}
	mean := 0.0
	for _, v := range jack {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for _, v := range jack {
		d := mean - v
		num += d * d * d
		den += d * d
	}
	if den == 0 {
		return 0, false
	}
	return num / (6 * math.Pow(den, 1.5)), true
}

// TestJackknifeAccelerationMatchesNaive pins the incremental O(1) jackknife
// against the classical per-left-out definition, including on samples with
// heavy duplication (where both must report the degenerate case).
func TestJackknifeAccelerationMatchesNaive(t *testing.T) {
	cases := [][]float64{
		lognormalSample(21, 10),
		lognormalSample(22, 23),
		lognormalSample(23, 100),
		{1, 1, 1, 1, 1, 1},          // fully degenerate
		{1, 1, 1, 1, 1, 2},          // single distinct tail value
		{0, 0, 0, 1, 1, 1, 2, 2, 2}, // plateaus
	}
	for ci, xs := range cases {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95} {
			wantA, wantOK := naiveJackknifeAcceleration(xs, f)
			gotA, gotOK := jackknifeAcceleration(sorted, f)
			if gotOK != wantOK {
				t.Fatalf("case %d f=%g: ok=%v, naive ok=%v", ci, f, gotOK, wantOK)
			}
			if !gotOK {
				continue
			}
			if math.Abs(gotA-wantA) > 1e-12*math.Max(1, math.Abs(wantA)) {
				t.Fatalf("case %d f=%g: a=%v, naive %v", ci, f, gotA, wantA)
			}
		}
	}
}

// TestBootstrapGolden pins the exact interval bits of the resampling stream.
// These goldens define the deterministic bootstrap output for the current
// seed-splitting scheme (per-resample substreams over the sorted sample); any
// change to the stream must re-pin them consciously (see DESIGN.md).
func TestBootstrapGolden(t *testing.T) {
	xs := lognormalSample(42, 100)
	cases := []struct {
		name   string
		f, c   float64
		build  func() (stats.Interval, error)
		lo, hi uint64 // math.Float64bits of the expected endpoints
	}{
		{
			name: "bca_median",
			build: func() (stats.Interval, error) {
				return BootstrapBCa(xs, 0.5, 0.9, BootstrapOptions{Resamples: 1000, Seed: 7})
			},
			lo: 0x3ff0515fca16b145, hi: 0x3ff17bdce6a1cbf2, // [1.0198667425239176, 1.0927399643958293]
		},
		{
			name: "bca_p90",
			build: func() (stats.Interval, error) {
				return BootstrapBCa(xs, 0.9, 0.95, BootstrapOptions{Resamples: 1000, Seed: 7})
			},
			lo: 0x3ff3b3348bc066d7, hi: 0x3ff6840a32e5614c, // [1.231251283554618, 1.4072362888455983]
		},
		{
			name: "percentile_median",
			build: func() (stats.Interval, error) {
				return BootstrapPercentile(xs, 0.5, 0.9, BootstrapOptions{Resamples: 1000, Seed: 7})
			},
			lo: 0x3ff05fdd93669d51, hi: 0x3ff18a0ed75beb3b, // [1.0234046705098374, 1.0962055599654394]
		},
	}
	for _, tc := range cases {
		iv, err := tc.build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if math.Float64bits(iv.Lo) != tc.lo || math.Float64bits(iv.Hi) != tc.hi {
			t.Errorf("%s: got [%v, %v] (bits %#x, %#x), golden bits (%#x, %#x)",
				tc.name, iv.Lo, iv.Hi, math.Float64bits(iv.Lo), math.Float64bits(iv.Hi), tc.lo, tc.hi)
		}
	}
}
