package ci_test

import (
	"errors"
	"fmt"

	"repro/internal/ci"
)

// BCa bootstrapping fails on duplicate-heavy data (the paper's Sec. 6.4) —
// the error is typed so callers can count "Null" outcomes.
func ExampleBootstrapBCa() {
	duplicates := []float64{3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3}
	_, err := ci.BootstrapBCa(duplicates, 0.5, 0.9, ci.BootstrapOptions{Seed: 1})
	fmt.Println(errors.Is(err, ci.ErrDegenerate))
	// Output: true
}

// The rank CI is just two order statistics — no resampling at all.
func ExampleRankCI() {
	xs := []float64{22, 1, 5, 9, 13, 3, 7, 11, 15, 17, 19, 21, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	iv, _ := ci.RankCI(xs, 0.5, 0.9)
	fmt.Printf("[%g, %g]\n", iv.Lo, iv.Hi)
	// Output: [8, 15]
}
