package ci

import (
	"errors"
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/stats"
)

func normalSample(seed uint64, n int, mean, sd float64) []float64 {
	r := randx.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(mean, sd)
	}
	return xs
}

func TestValidation(t *testing.T) {
	xs := normalSample(1, 22, 0, 1)
	if _, err := BootstrapBCa(xs, 0, 0.9, BootstrapOptions{}); err == nil {
		t.Error("F=0 should error")
	}
	if _, err := BootstrapPercentile(xs, 0.5, 1, BootstrapOptions{}); err == nil {
		t.Error("C=1 should error")
	}
	if _, err := RankCI(xs, 1.5, 0.9); err == nil {
		t.Error("F>1 should error")
	}
	if _, err := ZScoreCI(xs, 0); err == nil {
		t.Error("C=0 should error")
	}
}

func TestTooFewSamples(t *testing.T) {
	one := []float64{1}
	for name, err := range map[string]error{
		"bca":   func() error { _, e := BootstrapBCa(one, 0.5, 0.9, BootstrapOptions{}); return e }(),
		"pct":   func() error { _, e := BootstrapPercentile(one, 0.5, 0.9, BootstrapOptions{}); return e }(),
		"rank":  func() error { _, e := RankCI(one, 0.5, 0.9); return e }(),
		"rankx": func() error { _, e := RankCIExact(one, 0.5, 0.9); return e }(),
		"z":     func() error { _, e := ZScoreCI(one, 0.9); return e }(),
	} {
		if !errors.Is(err, ErrDegenerate) {
			t.Errorf("%s: want ErrDegenerate for single sample, got %v", name, err)
		}
	}
}

func TestBootstrapDeterministicBySeed(t *testing.T) {
	xs := normalSample(2, 22, 10, 2)
	a, err := BootstrapBCa(xs, 0.5, 0.9, BootstrapOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapBCa(xs, 0.5, 0.9, BootstrapOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave different BCa CIs: %+v vs %+v", a, b)
	}
}

func TestBootstrapCoversTruthUsually(t *testing.T) {
	// Gaussian population, median CI at 90%: BCa should cover the true
	// median most of the time (the paper's point is it misses the nominal
	// rate slightly, not wildly).
	miss, null := 0, 0
	const trials = 200
	for i := 0; i < trials; i++ {
		xs := normalSample(uint64(100+i), 22, 50, 5)
		iv, err := BootstrapBCa(xs, 0.5, 0.9, BootstrapOptions{Seed: uint64(i)})
		if errors.Is(err, ErrDegenerate) {
			null++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(50) {
			miss++
		}
	}
	if null > trials/10 {
		t.Errorf("BCa produced %d/%d nulls on continuous data", null, trials)
	}
	rate := float64(miss) / float64(trials-null)
	if rate > 0.25 {
		t.Errorf("BCa miss rate %.3f implausibly high on Gaussian data", rate)
	}
	if rate == 0 {
		t.Error("BCa should not have perfect coverage at n=22")
	}
}

func TestBCaFailsOnDuplicateHeavySample(t *testing.T) {
	// Integer-valued metric: nearly all values identical — the max load
	// latency scenario of Sec. 6.4.
	xs := make([]float64, 22)
	for i := range xs {
		xs[i] = 300
	}
	_, err := BootstrapBCa(xs, 0.5, 0.9, BootstrapOptions{Seed: 1})
	if !errors.Is(err, ErrDegenerate) {
		t.Errorf("constant sample should be degenerate, got %v", err)
	}

	// Rounded data (Fig. 15): few distinct values, median heavily tied.
	r := randx.New(3)
	ys := make([]float64, 22)
	for i := range ys {
		ys[i] = math.Round(10 + r.Normal(0, 0.02)*10) // mostly 100/101-ish ties
	}
	if _, err := BootstrapBCa(ys, 0.5, 0.9, BootstrapOptions{Seed: 2}); err == nil {
		// Not guaranteed for every draw, but for this seed the sample is
		// duplicate-heavy; verify the premise held before asserting.
		distinct := map[float64]bool{}
		for _, v := range ys {
			distinct[v] = true
		}
		if len(distinct) <= 3 {
			t.Errorf("duplicate-heavy sample (%d distinct) should often be degenerate", len(distinct))
		}
	}
}

func TestBootstrapPercentileOrdering(t *testing.T) {
	xs := normalSample(4, 50, 0, 1)
	iv, err := BootstrapPercentile(xs, 0.9, 0.9, BootstrapOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !iv.IsValid() {
		t.Errorf("invalid interval %+v", iv)
	}
	q, _ := stats.Quantile(xs, 0.9)
	if !iv.Contains(q) {
		t.Errorf("percentile CI %+v should contain the sample 0.9-quantile %g", iv, q)
	}
}

func TestRankCIKnownRanks(t *testing.T) {
	// n=22, F=0.5, C=0.9: z=1.645, nF=11, half=1.645·√5.5=3.858 ⇒
	// l=⌈7.14⌉=8, u=⌈14.86⌉=15.
	xs := make([]float64, 22)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	iv, err := RankCI(xs, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 8 || iv.Hi != 15 {
		t.Errorf("RankCI = [%g, %g], want [8, 15]", iv.Lo, iv.Hi)
	}
}

func TestRankCIExactKnownRanks(t *testing.T) {
	// n=22, F=0.5, α/2=0.05: P(B≤6)=0.0262 ≤ .05 < P(B≤7)=0.0669 ⇒ l=7;
	// symmetric u=16.
	xs := make([]float64, 22)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	iv, err := RankCIExact(xs, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 7 || iv.Hi != 16 {
		t.Errorf("RankCIExact = [%g, %g], want [7, 16]", iv.Lo, iv.Hi)
	}
}

func TestRankCIExactCoverage(t *testing.T) {
	// The exact construction must achieve ≥ C coverage on continuous data.
	miss := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		xs := normalSample(uint64(7000+i), 22, 0, 1)
		iv, err := RankCIExact(xs, 0.5, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(0) {
			miss++
		}
	}
	if rate := float64(miss) / trials; rate > 0.1+0.03 {
		t.Errorf("exact rank CI miss rate %.3f exceeds nominal 0.1", rate)
	}
}

func TestRankCIUnsortedInputUnchanged(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3, 9, 8, 7, 6, 10, 15, 11, 14, 12, 13, 20, 16, 19, 17, 18, 22, 21}
	orig := append([]float64(nil), xs...)
	if _, err := RankCI(xs, 0.5, 0.9); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatal("RankCI mutated its input")
		}
	}
}

func TestRankCIExtremeQuantileSmallN(t *testing.T) {
	xs := normalSample(8, 5, 0, 1)
	// F=0.99 with n=5: ranks clamp to the extremes rather than crossing.
	iv, err := RankCI(xs, 0.99, 0.9)
	if err != nil {
		t.Fatalf("clamped rank CI should still be produced: %v", err)
	}
	if !iv.IsValid() {
		t.Errorf("invalid interval %+v", iv)
	}
}

func TestZScoreCIKnownValue(t *testing.T) {
	// Sample with mean 10, sd 2, n=4: CI = 10 ± 1.645·2/2 = [8.355, 11.645].
	xs := []float64{8, 10, 10, 12}
	iv, err := ZScoreCI(xs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	sd := stats.StdDev(xs)
	want := 1.6448536269514722 * sd / 2
	if math.Abs(iv.Lo-(10-want)) > 1e-9 || math.Abs(iv.Hi-(10+want)) > 1e-9 {
		t.Errorf("ZScoreCI = %+v, want 10±%g", iv, want)
	}
}

func TestZScoreNeverMissesGaussianMedian(t *testing.T) {
	// The paper observes the Z-score CI is "never incorrect" in its trials
	// — it is very conservative. Check a low miss rate on Gaussian data.
	miss := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		xs := normalSample(uint64(5000+i), 22, 100, 10)
		iv, err := ZScoreCI(xs, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(100) {
			miss++
		}
	}
	if rate := float64(miss) / trials; rate > 0.12 {
		t.Errorf("Z-score miss rate %.3f too high for Gaussian data", rate)
	}
}

func TestZScoreWiderThanQuantileCIOnSkewedData(t *testing.T) {
	// The paper's Fig. 7 headline: on non-Gaussian data the Z-score CI is
	// much broader than quantile-based CIs. The mechanism: a small heavy
	// tail inflates the standard deviation (and thus the Z width) while
	// the median order statistics remain inside the tight bulk.
	xs := make([]float64, 22)
	for i := 0; i < 20; i++ {
		xs[i] = 1.0 + 0.001*float64(i) // tight bulk
	}
	xs[20], xs[21] = 3.0, 3.2 // heavy tail
	z, err := ZScoreCI(xs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	rank, err := RankCIExact(xs, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if z.Width() <= 2*rank.Width() {
		t.Errorf("Z width %.4f should far exceed rank width %.4f on tail-heavy data", z.Width(), rank.Width())
	}
}
