// Package ci implements the prior-art confidence-interval constructions the
// paper compares SPA against (Sec. 2.4, 5.4): statistical bootstrapping with
// the bias-corrected and accelerated (BCa) method, nonparametric rank
// testing, and the Gaussian Z-score interval. Each method reproduces the
// failure modes the paper reports — in particular BCa's refusal to produce
// an interval when the sample contains many duplicate data points
// (Sec. 6.4, Fig. 15).
package ci

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
	"repro/internal/stats"
)

// ErrDegenerate reports that a method could not produce an interval from
// the given sample — the "Null" outcome of the paper's bootstrap bars.
var ErrDegenerate = errors.New("ci: method failed to produce an interval")

func validate(f, c float64) error {
	if math.IsNaN(f) || f <= 0 || f >= 1 {
		return fmt.Errorf("ci: proportion F=%v outside (0,1)", f)
	}
	if math.IsNaN(c) || c <= 0 || c >= 1 {
		return fmt.Errorf("ci: confidence C=%v outside (0,1)", c)
	}
	return nil
}

// BootstrapOptions tunes the bootstrap methods.
type BootstrapOptions struct {
	// Resamples is the number of bootstrap resamples B; zero selects 2000.
	Resamples int
	// Seed drives the resampling RNG; bootstrap CIs are deterministic
	// given the seed. Every resample i draws from its own substream split
	// from (Seed, i), so the result does not depend on scheduling.
	Seed uint64
	// Workers bounds the goroutines resampling concurrently; zero selects
	// GOMAXPROCS, one forces the sequential path. The interval is
	// byte-identical for every worker count.
	Workers int
}

func (o BootstrapOptions) resamples() int {
	if o.Resamples <= 0 {
		return 2000
	}
	return o.Resamples
}

// sortedCopy returns the sample sorted ascending without mutating it.
func sortedCopy(samples []float64) []float64 {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return sorted
}

// BootstrapPercentile builds the plain percentile bootstrap CI for the
// F-quantile at confidence c. It is provided as the simpler baseline; the
// paper's comparisons use BCa.
func BootstrapPercentile(samples []float64, f, c float64, opts BootstrapOptions) (stats.Interval, error) {
	if err := validate(f, c); err != nil {
		return stats.Interval{}, err
	}
	if len(samples) < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	return BootstrapPercentileSorted(sortedCopy(samples), f, c, opts)
}

// BootstrapPercentileSorted is BootstrapPercentile for a sample the caller
// has already sorted ascending (callers constructing several CIs from one
// draw sort once and share the view). The resampling stream draws from the
// sorted order, so BootstrapPercentile(xs) equals
// BootstrapPercentileSorted(sortedCopy(xs)) for any permutation of xs.
func BootstrapPercentileSorted(sorted []float64, f, c float64, opts BootstrapOptions) (stats.Interval, error) {
	if err := validate(f, c); err != nil {
		return stats.Interval{}, err
	}
	if len(sorted) < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	thetasp := bootstrapDistribution(sorted, f, opts.resamples(), opts.Seed, opts.Workers)
	thetas := *thetasp
	alpha := (1 - c) / 2
	iv := stats.Interval{
		Lo: stats.QuantileSorted(thetas, math.Max(alpha, 1e-12)),
		Hi: stats.QuantileSorted(thetas, math.Min(1-alpha, 1)),
	}
	putFloats(thetasp)
	return iv, nil
}

// BootstrapBCa builds the bias-corrected and accelerated bootstrap CI
// (Efron & Tibshirani) for the F-quantile at confidence c — the method the
// paper identifies as the strongest prior technique (Sec. 5.4).
//
// BCa fails with ErrDegenerate in exactly the situations the paper studies
// in Sec. 6.4:
//   - the bias correction z₀ is infinite because every (or no) resample
//     statistic falls below the point estimate — the common outcome when
//     duplicate data collapses the bootstrap distribution onto θ̂; or
//   - the acceleration is undefined because all jackknife leave-one-out
//     statistics are identical (again typical of duplicate-heavy samples,
//     e.g. integer metrics such as max load latency, or values rounded to
//     3 decimals as in Fig. 15).
func BootstrapBCa(samples []float64, f, c float64, opts BootstrapOptions) (stats.Interval, error) {
	if err := validate(f, c); err != nil {
		return stats.Interval{}, err
	}
	if len(samples) < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	return BootstrapBCaSorted(sortedCopy(samples), f, c, opts)
}

// BootstrapBCaSorted is BootstrapBCa for a sample the caller has already
// sorted ascending; the trial harness sorts each draw once and shares the
// view across every CI method. The resampling stream draws from the sorted
// order, so BootstrapBCa(xs) equals BootstrapBCaSorted(sortedCopy(xs)) for
// any permutation of xs.
func BootstrapBCaSorted(sorted []float64, f, c float64, opts BootstrapOptions) (stats.Interval, error) {
	if err := validate(f, c); err != nil {
		return stats.Interval{}, err
	}
	n := len(sorted)
	if n < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	thetaHat := stats.QuantileSorted(sorted, f)

	b := opts.resamples()
	thetasp := bootstrapDistribution(sorted, f, b, opts.Seed, opts.Workers)
	defer putFloats(thetasp)
	thetas := *thetasp

	// Bias correction z0 from the proportion of resample statistics
	// strictly below the point estimate.
	below := sort.SearchFloat64s(thetas, thetaHat) // count of θ* < θ̂
	if below == 0 || below == b {
		return stats.Interval{}, fmt.Errorf(
			"%w: bias correction undefined (%d/%d resample statistics below the estimate)",
			ErrDegenerate, below, b)
	}
	z0 := numeric.NormalQuantile(float64(below) / float64(b))

	// Acceleration from the incremental jackknife (see bootstrap.go): the
	// leave-one-out quantile over the shared sorted array takes only two
	// distinct values, so no per-left-out re-sorting happens.
	a, ok := jackknifeAcceleration(sorted, f)
	if !ok {
		return stats.Interval{}, fmt.Errorf(
			"%w: acceleration undefined (all jackknife statistics identical; duplicate-heavy sample)",
			ErrDegenerate)
	}

	// Adjusted percentile levels.
	alpha := (1 - c) / 2
	zLo := numeric.NormalQuantile(alpha)
	zHi := numeric.NormalQuantile(1 - alpha)
	adj := func(z float64) (float64, error) {
		t := z0 + z
		d := 1 - a*t
		if d <= 0 {
			return 0, fmt.Errorf("%w: BCa percentile adjustment diverged", ErrDegenerate)
		}
		return numeric.NormalCDF(z0 + t/d), nil
	}
	a1, err := adj(zLo)
	if err != nil {
		return stats.Interval{}, err
	}
	a2, err := adj(zHi)
	if err != nil {
		return stats.Interval{}, err
	}
	if a1 > a2 {
		a1, a2 = a2, a1
	}
	return stats.Interval{
		Lo: stats.QuantileSorted(thetas, math.Max(a1, 1e-12)),
		Hi: stats.QuantileSorted(thetas, math.Min(math.Max(a2, 1e-12), 1)),
	}, nil
}

// RankCI builds the rank-based (order statistic) CI for the F-quantile
// using the large-sample normal approximation of the rank distribution —
// the construction the paper attributes to prior work [10, 26] and notes
// "requires the Gaussian assumption" for comparing rank statistics
// (Sec. 2.4). The selected ranks are
//
//	l = ⌈nF − z·√(nF(1−F))⌉,  u = ⌈nF + z·√(nF(1−F))⌉,  z = Φ⁻¹((1+C)/2),
//
// clamped to [1, n]. The approximation is inaccurate for small n or
// duplicate-heavy samples, which is exactly the failure the paper measures.
func RankCI(samples []float64, f, c float64) (stats.Interval, error) {
	if err := validate(f, c); err != nil {
		return stats.Interval{}, err
	}
	if len(samples) < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	return RankCISorted(sortedCopy(samples), f, c)
}

// RankCISorted is RankCI for a sample the caller has already sorted
// ascending: the selected ranks index the shared view directly, so building
// several rank CIs (or mixing rank and bootstrap methods) from one draw
// costs a single sort.
func RankCISorted(sorted []float64, f, c float64) (stats.Interval, error) {
	if err := validate(f, c); err != nil {
		return stats.Interval{}, err
	}
	n := len(sorted)
	if n < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	z := numeric.NormalQuantile((1 + c) / 2)
	nf := float64(n) * f
	half := z * math.Sqrt(nf*(1-f))
	l := int(math.Ceil(nf - half))
	u := int(math.Ceil(nf + half))
	if l < 1 {
		l = 1
	}
	if u > n {
		u = n
	}
	if l > u {
		return stats.Interval{}, fmt.Errorf("%w: rank bounds crossed (n=%d too small for F=%g)", ErrDegenerate, n, f)
	}
	return stats.Interval{Lo: sorted[l-1], Hi: sorted[u-1]}, nil
}

// RankCIExact builds the order-statistic CI for the F-quantile using exact
// binomial tail bounds with an α/2 split per side (the distribution-free
// construction of Gibbons & Chakraborti). Provided for completeness beside
// the normal-approximation RankCI the paper's comparison uses.
func RankCIExact(samples []float64, f, c float64) (stats.Interval, error) {
	if err := validate(f, c); err != nil {
		return stats.Interval{}, err
	}
	if len(samples) < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	return RankCIExactSorted(sortedCopy(samples), f, c)
}

// RankCIExactSorted is RankCIExact for an already ascending-sorted sample.
func RankCIExactSorted(sorted []float64, f, c float64) (stats.Interval, error) {
	if err := validate(f, c); err != nil {
		return stats.Interval{}, err
	}
	n := len(sorted)
	if n < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	alpha := (1 - c) / 2
	// l: largest rank with P(B ≤ l−1) ≤ α/2, so P(x_(l) > θ) ≤ α/2.
	l := 1
	for k := 1; k <= n; k++ {
		if numeric.BinomialCDF(k-1, n, f) <= alpha {
			l = k
		} else {
			break
		}
	}
	// u: smallest rank with P(B ≥ u) ≤ α/2 ⟺ P(B ≤ u−1) ≥ 1−α/2.
	u := n
	for k := n; k >= 1; k-- {
		if 1-numeric.BinomialCDF(k-1, n, f) <= alpha {
			u = k
		} else {
			break
		}
	}
	if l > u {
		return stats.Interval{}, fmt.Errorf("%w: exact rank bounds crossed (n=%d, F=%g)", ErrDegenerate, n, f)
	}
	return stats.Interval{Lo: sorted[l-1], Hi: sorted[u-1]}, nil
}

// ZScoreCI builds the Gaussian-assumption interval x̄ ± z·s/√n at
// confidence c (Sec. 2.4). Under the Gaussian assumption the mean equals
// every central quantile, so the paper applies this method only at the
// median (F = 0.5); callers pass no F.
func ZScoreCI(samples []float64, c float64) (stats.Interval, error) {
	if err := validate(0.5, c); err != nil {
		return stats.Interval{}, err
	}
	n := len(samples)
	if n < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	mean := stats.Mean(samples)
	se := stats.StdDev(samples) / math.Sqrt(float64(n))
	z := numeric.NormalQuantile((1 + c) / 2)
	return stats.Interval{Lo: mean - z*se, Hi: mean + z*se}, nil
}
