// Package ci implements the prior-art confidence-interval constructions the
// paper compares SPA against (Sec. 2.4, 5.4): statistical bootstrapping with
// the bias-corrected and accelerated (BCa) method, nonparametric rank
// testing, and the Gaussian Z-score interval. Each method reproduces the
// failure modes the paper reports — in particular BCa's refusal to produce
// an interval when the sample contains many duplicate data points
// (Sec. 6.4, Fig. 15).
package ci

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
	"repro/internal/randx"
	"repro/internal/stats"
)

// ErrDegenerate reports that a method could not produce an interval from
// the given sample — the "Null" outcome of the paper's bootstrap bars.
var ErrDegenerate = errors.New("ci: method failed to produce an interval")

func validate(f, c float64) error {
	if math.IsNaN(f) || f <= 0 || f >= 1 {
		return fmt.Errorf("ci: proportion F=%v outside (0,1)", f)
	}
	if math.IsNaN(c) || c <= 0 || c >= 1 {
		return fmt.Errorf("ci: confidence C=%v outside (0,1)", c)
	}
	return nil
}

// BootstrapOptions tunes the bootstrap methods.
type BootstrapOptions struct {
	// Resamples is the number of bootstrap resamples B; zero selects 2000.
	Resamples int
	// Seed drives the resampling RNG; bootstrap CIs are deterministic
	// given the seed.
	Seed uint64
}

func (o BootstrapOptions) resamples() int {
	if o.Resamples <= 0 {
		return 2000
	}
	return o.Resamples
}

// bootstrapDistribution draws B resamples (with replacement) and returns
// the sorted F-quantile statistics.
func bootstrapDistribution(samples []float64, f float64, b int, r *randx.Rand) []float64 {
	n := len(samples)
	thetas := make([]float64, b)
	buf := make([]float64, n)
	for i := 0; i < b; i++ {
		for j := range buf {
			buf[j] = samples[r.Intn(n)]
		}
		sort.Float64s(buf)
		thetas[i] = stats.QuantileSorted(buf, f)
	}
	sort.Float64s(thetas)
	return thetas
}

// BootstrapPercentile builds the plain percentile bootstrap CI for the
// F-quantile at confidence c. It is provided as the simpler baseline; the
// paper's comparisons use BCa.
func BootstrapPercentile(samples []float64, f, c float64, opts BootstrapOptions) (stats.Interval, error) {
	if err := validate(f, c); err != nil {
		return stats.Interval{}, err
	}
	if len(samples) < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	r := randx.New(opts.Seed)
	thetas := bootstrapDistribution(samples, f, opts.resamples(), r)
	alpha := (1 - c) / 2
	return stats.Interval{
		Lo: stats.QuantileSorted(thetas, math.Max(alpha, 1e-12)),
		Hi: stats.QuantileSorted(thetas, math.Min(1-alpha, 1)),
	}, nil
}

// BootstrapBCa builds the bias-corrected and accelerated bootstrap CI
// (Efron & Tibshirani) for the F-quantile at confidence c — the method the
// paper identifies as the strongest prior technique (Sec. 5.4).
//
// BCa fails with ErrDegenerate in exactly the situations the paper studies
// in Sec. 6.4:
//   - the bias correction z₀ is infinite because every (or no) resample
//     statistic falls below the point estimate — the common outcome when
//     duplicate data collapses the bootstrap distribution onto θ̂; or
//   - the acceleration is undefined because all jackknife leave-one-out
//     statistics are identical (again typical of duplicate-heavy samples,
//     e.g. integer metrics such as max load latency, or values rounded to
//     3 decimals as in Fig. 15).
func BootstrapBCa(samples []float64, f, c float64, opts BootstrapOptions) (stats.Interval, error) {
	if err := validate(f, c); err != nil {
		return stats.Interval{}, err
	}
	n := len(samples)
	if n < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	thetaHat, err := stats.Quantile(samples, f)
	if err != nil {
		return stats.Interval{}, err
	}

	r := randx.New(opts.Seed)
	b := opts.resamples()
	thetas := bootstrapDistribution(samples, f, b, r)

	// Bias correction z0 from the proportion of resample statistics
	// strictly below the point estimate.
	below := sort.SearchFloat64s(thetas, thetaHat) // count of θ* < θ̂
	if below == 0 || below == b {
		return stats.Interval{}, fmt.Errorf(
			"%w: bias correction undefined (%d/%d resample statistics below the estimate)",
			ErrDegenerate, below, b)
	}
	z0 := numeric.NormalQuantile(float64(below) / float64(b))

	// Acceleration from the jackknife.
	jack := make([]float64, n)
	loo := make([]float64, n-1)
	for i := 0; i < n; i++ {
		loo = loo[:0]
		loo = append(loo, samples[:i]...)
		loo = append(loo, samples[i+1:]...)
		q, err := stats.Quantile(loo, f)
		if err != nil {
			return stats.Interval{}, err
		}
		jack[i] = q
	}
	jackMean := stats.Mean(jack)
	var num, den float64
	for _, v := range jack {
		d := jackMean - v
		num += d * d * d
		den += d * d
	}
	if den == 0 {
		return stats.Interval{}, fmt.Errorf(
			"%w: acceleration undefined (all jackknife statistics identical; duplicate-heavy sample)",
			ErrDegenerate)
	}
	a := num / (6 * math.Pow(den, 1.5))

	// Adjusted percentile levels.
	alpha := (1 - c) / 2
	zLo := numeric.NormalQuantile(alpha)
	zHi := numeric.NormalQuantile(1 - alpha)
	adj := func(z float64) (float64, error) {
		t := z0 + z
		d := 1 - a*t
		if d <= 0 {
			return 0, fmt.Errorf("%w: BCa percentile adjustment diverged", ErrDegenerate)
		}
		return numeric.NormalCDF(z0 + t/d), nil
	}
	a1, err := adj(zLo)
	if err != nil {
		return stats.Interval{}, err
	}
	a2, err := adj(zHi)
	if err != nil {
		return stats.Interval{}, err
	}
	if a1 > a2 {
		a1, a2 = a2, a1
	}
	return stats.Interval{
		Lo: stats.QuantileSorted(thetas, math.Max(a1, 1e-12)),
		Hi: stats.QuantileSorted(thetas, math.Min(math.Max(a2, 1e-12), 1)),
	}, nil
}

// RankCI builds the rank-based (order statistic) CI for the F-quantile
// using the large-sample normal approximation of the rank distribution —
// the construction the paper attributes to prior work [10, 26] and notes
// "requires the Gaussian assumption" for comparing rank statistics
// (Sec. 2.4). The selected ranks are
//
//	l = ⌈nF − z·√(nF(1−F))⌉,  u = ⌈nF + z·√(nF(1−F))⌉,  z = Φ⁻¹((1+C)/2),
//
// clamped to [1, n]. The approximation is inaccurate for small n or
// duplicate-heavy samples, which is exactly the failure the paper measures.
func RankCI(samples []float64, f, c float64) (stats.Interval, error) {
	if err := validate(f, c); err != nil {
		return stats.Interval{}, err
	}
	n := len(samples)
	if n < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	z := numeric.NormalQuantile((1 + c) / 2)
	nf := float64(n) * f
	half := z * math.Sqrt(nf*(1-f))
	l := int(math.Ceil(nf - half))
	u := int(math.Ceil(nf + half))
	if l < 1 {
		l = 1
	}
	if u > n {
		u = n
	}
	if l > u {
		return stats.Interval{}, fmt.Errorf("%w: rank bounds crossed (n=%d too small for F=%g)", ErrDegenerate, n, f)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return stats.Interval{Lo: sorted[l-1], Hi: sorted[u-1]}, nil
}

// RankCIExact builds the order-statistic CI for the F-quantile using exact
// binomial tail bounds with an α/2 split per side (the distribution-free
// construction of Gibbons & Chakraborti). Provided for completeness beside
// the normal-approximation RankCI the paper's comparison uses.
func RankCIExact(samples []float64, f, c float64) (stats.Interval, error) {
	if err := validate(f, c); err != nil {
		return stats.Interval{}, err
	}
	n := len(samples)
	if n < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	alpha := (1 - c) / 2
	// l: largest rank with P(B ≤ l−1) ≤ α/2, so P(x_(l) > θ) ≤ α/2.
	l := 1
	for k := 1; k <= n; k++ {
		if numeric.BinomialCDF(k-1, n, f) <= alpha {
			l = k
		} else {
			break
		}
	}
	// u: smallest rank with P(B ≥ u) ≤ α/2 ⟺ P(B ≤ u−1) ≥ 1−α/2.
	u := n
	for k := n; k >= 1; k-- {
		if 1-numeric.BinomialCDF(k-1, n, f) <= alpha {
			u = k
		} else {
			break
		}
	}
	if l > u {
		return stats.Interval{}, fmt.Errorf("%w: exact rank bounds crossed (n=%d, F=%g)", ErrDegenerate, n, f)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return stats.Interval{Lo: sorted[l-1], Hi: sorted[u-1]}, nil
}

// ZScoreCI builds the Gaussian-assumption interval x̄ ± z·s/√n at
// confidence c (Sec. 2.4). Under the Gaussian assumption the mean equals
// every central quantile, so the paper applies this method only at the
// median (F = 0.5); callers pass no F.
func ZScoreCI(samples []float64, c float64) (stats.Interval, error) {
	if err := validate(0.5, c); err != nil {
		return stats.Interval{}, err
	}
	n := len(samples)
	if n < 2 {
		return stats.Interval{}, fmt.Errorf("%w: need at least 2 samples", ErrDegenerate)
	}
	mean := stats.Mean(samples)
	se := stats.StdDev(samples) / math.Sqrt(float64(n))
	z := numeric.NormalQuantile((1 + c) / 2)
	return stats.Interval{Lo: mean - z*se, Hi: mean + z*se}, nil
}
