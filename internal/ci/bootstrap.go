package ci

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/randx"
	"repro/internal/stats"
)

// resampleChunk is how many consecutive resamples a worker claims per atomic
// fetch: small enough to balance across workers, large enough to amortize
// the counter traffic.
const resampleChunk = 32

// floatsPool recycles the scratch slices of the bootstrap kernel (resample
// buffers and theta arrays) so steady-state CI construction allocates
// nothing per call beyond the returned interval.
var floatsPool = sync.Pool{New: func() any { return new([]float64) }}

// getFloats returns a length-n slice backed by pooled storage.
func getFloats(n int) *[]float64 {
	p := floatsPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// putFloats returns a slice obtained from getFloats to the pool.
func putFloats(p *[]float64) { floatsPool.Put(p) }

// bootstrapDistribution draws b resamples (with replacement) from the
// ascending-sorted sample and returns the sorted F-quantile statistics in a
// pooled slice the caller must release with putFloats.
//
// Determinism contract (DESIGN.md): resample i draws every index from its
// own substream root.Split(i), root = randx.New(seed), so thetas[i] is a
// pure function of (sorted, f, seed, i) — never of scheduling. The workers
// parameter (0 = GOMAXPROCS, 1 = sequential) and GOMAXPROCS change only
// wall-clock time; the output is byte-identical for every setting, which
// TestBootstrapParallelByteIdentical pins. Each resample statistic is the
// exact k-th order statistic extracted by quickselect — identical to
// sorting the resample — and each worker reuses one buffer and one
// stack-resident Rand, so the B-loop itself is allocation-free.
func bootstrapDistribution(sorted []float64, f float64, b int, seed uint64, workers int) *[]float64 {
	n := len(sorted)
	thetasp := getFloats(b)
	thetas := *thetasp
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > b {
		workers = b
	}
	root := randx.New(seed)
	fill := func(lo, hi int, buf []float64, r *randx.Rand) {
		for i := lo; i < hi; i++ {
			root.SplitInto(uint64(i), r)
			for j := range buf {
				buf[j] = sorted[r.Intn(n)]
			}
			thetas[i] = stats.QuantileSelect(buf, f)
		}
	}
	if workers <= 1 {
		bufp := getFloats(n)
		var r randx.Rand
		fill(0, b, *bufp, &r)
		putFloats(bufp)
	} else {
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				bufp := getFloats(n)
				defer putFloats(bufp)
				var r randx.Rand
				for {
					lo := int(atomic.AddInt64(&next, resampleChunk)) - resampleChunk
					if lo >= b {
						return
					}
					hi := lo + resampleChunk
					if hi > b {
						hi = b
					}
					fill(lo, hi, *bufp, &r)
				}
			}()
		}
		wg.Wait()
	}
	sort.Float64s(thetas)
	return thetasp
}

// jackknifeAcceleration computes BCa's acceleration statistic for the
// F-quantile over the ascending-sorted sample, incrementally: the
// leave-one-out quantile takes only two distinct values — with
// k = ceil(F·(n−1)) clamped to [1, n−1], dropping a sorted position j < k
// shifts the order statistic up to sorted[k], while dropping j ≥ k leaves it
// at sorted[k−1] — so the jackknife moments are closed forms over those two
// values instead of n re-sorted leave-one-out passes. The jackknife sums are
// permutation-invariant, so iterating in sorted order is exactly the
// classical per-left-out-sample definition.
//
// The boolean reports whether the acceleration is defined; false reproduces
// BCa's duplicate-data failure (all leave-one-out statistics identical).
func jackknifeAcceleration(sorted []float64, f float64) (a float64, ok bool) {
	n := len(sorted)
	k := quantileIndexLoo(f, n-1)
	dropBelow := sorted[k]   // statistic when a position j < k is left out (shifts up)
	dropAbove := sorted[k-1] // statistic when a position j ≥ k is left out (stays)
	cBelow := float64(k)
	cAbove := float64(n - k)
	jackMean := (cBelow*dropBelow + cAbove*dropAbove) / float64(n)
	dBelow := jackMean - dropBelow
	dAbove := jackMean - dropAbove
	num := cBelow*dBelow*dBelow*dBelow + cAbove*dAbove*dAbove*dAbove
	den := cBelow*dBelow*dBelow + cAbove*dAbove*dAbove
	if den == 0 {
		return 0, false
	}
	return num / (6 * math.Pow(den, 1.5)), true
}

// quantileIndexLoo is the 1-based inverted-CDF quantile index for a
// leave-one-out sample of size m = n−1, clamped to [1, m].
func quantileIndexLoo(f float64, m int) int {
	i := int(math.Ceil(f * float64(m)))
	if i < 1 {
		i = 1
	}
	if i > m {
		i = m
	}
	return i
}
