// Package stl implements the fragment of signal temporal logic the paper
// relies on for property specification (Sec. 3.3: "common properties are
// expressible in signal temporal logic (STL)"). It provides:
//
//   - Trace: a uniformly sampled multi-signal execution record, produced by
//     the simulator;
//   - Formula: an STL syntax tree with boolean satisfaction and
//     quantitative robustness semantics over finite traces;
//   - Parse: a text syntax for formulas, e.g.
//     "G[0,5000](ipc > 0.4) && F[0,1000](l2_mpki < 3)".
//
// Every formula has well-defined semantics over a finite trace, so the SMC
// engine can never "misunderstand" a property: evaluating a formula on a
// trace yields exactly the boolean that eq. 2 of the paper needs.
package stl

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Trace is a finite, uniformly sampled record of named signals from one
// execution. All signals share the same length and sampling step.
type Trace struct {
	step    float64 // time units (e.g. cycles) between consecutive samples
	length  int
	signals map[string][]float64
}

// NewTrace creates an empty trace with the given sampling step (> 0).
func NewTrace(step float64) (*Trace, error) {
	if step <= 0 || math.IsNaN(step) || math.IsInf(step, 0) {
		return nil, fmt.Errorf("stl: invalid sampling step %v", step)
	}
	return &Trace{step: step, signals: make(map[string][]float64)}, nil
}

// Step returns the sampling step in time units.
func (t *Trace) Step() float64 { return t.step }

// Len returns the number of samples per signal (0 for an empty trace).
func (t *Trace) Len() int { return t.length }

// Duration returns the time span covered by the trace.
func (t *Trace) Duration() float64 { return float64(t.length) * t.step }

// Add registers a signal. The first signal fixes the trace length; later
// signals must match it.
func (t *Trace) Add(name string, values []float64) error {
	if name == "" {
		return errors.New("stl: empty signal name")
	}
	if _, dup := t.signals[name]; dup {
		return fmt.Errorf("stl: duplicate signal %q", name)
	}
	if len(t.signals) == 0 {
		t.length = len(values)
	} else if len(values) != t.length {
		return fmt.Errorf("stl: signal %q has %d samples, trace has %d", name, len(values), t.length)
	}
	t.signals[name] = append([]float64(nil), values...)
	return nil
}

// Has reports whether the named signal exists.
func (t *Trace) Has(name string) bool {
	_, ok := t.signals[name]
	return ok
}

// Value returns sample i of the named signal. It returns an error for
// unknown signals or out-of-range indices.
func (t *Trace) Value(name string, i int) (float64, error) {
	sig, ok := t.signals[name]
	if !ok {
		return 0, fmt.Errorf("stl: unknown signal %q", name)
	}
	if i < 0 || i >= len(sig) {
		return 0, fmt.Errorf("stl: index %d out of range for signal %q (len %d)", i, name, len(sig))
	}
	return sig[i], nil
}

// Signal returns a copy of the named signal's samples.
func (t *Trace) Signal(name string) ([]float64, error) {
	sig, ok := t.signals[name]
	if !ok {
		return nil, fmt.Errorf("stl: unknown signal %q", name)
	}
	return append([]float64(nil), sig...), nil
}

// Names returns the signal names in sorted order.
func (t *Trace) Names() []string {
	names := make([]string, 0, len(t.signals))
	for n := range t.signals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// window converts a time interval [lo, hi] relative to sample i into the
// inclusive sample index range [jLo, jHi], clipped to the trace. The
// returned ok is false when the clipped window is empty.
func (t *Trace) window(i int, lo, hi float64) (jLo, jHi int, ok bool) {
	if t.length == 0 {
		return 0, 0, false
	}
	jLo = i + int(math.Ceil(lo/t.step-1e-9))
	if math.IsInf(hi, 1) {
		jHi = t.length - 1
	} else {
		jHi = i + int(math.Floor(hi/t.step+1e-9))
	}
	if jLo < 0 {
		jLo = 0
	}
	if jHi > t.length-1 {
		jHi = t.length - 1
	}
	return jLo, jHi, jLo <= jHi
}
