package stl_test

import (
	"fmt"

	"repro/internal/stl"
)

// Parse and evaluate a temporal property over a sampled execution trace:
// "whenever IPC drops below 0.3, it recovers above 0.5 within 200 cycles".
func ExampleParse() {
	tr, _ := stl.NewTrace(100)
	_ = tr.Add("ipc", []float64{0.8, 0.2, 0.7, 0.9, 0.1, 0.6})

	f, err := stl.Parse("G[0,inf]((ipc < 0.3) -> F[0,200](ipc > 0.5))")
	if err != nil {
		panic(err)
	}
	ok, _ := f.Sat(tr, 0)
	fmt.Println(ok)
	// Output: true
}

// Robustness gives the satisfaction margin, not just the verdict.
func ExampleFormula() {
	tr, _ := stl.NewTrace(1)
	_ = tr.Add("temp", []float64{60, 70, 76})
	f := stl.Globally{I: stl.Whole, F: stl.Atom{Signal: "temp", Op: stl.LT, Threshold: 78}}
	rho, _ := f.Robustness(tr, 0)
	fmt.Println(rho) // 2 degrees of headroom before the property breaks
	// Output: 2
}
