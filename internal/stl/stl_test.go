package stl

import (
	"math"
	"strings"
	"testing"
)

func mkTrace(t *testing.T, step float64, signals map[string][]float64) *Trace {
	t.Helper()
	tr, err := NewTrace(step)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic insert order not needed; Add validates lengths.
	for name, vals := range signals {
		if err := tr.Add(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestTraceConstruction(t *testing.T) {
	if _, err := NewTrace(0); err == nil {
		t.Error("zero step should error")
	}
	if _, err := NewTrace(math.NaN()); err == nil {
		t.Error("NaN step should error")
	}
	tr := mkTrace(t, 10, map[string][]float64{"a": {1, 2, 3}})
	if tr.Len() != 3 || tr.Duration() != 30 || tr.Step() != 10 {
		t.Errorf("trace shape wrong: len=%d dur=%g", tr.Len(), tr.Duration())
	}
	if err := tr.Add("a", []float64{1}); err == nil {
		t.Error("duplicate signal should error")
	}
	if err := tr.Add("b", []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if err := tr.Add("", []float64{1, 2, 3}); err == nil {
		t.Error("empty name should error")
	}
	if !tr.Has("a") || tr.Has("zzz") {
		t.Error("Has wrong")
	}
	if _, err := tr.Value("a", 5); err == nil {
		t.Error("out-of-range Value should error")
	}
	if _, err := tr.Value("nope", 0); err == nil {
		t.Error("unknown signal should error")
	}
	if got := tr.Names(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Names = %v", got)
	}
	sig, err := tr.Signal("a")
	if err != nil || len(sig) != 3 {
		t.Errorf("Signal copy wrong: %v, %v", sig, err)
	}
	sig[0] = 99
	if v, _ := tr.Value("a", 0); v == 99 {
		t.Error("Signal should return a copy")
	}
}

func TestAtomSatAndRobustness(t *testing.T) {
	tr := mkTrace(t, 1, map[string][]float64{"x": {1, 5, 10}})
	cases := []struct {
		f    Formula
		i    int
		want bool
		rho  float64
	}{
		{Atom{"x", LT, 3}, 0, true, 2},
		{Atom{"x", LT, 3}, 1, false, -2},
		{Atom{"x", LE, 5}, 1, true, 0},
		{Atom{"x", GT, 4}, 1, true, 1},
		{Atom{"x", GE, 10}, 2, true, 0},
		{Atom{"x", EQ, 5}, 1, true, 0},
		{Atom{"x", EQ, 5}, 0, false, -4},
		{Atom{"x", NE, 5}, 0, true, 4},
		{Atom{"x", NE, 5}, 1, false, 0},
	}
	for _, c := range cases {
		got, err := c.f.Sat(tr, c.i)
		if err != nil || got != c.want {
			t.Errorf("%v@%d = %v,%v want %v", c.f, c.i, got, err, c.want)
		}
		rho, err := c.f.Robustness(tr, c.i)
		if err != nil || rho != c.rho {
			t.Errorf("ρ(%v@%d) = %g,%v want %g", c.f, c.i, rho, err, c.rho)
		}
	}
}

func TestBooleanConnectives(t *testing.T) {
	tr := mkTrace(t, 1, map[string][]float64{"x": {2}, "y": {8}})
	xLow := Atom{"x", LT, 5}  // true, ρ=3
	yLow := Atom{"y", LT, 5}  // false, ρ=-3
	yHigh := Atom{"y", GT, 5} // true, ρ=3

	if ok, _ := (And{Fs: []Formula{xLow, yHigh}}).Sat(tr, 0); !ok {
		t.Error("And of trues should hold")
	}
	if ok, _ := (And{Fs: []Formula{xLow, yLow}}).Sat(tr, 0); ok {
		t.Error("And with a false conjunct should fail")
	}
	if ok, _ := (Or{Fs: []Formula{yLow, xLow}}).Sat(tr, 0); !ok {
		t.Error("Or with a true disjunct should hold")
	}
	if ok, _ := (Not{F: yLow}).Sat(tr, 0); !ok {
		t.Error("Not false should hold")
	}
	if ok, _ := (Implies{A: yLow, B: yLow}).Sat(tr, 0); !ok {
		t.Error("false -> anything should hold")
	}
	if ok, _ := (Implies{A: xLow, B: yLow}).Sat(tr, 0); ok {
		t.Error("true -> false should fail")
	}
	// Robustness: min for and, max for or, negation flips.
	if rho, _ := (And{Fs: []Formula{xLow, yLow}}).Robustness(tr, 0); rho != -3 {
		t.Errorf("And robustness = %g, want -3", rho)
	}
	if rho, _ := (Or{Fs: []Formula{xLow, yLow}}).Robustness(tr, 0); rho != 3 {
		t.Errorf("Or robustness = %g, want 3", rho)
	}
	if rho, _ := (Not{F: xLow}).Robustness(tr, 0); rho != -3 {
		t.Errorf("Not robustness = %g, want -3", rho)
	}
	if rho, _ := (Implies{A: xLow, B: yLow}).Robustness(tr, 0); rho != -3 {
		t.Errorf("Implies robustness = %g, want -3", rho)
	}
}

func TestConst(t *testing.T) {
	tr := mkTrace(t, 1, map[string][]float64{"x": {0}})
	if ok, _ := Const(true).Sat(tr, 0); !ok {
		t.Error("true const")
	}
	if rho, _ := Const(false).Robustness(tr, 0); !math.IsInf(rho, -1) {
		t.Error("false const robustness should be -Inf")
	}
}

func TestGloballyBounded(t *testing.T) {
	// x: high for first 5 samples, dips at index 5.
	tr := mkTrace(t, 10, map[string][]float64{"x": {9, 9, 9, 9, 9, 1, 9, 9}})
	g04 := Globally{I: Interval{0, 40}, F: Atom{"x", GT, 5}}
	if ok, _ := g04.Sat(tr, 0); !ok {
		t.Error("G[0,40] over high prefix should hold")
	}
	g05 := Globally{I: Interval{0, 50}, F: Atom{"x", GT, 5}}
	if ok, _ := g05.Sat(tr, 0); ok {
		t.Error("G[0,50] including the dip should fail")
	}
	// Window beyond trace end: clipped, vacuous when empty.
	gBeyond := Globally{I: Interval{1000, 2000}, F: Atom{"x", GT, 5}}
	if ok, _ := gBeyond.Sat(tr, 0); !ok {
		t.Error("empty clipped window should be vacuously true")
	}
	if rho, _ := gBeyond.Robustness(tr, 0); !math.IsInf(rho, 1) {
		t.Error("vacuous Globally robustness should be +Inf")
	}
	// Robustness is the min margin over the window.
	if rho, _ := g05.Robustness(tr, 0); rho != -4 {
		t.Errorf("G robustness = %g, want -4", rho)
	}
}

func TestEventuallyBounded(t *testing.T) {
	tr := mkTrace(t, 10, map[string][]float64{"e": {0, 0, 0, 1, 0}})
	if ok, _ := (Eventually{I: Interval{0, 20}, F: Atom{"e", GE, 1}}).Sat(tr, 0); ok {
		t.Error("event at t=30 should not be found in [0,20]")
	}
	if ok, _ := (Eventually{I: Interval{0, 30}, F: Atom{"e", GE, 1}}).Sat(tr, 0); !ok {
		t.Error("event at t=30 should be found in [0,30]")
	}
	// Relative to a later instant.
	if ok, _ := (Eventually{I: Interval{0, 10}, F: Atom{"e", GE, 1}}).Sat(tr, 3); !ok {
		t.Error("event at own instant should be found")
	}
	// Empty window is false with -Inf robustness.
	e := Eventually{I: Interval{1000, 2000}, F: Atom{"e", GE, 1}}
	if ok, _ := e.Sat(tr, 0); ok {
		t.Error("empty window Eventually should be false")
	}
	if rho, _ := e.Robustness(tr, 0); !math.IsInf(rho, -1) {
		t.Error("empty window Eventually robustness should be -Inf")
	}
}

func TestUntil(t *testing.T) {
	// state holds until event fires at index 4.
	tr := mkTrace(t, 1, map[string][]float64{
		"state": {1, 1, 1, 1, 0, 0},
		"event": {0, 0, 0, 0, 1, 0},
	})
	u := Until{I: Whole, A: Atom{"state", GE, 1}, B: Atom{"event", GE, 1}}
	if ok, err := u.Sat(tr, 0); err != nil || !ok {
		t.Errorf("Until should hold: %v, %v", ok, err)
	}
	// If the state dips before the event, Until fails.
	tr2 := mkTrace(t, 1, map[string][]float64{
		"state": {1, 0, 1, 1, 0, 0},
		"event": {0, 0, 0, 0, 1, 0},
	})
	if ok, _ := u.Sat(tr2, 0); ok {
		t.Error("Until should fail when state dips before the event")
	}
	// The event never fires: fail.
	tr3 := mkTrace(t, 1, map[string][]float64{
		"state": {1, 1, 1},
		"event": {0, 0, 0},
	})
	if ok, _ := u.Sat(tr3, 0); ok {
		t.Error("Until without the event should fail")
	}
	// Robustness sign-soundness (use thresholds with margin: at "≥ 1" the
	// margin of a value of exactly 1 is 0).
	uMargin := Until{I: Whole, A: Atom{"state", GE, 0.5}, B: Atom{"event", GE, 0.5}}
	if rho, _ := uMargin.Robustness(tr, 0); rho != 0.5 {
		t.Errorf("satisfied Until robustness = %g, want 0.5", rho)
	}
	if rho, _ := uMargin.Robustness(tr3, 0); rho >= 0 {
		t.Errorf("violated Until robustness = %g, want < 0", rho)
	}
}

func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		"x > 5",
		"x <= 5 && y >= 2",
		"x < 1 || y != 0 || z == 3",
		"!(x > 5)",
		"G[0,100](ipc > 0.4)",
		"F[50,200](miss_rate < 0.1)",
		"(power > 2) -> (perf > 1)",
		"G(x > 0) -> F(y > 0)",
		"(state >= 1) U[0,500] (alert >= 1)",
		"true && x > 0",
		"false || x > 0",
		"G[0,inf](x > -1.5e2)",
	}
	for _, in := range inputs {
		f, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		// Round trip: the rendered form must reparse to the same render.
		r1 := f.String()
		f2, err := Parse(r1)
		if err != nil {
			t.Errorf("reparse of %q (%q): %v", in, r1, err)
			continue
		}
		if r2 := f2.String(); r1 != r2 {
			t.Errorf("round trip unstable: %q -> %q -> %q", in, r1, r2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"x >",
		"> 5",
		"x ! 5",
		"G[5](x > 1)",
		"G[5,1](x > 1)",
		"G[-1,5](x > 1)",
		"(x > 1",
		"x > 1)",
		"x > 1 &&",
		"x = 5",
		"x > 1 @",
		"x > 1 x > 2",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseEvaluatesCorrectly(t *testing.T) {
	tr := mkTrace(t, 100, map[string][]float64{
		"ipc":  {0.9, 0.8, 0.2, 0.9, 0.9},
		"temp": {50, 60, 85, 70, 60},
	})
	cases := []struct {
		in   string
		want bool
	}{
		{"G[0,400](ipc > 0.1)", true},
		{"G[0,400](ipc > 0.5)", false},
		{"F[0,400](temp > 80)", true},
		{"F[0,100](temp > 80)", false},
		{"(temp > 80) -> (ipc < 0.5)", true}, // at i=0 antecedent false
		{"G[0,400]((temp > 80) -> (ipc < 0.5))", true},
		{"G[0,400]((temp > 55) -> (ipc < 0.85))", false}, // fails at i=3: temp 70, ipc 0.9
		{"(ipc >= 0.5) U (temp >= 85)", false},           // ipc dips at the alert instant? event at idx2 where prefix ipc 0.9,0.8 ≥0.5 → actually true
	}
	// Fix the last expectation by direct reasoning: B at idx 2 (temp 85 ≥ 85),
	// A must hold at idx 0,1 (ipc 0.9, 0.8 ≥ 0.5) → Until holds.
	cases[len(cases)-1].want = true
	for _, c := range cases {
		f, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		got, err := f.Sat(tr, 0)
		if err != nil {
			t.Fatalf("Sat(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("%q = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestUnknownSignalErrors(t *testing.T) {
	tr := mkTrace(t, 1, map[string][]float64{"x": {1, 2}})
	formulas := []Formula{
		Atom{"nope", GT, 0},
		Not{F: Atom{"nope", GT, 0}},
		And{Fs: []Formula{Atom{"x", GT, 0}, Atom{"nope", GT, 0}}},
		Or{Fs: []Formula{Atom{"nope", GT, 0}}},
		Implies{A: Atom{"nope", GT, 0}, B: Const(true)},
		Globally{I: Whole, F: Atom{"nope", GT, 0}},
		Eventually{I: Whole, F: Atom{"nope", GT, 0}},
		Until{I: Whole, A: Atom{"x", GT, 0}, B: Atom{"nope", GT, 0}},
	}
	for _, f := range formulas {
		if _, err := f.Sat(tr, 0); err == nil {
			t.Errorf("%v should error on unknown signal", f)
		}
		if _, err := f.Robustness(tr, 0); err == nil {
			t.Errorf("%v robustness should error on unknown signal", f)
		}
	}
}

// Sign-soundness of robustness: ρ > 0 ⇒ satisfied, ρ < 0 ⇒ violated.
func TestRobustnessSignSoundness(t *testing.T) {
	tr := mkTrace(t, 1, map[string][]float64{
		"a": {3, 1, 4, 1, 5, 9, 2, 6},
		"b": {2, 7, 1, 8, 2, 8, 1, 8},
	})
	formulas := []string{
		"a > 2", "b < 5", "a > 2 && b < 5", "a > 8 || b > 6",
		"G[0,3](a > 0)", "F[0,7](a > 8)", "(a > 0) U[0,7] (b > 7)",
		"(a > 3) -> (b > 3)", "!(a > 4)",
	}
	for _, in := range formulas {
		f := MustParse(in)
		for i := 0; i < tr.Len(); i++ {
			sat, err := f.Sat(tr, i)
			if err != nil {
				t.Fatal(err)
			}
			rho, err := f.Robustness(tr, i)
			if err != nil {
				t.Fatal(err)
			}
			if rho > 0 && !sat {
				t.Errorf("%q@%d: ρ=%g but not satisfied", in, i, rho)
			}
			if rho < 0 && sat {
				t.Errorf("%q@%d: ρ=%g but satisfied", in, i, rho)
			}
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of bad input should panic")
		}
	}()
	MustParse(">>>")
}

func TestStringRendering(t *testing.T) {
	f := MustParse("G[0,100](x > 1) && F[0,50](y < 2)")
	s := f.String()
	for _, frag := range []string{"G[0,100]", "F[0,50]", "x > 1", "y < 2", "&&"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendering %q missing %q", s, frag)
		}
	}
	// Unbounded interval renders empty.
	if got := (Globally{I: Whole, F: Const(true)}).String(); got != "G(true)" {
		t.Errorf("unbounded G renders as %q", got)
	}
}

func TestNextOperator(t *testing.T) {
	tr := mkTrace(t, 1, map[string][]float64{"x": {1, 5, 2}})
	x5 := Next{F: Atom{"x", GT, 4}}
	if ok, _ := x5.Sat(tr, 0); !ok {
		t.Error("X(x>4) at 0 should see x=5 at 1")
	}
	if ok, _ := x5.Sat(tr, 1); ok {
		t.Error("X(x>4) at 1 should see x=2 at 2")
	}
	// Final sample has no successor: false, -Inf robustness.
	if ok, _ := x5.Sat(tr, 2); ok {
		t.Error("X at the last sample should be false")
	}
	if rho, _ := x5.Robustness(tr, 2); !math.IsInf(rho, -1) {
		t.Error("X at the last sample should have -Inf robustness")
	}
	if rho, _ := x5.Robustness(tr, 0); rho != 1 {
		t.Errorf("X robustness = %g, want 1", rho)
	}
}

func TestReleaseOperator(t *testing.T) {
	// B holds until A releases it at index 2; B may drop afterwards.
	tr := mkTrace(t, 1, map[string][]float64{
		"a": {0, 0, 1, 0, 0},
		"b": {1, 1, 1, 0, 0},
	})
	rel := Release{I: Whole, A: Atom{"a", GE, 1}, B: Atom{"b", GE, 1}}
	if ok, err := rel.Sat(tr, 0); err != nil || !ok {
		t.Errorf("release at overlap should hold: %v %v", ok, err)
	}
	// B drops before A ever holds: violated.
	tr2 := mkTrace(t, 1, map[string][]float64{
		"a": {0, 0, 0, 1, 0},
		"b": {1, 0, 1, 1, 0},
	})
	if ok, _ := rel.Sat(tr2, 0); ok {
		t.Error("B dropping before the release should violate")
	}
	// A never holds but B holds forever: satisfied (the G case).
	tr3 := mkTrace(t, 1, map[string][]float64{
		"a": {0, 0, 0},
		"b": {1, 1, 1},
	})
	if ok, _ := rel.Sat(tr3, 0); !ok {
		t.Error("B holding throughout should satisfy release")
	}
}

// Duality: A R B ⟺ !(!A U !B) on random traces.
func TestReleaseUntilDualityProperty(t *testing.T) {
	for seed := 0; seed < 40; seed++ {
		vals := func(off int) []float64 {
			out := make([]float64, 12)
			s := uint64(seed*31 + off)
			for i := range out {
				s = s*6364136223846793005 + 1442695040888963407
				out[i] = float64((s >> 33) & 1)
			}
			return out
		}
		tr := mkTrace(t, 1, map[string][]float64{"a": vals(1), "b": vals(2)})
		rel := Release{I: Interval{0, 8}, A: Atom{"a", GE, 1}, B: Atom{"b", GE, 1}}
		dual := Not{F: Until{I: Interval{0, 8}, A: Not{F: Atom{"a", GE, 1}}, B: Not{F: Atom{"b", GE, 1}}}}
		for i := 0; i < tr.Len(); i++ {
			got, err := rel.Sat(tr, i)
			if err != nil {
				t.Fatal(err)
			}
			want, err := dual.Sat(tr, i)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d idx %d: release %v, dual %v (a=%v b=%v)",
					seed, i, got, want, vals(1), vals(2))
			}
		}
	}
}

func TestParseNextAndRelease(t *testing.T) {
	tr := mkTrace(t, 1, map[string][]float64{
		"a": {0, 1, 0},
		"b": {1, 1, 0},
	})
	f := MustParse("X(a >= 1)")
	if ok, _ := f.Sat(tr, 0); !ok {
		t.Error("parsed X should hold at 0")
	}
	r := MustParse("(a >= 1) R (b >= 1)")
	if ok, err := r.Sat(tr, 0); err != nil || !ok {
		t.Errorf("parsed R should hold: %v %v", ok, err)
	}
	// Round trip.
	for _, in := range []string{"X(a >= 1)", "(a >= 1) R[0,5] (b >= 1)"} {
		f := MustParse(in)
		if _, err := Parse(f.String()); err != nil {
			t.Errorf("round trip of %q (%q): %v", in, f.String(), err)
		}
	}
}
