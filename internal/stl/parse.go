package stl

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Parse builds a Formula from its concrete syntax. Grammar (whitespace
// insensitive, '#' starts a comment to end of line):
//
//	formula  := until ( '->' formula )?            // right associative
//	until    := or ( ('U' | 'R') interval? or )?
//	or       := and ( ('||' | 'or') and )*
//	and      := unary ( ('&&' | 'and') unary )*
//	unary    := '!' unary
//	         | ('G' | 'always')     interval? unary
//	         | ('F' | 'eventually') interval? unary
//	         | 'X' unary
//	         | '(' formula ')'
//	         | 'true' | 'false'
//	         | atom
//	atom     := ident cmp number
//	cmp      := '<' | '<=' | '>' | '>=' | '==' | '!='
//	interval := '[' number ',' (number | 'inf') ']'
//
// Example: "G[0,5000](ipc > 0.4) -> F[0,1000](l2_mpki < 3)".
func Parse(input string) (Formula, error) {
	p := &parser{toks: lex(input)}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("stl: unexpected trailing input at %q", p.peek().text)
	}
	return f, nil
}

// MustParse is Parse that panics on error, for statically known formulas.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokCmp    // < <= > >= == !=
	tokAndOp  // &&
	tokOrOp   // ||
	tokNotOp  // !
	tokArrow  // ->
	tokLParen // (
	tokRParen // )
	tokLBrack // [
	tokRBrack // ]
	tokComma  // ,
	tokBad
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(s string) []token {
	var toks []token
	i := 0
	emit := func(k tokKind, text string) { toks = append(toks, token{k, text, i}) }
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case c == '(':
			emit(tokLParen, "(")
			i++
		case c == ')':
			emit(tokRParen, ")")
			i++
		case c == '[':
			emit(tokLBrack, "[")
			i++
		case c == ']':
			emit(tokRBrack, "]")
			i++
		case c == ',':
			emit(tokComma, ",")
			i++
		case c == '&':
			if i+1 < len(s) && s[i+1] == '&' {
				emit(tokAndOp, "&&")
				i += 2
			} else {
				emit(tokBad, "&")
				i++
			}
		case c == '|':
			if i+1 < len(s) && s[i+1] == '|' {
				emit(tokOrOp, "||")
				i += 2
			} else {
				emit(tokBad, "|")
				i++
			}
		case c == '-':
			if i+1 < len(s) && s[i+1] == '>' {
				emit(tokArrow, "->")
				i += 2
			} else if i+1 < len(s) && (isDigit(s[i+1]) || s[i+1] == '.') {
				j := scanNumber(s, i+1)
				emit(tokNumber, s[i:j])
				i = j
			} else {
				emit(tokBad, "-")
				i++
			}
		case c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				emit(tokCmp, "!=")
				i += 2
			} else {
				emit(tokNotOp, "!")
				i++
			}
		case c == '<' || c == '>':
			if i+1 < len(s) && s[i+1] == '=' {
				emit(tokCmp, s[i:i+2])
				i += 2
			} else {
				emit(tokCmp, string(c))
				i++
			}
		case c == '=':
			if i+1 < len(s) && s[i+1] == '=' {
				emit(tokCmp, "==")
				i += 2
			} else {
				emit(tokBad, "=")
				i++
			}
		case isDigit(c) || c == '.':
			j := scanNumber(s, i)
			emit(tokNumber, s[i:j])
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(s) && isIdentPart(rune(s[j])) {
				j++
			}
			emit(tokIdent, s[i:j])
			i = j
		default:
			emit(tokBad, string(c))
			i++
		}
	}
	toks = append(toks, token{tokEOF, "", i})
	return toks
}

func scanNumber(s string, i int) int {
	j := i
	for j < len(s) && (isDigit(s[j]) || s[j] == '.' || s[j] == 'e' || s[j] == 'E' ||
		((s[j] == '+' || s[j] == '-') && j > i && (s[j-1] == 'e' || s[j-1] == 'E'))) {
		j++
	}
	return j
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEnd() bool { return p.peek().kind == tokEOF }

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("stl: expected %s at position %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

func (p *parser) parseFormula() (Formula, error) {
	left, err := p.parseUntil()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokArrow {
		p.next()
		right, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		return Implies{A: left, B: right}, nil
	}
	return left, nil
}

func (p *parser) parseUntil() (Formula, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokIdent && (t.text == "U" || t.text == "R") {
		p.next()
		iv, err := p.parseOptionalInterval()
		if err != nil {
			return nil, err
		}
		right, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if t.text == "R" {
			return Release{I: iv, A: left, B: right}, nil
		}
		return Until{I: iv, A: left, B: right}, nil
	}
	return left, nil
}

func (p *parser) parseOr() (Formula, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	var fs []Formula
	for {
		t := p.peek()
		if t.kind == tokOrOp || (t.kind == tokIdent && t.text == "or") {
			p.next()
			right, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			if fs == nil {
				fs = []Formula{left}
			}
			fs = append(fs, right)
			continue
		}
		break
	}
	if fs == nil {
		return left, nil
	}
	return Or{Fs: fs}, nil
}

func (p *parser) parseAnd() (Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	var fs []Formula
	for {
		t := p.peek()
		if t.kind == tokAndOp || (t.kind == tokIdent && t.text == "and") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if fs == nil {
				fs = []Formula{left}
			}
			fs = append(fs, right)
			continue
		}
		break
	}
	if fs == nil {
		return left, nil
	}
	return And{Fs: fs}, nil
}

func (p *parser) parseUnary() (Formula, error) {
	t := p.peek()
	switch {
	case t.kind == tokNotOp:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{F: f}, nil
	case t.kind == tokLParen:
		p.next()
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return f, nil
	case t.kind == tokIdent:
		switch t.text {
		case "true":
			p.next()
			return Const(true), nil
		case "false":
			p.next()
			return Const(false), nil
		case "G", "always":
			p.next()
			iv, err := p.parseOptionalInterval()
			if err != nil {
				return nil, err
			}
			f, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return Globally{I: iv, F: f}, nil
		case "F", "eventually":
			p.next()
			iv, err := p.parseOptionalInterval()
			if err != nil {
				return nil, err
			}
			f, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return Eventually{I: iv, F: f}, nil
		case "X", "next":
			p.next()
			f, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return Next{F: f}, nil
		default:
			return p.parseAtom()
		}
	default:
		return nil, fmt.Errorf("stl: unexpected token %q at position %d", t.text, t.pos)
	}
}

func (p *parser) parseAtom() (Formula, error) {
	id, err := p.expect(tokIdent, "signal name")
	if err != nil {
		return nil, err
	}
	cmp, err := p.expect(tokCmp, "comparison operator")
	if err != nil {
		return nil, err
	}
	num, err := p.expect(tokNumber, "number")
	if err != nil {
		return nil, err
	}
	thr, err := strconv.ParseFloat(num.text, 64)
	if err != nil {
		return nil, fmt.Errorf("stl: bad number %q: %v", num.text, err)
	}
	var op CmpOp
	switch cmp.text {
	case "<":
		op = LT
	case "<=":
		op = LE
	case ">":
		op = GT
	case ">=":
		op = GE
	case "==":
		op = EQ
	case "!=":
		op = NE
	}
	return Atom{Signal: id.text, Op: op, Threshold: thr}, nil
}

func (p *parser) parseOptionalInterval() (Interval, error) {
	if p.peek().kind != tokLBrack {
		return Whole, nil
	}
	p.next()
	lo, err := p.parseNumberOrInf()
	if err != nil {
		return Interval{}, err
	}
	if _, err := p.expect(tokComma, "','"); err != nil {
		return Interval{}, err
	}
	hi, err := p.parseNumberOrInf()
	if err != nil {
		return Interval{}, err
	}
	if _, err := p.expect(tokRBrack, "']'"); err != nil {
		return Interval{}, err
	}
	iv := Interval{Lo: lo, Hi: hi}
	if !iv.valid() {
		return Interval{}, fmt.Errorf("stl: invalid interval [%g,%g]", lo, hi)
	}
	return iv, nil
}

func (p *parser) parseNumberOrInf() (float64, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return 0, fmt.Errorf("stl: bad number %q", t.text)
		}
		return v, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "inf"):
		return math.Inf(1), nil
	default:
		return 0, fmt.Errorf("stl: expected number at position %d, got %q", t.pos, t.text)
	}
}
