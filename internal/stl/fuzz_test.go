package stl

import "testing"

// FuzzParse hardens the STL parser: arbitrary input must never panic, and
// anything that parses must render to a string that reparses to the same
// rendering (print/parse stability).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"x > 5",
		"G[0,100](ipc > 0.4) && F[0,50](y < 2)",
		"(a >= 1) U[0,500] (b >= 1)",
		"(a >= 1) R (b >= 1)",
		"X(a != 0) -> !(b == 3)",
		"true || false",
		"G[0,inf](x > -1.5e2) # comment",
		"eventually always x<1",
		"(((((x>1)))))",
		"a.b_c >= 2.5e-3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		formula, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		first := formula.String()
		again, err := Parse(first)
		if err != nil {
			t.Fatalf("rendered formula does not reparse: %q -> %q: %v", input, first, err)
		}
		if second := again.String(); second != first {
			t.Fatalf("print/parse unstable: %q -> %q -> %q", input, first, second)
		}
	})
}

// FuzzEval ensures evaluation over a fixed trace never panics for any
// parsed formula, even when it references unknown signals (errors are the
// contract, panics are not).
func FuzzEval(f *testing.F) {
	f.Add("x > 1 && y < 2")
	f.Add("G[0,30](x > 0) U (y >= 1)")
	f.Add("X X X x == 0")
	f.Fuzz(func(t *testing.T, input string) {
		formula, err := Parse(input)
		if err != nil {
			return
		}
		tr, err := NewTrace(10)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Add("x", []float64{0, 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tr.Len(); i++ {
			_, _ = formula.Sat(tr, i)        // may error on unknown signals
			_, _ = formula.Robustness(tr, i) // must not panic
		}
	})
}
