package stl

import (
	"fmt"
	"math"
	"strings"
)

// Formula is an STL formula evaluable over finite traces.
//
// Finite-trace semantics: temporal windows are clipped to the trace. A
// Globally over an empty clipped window is vacuously true; an Eventually
// over an empty window is false; an Until whose window is empty is false.
// This "weak" convention matches evaluating properties on complete
// execution records, where nothing exists beyond the final sample.
type Formula interface {
	// Sat reports boolean satisfaction at sample index i.
	Sat(t *Trace, i int) (bool, error)
	// Robustness returns the quantitative satisfaction margin at sample
	// index i: positive values imply satisfaction, negative values imply
	// violation (sign-soundness of STL robustness).
	Robustness(t *Trace, i int) (float64, error)
	// String renders the formula in the concrete syntax accepted by Parse.
	String() string
}

// CmpOp is a comparison operator in an atomic predicate.
type CmpOp int

// Comparison operators.
const (
	LT CmpOp = iota
	LE
	GT
	GE
	EQ
	NE
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return "!="
	}
}

func (op CmpOp) eval(v, c float64) bool {
	switch op {
	case LT:
		return v < c
	case LE:
		return v <= c
	case GT:
		return v > c
	case GE:
		return v >= c
	case EQ:
		return v == c
	default:
		return v != c
	}
}

// robust returns the signed margin of v ⋈ c: positive iff satisfied (except
// EQ/NE, which use −|v−c| and |v−c| respectively — sign-sound but never
// strictly positive/negative at the boundary).
func (op CmpOp) robust(v, c float64) float64 {
	switch op {
	case LT, LE:
		return c - v
	case GT, GE:
		return v - c
	case EQ:
		return -math.Abs(v - c)
	default:
		return math.Abs(v - c)
	}
}

// Atom is the predicate "signal ⋈ threshold".
type Atom struct {
	Signal    string
	Op        CmpOp
	Threshold float64
}

// Sat implements Formula.
func (a Atom) Sat(t *Trace, i int) (bool, error) {
	v, err := t.Value(a.Signal, i)
	if err != nil {
		return false, err
	}
	return a.Op.eval(v, a.Threshold), nil
}

// Robustness implements Formula.
func (a Atom) Robustness(t *Trace, i int) (float64, error) {
	v, err := t.Value(a.Signal, i)
	if err != nil {
		return 0, err
	}
	return a.Op.robust(v, a.Threshold), nil
}

// String implements Formula.
func (a Atom) String() string {
	return fmt.Sprintf("%s %s %g", a.Signal, a.Op, a.Threshold)
}

// Const is a boolean literal.
type Const bool

// Sat implements Formula.
func (c Const) Sat(*Trace, int) (bool, error) { return bool(c), nil }

// Robustness implements Formula.
func (c Const) Robustness(*Trace, int) (float64, error) {
	if c {
		return math.Inf(1), nil
	}
	return math.Inf(-1), nil
}

// String implements Formula.
func (c Const) String() string {
	if c {
		return "true"
	}
	return "false"
}

// Not negates a formula.
type Not struct{ F Formula }

// Sat implements Formula.
func (n Not) Sat(t *Trace, i int) (bool, error) {
	v, err := n.F.Sat(t, i)
	return !v, err
}

// Robustness implements Formula.
func (n Not) Robustness(t *Trace, i int) (float64, error) {
	r, err := n.F.Robustness(t, i)
	return -r, err
}

// String implements Formula.
func (n Not) String() string { return "!(" + n.F.String() + ")" }

// And is the conjunction of its operands.
type And struct{ Fs []Formula }

// Sat implements Formula.
func (a And) Sat(t *Trace, i int) (bool, error) {
	for _, f := range a.Fs {
		ok, err := f.Sat(t, i)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Robustness implements Formula.
func (a And) Robustness(t *Trace, i int) (float64, error) {
	rho := math.Inf(1)
	for _, f := range a.Fs {
		r, err := f.Robustness(t, i)
		if err != nil {
			return 0, err
		}
		rho = math.Min(rho, r)
	}
	return rho, nil
}

// String implements Formula.
func (a And) String() string { return joinFormulas(a.Fs, " && ") }

// Or is the disjunction of its operands.
type Or struct{ Fs []Formula }

// Sat implements Formula.
func (o Or) Sat(t *Trace, i int) (bool, error) {
	for _, f := range o.Fs {
		ok, err := f.Sat(t, i)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Robustness implements Formula.
func (o Or) Robustness(t *Trace, i int) (float64, error) {
	rho := math.Inf(-1)
	for _, f := range o.Fs {
		r, err := f.Robustness(t, i)
		if err != nil {
			return 0, err
		}
		rho = math.Max(rho, r)
	}
	return rho, nil
}

// String implements Formula.
func (o Or) String() string { return joinFormulas(o.Fs, " || ") }

// Implies is material implication A → B.
type Implies struct{ A, B Formula }

// Sat implements Formula.
func (im Implies) Sat(t *Trace, i int) (bool, error) {
	a, err := im.A.Sat(t, i)
	if err != nil {
		return false, err
	}
	if !a {
		return true, nil
	}
	return im.B.Sat(t, i)
}

// Robustness implements Formula.
func (im Implies) Robustness(t *Trace, i int) (float64, error) {
	ra, err := im.A.Robustness(t, i)
	if err != nil {
		return 0, err
	}
	rb, err := im.B.Robustness(t, i)
	if err != nil {
		return 0, err
	}
	return math.Max(-ra, rb), nil
}

// String implements Formula.
func (im Implies) String() string {
	return "(" + im.A.String() + ") -> (" + im.B.String() + ")"
}

// Interval is a closed time window [Lo, Hi] in trace time units, relative
// to the evaluation instant. Hi = +Inf means "until the end of the trace".
type Interval struct{ Lo, Hi float64 }

// Whole is the unbounded interval covering the rest of the trace.
var Whole = Interval{Lo: 0, Hi: math.Inf(1)}

func (iv Interval) String() string {
	if math.IsInf(iv.Hi, 1) && iv.Lo == 0 {
		return ""
	}
	return fmt.Sprintf("[%g,%g]", iv.Lo, iv.Hi)
}

func (iv Interval) valid() bool {
	return !math.IsNaN(iv.Lo) && !math.IsNaN(iv.Hi) && iv.Lo >= 0 && iv.Hi >= iv.Lo
}

// Globally is G_[Lo,Hi] F: the child must hold at every sample of the
// window. An empty clipped window is vacuously true.
type Globally struct {
	I Interval
	F Formula
}

// Sat implements Formula.
func (g Globally) Sat(t *Trace, i int) (bool, error) {
	jLo, jHi, ok := t.window(i, g.I.Lo, g.I.Hi)
	if !ok {
		return true, nil
	}
	for j := jLo; j <= jHi; j++ {
		v, err := g.F.Sat(t, j)
		if err != nil {
			return false, err
		}
		if !v {
			return false, nil
		}
	}
	return true, nil
}

// Robustness implements Formula.
func (g Globally) Robustness(t *Trace, i int) (float64, error) {
	jLo, jHi, ok := t.window(i, g.I.Lo, g.I.Hi)
	if !ok {
		return math.Inf(1), nil
	}
	rho := math.Inf(1)
	for j := jLo; j <= jHi; j++ {
		r, err := g.F.Robustness(t, j)
		if err != nil {
			return 0, err
		}
		rho = math.Min(rho, r)
	}
	return rho, nil
}

// String implements Formula.
func (g Globally) String() string { return "G" + g.I.String() + "(" + g.F.String() + ")" }

// Eventually is F_[Lo,Hi] F: the child must hold at some sample of the
// window. An empty clipped window is false.
type Eventually struct {
	I Interval
	F Formula
}

// Sat implements Formula.
func (e Eventually) Sat(t *Trace, i int) (bool, error) {
	jLo, jHi, ok := t.window(i, e.I.Lo, e.I.Hi)
	if !ok {
		return false, nil
	}
	for j := jLo; j <= jHi; j++ {
		v, err := e.F.Sat(t, j)
		if err != nil {
			return false, err
		}
		if v {
			return true, nil
		}
	}
	return false, nil
}

// Robustness implements Formula.
func (e Eventually) Robustness(t *Trace, i int) (float64, error) {
	jLo, jHi, ok := t.window(i, e.I.Lo, e.I.Hi)
	if !ok {
		return math.Inf(-1), nil
	}
	rho := math.Inf(-1)
	for j := jLo; j <= jHi; j++ {
		r, err := e.F.Robustness(t, j)
		if err != nil {
			return 0, err
		}
		rho = math.Max(rho, r)
	}
	return rho, nil
}

// String implements Formula.
func (e Eventually) String() string { return "F" + e.I.String() + "(" + e.F.String() + ")" }

// Until is A U_[Lo,Hi] B: B must hold at some window sample j, with A
// holding at every sample from the evaluation instant up to (but not
// including) j.
type Until struct {
	I    Interval
	A, B Formula
}

// Sat implements Formula.
func (u Until) Sat(t *Trace, i int) (bool, error) {
	jLo, jHi, ok := t.window(i, u.I.Lo, u.I.Hi)
	if !ok {
		return false, nil
	}
	for j := jLo; j <= jHi; j++ {
		b, err := u.B.Sat(t, j)
		if err != nil {
			return false, err
		}
		if b {
			holds := true
			for k := i; k < j; k++ {
				a, err := u.A.Sat(t, k)
				if err != nil {
					return false, err
				}
				if !a {
					holds = false
					break
				}
			}
			if holds {
				return true, nil
			}
		}
	}
	return false, nil
}

// Robustness implements Formula.
func (u Until) Robustness(t *Trace, i int) (float64, error) {
	jLo, jHi, ok := t.window(i, u.I.Lo, u.I.Hi)
	if !ok {
		return math.Inf(-1), nil
	}
	rho := math.Inf(-1)
	for j := jLo; j <= jHi; j++ {
		rb, err := u.B.Robustness(t, j)
		if err != nil {
			return 0, err
		}
		inner := rb
		for k := i; k < j; k++ {
			ra, err := u.A.Robustness(t, k)
			if err != nil {
				return 0, err
			}
			inner = math.Min(inner, ra)
		}
		rho = math.Max(rho, inner)
	}
	return rho, nil
}

// String implements Formula.
func (u Until) String() string {
	return "(" + u.A.String() + ") U" + u.I.String() + " (" + u.B.String() + ")"
}

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Next is X F: the child must hold at the next sample. On the final sample
// (no successor) it is false, consistent with the finite-trace convention
// that nothing exists beyond the last sample.
type Next struct{ F Formula }

// Sat implements Formula.
func (x Next) Sat(t *Trace, i int) (bool, error) {
	if i+1 >= t.Len() {
		return false, nil
	}
	return x.F.Sat(t, i+1)
}

// Robustness implements Formula.
func (x Next) Robustness(t *Trace, i int) (float64, error) {
	if i+1 >= t.Len() {
		return math.Inf(-1), nil
	}
	return x.F.Robustness(t, i+1)
}

// String implements Formula.
func (x Next) String() string { return "X(" + x.F.String() + ")" }

// Release is A R_[Lo,Hi] B, the dual of Until: B must hold at every window
// sample up to and including the first sample where A holds; if A never
// holds in the window, B must hold throughout it. It is implemented via
// the duality A R B = !(!A U !B) evaluated directly for clarity.
type Release struct {
	I    Interval
	A, B Formula
}

// Sat implements Formula.
func (rl Release) Sat(t *Trace, i int) (bool, error) {
	jLo, jHi, ok := t.window(i, rl.I.Lo, rl.I.Hi)
	if !ok {
		return true, nil // vacuous like Globally
	}
	for j := jLo; j <= jHi; j++ {
		b, err := rl.B.Sat(t, j)
		if err != nil {
			return false, err
		}
		if !b {
			// B failed at j: acceptable only if A held strictly earlier
			// within the window (releasing the obligation).
			for k := jLo; k < j; k++ {
				a, err := rl.A.Sat(t, k)
				if err != nil {
					return false, err
				}
				if a {
					return true, nil
				}
			}
			return false, nil
		}
		a, err := rl.A.Sat(t, j)
		if err != nil {
			return false, err
		}
		if a {
			return true, nil // released at j with B still true
		}
	}
	return true, nil // B held throughout the window
}

// Robustness implements Formula.
func (rl Release) Robustness(t *Trace, i int) (float64, error) {
	// Duality: ρ(A R B) = −ρ(!A U !B).
	dual := Until{I: rl.I, A: Not{F: rl.A}, B: Not{F: rl.B}}
	r, err := dual.Robustness(t, i)
	if err != nil {
		return 0, err
	}
	return -r, nil
}

// String implements Formula.
func (rl Release) String() string {
	return "(" + rl.A.String() + ") R" + rl.I.String() + " (" + rl.B.String() + ")"
}
