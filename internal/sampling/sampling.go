// Package sampling provides variance-reduction collection designs for SPA
// campaigns: a two-phase stratified collector and a ranked-set-sampling
// (RSS) collector, both implementing core.DesignCollector.
//
// Both designs spend a cheap pilot pass (a down-scaled run of the same
// benchmark, or any deterministic proxy metric) to decide which seeds of
// the campaign range deserve a full-scale measurement. Because the proxy
// correlates with the measured metric, the selected sample is spread more
// evenly over the metric's distribution than an i.i.d.-style seed range,
// so the order-statistic confidence interval tightens in fewer full-scale
// runs. The selection depends only on pilot values — themselves
// seed-deterministic — so campaigns stay replicable: the same options and
// base seed always measure the same seeds in the same order, regardless
// of batch size or scheduling.
//
// A design-selected sample is not exchangeable with a plain one, so the
// plain Clopper–Pearson construction would be coverage-wrong on it. The
// collectors therefore carry their own estimator (see estimator.go): the
// satisfied count M(v) becomes a sum of per-unit satisfaction
// probabilities derived from each unit's rank or stratum — with the
// stratified sum conditioned on the shared pilot pool's composition, so
// the cutpoint-estimation error every unit shares is carried into the
// count's variance rather than silently ignored — tempered by a
// ranking-fidelity λ that is estimated from the measured data (and
// shrunk toward zero, the conservative direction) unless the caller
// fixes it. At λ = 0 the model degrades exactly to the plain binomial
// construction, which doubles as the infeasibility fallback.
package sampling

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/popcache"
)

// Design selects the variance-reduction sampling design.
type Design int

const (
	// Plain is the absence of a design: consecutive seeds, plain
	// estimator. New rejects it — callers use the backing collector
	// directly — but it exists so configuration surfaces can parse and
	// store "no design" uniformly.
	Plain Design = iota
	// Stratified runs a pilot pass, cuts the proxy distribution into
	// equal-probability strata, and draws full-scale measurements from
	// the strata under a proportional or Neyman allocation.
	Stratified
	// RSS is ranked-set sampling: each measured unit is chosen from its
	// own small set of piloted candidates by rank, cycling the rank
	// 1..k across units.
	RSS
)

// String implements fmt.Stringer; the forms round-trip through ParseDesign.
func (d Design) String() string {
	switch d {
	case Stratified:
		return "stratified"
	case RSS:
		return "rss"
	}
	return "plain"
}

// ParseDesign parses a configuration string into a Design. The empty
// string means Plain, so absent configuration keys need no special case.
func ParseDesign(s string) (Design, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "plain":
		return Plain, nil
	case "stratified":
		return Stratified, nil
	case "rss", "ranked-set", "ranked_set":
		return RSS, nil
	}
	return Plain, fmt.Errorf("sampling: unknown design %q (want plain, stratified or rss)", s)
}

// Allocation selects how the stratified design spreads measurements
// across strata.
type Allocation int

const (
	// Proportional cycles measurements through the strata in order, so
	// every stratum gets an equal share — the right default when nothing
	// is known about within-stratum variance.
	Proportional Allocation = iota
	// Neyman allocates proportionally to the within-stratum proxy
	// standard deviation estimated from the first pilot block, floored
	// so no stratum starves.
	Neyman
)

// String implements fmt.Stringer; the forms round-trip through
// ParseAllocation.
func (a Allocation) String() string {
	if a == Neyman {
		return "neyman"
	}
	return "proportional"
}

// ParseAllocation parses a configuration string into an Allocation; the
// empty string means Proportional.
func ParseAllocation(s string) (Allocation, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "proportional":
		return Proportional, nil
	case "neyman":
		return Neyman, nil
	}
	return Proportional, fmt.Errorf("sampling: unknown allocation %q (want proportional or neyman)", s)
}

// PilotFunc produces the pilot proxy values for n consecutive seeds
// rooted at baseSeed, ordered by seed offset. It must be deterministic in
// (baseSeed, n) — the design's seed selection is a pure function of its
// output. The collector only ever asks for block-aligned contiguous
// ranges, so implementations can serve them from a plain population
// cache (see PilotFromCollector).
type PilotFunc func(baseSeed uint64, n int) ([]float64, error)

// PilotFromCollector adapts any core.Collector — a local FuncCollector
// over the down-scaled simulator, or a distributed coordinator — into a
// PilotFunc. Hooks are deliberately not forwarded: pilot runs are design
// overhead, not campaign samples, and accounting them as campaign runs
// would corrupt runs-to-width comparisons.
func PilotFromCollector(c core.Collector, batch int) PilotFunc {
	return func(baseSeed uint64, n int) ([]float64, error) {
		return c.Collect(baseSeed, n, batch, core.Hooks{})
	}
}

// DefaultStrata is the stratum count (stratified) or set size (RSS) when
// Options.Strata is zero. Four is small enough that ranking errors in the
// pilot stay forgiving, large enough to matter: at perfect fidelity it
// already cuts the median-estimation variance by more than half.
const DefaultStrata = 4

// maxStrata bounds the design order; beyond it the pilot cost per unit
// (RSS) or the cutpoint resolution demanded of one pilot block
// (stratified) stops being sensible.
const maxStrata = 64

// maxFidelity caps the ranking-fidelity λ. A perfect λ = 1 would let a
// single mis-ranked pilot break coverage; capping slightly below keeps a
// floor of plain-binomial behaviour in every unit.
const maxFidelity = 0.95

// Options configures a design collector.
type Options struct {
	// Design selects the sampling design; New rejects Plain.
	Design Design
	// Strata is the stratum count (stratified) or set size k (RSS);
	// zero selects DefaultStrata.
	Strata int
	// Allocation selects the stratified allocation rule; it must be
	// Proportional for RSS.
	Allocation Allocation
	// PilotBlock is how many pilot runs are fetched per PilotFunc call;
	// zero selects max(8·Strata, 32). The stratified design estimates
	// its cutpoints (and Neyman weights) from the first block, so the
	// block must hold at least two candidates per stratum.
	PilotBlock int
	// Fidelity fixes the ranking fidelity λ ∈ (0, maxFidelity] used by
	// the estimator; zero estimates it from the measured data each
	// round (shrunk Spearman correlation of proxy vs. measured value).
	Fidelity float64
	// Metric names the measured value vector in cached populations;
	// empty selects "value".
	Metric string
	// Cache, when non-nil, stores the cumulative measured population
	// after every collection round and serves later identical campaigns
	// (same Recipe, base seed and design knobs) without pilot or
	// full-scale runs.
	Cache *popcache.Cache
	// Recipe is the base cache key: Benchmark, Config, Scale,
	// PilotScale and ProxyMetric describe what the backing collector
	// and pilot actually run. The collector fills BaseSeed, Runs and
	// the design fields itself.
	Recipe popcache.Key
}

// Validate checks the options without building a collector, so
// configuration surfaces (manifests, service configs) can fail fast.
func (o Options) Validate() error {
	_, err := o.normalize()
	return err
}

// normalize applies defaults and validates; it returns the effective
// options.
func (o Options) normalize() (Options, error) {
	switch o.Design {
	case Stratified, RSS:
	case Plain:
		return o, errors.New("sampling: the plain design needs no design collector (use the backing collector directly)")
	default:
		return o, fmt.Errorf("sampling: unknown design %d", o.Design)
	}
	if o.Strata == 0 {
		o.Strata = DefaultStrata
	}
	if o.Strata < 2 || o.Strata > maxStrata {
		return o, fmt.Errorf("sampling: strata %d outside [2, %d]", o.Strata, maxStrata)
	}
	if o.Allocation != Proportional && o.Design != Stratified {
		return o, errors.New("sampling: allocation applies only to the stratified design")
	}
	if o.PilotBlock == 0 {
		o.PilotBlock = 8 * o.Strata
		if o.PilotBlock < 32 {
			o.PilotBlock = 32
		}
	}
	if o.PilotBlock < 2*o.Strata {
		return o, fmt.Errorf("sampling: pilot block %d below twice the strata count %d", o.PilotBlock, o.Strata)
	}
	// Rounding the block up to a multiple of Strata keeps the first
	// pool's rank bands integral, so each stratum starts with an equal
	// candidate share and the estimator's first-pool conditioning sees
	// balanced bands.
	if r := o.PilotBlock % o.Strata; r != 0 {
		o.PilotBlock += o.Strata - r
	}
	if o.Fidelity < 0 || o.Fidelity > maxFidelity {
		return o, fmt.Errorf("sampling: fidelity %v outside [0, %v]", o.Fidelity, maxFidelity)
	}
	if o.Metric == "" {
		o.Metric = "value"
	}
	return o, nil
}
