package sampling

// Honest-coverage suite (paper Sec. 5.4 applied to the variance-reduction
// designs): the stratified and RSS estimators must keep the plain
// construction's guarantee — over repeated independent campaigns, the
// design-matched interval covers the population ground truth at least a
// fraction C of the time. Narrower intervals bought by giving up coverage
// would be a correctness bug, not an optimisation, so this suite measures
// empirical coverage against ground truth from an exhaustive population
// and fails when it drops below the nominal level by more than binomial
// noise.
//
// Cost control on the default `go test` path: three cheap profiles at
// tiny scale. The full sweep — every workload profile, the same 200
// replications — is the CI coverage-suite job's configuration:
//
//	SAMPLING_COVERAGE=all go test ./internal/sampling/ -run TestHonestCoverage
//
// SAMPLING_COVERAGE_REPS overrides the replication count (min 50 so the
// binomial tolerance stays meaningful).

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

const (
	// covScale is the full-fidelity simulation scale; covPilotScale is
	// the cheap proxy pass (half of it, the runner's default ratio).
	covScale      = 0.005
	covPilotScale = covScale / 2
	// covUnits is the fixed per-replication sample size — comfortably
	// above the design minimum (5 at F=0.5, C=0.9) but small enough
	// that coverage is a real test, not a foregone conclusion.
	covUnits = 24
	covF     = 0.5
	covC     = 0.9
	// covStride spaces replication base seeds so no two replications
	// share any pilot or full-run seed.
	covStride = 1 << 12
	// Ground truth comes from an exhaustive population far outside
	// every replication's seed range.
	covTruthRuns = 1200
	covTruthSeed = uint64(1) << 40
)

// coverageProfiles returns the workload set for the sweep: the three
// cheapest profiles by default, all of them when SAMPLING_COVERAGE=all.
func coverageProfiles() []string {
	if os.Getenv("SAMPLING_COVERAGE") == "all" {
		return workload.Names()
	}
	return []string{"swaptions", "streamcluster", "blackscholes"}
}

func coverageReps(t *testing.T) int {
	s := os.Getenv("SAMPLING_COVERAGE_REPS")
	if s == "" {
		return 200
	}
	r, err := strconv.Atoi(s)
	if err != nil || r < 50 {
		t.Fatalf("SAMPLING_COVERAGE_REPS=%q: want an integer ≥ 50", s)
	}
	return r
}

// simRunFunc measures one seed of the profile at the given scale.
func simRunFunc(bench string, cfg sim.Config, scale float64) core.RunFunc {
	return func(seed uint64) (float64, error) {
		res, err := sim.Run(bench, cfg, scale, seed)
		if err != nil {
			return 0, err
		}
		v, ok := res.Metric(sim.MetricRuntime)
		if !ok {
			return 0, fmt.Errorf("%s: no %s metric", bench, sim.MetricRuntime)
		}
		return v, nil
	}
}

// coverageOptions is the design configuration the whole suite uses: three
// groups keeps RSS pilot consumption at 3 per unit, and a 24-run pilot
// block is cutpoint material for stratified and exactly one replication's
// worth of RSS candidates.
func coverageOptions(d Design) Options {
	return Options{Design: d, Strata: 3, PilotBlock: 24}
}

// coverageInterval runs one replication of the design at the base seed
// and returns its confidence interval.
func coverageInterval(bench string, cfg sim.Config, d Design, base uint64) (stats.Interval, error) {
	p := core.Params{F: covF, C: covC}
	full := core.FuncCollector(simRunFunc(bench, cfg, covScale))
	if d == Plain {
		samples, err := core.Collect(core.RunFunc(full), base, covUnits, 0)
		if err != nil {
			return stats.Interval{}, err
		}
		return core.ConfidenceInterval(samples, p)
	}
	pilot := PilotFromCollector(core.FuncCollector(simRunFunc(bench, cfg, covPilotScale)), 0)
	c, err := New(coverageOptions(d), full, pilot)
	if err != nil {
		return stats.Interval{}, err
	}
	samples, err := c.Collect(base, covUnits, 0, core.Hooks{})
	if err != nil {
		return stats.Interval{}, err
	}
	return c.DesignInterval(samples, p)
}

// TestHonestCoverage is the suite: for every profile and design, the
// fraction of replications whose interval covers the exhaustive-population
// ground truth must not fall below C by more than two binomial standard
// errors. The whole computation is seed-deterministic — a failure here is
// reproducible, never flaky.
func TestHonestCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-replication sweep; skipped with -short")
	}
	reps := coverageReps(t)
	// Two-sided binomial noise floor at R replications: a true-coverage-C
	// estimator's empirical coverage stays above this with ~97.7%
	// probability, and the seeds are fixed so a pass is permanent.
	floor := covC - 2*math.Sqrt(covC*(1-covC)/float64(reps))
	cfg := sim.DefaultConfig()

	for _, bench := range coverageProfiles() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			pop, err := population.Generate(bench, cfg, covScale, covTruthRuns, covTruthSeed, 0)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := pop.GroundTruth(sim.MetricRuntime, covF)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range []Design{Plain, Stratified, RSS} {
				d := d
				t.Run(d.String(), func(t *testing.T) {
					covered, width := coverageSweep(t, bench, cfg, d, reps, truth)
					rate := float64(covered) / float64(reps)
					t.Logf("%s/%s: coverage %.3f (floor %.3f), mean width %.3g, truth %.3g",
						bench, d, rate, floor, width, truth)
					if rate < floor {
						t.Errorf("%s/%s: empirical coverage %.3f < %.3f (nominal %.2f, %d reps)",
							bench, d, rate, floor, covC, reps)
					}
					if width <= 0 {
						t.Errorf("%s/%s: degenerate mean interval width %g", bench, d, width)
					}
				})
			}
		})
	}
}

// coverageSweep runs reps independent replications of the design and
// returns how many covered the truth, plus the mean interval width.
// Replications are spread over a worker pool; each replication's result
// depends only on its base seed, so the split is free of scheduling
// effects.
func coverageSweep(t *testing.T, bench string, cfg sim.Config, d Design, reps int, truth float64) (int, float64) {
	t.Helper()
	type out struct {
		iv  stats.Interval
		err error
	}
	results := make([]out, reps)
	idx := make(chan int)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > reps {
		workers = reps
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range idx {
				iv, err := coverageInterval(bench, cfg, d, uint64(r)*covStride)
				results[r] = out{iv, err}
			}
		}()
	}
	for r := 0; r < reps; r++ {
		idx <- r
	}
	close(idx)
	wg.Wait()

	covered, widthSum := 0, 0.0
	for r, res := range results {
		if res.err != nil {
			t.Fatalf("%s/%s rep %d: %v", bench, d, r, res.err)
		}
		if res.iv.Contains(truth) {
			covered++
		}
		widthSum += res.iv.Width()
	}
	return covered, widthSum / float64(reps)
}

// TestSamplingSchedulingIdentity pins the determinism contract across
// every execution-shape knob: for each profile and design, the sampled
// population is bit-identical whatever GOMAXPROCS and whatever batch
// bound drives the measurement pool. Seed selection happens before any
// parallel work, and measured values land at their unit index, so the
// schedule can shift wall-clock time but never a bit of output.
func TestSamplingSchedulingIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full profile sweep; skipped with -short")
	}
	const units = 16
	cfg := sim.DefaultConfig()
	oldProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(oldProcs)

	collect := func(bench string, d Design, batch int) ([]float64, Stats) {
		t.Helper()
		full := core.FuncCollector(simRunFunc(bench, cfg, covScale))
		pilot := PilotFromCollector(core.FuncCollector(simRunFunc(bench, cfg, covPilotScale)), batch)
		c, err := New(coverageOptions(d), full, pilot)
		if err != nil {
			t.Fatal(err)
		}
		samples, err := c.Collect(1000, units, batch, core.Hooks{})
		if err != nil {
			t.Fatalf("%s/%s batch %d: %v", bench, d, batch, err)
		}
		return samples, c.Stats()
	}

	for _, bench := range workload.Names() {
		for _, d := range []Design{Stratified, RSS} {
			var ref []float64
			var refStats Stats
			for _, procs := range []int{1, 2, 8} {
				runtime.GOMAXPROCS(procs)
				for _, batch := range []int{1, 8} {
					samples, st := collect(bench, d, batch)
					if ref == nil {
						ref, refStats = samples, st
						continue
					}
					if st != refStats {
						t.Errorf("%s/%s procs %d batch %d: stats %+v, want %+v",
							bench, d, procs, batch, st, refStats)
					}
					for i := range ref {
						if math.Float64bits(samples[i]) != math.Float64bits(ref[i]) {
							t.Errorf("%s/%s procs %d batch %d: sample %d = %x, want %x",
								bench, d, procs, batch, i, math.Float64bits(samples[i]), math.Float64bits(ref[i]))
						}
					}
				}
			}
			runtime.GOMAXPROCS(oldProcs)
		}
	}
}
